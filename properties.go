package repro

import (
	"repro/internal/basis"
	"repro/internal/ddi"
	"repro/internal/fock"
	"repro/internal/integrals"
	"repro/internal/mpi"
	"repro/internal/scf"
)

// UHFResult is a converged unrestricted Hartree-Fock calculation.
type UHFResult = scf.UHFResult

// RunUHF runs an unrestricted Hartree-Fock calculation with the given
// spin multiplicity (2S+1) — the open-shell method the paper's conclusion
// lists as inheriting the hybrid Fock-build structure directly.
func RunUHF(mol *Molecule, basisName string, multiplicity int, opt SCFOptions) (*UHFResult, error) {
	b, err := basis.Build(mol, basisName)
	if err != nil {
		return nil, err
	}
	return scf.RunUHF(integrals.NewEngine(b), multiplicity, opt)
}

// Properties are the standard post-SCF observables.
type Properties struct {
	MullikenCharges []float64  // per atom, in e
	Dipole          [3]float64 // atomic units (e*bohr)
	DipoleDebye     float64
}

// AnalyzeRHF computes Mulliken charges and the dipole moment from a
// converged RHF result on mol/basisName (the same inputs passed to
// RunRHF or RunParallelRHF).
func AnalyzeRHF(mol *Molecule, basisName string, res *Result) (Properties, error) {
	b, err := basis.Build(mol, basisName)
	if err != nil {
		return Properties{}, err
	}
	eng := integrals.NewEngine(b)
	mu := scf.DipoleMoment(eng, res.D)
	return Properties{
		MullikenCharges: scf.MullikenCharges(eng, res.D),
		Dipole:          mu,
		DipoleDebye:     scf.DipoleDebye(mu),
	}, nil
}

// MP2Result is a second-order Møller-Plesset correlation correction.
type MP2Result = scf.MP2Result

// RunMP2 computes the closed-shell MP2 correlation energy on top of a
// converged RHF result (same mol/basisName as the RHF call). Post-HF
// methods like MP2 are the reason the paper optimizes Hartree-Fock: HF
// supplies their reference wavefunction.
func RunMP2(mol *Molecule, basisName string, res *Result) (*MP2Result, error) {
	b, err := basis.Build(mol, basisName)
	if err != nil {
		return nil, err
	}
	return scf.RunMP2(integrals.NewEngine(b), res)
}

// RunParallelUHF runs an unrestricted Hartree-Fock calculation with one
// of the paper's three algorithms generalized to the J/K split (see
// DESIGN.md section 6: the paper's UHF claim made concrete). All ranks
// compute the identical result; rank 0's is returned.
func RunParallelUHF(mol *Molecule, basisName string, multiplicity int,
	cfg ParallelConfig, opt SCFOptions) (*UHFResult, error) {
	if cfg.Algorithm == "" {
		cfg.Algorithm = SharedFock
	}
	if cfg.Ranks <= 0 {
		cfg.Ranks = 2
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 2
	}
	b, err := basis.Build(mol, basisName)
	if err != nil {
		return nil, err
	}
	eng := integrals.NewEngine(b)
	sch := integrals.ComputeSchwarz(eng)
	cache := integrals.NewPairCache(eng, 0)

	results := make([]*UHFResult, cfg.Ranks)
	errs := make([]error, cfg.Ranks)
	runErr := mpi.Run(cfg.Ranks, func(c *mpi.Comm) {
		builder := scf.ParallelJKBuilder(cfg.Algorithm, ddi.New(c), eng, sch,
			fock.Config{Threads: cfg.Threads, Quartets: cache})
		res, err := scf.RunUHFWithBuilder(eng, multiplicity, builder, opt)
		results[c.Rank()] = res
		errs[c.Rank()] = err
	})
	if runErr != nil {
		return nil, runErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results[0], nil
}

// OptimizeResult is a converged geometry optimization.
type OptimizeResult = scf.OptimizeResult

// OptimizeGeometry relaxes a molecule to its RHF equilibrium geometry
// with central-difference gradients (paper Section 3: the SCF energy's
// primary use is locating equilibrium structures).
func OptimizeGeometry(mol *Molecule, basisName string, opt SCFOptions) (*OptimizeResult, error) {
	return scf.Optimize(mol, scf.OptimizeOptions{SCF: opt, BasisName: basisName})
}
