package repro

// End-to-end integration tests: the library-level flows a downstream user
// would run, chained together (geometry -> SCF -> properties -> MP2 ->
// simulation), exercising the facade exactly as the examples do.

import (
	"math"
	"strings"
	"testing"
)

func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline")
	}
	// 1. Geometry in, basis described.
	mol, err := ParseXYZ("3\nwater\nO 0.0 0.0 0.117347\nH 0.0 0.757216 -0.469388\nH 0.0 -0.757216 -0.469388\n")
	if err != nil {
		t.Fatal(err)
	}
	info, err := DescribeBasis(mol, "6-31g")
	if err != nil {
		t.Fatal(err)
	}
	if info.NumBF != 13 {
		t.Fatalf("water/6-31G has %d BFs, want 13", info.NumBF)
	}

	// 2. Serial SCF, then the paper's three parallel algorithms.
	serial, err := RunRHF(mol, "6-31g", SCFOptions{})
	if err != nil || !serial.Converged {
		t.Fatalf("serial SCF: %v", err)
	}
	for _, alg := range []Algorithm{MPIOnly, PrivateFock, SharedFock} {
		par, err := RunParallelRHF(mol, "6-31g",
			ParallelConfig{Algorithm: alg, Ranks: 2, Threads: 2}, SCFOptions{})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if math.Abs(par.Energy-serial.Energy) > 1e-9 {
			t.Fatalf("%s energy mismatch", alg)
		}
	}

	// 3. Properties and correlation on the converged density.
	props, err := AnalyzeRHF(mol, "6-31g", serial)
	if err != nil {
		t.Fatal(err)
	}
	if props.DipoleDebye < 1.5 || props.DipoleDebye > 3.5 {
		t.Fatalf("water dipole = %v debye", props.DipoleDebye)
	}
	mp2, err := RunMP2(mol, "6-31g", serial)
	if err != nil || mp2.CorrelationEnergy >= 0 {
		t.Fatalf("MP2: %v %v", mp2, err)
	}

	// 4. The paper-scale simulation path on the same code base.
	sess := NewSimSession()
	small, err := sess.Simulate("0.5nm", MachineTheta, SharedFock, 4, 4, 64)
	if err != nil || !small.Feasible {
		t.Fatalf("simulation: %+v %v", small, err)
	}
	big, err := sess.Simulate("0.5nm", MachineTheta, SharedFock, 16, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if big.Seconds >= small.Seconds {
		t.Fatal("more nodes should be faster")
	}
}

func TestEndToEndOpenShell(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end open shell")
	}
	oh, err := ParseXYZ("2\nhydroxyl radical\nO 0 0 0\nH 0 0 0.97\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunUHF(oh, "sto-3g", 2, SCFOptions{MaxIter: 150})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("OH radical did not converge")
	}
	// Literature UHF/STO-3G OH is about -74.36 hartree; doublet <S^2> ~ 0.75.
	if res.Energy < -74.8 || res.Energy > -73.9 {
		t.Fatalf("OH energy = %v", res.Energy)
	}
	if math.Abs(res.SSquared-0.75) > 0.05 {
		t.Fatalf("<S^2> = %v", res.SSquared)
	}
}

func TestXYZRoundTripThroughFacade(t *testing.T) {
	mol, _ := BuiltinMolecule("methane")
	text := mol.XYZ()
	if !strings.HasPrefix(text, "5\n") {
		t.Fatalf("XYZ header: %q", text[:10])
	}
	back, err := ParseXYZ(text)
	if err != nil || back.NumAtoms() != 5 {
		t.Fatalf("round trip failed: %v", err)
	}
}
