package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests for the packed lower-triangle representation, the
// storage scheme every symmetric matrix in the code funnels through
// (replicated Fock/density, checkpoint payloads, distmat gathers).

// TestPackedPropertySymmetryAndRoundTrip: for random symmetric matrices
// of random size, Packed access is symmetric at every element, the
// Packed <-> Dense round trip is bit-exact in both directions, and
// mutating one triangle is visible from the other.
func TestPackedPropertySymmetryAndRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	f := func(seed int64, sz uint8) bool {
		n := 1 + int(sz)%24
		r := rand.New(rand.NewSource(seed))
		m := NewSquare(n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				v := r.NormFloat64()
				m.Set(i, j, v)
				m.Set(j, i, v)
			}
		}
		p := Pack(m)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if p.At(i, j) != p.At(j, i) || p.At(i, j) != m.At(i, j) {
					return false
				}
			}
		}
		u := p.Unpack()
		if u.MaxAbsDiff(m) != 0 {
			return false
		}
		// Back once more: Dense -> Packed over the unpacked copy must
		// reproduce the original packed buffer element for element.
		p2 := Pack(u)
		for k, v := range p2.Data {
			if v != p.Data[k] {
				return false
			}
		}
		// A write through either triangle is one store, seen from both.
		i, j := r.Intn(n), r.Intn(n)
		p.Set(i, j, 42)
		return p.At(j, i) == 42
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPackedPropertyIndexMonotonic: enumerating the lower triangle in
// canonical row-major order (i outer, j <= i inner) must hit PackedIndex
// values 0, 1, 2, ... with no gaps and no reordering — the contiguity
// the checkpoint and gather codecs rely on when they walk Data linearly.
func TestPackedPropertyIndexMonotonic(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 24, 61} {
		next := 0
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if idx := PackedIndex(i, j); idx != next {
					t.Fatalf("n=%d: PackedIndex(%d,%d) = %d, want %d (monotone walk broken)",
						n, i, j, idx, next)
				}
				next++
			}
		}
		if next != n*(n+1)/2 {
			t.Fatalf("n=%d: walk covered %d slots, want %d", n, next, n*(n+1)/2)
		}
	}
}
