package linalg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/omp"
)

func TestJacobiMatchesEigenSym(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	team := omp.NewTeam(3)
	for _, n := range []int{1, 2, 3, 5, 8, 16, 33} {
		a := randSym(rng, n)
		wantVals, _ := EigenSym(a)
		vals, vecs := JacobiEigenSym(a, team, JacobiOptions{})
		for i := range vals {
			if math.Abs(vals[i]-wantVals[i]) > 1e-8 {
				t.Fatalf("n=%d: eigenvalue %d: %v vs %v", n, i, vals[i], wantVals[i])
			}
		}
		checkEigenResidual(t, a, vals, vecs, 1e-8)
	}
}

func TestJacobiInputUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randSym(rng, 7)
	orig := a.Clone()
	JacobiEigenSym(a, omp.NewTeam(2), JacobiOptions{})
	if a.MaxAbsDiff(orig) != 0 {
		t.Fatal("input matrix modified")
	}
}

func TestJacobiTeamWidthsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randSym(rng, 20)
	base, _ := JacobiEigenSym(a, omp.NewTeam(1), JacobiOptions{})
	for _, threads := range []int{2, 4, 7} {
		vals, vecs := JacobiEigenSym(a, omp.NewTeam(threads), JacobiOptions{})
		for i := range vals {
			if math.Abs(vals[i]-base[i]) > 1e-9 {
				t.Fatalf("threads=%d: eigenvalue %d drifted: %v vs %v", threads, i, vals[i], base[i])
			}
		}
		checkEigenResidual(t, a, vals, vecs, 1e-8)
	}
}

func TestJacobiEmptyAndDiagonal(t *testing.T) {
	team := omp.NewTeam(2)
	vals, vecs := JacobiEigenSym(New(0, 0), team, JacobiOptions{})
	if len(vals) != 0 || vecs.Rows != 0 {
		t.Fatal("empty case failed")
	}
	d := FromRows([][]float64{{3, 0}, {0, -1}})
	vals, _ = JacobiEigenSym(d, team, JacobiOptions{})
	if vals[0] != -1 || vals[1] != 3 {
		t.Fatalf("diagonal case: %v", vals)
	}
}

func TestRotatePlayersCoverage(t *testing.T) {
	// Every pair must meet exactly once over m-1 rounds.
	m := 8
	players := make([]int, m)
	for i := range players {
		players[i] = i
	}
	met := map[[2]int]int{}
	for round := 0; round < m-1; round++ {
		for k := 0; k < m/2; k++ {
			p, q := players[k], players[m-1-k]
			if p > q {
				p, q = q, p
			}
			met[[2]int{p, q}]++
		}
		rotatePlayers(players)
	}
	if len(met) != m*(m-1)/2 {
		t.Fatalf("%d distinct pairs, want %d", len(met), m*(m-1)/2)
	}
	for pair, count := range met {
		if count != 1 {
			t.Fatalf("pair %v met %d times", pair, count)
		}
	}
}
