package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("bad shape: %+v", m)
	}
	m.Set(1, 2, 4.5)
	if m.At(1, 2) != 4.5 {
		t.Fatalf("At after Set = %v", m.At(1, 2))
	}
	m.Add(1, 2, 0.5)
	if m.At(1, 2) != 5.0 {
		t.Fatalf("Add = %v", m.At(1, 2))
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dims")
		}
	}()
	New(-1, 2)
}

func TestIdentity(t *testing.T) {
	m := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if m.At(i, j) != want {
				t.Fatalf("I[%d,%d] = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestFromRowsAndClone(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
	if c.At(0, 0) != 99 || c.At(1, 1) != 4 {
		t.Fatal("Clone values wrong")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if c.MaxAbsDiff(want) > 1e-14 {
		t.Fatalf("Mul = %v", c)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMatrix(rng, 7, 7)
	if Mul(a, Identity(7)).MaxAbsDiff(a) > 1e-13 {
		t.Fatal("a*I != a")
	}
	if Mul(Identity(7), a).MaxAbsDiff(a) > 1e-13 {
		t.Fatal("I*a != a")
	}
}

func TestMulRectangular(t *testing.T) {
	a := FromRows([][]float64{{1, 0, 2}, {0, 3, 0}}) // 2x3
	b := FromRows([][]float64{{1}, {2}, {3}})        // 3x1
	c := Mul(a, b)
	if c.Rows != 2 || c.Cols != 1 || c.At(0, 0) != 7 || c.At(1, 0) != 6 {
		t.Fatalf("rect mul = %v", c)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	y := MulVec(a, []float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 4, 6)
	if a.Transpose().Transpose().MaxAbsDiff(a) != 0 {
		t.Fatal("(a^T)^T != a")
	}
}

func TestTraceAndDot(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if a.Trace() != 5 {
		t.Fatalf("Trace = %v", a.Trace())
	}
	if Dot(a, a) != 1+4+9+16 {
		t.Fatalf("Dot = %v", Dot(a, a))
	}
}

func TestSymmetrize(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {4, 3}})
	a.Symmetrize()
	if !a.IsSymmetric(0) || a.At(0, 1) != 3 {
		t.Fatalf("Symmetrize = %v", a)
	}
}

func TestRMSDiffAndFrobenius(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 4}})
	z := New(2, 2)
	if !almostEq(a.FrobeniusNorm(), 5, 1e-15) {
		t.Fatalf("frob = %v", a.FrobeniusNorm())
	}
	if !almostEq(a.RMSDiff(z), 2.5, 1e-15) {
		t.Fatalf("rms = %v", a.RMSDiff(z))
	}
}

func TestTripleProduct(t *testing.T) {
	// X^T S X with X = S^{-1/2} should be I; checked in eig tests, here a
	// small hand example: a=I => returns b.
	b := FromRows([][]float64{{2, 1}, {1, 2}})
	got := TripleProduct(Identity(2), b)
	if got.MaxAbsDiff(b) != 0 {
		t.Fatal("TripleProduct with identity changed b")
	}
}

func randMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randSym(rng *rand.Rand, n int) *Matrix {
	m := randMatrix(rng, n, n)
	m.Symmetrize()
	return m
}

func TestEigenSymKnown2x2(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs := EigenSym(a)
	if !almostEq(vals[0], 1, 1e-12) || !almostEq(vals[1], 3, 1e-12) {
		t.Fatalf("eigenvalues = %v", vals)
	}
	// residual check
	checkEigenResidual(t, a, vals, vecs, 1e-12)
}

func TestEigenSymDiagonal(t *testing.T) {
	a := FromRows([][]float64{{5, 0, 0}, {0, -2, 0}, {0, 0, 1}})
	vals, vecs := EigenSym(a)
	want := []float64{-2, 1, 5}
	for i := range want {
		if !almostEq(vals[i], want[i], 1e-13) {
			t.Fatalf("vals = %v", vals)
		}
	}
	checkEigenResidual(t, a, vals, vecs, 1e-12)
}

func TestEigenSymEmptyAndOne(t *testing.T) {
	vals, vecs := EigenSym(New(0, 0))
	if len(vals) != 0 || vecs.Rows != 0 {
		t.Fatal("empty eig failed")
	}
	vals, _ = EigenSym(FromRows([][]float64{{7}}))
	if !almostEq(vals[0], 7, 0) {
		t.Fatalf("1x1 eig = %v", vals)
	}
}

func checkEigenResidual(t *testing.T, a *Matrix, vals []float64, vecs *Matrix, tol float64) {
	t.Helper()
	n := a.Rows
	// orthonormality
	vtv := Mul(vecs.Transpose(), vecs)
	if vtv.MaxAbsDiff(Identity(n)) > tol*10 {
		t.Fatalf("eigenvectors not orthonormal, err=%v", vtv.MaxAbsDiff(Identity(n)))
	}
	// A v = lambda v
	av := Mul(a, vecs)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if math.Abs(av.At(i, j)-vals[j]*vecs.At(i, j)) > tol*100 {
				t.Fatalf("residual too large at (%d,%d)", i, j)
			}
		}
	}
	// ascending order
	for j := 1; j < n; j++ {
		if vals[j] < vals[j-1] {
			t.Fatalf("eigenvalues not sorted: %v", vals)
		}
	}
}

func TestEigenSymRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{2, 3, 5, 8, 17, 33} {
		a := randSym(rng, n)
		vals, vecs := EigenSym(a)
		checkEigenResidual(t, a, vals, vecs, 1e-10)
		// trace preservation
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		if !almostEq(sum, a.Trace(), 1e-9*float64(n)) {
			t.Fatalf("n=%d trace mismatch: %v vs %v", n, sum, a.Trace())
		}
	}
}

func TestEigenSymQuickTraceInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(rng.Int31n(10))
		a := randSym(rng, n)
		vals, _ := EigenSym(a)
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		return almostEq(sum, a.Trace(), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLowdinOrthogonalizer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Build an SPD overlap-like matrix S = B^T B + I.
	b := randMatrix(rng, 6, 6)
	s := Mul(b.Transpose(), b)
	for i := 0; i < 6; i++ {
		s.Add(i, i, 1)
	}
	x, err := LowdinOrthogonalizer(s, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	// X^T S X = I
	got := TripleProduct(x, s)
	if got.MaxAbsDiff(Identity(6)) > 1e-10 {
		t.Fatalf("X^T S X != I, err=%v", got.MaxAbsDiff(Identity(6)))
	}
	// X symmetric
	if !x.IsSymmetric(1e-12) {
		t.Fatal("Lowdin X not symmetric")
	}
}

func TestLowdinRejectsLinearDependence(t *testing.T) {
	s := FromRows([][]float64{{1, 1}, {1, 1}}) // singular
	if _, err := LowdinOrthogonalizer(s, 1e-8); err == nil {
		t.Fatal("expected linear-dependence error")
	}
}

func TestSolveLinearKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveLinear(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestSolveLinearRandomResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(8)
		a := randMatrix(rng, n, n)
		for i := 0; i < n; i++ {
			a.Add(i, i, 5) // diagonally dominant-ish
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := MulVec(a, want)
		x, err := SolveLinear(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if !almostEq(x[i], want[i], 1e-9) {
				t.Fatalf("trial %d: x[%d]=%v want %v", trial, i, x[i], want[i])
			}
		}
	}
}

func TestPackedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randSym(rng, 9)
	p := Pack(m)
	if p.Unpack().MaxAbsDiff(m) > 1e-15 {
		t.Fatal("pack/unpack round trip failed")
	}
}

func TestPackedIndexing(t *testing.T) {
	p := NewPacked(4)
	p.Set(2, 1, 3.5)
	if p.At(1, 2) != 3.5 {
		t.Fatal("packed symmetric access failed")
	}
	p.Add(1, 2, 0.5)
	if p.At(2, 1) != 4.0 {
		t.Fatal("packed Add failed")
	}
	if PackedIndex(3, 3) != 9 || PackedIndex(0, 0) != 0 {
		t.Fatal("PackedIndex formula wrong")
	}
	if p.Bytes() != int64(4*5/2*8) {
		t.Fatalf("Bytes = %d", p.Bytes())
	}
}

func TestPackedQuickSymmetry(t *testing.T) {
	f := func(i, j uint8) bool {
		return PackedIndex(int(i), int(j)) == PackedIndex(int(j), int(i))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackedIndexBijection(t *testing.T) {
	// All (i>=j) pairs for n=20 must map to distinct indices covering 0..209.
	n := 20
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			idx := PackedIndex(i, j)
			if seen[idx] {
				t.Fatalf("duplicate index %d", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != n*(n+1)/2 {
		t.Fatalf("covered %d indices", len(seen))
	}
}

func TestAxpyScaleZero(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := a.Clone()
	a.AxpyFrom(2, b)
	if a.At(1, 1) != 12 {
		t.Fatalf("axpy = %v", a)
	}
	a.Scale(0.5)
	if a.At(1, 1) != 6 {
		t.Fatalf("scale = %v", a)
	}
	a.Zero()
	if a.FrobeniusNorm() != 0 {
		t.Fatal("zero failed")
	}
}

func TestCopyFromAndPanics(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := New(2, 2)
	b.CopyFrom(a)
	if b.MaxAbsDiff(a) != 0 {
		t.Fatal("CopyFrom failed")
	}
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	c := New(3, 3)
	expectPanic("CopyFrom", func() { c.CopyFrom(a) })
	expectPanic("AxpyFrom", func() { c.AxpyFrom(1, a) })
	expectPanic("RMSDiff", func() { c.RMSDiff(a) })
	expectPanic("MaxAbsDiff", func() { c.MaxAbsDiff(a) })
	expectPanic("Dot", func() { Dot(c, a) })
	expectPanic("Mul", func() { Mul(a, New(3, 2)) })
	expectPanic("MulInto", func() { MulInto(c, a, a) })
	expectPanic("MulVec", func() { MulVec(a, []float64{1}) })
	expectPanic("Trace", func() { New(2, 3).Trace() })
	expectPanic("Symmetrize", func() { New(2, 3).Symmetrize() })
	expectPanic("Pack", func() { Pack(New(2, 3)) })
	expectPanic("EigenSym", func() { EigenSym(New(2, 3)) })
	expectPanic("SolveLinear", func() { SolveLinear(a, []float64{1, 2, 3}) })
}

func TestIsSymmetricNonSquare(t *testing.T) {
	if New(2, 3).IsSymmetric(1) {
		t.Fatal("non-square cannot be symmetric")
	}
	a := FromRows([][]float64{{1, 2}, {2.5, 1}})
	if a.IsSymmetric(0.4) || !a.IsSymmetric(0.6) {
		t.Fatal("tolerance handling wrong")
	}
}

func TestMatrixString(t *testing.T) {
	small := FromRows([][]float64{{1, 2}, {3, 4}})
	if s := small.String(); len(s) < 10 {
		t.Fatalf("String too short: %q", s)
	}
	big := New(30, 30)
	if s := big.String(); len(s) > 40 {
		t.Fatalf("large-matrix String should elide: %q", s)
	}
}

func TestPackedZeroClone(t *testing.T) {
	p := NewPacked(3)
	p.Set(2, 1, 5)
	c := p.Clone()
	p.Zero()
	if p.At(2, 1) != 0 || c.At(2, 1) != 5 {
		t.Fatal("Zero/Clone interplay wrong")
	}
}

func TestRMSDiffEmpty(t *testing.T) {
	if New(0, 0).RMSDiff(New(0, 0)) != 0 {
		t.Fatal("empty RMSDiff should be 0")
	}
}
