// Package linalg provides the dense linear algebra needed by the
// Hartree-Fock code: square matrices in row-major storage, a symmetric
// eigensolver, Löwdin orthogonalization, and triangular packed storage
// matching the layout GAMESS uses for Fock and density matrices.
//
// Everything is implemented from scratch on the standard library; the
// matrices involved in the real-execution path are at most a few thousand
// rows, for which straightforward O(N^3) algorithms are adequate.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix. The zero value is an empty matrix;
// use New to allocate.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zeroed rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewSquare returns a zeroed n x n matrix.
func NewSquare(n int) *Matrix { return New(n, n) }

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewSquare(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from row slices; all rows must share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add adds v to element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src into m; dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("linalg: CopyFrom dimension mismatch")
	}
	copy(m.Data, src.Data)
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Scale multiplies every element by s.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AxpyFrom adds a*x to m element-wise.
func (m *Matrix) AxpyFrom(a float64, x *Matrix) {
	if m.Rows != x.Rows || m.Cols != x.Cols {
		panic("linalg: Axpy dimension mismatch")
	}
	for i, v := range x.Data {
		m.Data[i] += a * v
	}
}

// Transpose returns m^T as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Symmetrize averages m with its transpose in place; m must be square.
func (m *Matrix) Symmetrize() {
	if m.Rows != m.Cols {
		panic("linalg: Symmetrize requires a square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < i; j++ {
			v := 0.5 * (m.At(i, j) + m.At(j, i))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// MaxAbsDiff returns max |m - b| over all elements.
func (m *Matrix) MaxAbsDiff(b *Matrix) float64 {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: MaxAbsDiff dimension mismatch")
	}
	d := 0.0
	for i, v := range m.Data {
		if a := math.Abs(v - b.Data[i]); a > d {
			d = a
		}
	}
	return d
}

// RMSDiff returns the root-mean-square difference with b. This is the
// convergence metric the SCF loop applies to consecutive density matrices.
func (m *Matrix) RMSDiff(b *Matrix) float64 {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: RMSDiff dimension mismatch")
	}
	if len(m.Data) == 0 {
		return 0
	}
	s := 0.0
	for i, v := range m.Data {
		d := v - b.Data[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(m.Data)))
}

// FrobeniusNorm returns sqrt(sum m_ij^2).
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Trace returns the sum of diagonal elements; m must be square.
func (m *Matrix) Trace() float64 {
	if m.Rows != m.Cols {
		panic("linalg: Trace requires a square matrix")
	}
	t := 0.0
	for i := 0; i < m.Rows; i++ {
		t += m.At(i, i)
	}
	return t
}

// Mul returns a*b as a new matrix.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := New(a.Rows, b.Cols)
	MulInto(c, a, b)
	return c
}

// MulInto computes c = a*b into an existing matrix. c must not alias a or b.
func MulInto(c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic("linalg: MulInto dimension mismatch")
	}
	c.Zero()
	// ikj loop order for cache-friendly access of b and c rows.
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range crow {
				crow[j] += aik * brow[j]
			}
		}
	}
}

// MulVec returns a*x for a vector x.
func MulVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic("linalg: MulVec dimension mismatch")
	}
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// TripleProduct returns a^T * b * a, the congruence transform used to move
// the Fock matrix into the orthogonal basis.
func TripleProduct(a, b *Matrix) *Matrix {
	return Mul(a.Transpose(), Mul(b, a))
}

// Dot returns the element-wise inner product sum_ij a_ij*b_ij, i.e.
// tr(a^T b). The SCF electronic energy is expressed with it.
func Dot(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("linalg: Dot dimension mismatch")
	}
	s := 0.0
	for i, v := range a.Data {
		s += v * b.Data[i]
	}
	return s
}

// IsSymmetric reports whether max |m_ij - m_ji| <= tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < i; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix %dx%d", m.Rows, m.Cols)
	if m.Rows*m.Cols > 400 {
		return b.String()
	}
	for i := 0; i < m.Rows; i++ {
		b.WriteString("\n")
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&b, " % .6f", m.At(i, j))
		}
	}
	return b.String()
}
