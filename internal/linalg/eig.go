package linalg

import (
	"fmt"
	"math"
)

// EigenSym computes all eigenvalues and eigenvectors of a real symmetric
// matrix. It returns the eigenvalues in ascending order and a matrix whose
// COLUMNS are the corresponding orthonormal eigenvectors, so that
// a * vecs = vecs * diag(vals).
//
// The implementation is the classical two-stage dense path: Householder
// reduction to tridiagonal form followed by the implicit-shift QL
// iteration, accumulating the orthogonal transforms. It is O(N^3) and
// deterministic, which is what the Fock diagonalization step needs.
func EigenSym(a *Matrix) (vals []float64, vecs *Matrix) {
	if a.Rows != a.Cols {
		panic("linalg: EigenSym requires a square matrix")
	}
	n := a.Rows
	vals = make([]float64, n)
	if n == 0 {
		return vals, New(0, 0)
	}
	z := a.Clone() // working copy; becomes the eigenvector matrix
	e := make([]float64, n)
	tred2(z, vals, e)
	if err := tqli(vals, e, z); err != nil {
		panic(err)
	}
	sortEigen(vals, z)
	return vals, z
}

// tred2 reduces the symmetric matrix stored in z to tridiagonal form via
// Householder transformations, accumulating the transform in z. On return
// d holds the diagonal and e the subdiagonal (e[0] unused).
func tred2(z *Matrix, d, e []float64) {
	n := z.Rows
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		h, scale := 0.0, 0.0
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(z.At(i, k))
			}
			if scale == 0 {
				e[i] = z.At(i, l)
			} else {
				for k := 0; k <= l; k++ {
					v := z.At(i, k) / scale
					z.Set(i, k, v)
					h += v * v
				}
				f := z.At(i, l)
				g := math.Sqrt(h)
				if f > 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				z.Set(i, l, f-g)
				f = 0.0
				for j := 0; j <= l; j++ {
					z.Set(j, i, z.At(i, j)/h)
					g = 0.0
					for k := 0; k <= j; k++ {
						g += z.At(j, k) * z.At(i, k)
					}
					for k := j + 1; k <= l; k++ {
						g += z.At(k, j) * z.At(i, k)
					}
					e[j] = g / h
					f += e[j] * z.At(i, j)
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = z.At(i, j)
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						z.Add(j, k, -(f*e[k] + g*z.At(i, k)))
					}
				}
			}
		} else {
			e[i] = z.At(i, l)
		}
		d[i] = h
	}
	d[0] = 0.0
	e[0] = 0.0
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				g := 0.0
				for k := 0; k <= l; k++ {
					g += z.At(i, k) * z.At(k, j)
				}
				for k := 0; k <= l; k++ {
					z.Add(k, j, -g*z.At(k, i))
				}
			}
		}
		d[i] = z.At(i, i)
		z.Set(i, i, 1.0)
		for j := 0; j <= l; j++ {
			z.Set(j, i, 0.0)
			z.Set(i, j, 0.0)
		}
	}
}

// tqli applies the implicit-shift QL algorithm to the tridiagonal matrix
// (d, e), updating the eigenvector accumulation in z.
func tqli(d, e []float64, z *Matrix) error {
	n := len(d)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0.0
	for l := 0; l < n; l++ {
		iter := 0
		for {
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= math.SmallestNonzeroFloat64*dd || math.Abs(e[m])+dd == dd {
					break
				}
			}
			if m == l {
				break
			}
			iter++
			if iter > 50 {
				return fmt.Errorf("linalg: eigensolver failed to converge at index %d", l)
			}
			g := (d[l+1] - d[l]) / (2.0 * e[l])
			r := math.Hypot(g, 1.0)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0.0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2.0*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				for k := 0; k < z.Rows; k++ {
					f = z.At(k, i+1)
					z.Set(k, i+1, s*z.At(k, i)+c*f)
					z.Set(k, i, c*z.At(k, i)-s*f)
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0.0
		}
	}
	return nil
}

// sortEigen sorts eigenvalues ascending, permuting eigenvector columns
// alongside (selection sort: n is small and this keeps it allocation-free).
func sortEigen(d []float64, z *Matrix) {
	n := len(d)
	for i := 0; i < n-1; i++ {
		k := i
		for j := i + 1; j < n; j++ {
			if d[j] < d[k] {
				k = j
			}
		}
		if k != i {
			d[i], d[k] = d[k], d[i]
			for r := 0; r < z.Rows; r++ {
				vi, vk := z.At(r, i), z.At(r, k)
				z.Set(r, i, vk)
				z.Set(r, k, vi)
			}
		}
	}
}

// LowdinOrthogonalizer returns X = S^{-1/2} for a symmetric positive
// definite overlap matrix S, computed via its eigendecomposition:
// X = U diag(1/sqrt(s)) U^T. It reports an error when S has an eigenvalue
// below linDepTol, which signals numerical linear dependence in the basis.
func LowdinOrthogonalizer(s *Matrix, linDepTol float64) (*Matrix, error) {
	vals, u := EigenSym(s)
	n := s.Rows
	for _, v := range vals {
		if v < linDepTol {
			return nil, fmt.Errorf("linalg: overlap eigenvalue %.3e below linear-dependence tolerance %.3e", v, linDepTol)
		}
	}
	// X = U * diag(1/sqrt(v)) * U^T
	x := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += u.At(i, k) * u.At(j, k) / math.Sqrt(vals[k])
			}
			x.Set(i, j, sum)
			x.Set(j, i, sum)
		}
	}
	return x, nil
}

// SolveLinear solves the square system a*x = b by Gaussian elimination with
// partial pivoting, returning x. It is used by the DIIS extrapolation.
// a and b are not modified.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols || a.Rows != len(b) {
		panic("linalg: SolveLinear dimension mismatch")
	}
	n := a.Rows
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// partial pivot
		p := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best, p = v, r
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("linalg: singular system at column %d", col)
		}
		if p != col {
			for c := 0; c < n; c++ {
				vp, vc := m.At(p, c), m.At(col, c)
				m.Set(p, c, vc)
				m.Set(col, c, vp)
			}
			x[p], x[col] = x[col], x[p]
		}
		piv := m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) / piv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m.Add(r, c, -f*m.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for c := r + 1; c < n; c++ {
			s -= m.At(r, c) * x[c]
		}
		x[r] = s / m.At(r, r)
	}
	return x, nil
}
