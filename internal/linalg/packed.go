package linalg

// Packed is a symmetric matrix stored in lower-triangular packed form,
// the layout GAMESS uses for the Fock and density matrices. Element (i, j)
// with i >= j lives at index i*(i+1)/2 + j. Packed storage halves the
// footprint of the two big SCF objects, which is exactly what the paper's
// memory equations (3a)-(3c) count.
type Packed struct {
	N    int
	Data []float64 // len == N*(N+1)/2
}

// NewPacked returns a zeroed n x n packed symmetric matrix.
func NewPacked(n int) *Packed {
	return &Packed{N: n, Data: make([]float64, n*(n+1)/2)}
}

// PackedIndex returns the storage index of element (i, j); i and j may be
// given in either order.
func PackedIndex(i, j int) int {
	if i < j {
		i, j = j, i
	}
	return i*(i+1)/2 + j
}

// At returns element (i, j).
func (p *Packed) At(i, j int) float64 { return p.Data[PackedIndex(i, j)] }

// Set stores v at element (i, j).
func (p *Packed) Set(i, j int, v float64) { p.Data[PackedIndex(i, j)] = v }

// Add adds v to element (i, j).
func (p *Packed) Add(i, j int, v float64) { p.Data[PackedIndex(i, j)] += v }

// Zero clears the matrix.
func (p *Packed) Zero() {
	for i := range p.Data {
		p.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (p *Packed) Clone() *Packed {
	c := NewPacked(p.N)
	copy(c.Data, p.Data)
	return c
}

// Unpack expands to a dense symmetric Matrix.
func (p *Packed) Unpack() *Matrix {
	m := NewSquare(p.N)
	for i := 0; i < p.N; i++ {
		for j := 0; j <= i; j++ {
			v := p.At(i, j)
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// Pack compresses a dense symmetric matrix into packed storage, averaging
// (i, j) and (j, i) to tolerate tiny asymmetries.
func Pack(m *Matrix) *Packed {
	if m.Rows != m.Cols {
		panic("linalg: Pack requires a square matrix")
	}
	p := NewPacked(m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j <= i; j++ {
			p.Set(i, j, 0.5*(m.At(i, j)+m.At(j, i)))
		}
	}
	return p
}

// Bytes returns the storage size in bytes (float64 elements only).
func (p *Packed) Bytes() int64 { return int64(len(p.Data)) * 8 }
