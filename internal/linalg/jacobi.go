package linalg

import (
	"math"

	"repro/internal/omp"
)

// Parallel cyclic Jacobi eigensolver. The paper's related work (Chow et
// al.) identifies the replicated O(N^3) Fock diagonalization as the
// scaling bottleneck after Fock assembly is parallelized; this solver
// threads the diagonalization over an OpenMP team using tournament
// (round-robin) orderings: each round rotates n/2 DISJOINT index pairs,
// whose Givens rotations act on disjoint 2D subspaces and therefore
// commute. A round applies all column rotations concurrently (each
// thread owns two columns), barriers, then all row rotations — an exact
// similarity transform J^T A J per round.

// JacobiOptions tunes the solver.
type JacobiOptions struct {
	MaxSweeps int     // default 30
	Tol       float64 // off-diagonal Frobenius tolerance, default 1e-12
}

// JacobiEigenSym computes all eigenvalues and eigenvectors of a symmetric
// matrix with the parallel cyclic Jacobi method on a team of threads.
// Results match EigenSym: ascending eigenvalues, orthonormal column
// eigenvectors. The input is not modified.
func JacobiEigenSym(a *Matrix, team *omp.Team, opt JacobiOptions) (vals []float64, vecs *Matrix) {
	if a.Rows != a.Cols {
		panic("linalg: JacobiEigenSym requires a square matrix")
	}
	if opt.MaxSweeps == 0 {
		opt.MaxSweeps = 30
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-12
	}
	n := a.Rows
	if n == 0 {
		return nil, New(0, 0)
	}
	w := a.Clone()
	v := Identity(n)
	if n == 1 {
		return []float64{w.At(0, 0)}, v
	}

	// Tournament scheduling over m players (n padded to even); player
	// indices >= n are byes.
	m := n
	if m%2 == 1 {
		m++
	}
	players := make([]int, m)
	for i := range players {
		players[i] = i
	}

	cos := make([]float64, m/2)
	sin := make([]float64, m/2)
	pairP := make([]int, m/2)
	pairQ := make([]int, m/2)

	for sweep := 0; sweep < opt.MaxSweeps; sweep++ {
		if offDiagNorm(w) < opt.Tol {
			break
		}
		for round := 0; round < m-1; round++ {
			// Pairs of this round: (players[0], players[m-1]),
			// (players[1], players[m-2]), ...
			nPairs := 0
			for k := 0; k < m/2; k++ {
				p, q := players[k], players[m-1-k]
				if p >= n || q >= n {
					continue
				}
				if p > q {
					p, q = q, p
				}
				app, aqq, apq := w.At(p, p), w.At(q, q), w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				// Standard stable rotation angle.
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				pairP[nPairs], pairQ[nPairs] = p, q
				cos[nPairs], sin[nPairs] = c, t*c
				nPairs++
			}
			if nPairs == 0 {
				rotatePlayers(players)
				continue
			}
			team.Parallel(func(tc *omp.Context) {
				// Column rotations: thread k owns columns (p_k, q_k).
				tc.For(nPairs, omp.Schedule{Kind: omp.Static}, func(k int) {
					p, q, c, s := pairP[k], pairQ[k], cos[k], sin[k]
					for r := 0; r < n; r++ {
						wp, wq := w.At(r, p), w.At(r, q)
						w.Set(r, p, c*wp-s*wq)
						w.Set(r, q, s*wp+c*wq)
						vp, vq := v.At(r, p), v.At(r, q)
						v.Set(r, p, c*vp-s*vq)
						v.Set(r, q, s*vp+c*vq)
					}
				})
				// Row rotations (same pairs; disjoint rows, race-free).
				tc.For(nPairs, omp.Schedule{Kind: omp.Static}, func(k int) {
					p, q, c, s := pairP[k], pairQ[k], cos[k], sin[k]
					for r := 0; r < n; r++ {
						wp, wq := w.At(p, r), w.At(q, r)
						w.Set(p, r, c*wp-s*wq)
						w.Set(q, r, s*wp+c*wq)
					}
				})
			})
			rotatePlayers(players)
		}
	}

	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	sortEigen(vals, v)
	return vals, v
}

// rotatePlayers advances the round-robin tournament: player 0 is fixed,
// the rest rotate by one position.
func rotatePlayers(p []int) {
	if len(p) < 3 {
		return
	}
	last := p[len(p)-1]
	copy(p[2:], p[1:len(p)-1])
	p[1] = last
}

// offDiagNorm returns the Frobenius norm of the off-diagonal part.
func offDiagNorm(m *Matrix) float64 {
	s := 0.0
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i != j {
				v := m.At(i, j)
				s += v * v
			}
		}
	}
	return math.Sqrt(s)
}
