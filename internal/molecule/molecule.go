// Package molecule defines molecular geometries for the Hartree-Fock code:
// atoms, nuclear repulsion, standard small molecules, hydrogen-terminated
// graphene nanoribbons, and the graphene bilayer generator that produces
// the paper's benchmark systems (Table 4) with exact atom counts.
//
// Coordinates are stored in bohr (atomic units); builder helpers accept
// angstroms because that is how the geometries are tabulated.
package molecule

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// BohrPerAngstrom converts angstrom lengths into atomic units.
const BohrPerAngstrom = 1.8897259886

// Atom is a nucleus with charge Z at a position in bohr.
type Atom struct {
	Z      int
	Symbol string
	Pos    [3]float64
}

// Molecule is an ordered collection of atoms plus a total charge used to
// determine the electron count.
type Molecule struct {
	Name   string
	Atoms  []Atom
	Charge int
}

var symbolToZ = map[string]int{
	"H": 1, "He": 2, "Li": 3, "Be": 4, "B": 5, "C": 6, "N": 7, "O": 8,
	"F": 9, "Ne": 10, "Na": 11, "Mg": 12, "Al": 13, "Si": 14, "P": 15,
	"S": 16, "Cl": 17, "Ar": 18,
}

// ZForSymbol returns the atomic number for an element symbol.
func ZForSymbol(sym string) (int, error) {
	z, ok := symbolToZ[sym]
	if !ok {
		return 0, fmt.Errorf("molecule: unknown element %q", sym)
	}
	return z, nil
}

// AddAtomAngstrom appends an atom given in angstrom coordinates.
func (m *Molecule) AddAtomAngstrom(sym string, x, y, z float64) {
	zn, err := ZForSymbol(sym)
	if err != nil {
		panic(err)
	}
	m.Atoms = append(m.Atoms, Atom{
		Z:      zn,
		Symbol: sym,
		Pos:    [3]float64{x * BohrPerAngstrom, y * BohrPerAngstrom, z * BohrPerAngstrom},
	})
}

// NumAtoms returns the number of atoms.
func (m *Molecule) NumAtoms() int { return len(m.Atoms) }

// NumElectrons returns the electron count (sum of Z minus charge).
func (m *Molecule) NumElectrons() int {
	n := 0
	for _, a := range m.Atoms {
		n += a.Z
	}
	return n - m.Charge
}

// NuclearRepulsion returns the classical nucleus-nucleus repulsion energy
// in hartree.
func (m *Molecule) NuclearRepulsion() float64 {
	e := 0.0
	for i := 0; i < len(m.Atoms); i++ {
		for j := 0; j < i; j++ {
			e += float64(m.Atoms[i].Z*m.Atoms[j].Z) / Distance(m.Atoms[i].Pos, m.Atoms[j].Pos)
		}
	}
	return e
}

// Distance returns the Euclidean distance between two points.
func Distance(a, b [3]float64) float64 {
	dx, dy, dz := a[0]-b[0], a[1]-b[1], a[2]-b[2]
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// Centroid returns the geometric center of the molecule.
func (m *Molecule) Centroid() [3]float64 {
	var c [3]float64
	if len(m.Atoms) == 0 {
		return c
	}
	for _, a := range m.Atoms {
		for k := 0; k < 3; k++ {
			c[k] += a.Pos[k]
		}
	}
	for k := 0; k < 3; k++ {
		c[k] /= float64(len(m.Atoms))
	}
	return c
}

// XYZ renders the molecule in the conventional XYZ text format (angstrom).
func (m *Molecule) XYZ() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d\n%s\n", len(m.Atoms), m.Name)
	for _, a := range m.Atoms {
		fmt.Fprintf(&b, "%-2s %14.8f %14.8f %14.8f\n", a.Symbol,
			a.Pos[0]/BohrPerAngstrom, a.Pos[1]/BohrPerAngstrom, a.Pos[2]/BohrPerAngstrom)
	}
	return b.String()
}

// ParseXYZ parses the conventional XYZ format (angstrom coordinates).
func ParseXYZ(text string) (*Molecule, error) {
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) < 2 {
		return nil, fmt.Errorf("molecule: XYZ too short")
	}
	var n int
	if _, err := fmt.Sscanf(strings.TrimSpace(lines[0]), "%d", &n); err != nil {
		return nil, fmt.Errorf("molecule: bad atom count line: %v", err)
	}
	if len(lines) < 2+n {
		return nil, fmt.Errorf("molecule: XYZ declares %d atoms but has %d lines", n, len(lines))
	}
	m := &Molecule{Name: strings.TrimSpace(lines[1])}
	for i := 0; i < n; i++ {
		var sym string
		var x, y, z float64
		if _, err := fmt.Sscanf(strings.TrimSpace(lines[2+i]), "%s %f %f %f", &sym, &x, &y, &z); err != nil {
			return nil, fmt.Errorf("molecule: bad atom line %d: %v", i, err)
		}
		if _, err := ZForSymbol(sym); err != nil {
			return nil, err
		}
		m.AddAtomAngstrom(sym, x, y, z)
	}
	return m, nil
}

// --- Standard small molecules (real-execution test workloads) ---

// H2 returns molecular hydrogen at 0.74 angstrom.
func H2() *Molecule {
	m := &Molecule{Name: "H2"}
	m.AddAtomAngstrom("H", 0, 0, 0)
	m.AddAtomAngstrom("H", 0, 0, 0.74)
	return m
}

// HeHPlus returns the HeH+ cation, the classic two-electron closed-shell
// test system.
func HeHPlus() *Molecule {
	m := &Molecule{Name: "HeH+", Charge: 1}
	m.AddAtomAngstrom("He", 0, 0, 0)
	m.AddAtomAngstrom("H", 0, 0, 0.7743)
	return m
}

// Water returns H2O at a near-equilibrium geometry.
func Water() *Molecule {
	m := &Molecule{Name: "H2O"}
	m.AddAtomAngstrom("O", 0.0000000, 0.0000000, 0.1173470)
	m.AddAtomAngstrom("H", 0.0000000, 0.7572160, -0.4693880)
	m.AddAtomAngstrom("H", 0.0000000, -0.7572160, -0.4693880)
	return m
}

// Methane returns CH4 in tetrahedral geometry (r_CH = 1.089 angstrom).
func Methane() *Molecule {
	m := &Molecule{Name: "CH4"}
	d := 1.089 / math.Sqrt(3)
	m.AddAtomAngstrom("C", 0, 0, 0)
	m.AddAtomAngstrom("H", d, d, d)
	m.AddAtomAngstrom("H", d, -d, -d)
	m.AddAtomAngstrom("H", -d, d, -d)
	m.AddAtomAngstrom("H", -d, -d, d)
	return m
}

// Ammonia returns NH3.
func Ammonia() *Molecule {
	m := &Molecule{Name: "NH3"}
	m.AddAtomAngstrom("N", 0.0000, 0.0000, 0.1173)
	m.AddAtomAngstrom("H", 0.0000, 0.9377, -0.2738)
	m.AddAtomAngstrom("H", 0.8121, -0.4689, -0.2738)
	m.AddAtomAngstrom("H", -0.8121, -0.4689, -0.2738)
	return m
}

// Benzene returns C6H6 (r_CC = 1.39, r_CH = 1.09 angstrom, planar).
func Benzene() *Molecule {
	m := &Molecule{Name: "C6H6"}
	const rc, rh = 1.39, 1.39 + 1.09
	for i := 0; i < 6; i++ {
		th := float64(i) * math.Pi / 3
		m.AddAtomAngstrom("C", rc*math.Cos(th), rc*math.Sin(th), 0)
	}
	for i := 0; i < 6; i++ {
		th := float64(i) * math.Pi / 3
		m.AddAtomAngstrom("H", rh*math.Cos(th), rh*math.Sin(th), 0)
	}
	return m
}

// --- Graphene generators (the paper's benchmark systems) ---

// CCBond is the graphene carbon-carbon bond length in angstrom.
const CCBond = 1.42

// InterlayerSpacing is the graphite interlayer distance in angstrom.
const InterlayerSpacing = 3.35

// grapheneLattice generates honeycomb lattice sites covering roughly
// (2*nx+1) x (2*ny+1) unit cells centered at the origin, in angstrom.
// The lattice vectors are a1=(sqrt(3) a, 0), a2=(sqrt(3)/2 a, 3/2 a) with
// the two-atom basis (0,0) and (0, a), a = CCBond.
func grapheneLattice(nx, ny int) [][3]float64 {
	a := CCBond
	a1 := [2]float64{math.Sqrt(3) * a, 0}
	a2 := [2]float64{math.Sqrt(3) / 2 * a, 1.5 * a}
	var pts [][3]float64
	for i := -nx; i <= nx; i++ {
		for j := -ny; j <= ny; j++ {
			bx := float64(i)*a1[0] + float64(j)*a2[0]
			by := float64(i)*a1[1] + float64(j)*a2[1]
			pts = append(pts, [3]float64{bx, by, 0})
			pts = append(pts, [3]float64{bx, by + a, 0})
		}
	}
	return pts
}

// GrapheneFlake returns a single-layer graphene flake with exactly n carbon
// atoms: the n lattice sites closest to the flake center, with a
// deterministic tie-break. This is how the repository realizes the paper's
// "easily manipulated" graphene sheet sizes.
func GrapheneFlake(n int) *Molecule {
	if n <= 0 {
		panic("molecule: GrapheneFlake needs n > 0")
	}
	// Enough cells to cover n sites generously.
	span := int(math.Ceil(math.Sqrt(float64(n)))) + 3
	pts := grapheneLattice(span, span)
	sort.Slice(pts, func(i, j int) bool {
		ri := pts[i][0]*pts[i][0] + pts[i][1]*pts[i][1]
		rj := pts[j][0]*pts[j][0] + pts[j][1]*pts[j][1]
		if ri != rj {
			return ri < rj
		}
		if pts[i][0] != pts[j][0] {
			return pts[i][0] < pts[j][0]
		}
		return pts[i][1] < pts[j][1]
	})
	m := &Molecule{Name: fmt.Sprintf("graphene-C%d", n)}
	for _, p := range pts[:n] {
		m.AddAtomAngstrom("C", p[0], p[1], p[2])
	}
	return m
}

// GrapheneBilayer returns an AB-stacked bilayer with atomsPerLayer carbons
// in each layer, separated by the graphite interlayer spacing.
func GrapheneBilayer(atomsPerLayer int) *Molecule {
	layer := GrapheneFlake(atomsPerLayer)
	m := &Molecule{Name: fmt.Sprintf("bilayer-graphene-C%d", 2*atomsPerLayer)}
	for _, a := range layer.Atoms {
		m.Atoms = append(m.Atoms, a)
	}
	// AB stacking: second layer shifted by one bond length along y.
	shift := CCBond * BohrPerAngstrom
	dz := InterlayerSpacing * BohrPerAngstrom
	for _, a := range layer.Atoms {
		m.Atoms = append(m.Atoms, Atom{
			Z: a.Z, Symbol: a.Symbol,
			Pos: [3]float64{a.Pos[0], a.Pos[1] + shift, a.Pos[2] + dz},
		})
	}
	return m
}

// PaperSystemSpec records the published size characteristics of one of the
// paper's benchmark systems (Table 4).
type PaperSystemSpec struct {
	Name   string
	Atoms  int
	Shells int // GAMESS shell count with 6-31G(d): 4 per carbon (S, L, L, D)
	BasisF int // 15 basis functions per carbon (1 + 4 + 4 + 6 cartesian d)
}

// PaperSystems lists the five graphene bilayer configurations of Table 4.
var PaperSystems = []PaperSystemSpec{
	{Name: "0.5nm", Atoms: 44, Shells: 176, BasisF: 660},
	{Name: "1.0nm", Atoms: 120, Shells: 480, BasisF: 1800},
	{Name: "1.5nm", Atoms: 220, Shells: 880, BasisF: 3300},
	{Name: "2.0nm", Atoms: 356, Shells: 1424, BasisF: 5340},
	{Name: "5.0nm", Atoms: 2016, Shells: 8064, BasisF: 30240},
}

// PaperSystemNames lists the benchmark systems PaperSystem accepts, in
// Table 4 order.
func PaperSystemNames() []string {
	names := make([]string, len(PaperSystems))
	for i, s := range PaperSystems {
		names[i] = s.Name
	}
	return names
}

// PaperSystem builds the named benchmark system ("0.5nm" ... "5.0nm") as a
// graphene bilayer with the exact Table 4 atom count. The unknown-name
// error lists the available systems, derived from PaperSystems so it can
// never go stale.
func PaperSystem(name string) (*Molecule, error) {
	for _, s := range PaperSystems {
		if s.Name == name {
			m := GrapheneBilayer(s.Atoms / 2)
			m.Name = "bilayer-graphene-" + name
			return m, nil
		}
	}
	return nil, fmt.Errorf("molecule: unknown paper system %q (available: %s)",
		name, strings.Join(PaperSystemNames(), ", "))
}

// CHBond is the carbon-hydrogen bond length used for edge termination
// (angstrom).
const CHBond = 1.09

// GrapheneNanoribbon returns a hydrogen-terminated rectangular graphene
// fragment of roughly width x length angstrom — the nanoribbon geometry
// of the superlubricity experiments the paper's benchmark systems model
// (Kawai et al. 2016). Edge carbons with fewer than three carbon
// neighbors receive hydrogens along the missing lattice directions,
// giving a chemically saturated, closed-shell system suitable for real
// RHF runs (bare flakes have open-shell edges).
func GrapheneNanoribbon(widthAng, lengthAng float64) *Molecule {
	if widthAng <= 0 || lengthAng <= 0 {
		panic("molecule: nanoribbon dimensions must be positive")
	}
	// Oversized lattice patch (angstrom coordinates). The cut window is
	// centered on a hexagon center so that small cuts produce complete
	// benzenoid rings (benzene, naphthalene, ...) rather than fragments.
	span := int(math.Ceil(math.Max(widthAng, lengthAng)/CCBond)) + 3
	pts := grapheneLattice(span, span)
	cx, cy := math.Sqrt(3)/2*CCBond, CCBond/2
	inRect := func(p [3]float64) bool {
		return math.Abs(p[0]-cx) <= lengthAng/2 && math.Abs(p[1]-cy) <= widthAng/2
	}
	var carbons [][3]float64
	for _, p := range pts {
		if inRect(p) {
			carbons = append(carbons, p)
		}
	}
	sort.Slice(carbons, func(i, j int) bool {
		if carbons[i][0] != carbons[j][0] {
			return carbons[i][0] < carbons[j][0]
		}
		return carbons[i][1] < carbons[j][1]
	})
	inSet := func(p [3]float64) bool {
		for _, c := range carbons {
			dx, dy := c[0]-p[0], c[1]-p[1]
			if dx*dx+dy*dy < 1e-6 {
				return true
			}
		}
		return false
	}
	m := &Molecule{Name: fmt.Sprintf("nanoribbon-%gx%g", widthAng, lengthAng)}
	for _, c := range carbons {
		m.AddAtomAngstrom("C", c[0], c[1], 0)
	}
	// Terminate: for each carbon, find ideal lattice neighbors from the
	// full patch; absent ones become C-H directions.
	for _, c := range carbons {
		for _, p := range pts {
			dx, dy := p[0]-c[0], p[1]-c[1]
			d2 := dx*dx + dy*dy
			if d2 < 1e-6 || d2 > (CCBond*1.05)*(CCBond*1.05) {
				continue
			}
			if inSet(p) {
				continue
			}
			// Missing neighbor: hydrogen along this direction at CHBond.
			d := math.Sqrt(d2)
			m.AddAtomAngstrom("H", c[0]+dx/d*CHBond, c[1]+dy/d*CHBond, 0)
		}
	}
	return m
}
