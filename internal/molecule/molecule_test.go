package molecule

import (
	"math"
	"strings"
	"testing"
)

func TestNumElectrons(t *testing.T) {
	if got := Water().NumElectrons(); got != 10 {
		t.Fatalf("water electrons = %d", got)
	}
	if got := HeHPlus().NumElectrons(); got != 2 {
		t.Fatalf("HeH+ electrons = %d", got)
	}
	if got := Methane().NumElectrons(); got != 10 {
		t.Fatalf("CH4 electrons = %d", got)
	}
	if got := Benzene().NumElectrons(); got != 42 {
		t.Fatalf("benzene electrons = %d", got)
	}
}

func TestNuclearRepulsionH2(t *testing.T) {
	// Two protons at 0.74 A: E = 1/(0.74*1.8897...) hartree.
	want := 1.0 / (0.74 * BohrPerAngstrom)
	if got := H2().NuclearRepulsion(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("H2 Vnn = %v want %v", got, want)
	}
}

func TestNuclearRepulsionWater(t *testing.T) {
	// Literature value for this geometry is about 9.19 hartree.
	got := Water().NuclearRepulsion()
	if got < 8.5 || got > 9.8 {
		t.Fatalf("water Vnn = %v out of expected window", got)
	}
}

func TestZForSymbol(t *testing.T) {
	if z, err := ZForSymbol("C"); err != nil || z != 6 {
		t.Fatalf("C -> %d, %v", z, err)
	}
	if _, err := ZForSymbol("Xx"); err == nil {
		t.Fatal("expected error for unknown element")
	}
}

func TestXYZRoundTrip(t *testing.T) {
	m := Water()
	parsed, err := ParseXYZ(m.XYZ())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.NumAtoms() != 3 {
		t.Fatalf("parsed %d atoms", parsed.NumAtoms())
	}
	for i, a := range parsed.Atoms {
		for k := 0; k < 3; k++ {
			if math.Abs(a.Pos[k]-m.Atoms[i].Pos[k]) > 1e-6 {
				t.Fatalf("atom %d coord %d mismatch", i, k)
			}
		}
	}
}

func TestParseXYZErrors(t *testing.T) {
	cases := []string{
		"",
		"x\ncomment\n",
		"2\nonly one atom\nH 0 0 0\n",
		"1\nbad element\nQq 0 0 0\n",
		"1\nbad coord\nH a b c\n",
	}
	for i, c := range cases {
		if _, err := ParseXYZ(c); err == nil {
			t.Fatalf("case %d: expected parse error", i)
		}
	}
}

func TestGrapheneFlakeBondLengths(t *testing.T) {
	m := GrapheneFlake(24)
	// Every atom must have a nearest neighbor at exactly the C-C bond
	// length (within float tolerance): the honeycomb lattice is correct.
	bond := CCBond * BohrPerAngstrom
	for i := range m.Atoms {
		nearest := math.Inf(1)
		for j := range m.Atoms {
			if i == j {
				continue
			}
			if d := Distance(m.Atoms[i].Pos, m.Atoms[j].Pos); d < nearest {
				nearest = d
			}
		}
		if math.Abs(nearest-bond) > 1e-8 {
			t.Fatalf("atom %d nearest neighbor %.6f bohr, want %.6f", i, nearest, bond)
		}
	}
}

func TestGrapheneFlakeDeterministic(t *testing.T) {
	a, b := GrapheneFlake(50), GrapheneFlake(50)
	for i := range a.Atoms {
		if a.Atoms[i].Pos != b.Atoms[i].Pos {
			t.Fatal("flake generation not deterministic")
		}
	}
}

func TestGrapheneFlakeNoDuplicates(t *testing.T) {
	m := GrapheneFlake(100)
	for i := range m.Atoms {
		for j := 0; j < i; j++ {
			if Distance(m.Atoms[i].Pos, m.Atoms[j].Pos) < 1e-6 {
				t.Fatalf("duplicate atoms %d and %d", i, j)
			}
		}
	}
}

func TestGrapheneBilayerStructure(t *testing.T) {
	m := GrapheneBilayer(22)
	if m.NumAtoms() != 44 {
		t.Fatalf("bilayer atoms = %d", m.NumAtoms())
	}
	// Two distinct z planes separated by the interlayer spacing.
	z0, z1 := m.Atoms[0].Pos[2], m.Atoms[22].Pos[2]
	want := InterlayerSpacing * BohrPerAngstrom
	if math.Abs(z1-z0-want) > 1e-9 {
		t.Fatalf("interlayer spacing = %v want %v", z1-z0, want)
	}
	for i := 0; i < 22; i++ {
		if m.Atoms[i].Pos[2] != z0 || m.Atoms[22+i].Pos[2] != z1 {
			t.Fatal("atoms not arranged in two planes")
		}
	}
}

func TestPaperSystemsTable4AtomCounts(t *testing.T) {
	// EXP-T4: the generator must reproduce Table 4 exactly.
	for _, spec := range PaperSystems {
		m, err := PaperSystem(spec.Name)
		if err != nil {
			t.Fatal(err)
		}
		if m.NumAtoms() != spec.Atoms {
			t.Fatalf("%s: atoms = %d want %d", spec.Name, m.NumAtoms(), spec.Atoms)
		}
		for _, a := range m.Atoms {
			if a.Symbol != "C" {
				t.Fatalf("%s: non-carbon atom %q", spec.Name, a.Symbol)
			}
		}
		// Shell and BF counts with 6-31G(d): 4 shells, 15 BFs per carbon.
		if got := 4 * m.NumAtoms(); got != spec.Shells {
			t.Fatalf("%s: shells = %d want %d", spec.Name, got, spec.Shells)
		}
		if got := 15 * m.NumAtoms(); got != spec.BasisF {
			t.Fatalf("%s: BFs = %d want %d", spec.Name, got, spec.BasisF)
		}
	}
}

func TestPaperSystemUnknown(t *testing.T) {
	if _, err := PaperSystem("3.0nm"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("expected unknown-system error, got %v", err)
	}
}

func TestCentroidSymmetry(t *testing.T) {
	c := H2().Centroid()
	want := 0.37 * BohrPerAngstrom
	if math.Abs(c[2]-want) > 1e-12 || c[0] != 0 || c[1] != 0 {
		t.Fatalf("H2 centroid = %v", c)
	}
}

func TestGrapheneFlakeCompact(t *testing.T) {
	// The flake should be compact: max radius for n atoms should be within
	// a small factor of the ideal disc radius (area per atom is
	// 3*sqrt(3)/4 * a^2 for honeycomb).
	n := 200
	m := GrapheneFlake(n)
	c := m.Centroid()
	maxR := 0.0
	for _, a := range m.Atoms {
		if d := Distance(a.Pos, c); d > maxR {
			maxR = d
		}
	}
	areaPerAtom := 3 * math.Sqrt(3) / 4 * CCBond * CCBond * BohrPerAngstrom * BohrPerAngstrom
	ideal := math.Sqrt(float64(n) * areaPerAtom / math.Pi)
	if maxR > 1.6*ideal {
		t.Fatalf("flake not compact: maxR=%v ideal=%v", maxR, ideal)
	}
}

func TestGrapheneNanoribbonSaturated(t *testing.T) {
	m := GrapheneNanoribbon(4.5, 5.5)
	nC, nH := 0, 0
	for _, a := range m.Atoms {
		switch a.Symbol {
		case "C":
			nC++
		case "H":
			nH++
		default:
			t.Fatalf("unexpected element %s", a.Symbol)
		}
	}
	if nC == 0 || nH == 0 {
		t.Fatalf("nC=%d nH=%d", nC, nH)
	}
	// Every carbon must have exactly three bonded neighbors (C at 1.42 or
	// H at 1.09): the fragment is chemically saturated.
	ccBond := CCBond * BohrPerAngstrom
	chBond := CHBond * BohrPerAngstrom
	for i, a := range m.Atoms {
		if a.Symbol != "C" {
			continue
		}
		neighbors := 0
		for j, b := range m.Atoms {
			if i == j {
				continue
			}
			d := Distance(a.Pos, b.Pos)
			if (b.Symbol == "C" && math.Abs(d-ccBond) < 0.05) ||
				(b.Symbol == "H" && math.Abs(d-chBond) < 0.05) {
				neighbors++
			}
		}
		if neighbors != 3 {
			t.Fatalf("carbon %d has %d neighbors", i, neighbors)
		}
	}
	// Saturated hydrocarbons from even-ring graphene cuts are closed
	// shell.
	if m.NumElectrons()%2 != 0 {
		t.Fatalf("odd electron count %d", m.NumElectrons())
	}
}

func TestGrapheneNanoribbonBenzeneLimit(t *testing.T) {
	// A cut just covering one hexagon must give benzene (C6H6).
	m := GrapheneNanoribbon(3.0, 2.6)
	nC, nH := 0, 0
	for _, a := range m.Atoms {
		if a.Symbol == "C" {
			nC++
		} else {
			nH++
		}
	}
	if nC != 6 || nH != 6 {
		t.Fatalf("smallest ribbon = C%dH%d, want C6H6", nC, nH)
	}
}

func TestGrapheneNanoribbonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GrapheneNanoribbon(-1, 5)
}
