package basis

// First-row elements beyond H/C/N/O, completing STO-3G coverage of
// Li through Ne (and fluorine for the 6-31G family). Values are the
// standard published exponents; the shared STO-3G contraction
// coefficients live in data.go.

func init() {
	sto3g["Li"] = []shellSpec{
		{moments: []int{S}, exps: []float64{16.11957475, 2.936200663, 0.794650487},
			coefs: [][]float64{sto3gS1Coef}},
		{moments: []int{S, P}, exps: []float64{0.6362897469, 0.1478600533, 0.0480886784},
			coefs: [][]float64{sto3gS2Coef, sto3gP2Coef}},
	}
	sto3g["Be"] = []shellSpec{
		{moments: []int{S}, exps: []float64{30.16787069, 5.495115306, 1.487192653},
			coefs: [][]float64{sto3gS1Coef}},
		{moments: []int{S, P}, exps: []float64{1.314833110, 0.3055389383, 0.0993707456},
			coefs: [][]float64{sto3gS2Coef, sto3gP2Coef}},
	}
	sto3g["B"] = []shellSpec{
		{moments: []int{S}, exps: []float64{48.79111318, 8.887362172, 2.405267040},
			coefs: [][]float64{sto3gS1Coef}},
		{moments: []int{S, P}, exps: []float64{2.236956142, 0.5198204999, 0.1690617600},
			coefs: [][]float64{sto3gS2Coef, sto3gP2Coef}},
	}
	sto3g["F"] = []shellSpec{
		{moments: []int{S}, exps: []float64{166.6791340, 30.36081233, 8.216820672},
			coefs: [][]float64{sto3gS1Coef}},
		{moments: []int{S, P}, exps: []float64{6.464803249, 1.502281245, 0.4885884864},
			coefs: [][]float64{sto3gS2Coef, sto3gP2Coef}},
	}
	sto3g["Ne"] = []shellSpec{
		{moments: []int{S}, exps: []float64{207.0156100, 37.70815124, 10.20529731},
			coefs: [][]float64{sto3gS1Coef}},
		{moments: []int{S, P}, exps: []float64{8.246315120, 1.916266291, 0.6232292721},
			coefs: [][]float64{sto3gS2Coef, sto3gP2Coef}},
	}
	// Fluorine for the 6-31G family (the polarization d is attached by
	// pople631g's caller at registration time below).
	fluorine := []shellSpec{
		{moments: []int{S},
			exps:  []float64{7001.713090, 1051.366090, 239.2856900, 67.39744530, 21.51995730, 7.403101300},
			coefs: [][]float64{{0.00181962, 0.01391608, 0.06840532, 0.23318576, 0.47126744, 0.35661855}}},
		{moments: []int{S, P},
			exps: []float64{20.84795280, 4.808308340, 1.344069860},
			coefs: [][]float64{
				{-0.10850698, -0.14645166, 1.12868860},
				{0.07162872, 0.34591210, 0.72246996}}},
		{moments: []int{S, P}, exps: []float64{0.3581513930},
			coefs: [][]float64{{1.0}, {1.0}}},
	}
	libraries["6-31g"]["F"] = fluorine
	withD := append(append([]shellSpec(nil), fluorine...), shellSpec{
		moments: []int{D}, exps: []float64{0.8}, coefs: [][]float64{{1.0}},
	})
	libraries["6-31g(d)"]["F"] = withD
}
