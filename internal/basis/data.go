package basis

import "strings"

// shellSpec is one shell of a tabulated basis set: which angular momenta it
// carries, the shared primitive exponents, and the raw (unnormalized)
// contraction coefficients per moment.
type shellSpec struct {
	moments []int
	exps    []float64
	coefs   [][]float64
}

func normalizeName(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// libraries holds the built-in basis set data. Coefficients are the
// standard published values (EMSL basis set exchange); tiny transcription
// deviations would only shift total energies marginally and are covered by
// the windowed energy tests rather than exact literature comparisons.
var libraries = map[string]map[string][]shellSpec{
	"sto-3g":   sto3g,
	"6-31g":    pople631g(false),
	"6-31g(d)": pople631g(true),
}

// --- STO-3G ---

// STO-3G shares the same contraction coefficients for every element; only
// the exponents are scaled.
var (
	sto3gS1Coef = []float64{0.15432897, 0.53532814, 0.44463454}
	sto3gS2Coef = []float64{-0.09996723, 0.39951283, 0.70011547}
	sto3gP2Coef = []float64{0.15591627, 0.60768372, 0.39195739}
)

var sto3g = map[string][]shellSpec{
	"H": {
		{moments: []int{S}, exps: []float64{3.42525091, 0.62391373, 0.16885540},
			coefs: [][]float64{sto3gS1Coef}},
	},
	"He": {
		{moments: []int{S}, exps: []float64{6.36242139, 1.15892300, 0.31364979},
			coefs: [][]float64{sto3gS1Coef}},
	},
	"C": {
		{moments: []int{S}, exps: []float64{71.61683735, 13.04509632, 3.53051216},
			coefs: [][]float64{sto3gS1Coef}},
		{moments: []int{S, P}, exps: []float64{2.94124940, 0.68348310, 0.22228990},
			coefs: [][]float64{sto3gS2Coef, sto3gP2Coef}},
	},
	"N": {
		{moments: []int{S}, exps: []float64{99.10616896, 18.05231239, 4.88566024},
			coefs: [][]float64{sto3gS1Coef}},
		{moments: []int{S, P}, exps: []float64{3.78045590, 0.87849664, 0.28571437},
			coefs: [][]float64{sto3gS2Coef, sto3gP2Coef}},
	},
	"O": {
		{moments: []int{S}, exps: []float64{130.70932140, 23.80886605, 6.44360831},
			coefs: [][]float64{sto3gS1Coef}},
		{moments: []int{S, P}, exps: []float64{5.03315132, 1.16959612, 0.38038896},
			coefs: [][]float64{sto3gS2Coef, sto3gP2Coef}},
	},
}

// --- 6-31G and 6-31G(d) ---

// pople631g assembles the 6-31G family. With polarization=true a single
// cartesian d shell (exponent 0.8) is added on C, N, O — that is 6-31G(d),
// the basis of every benchmark in the paper. Hydrogens stay unpolarized
// (6-31G(d,p) would add p on H; the paper uses 6-31G(d)).
func pople631g(polarization bool) map[string][]shellSpec {
	lib := map[string][]shellSpec{
		"H": {
			{moments: []int{S}, exps: []float64{18.73113700, 2.82539370, 0.64012170},
				coefs: [][]float64{{0.03349460, 0.23472695, 0.81375733}}},
			{moments: []int{S}, exps: []float64{0.16127780},
				coefs: [][]float64{{1.0}}},
		},
		"C": {
			{moments: []int{S},
				exps:  []float64{3047.52490, 457.36951, 103.94869, 29.21015500, 9.28666300, 3.16392700},
				coefs: [][]float64{{0.00183470, 0.01403730, 0.06884260, 0.23218440, 0.46794130, 0.36231200}}},
			{moments: []int{S, P},
				exps: []float64{7.86827240, 1.88128850, 0.54424930},
				coefs: [][]float64{
					{-0.11933240, -0.16085420, 1.14345640},
					{0.06899910, 0.31642400, 0.74430830}}},
			{moments: []int{S, P}, exps: []float64{0.16871440},
				coefs: [][]float64{{1.0}, {1.0}}},
		},
		"N": {
			{moments: []int{S},
				exps:  []float64{4173.51100, 627.45790, 142.90210, 40.23433000, 12.82021000, 3.93586600},
				coefs: [][]float64{{0.00183480, 0.01399500, 0.06858700, 0.23224100, 0.46907000, 0.36045500}}},
			{moments: []int{S, P},
				exps: []float64{11.62635800, 2.71628000, 0.77221800},
				coefs: [][]float64{
					{-0.11496100, -0.16911800, 1.14585200},
					{0.06758000, 0.32390700, 0.74089500}}},
			{moments: []int{S, P}, exps: []float64{0.21203130},
				coefs: [][]float64{{1.0}, {1.0}}},
		},
		"O": {
			{moments: []int{S},
				exps:  []float64{5484.67170, 825.23495, 188.04696, 52.96450000, 16.89757000, 5.79963530},
				coefs: [][]float64{{0.00183110, 0.01395010, 0.06844510, 0.23271430, 0.47019300, 0.35852090}}},
			{moments: []int{S, P},
				exps: []float64{15.53961600, 3.59993360, 1.01376180},
				coefs: [][]float64{
					{-0.11077750, -0.14802630, 1.13076700},
					{0.07087430, 0.33975280, 0.72715860}}},
			{moments: []int{S, P}, exps: []float64{0.27000580},
				coefs: [][]float64{{1.0}, {1.0}}},
		},
	}
	if polarization {
		dExp := map[string]float64{"C": 0.8, "N": 0.8, "O": 0.8}
		for el, e := range dExp {
			lib[el] = append(lib[el], shellSpec{
				moments: []int{D}, exps: []float64{e}, coefs: [][]float64{{1.0}},
			})
		}
	}
	return lib
}
