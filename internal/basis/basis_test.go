package basis

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/molecule"
)

func TestNumCart(t *testing.T) {
	want := []int{1, 3, 6, 10, 15}
	for l, w := range want {
		if NumCart(l) != w {
			t.Fatalf("NumCart(%d) = %d want %d", l, NumCart(l), w)
		}
	}
}

func TestCartComponentsCountAndSum(t *testing.T) {
	for l := 0; l <= 5; l++ {
		comps := CartComponents(l)
		if len(comps) != NumCart(l) {
			t.Fatalf("l=%d: %d components", l, len(comps))
		}
		seen := map[[3]int]bool{}
		for _, c := range comps {
			if c[0]+c[1]+c[2] != l {
				t.Fatalf("l=%d: component %v sums to %d", l, c, c[0]+c[1]+c[2])
			}
			if seen[c] {
				t.Fatalf("l=%d: duplicate component %v", l, c)
			}
			seen[c] = true
		}
	}
}

func TestCartComponentsGAMESSOrder(t *testing.T) {
	d := CartComponents(2)
	want := [][3]int{{2, 0, 0}, {0, 2, 0}, {0, 0, 2}, {1, 1, 0}, {1, 0, 1}, {0, 1, 1}}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("d ordering: got %v want %v", d, want)
		}
	}
}

func TestDoubleFactorial(t *testing.T) {
	cases := map[int]float64{0: 1, 1: 1, 2: 3, 3: 15, 4: 105}
	for n, w := range cases {
		if DoubleFactorial(n) != w {
			t.Fatalf("(2*%d-1)!! = %v want %v", n, DoubleFactorial(n), w)
		}
	}
}

func TestCartNormFactor(t *testing.T) {
	if CartNormFactor(2, 0, 0) != 1 {
		t.Fatal("axial d factor should be 1")
	}
	if math.Abs(CartNormFactor(1, 1, 0)-math.Sqrt(3)) > 1e-15 {
		t.Fatalf("dxy factor = %v", CartNormFactor(1, 1, 0))
	}
	if math.Abs(CartNormFactor(1, 1, 1)-math.Sqrt(15)) > 1e-14 {
		t.Fatalf("fxyz factor = %v", CartNormFactor(1, 1, 1))
	}
}

func TestBuildWaterSTO3G(t *testing.T) {
	b, err := Build(molecule.Water(), "STO-3G")
	if err != nil {
		t.Fatal(err)
	}
	// O: 1s + L(2s2p) = 2 shells, 1+4 = 5 BFs; H: 1 shell, 1 BF each.
	if b.NumShells() != 4 {
		t.Fatalf("shells = %d", b.NumShells())
	}
	if b.NumBF != 7 {
		t.Fatalf("NumBF = %d", b.NumBF)
	}
	if b.MaxL() != 1 {
		t.Fatalf("MaxL = %d", b.MaxL())
	}
}

func TestBuildCarbon631Gd(t *testing.T) {
	m := &molecule.Molecule{Name: "C"}
	m.AddAtomAngstrom("C", 0, 0, 0)
	b, err := Build(m, "6-31G(d)")
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 4: 4 shells and 15 BFs per carbon.
	if b.NumShells() != 4 {
		t.Fatalf("C 6-31G(d) shells = %d want 4", b.NumShells())
	}
	if b.NumBF != 15 {
		t.Fatalf("C 6-31G(d) BFs = %d want 15", b.NumBF)
	}
	if b.MaxL() != 2 {
		t.Fatalf("MaxL = %d", b.MaxL())
	}
	if b.ShellSizeMax() != 6 {
		t.Fatalf("ShellSizeMax = %d want 6 (cartesian d)", b.ShellSizeMax())
	}
}

func TestBuildOffsetsContiguous(t *testing.T) {
	b, err := Build(molecule.Methane(), "6-31g")
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for i := range b.Shells {
		if b.Shells[i].BFOffset != off {
			t.Fatalf("shell %d offset = %d want %d", i, b.Shells[i].BFOffset, off)
		}
		off += b.Shells[i].NumFuncs()
	}
	if off != b.NumBF {
		t.Fatalf("total offsets %d != NumBF %d", off, b.NumBF)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(molecule.Water(), "cc-pVDZ"); err == nil {
		t.Fatal("expected unknown basis error")
	}
	m := &molecule.Molecule{}
	m.AddAtomAngstrom("Cl", 0, 0, 0)
	if _, err := Build(m, "sto-3g"); err == nil {
		t.Fatal("expected missing-element error")
	}
}

func TestLShellStructure(t *testing.T) {
	m := &molecule.Molecule{Name: "C"}
	m.AddAtomAngstrom("C", 0, 0, 0)
	b, _ := Build(m, "sto-3g")
	l := b.Shells[1]
	if len(l.Moments) != 2 || l.Moments[0] != S || l.Moments[1] != P {
		t.Fatalf("second carbon shell should be L (SP): %v", l.Moments)
	}
	if l.NumFuncs() != 4 {
		t.Fatalf("L shell BFs = %d want 4", l.NumFuncs())
	}
	if len(l.Coefs) != 2 || len(l.Coefs[0]) != len(l.Exps) {
		t.Fatal("L shell coefficient layout wrong")
	}
}

// TestNormalizationSelfOverlap verifies through the normalization math
// itself: after normalize(), the contracted axial self-overlap must be 1.
func TestNormalizationSelfOverlap(t *testing.T) {
	b, _ := Build(molecule.Water(), "6-31g")
	for si, sh := range b.Shells {
		for mi, l := range sh.Moments {
			self := 0.0
			for p, ap := range sh.Exps {
				for q, aq := range sh.Exps {
					g := ap + aq
					ov := DoubleFactorial(l) / math.Pow(2*g, float64(l)) *
						math.Pow(math.Pi/g, 1.5)
					self += sh.Coefs[mi][p] * sh.Coefs[mi][q] * ov
				}
			}
			if math.Abs(self-1) > 1e-12 {
				t.Fatalf("shell %d moment %d self-overlap = %v", si, l, self)
			}
		}
	}
}

func TestBuildIsolatedCopies(t *testing.T) {
	// Build twice and mutate one; the library tables must not be shared.
	m := &molecule.Molecule{Name: "C"}
	m.AddAtomAngstrom("C", 0, 0, 0)
	b1, _ := Build(m, "sto-3g")
	orig := b1.Shells[0].Coefs[0][0]
	b1.Shells[0].Coefs[0][0] = 999
	b2, _ := Build(m, "sto-3g")
	if b2.Shells[0].Coefs[0][0] == 999 {
		t.Fatal("Build shares coefficient storage across calls")
	}
	if math.Abs(b2.Shells[0].Coefs[0][0]-orig) > 1e-15 {
		t.Fatal("coefficients differ between identical builds")
	}
}

func TestBFLabels(t *testing.T) {
	b, _ := Build(molecule.Water(), "sto-3g")
	labels := b.BFLabels()
	if len(labels) != b.NumBF {
		t.Fatalf("%d labels for %d BFs", len(labels), b.NumBF)
	}
	if labels[0] != "O1 s" {
		t.Fatalf("first label = %q", labels[0])
	}
	if labels[2] != "O1 px" {
		t.Fatalf("third label = %q", labels[2])
	}
}

func TestCartNormFactorQuickPositive(t *testing.T) {
	f := func(a, b, c uint8) bool {
		lx, ly, lz := int(a%4), int(b%4), int(c%4)
		return CartNormFactor(lx, ly, lz) >= 1.0-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGrapheneBasisMatchesTable4(t *testing.T) {
	// EXP-T4 at the basis level: shells and BFs for the 0.5 nm system.
	mol, err := molecule.PaperSystem("0.5nm")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(mol, "6-31g(d)")
	if err != nil {
		t.Fatal(err)
	}
	if b.NumShells() != 176 {
		t.Fatalf("0.5nm shells = %d want 176", b.NumShells())
	}
	if b.NumBF != 660 {
		t.Fatalf("0.5nm BFs = %d want 660", b.NumBF)
	}
}
