package basis

import (
	"math"
	"testing"

	"repro/internal/molecule"
)

const sto3gHC = `
! STO-3G excerpt (EMSL Gaussian94 format)
****
H     0
S   3   1.00
      3.42525091             0.15432897
      0.62391373             0.53532814
      0.16885540             0.44463454
****
C     0
S   6   1.00
     71.61683735             0.15432897
     13.04509632             0.53532814
      3.53051216             0.44463454
      2.94124940            -0.09996723
      0.68348310             0.39951283
      0.22228990             0.70011547
****
`

const sto3gWithSP = `
****
C     0
S   3   1.00
     71.61683735             0.15432897
     13.04509632             0.53532814
      3.53051216             0.44463454
SP   3   1.00
      2.94124940            -0.09996723             0.15591627
      0.68348310             0.39951283             0.60768372
      0.22228990             0.70011547             0.39195739
****
`

func TestParseGBSBasic(t *testing.T) {
	lib, err := ParseGBS(sto3gHC)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib["H"]) != 1 || len(lib["C"]) != 1 {
		t.Fatalf("element shell counts: H=%d C=%d", len(lib["H"]), len(lib["C"]))
	}
	h := lib["H"][0]
	if len(h.exps) != 3 || h.moments[0] != S {
		t.Fatalf("H shell: %+v", h)
	}
	if h.exps[0] != 3.42525091 || h.coefs[0][2] != 0.44463454 {
		t.Fatalf("H values wrong: %+v", h)
	}
}

func TestParseGBSSPShell(t *testing.T) {
	lib, err := ParseGBS(sto3gWithSP)
	if err != nil {
		t.Fatal(err)
	}
	sp := lib["C"][1]
	if len(sp.moments) != 2 || sp.moments[0] != S || sp.moments[1] != P {
		t.Fatalf("SP moments: %v", sp.moments)
	}
	if len(sp.coefs) != 2 || sp.coefs[1][0] != 0.15591627 {
		t.Fatalf("SP coefficients: %+v", sp.coefs)
	}
}

func TestParseGBSErrors(t *testing.T) {
	cases := []string{
		"****\nH 0\nQ 3 1.0\n 1.0 1.0\n****\n",     // unsupported shell type
		"****\nH 0\nS x 1.0\n****\n",               // bad primitive count
		"****\nH 0\nS 2 1.0\n 1.0 1.0\n****\n",     // truncated primitives
		"****\nH 0\nS 1 1.0\n abc 1.0\n****\n",     // bad exponent
		"****\nH 0\nS 1 1.0\n 1.0 1.0 1.0\n****\n", // too many columns
		"****\nH 0\nS 1 1.0\n 1.0 xyz\n****\n",     // bad coefficient
		"****\nH 0\nS 1 1.0",                       // EOF inside shell
	}
	for i, c := range cases {
		if _, err := ParseGBS(c); err == nil {
			t.Fatalf("case %d: expected parse error", i)
		}
	}
}

func TestParseGBSFortranExponents(t *testing.T) {
	lib, err := ParseGBS("****\nH 0\nS 1 1.00\n 0.3425D+01 1.0\n****\n")
	if err != nil {
		t.Fatal(err)
	}
	if lib["H"][0].exps[0] != 3.425 {
		t.Fatalf("D-exponent parsing: %v", lib["H"][0].exps[0])
	}
}

func TestRegisterGBSRoundTrip(t *testing.T) {
	// A registered copy of STO-3G carbon data must give the same energies
	// as the built-in table (same shells, same normalization path).
	if err := RegisterGBS("my-sto3g", sto3gWithSP); err != nil {
		t.Fatal(err)
	}
	m := &molecule.Molecule{Name: "C"}
	m.AddAtomAngstrom("C", 0, 0, 0)
	builtin, err := Build(m, "sto-3g")
	if err != nil {
		t.Fatal(err)
	}
	custom, err := Build(m, "my-sto3g")
	if err != nil {
		t.Fatal(err)
	}
	if custom.NumBF != builtin.NumBF || custom.NumShells() != builtin.NumShells() {
		t.Fatalf("custom %d/%d vs builtin %d/%d",
			custom.NumShells(), custom.NumBF, builtin.NumShells(), builtin.NumBF)
	}
	for si := range builtin.Shells {
		for mi := range builtin.Shells[si].Coefs {
			for p := range builtin.Shells[si].Coefs[mi] {
				a := builtin.Shells[si].Coefs[mi][p]
				b := custom.Shells[si].Coefs[mi][p]
				if math.Abs(a-b) > 1e-12 {
					t.Fatalf("normalized coefficients differ: %v vs %v", a, b)
				}
			}
		}
	}
}

func TestRegisterGBSGuards(t *testing.T) {
	if err := RegisterGBS("sto-3g", sto3gHC); err == nil {
		t.Fatal("must refuse to overwrite built-ins")
	}
	if err := RegisterGBS("empty", "\n! nothing\n"); err == nil {
		t.Fatal("must refuse empty basis")
	}
	if err := RegisterGBS("bad", "****\nH 0\nQ 1 1.0\n 1 1\n****"); err == nil {
		t.Fatal("must propagate parse errors")
	}
}
