package basis

import (
	"fmt"
	"strconv"
	"strings"
)

// Gaussian94 (.gbs) basis set format support — the format the EMSL Basis
// Set Exchange serves — so downstream users can run with any basis, not
// just the built-in tables:
//
//	****
//	H     0
//	S   3   1.00
//	      3.42525091             0.15432897
//	      0.62391373             0.53532814
//	      0.16885540             0.44463454
//	****
//
// Supported shell type letters: S, P, D, F, and the fused SP (L) shell
// with two coefficient columns.

// ParseGBS parses a Gaussian94 basis set text into per-element shell
// definitions.
func ParseGBS(text string) (map[string][]shellSpec, error) {
	out := map[string][]shellSpec{}
	lines := strings.Split(text, "\n")
	i := 0
	next := func() (string, bool) {
		for i < len(lines) {
			ln := strings.TrimSpace(lines[i])
			i++
			if ln == "" || strings.HasPrefix(ln, "!") {
				continue
			}
			return ln, true
		}
		return "", false
	}
	// Skip leading separators.
	for {
		ln, ok := next()
		if !ok {
			return out, nil
		}
		if ln == "****" {
			continue
		}
		// Element header: "C 0".
		fields := strings.Fields(ln)
		if len(fields) < 1 {
			return nil, fmt.Errorf("basis: bad element header %q", ln)
		}
		element := fields[0]
		var specs []shellSpec
		for {
			ln, ok := next()
			if !ok {
				return nil, fmt.Errorf("basis: unexpected end of input inside element %s", element)
			}
			if ln == "****" {
				break
			}
			sf := strings.Fields(ln)
			if len(sf) < 2 {
				return nil, fmt.Errorf("basis: bad shell header %q", ln)
			}
			shellType := strings.ToUpper(sf[0])
			nPrim, err := strconv.Atoi(sf[1])
			if err != nil || nPrim < 1 {
				return nil, fmt.Errorf("basis: bad primitive count in %q", ln)
			}
			var moments []int
			switch shellType {
			case "S":
				moments = []int{S}
			case "P":
				moments = []int{P}
			case "D":
				moments = []int{D}
			case "F":
				moments = []int{F}
			case "SP", "L":
				moments = []int{S, P}
			default:
				return nil, fmt.Errorf("basis: unsupported shell type %q", shellType)
			}
			spec := shellSpec{moments: moments}
			spec.coefs = make([][]float64, len(moments))
			for p := 0; p < nPrim; p++ {
				ln, ok := next()
				if !ok {
					return nil, fmt.Errorf("basis: truncated primitive list for %s/%s", element, shellType)
				}
				// Fortran D exponents appear in some exports.
				ln = strings.ReplaceAll(strings.ReplaceAll(ln, "D+", "E+"), "D-", "E-")
				pf := strings.Fields(ln)
				if len(pf) != 1+len(moments) {
					return nil, fmt.Errorf("basis: primitive line %q has %d columns, want %d",
						ln, len(pf), 1+len(moments))
				}
				exp, err := strconv.ParseFloat(pf[0], 64)
				if err != nil {
					return nil, fmt.Errorf("basis: bad exponent %q: %v", pf[0], err)
				}
				spec.exps = append(spec.exps, exp)
				for m := range moments {
					c, err := strconv.ParseFloat(pf[1+m], 64)
					if err != nil {
						return nil, fmt.Errorf("basis: bad coefficient %q: %v", pf[1+m], err)
					}
					spec.coefs[m] = append(spec.coefs[m], c)
				}
			}
			specs = append(specs, spec)
		}
		out[element] = append(out[element], specs...)
	}
}

// RegisterGBS parses a Gaussian94 basis text and installs it under the
// given name, making it available to Build. Re-registering a name
// replaces it; built-in names cannot be overwritten.
func RegisterGBS(name, text string) error {
	key := normalizeName(name)
	switch key {
	case "sto-3g", "6-31g", "6-31g(d)":
		return fmt.Errorf("basis: cannot overwrite built-in basis %q", name)
	}
	lib, err := ParseGBS(text)
	if err != nil {
		return err
	}
	if len(lib) == 0 {
		return fmt.Errorf("basis: %q defines no elements", name)
	}
	libraries[key] = lib
	return nil
}
