// Package basis implements contracted Gaussian basis sets: shells
// (including the fused L = SP shells GAMESS uses for Pople bases),
// normalization, and the built-in STO-3G and 6-31G(d) data needed for the
// paper's benchmark systems and the test molecules.
package basis

import (
	"fmt"
	"math"

	"repro/internal/molecule"
)

// Angular momentum labels for the moments a shell can carry.
const (
	S = 0
	P = 1
	D = 2
	F = 3
)

// NumCart returns the number of cartesian components for angular momentum l
// ((l+1)(l+2)/2, e.g. 6 cartesian d functions — the paper's 6-31G(d)
// carbon has 15 = 1 + 4 + 6 basis functions over its 4 shells).
func NumCart(l int) int { return (l + 1) * (l + 2) / 2 }

// CartComponents returns the (lx, ly, lz) exponent triples for angular
// momentum l in GAMESS ordering: s; x,y,z; xx,yy,zz,xy,xz,yz; and a
// deterministic lexicographic order for l >= 3.
func CartComponents(l int) [][3]int {
	switch l {
	case 0:
		return [][3]int{{0, 0, 0}}
	case 1:
		return [][3]int{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	case 2:
		return [][3]int{{2, 0, 0}, {0, 2, 0}, {0, 0, 2}, {1, 1, 0}, {1, 0, 1}, {0, 1, 1}}
	default:
		var out [][3]int
		for lx := l; lx >= 0; lx-- {
			for ly := l - lx; ly >= 0; ly-- {
				out = append(out, [3]int{lx, ly, l - lx - ly})
			}
		}
		return out
	}
}

// DoubleFactorial returns (2n-1)!! for n >= 0 (with (-1)!! = 1).
func DoubleFactorial(n int) float64 {
	v := 1.0
	for k := 2*n - 1; k > 1; k -= 2 {
		v *= float64(k)
	}
	return v
}

// CartNormFactor returns the normalization factor of cartesian component
// (lx, ly, lz) relative to the axial component (l, 0, 0):
// sqrt((2l-1)!! / ((2lx-1)!! (2ly-1)!! (2lz-1)!!)). For d it is 1 for
// xx/yy/zz and sqrt(3) for xy/xz/yz.
func CartNormFactor(lx, ly, lz int) float64 {
	l := lx + ly + lz
	return math.Sqrt(DoubleFactorial(l) /
		(DoubleFactorial(lx) * DoubleFactorial(ly) * DoubleFactorial(lz)))
}

// primitiveNorm returns the normalization constant of a primitive cartesian
// Gaussian x^l exp(-a r^2) for the axial component (l, 0, 0).
func primitiveNorm(a float64, l int) float64 {
	return math.Pow(2*a/math.Pi, 0.75) * math.Pow(4*a, float64(l)/2) /
		math.Sqrt(DoubleFactorial(l))
}

// Shell is a contracted Gaussian shell on one atomic center. A shell may
// carry several angular momenta sharing the same primitives: the Pople
// L shell carries [S, P]. GAMESS counts such a fused shell as ONE shell,
// which is what the paper's NShells loop bounds refer to.
type Shell struct {
	Atom     int        // index into the molecule's atom list
	Center   [3]float64 // bohr
	Moments  []int      // angular momenta carried, e.g. [0], [0,1], [2]
	Exps     []float64  // primitive exponents
	Coefs    [][]float64
	BFOffset int // index of this shell's first basis function
}

// NumFuncs returns the number of basis functions the shell contributes.
func (s *Shell) NumFuncs() int {
	n := 0
	for _, l := range s.Moments {
		n += NumCart(l)
	}
	return n
}

// MaxL returns the largest angular momentum carried by the shell.
func (s *Shell) MaxL() int {
	m := 0
	for _, l := range s.Moments {
		if l > m {
			m = l
		}
	}
	return m
}

// NumPrims returns the contraction length.
func (s *Shell) NumPrims() int { return len(s.Exps) }

// normalize folds the primitive norms into the contraction coefficients and
// rescales so each moment's axial component has unit self-overlap.
func (s *Shell) normalize() {
	for mi, l := range s.Moments {
		cs := s.Coefs[mi]
		for p, a := range s.Exps {
			cs[p] *= primitiveNorm(a, l)
		}
		// Self-overlap of the contracted (l,0,0) function.
		self := 0.0
		for p, ap := range s.Exps {
			for q, aq := range s.Exps {
				g := ap + aq
				ov := DoubleFactorial(l) / math.Pow(2*g, float64(l)) *
					math.Pow(math.Pi/g, 1.5)
				self += cs[p] * cs[q] * ov
			}
		}
		scale := 1 / math.Sqrt(self)
		for p := range cs {
			cs[p] *= scale
		}
	}
}

// Basis is a built basis: the ordered shells over a molecule and the
// resulting basis-function dimension.
type Basis struct {
	Mol    *molecule.Molecule
	Shells []Shell
	NumBF  int
	Name   string
}

// MaxL returns the largest angular momentum in the basis.
func (b *Basis) MaxL() int {
	m := 0
	for i := range b.Shells {
		if l := b.Shells[i].MaxL(); l > m {
			m = l
		}
	}
	return m
}

// NumShells returns the GAMESS-style shell count (fused L shells count 1).
func (b *Basis) NumShells() int { return len(b.Shells) }

// ShellSizeMax returns the largest per-shell basis function count; the
// shared-Fock algorithm sizes its FI/FJ buffers with it (Algorithm 3
// line 1: mxsize = ubound(Fock) * shellSize).
func (b *Basis) ShellSizeMax() int {
	m := 0
	for i := range b.Shells {
		if n := b.Shells[i].NumFuncs(); n > m {
			m = n
		}
	}
	return m
}

// Build constructs the named basis ("sto-3g", "6-31g", "6-31g(d)") over a
// molecule, assigning basis-function offsets in shell order.
func Build(mol *molecule.Molecule, setName string) (*Basis, error) {
	lib, ok := libraries[normalizeName(setName)]
	if !ok {
		return nil, fmt.Errorf("basis: unknown basis set %q", setName)
	}
	b := &Basis{Mol: mol, Name: setName}
	off := 0
	for ai, atom := range mol.Atoms {
		specs, ok := lib[atom.Symbol]
		if !ok {
			return nil, fmt.Errorf("basis: no %s parameters for element %s", setName, atom.Symbol)
		}
		for _, sp := range specs {
			sh := Shell{
				Atom:    ai,
				Center:  atom.Pos,
				Moments: append([]int(nil), sp.moments...),
				Exps:    append([]float64(nil), sp.exps...),
			}
			for _, cs := range sp.coefs {
				sh.Coefs = append(sh.Coefs, append([]float64(nil), cs...))
			}
			sh.normalize()
			sh.BFOffset = off
			off += sh.NumFuncs()
			b.Shells = append(b.Shells, sh)
		}
	}
	b.NumBF = off
	return b, nil
}

// BFLabels returns human-readable labels ("C3 dxy") for every basis
// function, mostly for debugging and the examples' output.
func (b *Basis) BFLabels() []string {
	names := map[int]string{0: "s", 1: "p", 2: "d", 3: "f"}
	axes := []string{"x", "y", "z"}
	labels := make([]string, 0, b.NumBF)
	for _, sh := range b.Shells {
		for _, l := range sh.Moments {
			for _, c := range CartComponents(l) {
				lbl := fmt.Sprintf("%s%d %s", b.Mol.Atoms[sh.Atom].Symbol, sh.Atom+1, names[l])
				for ax := 0; ax < 3; ax++ {
					for k := 0; k < c[ax]; k++ {
						lbl += axes[ax]
					}
				}
				labels = append(labels, lbl)
			}
		}
	}
	return labels
}
