package integrals

import (
	"math"
	"testing"

	"repro/internal/basis"
	"repro/internal/linalg"
	"repro/internal/molecule"
)

func buildBasis(t testing.TB, m *molecule.Molecule, set string) *basis.Basis {
	t.Helper()
	b, err := basis.Build(m, set)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// twoCenterMol places two hydrogens at separation r (bohr) for analytic
// primitive checks; the exponents are overridden per test.
func gaussPair(expA, expB, r float64) *basis.Basis {
	m := &molecule.Molecule{Name: "pair"}
	m.Atoms = []molecule.Atom{
		{Z: 1, Symbol: "H", Pos: [3]float64{0, 0, 0}},
		{Z: 1, Symbol: "H", Pos: [3]float64{0, 0, r}},
	}
	b := &basis.Basis{Mol: m}
	sh := func(atom int, pos [3]float64, exp float64, off int) basis.Shell {
		s := basis.Shell{Atom: atom, Center: pos, Moments: []int{0},
			Exps: []float64{exp}, Coefs: [][]float64{{1}}, BFOffset: off}
		return s
	}
	b.Shells = []basis.Shell{
		sh(0, m.Atoms[0].Pos, expA, 0),
		sh(1, m.Atoms[1].Pos, expB, 1),
	}
	// Normalize like Build does.
	for i := range b.Shells {
		normalizeShell(&b.Shells[i])
	}
	b.NumBF = 2
	return b
}

// normalizeShell mirrors Shell.normalize for hand-built shells (that method
// is unexported to the basis package; redo the s-function case here).
func normalizeShell(s *basis.Shell) {
	for mi, l := range s.Moments {
		if l != 0 {
			panic("test helper handles s shells only")
		}
		for p, a := range s.Exps {
			s.Coefs[mi][p] *= math.Pow(2*a/math.Pi, 0.75)
		}
		self := 0.0
		for p, ap := range s.Exps {
			for q, aq := range s.Exps {
				self += s.Coefs[mi][p] * s.Coefs[mi][q] * math.Pow(math.Pi/(ap+aq), 1.5)
			}
		}
		for p := range s.Coefs[mi] {
			s.Coefs[mi][p] /= math.Sqrt(self)
		}
	}
}

func TestOverlapPrimitiveAnalytic(t *testing.T) {
	// For normalized s Gaussians with exponents a, b at distance R:
	// S = (4ab/(a+b)^2)^{3/4} exp(-ab R^2 / (a+b))
	a, b, r := 0.7, 1.3, 1.1
	bas := gaussPair(a, b, r)
	e := NewEngine(bas)
	s := e.Overlap()
	want := math.Pow(4*a*b/((a+b)*(a+b)), 0.75) * math.Exp(-a*b*r*r/(a+b))
	if math.Abs(s.At(0, 1)-want) > 1e-13 {
		t.Fatalf("S01 = %v want %v", s.At(0, 1), want)
	}
	if math.Abs(s.At(0, 0)-1) > 1e-13 || math.Abs(s.At(1, 1)-1) > 1e-13 {
		t.Fatalf("diagonal overlaps not 1: %v %v", s.At(0, 0), s.At(1, 1))
	}
}

func TestKineticPrimitiveAnalytic(t *testing.T) {
	// Same-center normalized s primitives, exponents a = b:
	// T_00 = 3a/2 for a normalized s Gaussian.
	a := 0.9
	bas := gaussPair(a, a, 0)
	// Collapse to one center.
	bas.Shells[1].Center = bas.Shells[0].Center
	e := NewEngine(bas)
	k := e.Kinetic()
	if math.Abs(k.At(0, 0)-1.5*a) > 1e-12 {
		t.Fatalf("T00 = %v want %v", k.At(0, 0), 1.5*a)
	}
}

func TestNuclearPrimitiveAnalytic(t *testing.T) {
	// Normalized s Gaussian with exponent a centered on a nucleus Z=1:
	// <1/r> = N^2 * 4pi * int r exp(-2ar^2) dr = (2a/pi)^{3/2} * pi/a
	//       = 2 sqrt(2a/pi), so V = -2 sqrt(2a/pi).
	a := 1.24
	m := &molecule.Molecule{Name: "H"}
	m.Atoms = []molecule.Atom{{Z: 1, Symbol: "H", Pos: [3]float64{0, 0, 0}}}
	b := &basis.Basis{Mol: m, NumBF: 1}
	b.Shells = []basis.Shell{{Atom: 0, Moments: []int{0}, Exps: []float64{a}, Coefs: [][]float64{{1}}}}
	normalizeShell(&b.Shells[0])
	e := NewEngine(b)
	v := e.Nuclear()
	want := -2 * math.Sqrt(2*a/math.Pi)
	if math.Abs(v.At(0, 0)-want) > 1e-12 {
		t.Fatalf("V00 = %v want %v", v.At(0, 0), want)
	}
}

func TestERIPrimitiveAnalytic(t *testing.T) {
	// (ss|ss) on one center, all exponents a, normalized:
	// (aa|aa) = sqrt(2/pi) * sqrt(a) * 2/sqrt(2)... known value:
	// (ss|ss) = sqrt(2 a / pi) * 2 / sqrt(2) — derive from formula:
	// (ab|cd) = 2 pi^{5/2} / (p q sqrt(p+q)) N^4 with p=q=2a, F_0(0)=1.
	a := 0.8
	bas := gaussPair(a, a, 0)
	bas.Shells[1].Center = bas.Shells[0].Center
	e := NewEngine(bas)
	got := e.ERIValue(0, 0, 0, 0)
	n := math.Pow(2*a/math.Pi, 0.75)
	p := 2 * a
	want := 2 * math.Pow(math.Pi, 2.5) / (p * p * math.Sqrt(p+p)) * math.Pow(n, 4)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("(ss|ss) = %v want %v", got, want)
	}
}

func TestERIPermutationalSymmetry(t *testing.T) {
	// Shell-level 8-fold symmetry on distinct shells with mixed angular
	// momenta (O L-shell is index 1 in water/STO-3G).
	b := buildBasis(t, molecule.Water(), "sto-3g")
	e := NewEngine(b)
	i, j, k, l := 1, 0, 2, 3
	nf := func(s int) int { return b.Shells[s].NumFuncs() }
	base := e.ShellQuartet(i, j, k, l, nil)
	at := func(blk []float64, n1, n2, n3 int, a, b2, c, d int) float64 {
		return blk[((a*n1+b2)*n2+c)*n3+d]
	}
	braSwap := e.ShellQuartet(j, i, k, l, nil)
	ketSwap := e.ShellQuartet(i, j, l, k, nil)
	braKet := e.ShellQuartet(k, l, i, j, nil)
	for fa := 0; fa < nf(i); fa++ {
		for fb := 0; fb < nf(j); fb++ {
			for fc := 0; fc < nf(k); fc++ {
				for fd := 0; fd < nf(l); fd++ {
					want := at(base, nf(j), nf(k), nf(l), fa, fb, fc, fd)
					checks := []float64{
						at(braSwap, nf(i), nf(k), nf(l), fb, fa, fc, fd),
						at(ketSwap, nf(j), nf(l), nf(k), fa, fb, fd, fc),
						at(braKet, nf(l), nf(i), nf(j), fc, fd, fa, fb),
					}
					for pi, got := range checks {
						if math.Abs(got-want) > 1e-10 {
							t.Fatalf("perm %d mismatch at %d%d%d%d: %v vs %v", pi, fa, fb, fc, fd, got, want)
						}
					}
				}
			}
		}
	}
}

func TestERISymmetryDenseCheck(t *testing.T) {
	// Full tensor for tiny H2/STO-3G: check (ij|kl)=(ji|kl)=(ij|lk)=(kl|ij)
	// at the basis-function level.
	b := buildBasis(t, molecule.H2(), "sto-3g")
	e := NewEngine(b)
	n := b.NumBF
	tensor := make([]float64, n*n*n*n)
	var buf []float64
	for i := range b.Shells {
		for j := range b.Shells {
			for k := range b.Shells {
				for l := range b.Shells {
					buf = e.ShellQuartet(i, j, k, l, buf)
					si, sj, sk, sl := &b.Shells[i], &b.Shells[j], &b.Shells[k], &b.Shells[l]
					idx := 0
					for fa := 0; fa < si.NumFuncs(); fa++ {
						for fb := 0; fb < sj.NumFuncs(); fb++ {
							for fc := 0; fc < sk.NumFuncs(); fc++ {
								for fd := 0; fd < sl.NumFuncs(); fd++ {
									a, bb := si.BFOffset+fa, sj.BFOffset+fb
									c, d := sk.BFOffset+fc, sl.BFOffset+fd
									tensor[((a*n+bb)*n+c)*n+d] = buf[idx]
									idx++
								}
							}
						}
					}
				}
			}
		}
	}
	at := func(a, b, c, d int) float64 { return tensor[((a*n+b)*n+c)*n+d] }
	for a := 0; a < n; a++ {
		for b2 := 0; b2 < n; b2++ {
			for c := 0; c < n; c++ {
				for d := 0; d < n; d++ {
					v := at(a, b2, c, d)
					for _, w := range []float64{at(b2, a, c, d), at(a, b2, d, c), at(c, d, a, b2)} {
						if math.Abs(v-w) > 1e-11 {
							t.Fatalf("8-fold symmetry broken at %d%d%d%d: %v vs %v", a, b2, c, d, v, w)
						}
					}
				}
			}
		}
	}
}

func TestOverlapMatrixProperties(t *testing.T) {
	for _, set := range []string{"sto-3g", "6-31g", "6-31g(d)"} {
		b := buildBasis(t, molecule.Water(), set)
		e := NewEngine(b)
		s := e.Overlap()
		if !s.IsSymmetric(1e-12) {
			t.Fatalf("%s: S not symmetric", set)
		}
		for i := 0; i < s.Rows; i++ {
			if math.Abs(s.At(i, i)-1) > 1e-10 {
				t.Fatalf("%s: S[%d,%d] = %v, want 1 (normalization)", set, i, i, s.At(i, i))
			}
		}
		// S must be positive definite.
		vals, _ := linalg.EigenSym(s)
		if vals[0] <= 0 {
			t.Fatalf("%s: overlap not positive definite: %v", set, vals[0])
		}
	}
}

func TestKineticMatrixProperties(t *testing.T) {
	b := buildBasis(t, molecule.Water(), "6-31g(d)")
	e := NewEngine(b)
	k := e.Kinetic()
	if !k.IsSymmetric(1e-11) {
		t.Fatal("T not symmetric")
	}
	// Kinetic energy matrix is positive definite.
	vals, _ := linalg.EigenSym(k)
	if vals[0] <= 0 {
		t.Fatalf("T not positive definite: min eig %v", vals[0])
	}
}

func TestNuclearMatrixProperties(t *testing.T) {
	b := buildBasis(t, molecule.Water(), "sto-3g")
	e := NewEngine(b)
	v := e.Nuclear()
	if !v.IsSymmetric(1e-11) {
		t.Fatal("V not symmetric")
	}
	for i := 0; i < v.Rows; i++ {
		if v.At(i, i) >= 0 {
			t.Fatalf("V[%d,%d] = %v, expected negative (attraction)", i, i, v.At(i, i))
		}
	}
}

func TestCoreHamiltonian(t *testing.T) {
	b := buildBasis(t, molecule.H2(), "sto-3g")
	e := NewEngine(b)
	h := e.CoreHamiltonian()
	want := e.Kinetic()
	want.AxpyFrom(1, e.Nuclear())
	if h.MaxAbsDiff(want) > 1e-14 {
		t.Fatal("H != T + V")
	}
}

func TestSchwarzBoundsHold(t *testing.T) {
	// The Schwarz inequality must bound every actual quartet max element.
	b := buildBasis(t, molecule.Water(), "sto-3g")
	e := NewEngine(b)
	sch := ComputeSchwarz(e)
	var buf []float64
	ns := len(b.Shells)
	for i := 0; i < ns; i++ {
		for j := 0; j <= i; j++ {
			for k := 0; k < ns; k++ {
				for l := 0; l <= k; l++ {
					buf = e.ShellQuartet(i, j, k, l, buf)
					maxv := 0.0
					for _, x := range buf {
						if a := math.Abs(x); a > maxv {
							maxv = a
						}
					}
					if maxv > sch.Bound(i, j, k, l)+1e-10 {
						t.Fatalf("Schwarz bound violated for (%d%d|%d%d): %v > %v",
							i, j, k, l, maxv, sch.Bound(i, j, k, l))
					}
				}
			}
		}
	}
}

func TestSchwarzScreenedAndPairs(t *testing.T) {
	b := buildBasis(t, molecule.GrapheneFlake(6), "sto-3g")
	e := NewEngine(b)
	sch := ComputeSchwarz(e)
	if sch.MaxQ() <= 0 {
		t.Fatal("MaxQ must be positive")
	}
	all := sch.SurvivingPairs(0)
	if len(all) != sch.NShells*(sch.NShells+1)/2 {
		t.Fatal("zero threshold must keep all pairs")
	}
	tight := sch.SurvivingPairs(1e-4)
	if len(tight) >= len(all) {
		t.Fatalf("screening removed nothing: %d vs %d", len(tight), len(all))
	}
	// Screened() must agree with Bound().
	if sch.Screened(0, 0, 0, 0, sch.Bound(0, 0, 0, 0)+1) != true {
		t.Fatal("Screened disagrees with Bound")
	}
}

func TestERIDecaysWithDistance(t *testing.T) {
	// (ss|ss) between distant pairs must be far smaller than near pairs.
	far := gaussPair(1.0, 1.0, 20.0)
	near := gaussPair(1.0, 1.0, 1.0)
	vFar := NewEngine(far).ERIValue(0, 0, 1, 1)
	vNear := NewEngine(near).ERIValue(0, 0, 1, 1)
	// (00|11) is a charge-charge interaction ~ 1/R: ratio ~ 1/20.
	if vFar >= vNear {
		t.Fatalf("ERI did not decay: %v vs %v", vFar, vNear)
	}
	if math.Abs(vFar-1.0/20.0) > 0.01 {
		t.Fatalf("far (00|11) = %v, want ~ 1/R = 0.05", vFar)
	}
}
