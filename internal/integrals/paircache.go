package integrals

import (
	"math"

	"repro/internal/basis"
)

// Shell-pair precomputation. Every ERI quartet (ij|kl) reuses the same
// per-pair quantities — Gaussian product centers, total exponents, and
// the Hermite expansion E tables — so Gaussian codes precompute them per
// shell PAIR once (O(N^2) storage) instead of per quartet (O(N^4) work).
// Primitive pairs whose Gaussian overlap prefactor exp(-mu R^2) is
// negligible are dropped entirely (primitive screening), which prunes
// deeply contracted shells on distant centers.

// primPairData is one surviving primitive pair of a shell pair.
type primPairData struct {
	p          float64 // total exponent a + b
	px, py, pz float64 // product center
	// E tables per axis, indexed [la][lb][t], built at the shells' MaxL.
	ex, ey, ez [][][]float64
}

// pairData is the cached data of one (i >= j) shell pair.
type pairData struct {
	prims []primPairData
	// coefficient products aligned with prims: coef[mi][mj][pp]
	coef [][][]float64
}

// PairCache holds precomputed shell-pair data for an engine's basis.
type PairCache struct {
	eng     *Engine
	pairs   []*pairData // triangular over shell pairs
	PrimTol float64     // primitive overlap prefactor cutoff
	// counters for tests/benchmarks
	PrimPairsKept, PrimPairsDropped int
}

// DefaultPrimTol is the primitive prefactor cutoff; contributions below
// it are beneath the ERI screening threshold for any partner pair.
const DefaultPrimTol = 1e-12

// NewPairCache precomputes all shell-pair data. primTol <= 0 selects
// DefaultPrimTol.
func NewPairCache(eng *Engine, primTol float64) *PairCache {
	if primTol <= 0 {
		primTol = DefaultPrimTol
	}
	shells := eng.Basis.Shells
	n := len(shells)
	pc := &PairCache{eng: eng, pairs: make([]*pairData, n*(n+1)/2), PrimTol: primTol}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			pc.pairs[i*(i+1)/2+j] = pc.buildPair(&shells[i], &shells[j])
		}
	}
	return pc
}

func (pc *PairCache) buildPair(sa, sb *basis.Shell) *pairData {
	la, lb := sa.MaxL(), sb.MaxL()
	abx := sa.Center[0] - sb.Center[0]
	aby := sa.Center[1] - sb.Center[1]
	abz := sa.Center[2] - sb.Center[2]
	r2 := abx*abx + aby*aby + abz*abz
	pd := &pairData{}
	// coef[mi][mj] filled per kept primitive pair.
	pd.coef = make([][][]float64, len(sa.Moments))
	for mi := range sa.Moments {
		pd.coef[mi] = make([][]float64, len(sb.Moments))
	}
	var keptIdx [][2]int
	for p, ap := range sa.Exps {
		for q, bq := range sb.Exps {
			mu := ap * bq / (ap + bq)
			if math.Exp(-mu*r2) < pc.PrimTol {
				pc.PrimPairsDropped++
				continue
			}
			pc.PrimPairsKept++
			pp := ap + bq
			pd.prims = append(pd.prims, primPairData{
				p:  pp,
				px: (ap*sa.Center[0] + bq*sb.Center[0]) / pp,
				py: (ap*sa.Center[1] + bq*sb.Center[1]) / pp,
				pz: (ap*sa.Center[2] + bq*sb.Center[2]) / pp,
				ex: hermiteE(la, lb, ap, bq, abx),
				ey: hermiteE(la, lb, ap, bq, aby),
				ez: hermiteE(la, lb, ap, bq, abz),
			})
			keptIdx = append(keptIdx, [2]int{p, q})
		}
	}
	for mi := range sa.Moments {
		for mj := range sb.Moments {
			cs := make([]float64, len(keptIdx))
			for n, pq := range keptIdx {
				cs[n] = sa.Coefs[mi][pq[0]] * sb.Coefs[mj][pq[1]]
			}
			pd.coef[mi][mj] = cs
		}
	}
	return pd
}

// pair fetches cached data for shells (i >= j).
func (pc *PairCache) pair(i, j int) *pairData {
	return pc.pairs[i*(i+1)/2+j]
}

// ShellQuartet computes the ERI block (ij|kl) like Engine.ShellQuartet
// but from the precomputed pair data. Shell indices must be canonical:
// i >= j and k >= l (which is how every Fock builder calls it).
func (pc *PairCache) ShellQuartet(si, sj, sk, sl int, out []float64) []float64 {
	shells := pc.eng.Basis.Shells
	sa, sb, sc, sd := &shells[si], &shells[sj], &shells[sk], &shells[sl]
	ca, cb := componentsOf(sa), componentsOf(sb)
	cc, cd := componentsOf(sc), componentsOf(sd)
	na, nb, nc, nd := len(ca), len(cb), len(cc), len(cd)
	need := na * nb * nc * nd
	if cap(out) < need {
		out = make([]float64, need)
	}
	out = out[:need]
	for i := range out {
		out[i] = 0
	}

	bra := pc.pair(si, sj)
	ket := pc.pair(sk, sl)
	la, lb := sa.MaxL(), sb.MaxL()
	lc, ld := sc.MaxL(), sd.MaxL()
	ltot := la + lb + lc + ld

	for bi := range bra.prims {
		bp := &bra.prims[bi]
		for ki := range ket.prims {
			kp := &ket.prims[ki]
			alpha := bp.p * kp.p / (bp.p + kp.p)
			rt := hermiteR(ltot, alpha, bp.px-kp.px, bp.py-kp.py, bp.pz-kp.pz)
			pref := 2 * math.Pow(math.Pi, 2.5) /
				(bp.p * kp.p * math.Sqrt(bp.p+kp.p))

			idx := 0
			for _, a := range ca {
				for _, b := range cb {
					cab := bra.coef[a.mi][b.mi][bi] * a.norm * b.norm
					tX, tY, tZ := a.lx+b.lx, a.ly+b.ly, a.lz+b.lz
					for _, c := range cc {
						for _, d := range cd {
							w := cab * ket.coef[c.mi][d.mi][ki] * c.norm * d.norm * pref
							uX, uY, uZ := c.lx+d.lx, c.ly+d.ly, c.lz+d.lz
							sum := 0.0
							for t := 0; t <= tX; t++ {
								e1 := bp.ex[a.lx][b.lx][t]
								if e1 == 0 {
									continue
								}
								for u := 0; u <= tY; u++ {
									e2 := bp.ey[a.ly][b.ly][u]
									if e2 == 0 {
										continue
									}
									for v := 0; v <= tZ; v++ {
										e3 := bp.ez[a.lz][b.lz][v]
										if e3 == 0 {
											continue
										}
										braW := e1 * e2 * e3
										ketSum := 0.0
										for tau := 0; tau <= uX; tau++ {
											f1 := kp.ex[c.lx][d.lx][tau]
											if f1 == 0 {
												continue
											}
											for nu := 0; nu <= uY; nu++ {
												f2 := kp.ey[c.ly][d.ly][nu]
												if f2 == 0 {
													continue
												}
												for phi := 0; phi <= uZ; phi++ {
													f3 := kp.ez[c.lz][d.lz][phi]
													if f3 == 0 {
														continue
													}
													sign := 1.0
													if (tau+nu+phi)&1 == 1 {
														sign = -1
													}
													ketSum += sign * f1 * f2 * f3 *
														rt[rIndex(t+tau, u+nu, v+phi, ltot)]
												}
											}
										}
										sum += braW * ketSum
									}
								}
							}
							out[idx] += w * sum
							idx++
						}
					}
				}
			}
		}
	}
	return out
}

// Bytes estimates the cache's float storage (E tables + coefficients).
func (pc *PairCache) Bytes() int64 {
	var total int64
	for _, pd := range pc.pairs {
		for _, pp := range pd.prims {
			for _, tbl := range [][][][]float64{pp.ex, pp.ey, pp.ez} {
				for _, t1 := range tbl {
					for _, row := range t1 {
						total += int64(len(row)) * 8
					}
				}
			}
		}
		for _, cm := range pd.coef {
			for _, cs := range cm {
				total += int64(len(cs)) * 8
			}
		}
	}
	return total
}
