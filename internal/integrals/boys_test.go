package integrals

import (
	"math"
	"testing"
	"testing/quick"
)

// referenceBoys computes F_n(t) by adaptive Simpson quadrature of the
// defining integral; slow but independent of the production code paths.
func referenceBoys(n int, t float64) float64 {
	f := func(u float64) float64 { return math.Pow(u, float64(2*n)) * math.Exp(-t*u*u) }
	const steps = 20000
	h := 1.0 / steps
	sum := f(0) + f(1)
	for i := 1; i < steps; i++ {
		x := float64(i) * h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

func TestBoysZeroArgument(t *testing.T) {
	out := make([]float64, 6)
	Boys(5, 0, out)
	for m := 0; m <= 5; m++ {
		want := 1.0 / float64(2*m+1)
		if math.Abs(out[m]-want) > 1e-15 {
			t.Fatalf("F_%d(0) = %v want %v", m, out[m], want)
		}
	}
}

func TestBoysF0ClosedForm(t *testing.T) {
	// F_0(t) = sqrt(pi/t)/2 * erf(sqrt(t))
	for _, tv := range []float64{0.1, 0.5, 1, 2, 5, 10, 20, 34, 36, 50, 100} {
		want := 0.5 * math.Sqrt(math.Pi/tv) * math.Erf(math.Sqrt(tv))
		got := BoysSingle(0, tv)
		if math.Abs(got-want) > 1e-13 {
			t.Fatalf("F_0(%v) = %v want %v", tv, got, want)
		}
	}
}

func TestBoysAgainstQuadrature(t *testing.T) {
	for _, n := range []int{0, 1, 2, 4, 8} {
		for _, tv := range []float64{0.05, 0.8, 3.0, 12.0, 33.0, 40.0} {
			want := referenceBoys(n, tv)
			got := BoysSingle(n, tv)
			if math.Abs(got-want) > 1e-10 {
				t.Fatalf("F_%d(%v) = %v want %v", n, tv, got, want)
			}
		}
	}
}

func TestBoysRecurrenceConsistency(t *testing.T) {
	// F_{m+1} = ((2m+1) F_m - exp(-t)) / (2t) must hold across the regime
	// boundaries.
	out := make([]float64, 10)
	for _, tv := range []float64{0.3, 5, 34.9, 35.1, 80} {
		Boys(9, tv, out)
		et := math.Exp(-tv)
		for m := 0; m < 9; m++ {
			want := (float64(2*m+1)*out[m] - et) / (2 * tv)
			if math.Abs(out[m+1]-want) > 1e-11*math.Max(1, out[m]) {
				t.Fatalf("recurrence broken at t=%v m=%d: %v vs %v", tv, m, out[m+1], want)
			}
		}
	}
}

func TestBoysMonotoneInOrder(t *testing.T) {
	// F_m(t) decreases with m for fixed t > 0.
	f := func(seed uint16) bool {
		tv := float64(seed)/65535*60 + 1e-6
		out := make([]float64, 12)
		Boys(11, tv, out)
		for m := 0; m < 11; m++ {
			if out[m+1] > out[m] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBoysPositive(t *testing.T) {
	f := func(seed uint16) bool {
		tv := float64(seed) / 65535 * 200
		out := make([]float64, 9)
		Boys(8, tv, out)
		for _, v := range out {
			if v <= 0 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBoysPanicsOnHugeOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Boys(maxBoysOrder+1, 1.0, make([]float64, maxBoysOrder+2))
}
