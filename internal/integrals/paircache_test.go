package integrals

import (
	"math"
	"testing"

	"repro/internal/molecule"
)

func TestPairCacheMatchesDirect(t *testing.T) {
	for _, tc := range []struct {
		mol *molecule.Molecule
		set string
	}{
		{molecule.Water(), "sto-3g"},
		{molecule.Methane(), "6-31g(d)"},
	} {
		b := buildBasis(t, tc.mol, tc.set)
		eng := NewEngine(b)
		pc := NewPairCache(eng, 0)
		ns := len(b.Shells)
		var direct, cached []float64
		for i := 0; i < ns; i++ {
			for j := 0; j <= i; j++ {
				for k := 0; k <= i; k++ {
					for l := 0; l <= k; l++ {
						direct = eng.ShellQuartet(i, j, k, l, direct)
						cached = pc.ShellQuartet(i, j, k, l, cached)
						for n := range direct {
							if math.Abs(direct[n]-cached[n]) > 1e-11 {
								t.Fatalf("%s/%s quartet (%d%d|%d%d)[%d]: %v vs %v",
									tc.mol.Name, tc.set, i, j, k, l, n, direct[n], cached[n])
							}
						}
					}
				}
			}
		}
	}
}

func TestPairCachePrimitiveScreening(t *testing.T) {
	// Two far-apart atoms: cross-center primitive pairs must be dropped.
	m := &molecule.Molecule{Name: "far"}
	m.AddAtomAngstrom("C", 0, 0, 0)
	m.AddAtomAngstrom("C", 0, 0, 40)
	b := buildBasis(t, m, "sto-3g")
	eng := NewEngine(b)
	pc := NewPairCache(eng, 0)
	if pc.PrimPairsDropped == 0 {
		t.Fatal("no primitive pairs dropped at 40 angstrom separation")
	}
	// Same-center pairs all survive.
	near := NewPairCache(NewEngine(buildBasis(t, molecule.Water(), "sto-3g")), 0)
	if near.PrimPairsDropped != 0 {
		t.Fatalf("%d primitive pairs dropped in water (all near)", near.PrimPairsDropped)
	}
}

func TestPairCacheScreenedAccuracy(t *testing.T) {
	// With screening active the distant-pair quartets must still be
	// accurate to the screening tolerance.
	m := &molecule.Molecule{Name: "mid"}
	m.AddAtomAngstrom("C", 0, 0, 0)
	m.AddAtomAngstrom("C", 0, 0, 6)
	b := buildBasis(t, m, "sto-3g")
	eng := NewEngine(b)
	pc := NewPairCache(eng, 1e-10)
	var direct, cached []float64
	ns := len(b.Shells)
	for i := 0; i < ns; i++ {
		for j := 0; j <= i; j++ {
			direct = eng.ShellQuartet(i, j, i, j, direct)
			cached = pc.ShellQuartet(i, j, i, j, cached)
			for n := range direct {
				if math.Abs(direct[n]-cached[n]) > 1e-8 {
					t.Fatalf("(%d%d|%d%d)[%d]: %v vs %v", i, j, i, j, n, direct[n], cached[n])
				}
			}
		}
	}
}

func TestPairCacheBytes(t *testing.T) {
	b := buildBasis(t, molecule.Water(), "sto-3g")
	pc := NewPairCache(NewEngine(b), 0)
	if pc.Bytes() <= 0 {
		t.Fatal("cache reports no storage")
	}
}
