package integrals

import "math"

// Schwarz holds the Cauchy-Schwarz screening data: for each shell pair
// (i, j), Q[ij] = sqrt(max_ab (ab|ab)) over the basis functions a in shell
// i and b in shell j. The screening test used throughout the paper is
//
//	|(ij|kl)| <= Q_ij * Q_kl < tau  =>  skip the quartet.
type Schwarz struct {
	NShells int
	Q       []float64 // packed triangular over shell pairs
}

// ComputeSchwarz evaluates the (ij|ij) diagonal quartets for every shell
// pair. This is the exact screening matrix; the large-system simulator has
// a calibrated analytic surrogate in internal/simulate.
func ComputeSchwarz(e *Engine) *Schwarz {
	n := len(e.Basis.Shells)
	s := &Schwarz{NShells: n, Q: make([]float64, n*(n+1)/2)}
	var buf []float64
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			buf = e.ShellQuartet(i, j, i, j, buf)
			na := e.Basis.Shells[i].NumFuncs()
			nb := e.Basis.Shells[j].NumFuncs()
			maxv := 0.0
			for fa := 0; fa < na; fa++ {
				for fb := 0; fb < nb; fb++ {
					// diagonal element (ab|ab)
					idx := ((fa*nb+fb)*na+fa)*nb + fb
					if v := math.Abs(buf[idx]); v > maxv {
						maxv = v
					}
				}
			}
			s.Q[i*(i+1)/2+j] = math.Sqrt(maxv)
		}
	}
	return s
}

// PairQ returns Q for shell pair (i, j) in either index order.
func (s *Schwarz) PairQ(i, j int) float64 {
	if i < j {
		i, j = j, i
	}
	return s.Q[i*(i+1)/2+j]
}

// Bound returns the Cauchy-Schwarz upper bound for quartet (i, j, k, l).
func (s *Schwarz) Bound(i, j, k, l int) float64 {
	return s.PairQ(i, j) * s.PairQ(k, l)
}

// Screened reports whether quartet (i, j, k, l) can be skipped at
// threshold tau.
func (s *Schwarz) Screened(i, j, k, l int, tau float64) bool {
	return s.Bound(i, j, k, l) < tau
}

// MaxQ returns the largest pair bound; useful for prescreening loops.
func (s *Schwarz) MaxQ() float64 {
	m := 0.0
	for _, v := range s.Q {
		if v > m {
			m = v
		}
	}
	return m
}

// SurvivingPairs returns the shell pairs (i >= j) whose Q exceeds
// tau / maxQ — the pairs that can possibly contribute any quartet at
// screening threshold tau. The shared-Fock algorithm's ij prescreening
// (Algorithm 3 line 13) walks exactly this set.
func (s *Schwarz) SurvivingPairs(tau float64) [][2]int {
	maxQ := s.MaxQ()
	var out [][2]int
	for i := 0; i < s.NShells; i++ {
		for j := 0; j <= i; j++ {
			if s.PairQ(i, j)*maxQ >= tau {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}
