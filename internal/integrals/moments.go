package integrals

import (
	"math"

	"repro/internal/basis"
	"repro/internal/linalg"
)

// Dipole returns the three electric-dipole integral matrices
// M_x, M_y, M_z with elements <a| r_c |b>, where r_c is the electron
// coordinate relative to the given origin (bohr). Combined with the
// density and the nuclear contribution they give the molecular dipole
// moment — one of the standard properties an SCF program reports.
//
// In the McMurchie-Davidson scheme the 1D moment integral about the
// Gaussian product center P is the t = 1 Hermite coefficient:
//
//	<a| x |b> = (E_1^{ij} + X_PO E_0^{ij}) sqrt(pi/p)
//
// with X_PO = Px - Ox the offset of P from the requested origin.
func (e *Engine) Dipole(origin [3]float64) [3]*linalg.Matrix {
	n := e.Basis.NumBF
	out := [3]*linalg.Matrix{linalg.NewSquare(n), linalg.NewSquare(n), linalg.NewSquare(n)}
	shells := e.Basis.Shells
	for i := range shells {
		for j := 0; j <= i; j++ {
			sa, sb := &shells[i], &shells[j]
			blk := e.dipoleBlock(sa, sb, origin)
			na, nb := sa.NumFuncs(), sb.NumFuncs()
			for ax := 0; ax < 3; ax++ {
				for fa := 0; fa < na; fa++ {
					for fb := 0; fb < nb; fb++ {
						v := blk[ax][fa*nb+fb]
						out[ax].Set(sa.BFOffset+fa, sb.BFOffset+fb, v)
						out[ax].Set(sb.BFOffset+fb, sa.BFOffset+fa, v)
					}
				}
			}
		}
	}
	return out
}

// dipoleBlock computes the three per-axis moment blocks for a shell pair.
func (e *Engine) dipoleBlock(sa, sb *basis.Shell, origin [3]float64) [3][]float64 {
	ca, cb := componentsOf(sa), componentsOf(sb)
	var out [3][]float64
	for ax := 0; ax < 3; ax++ {
		out[ax] = make([]float64, len(ca)*len(cb))
	}
	la, lb := sa.MaxL(), sb.MaxL()
	ab := [3]float64{
		sa.Center[0] - sb.Center[0],
		sa.Center[1] - sb.Center[1],
		sa.Center[2] - sb.Center[2],
	}
	for p, ap := range sa.Exps {
		for q, bq := range sb.Exps {
			pp := ap + bq
			sq := math.Sqrt(math.Pi / pp)
			var pc [3]float64 // P - origin per axis
			for ax := 0; ax < 3; ax++ {
				pc[ax] = (ap*sa.Center[ax]+bq*sb.Center[ax])/pp - origin[ax]
			}
			var et [3][][][]float64
			for ax := 0; ax < 3; ax++ {
				et[ax] = hermiteE(la, lb, ap, bq, ab[ax])
			}
			// 1D overlap and first-moment integrals per axis.
			s1 := func(ax, i, j int) float64 { return et[ax][i][j][0] * sq }
			m1 := func(ax, i, j int) float64 {
				e1 := 0.0
				if i+j >= 1 {
					e1 = et[ax][i][j][1]
				}
				return (e1 + pc[ax]*et[ax][i][j][0]) * sq
			}
			for ia, a := range ca {
				caw := sa.Coefs[a.mi][p] * a.norm
				for ib, b := range cb {
					w := caw * sb.Coefs[b.mi][q] * b.norm
					l := [3][2]int{{a.lx, b.lx}, {a.ly, b.ly}, {a.lz, b.lz}}
					for ax := 0; ax < 3; ax++ {
						v := w
						for k := 0; k < 3; k++ {
							if k == ax {
								v *= m1(k, l[k][0], l[k][1])
							} else {
								v *= s1(k, l[k][0], l[k][1])
							}
						}
						out[ax][ia*len(cb)+ib] += v
					}
				}
			}
		}
	}
	return out
}
