package integrals

import (
	"math"
	"testing"

	"repro/internal/molecule"
)

func TestDipolePrimitiveAnalytic(t *testing.T) {
	// <s_A | z | s_B> for normalized s Gaussians equals S_AB * Pz where
	// P is the Gaussian product center (origin at 0).
	a, b, r := 0.9, 1.5, 1.3
	bas := gaussPair(a, b, r)
	e := NewEngine(bas)
	s := e.Overlap()
	m := e.Dipole([3]float64{})
	pz := b * r / (a + b) // product center for A at 0, B at (0,0,r)
	want := s.At(0, 1) * pz
	if math.Abs(m[2].At(0, 1)-want) > 1e-13 {
		t.Fatalf("<A|z|B> = %v want %v", m[2].At(0, 1), want)
	}
	// x and y components vanish for displacement along z.
	if math.Abs(m[0].At(0, 1)) > 1e-14 || math.Abs(m[1].At(0, 1)) > 1e-14 {
		t.Fatal("off-axis moment components nonzero")
	}
	// Diagonal: <A|z|A> = Az = 0; <B|z|B> = r.
	if math.Abs(m[2].At(0, 0)) > 1e-13 {
		t.Fatalf("<A|z|A> = %v", m[2].At(0, 0))
	}
	if math.Abs(m[2].At(1, 1)-r) > 1e-12 {
		t.Fatalf("<B|z|B> = %v want %v", m[2].At(1, 1), r)
	}
}

func TestDipoleOriginShift(t *testing.T) {
	// M(origin) = M(0) - origin * S, element-wise per axis.
	b := buildBasis(t, molecule.Water(), "sto-3g")
	e := NewEngine(b)
	s := e.Overlap()
	m0 := e.Dipole([3]float64{})
	origin := [3]float64{0.7, -1.1, 2.3}
	mShift := e.Dipole(origin)
	for ax := 0; ax < 3; ax++ {
		want := m0[ax].Clone()
		want.AxpyFrom(-origin[ax], s)
		if diff := mShift[ax].MaxAbsDiff(want); diff > 1e-11 {
			t.Fatalf("axis %d: origin-shift identity broken, diff %v", ax, diff)
		}
	}
}

func TestDipoleSymmetric(t *testing.T) {
	b := buildBasis(t, molecule.Methane(), "6-31g(d)")
	e := NewEngine(b)
	m := e.Dipole([3]float64{})
	for ax := 0; ax < 3; ax++ {
		if !m[ax].IsSymmetric(1e-11) {
			t.Fatalf("dipole matrix %d not symmetric", ax)
		}
	}
}

func TestDipoleHigherAngularMomenta(t *testing.T) {
	// p and d functions: compare <a|x|b> against numerical quadrature for
	// a one-center pair where the integral reduces to simple moments.
	// <px|x|px> on one center with exponent alpha (normalized):
	// integral of x^4 exp(-2a x^2) over the x axis relative to
	// x^2 exp(-2a x^2): ratio = 3/(4a). So <px|x^2 ... use parity:
	// <px|x|px> = 0 by parity; <s|x|px> = 1/(2 sqrt(a)) * norm relation.
	a := 1.1
	m := &molecule.Molecule{Name: "C"}
	m.Atoms = []molecule.Atom{{Z: 6, Symbol: "C", Pos: [3]float64{0, 0, 0}}}
	bas := buildBasis(t, m, "sto-3g")
	_ = a
	e := NewEngine(bas)
	mm := e.Dipole([3]float64{})
	// Parity on one center: every diagonal element <f|x|f> vanishes.
	for ax := 0; ax < 3; ax++ {
		for i := 0; i < bas.NumBF; i++ {
			if math.Abs(mm[ax].At(i, i)) > 1e-12 {
				t.Fatalf("one-center diagonal moment nonzero: axis %d bf %d = %v",
					ax, i, mm[ax].At(i, i))
			}
		}
	}
	// <2s|x|2px> must be nonzero (odd*odd = even).
	// Carbon STO-3G: BF order: 1s, 2s, 2px, 2py, 2pz.
	if math.Abs(mm[0].At(1, 2)) < 1e-3 {
		t.Fatalf("<2s|x|2px> = %v, expected nonzero", mm[0].At(1, 2))
	}
	// Cross-axis elements vanish: <2s|x|2py> = 0.
	if math.Abs(mm[0].At(1, 3)) > 1e-12 {
		t.Fatalf("<2s|x|2py> = %v", mm[0].At(1, 3))
	}
}
