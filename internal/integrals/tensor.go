package integrals

// FullERITensor evaluates the complete two-electron integral tensor
// (ab|cd) in chemists' notation, dense, with no symmetry folding:
// tensor[((a*n+b)*n+c)*n+d]. O(N^4) memory — for small systems only
// (validation references and the MP2 transformation).
func (e *Engine) FullERITensor() []float64 {
	n := e.Basis.NumBF
	shells := e.Basis.Shells
	tensor := make([]float64, n*n*n*n)
	var buf []float64
	for i := range shells {
		for j := range shells {
			for k := range shells {
				for l := range shells {
					buf = e.ShellQuartet(i, j, k, l, buf)
					si, sj, sk, sl := &shells[i], &shells[j], &shells[k], &shells[l]
					idx := 0
					for fa := 0; fa < si.NumFuncs(); fa++ {
						for fb := 0; fb < sj.NumFuncs(); fb++ {
							for fc := 0; fc < sk.NumFuncs(); fc++ {
								for fd := 0; fd < sl.NumFuncs(); fd++ {
									a := si.BFOffset + fa
									b := sj.BFOffset + fb
									c := sk.BFOffset + fc
									d := sl.BFOffset + fd
									tensor[((a*n+b)*n+c)*n+d] = buf[idx]
									idx++
								}
							}
						}
					}
				}
			}
		}
	}
	return tensor
}
