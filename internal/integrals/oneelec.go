package integrals

import (
	"math"

	"repro/internal/basis"
	"repro/internal/linalg"
)

// Engine evaluates integrals over a built basis. It is stateless apart
// from the basis reference, so one Engine can be shared by any number of
// goroutines; per-thread scratch is passed explicitly where needed.
type Engine struct {
	Basis *basis.Basis
}

// NewEngine returns an integral engine over b.
func NewEngine(b *basis.Basis) *Engine { return &Engine{Basis: b} }

// Overlap returns the AO overlap matrix S.
func (e *Engine) Overlap() *linalg.Matrix {
	return e.oneElectron(func(sa, sb *basis.Shell) []float64 {
		return e.overlapBlock(sa, sb)
	})
}

// Kinetic returns the kinetic energy matrix T.
func (e *Engine) Kinetic() *linalg.Matrix {
	return e.oneElectron(func(sa, sb *basis.Shell) []float64 {
		return e.kineticBlock(sa, sb)
	})
}

// Nuclear returns the nuclear attraction matrix V (negative definite
// contributions from every nucleus).
func (e *Engine) Nuclear() *linalg.Matrix {
	return e.oneElectron(func(sa, sb *basis.Shell) []float64 {
		return e.nuclearBlock(sa, sb)
	})
}

// CoreHamiltonian returns H = T + V.
func (e *Engine) CoreHamiltonian() *linalg.Matrix {
	h := e.Kinetic()
	h.AxpyFrom(1, e.Nuclear())
	return h
}

// oneElectron assembles a symmetric one-electron matrix from shell blocks.
func (e *Engine) oneElectron(block func(sa, sb *basis.Shell) []float64) *linalg.Matrix {
	n := e.Basis.NumBF
	m := linalg.NewSquare(n)
	shells := e.Basis.Shells
	for i := range shells {
		for j := 0; j <= i; j++ {
			sa, sb := &shells[i], &shells[j]
			blk := block(sa, sb)
			na, nb := sa.NumFuncs(), sb.NumFuncs()
			for fa := 0; fa < na; fa++ {
				for fb := 0; fb < nb; fb++ {
					v := blk[fa*nb+fb]
					m.Set(sa.BFOffset+fa, sb.BFOffset+fb, v)
					m.Set(sb.BFOffset+fb, sa.BFOffset+fa, v)
				}
			}
		}
	}
	return m
}

// shellComponents enumerates the (moment index, l, lx, ly, lz, norm) tuples
// of a shell in basis-function order.
type component struct {
	l, lx, ly, lz int
	mi            int     // moment index into Coefs
	norm          float64 // cartesian component normalization factor
}

func componentsOf(s *basis.Shell) []component {
	var out []component
	for mi, l := range s.Moments {
		for _, c := range basis.CartComponents(l) {
			out = append(out, component{
				l: l, lx: c[0], ly: c[1], lz: c[2], mi: mi,
				norm: basis.CartNormFactor(c[0], c[1], c[2]),
			})
		}
	}
	return out
}

// overlapBlock computes the na x nb overlap block between two shells.
func (e *Engine) overlapBlock(sa, sb *basis.Shell) []float64 {
	ca, cb := componentsOf(sa), componentsOf(sb)
	out := make([]float64, len(ca)*len(cb))
	la, lb := sa.MaxL(), sb.MaxL()
	ab := [3]float64{
		sa.Center[0] - sb.Center[0],
		sa.Center[1] - sb.Center[1],
		sa.Center[2] - sb.Center[2],
	}
	for p, ap := range sa.Exps {
		for q, bq := range sb.Exps {
			pp := ap + bq
			pref := math.Pow(math.Pi/pp, 1.5)
			ex := hermiteE(la, lb, ap, bq, ab[0])
			ey := hermiteE(la, lb, ap, bq, ab[1])
			ez := hermiteE(la, lb, ap, bq, ab[2])
			for ia, a := range ca {
				caw := sa.Coefs[a.mi][p] * a.norm
				for ib, b := range cb {
					w := caw * sb.Coefs[b.mi][q] * b.norm
					out[ia*len(cb)+ib] += w * pref *
						ex[a.lx][b.lx][0] * ey[a.ly][b.ly][0] * ez[a.lz][b.lz][0]
				}
			}
		}
	}
	return out
}

// kineticBlock computes the kinetic energy block using the standard
// decomposition T = Tx Sy Sz + Sx Ty Sz + Sx Sy Tz with the 1D kinetic
// integrals expressed through overlaps of shifted angular momenta:
//
//	T_ij = -2 b^2 S_{i,j+2} + b(2j+1) S_{ij} - j(j-1)/2 S_{i,j-2}
func (e *Engine) kineticBlock(sa, sb *basis.Shell) []float64 {
	ca, cb := componentsOf(sa), componentsOf(sb)
	out := make([]float64, len(ca)*len(cb))
	la, lb := sa.MaxL(), sb.MaxL()
	ab := [3]float64{
		sa.Center[0] - sb.Center[0],
		sa.Center[1] - sb.Center[1],
		sa.Center[2] - sb.Center[2],
	}
	for p, ap := range sa.Exps {
		for q, bq := range sb.Exps {
			pp := ap + bq
			sqp := math.Sqrt(math.Pi / pp)
			// E tables with +2 headroom on the b side for the j+2 shifts.
			var et [3][][][]float64
			for ax := 0; ax < 3; ax++ {
				et[ax] = hermiteE(la, lb+2, ap, bq, ab[ax])
			}
			s1 := func(ax, i, j int) float64 {
				if j < 0 {
					return 0
				}
				return et[ax][i][j][0] * sqp
			}
			t1 := func(ax, i, j int) float64 {
				v := -2 * bq * bq * s1(ax, i, j+2)
				v += bq * float64(2*j+1) * s1(ax, i, j)
				if j >= 2 {
					v -= 0.5 * float64(j) * float64(j-1) * s1(ax, i, j-2)
				}
				return v
			}
			for ia, a := range ca {
				caw := sa.Coefs[a.mi][p] * a.norm
				for ib, b := range cb {
					w := caw * sb.Coefs[b.mi][q] * b.norm
					tx := t1(0, a.lx, b.lx) * s1(1, a.ly, b.ly) * s1(2, a.lz, b.lz)
					ty := s1(0, a.lx, b.lx) * t1(1, a.ly, b.ly) * s1(2, a.lz, b.lz)
					tz := s1(0, a.lx, b.lx) * s1(1, a.ly, b.ly) * t1(2, a.lz, b.lz)
					out[ia*len(cb)+ib] += w * (tx + ty + tz)
				}
			}
		}
	}
	return out
}

// nuclearBlock computes the nuclear attraction block summed over all
// nuclei: V_ab = -sum_C Z_C (2 pi / p) sum_tuv E_tuv R_tuv(p, P - C).
func (e *Engine) nuclearBlock(sa, sb *basis.Shell) []float64 {
	ca, cb := componentsOf(sa), componentsOf(sb)
	out := make([]float64, len(ca)*len(cb))
	la, lb := sa.MaxL(), sb.MaxL()
	ltot := la + lb
	ab := [3]float64{
		sa.Center[0] - sb.Center[0],
		sa.Center[1] - sb.Center[1],
		sa.Center[2] - sb.Center[2],
	}
	atoms := e.Basis.Mol.Atoms
	for p, ap := range sa.Exps {
		for q, bq := range sb.Exps {
			pp := ap + bq
			px := (ap*sa.Center[0] + bq*sb.Center[0]) / pp
			py := (ap*sa.Center[1] + bq*sb.Center[1]) / pp
			pz := (ap*sa.Center[2] + bq*sb.Center[2]) / pp
			ex := hermiteE(la, lb, ap, bq, ab[0])
			ey := hermiteE(la, lb, ap, bq, ab[1])
			ez := hermiteE(la, lb, ap, bq, ab[2])
			pref := 2 * math.Pi / pp
			for _, at := range atoms {
				r := hermiteR(ltot, pp, px-at.Pos[0], py-at.Pos[1], pz-at.Pos[2])
				zc := -float64(at.Z) * pref
				for ia, a := range ca {
					caw := sa.Coefs[a.mi][p] * a.norm
					for ib, b := range cb {
						w := caw * sb.Coefs[b.mi][q] * b.norm
						sum := 0.0
						for t := 0; t <= a.lx+b.lx; t++ {
							extv := ex[a.lx][b.lx][t]
							if extv == 0 {
								continue
							}
							for u := 0; u <= a.ly+b.ly; u++ {
								eyuv := ey[a.ly][b.ly][u]
								if eyuv == 0 {
									continue
								}
								for v := 0; v <= a.lz+b.lz; v++ {
									sum += extv * eyuv * ez[a.lz][b.lz][v] *
										r[rIndex(t, u, v, ltot)]
								}
							}
						}
						out[ia*len(cb)+ib] += zc * w * sum
					}
				}
			}
		}
	}
	return out
}
