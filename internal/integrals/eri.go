package integrals

import (
	"math"

	"repro/internal/basis"
)

// QuartetSize returns the number of ERI values a shell quartet produces.
func QuartetSize(sa, sb, sc, sd *basis.Shell) int {
	return sa.NumFuncs() * sb.NumFuncs() * sc.NumFuncs() * sd.NumFuncs()
}

// ShellQuartet computes the full block of two-electron repulsion integrals
// (ab|cd) in chemists' notation for shells with indices (si, sj, sk, sl),
// returning values in basis-function order with layout
// out[((fa*nb+fb)*nc+fc)*nd+fd]. The slice is reallocated when too small.
//
// This is the eri() call of the paper's Algorithms 1-3: the innermost,
// dominant cost of the whole Hartree-Fock procedure.
func (e *Engine) ShellQuartet(si, sj, sk, sl int, out []float64) []float64 {
	shells := e.Basis.Shells
	sa, sb, sc, sd := &shells[si], &shells[sj], &shells[sk], &shells[sl]
	ca, cb := componentsOf(sa), componentsOf(sb)
	cc, cd := componentsOf(sc), componentsOf(sd)
	na, nb, nc, nd := len(ca), len(cb), len(cc), len(cd)
	need := na * nb * nc * nd
	if cap(out) < need {
		out = make([]float64, need)
	}
	out = out[:need]
	for i := range out {
		out[i] = 0
	}

	la, lb := sa.MaxL(), sb.MaxL()
	lc, ld := sc.MaxL(), sd.MaxL()
	lbra, lket := la+lb, lc+ld
	ltot := lbra + lket

	abx := sa.Center[0] - sb.Center[0]
	aby := sa.Center[1] - sb.Center[1]
	abz := sa.Center[2] - sb.Center[2]
	cdx := sc.Center[0] - sd.Center[0]
	cdy := sc.Center[1] - sd.Center[1]
	cdz := sc.Center[2] - sd.Center[2]

	for p, ap := range sa.Exps {
		for q, bq := range sb.Exps {
			pp := ap + bq
			px := (ap*sa.Center[0] + bq*sb.Center[0]) / pp
			py := (ap*sa.Center[1] + bq*sb.Center[1]) / pp
			pz := (ap*sa.Center[2] + bq*sb.Center[2]) / pp
			e1x := hermiteE(la, lb, ap, bq, abx)
			e1y := hermiteE(la, lb, ap, bq, aby)
			e1z := hermiteE(la, lb, ap, bq, abz)
			for r, cr := range sc.Exps {
				for s, ds := range sd.Exps {
					qq := cr + ds
					qx := (cr*sc.Center[0] + ds*sd.Center[0]) / qq
					qy := (cr*sc.Center[1] + ds*sd.Center[1]) / qq
					qz := (cr*sc.Center[2] + ds*sd.Center[2]) / qq
					e2x := hermiteE(lc, ld, cr, ds, cdx)
					e2y := hermiteE(lc, ld, cr, ds, cdy)
					e2z := hermiteE(lc, ld, cr, ds, cdz)
					alpha := pp * qq / (pp + qq)
					rt := hermiteR(ltot, alpha, px-qx, py-qy, pz-qz)
					pref := 2 * math.Pow(math.Pi, 2.5) /
						(pp * qq * math.Sqrt(pp+qq))

					idx := 0
					for _, a := range ca {
						wa := sa.Coefs[a.mi][p] * a.norm
						for _, b := range cb {
							wab := wa * sb.Coefs[b.mi][q] * b.norm
							tmaxX, tmaxY, tmaxZ := a.lx+b.lx, a.ly+b.ly, a.lz+b.lz
							for _, c := range cc {
								wabc := wab * sc.Coefs[c.mi][r] * c.norm
								for _, d := range cd {
									w := wabc * sd.Coefs[d.mi][s] * d.norm * pref
									umaxX, umaxY, umaxZ := c.lx+d.lx, c.ly+d.ly, c.lz+d.lz
									sum := 0.0
									for t := 0; t <= tmaxX; t++ {
										ext := e1x[a.lx][b.lx][t]
										if ext == 0 {
											continue
										}
										for u := 0; u <= tmaxY; u++ {
											eyu := e1y[a.ly][b.ly][u]
											if eyu == 0 {
												continue
											}
											for v := 0; v <= tmaxZ; v++ {
												ezv := e1z[a.lz][b.lz][v]
												if ezv == 0 {
													continue
												}
												braW := ext * eyu * ezv
												ketSum := 0.0
												for tau := 0; tau <= umaxX; tau++ {
													ex2 := e2x[c.lx][d.lx][tau]
													if ex2 == 0 {
														continue
													}
													for nu := 0; nu <= umaxY; nu++ {
														ey2 := e2y[c.ly][d.ly][nu]
														if ey2 == 0 {
															continue
														}
														for phi := 0; phi <= umaxZ; phi++ {
															ez2 := e2z[c.lz][d.lz][phi]
															if ez2 == 0 {
																continue
															}
															sign := 1.0
															if (tau+nu+phi)&1 == 1 {
																sign = -1
															}
															ketSum += sign * ex2 * ey2 * ez2 *
																rt[rIndex(t+tau, u+nu, v+phi, ltot)]
														}
													}
												}
												sum += braW * ketSum
											}
										}
									}
									out[idx] += w * sum
									idx++
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// ERIValue computes a single primitive-style contracted integral for the
// first basis function of each shell quartet; used by validation tests on
// s-only systems.
func (e *Engine) ERIValue(si, sj, sk, sl int) float64 {
	blk := e.ShellQuartet(si, sj, sk, sl, nil)
	return blk[0]
}

// QuartetSource produces ERI shell-quartet blocks; both the direct Engine
// and the precomputed PairCache implement it, so the Fock builders can
// switch between direct evaluation and pair-data reuse.
type QuartetSource interface {
	ShellQuartet(i, j, k, l int, out []float64) []float64
}
