package integrals

import "math"

// hermiteE computes the 1D Hermite expansion coefficients E_t^{ij} for a
// primitive pair with exponents a (on A) and b (on B) along one axis,
// where xAB = Ax - Bx. The result is indexed e[i][j][t] for 0 <= i <= la,
// 0 <= j <= lb, 0 <= t <= i+j.
//
// Recurrences (Helgaker, Jørgensen, Olsen ch. 9):
//
//	E_0^{00}    = exp(-mu xAB^2)
//	E_t^{i+1,j} = E_{t-1}^{ij}/(2p) + xPA E_t^{ij} + (t+1) E_{t+1}^{ij}
//	E_t^{i,j+1} = E_{t-1}^{ij}/(2p) + xPB E_t^{ij} + (t+1) E_{t+1}^{ij}
func hermiteE(la, lb int, a, b, xAB float64) [][][]float64 {
	p := a + b
	mu := a * b / p
	xPA := -b / p * xAB // Px - Ax with Px = (a Ax + b Bx)/p
	xPB := a / p * xAB  // Px - Bx

	e := make([][][]float64, la+1)
	for i := range e {
		e[i] = make([][]float64, lb+1)
		for j := range e[i] {
			e[i][j] = make([]float64, i+j+1)
		}
	}
	e[0][0][0] = math.Exp(-mu * xAB * xAB)
	get := func(i, j, t int) float64 {
		if t < 0 || t > i+j {
			return 0
		}
		return e[i][j][t]
	}
	// Build up i with j = 0, then j for each i.
	for i := 0; i < la; i++ {
		for t := 0; t <= i+1; t++ {
			e[i+1][0][t] = get(i, 0, t-1)/(2*p) + xPA*get(i, 0, t) + float64(t+1)*get(i, 0, t+1)
		}
	}
	for i := 0; i <= la; i++ {
		for j := 0; j < lb; j++ {
			for t := 0; t <= i+j+1; t++ {
				e[i][j+1][t] = get(i, j, t-1)/(2*p) + xPB*get(i, j, t) + float64(t+1)*get(i, j, t+1)
			}
		}
	}
	return e
}

// hermiteR computes the Hermite Coulomb integrals R^0_{tuv} for all
// t+u+v <= l, for Gaussian exponent alpha and separation (x, y, z):
//
//	R^n_{000}     = (-2 alpha)^n F_n(alpha r^2)
//	R^n_{t+1,u,v} = t R^{n+1}_{t-1,u,v} + x R^{n+1}_{tuv}   (etc. for u, v)
//
// The result is a flat array indexed by rIndex(t, u, v, l).
func hermiteR(l int, alpha, x, y, z float64) []float64 {
	r2 := x*x + y*y + z*z
	fn := make([]float64, l+1)
	Boys(l, alpha*r2, fn)

	// cur[n] tables hold R^n for decreasing n; we iterate n from l down to
	// 0, extending the (t,u,v) range at each step.
	size := rSize(l)
	cur := make([]float64, size)
	next := make([]float64, size)
	pow := 1.0
	// n = l: only R^l_{000}.
	for n := l; n >= 0; n-- {
		// pow = (-2 alpha)^n
		pow = math.Pow(-2*alpha, float64(n))
		next, cur = cur, next
		for i := range cur {
			cur[i] = 0
		}
		cur[rIndex(0, 0, 0, l)] = pow * fn[n]
		maxOrder := l - n
		for total := 1; total <= maxOrder; total++ {
			for t := 0; t <= total; t++ {
				for u := 0; u <= total-t; u++ {
					v := total - t - u
					var val float64
					switch {
					case t > 0:
						val = x * next[rIndex(t-1, u, v, l)]
						if t > 1 {
							val += float64(t-1) * next[rIndex(t-2, u, v, l)]
						}
					case u > 0:
						val = y * next[rIndex(t, u-1, v, l)]
						if u > 1 {
							val += float64(u-1) * next[rIndex(t, u-2, v, l)]
						}
					default:
						val = z * next[rIndex(t, u, v-1, l)]
						if v > 1 {
							val += float64(v-1) * next[rIndex(t, u, v-2, l)]
						}
					}
					cur[rIndex(t, u, v, l)] = val
				}
			}
		}
	}
	return cur
}

// rSize returns the flat table size for all t,u,v with t,u,v <= l
// individually (a cube indexing keeps rIndex trivial and branch-free).
func rSize(l int) int { return (l + 1) * (l + 1) * (l + 1) }

// rIndex maps (t, u, v) into the flat R table for max order l.
func rIndex(t, u, v, l int) int { return (t*(l+1)+u)*(l+1) + v }
