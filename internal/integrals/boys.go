// Package integrals implements the molecular integrals over contracted
// cartesian Gaussians that Hartree-Fock needs: overlap, kinetic, nuclear
// attraction, and the two-electron repulsion integrals (ERIs), using the
// McMurchie-Davidson scheme (Hermite expansion coefficients E and Hermite
// Coulomb integrals R built on the Boys function). It also provides the
// Cauchy-Schwarz screening data the paper's Algorithms 1-3 rely on.
package integrals

import "math"

// maxBoysOrder is the highest Boys order the tables support; (dd|dd)
// quartets need 4*2 = 8, f-function headroom is included.
const maxBoysOrder = 24

// Boys fills out[0..n] with the Boys functions F_0(t)..F_n(t), where
// F_m(t) = int_0^1 u^{2m} exp(-t u^2) du.
//
// Three regimes are used: the exact limit at t ~ 0, a downward recursion
// seeded by a convergent series for moderate t (stable for all m), and the
// asymptotic complementary form with upward recursion for large t where it
// is stable.
func Boys(n int, t float64, out []float64) {
	if n > maxBoysOrder {
		panic("integrals: Boys order too large")
	}
	switch {
	case t < 1e-13:
		for m := 0; m <= n; m++ {
			out[m] = 1.0 / float64(2*m+1)
		}
	case t > 35:
		// F_0 = sqrt(pi/t)/2 minus an exponentially small tail; the tail is
		// below 1e-16 for t > 35.
		out[0] = 0.5 * math.Sqrt(math.Pi/t)
		et := math.Exp(-t)
		for m := 0; m < n; m++ {
			out[m+1] = (float64(2*m+1)*out[m] - et) / (2 * t)
		}
	default:
		// Series for the highest order:
		// F_M(t) = exp(-t) * sum_{k>=0} (2t)^k / (2M+1)(2M+3)...(2M+2k+1)
		et := math.Exp(-t)
		sum := 1.0 / float64(2*n+1)
		term := sum
		for k := 1; ; k++ {
			term *= 2 * t / float64(2*n+2*k+1)
			sum += term
			if term < 1e-17*sum {
				break
			}
		}
		out[n] = et * sum
		// Downward recursion: F_m = (2t F_{m+1} + exp(-t)) / (2m+1)
		for m := n - 1; m >= 0; m-- {
			out[m] = (2*t*out[m+1] + et) / float64(2*m+1)
		}
	}
}

// BoysSingle returns F_n(t) by itself; convenience for tests.
func BoysSingle(n int, t float64) float64 {
	buf := make([]float64, n+1)
	Boys(n, t, buf)
	return buf[n]
}
