package integrity

// Matrix validators: cheap per-iteration sanity checks on the SCF's two
// central matrices. Each costs O(n^2) against the O(n^4) Fock build, so
// running all of them every iteration is effectively free, yet together
// they catch the corruption classes transport checksums cannot see —
// NaN poison produced inside a Fock task, asymmetric writes from a
// fenced-off zombie rank, and density drift after a bad restart.

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// CheckKind classifies what a validator rejected.
type CheckKind string

// Validator rejection classes.
const (
	CheckNonFinite  CheckKind = "non-finite"  // NaN or Inf entry
	CheckAsymmetric CheckKind = "asymmetric"  // symmetry drift beyond tolerance
	CheckTraceDrift CheckKind = "trace-drift" // electron count Tr(D*S) off
)

// ValidationError reports a failed matrix check with enough detail to log
// and act on (quarantine-and-recompute, ladder escalation).
type ValidationError struct {
	Kind   CheckKind
	Matrix string  // which matrix failed ("fock", "density")
	Detail string  // human-readable specifics
	Drift  float64 // the measured drift for asymmetry/trace checks
}

// Error implements error.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("integrity: %s matrix %s: %s", e.Matrix, e.Kind, e.Detail)
}

// CheckFinite verifies every entry of m is finite. The scan touches
// m.Data linearly, so it vectorizes and costs one pass over the matrix.
func CheckFinite(name string, m *linalg.Matrix) error {
	for i, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return &ValidationError{Kind: CheckNonFinite, Matrix: name,
				Detail: fmt.Sprintf("element %d (row %d, col %d) = %v", i, i/m.Cols, i%m.Cols, v)}
		}
	}
	return nil
}

// CheckSymmetric verifies max |m_ij - m_ji| <= tol * (1 + max |m_ij|).
// The Fock and density matrices are symmetric by construction; drift
// means a one-sided write landed on only one triangle.
func CheckSymmetric(name string, m *linalg.Matrix, tol float64) error {
	maxAbs, maxAsym := 0.0, 0.0
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < i; j++ {
			a, b := m.At(i, j), m.At(j, i)
			if d := math.Abs(a - b); d > maxAsym {
				maxAsym = d
			}
			if v := math.Abs(a); v > maxAbs {
				maxAbs = v
			}
		}
		if v := math.Abs(m.At(i, i)); v > maxAbs {
			maxAbs = v
		}
	}
	if maxAsym > tol*(1+maxAbs) {
		return &ValidationError{Kind: CheckAsymmetric, Matrix: name, Drift: maxAsym,
			Detail: fmt.Sprintf("symmetry drift %.3e exceeds %.3e", maxAsym, tol*(1+maxAbs))}
	}
	return nil
}

// CheckElectronCount verifies the density's electron count: for a
// closed-shell density Tr(D*S) must equal the electron count. S is
// symmetric, so Tr(D*S) = sum_ij D_ij S_ij, one fused pass over both.
func CheckElectronCount(d, s *linalg.Matrix, nelec int, tol float64) error {
	tr := linalg.Dot(d, s)
	if math.IsNaN(tr) || math.Abs(tr-float64(nelec)) > tol {
		return &ValidationError{Kind: CheckTraceDrift, Matrix: "density",
			Drift:  tr - float64(nelec),
			Detail: fmt.Sprintf("Tr(D*S) = %.6f, want %d electrons (tol %.1e)", tr, nelec, tol)}
	}
	return nil
}

// CheckFock runs the Fock-matrix validator set: finite entries and
// symmetry. Returns the first failure.
func CheckFock(g *linalg.Matrix, symTol float64) error {
	if err := CheckFinite("fock", g); err != nil {
		return err
	}
	return CheckSymmetric("fock", g, symTol)
}

// CheckDensity runs the density validator set: finite entries, symmetry,
// and the electron-count trace.
func CheckDensity(d, s *linalg.Matrix, nelec int, symTol, traceTol float64) error {
	if err := CheckFinite("density", d); err != nil {
		return err
	}
	if err := CheckSymmetric("density", d, symTol); err != nil {
		return err
	}
	return CheckElectronCount(d, s, nelec, traceTol)
}
