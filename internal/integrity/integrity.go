// Package integrity is the data-integrity and numerical-robustness
// toolkit of the runtime: checksums for message payloads and checkpoint
// files, cheap per-iteration matrix validators for the SCF, and the
// bit-flip/NaN corruption primitives the fault injector uses to exercise
// them.
//
// Motivation: PR 1 made the runtime survive *fail-stop* rank death, but
// at the paper's 3,000-node scale (Figure 7) the other routine failure
// mode is *silent data corruption* — a bit flips in a broadcast density
// block, a reduced Fock matrix, or a checkpoint file, and every rank's
// subsequent work is poisoned without any crash. Because the paper's
// algorithms replicate the density and Fock on every rank, one corrupted
// replica is globally fatal. This package supplies the detection layer:
//
//   - Fletcher-64 checksums over float64/int payloads (internal/mpi
//     frames every send with one; collectives inherit the protection
//     because they are built on the point-to-point layer);
//   - CRC-32 framing for checkpoint files (internal/scf/checkpoint.go);
//   - matrix validators — finite entries, symmetry drift, electron-count
//     trace — that catch corruption which slipped past (or never crossed)
//     the transport, at O(n^2) cost per SCF iteration against the O(n^4)
//     Fock build;
//   - corruption primitives (FlipFloatBit, PoisonNaN, FlipByteBit) used
//     by mpi.FaultPlan injection so every detector is testable.
//
// Everything here is stdlib-only and allocation-free on the hot paths.
package integrity

import "math"

// fletcherMod is the Fletcher checksum modulus for 32-bit blocks.
const fletcherMod = 0xFFFFFFFF

// reduceEvery bounds how many 32-bit words may accumulate between modular
// reductions. s2 grows as ~k^2/2 * 2^32 after k unreduced words, so
// reduction every 2^15 words keeps both sums far from uint64 overflow.
const reduceEvery = 1 << 15

// Fletcher64 is a streaming Fletcher-64 checksum over 32-bit words
// (position-sensitive, unlike a plain sum: it detects reorderings as well
// as value changes). Every single-bit error is detected: a one-bit flip
// changes one 32-bit word by +-2^k with 0 < 2^k < 2^32-1, which cannot
// vanish modulo 2^32-1. The zero value is ready to use.
type Fletcher64 struct {
	s1, s2 uint64
	n      int
}

func (f *Fletcher64) reduce() {
	f.s1 %= fletcherMod
	f.s2 %= fletcherMod
	f.n = 0
}

// AddWord folds one 32-bit word into the checksum.
func (f *Fletcher64) AddWord(w uint32) {
	f.s1 += uint64(w)
	f.s2 += f.s1
	if f.n++; f.n >= reduceEvery {
		f.reduce()
	}
}

// AddUint64 folds a 64-bit value in as two 32-bit words (low word first).
func (f *Fletcher64) AddUint64(v uint64) {
	f.AddWord(uint32(v))
	f.AddWord(uint32(v >> 32))
}

// AddFloat64 folds a float64 in by its IEEE-754 bit pattern.
func (f *Fletcher64) AddFloat64(v float64) {
	f.AddUint64(math.Float64bits(v))
}

// Sum returns the checksum of everything added so far.
func (f *Fletcher64) Sum() uint64 {
	f.reduce()
	return f.s2<<32 | f.s1
}

// ChecksumPayload checksums a message payload: both slices' lengths
// followed by their contents, so truncation and cross-slice confusion are
// detected alongside value corruption. Either slice may be nil.
func ChecksumPayload(floats []float64, ints []int) uint64 {
	var f Fletcher64
	f.AddUint64(uint64(len(floats)))
	f.AddUint64(uint64(len(ints)))
	for _, v := range floats {
		f.AddUint64(math.Float64bits(v))
	}
	for _, v := range ints {
		f.AddUint64(uint64(v))
	}
	return f.Sum()
}

// --- corruption primitives (fault-injection side) ---

// FlipFloatBit flips bit b (0..63) of floats[i] in place, modeling a
// single-event upset in a float64. Out-of-range i or b are clamped so an
// injection schedule can never panic the run it is trying to corrupt.
func FlipFloatBit(floats []float64, i, b int) {
	if len(floats) == 0 {
		return
	}
	i = clamp(i, len(floats))
	b = clamp(b, 64)
	floats[i] = math.Float64frombits(math.Float64bits(floats[i]) ^ (1 << uint(b)))
}

// PoisonNaN overwrites floats[i] with a quiet NaN — the corruption shape
// a faulty FMA unit or an out-of-bounds read produces inside a Fock task.
func PoisonNaN(floats []float64, i int) {
	if len(floats) == 0 {
		return
	}
	floats[clamp(i, len(floats))] = math.NaN()
}

// FlipByteBit flips bit b (0..7) of data[i] in place — the byte-stream
// analogue of FlipFloatBit, used to corrupt serialized checkpoints.
func FlipByteBit(data []byte, i, b int) {
	if len(data) == 0 {
		return
	}
	data[clamp(i, len(data))] ^= 1 << uint(clamp(b, 8))
}

func clamp(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
