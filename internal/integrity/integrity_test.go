package integrity

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// TestSingleBitFlipAlwaysChangesChecksum is the property the verified
// transport rests on: for payloads of several lengths, flipping ANY
// single bit of ANY element changes the Fletcher-64 checksum. The sweep
// is exhaustive over bit positions and elements for small payloads and
// sampled for larger ones.
func TestSingleBitFlipAlwaysChangesChecksum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 7, 64, 1830} {
		base := make([]float64, n)
		for i := range base {
			base[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
		}
		ref := ChecksumPayload(base, nil)
		idxs := []int{0, n - 1, n / 2}
		if n <= 8 {
			idxs = idxs[:0]
			for i := 0; i < n; i++ {
				idxs = append(idxs, i)
			}
		}
		for _, i := range idxs {
			for b := 0; b < 64; b++ {
				flipped := append([]float64(nil), base...)
				FlipFloatBit(flipped, i, b)
				if got := ChecksumPayload(flipped, nil); got == ref {
					t.Fatalf("n=%d: flip of bit %d of element %d not detected", n, b, i)
				}
			}
		}
	}
}

// TestChecksumIntPayloadBitFlips covers the int-payload half of framing.
func TestChecksumIntPayloadBitFlips(t *testing.T) {
	base := []int{0, 1, -5, 1 << 40, 123456789}
	ref := ChecksumPayload(nil, base)
	for i := range base {
		for b := 0; b < 64; b++ {
			flipped := append([]int(nil), base...)
			flipped[i] ^= 1 << uint(b)
			if ChecksumPayload(nil, flipped) == ref {
				t.Fatalf("int flip bit %d of element %d not detected", b, i)
			}
		}
	}
}

// TestChecksumLengthAndOrderSensitivity: truncation, extension, swaps and
// float/int boundary confusion must all change the sum.
func TestChecksumLengthAndOrderSensitivity(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	ref := ChecksumPayload(a, nil)
	if ChecksumPayload(a[:3], nil) == ref {
		t.Fatal("truncation not detected")
	}
	if ChecksumPayload(append(append([]float64(nil), a...), 0), nil) == ref {
		t.Fatal("zero-extension not detected")
	}
	swapped := []float64{2, 1, 3, 4}
	if ChecksumPayload(swapped, nil) == ref {
		t.Fatal("reorder not detected (checksum must be position-sensitive)")
	}
	if ChecksumPayload(nil, []int{4611686018427387904}) == ChecksumPayload([]float64{2}, nil) {
		// 2.0's bit pattern as an int vs as a float: lengths are folded in,
		// so the two payload shapes must not collide.
		t.Fatal("float/int payload confusion not detected")
	}
}

func TestChecksumStreamingMatchesOneShot(t *testing.T) {
	vals := make([]float64, 100000) // crosses the deferred-reduction boundary
	for i := range vals {
		vals[i] = float64(i) * 1.25
	}
	var f Fletcher64
	f.AddUint64(uint64(len(vals)))
	f.AddUint64(0)
	for _, v := range vals {
		f.AddFloat64(v)
	}
	if f.Sum() != ChecksumPayload(vals, nil) {
		t.Fatal("streaming and one-shot checksums disagree")
	}
	// Sum must be idempotent.
	if f.Sum() != f.Sum() {
		t.Fatal("Sum is not idempotent")
	}
}

func TestCorruptionPrimitivesClamp(t *testing.T) {
	FlipFloatBit(nil, 0, 0) // must not panic
	PoisonNaN(nil, 3)
	FlipByteBit(nil, 1, 2)
	v := []float64{1}
	FlipFloatBit(v, 99, 99)
	if v[0] == 1 {
		t.Fatal("clamped flip should still corrupt")
	}
	w := []float64{1, 2}
	PoisonNaN(w, -5)
	if !math.IsNaN(w[0]) {
		t.Fatal("clamped poison should land on element 0")
	}
}

func TestCheckFinite(t *testing.T) {
	m := linalg.NewSquare(4)
	if err := CheckFinite("fock", m); err != nil {
		t.Fatal(err)
	}
	m.Set(2, 3, math.NaN())
	err := CheckFinite("fock", m)
	if err == nil {
		t.Fatal("NaN not detected")
	}
	ve, ok := err.(*ValidationError)
	if !ok || ve.Kind != CheckNonFinite {
		t.Fatalf("wrong error: %v", err)
	}
	m.Set(2, 3, math.Inf(-1))
	if CheckFinite("fock", m) == nil {
		t.Fatal("-Inf not detected")
	}
}

func TestCheckSymmetric(t *testing.T) {
	m := linalg.NewSquare(5)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			m.Set(i, j, float64(i+j))
			m.Set(j, i, float64(i+j))
		}
	}
	if err := CheckSymmetric("fock", m, 1e-10); err != nil {
		t.Fatal(err)
	}
	m.Add(3, 1, 1e-3) // one-triangle write
	err := CheckSymmetric("fock", m, 1e-10)
	if err == nil {
		t.Fatal("asymmetry not detected")
	}
	if ve := err.(*ValidationError); ve.Kind != CheckAsymmetric || ve.Drift < 0.9e-3 {
		t.Fatalf("wrong classification: %+v", ve)
	}
}

func TestCheckElectronCount(t *testing.T) {
	// Orthonormal basis (S = I), D = diag(2, 2, 0): 4 electrons.
	s := linalg.Identity(3)
	d := linalg.NewSquare(3)
	d.Set(0, 0, 2)
	d.Set(1, 1, 2)
	if err := CheckElectronCount(d, s, 4, 1e-8); err != nil {
		t.Fatal(err)
	}
	if err := CheckElectronCount(d, s, 6, 1e-8); err == nil {
		t.Fatal("electron-count drift not detected")
	}
	d.Set(1, 1, math.NaN())
	if err := CheckElectronCount(d, s, 4, 1e-8); err == nil {
		t.Fatal("NaN trace not detected")
	}
}

func TestCheckFockAndDensityComposites(t *testing.T) {
	s := linalg.Identity(2)
	d := linalg.NewSquare(2)
	d.Set(0, 0, 2)
	if err := CheckDensity(d, s, 2, 1e-8, 1e-6); err != nil {
		t.Fatal(err)
	}
	g := linalg.NewSquare(2)
	if err := CheckFock(g, 1e-8); err != nil {
		t.Fatal(err)
	}
	PoisonNaN(g.Data, 1)
	if CheckFock(g, 1e-8) == nil {
		t.Fatal("poisoned Fock passed validation")
	}
}
