package knl

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNodeSpecs(t *testing.T) {
	for _, n := range []Node{Phi7210(), Phi7230()} {
		if n.Cores != 64 || n.HTPerCore != 4 || n.HWThreads() != 256 {
			t.Fatalf("core counts wrong: %+v", n)
		}
		if n.MCDRAMBytes != 16<<30 || n.DDRBytes != 192<<30 {
			t.Fatalf("memory sizes wrong: %+v", n)
		}
		if n.ClusterModeUsed != Quadrant || n.MemoryModeUsed != CacheMode {
			t.Fatal("default modes should be quad-cache (the paper's choice)")
		}
	}
}

func TestPerCoreThroughputShape(t *testing.T) {
	// The paper: biggest gain at 2 threads/core, diminishing at 3-4.
	if perCoreThroughput(1) != 1.0 {
		t.Fatal("single thread must normalize to 1")
	}
	gain2 := perCoreThroughput(2) - perCoreThroughput(1)
	gain3 := perCoreThroughput(3) - perCoreThroughput(2)
	gain4 := perCoreThroughput(4) - perCoreThroughput(3)
	if !(gain2 > gain3 && gain3 >= gain4 && gain4 >= 0) {
		t.Fatalf("thread gains not diminishing: %v %v %v", gain2, gain3, gain4)
	}
}

func TestPlacement(t *testing.T) {
	n := Phi7210()
	// Compact packs 4/core.
	p := n.Place(8, Compact)
	if p.CoresUsed != 2 || p.ThreadsPerCore != 4 {
		t.Fatalf("compact 8: %+v", p)
	}
	// Scatter spreads 1/core.
	p = n.Place(8, Scatter)
	if p.CoresUsed != 8 || p.ThreadsPerCore != 1 {
		t.Fatalf("scatter 8: %+v", p)
	}
	// Beyond 64, scatter wraps to 2/core.
	p = n.Place(128, Scatter)
	if p.CoresUsed != 64 || p.ThreadsPerCore != 2 {
		t.Fatalf("scatter 128: %+v", p)
	}
	// Full node: all policies coincide.
	for _, aff := range Affinities {
		p = n.Place(256, aff)
		if p.CoresUsed != 64 || p.ThreadsPerCore != 4 {
			t.Fatalf("%s 256: %+v", aff, p)
		}
	}
	// Over-subscription clamps.
	p = n.Place(1000, Compact)
	if p.CoresUsed != 64 {
		t.Fatalf("oversubscribed: %+v", p)
	}
	if n.Place(0, Compact).CoresUsed != 0 {
		t.Fatal("zero threads should give zero placement")
	}
}

func TestComputeCapacityOrdering(t *testing.T) {
	n := Phi7210()
	// At 64 threads, scatter (64 cores x 1) beats compact (16 cores x 4).
	if n.ComputeCapacity(64, Scatter) <= n.ComputeCapacity(64, Compact) {
		t.Fatal("scatter should beat compact at partial occupancy")
	}
	// Unpinned always loses to balanced.
	if n.ComputeCapacity(64, NoPin) >= n.ComputeCapacity(64, Balanced) {
		t.Fatal("unpinned should lose to balanced")
	}
	// More threads never reduce capacity (same policy).
	f := func(a, b uint8) bool {
		x, y := int(a)+1, int(b)+1
		if x > y {
			x, y = y, x
		}
		return n.ComputeCapacity(x, Balanced) <= n.ComputeCapacity(y, Balanced)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryPenalty(t *testing.T) {
	n := Phi7210() // cache mode
	small := int64(4) << 30
	big := int64(160) << 30
	if p := n.MemoryPenalty(small, 0.4); p > 1.05 {
		t.Fatalf("MCDRAM-resident penalty = %v", p)
	}
	pBig := n.MemoryPenalty(big, 0.4)
	if pBig <= 1.1 {
		t.Fatalf("DDR-spilling penalty = %v, too mild", pBig)
	}
	// Flat-DDR is the worst case.
	ddr := n.WithModes(Quadrant, FlatDDR)
	if ddr.MemoryPenalty(small, 0.4) <= 1.1 {
		t.Fatal("flat-DDR should be slow even for small sets")
	}
	// Flat-MCDRAM is ideal when it fits, degrades when it spills.
	mc := n.WithModes(Quadrant, FlatMCDRAM)
	if mc.MemoryPenalty(small, 0.4) != 1 {
		t.Fatal("flat-MCDRAM should be ideal when the set fits")
	}
	if mc.MemoryPenalty(big, 0.4) <= 1.1 {
		t.Fatal("flat-MCDRAM should degrade when spilling")
	}
	// Penalty grows monotonically with working set in cache mode.
	prev := 0.0
	for gb := int64(1); gb <= 256; gb *= 2 {
		p := n.MemoryPenalty(gb<<30, 0.4)
		if p < prev-1e-12 {
			t.Fatalf("cache-mode penalty not monotone at %d GB", gb)
		}
		prev = p
	}
}

func TestFits(t *testing.T) {
	n := Phi7210()
	if !n.Fits(100<<30) || n.Fits(200<<30) {
		t.Fatal("cache-mode capacity check wrong (DDR only)")
	}
	flat := n.WithModes(Quadrant, FlatMCDRAM)
	if !flat.Fits(200 << 30) {
		t.Fatal("flat mode exposes DDR+MCDRAM = 208 GB")
	}
	if flat.Fits(209 << 30) {
		t.Fatal("flat mode capacity exceeded")
	}
}

func TestClusterPenalties(t *testing.T) {
	quad := Phi7210()
	c, s, y := quad.ClusterPenalties()
	if c != 1 || s != 1 || y != 1 {
		t.Fatal("quadrant must be the baseline")
	}
	a2a := quad.WithModes(AllToAll, CacheMode)
	c2, s2, y2 := a2a.ClusterPenalties()
	if !(c2 > 1 && s2 > 1 && y2 > 1) {
		t.Fatal("all-to-all must penalize every component")
	}
	if s2 <= y2 || s2 <= c2 {
		t.Fatal("all-to-all should hurt shared traffic the most")
	}
	snc := quad.WithModes(SNC4, CacheMode)
	c3, s3, _ := snc.ClusterPenalties()
	if c3 >= c2 || s3 >= s2 {
		t.Fatal("SNC-4 should be milder than all-to-all")
	}
}

func TestWithModesAndString(t *testing.T) {
	n := Phi7230().WithModes(SNC4, FlatDDR)
	if n.ClusterModeUsed != SNC4 || n.MemoryModeUsed != FlatDDR {
		t.Fatal("WithModes did not apply")
	}
	if n.String() == "" {
		t.Fatal("empty String()")
	}
	if math.IsNaN(n.PeakGFlopsPerCore) || n.PeakGFlopsPerCore <= 0 {
		t.Fatal("peak flops unset")
	}
}
