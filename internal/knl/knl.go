// Package knl models the second-generation Intel Xeon Phi (Knights
// Landing) processor for the discrete-event simulator: cores, tiles,
// hyperthreads, the MCDRAM/DDR4 two-level memory, the cluster modes
// (all-to-all, quadrant, SNC-4), the memory modes (cache, flat), and
// thread affinity (KMP_AFFINITY compact/scatter/balanced/none).
//
// This package is a SUBSTITUTION for hardware this reproduction does not
// have (see DESIGN.md): the mode and affinity effects are explicit
// multiplicative models on the compute, shared-memory-traffic, and
// synchronization components of the simulated runtime, with parameters
// chosen to reflect the qualitative behaviour the paper reports
// (Figures 3 and 5) and the well-documented KNL characteristics
// (two hyperthreads per core reach peak issue rate; MCDRAM ~4x DDR4
// bandwidth; all-to-all mode has the worst tag-directory locality).
package knl

import "fmt"

// ClusterMode is the KNL cache-coherence clustering mode.
type ClusterMode string

// Cluster modes benchmarked by the paper (Figure 5).
const (
	AllToAll ClusterMode = "all-to-all"
	Quadrant ClusterMode = "quadrant"
	SNC4     ClusterMode = "snc-4"
)

// MemoryMode is the MCDRAM configuration.
type MemoryMode string

// Memory modes benchmarked by the paper (Figure 5).
const (
	CacheMode  MemoryMode = "cache" // MCDRAM as direct-mapped L3 over DDR4
	FlatDDR    MemoryMode = "flat-ddr4"
	FlatMCDRAM MemoryMode = "flat-mcdram"
)

// Affinity is the thread-pinning policy (KMP_AFFINITY).
type Affinity string

// Affinity types studied in Figure 3.
const (
	Compact  Affinity = "compact"
	Scatter  Affinity = "scatter"
	Balanced Affinity = "balanced"
	NoPin    Affinity = "none"
)

// Node describes one Xeon Phi node.
type Node struct {
	Model             string
	Cores             int     // physical cores (64 for 7210/7230)
	HTPerCore         int     // hardware threads per core (4)
	FreqGHz           float64 // 1.3
	MCDRAMBytes       int64   // 16 GB high-bandwidth memory
	DDRBytes          int64   // 192 GB DDR4
	MCDRAMBwGBs       float64 // ~400 GB/s
	DDRBwGBs          float64 // ~100 GB/s
	ClusterModeUsed   ClusterMode
	MemoryModeUsed    MemoryMode
	PeakGFlopsPerCore float64
}

// Phi7210 returns the JLSE node model (Intel Xeon Phi 7210).
func Phi7210() Node { return phiNode("Xeon Phi 7210") }

// Phi7230 returns the Theta node model (Intel Xeon Phi 7230).
func Phi7230() Node { return phiNode("Xeon Phi 7230") }

func phiNode(model string) Node {
	return Node{
		Model:             model,
		Cores:             64,
		HTPerCore:         4,
		FreqGHz:           1.3,
		MCDRAMBytes:       16 << 30,
		DDRBytes:          192 << 30,
		MCDRAMBwGBs:       400,
		DDRBwGBs:          100,
		ClusterModeUsed:   Quadrant,
		MemoryModeUsed:    CacheMode,
		PeakGFlopsPerCore: 2662.0 / 64, // Table 1: 2,622 GFLOPs per node
	}
}

// HWThreads returns the node's hardware thread count (256).
func (n Node) HWThreads() int { return n.Cores * n.HTPerCore }

// perCoreThroughput returns the relative instruction throughput of one
// core running ht hardware threads, normalized to one thread = 1.0. KNL
// needs two threads per core to saturate both VPUs; the third and fourth
// add little (the paper: "the benefit is highest ... for two threads per
// core; for three and four ... some gain ... at a diminished level").
func perCoreThroughput(ht int) float64 {
	switch {
	case ht <= 0:
		return 0
	case ht == 1:
		return 1.0
	case ht == 2:
		return 1.55
	case ht == 3:
		return 1.65
	default:
		return 1.70
	}
}

// Placement describes how many cores a job's threads occupy and how many
// hardware threads share each occupied core.
type Placement struct {
	CoresUsed      int
	ThreadsPerCore int
}

// Place maps totalThreads hardware threads onto the node under the given
// affinity. Compact fills cores to 4 threads before moving on; scatter
// and balanced spread across all cores first. (For whole-node runs all
// policies coincide.)
func (n Node) Place(totalThreads int, aff Affinity) Placement {
	if totalThreads <= 0 {
		return Placement{}
	}
	if totalThreads > n.HWThreads() {
		totalThreads = n.HWThreads()
	}
	switch aff {
	case Compact:
		cores := (totalThreads + n.HTPerCore - 1) / n.HTPerCore
		return Placement{CoresUsed: cores, ThreadsPerCore: (totalThreads + cores - 1) / cores}
	default: // Scatter, Balanced, NoPin: spread over all cores first
		cores := totalThreads
		if cores > n.Cores {
			cores = n.Cores
		}
		return Placement{CoresUsed: cores, ThreadsPerCore: (totalThreads + cores - 1) / cores}
	}
}

// ComputeCapacity returns the node's effective compute power for
// totalThreads hardware threads under the affinity policy, in units of
// "single-thread cores" (one thread on an otherwise idle core = 1.0).
// Unpinned threads pay a migration/oversubscription penalty.
func (n Node) ComputeCapacity(totalThreads int, aff Affinity) float64 {
	p := n.Place(totalThreads, aff)
	if p.CoresUsed == 0 {
		return 0
	}
	cap := float64(p.CoresUsed) * perCoreThroughput(p.ThreadsPerCore)
	if aff == NoPin {
		cap *= 0.80 // OS migration and cache-refill losses without pinning
	}
	if aff == Balanced {
		cap *= 1.02 // slightly better L2 sharing than plain scatter
	}
	return cap
}

// MemoryPenalty returns a >= 1 multiplier on the compute time reflecting
// where the working set lives. memBoundFrac is the fraction of runtime
// that is memory-bandwidth-bound (the Fock build streams density/Fock
// blocks; the calibrated default lives in the simulator's cost model).
func (n Node) MemoryPenalty(workingSetBytes int64, memBoundFrac float64) float64 {
	bwRatio := n.MCDRAMBwGBs / n.DDRBwGBs // ~4
	slow := 1 + memBoundFrac*(bwRatio-1)  // fully DDR-resident penalty
	switch n.MemoryModeUsed {
	case FlatMCDRAM:
		// numactl --preferred semantics: allocations spill to DDR once
		// MCDRAM is full.
		if workingSetBytes <= n.MCDRAMBytes {
			return 1
		}
		frac := float64(n.MCDRAMBytes) / float64(workingSetBytes)
		return slow - (slow-1)*frac
	case FlatDDR:
		return slow
	default: // CacheMode: MCDRAM is a direct-mapped cache over DDR
		if workingSetBytes <= n.MCDRAMBytes {
			return 1.02 // near-MCDRAM speed; direct-mapped conflicts cost a little
		}
		// Partial caching: effectiveness decays with working set size.
		frac := float64(n.MCDRAMBytes) / float64(workingSetBytes)
		return slow - (slow-1.02)*frac
	}
}

// Fits reports whether a per-node working set is admissible in the
// current memory mode.
func (n Node) Fits(workingSetBytes int64) bool {
	if n.MemoryModeUsed == FlatMCDRAM || n.MemoryModeUsed == FlatDDR {
		// Flat modes expose both levels as allocatable memory.
		return workingSetBytes <= n.DDRBytes+n.MCDRAMBytes
	}
	// Cache mode: MCDRAM is cache, only DDR is allocatable.
	return workingSetBytes <= n.DDRBytes
}

// ClusterPenalties returns multipliers (>= 1) for the three runtime
// components (compute, shared-memory traffic, synchronization) under the
// node's cluster mode. Quadrant is the baseline the paper recommends;
// all-to-all loses tag-directory locality, which hurts shared-data
// algorithms most (Figure 5: the shared-Fock code falls behind MPI-only
// only in all-to-all mode); SNC-4 slightly hurts anything that is not
// NUMA-aware (the GAMESS codes are not).
func (n Node) ClusterPenalties() (compute, shared, sync float64) {
	switch n.ClusterModeUsed {
	case AllToAll:
		return 1.08, 3.20, 2.00
	case SNC4:
		return 1.02, 1.12, 1.08
	default: // Quadrant
		return 1.0, 1.0, 1.0
	}
}

// WithModes returns a copy of the node in the given cluster/memory mode.
func (n Node) WithModes(cm ClusterMode, mm MemoryMode) Node {
	n.ClusterModeUsed = cm
	n.MemoryModeUsed = mm
	return n
}

// String describes the node configuration.
func (n Node) String() string {
	return fmt.Sprintf("%s (%d cores, %s/%s)", n.Model, n.Cores, n.ClusterModeUsed, n.MemoryModeUsed)
}

// ClusterModes lists the modes swept by Figure 5.
var ClusterModes = []ClusterMode{AllToAll, Quadrant, SNC4}

// MemoryModes lists the memory modes swept by Figure 5.
var MemoryModes = []MemoryMode{CacheMode, FlatDDR, FlatMCDRAM}

// Affinities lists the policies swept by Figure 3.
var Affinities = []Affinity{Compact, Scatter, Balanced, NoPin}
