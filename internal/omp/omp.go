// Package omp provides an OpenMP-like threading runtime: fork-join
// parallel regions executed by a fixed team of goroutines, work-shared
// loops with static, dynamic, and guided schedules (including the
// collapse(2) dynamic schedule of the paper's Algorithm 2), master/single
// sections, barriers, critical sections, and the chunked tree reduction
// used to flush per-thread Fock buffers (paper Figure 1).
//
// Semantics mirror the OpenMP constructs the paper's pragmas use: every
// thread of a region must reach the same work-sharing constructs in the
// same order (SPMD), For has an implicit end barrier unless the NoWait
// variant is used, and Master has no implied barrier.
package omp

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ScheduleKind selects a loop schedule.
type ScheduleKind int

// Loop schedules. Static hands each thread contiguous chunks round-robin;
// Dynamic lets threads grab chunks from a shared counter (the paper's
// schedule(dynamic,1)); Guided shrinks chunk sizes as work drains.
const (
	Static ScheduleKind = iota
	Dynamic
	Guided
)

func (k ScheduleKind) String() string {
	switch k {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return fmt.Sprintf("ScheduleKind(%d)", int(k))
	}
}

// Schedule is a loop schedule with a chunk size (0 means the schedule's
// natural default).
type Schedule struct {
	Kind  ScheduleKind
	Chunk int
}

// Team executes parallel regions with a fixed number of threads.
type Team struct {
	n int
}

// NewTeam returns a team of n threads (n >= 1).
func NewTeam(n int) *Team {
	if n < 1 {
		panic("omp: team needs at least one thread")
	}
	return &Team{n: n}
}

// NumThreads returns the team width.
func (t *Team) NumThreads() int { return t.n }

// region is the shared state of one parallel region.
type region struct {
	n        int
	barrier  *barrier
	mu       sync.Mutex
	loops    map[int]*loopDesc
	singles  map[int]*int32
	critical sync.Map // name -> *sync.Mutex
}

type loopDesc struct {
	next     atomic.Int64
	total    int
	chunk    int
	finished atomic.Int64
}

// barrier is a reusable counting barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	size  int
	count int
	gen   int
}

func newBarrier(n int) *barrier {
	b := &barrier{size: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
}

// Context is a thread's view of the enclosing parallel region.
type Context struct {
	id     int
	region *region
	seq    int // per-thread work-sharing construct sequence number
}

// ThreadID returns this thread's id in [0, NumThreads).
func (c *Context) ThreadID() int { return c.id }

// NumThreads returns the region's team width.
func (c *Context) NumThreads() int { return c.region.n }

// Parallel runs body on every team thread and returns when all finish.
// A panic in any thread is re-raised on the caller after the region
// drains (other threads may deadlock on barriers if the panicking thread
// held them; regions are expected to be panic-free in production paths).
func (t *Team) Parallel(body func(tc *Context)) {
	r := &region{
		n:       t.n,
		barrier: newBarrier(t.n),
		loops:   map[int]*loopDesc{},
		singles: map[int]*int32{},
	}
	var wg sync.WaitGroup
	wg.Add(t.n)
	panics := make(chan any, t.n)
	for i := 0; i < t.n; i++ {
		go func(id int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- p
				}
			}()
			body(&Context{id: id, region: r})
		}(i)
	}
	wg.Wait()
	select {
	case p := <-panics:
		panic(p)
	default:
	}
}

// Barrier blocks until every thread of the region reaches it.
func (c *Context) Barrier() { c.region.barrier.await() }

// Master runs f on thread 0 only, with no implied synchronization — the
// caller must pair it with Barrier, exactly as the paper's Algorithms 2-3
// do around the DLB index fetch.
func (c *Context) Master(f func()) {
	if c.id == 0 {
		f()
	}
}

// Single runs f on exactly one thread (whichever arrives first) and then
// barriers the team, like an OpenMP single section.
func (c *Context) Single(f func()) {
	c.seq++
	key := c.seq
	c.region.mu.Lock()
	flag, ok := c.region.singles[key]
	if !ok {
		flag = new(int32)
		c.region.singles[key] = flag
	}
	c.region.mu.Unlock()
	if atomic.CompareAndSwapInt32(flag, 0, 1) {
		f()
	}
	c.Barrier()
}

// Critical runs f under the named region-wide mutex.
func (c *Context) Critical(name string, f func()) {
	muAny, _ := c.region.critical.LoadOrStore(name, &sync.Mutex{})
	mu := muAny.(*sync.Mutex)
	mu.Lock()
	defer mu.Unlock()
	f()
}

// For work-shares iterations [0, n) across the team with the given
// schedule and barriers at the end (like `omp do`). All threads must call
// it with identical arguments.
func (c *Context) For(n int, sched Schedule, body func(i int)) {
	c.forLoop(n, sched, body)
	c.Barrier()
}

// ForNoWait is For without the trailing barrier (`omp do nowait`).
func (c *Context) ForNoWait(n int, sched Schedule, body func(i int)) {
	c.forLoop(n, sched, body)
}

func (c *Context) forLoop(n int, sched Schedule, body func(i int)) {
	if n <= 0 {
		c.seq++
		return
	}
	switch sched.Kind {
	case Static:
		chunk := sched.Chunk
		if chunk <= 0 {
			// Default static: one contiguous block per thread.
			chunk = (n + c.region.n - 1) / c.region.n
		}
		for start := c.id * chunk; start < n; start += c.region.n * chunk {
			end := start + chunk
			if end > n {
				end = n
			}
			for i := start; i < end; i++ {
				body(i)
			}
		}
		c.seq++
	case Dynamic, Guided:
		c.seq++
		desc := c.loopDescriptor(c.seq, n, sched)
		minChunk := sched.Chunk
		if minChunk <= 0 {
			minChunk = 1
		}
		for {
			var lo, hi int
			if sched.Kind == Dynamic {
				lo = int(desc.next.Add(int64(minChunk))) - minChunk
				hi = lo + minChunk
			} else {
				// Guided: take max(remaining/(2T), minChunk).
				for {
					cur := desc.next.Load()
					remaining := int64(n) - cur
					if remaining <= 0 {
						lo, hi = n, n
						break
					}
					take := remaining / int64(2*c.region.n)
					if take < int64(minChunk) {
						take = int64(minChunk)
					}
					if desc.next.CompareAndSwap(cur, cur+take) {
						lo, hi = int(cur), int(cur+take)
						break
					}
				}
			}
			if lo >= n {
				break
			}
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				body(i)
			}
		}
	default:
		panic(fmt.Sprintf("omp: unknown schedule %v", sched.Kind))
	}
}

// loopDescriptor finds or creates the shared descriptor for work-sharing
// construct number key.
func (c *Context) loopDescriptor(key, n int, sched Schedule) *loopDesc {
	r := c.region
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.loops[key]
	if !ok {
		d = &loopDesc{total: n, chunk: sched.Chunk}
		r.loops[key] = d
	}
	return d
}

// StaticRange partitions [0, n) into NumThreads contiguous blocks and
// returns this thread's [lo, hi). Used by the chunked buffer flushes.
func (c *Context) StaticRange(n int) (lo, hi int) {
	per := (n + c.region.n - 1) / c.region.n
	lo = c.id * per
	hi = lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// Collapse2 flattens a rectangular (n1 x n2) iteration space and
// work-shares it with the given schedule, calling body(i1, i2). This is
// the paper's `collapse(2) schedule(dynamic,1)` over the (j, k) loops.
func (c *Context) Collapse2(n1, n2 int, sched Schedule, body func(i1, i2 int)) {
	c.For(n1*n2, sched, func(flat int) {
		body(flat/n2, flat%n2)
	})
}

// ReduceChunked sums the per-thread buffers into target using the paper's
// Figure 1(B) pattern: the rows of the buffer matrix are partitioned among
// threads in chunks (avoiding false sharing), each thread accumulating all
// thread-columns for its rows. Buffers are zeroed afterwards, ready for
// the next accumulation cycle. No internal barrier: callers place
// barriers per Algorithm 3.
func (c *Context) ReduceChunked(target []float64, buffers [][]float64) {
	lo, hi := c.StaticRange(len(target))
	for _, buf := range buffers {
		for i := lo; i < hi; i++ {
			target[i] += buf[i]
			buf[i] = 0
		}
	}
}

// Sections runs each function on some thread of the team, work-shared
// (like `omp sections`), with an implicit barrier at the end. Extra
// threads idle; extra sections queue.
func (c *Context) Sections(funcs ...func()) {
	c.For(len(funcs), Schedule{Kind: Dynamic, Chunk: 1}, func(i int) {
		funcs[i]()
	})
}

// Atomic serializes a tiny read-modify-write against a region-wide lock
// (like `omp atomic` on a non-hardware-atomic update). For hot paths
// prefer per-thread accumulators and ReduceChunked.
func (c *Context) Atomic(f func()) {
	c.Critical("omp.atomic", f)
}
