package omp

import (
	"sync/atomic"
	"testing"
)

func TestNewTeamValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0 threads")
		}
	}()
	NewTeam(0)
}

func TestParallelRunsAllThreads(t *testing.T) {
	team := NewTeam(7)
	var ran [7]atomic.Bool
	team.Parallel(func(tc *Context) {
		if tc.NumThreads() != 7 {
			t.Errorf("NumThreads = %d", tc.NumThreads())
		}
		ran[tc.ThreadID()].Store(true)
	})
	for i := range ran {
		if !ran[i].Load() {
			t.Fatalf("thread %d never ran", i)
		}
	}
}

func TestBarrier(t *testing.T) {
	team := NewTeam(6)
	var before atomic.Int64
	team.Parallel(func(tc *Context) {
		before.Add(1)
		tc.Barrier()
		if before.Load() != 6 {
			t.Errorf("barrier released early: %d", before.Load())
		}
		tc.Barrier()
	})
}

func TestMasterOnlyThreadZero(t *testing.T) {
	team := NewTeam(5)
	var who atomic.Int64
	who.Store(-1)
	team.Parallel(func(tc *Context) {
		tc.Master(func() { who.Store(int64(tc.ThreadID())) })
		tc.Barrier()
	})
	if who.Load() != 0 {
		t.Fatalf("master ran on thread %d", who.Load())
	}
}

func TestSingleRunsExactlyOnce(t *testing.T) {
	team := NewTeam(8)
	var count atomic.Int64
	team.Parallel(func(tc *Context) {
		for rep := 0; rep < 5; rep++ {
			tc.Single(func() { count.Add(1) })
		}
	})
	if count.Load() != 5 {
		t.Fatalf("single ran %d times, want 5", count.Load())
	}
}

func TestCriticalMutualExclusion(t *testing.T) {
	team := NewTeam(8)
	counter := 0 // deliberately unprotected; Critical must serialize
	team.Parallel(func(tc *Context) {
		for i := 0; i < 200; i++ {
			tc.Critical("ctr", func() { counter++ })
		}
	})
	if counter != 8*200 {
		t.Fatalf("counter = %d want %d", counter, 8*200)
	}
}

func TestCriticalDistinctNamesIndependent(t *testing.T) {
	team := NewTeam(4)
	var a, b int
	team.Parallel(func(tc *Context) {
		tc.Critical("a", func() { a++ })
		tc.Critical("b", func() { b++ })
	})
	if a != 4 || b != 4 {
		t.Fatalf("a=%d b=%d", a, b)
	}
}

func coverageCheck(t *testing.T, n int, counts []atomic.Int64) {
	t.Helper()
	for i := 0; i < n; i++ {
		if counts[i].Load() != 1 {
			t.Fatalf("iteration %d executed %d times", i, counts[i].Load())
		}
	}
}

func TestForSchedulesCoverEachIterationOnce(t *testing.T) {
	for _, sched := range []Schedule{
		{Kind: Static}, {Kind: Static, Chunk: 3},
		{Kind: Dynamic}, {Kind: Dynamic, Chunk: 4},
		{Kind: Guided}, {Kind: Guided, Chunk: 2},
	} {
		for _, n := range []int{0, 1, 7, 64, 1001} {
			counts := make([]atomic.Int64, n)
			team := NewTeam(6)
			team.Parallel(func(tc *Context) {
				tc.For(n, sched, func(i int) { counts[i].Add(1) })
			})
			coverageCheck(t, n, counts)
		}
	}
}

func TestForImplicitBarrier(t *testing.T) {
	team := NewTeam(4)
	var done atomic.Int64
	team.Parallel(func(tc *Context) {
		tc.For(100, Schedule{Kind: Dynamic}, func(i int) {
			done.Add(1)
		})
		if done.Load() != 100 {
			t.Errorf("For returned before all iterations: %d", done.Load())
		}
	})
}

func TestForRepeatedLoopsNoCrossTalk(t *testing.T) {
	team := NewTeam(5)
	const loops = 30
	counts := make([][]atomic.Int64, loops)
	for l := range counts {
		counts[l] = make([]atomic.Int64, 50)
	}
	team.Parallel(func(tc *Context) {
		for l := 0; l < loops; l++ {
			tc.For(50, Schedule{Kind: Dynamic, Chunk: 1}, func(i int) {
				counts[l][i].Add(1)
			})
		}
	})
	for l := 0; l < loops; l++ {
		coverageCheck(t, 50, counts[l])
	}
}

func TestCollapse2(t *testing.T) {
	team := NewTeam(4)
	n1, n2 := 9, 13
	counts := make([]atomic.Int64, n1*n2)
	team.Parallel(func(tc *Context) {
		tc.Collapse2(n1, n2, Schedule{Kind: Dynamic, Chunk: 1}, func(i1, i2 int) {
			if i1 < 0 || i1 >= n1 || i2 < 0 || i2 >= n2 {
				t.Errorf("out of range: %d %d", i1, i2)
			}
			counts[i1*n2+i2].Add(1)
		})
	})
	coverageCheck(t, n1*n2, counts)
}

func TestStaticRangePartition(t *testing.T) {
	team := NewTeam(3)
	n := 10
	covered := make([]atomic.Int64, n)
	team.Parallel(func(tc *Context) {
		lo, hi := tc.StaticRange(n)
		for i := lo; i < hi; i++ {
			covered[i].Add(1)
		}
	})
	coverageCheck(t, n, covered)
}

func TestStaticRangeSmallN(t *testing.T) {
	team := NewTeam(8)
	covered := make([]atomic.Int64, 3)
	team.Parallel(func(tc *Context) {
		lo, hi := tc.StaticRange(3)
		for i := lo; i < hi; i++ {
			covered[i].Add(1)
		}
	})
	coverageCheck(t, 3, covered)
}

func TestReduceChunked(t *testing.T) {
	team := NewTeam(4)
	n := 57
	target := make([]float64, n)
	buffers := make([][]float64, 4)
	for t2 := range buffers {
		buffers[t2] = make([]float64, n)
		for i := range buffers[t2] {
			buffers[t2][i] = float64(t2 + 1)
		}
	}
	team.Parallel(func(tc *Context) {
		tc.ReduceChunked(target, buffers)
	})
	for i, v := range target {
		if v != 10 { // 1+2+3+4
			t.Fatalf("target[%d] = %v", i, v)
		}
	}
	for t2 := range buffers {
		for i, v := range buffers[t2] {
			if v != 0 {
				t.Fatalf("buffer %d[%d] not zeroed: %v", t2, i, v)
			}
		}
	}
}

func TestParallelPanicPropagates(t *testing.T) {
	team := NewTeam(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	team.Parallel(func(tc *Context) {
		if tc.ThreadID() == 1 {
			panic("boom")
		}
	})
}

func TestScheduleString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Guided.String() != "guided" {
		t.Fatal("schedule names wrong")
	}
}

func TestDynamicLoadBalanceSkew(t *testing.T) {
	// With dynamic,1 and a skewed workload a 2-thread team must finish
	// iterations without any thread claiming two copies of the same index;
	// also serves as a smoke test that heavy first iterations don't stall
	// the schedule.
	team := NewTeam(2)
	var total atomic.Int64
	team.Parallel(func(tc *Context) {
		tc.For(40, Schedule{Kind: Dynamic, Chunk: 1}, func(i int) {
			w := 1
			if i == 0 {
				w = 1000
			}
			s := 0
			for k := 0; k < w*100; k++ {
				s += k
			}
			total.Add(int64(1 + s*0))
		})
	})
	if total.Load() != 40 {
		t.Fatalf("total = %d", total.Load())
	}
}

func TestSections(t *testing.T) {
	team := NewTeam(3)
	var ran [5]atomic.Bool
	team.Parallel(func(tc *Context) {
		tc.Sections(
			func() { ran[0].Store(true) },
			func() { ran[1].Store(true) },
			func() { ran[2].Store(true) },
			func() { ran[3].Store(true) },
			func() { ran[4].Store(true) },
		)
		// Implicit barrier: all sections done before any thread proceeds.
		for i := range ran {
			if !ran[i].Load() {
				t.Errorf("section %d not finished at barrier", i)
			}
		}
	})
}

func TestAtomic(t *testing.T) {
	team := NewTeam(6)
	sum := 0
	team.Parallel(func(tc *Context) {
		for i := 0; i < 100; i++ {
			tc.Atomic(func() { sum++ })
		}
	})
	if sum != 600 {
		t.Fatalf("sum = %d", sum)
	}
}
