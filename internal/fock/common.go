// Package fock implements the paper's core contribution: construction of
// the two-electron Fock matrix from ERIs under Cauchy-Schwarz screening,
// in four variants sharing one quartet-distribution kernel:
//
//   - Serial reference
//   - Algorithm 1: MPI-only (stock GAMESS) — everything replicated per rank
//   - Algorithm 2: hybrid, shared density / thread-private Fock
//   - Algorithm 3: hybrid, shared density / shared Fock with per-thread
//     FI/FJ column buffers and chunked flush reductions
//
// All variants accumulate contributions into the LOWER triangle only
// (each symmetry-unique contribution is written exactly once at its
// canonical (max, min) location, mirroring GAMESS's triangular storage);
// Finalize unfolds the triangle into the symmetric dense matrix.
package fock

import (
	"math"
	"time"

	"repro/internal/basis"
	"repro/internal/integrals"
	"repro/internal/linalg"
	"repro/internal/omp"
)

// DefaultTau is the Schwarz screening threshold used by the paper-scale
// workloads (GAMESS's default integral cutoff is 1e-9; a tighter value
// keeps the small-molecule validation exact).
const DefaultTau = 1e-10

// Config controls a parallel Fock build.
type Config struct {
	// Tau is the Schwarz screening threshold; 0 means DefaultTau.
	Tau float64
	// Threads is the OpenMP team width per MPI rank (hybrid builds);
	// 0 means 1.
	Threads int
	// Schedule is the inner OpenMP loop schedule; the zero value means the
	// paper's schedule(dynamic,1).
	Schedule omp.Schedule
	// Quartets optionally overrides the ERI source (e.g. an
	// integrals.PairCache with precomputed shell-pair data); nil means
	// direct evaluation through the engine.
	Quartets integrals.QuartetSource

	// Straggler mitigation (resilient build only). Hedging is ON by
	// default: when the straggler detector flags a rank, its outstanding
	// leases are speculatively recomputed by fast ranks during the drain,
	// first writer wins. NoHedge disables it.
	NoHedge bool
	// HedgeK is the straggler threshold multiple over the median task
	// latency; 0 means 2.
	HedgeK float64
	// HedgeMinSamples is the minimum task count per rank before it can be
	// flagged (or contribute to the median); 0 means 3.
	HedgeMinSamples int
	// LeaseTTL, when positive, lets drain-phase ranks forcibly reclaim
	// leases older than this — deadline-based early expiry for peers that
	// are unresponsive but not provably dead. 0 disables expiry.
	LeaseTTL time.Duration
}

func (c Config) tau() float64 {
	if c.Tau == 0 {
		return DefaultTau
	}
	return c.Tau
}

func (c Config) threads() int {
	if c.Threads <= 0 {
		return 1
	}
	return c.Threads
}

func (c Config) source(eng *integrals.Engine) integrals.QuartetSource {
	if c.Quartets != nil {
		return c.Quartets
	}
	return eng
}

func (c Config) hedgeK() float64 {
	if c.HedgeK <= 0 {
		return 2
	}
	return c.HedgeK
}

func (c Config) hedgeMinSamples() int64 {
	if c.HedgeMinSamples <= 0 {
		return 3
	}
	return int64(c.HedgeMinSamples)
}

func (c Config) schedule() omp.Schedule {
	if c.Schedule == (omp.Schedule{}) {
		return omp.Schedule{Kind: omp.Dynamic, Chunk: 1}
	}
	return c.Schedule
}

// Stats counts what a build did; the discrete-event simulator is
// calibrated against these counters.
type Stats struct {
	QuartetsComputed int64 // shell quartets whose ERIs were evaluated
	QuartetsScreened int64 // shell quartets skipped by Schwarz screening
	PairsSkipped     int64 // whole ij iterations skipped by prescreening
	DLBGrabs         int64 // dynamic load balancer fetches
	Flushes          int64 // FI/FJ buffer flushes (shared-Fock only)
	TasksReissued    int64 // DLB leases stolen from failed ranks (resilient-fock only)

	// Speculative re-issue accounting (resilient-fock only). Under
	// hedging a quartet may be COMPUTED more than once (straggler + one
	// or more hedgers), but exactly one copy wins the commit race, so
	// QuartetsCommitted — not QuartetsComputed — is the exactly-once
	// quantity summing to the serial count across ranks.
	QuartetsCommitted int64 // quartets whose contribution won the commit and was pushed
	TasksHedged       int64 // leases speculatively recomputed off flagged stragglers
	TasksDeduped      int64 // computed task results dropped after losing the commit race
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.QuartetsComputed += other.QuartetsComputed
	s.QuartetsScreened += other.QuartetsScreened
	s.PairsSkipped += other.PairsSkipped
	s.DLBGrabs += other.DLBGrabs
	s.Flushes += other.Flushes
	s.TasksReissued += other.TasksReissued
	s.QuartetsCommitted += other.QuartetsCommitted
	s.TasksHedged += other.TasksHedged
	s.TasksDeduped += other.TasksDeduped
}

// PairIndex maps i >= j to the canonical combined pair index, the "ij"
// of Algorithms 1 and 3.
func PairIndex(i, j int) int { return i*(i+1)/2 + j }

// PairDecode inverts PairIndex.
func PairDecode(ij int) (i, j int) {
	i = int((math.Sqrt(float64(8*ij+1)) - 1) / 2)
	// Guard against floating point at block boundaries.
	for PairIndex(i+1, 0) <= ij {
		i++
	}
	for PairIndex(i, 0) > ij {
		i--
	}
	return i, ij - PairIndex(i, 0)
}

// NumPairs returns the number of canonical shell pairs for n shells.
func NumPairs(n int) int { return n * (n + 1) / 2 }

// Update roles: which of the paper's six Fock updates (eqs. 2a-2f) a
// contribution implements. The shared-Fock algorithm routes by role.
const (
	roleAB = iota // F_ij += (ij|kl) D_kl
	roleCD        // F_kl += (ij|kl) D_ij
	roleAC        // F_ik -= (ij|kl) D_jl / 2 (exchange)
	roleBD        // F_jl -= ...
	roleAD        // F_il -= ...
	roleBC        // F_jk -= ...
)

// applyQuartet distributes one symmetry-unique shell quartet's ERI block
// into Fock contributions, ignoring roles; used by the replicated-Fock
// variants. update must add v at the unordered index pair {x, y}.
func applyQuartet(d *linalg.Matrix, blk []float64, shells []basis.Shell,
	i, j, k, l int, update func(x, y int, v float64)) {
	applyQuartet6(d, blk, shells, i, j, k, l,
		func(_ int, x, y int, v float64) { update(x, y, v) })
}

// applyQuartet6 distributes one symmetry-unique shell quartet's ERI block
// into Fock contributions. blk is the (i j | k l) block from
// Engine.ShellQuartet. For every canonical basis-function quartet it emits
// the paper's six updates (eqs. 2a-2f) through update(role, x, y, v),
// where v already includes the density factor and symmetry weight.
// For roles AB/AC/AD, x is the basis function in shell i; for roles
// BD/BC, x is the basis function in shell j; for role CD, x is in shell k
// and x >= y always holds. For the other roles y may exceed x when shells
// coincide across the bra/ket boundary; sinks must canonicalize.
func applyQuartet6(d *linalg.Matrix, blk []float64, shells []basis.Shell,
	i, j, k, l int, update func(role, x, y int, v float64)) {
	si, sj, sk, sl := &shells[i], &shells[j], &shells[k], &shells[l]
	ni, nj := si.NumFuncs(), sj.NumFuncs()
	nk, nl := sk.NumFuncs(), sl.NumFuncs()
	oi, oj, ok, ol := si.BFOffset, sj.BFOffset, sk.BFOffset, sl.BFOffset
	idx := 0
	for fa := 0; fa < ni; fa++ {
		a := oi + fa
		for fb := 0; fb < nj; fb++ {
			b := oj + fb
			for fc := 0; fc < nk; fc++ {
				c := ok + fc
				for fd := 0; fd < nl; fd++ {
					dd := ol + fd
					val := blk[idx]
					idx++
					// Deduplicate only the symmetry images that fall INSIDE
					// this block, i.e. when shells coincide. (A global
					// canonical-BF filter would drop quartets whose BF pair
					// ordering disagrees with the shell pair ordering, e.g.
					// (aa|ca) blocks with c > a on shared centers.)
					if i == j && b > a {
						continue
					}
					if k == l && dd > c {
						continue
					}
					pab, pcd := PairIndex(a, b), PairIndex(c, dd)
					if i == k && j == l && pcd > pab {
						continue
					}
					if val == 0 {
						continue
					}
					s := 1.0
					if a == b {
						s *= 0.5
					}
					if c == dd {
						s *= 0.5
					}
					if pab == pcd {
						s *= 0.5
					}
					// With s = 1/|stabilizer|, summing the true
					// contributions of all eight symmetry images of the
					// quartet gives, per target SLOT: Coulomb 2 s I D and
					// exchange -s I D / 2 for off-diagonal slots; a
					// diagonal slot (x == y) absorbs both mirror images
					// and receives twice that.
					v := s * val
					diag := func(x, y int, w float64) float64 {
						if x == y {
							return 2 * w
						}
						return w
					}
					// Coulomb (eqs. 2a, 2b)
					update(roleAB, a, b, diag(a, b, 2*v*d.At(c, dd)))
					update(roleCD, c, dd, diag(c, dd, 2*v*d.At(a, b)))
					// Exchange (eqs. 2c-2f)
					update(roleAC, a, c, diag(a, c, -0.5*v*d.At(b, dd)))
					update(roleBD, b, dd, diag(b, dd, -0.5*v*d.At(a, c)))
					update(roleAD, a, dd, diag(a, dd, -0.5*v*d.At(b, c)))
					update(roleBC, b, c, diag(b, c, -0.5*v*d.At(a, dd)))
				}
			}
		}
	}
}

// addLower writes v at the canonical lower-triangle location of {x, y}.
func addLower(m *linalg.Matrix, x, y int, v float64) {
	if x < y {
		x, y = y, x
	}
	m.Add(x, y, v)
}

// Finalize unfolds a lower-triangle accumulator into a full symmetric
// matrix, in place.
func Finalize(acc *linalg.Matrix) {
	for r := 0; r < acc.Rows; r++ {
		for c := 0; c < r; c++ {
			acc.Set(c, r, acc.At(r, c))
		}
	}
}

// quartetLoopBounds reports lmax for the canonical quartet enumeration at
// (i, j, k): l runs over [0, lmax]. (Algorithm 1 line 5; the Algorithm 2
// listing transposes the two branches — a typo in the paper — the
// canonical bound is j when k == i, else k.)
func quartetLoopBounds(i, j, k int) int {
	if k == i {
		return j
	}
	return k
}

// FullUpdateCount returns how many basis-function update operations a
// build performs, for documentation and simulator calibration.
func FullUpdateCount(s Stats) int64 { return s.QuartetsComputed * 6 }
