package fock

import (
	"testing"

	"repro/internal/basis"
	"repro/internal/ddi"
	"repro/internal/distmat"
	"repro/internal/integrals"
	"repro/internal/linalg"
	"repro/internal/molecule"
	"repro/internal/mpi"
)

// tiledSetup builds the water/STO-3G engine and a deterministic fake
// density (symmetric, diagonally dominant) shared by the tiled tests.
func tiledSetup(t *testing.T) (*integrals.Engine, *integrals.Schwarz, *linalg.Matrix) {
	t.Helper()
	b, err := basis.Build(molecule.Water(), "sto-3g")
	if err != nil {
		t.Fatalf("basis: %v", err)
	}
	eng := integrals.NewEngine(b)
	sch := integrals.ComputeSchwarz(eng)
	n := b.NumBF
	d := linalg.NewSquare(n)
	for i := 0; i < n; i++ {
		d.Set(i, i, 1+0.1*float64(i))
		for j := 0; j < i; j++ {
			v := 0.01 * float64(i+j)
			d.Set(i, j, v)
			d.Set(j, i, v)
		}
	}
	return eng, sch, d
}

// TestTiledBuildMatchesSerial pins applyQuartetDist to applyQuartet6:
// the distributed build over tiles must reproduce the serial replicated
// Fock to summation-order roundoff, for several rank counts and tile
// edges (including tiles that straddle shell boundaries).
func TestTiledBuildMatchesSerial(t *testing.T) {
	eng, sch, d := tiledSetup(t)
	want, serialStats := SerialBuild(eng, sch, d, DefaultTau)
	n := eng.Basis.NumBF

	for _, tc := range []struct{ ranks, bs int }{{1, 3}, {2, 2}, {4, 3}, {4, 1}} {
		var totalComputed int64
		err := mpi.Run(tc.ranks, func(c *mpi.Comm) {
			dx := ddi.New(c)
			g := distmat.NewGrid(c.Rank(), c.Size())
			dd := distmat.New(g, dx, n, tc.bs)
			df := distmat.New(g, dx, n, tc.bs)
			if err := dd.ScatterDense(d); err != nil {
				t.Fatalf("scatter: %v", err)
			}
			df.Zero()
			reader := distmat.NewTileReader(dd, 6)
			accum := distmat.NewTileAccum(df, 6)
			stats := TiledBuild(dx, eng, sch, reader, accum, Config{})
			distmat.UnfoldLower(df)
			computed := dx.GSumI(stats.QuartetsComputed)
			// Sum cache misses globally: the dynamic balancer may hand one
			// rank nearly all pairs, so per-rank counters can be zero.
			misses := dx.GSumI(reader.Misses)
			got, gerr := df.GatherVerified()
			if gerr != nil {
				t.Fatalf("gather: %v", gerr)
			}
			if c.Rank() == 0 {
				totalComputed = computed
				if diff := got.MaxAbsDiff(want); diff > 1e-11 {
					t.Errorf("ranks=%d bs=%d: tiled Fock differs from serial by %g",
						tc.ranks, tc.bs, diff)
				}
				if misses == 0 {
					t.Errorf("ranks=%d bs=%d: no rank ever fetched a tile", tc.ranks, tc.bs)
				}
			}
		})
		if err != nil {
			t.Fatalf("mpi.Run: %v", err)
		}
		if totalComputed != serialStats.QuartetsComputed {
			t.Errorf("ranks=%d bs=%d: %d quartets computed across ranks, serial computed %d",
				tc.ranks, tc.bs, totalComputed, serialStats.QuartetsComputed)
		}
	}
}

// TestTiledBuildBoundedWorkingSet verifies the memory contract: the
// reader and accumulator never exceed their tile budgets even when those
// budgets are far below the full matrix.
func TestTiledBuildBoundedWorkingSet(t *testing.T) {
	eng, sch, d := tiledSetup(t)
	n := eng.Basis.NumBF
	const capTiles = 4
	err := mpi.Run(2, func(c *mpi.Comm) {
		dx := ddi.New(c)
		g := distmat.NewGrid(c.Rank(), c.Size())
		dd := distmat.New(g, dx, n, 2)
		df := distmat.New(g, dx, n, 2)
		if err := dd.ScatterDense(d); err != nil {
			t.Fatalf("scatter: %v", err)
		}
		df.Zero()
		reader := distmat.NewTileReader(dd, capTiles)
		accum := distmat.NewTileAccum(df, capTiles)
		TiledBuild(dx, eng, sch, reader, accum, Config{})
		distmat.UnfoldLower(df)
		budget := int64(capTiles * 2 * 2 * 8)
		if reader.PeakBytes() > budget {
			t.Errorf("reader peak %d bytes exceeds budget %d", reader.PeakBytes(), budget)
		}
		if accum.PeakBytes() > budget {
			t.Errorf("accumulator peak %d bytes exceeds budget %d", accum.PeakBytes(), budget)
		}
		// Global sum: the dynamic balancer may starve one rank entirely.
		if spills := dx.GSumI(accum.Spills); spills == 0 && dx.Comm.Rank() == 0 {
			t.Errorf("a %d-tile budget over a %d-block matrix should spill", capTiles, df.NB)
		}
	})
	if err != nil {
		t.Fatalf("mpi.Run: %v", err)
	}
}
