package fock

import (
	"fmt"

	"repro/internal/integrals"
	"repro/internal/linalg"
)

// Conventional (in-core) SCF support: GAMESS can either recompute every
// ERI each iteration ("direct SCF", what Algorithms 1-3 do and what makes
// the paper's problem interesting at scale) or evaluate the screened
// symmetry-unique integrals once and replay them every iteration. For the
// small systems this repository executes for real, the in-core mode makes
// multi-iteration SCF much faster; it also documents, by contrast, why
// direct SCF is the only option at 30,240 basis functions (the stored
// tensor would need petabytes).

// storedQuartet is one surviving shell quartet and its block location.
type storedQuartet struct {
	i, j, k, l int32
	offset     int32
}

// ERIStore holds the screened symmetry-unique ERI blocks of a basis.
type ERIStore struct {
	eng      *integrals.Engine
	quartets []storedQuartet
	values   []float64
	// BuildStats records the one-time evaluation cost.
	BuildStats Stats
}

// MaxStoreBytes caps the in-core tensor; BuildStore refuses beyond it.
const MaxStoreBytes = 1 << 31 // 2 GiB

// EstimateStoreBytes predicts the value storage for the screened quartet
// list without computing any integrals.
func EstimateStoreBytes(eng *integrals.Engine, sch *integrals.Schwarz, tau float64) int64 {
	shells := eng.Basis.Shells
	ns := len(shells)
	var total int64
	for i := 0; i < ns; i++ {
		for j := 0; j <= i; j++ {
			for k := 0; k <= i; k++ {
				lmax := quartetLoopBounds(i, j, k)
				for l := 0; l <= lmax; l++ {
					if sch.Screened(i, j, k, l, tau) {
						continue
					}
					total += int64(integrals.QuartetSize(&shells[i], &shells[j], &shells[k], &shells[l])) * 8
				}
			}
		}
	}
	return total
}

// BuildStore evaluates and stores every screened symmetry-unique shell
// quartet block.
func BuildStore(eng *integrals.Engine, sch *integrals.Schwarz, tau float64) (*ERIStore, error) {
	if tau == 0 {
		tau = DefaultTau
	}
	if est := EstimateStoreBytes(eng, sch, tau); est > MaxStoreBytes {
		return nil, fmt.Errorf("fock: in-core store would need %.1f GiB (cap %.1f); use direct SCF",
			float64(est)/(1<<30), float64(MaxStoreBytes)/(1<<30))
	}
	st := &ERIStore{eng: eng}
	shells := eng.Basis.Shells
	ns := len(shells)
	var buf []float64
	for i := 0; i < ns; i++ {
		for j := 0; j <= i; j++ {
			for k := 0; k <= i; k++ {
				lmax := quartetLoopBounds(i, j, k)
				for l := 0; l <= lmax; l++ {
					if sch.Screened(i, j, k, l, tau) {
						st.BuildStats.QuartetsScreened++
						continue
					}
					st.BuildStats.QuartetsComputed++
					buf = eng.ShellQuartet(i, j, k, l, buf)
					st.quartets = append(st.quartets, storedQuartet{
						i: int32(i), j: int32(j), k: int32(k), l: int32(l),
						offset: int32(len(st.values)),
					})
					st.values = append(st.values, buf...)
				}
			}
		}
	}
	return st, nil
}

// NumQuartets returns how many blocks are stored.
func (st *ERIStore) NumQuartets() int { return len(st.quartets) }

// Bytes returns the value storage size.
func (st *ERIStore) Bytes() int64 { return int64(len(st.values)) * 8 }

// BuildFock replays the stored integrals against a density, producing the
// two-electron Fock matrix without recomputing a single ERI.
func (st *ERIStore) BuildFock(d *linalg.Matrix) (*linalg.Matrix, Stats) {
	n := st.eng.Basis.NumBF
	shells := st.eng.Basis.Shells
	acc := linalg.NewSquare(n)
	for _, q := range st.quartets {
		i, j, k, l := int(q.i), int(q.j), int(q.k), int(q.l)
		size := integrals.QuartetSize(&shells[i], &shells[j], &shells[k], &shells[l])
		blk := st.values[q.offset : int(q.offset)+size]
		applyQuartet(d, blk, shells, i, j, k, l,
			func(x, y int, v float64) { addLower(acc, x, y, v) })
	}
	Finalize(acc)
	return acc, Stats{QuartetsComputed: int64(len(st.quartets))}
}
