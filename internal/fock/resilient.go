package fock

import (
	"fmt"
	"time"

	"repro/internal/ddi"
	"repro/internal/integrals"
	"repro/internal/linalg"
	"repro/internal/mpi"
)

// ResilientBuild is the fault-aware Fock construction: Algorithm 1's
// quartet distribution re-based on the lease-granting DLB
// (ddi.LeaseDLB), with the closing gsumf replaced by one-sided
// accumulation into a shared window. A build survives mid-flight rank
// death — survivors re-issue the dead rank's leases and still produce a
// Fock matrix with every symmetry-unique shell quartet counted exactly
// once — because:
//
//   - Each combined (i, j) shell-pair task is claimed through a lease,
//     and a task's contributions are pushed (WinAcc) immediately before
//     its lease is marked done, with no failure point between — so a
//     done-marked task has been pushed exactly once, and an undone task
//     not at all.
//   - No blocking collective or barrier appears anywhere in the build;
//     survivors never touch an operation a dead peer can poison. The
//     only waits are bounded polls on the lease table.
//
// Call from inside mpi.Run on every rank, like the other builders. The
// returned matrix is identical on all surviving ranks.
func ResilientBuild(dx *ddi.Context, eng *integrals.Engine,
	sch *integrals.Schwarz, d *linalg.Matrix, cfg Config) (*linalg.Matrix, Stats) {
	n := eng.Basis.NumBF
	shells := eng.Basis.Shells
	ns := len(shells)
	tau := cfg.tau()
	src := cfg.source(eng)
	var stats Stats
	tel := dx.Comm.Telemetry()
	rank := dx.Comm.Rank()

	lease := dx.NewLeaseDLB(NumPairs(ns))
	win := fmt.Sprintf("fock.resilient.%d", lease.Cycle())
	dx.Comm.WinCreate(win, n*n)

	// batch accumulates the pending (unpushed) tasks' contributions; it
	// is zeroed after every flush so each contribution is pushed once.
	batch := linalg.NewSquare(n)
	var pending []int
	var buf []float64

	computePair := func(ij int) {
		i, j := PairDecode(ij)
		if tel != nil {
			defer tel.Span("fock.task", "pair", rank, 0,
				map[string]any{"i": i, "j": j})()
		}
		for k := 0; k <= i; k++ {
			lmax := quartetLoopBounds(i, j, k)
			for l := 0; l <= lmax; l++ {
				if sch.Screened(i, j, k, l, tau) {
					stats.QuartetsScreened++
					continue
				}
				stats.QuartetsComputed++
				buf = src.ShellQuartet(i, j, k, l, buf)
				applyQuartet(d, buf, shells, i, j, k, l,
					func(x, y int, v float64) { addLower(batch, x, y, v) })
			}
		}
		// SDC hook: one corruption opportunity per completed task, applied
		// to the still-local batch — outside the push-then-mark critical
		// section in flush, so the exactly-once guarantee is untouched. The
		// poison reaches the shared window on the next WinAcc and must be
		// caught by the SCF-side validators after WinGet.
		dx.Comm.InjectSDC(mpi.SiteFock, batch.Data)
		pending = append(pending, ij)
	}

	// flush is the push-then-mark critical section the exactly-once
	// guarantee rests on: accumulate the batch into the shared window,
	// then mark its leases done. Neither step blocks or contains a
	// fault-injection site.
	flush := func() {
		if len(pending) == 0 {
			return
		}
		dx.Comm.WinAcc(win, 0, batch.Data)
		for i := range batch.Data {
			batch.Data[i] = 0
		}
		for _, ij := range pending {
			lease.Complete(ij)
		}
		pending = pending[:0]
		stats.Flushes++
	}

	// flushEvery bounds how much computed work a death can force to be
	// redone (a dying rank's unflushed tasks are recomputed elsewhere).
	const flushEvery = 16

	for {
		ij, ok := lease.Next()
		if !ok {
			break
		}
		stats.DLBGrabs++
		computePair(ij)
		if len(pending) >= flushEvery {
			flush()
		}
	}
	flush()

	// Drain phase: re-issue leases orphaned by failed ranks until every
	// task is done. Progress (a successful steal anywhere) resets the
	// local wait clock; a wedged run still times out via the deadline.
	start := time.Now()
	for !lease.AllComplete() {
		if ij, ok := lease.Steal(); ok {
			stats.TasksReissued++
			stats.DLBGrabs++
			if tel != nil {
				tel.Counter("fock.tasks_reissued").Add(1)
				tel.Instant("recovery.reissue", "task-reissue", rank, 0,
					map[string]any{"ij": ij})
			}
			computePair(ij)
			flush()
			start = time.Now()
			continue
		}
		dx.Comm.CheckDeadline("resilient-fock drain", start)
		time.Sleep(200 * time.Microsecond)
	}

	// All tasks pushed; the window now holds the complete lower-triangle
	// accumulation and is safe to read one-sidedly.
	acc := linalg.NewSquare(n)
	dx.Comm.WinGet(win, 0, acc.Data)
	Finalize(acc)
	return acc, stats
}
