package fock

import (
	"fmt"
	"time"

	"repro/internal/ddi"
	"repro/internal/integrals"
	"repro/internal/linalg"
	"repro/internal/mpi"
)

// ResilientBuild is the fault-aware Fock construction: Algorithm 1's
// quartet distribution re-based on the lease-granting DLB
// (ddi.LeaseDLB), with the closing gsumf replaced by one-sided
// accumulation into a shared window. A build survives mid-flight rank
// death AND mitigates mid-flight rank slowness — survivors re-issue a
// dead rank's leases (Steal), and fast ranks speculatively recompute a
// flagged straggler's outstanding leases (Hedge) or forcibly reclaim
// stale ones (Expired) — and still produce a Fock matrix with every
// symmetry-unique shell quartet counted exactly once, because:
//
//   - Each combined (i, j) shell-pair task is claimed through a lease
//     and committed two-phase: the committer Reserves the lease (a CAS
//     only one contender can win), pushes its contribution (WinAcc),
//     then marks it done. Losers of the Reserve race — the straggler
//     whose task was hedged faster, or the hedger that lost — drop
//     their duplicate results locally, so re-issued work never
//     double-counts (first writer wins).
//   - No blocking collective or barrier appears anywhere in the build;
//     survivors never touch an operation a dead peer can poison. The
//     only waits are bounded polls on the lease table.
//
// Call from inside mpi.Run on every rank, like the other builders. The
// returned matrix is identical on all surviving ranks.
func ResilientBuild(dx *ddi.Context, eng *integrals.Engine,
	sch *integrals.Schwarz, d *linalg.Matrix, cfg Config) (*linalg.Matrix, Stats) {
	n := eng.Basis.NumBF
	shells := eng.Basis.Shells
	ns := len(shells)
	tau := cfg.tau()
	src := cfg.source(eng)
	var stats Stats
	tel := dx.Comm.Telemetry()
	rank := dx.Comm.Rank()

	lease := dx.NewLeaseDLB(NumPairs(ns))
	win := fmt.Sprintf("fock.resilient.%d", lease.Cycle())
	dx.Comm.WinCreate(win, n*n)

	// Contributions are buffered PER TASK so the flush can commit each
	// task independently: under speculation two ranks may hold results
	// for the same ij, and only the Reserve winner's copy may reach the
	// shared window.
	type pendingTask struct {
		ij, owner int // owner = world rank whose lease this result commits
		quartets  int64
		pos       []int // canonical lower-triangle flat positions
		val       []float64
	}
	var pending []pendingTask
	var buf []float64

	computePair := func(ij, owner int) {
		i, j := PairDecode(ij)
		if tel != nil {
			defer tel.Span("fock.task", "pair", rank, 0,
				map[string]any{"i": i, "j": j})()
		}
		task := pendingTask{ij: ij, owner: owner}
		t0 := time.Now()
		for k := 0; k <= i; k++ {
			lmax := quartetLoopBounds(i, j, k)
			for l := 0; l <= lmax; l++ {
				if sch.Screened(i, j, k, l, tau) {
					stats.QuartetsScreened++
					continue
				}
				stats.QuartetsComputed++
				task.quartets++
				buf = src.ShellQuartet(i, j, k, l, buf)
				applyQuartet(d, buf, shells, i, j, k, l,
					func(x, y int, v float64) {
						if x < y {
							x, y = y, x
						}
						task.pos = append(task.pos, x*n+y)
						task.val = append(task.val, v)
					})
			}
		}
		elapsed := time.Since(t0)
		// Chaos hook: a sustained Slowdown scheduled for this rank stalls
		// it here, making it a genuine straggler the detector must catch.
		elapsed += dx.Comm.TaskStall(mpi.SiteFock, elapsed)
		dx.ObserveTaskLatency(elapsed)
		// SDC hook: one corruption opportunity per completed task, applied
		// to the still-local values — outside the Reserve→push→Finish
		// critical section, so the exactly-once guarantee is untouched.
		// The poison reaches the shared window on the next flush and must
		// be caught by the SCF-side validators after WinGet.
		dx.Comm.InjectSDC(mpi.SiteFock, task.val)
		pending = append(pending, task)
	}

	// flush is the commit critical section the exactly-once guarantee
	// rests on: Reserve each pending task (losers drop their duplicate
	// results), push the winners' contributions in one accumulate, then
	// mark the reserved leases done. Nothing in between blocks or
	// contains a fault-injection site.
	batch := linalg.NewSquare(n)
	flush := func() {
		if len(pending) == 0 {
			return
		}
		var reserved []int
		dirty := false
		for _, task := range pending {
			if !lease.Reserve(task.ij, task.owner) {
				stats.TasksDeduped++
				continue
			}
			reserved = append(reserved, task.ij)
			stats.QuartetsCommitted += task.quartets
			for i, p := range task.pos {
				batch.Data[p] += task.val[i]
			}
			dirty = true
		}
		pending = pending[:0]
		if dirty {
			dx.Comm.WinAcc(win, 0, batch.Data)
			for i := range batch.Data {
				batch.Data[i] = 0
			}
		}
		for _, ij := range reserved {
			lease.Finish(ij)
		}
		stats.Flushes++
	}

	// flushEvery bounds how much computed work a death can force to be
	// redone (a dying rank's unflushed tasks are recomputed elsewhere).
	const flushEvery = 16

	for {
		ij, ok := lease.Next()
		if !ok {
			break
		}
		stats.DLBGrabs++
		computePair(ij, rank)
		if len(pending) >= flushEvery {
			flush()
		}
	}
	flush()

	// Drain phase: until every task is done, re-issue work three ways —
	// steal leases orphaned by failed ranks, hedge (speculatively
	// recompute) leases still held by flagged stragglers, and reclaim
	// leases older than the TTL. Progress anywhere resets the local wait
	// clock; a wedged run still times out via the deadline.
	start := time.Now()
	for !lease.AllComplete() {
		if ij, ok := lease.Steal(); ok {
			stats.TasksReissued++
			stats.DLBGrabs++
			if tel != nil {
				tel.Counter("fock.tasks_reissued").Add(1)
				tel.Instant("recovery.reissue", "task-reissue", rank, 0,
					map[string]any{"ij": ij})
			}
			computePair(ij, rank)
			flush()
			start = time.Now()
			continue
		}
		if !cfg.NoHedge {
			if slow := dx.Stragglers(cfg.hedgeK(), cfg.hedgeMinSamples()); len(slow) > 0 {
				if ij, owner, ok := lease.Hedge(slow); ok {
					stats.TasksHedged++
					computePair(ij, owner)
					flush()
					start = time.Now()
					continue
				}
			}
		}
		if ij, ok := lease.Expired(cfg.LeaseTTL); ok {
			stats.TasksReissued++
			computePair(ij, rank)
			flush()
			start = time.Now()
			continue
		}
		dx.Comm.CheckDeadline("resilient-fock drain", start)
		time.Sleep(200 * time.Microsecond)
	}

	// All tasks pushed; the window now holds the complete lower-triangle
	// accumulation and is safe to read one-sidedly.
	acc := linalg.NewSquare(n)
	dx.Comm.WinGet(win, 0, acc.Data)
	Finalize(acc)
	return acc, stats
}
