package fock

import (
	"time"

	"repro/internal/basis"
	"repro/internal/ddi"
	"repro/internal/integrals"
	"repro/internal/linalg"
	"repro/internal/mpi"
	"repro/internal/omp"
)

// SharedFockBuild is the paper's Algorithm 3: shared density AND shared
// Fock matrix. The MPI dynamic load balancer distributes combined ij
// shell-pair indices (a much finer task space than Algorithm 2's i loop,
// which is what wins at scale); OpenMP work-shares the inner combined kl
// pair loop with schedule(dynamic,1). Per-thread column-block buffers FI
// and FJ absorb the i- and j-shell contributions; the kl element updates
// the shared Fock directly, race-free because each kl iteration is owned
// by exactly one thread. FI is flushed only when the i index changes
// (plus once at the end); FJ is flushed after every kl loop; flushes are
// chunked reductions partitioned over the column index, barrier-isolated
// from quartet work (paper Figure 1).
//
// Call from inside mpi.Run on every rank; the returned Fock is complete
// and identical on all ranks.
func SharedFockBuild(dx *ddi.Context, eng *integrals.Engine,
	sch *integrals.Schwarz, d *linalg.Matrix, cfg Config) (*linalg.Matrix, Stats) {
	n := eng.Basis.NumBF
	shells := eng.Basis.Shells
	ns := len(shells)
	npairs := NumPairs(ns)
	tau := cfg.tau()
	nthreads := cfg.threads()
	sched := cfg.schedule()
	maxQ := sch.MaxQ()
	maxSz := eng.Basis.ShellSizeMax()
	src := cfg.source(eng)

	acc := linalg.NewSquare(n) // shared lower-triangle accumulator
	// FI/FJ: one [shell function x NBF] block per thread (Algorithm 3
	// line 3). Separate slices per thread keep them on distinct cache
	// lines (the role of the paper's padding bytes).
	fi := make([][]float64, nthreads)
	fj := make([][]float64, nthreads)
	for t := 0; t < nthreads; t++ {
		fi[t] = make([]float64, maxSz*n)
		fj[t] = make([]float64, maxSz*n)
	}
	threadStats := make([]Stats, nthreads)
	tel := dx.Comm.Telemetry()
	rank := dx.Comm.Rank()

	dx.DLBReset()
	team := omp.NewTeam(nthreads)
	var ijShared int64
	var taskT0 time.Time // set by the master at each draw; master-only access

	// flush adds the per-thread buffers for shell sh into the shared
	// accumulator and zeroes them. Contributions live at slot
	// [local*n + y]; the write target is the canonical lower-triangle
	// element of {shellOffset+local, y}. Work is partitioned over y, which
	// is race-free (see buffer-slot normalization in the update routing).
	// Callers wrap it in barriers.
	flush := func(tc *omp.Context, bufs [][]float64, sh int) {
		s := &shells[sh]
		off, cnt := s.BFOffset, s.NumFuncs()
		lo, hi := tc.StaticRange(n)
		for local := 0; local < cnt; local++ {
			row := off + local
			for y := lo; y < hi; y++ {
				sum := 0.0
				for t := 0; t < nthreads; t++ {
					sum += bufs[t][local*n+y]
					bufs[t][local*n+y] = 0
				}
				if sum == 0 {
					continue
				}
				if row >= y {
					acc.Add(row, y, sum)
				} else {
					acc.Add(y, row, sum)
				}
			}
		}
	}

	team.Parallel(func(tc *omp.Context) {
		me := tc.ThreadID()
		fiBuf, fjBuf := fi[me], fj[me]
		st := &threadStats[me]
		var buf []float64
		iold := -1
		for {
			// The SDC hook fires inside the master section — one corruption
			// opportunity per claimed task, into the shared accumulator —
			// because the team is fenced at the barrier below, so the
			// injected write races nothing.
			tc.Master(func() {
				ijShared = dx.DLBNext()
				st.DLBGrabs++
				taskT0 = time.Now()
				dx.Comm.InjectSDC(mpi.SiteFock, acc.Data)
			})
			tc.Barrier()
			ij := int(ijShared)
			tc.Barrier()
			if ij >= npairs {
				break
			}
			i, j := PairDecode(ij)
			// I and J prescreening (Algorithm 3 line 13): the whole top
			// iteration is skipped when no kl can survive.
			if sch.PairQ(i, j)*maxQ < tau {
				if me == 0 {
					st.PairsSkipped++
				}
				continue
			}
			// Flush FI if i changed since the last processed pair
			// (Algorithm 3 lines 15-18).
			if i != iold && iold >= 0 {
				tc.Barrier()
				flush(tc, fi, iold)
				st.Flushes++
				tc.Barrier()
			}
			si, sj := &shells[i], &shells[j]
			oi, oj := si.BFOffset, sj.BFOffset
			// Inner kl loop, kl = 0..ij (Algorithm 3 lines 19-30).
			// tc.For carries the `omp end do` implicit barrier. Per-thread
			// spans expose intra-team imbalance per ij-task in the trace.
			var endTask func()
			if tel != nil {
				endTask = tel.Span("fock.task", "ij-task", rank, me+1,
					map[string]any{"i": i, "j": j})
			}
			tc.For(ij+1, sched, func(kl int) {
				k, l := PairDecode(kl)
				if sch.Screened(i, j, k, l, tau) {
					st.QuartetsScreened++
					return
				}
				st.QuartetsComputed++
				buf = src.ShellQuartet(i, j, k, l, buf)
				applyQuartetRouted(d, buf, shells, i, j, k, l,
					oi, oj, n, fiBuf, fjBuf, acc)
			})
			if endTask != nil {
				endTask()
			}
			// Flush FJ after every kl loop (Algorithm 3 line 31).
			flush(tc, fj, j)
			st.Flushes++
			// Chaos hook: a sustained Slowdown stalls the master here —
			// the team blocks on the next barrier behind it, so the whole
			// rank slows by the scheduled factor — and every rank's task
			// latency feeds the straggler detector's shared window.
			tc.Master(func() {
				elapsed := time.Since(taskT0)
				elapsed += dx.Comm.TaskStall(mpi.SiteFock, elapsed)
				dx.ObserveTaskLatency(elapsed)
			})
			tc.Barrier()
			iold = i
		}
		// Remainder FI flush (Algorithm 3 line 36). All threads exited the
		// loop together, so iold agrees across the team.
		if iold >= 0 {
			tc.Barrier()
			flush(tc, fi, iold)
			tc.Barrier()
		}
	})

	var stats Stats
	for t := range threadStats {
		stats.Add(threadStats[t])
	}
	// 2e-Fock matrix reduction over MPI ranks (Algorithm 3 line 38).
	dx.GSumF(acc.Data)
	Finalize(acc)
	return acc, stats
}

// applyQuartetRouted distributes one quartet's contributions with the
// shared-Fock routing: updates touching the i shell go to this thread's
// FI buffer, updates touching the j shell go to FJ, and the kl element
// updates the shared accumulator directly (Algorithm 3 lines 25-27).
//
// Buffer slots are [local*n + other]. When both indices of a pair fall in
// the buffer's own shell block, the slot is normalized to
// (maxLocal, minGlobal) so that the flush's partition-by-column is
// race-free.
func applyQuartetRouted(d *linalg.Matrix, blk []float64, shells []basis.Shell,
	i, j, k, l int, oi, oj, n int, fiBuf, fjBuf []float64, acc *linalg.Matrix) {
	toFI := func(a, y int, v float64) {
		if y >= oi && y-oi < shells[i].NumFuncs() && y > a {
			// Both in the i block and out of order: normalize so the
			// flush's partition-by-column stays race-free.
			a, y = y, a
		}
		fiBuf[(a-oi)*n+y] += v
	}
	toFJ := func(b, y int, v float64) {
		if y >= oj && y-oj < shells[j].NumFuncs() && y > b {
			// Both in the j block and out of order: normalize.
			b, y = y, b
		}
		fjBuf[(b-oj)*n+y] += v
	}
	applyQuartet6(d, blk, shells, i, j, k, l,
		func(role int, x, y int, v float64) {
			switch role {
			case roleAB, roleAC, roleAD:
				toFI(x, y, v)
			case roleBD, roleBC:
				toFJ(x, y, v)
			default: // roleCD
				// c >= d within the canonical enumeration.
				acc.Add(x, y, v)
			}
		})
}
