package fock

// Memory accounting for the three SCF implementations, following the
// paper's asymptotic equations (3a)-(3c) plus the explicit buffer terms.
// All quantities are bytes of float64 storage for the large N x N objects
// (density, Fock, overlap, one-electron Fock, MO coefficients) and the
// FI/FJ buffers; small O(N) structures are excluded, as in the paper.

const bytesPerFloat = 8

// Footprint describes the per-node memory demand of one algorithm at one
// job configuration.
type Footprint struct {
	Algorithm    string
	PerRankBytes int64
	RanksPerNode int
	// FixedPerRankBytes models the replicated runtime overhead per MPI
	// process (MPI library, DDI bookkeeping, KMP stacks, small replicated
	// arrays); see DESIGN.md calibration notes.
	FixedPerRankBytes int64
}

// PerNodeBytes is the node-level footprint.
func (f Footprint) PerNodeBytes() int64 {
	return int64(f.RanksPerNode) * (f.PerRankBytes + f.FixedPerRankBytes)
}

// MPIOnlyFootprint returns eq. (3a): M = 5/2 N^2 per rank — the density,
// the 2e-Fock accumulator, the AO overlap, the one-electron Hamiltonian,
// and the MO coefficient matrix, each N^2, stored with GAMESS's packed
// triangular layout where symmetric (5 N^2 / 2 in total).
func MPIOnlyFootprint(nbf, ranksPerNode int, fixedPerRank int64) Footprint {
	n2 := int64(nbf) * int64(nbf) * bytesPerFloat
	return Footprint{
		Algorithm:         "mpi-only",
		PerRankBytes:      n2 * 5 / 2,
		RanksPerNode:      ranksPerNode,
		FixedPerRankBytes: fixedPerRank,
	}
}

// PrivateFockFootprint returns eq. (3b): M = (2 + Nthreads) N^2 per rank —
// the shared (per-rank) read-only matrices cost 2 N^2 and every thread
// adds a private N^2 Fock replica.
func PrivateFockFootprint(nbf, threads, ranksPerNode int, fixedPerRank int64) Footprint {
	n2 := int64(nbf) * int64(nbf) * bytesPerFloat
	return Footprint{
		Algorithm:         "private-fock",
		PerRankBytes:      n2 * int64(2+threads),
		RanksPerNode:      ranksPerNode,
		FixedPerRankBytes: fixedPerRank,
	}
}

// SharedFockFootprint returns eq. (3c): M = 7/2 N^2 per rank — all large
// matrices shared; the extra N^2 relative to the MPI code's 5/2 is the
// full (unpacked) shared Fock plus the FI/FJ buffer block, following the
// paper's accounting. bufBytes adds the explicit per-thread FI/FJ buffers
// (2 * shellSize * N * threads doubles), which the footprint equations
// fold into the 7/2 constant asymptotically.
func SharedFockFootprint(nbf, ranksPerNode int, fixedPerRank int64) Footprint {
	n2 := int64(nbf) * int64(nbf) * bytesPerFloat
	return Footprint{
		Algorithm:         "shared-fock",
		PerRankBytes:      n2 * 7 / 2,
		RanksPerNode:      ranksPerNode,
		FixedPerRankBytes: fixedPerRank,
	}
}

// BufferBytes returns the exact FI+FJ buffer storage of a shared-Fock rank
// (Algorithm 3 line 3): 2 buffers x threads x shellSize x N doubles.
func BufferBytes(nbf, shellSize, threads int) int64 {
	return 2 * int64(threads) * int64(shellSize) * int64(nbf) * bytesPerFloat
}
