package fock

import (
	"repro/internal/integrals"
	"repro/internal/linalg"
)

// SerialBuild constructs the two-electron Fock matrix on one thread using
// the canonical symmetry-unique quartet loops with Schwarz screening. It
// is the correctness reference for all parallel variants and the
// single-core baseline of the benchmarks.
func SerialBuild(eng *integrals.Engine, sch *integrals.Schwarz,
	d *linalg.Matrix, tau float64) (*linalg.Matrix, Stats) {
	n := eng.Basis.NumBF
	shells := eng.Basis.Shells
	ns := len(shells)
	acc := linalg.NewSquare(n)
	var stats Stats
	var buf []float64
	for i := 0; i < ns; i++ {
		for j := 0; j <= i; j++ {
			for k := 0; k <= i; k++ {
				lmax := quartetLoopBounds(i, j, k)
				for l := 0; l <= lmax; l++ {
					if sch.Screened(i, j, k, l, tau) {
						stats.QuartetsScreened++
						continue
					}
					stats.QuartetsComputed++
					buf = eng.ShellQuartet(i, j, k, l, buf)
					applyQuartet(d, buf, shells, i, j, k, l,
						func(x, y int, v float64) { addLower(acc, x, y, v) })
				}
			}
		}
	}
	Finalize(acc)
	return acc, stats
}

// ReferenceFock2e builds the two-electron Fock matrix with no symmetry
// tricks at all: the full ERI tensor contracted directly with the density
// by the textbook formula G_ab = sum_cd D_cd [(ab|cd) - (ac|bd)/2].
// Exponential in memory (N^4) — for validation on small molecules only.
func ReferenceFock2e(eng *integrals.Engine, d *linalg.Matrix) *linalg.Matrix {
	n := eng.Basis.NumBF
	tensor := eng.FullERITensor()
	g := linalg.NewSquare(n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			sum := 0.0
			for c := 0; c < n; c++ {
				for dd := 0; dd < n; dd++ {
					sum += d.At(c, dd) * (tensor[((a*n+b)*n+c)*n+dd] -
						0.5*tensor[((a*n+c)*n+b)*n+dd])
				}
			}
			g.Set(a, b, sum)
		}
	}
	return g
}
