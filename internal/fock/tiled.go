package fock

import (
	"repro/internal/basis"
	"repro/internal/ddi"
	"repro/internal/distmat"
	"repro/internal/integrals"
	"repro/internal/mpi"
)

// TiledBuild is the distributed-data Fock build: Algorithm 1's dynamic
// ij-pair distribution, but with NO replicated matrices. The density is
// read through a bounded TileReader over a distributed D and
// contributions are write-combined into a distributed F through a
// TileAccum; the per-rank working set is O(cache capacity) tiles instead
// of O(N^2), which is what lets systems past the MCDRAM wall run at all.
//
// The caller must Zero the matrix under f before the build and run
// distmat.UnfoldLower on it afterwards (contributions land in the lower
// triangle only, like every builder in this package). The closing
// barrier orders the final accumulator flush of every rank before any
// rank's unfold reads the tiles.
//
// The build distributes over MPI ranks only (no OpenMP team): the
// hybrid threading of Algorithms 2-3 assumes a node-shared density and
// Fock, which is exactly the replication this path removes.
func TiledBuild(dx *ddi.Context, eng *integrals.Engine, sch *integrals.Schwarz,
	d *distmat.TileReader, f *distmat.TileAccum, cfg Config) Stats {
	shells := eng.Basis.Shells
	ns := len(shells)
	tau := cfg.tau()
	src := cfg.source(eng)
	var stats Stats
	tel := dx.Comm.Telemetry()
	rank := dx.Comm.Rank()

	dx.DLBReset()
	next := dx.DLBNext()
	stats.DLBGrabs++
	var buf []float64
	ij := int64(0)
	for i := 0; i < ns; i++ {
		for j := 0; j <= i; j++ {
			// Same SDC hook placement as MPIOnlyBuild: one opportunity per
			// scanned shell pair (no replicated accumulator exists here, so
			// the hook covers the staged tile path through its inputs).
			dx.Comm.InjectSDC(mpi.SiteFock, buf)
			if ij != next {
				ij++
				continue
			}
			ij++
			next = dx.DLBNext()
			stats.DLBGrabs++
			var endTask func()
			if tel != nil {
				endTask = tel.Span("fock.task", "pair", rank, 0,
					map[string]any{"i": i, "j": j})
			}
			for k := 0; k <= i; k++ {
				lmax := quartetLoopBounds(i, j, k)
				for l := 0; l <= lmax; l++ {
					if sch.Screened(i, j, k, l, tau) {
						stats.QuartetsScreened++
						continue
					}
					stats.QuartetsComputed++
					buf = src.ShellQuartet(i, j, k, l, buf)
					applyQuartetDist(d.At, buf, shells, i, j, k, l, f.AddLower)
				}
			}
			if endTask != nil {
				endTask()
			}
		}
	}
	f.Flush()
	dx.Comm.Barrier()
	return stats
}

// applyQuartetDist distributes one symmetry-unique shell quartet's ERI
// block into Fock contributions read through an element accessor instead
// of a replicated density matrix.
//
// KEEP IN SYNC with applyQuartet6 in common.go: the symmetry dedup, the
// 1/|stabilizer| weights, the diagonal doubling and the six update slots
// must match exactly (TestTiledBuildMatchesSerial pins the equivalence).
// It is duplicated rather than parameterized so the replicated builders'
// hot path keeps its direct d.At calls.
func applyQuartetDist(at func(x, y int) float64, blk []float64, shells []basis.Shell,
	i, j, k, l int, add func(x, y int, v float64)) {
	si, sj, sk, sl := &shells[i], &shells[j], &shells[k], &shells[l]
	ni, nj := si.NumFuncs(), sj.NumFuncs()
	nk, nl := sk.NumFuncs(), sl.NumFuncs()
	oi, oj, ok, ol := si.BFOffset, sj.BFOffset, sk.BFOffset, sl.BFOffset
	idx := 0
	for fa := 0; fa < ni; fa++ {
		a := oi + fa
		for fb := 0; fb < nj; fb++ {
			b := oj + fb
			for fc := 0; fc < nk; fc++ {
				c := ok + fc
				for fd := 0; fd < nl; fd++ {
					dd := ol + fd
					val := blk[idx]
					idx++
					if i == j && b > a {
						continue
					}
					if k == l && dd > c {
						continue
					}
					pab, pcd := PairIndex(a, b), PairIndex(c, dd)
					if i == k && j == l && pcd > pab {
						continue
					}
					if val == 0 {
						continue
					}
					s := 1.0
					if a == b {
						s *= 0.5
					}
					if c == dd {
						s *= 0.5
					}
					if pab == pcd {
						s *= 0.5
					}
					v := s * val
					diag := func(x, y int, w float64) float64 {
						if x == y {
							return 2 * w
						}
						return w
					}
					// Coulomb (eqs. 2a, 2b)
					add(a, b, diag(a, b, 2*v*at(c, dd)))
					add(c, dd, diag(c, dd, 2*v*at(a, b)))
					// Exchange (eqs. 2c-2f)
					add(a, c, diag(a, c, -0.5*v*at(b, dd)))
					add(b, dd, diag(b, dd, -0.5*v*at(a, c)))
					add(a, dd, diag(a, dd, -0.5*v*at(b, c)))
					add(b, c, diag(b, c, -0.5*v*at(a, dd)))
				}
			}
		}
	}
}
