package fock

import (
	"repro/internal/ddi"
	"repro/internal/integrals"
	"repro/internal/linalg"
	"repro/internal/mpi"
	"repro/internal/omp"
)

// PrivateFockBuild is the paper's Algorithm 2: the hybrid MPI/OpenMP
// variant with a shared (read-only) density matrix and one private Fock
// accumulator per thread. The MPI dynamic load balancer hands out single
// i shell indices; within a rank, OpenMP work-shares the collapsed (j, k)
// loops with schedule(dynamic,1); the per-thread Fock copies are reduced
// over threads and then over ranks.
//
// Call from inside mpi.Run on every rank. The returned Fock is complete
// and identical on all ranks.
func PrivateFockBuild(dx *ddi.Context, eng *integrals.Engine,
	sch *integrals.Schwarz, d *linalg.Matrix, cfg Config) (*linalg.Matrix, Stats) {
	n := eng.Basis.NumBF
	shells := eng.Basis.Shells
	ns := len(shells)
	tau := cfg.tau()
	nthreads := cfg.threads()
	sched := cfg.schedule()
	src := cfg.source(eng)

	// Thread-private Fock replicas (the algorithm's defining memory cost:
	// (2 + Nthreads) N^2 per rank, eq. 3b).
	priv := make([]*linalg.Matrix, nthreads)
	for t := range priv {
		priv[t] = linalg.NewSquare(n)
	}
	threadStats := make([]Stats, nthreads)
	tel := dx.Comm.Telemetry()
	rank := dx.Comm.Rank()

	dx.DLBReset()
	team := omp.NewTeam(nthreads)
	var iShared int64 // written by master, read by all between barriers
	team.Parallel(func(tc *omp.Context) {
		me := tc.ThreadID()
		acc := priv[me]
		st := &threadStats[me]
		var buf []float64
		for {
			// Master fetches the next i index (Algorithm 2 lines 3-6). The
			// SDC hook fires here — one corruption opportunity per claimed
			// task, into the master thread's private replica — because the
			// whole team is fenced at the barrier below, so no thread races
			// the injected write.
			tc.Master(func() {
				iShared = dx.DLBNext()
				st.DLBGrabs++
				dx.Comm.InjectSDC(mpi.SiteFock, acc.Data)
			})
			tc.Barrier()
			i := int(iShared)
			tc.Barrier()
			if i >= ns {
				break
			}
			// OpenMP over collapsed (j, k), j <= i, k <= i (line 7). Each
			// thread's span covers its share of the collapsed loops, so the
			// trace shows intra-team imbalance per i-task.
			var endTask func()
			if tel != nil {
				endTask = tel.Span("fock.task", "i-task", rank, me+1,
					map[string]any{"i": i})
			}
			tc.Collapse2(i+1, i+1, sched, func(j, k int) {
				lmax := quartetLoopBounds(i, j, k)
				for l := 0; l <= lmax; l++ {
					if sch.Screened(i, j, k, l, tau) {
						st.QuartetsScreened++
						continue
					}
					st.QuartetsComputed++
					buf = src.ShellQuartet(i, j, k, l, buf)
					applyQuartet(d, buf, shells, i, j, k, l,
						func(x, y int, v float64) { addLower(acc, x, y, v) })
				}
			})
			if endTask != nil {
				endTask()
			}
		}
		// reduction(+:Fock) over threads: chunked reduction of the private
		// replicas into thread 0's copy (paper Figure 1(B) access pattern).
		if nthreads > 1 {
			others := make([][]float64, 0, nthreads-1)
			for t := 1; t < nthreads; t++ {
				others = append(others, priv[t].Data)
			}
			tc.ReduceChunked(priv[0].Data, others)
			tc.Barrier()
		}
	})
	total := priv[0]
	var stats Stats
	for t := range threadStats {
		stats.Add(threadStats[t])
	}
	// 2e-Fock matrix reduction over MPI ranks (Algorithm 2 line 23).
	dx.GSumF(total.Data)
	Finalize(total)
	return total, stats
}
