package fock

import (
	"math"

	"repro/internal/integrals"
	"repro/internal/linalg"
)

// Incremental Fock construction (Häser & Ahlrichs): instead of rebuilding
// G(D) from scratch each SCF iteration, build G(dD) for the density
// CHANGE and add it to the previous G. Combined with density-weighted
// screening — skip a quartet when Q_ij Q_kl max|dD| is below threshold —
// the work per iteration shrinks as the SCF converges, because dD -> 0.
// This is a standard direct-SCF refinement orthogonal to the paper's
// parallelization (each incremental build still runs through the same
// quartet loops and could use any of Algorithms 1-3).

// DensityScreenedBuild is SerialBuild with the additional density-weighted
// test |Q_ij Q_kl| * dmax < tau, where dmax bounds the density elements a
// quartet can touch (the max over its six shell-block pairs).
func DensityScreenedBuild(eng *integrals.Engine, sch *integrals.Schwarz,
	d *linalg.Matrix, tau float64) (*linalg.Matrix, Stats) {
	n := eng.Basis.NumBF
	shells := eng.Basis.Shells
	ns := len(shells)
	acc := linalg.NewSquare(n)
	var stats Stats

	dmax := shellPairDmax(eng, d)
	pairMax := func(a, b int) float64 {
		if a < b {
			a, b = b, a
		}
		return dmax[a*(a+1)/2+b]
	}

	var buf []float64
	for i := 0; i < ns; i++ {
		for j := 0; j <= i; j++ {
			for k := 0; k <= i; k++ {
				lmax := quartetLoopBounds(i, j, k)
				for l := 0; l <= lmax; l++ {
					// Largest density element among the six blocks the
					// quartet's updates read.
					dm := math.Max(pairMax(k, l), pairMax(i, j))
					dm = math.Max(dm, math.Max(pairMax(j, l), pairMax(i, k)))
					dm = math.Max(dm, math.Max(pairMax(j, k), pairMax(i, l)))
					if sch.Bound(i, j, k, l)*dm < tau {
						stats.QuartetsScreened++
						continue
					}
					stats.QuartetsComputed++
					buf = eng.ShellQuartet(i, j, k, l, buf)
					applyQuartet(d, buf, shells, i, j, k, l,
						func(x, y int, v float64) { addLower(acc, x, y, v) })
				}
			}
		}
	}
	Finalize(acc)
	return acc, stats
}

// shellPairDmax returns max |D_ab| over each shell block pair (packed
// triangular over shells).
func shellPairDmax(eng *integrals.Engine, d *linalg.Matrix) []float64 {
	shells := eng.Basis.Shells
	ns := len(shells)
	out := make([]float64, ns*(ns+1)/2)
	for i := 0; i < ns; i++ {
		si := &shells[i]
		for j := 0; j <= i; j++ {
			sj := &shells[j]
			m := 0.0
			for a := si.BFOffset; a < si.BFOffset+si.NumFuncs(); a++ {
				for b := sj.BFOffset; b < sj.BFOffset+sj.NumFuncs(); b++ {
					if v := math.Abs(d.At(a, b)); v > m {
						m = v
					}
				}
			}
			out[i*(i+1)/2+j] = m
		}
	}
	return out
}

// IncrementalBuilder wraps the density-screened serial build into an
// SCF-compatible builder that computes G(dD) each iteration and
// accumulates. Reset clears the history (e.g. after a basis change).
type IncrementalBuilder struct {
	eng   *integrals.Engine
	sch   *integrals.Schwarz
	tau   float64
	prevD *linalg.Matrix
	prevG *linalg.Matrix
	// RebuildEvery forces a full (non-incremental) rebuild every k
	// iterations to stop error accumulation; 0 means every 20.
	RebuildEvery int
	iter         int
}

// NewIncrementalBuilder returns an incremental Fock builder.
func NewIncrementalBuilder(eng *integrals.Engine, sch *integrals.Schwarz, tau float64) *IncrementalBuilder {
	if tau == 0 {
		tau = DefaultTau
	}
	return &IncrementalBuilder{eng: eng, sch: sch, tau: tau}
}

// Build computes the two-electron Fock matrix for d.
func (ib *IncrementalBuilder) Build(d *linalg.Matrix) (*linalg.Matrix, Stats) {
	ib.iter++
	rebuild := ib.RebuildEvery
	if rebuild <= 0 {
		rebuild = 20
	}
	if ib.prevD == nil || ib.iter%rebuild == 0 {
		g, stats := DensityScreenedBuild(ib.eng, ib.sch, d, ib.tau)
		ib.prevD = d.Clone()
		ib.prevG = g.Clone()
		return g, stats
	}
	delta := d.Clone()
	delta.AxpyFrom(-1, ib.prevD)
	dg, stats := DensityScreenedBuild(ib.eng, ib.sch, delta, ib.tau)
	g := ib.prevG.Clone()
	g.AxpyFrom(1, dg)
	ib.prevD = d.Clone()
	ib.prevG = g.Clone()
	return g, stats
}

// Reset forgets the accumulated state.
func (ib *IncrementalBuilder) Reset() {
	ib.prevD, ib.prevG, ib.iter = nil, nil, 0
}
