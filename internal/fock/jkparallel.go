package fock

import (
	"repro/internal/basis"
	"repro/internal/ddi"
	"repro/internal/integrals"
	"repro/internal/linalg"
	"repro/internal/omp"
)

// Parallel J/K-split builders: the unrestricted analogues of the paper's
// Algorithms 1-3. One sweep over the symmetry-unique screened quartets
// produces the Coulomb matrix J(dj) and TWO exchange matrices K(dka),
// K(dkb) — exactly what one UHF iteration needs (dj = total density,
// dka/dkb = spin densities). The paper's conclusion claims its
// parallelization carries over to UHF unchanged; these builders make the
// claim concrete: the task spaces, DLB, buffers, and flush protocol are
// identical, only the per-quartet update list grows.

// jkUpdate routes one quartet's updates into J and K sinks. Weights
// follow applyQuartet6 semantics: Coulomb slots receive 2 s I dj
// (diag-doubled) and exchange slots +s I dk (diag-doubled, full K).
func jkUpdate(dj, dka, dkb *linalg.Matrix, blk []float64, shells []basis.Shell,
	i, j, k, l int,
	coulomb func(x, y int, v float64),
	exchangeA func(x, y int, v float64),
	exchangeB func(x, y int, v float64)) {
	applyQuartet6(dj, blk, shells, i, j, k, l, func(role, x, y int, v float64) {
		if role == roleAB || role == roleCD {
			coulomb(x, y, v)
		}
	})
	applyQuartet6(dka, blk, shells, i, j, k, l, func(role, x, y int, v float64) {
		if role != roleAB && role != roleCD {
			exchangeA(x, y, -2*v)
		}
	})
	if dkb != nil {
		applyQuartet6(dkb, blk, shells, i, j, k, l, func(role, x, y int, v float64) {
			if role != roleAB && role != roleCD {
				exchangeB(x, y, -2*v)
			}
		})
	}
}

// JKResult bundles one build's outputs. KB is nil when dkb was nil.
type JKResult struct {
	J, KA, KB *linalg.Matrix
	Stats     Stats
}

// MPIOnlyBuildJK is Algorithm 1 generalized to the J/K split.
func MPIOnlyBuildJK(dx *ddi.Context, eng *integrals.Engine, sch *integrals.Schwarz,
	dj, dka, dkb *linalg.Matrix, cfg Config) JKResult {
	n := eng.Basis.NumBF
	shells := eng.Basis.Shells
	ns := len(shells)
	tau := cfg.tau()
	src := cfg.source(eng)
	jAcc := linalg.NewSquare(n)
	kaAcc := linalg.NewSquare(n)
	var kbAcc *linalg.Matrix
	if dkb != nil {
		kbAcc = linalg.NewSquare(n)
	}
	var stats Stats

	dx.DLBReset()
	next := dx.DLBNext()
	stats.DLBGrabs++
	var buf []float64
	ij := int64(0)
	for i := 0; i < ns; i++ {
		for j := 0; j <= i; j++ {
			if ij != next {
				ij++
				continue
			}
			ij++
			next = dx.DLBNext()
			stats.DLBGrabs++
			for k := 0; k <= i; k++ {
				lmax := quartetLoopBounds(i, j, k)
				for l := 0; l <= lmax; l++ {
					if sch.Screened(i, j, k, l, tau) {
						stats.QuartetsScreened++
						continue
					}
					stats.QuartetsComputed++
					buf = src.ShellQuartet(i, j, k, l, buf)
					jkUpdate(dj, dka, dkb, buf, shells, i, j, k, l,
						func(x, y int, v float64) { addLower(jAcc, x, y, v) },
						func(x, y int, v float64) { addLower(kaAcc, x, y, v) },
						func(x, y int, v float64) { addLower(kbAcc, x, y, v) })
				}
			}
		}
	}
	dx.GSumF(jAcc.Data)
	dx.GSumF(kaAcc.Data)
	Finalize(jAcc)
	Finalize(kaAcc)
	if kbAcc != nil {
		dx.GSumF(kbAcc.Data)
		Finalize(kbAcc)
	}
	return JKResult{J: jAcc, KA: kaAcc, KB: kbAcc, Stats: stats}
}

// PrivateFockBuildJK is Algorithm 2 generalized to the J/K split: each
// thread keeps private J/K accumulators, reduced over threads then ranks.
func PrivateFockBuildJK(dx *ddi.Context, eng *integrals.Engine, sch *integrals.Schwarz,
	dj, dka, dkb *linalg.Matrix, cfg Config) JKResult {
	n := eng.Basis.NumBF
	shells := eng.Basis.Shells
	ns := len(shells)
	tau := cfg.tau()
	nthreads := cfg.threads()
	sched := cfg.schedule()

	src := cfg.source(eng)
	nmats := 2
	if dkb != nil {
		nmats = 3
	}
	priv := make([][]*linalg.Matrix, nthreads) // [thread][J,KA,KB]
	for t := range priv {
		priv[t] = make([]*linalg.Matrix, nmats)
		for m := range priv[t] {
			priv[t][m] = linalg.NewSquare(n)
		}
	}
	threadStats := make([]Stats, nthreads)

	dx.DLBReset()
	team := omp.NewTeam(nthreads)
	var iShared int64
	team.Parallel(func(tc *omp.Context) {
		me := tc.ThreadID()
		st := &threadStats[me]
		jAcc, kaAcc := priv[me][0], priv[me][1]
		var kbAcc *linalg.Matrix
		if nmats == 3 {
			kbAcc = priv[me][2]
		}
		var buf []float64
		for {
			tc.Master(func() {
				iShared = dx.DLBNext()
				st.DLBGrabs++
			})
			tc.Barrier()
			i := int(iShared)
			tc.Barrier()
			if i >= ns {
				break
			}
			tc.Collapse2(i+1, i+1, sched, func(j, k int) {
				lmax := quartetLoopBounds(i, j, k)
				for l := 0; l <= lmax; l++ {
					if sch.Screened(i, j, k, l, tau) {
						st.QuartetsScreened++
						continue
					}
					st.QuartetsComputed++
					buf = src.ShellQuartet(i, j, k, l, buf)
					jkUpdate(dj, dka, dkb, buf, shells, i, j, k, l,
						func(x, y int, v float64) { addLower(jAcc, x, y, v) },
						func(x, y int, v float64) { addLower(kaAcc, x, y, v) },
						func(x, y int, v float64) { addLower(kbAcc, x, y, v) })
				}
			})
		}
		// Reduce thread replicas into thread 0's copies.
		if nthreads > 1 {
			for m := 0; m < nmats; m++ {
				others := make([][]float64, 0, nthreads-1)
				for t := 1; t < nthreads; t++ {
					others = append(others, priv[t][m].Data)
				}
				tc.ReduceChunked(priv[0][m].Data, others)
				tc.Barrier()
			}
		}
	})
	var stats Stats
	for t := range threadStats {
		stats.Add(threadStats[t])
	}
	res := JKResult{J: priv[0][0], KA: priv[0][1], Stats: stats}
	dx.GSumF(res.J.Data)
	dx.GSumF(res.KA.Data)
	Finalize(res.J)
	Finalize(res.KA)
	if nmats == 3 {
		res.KB = priv[0][2]
		dx.GSumF(res.KB.Data)
		Finalize(res.KB)
	}
	return res
}

// SharedFockBuildJK is Algorithm 3 generalized to the J/K split. The J
// matrix keeps the original routing (AB -> per-thread FI buffer,
// CD -> direct shared write); each exchange matrix gets its own FI/FJ
// buffer pair (exchange touches only the i- and j-keyed slots), flushed
// on the same schedule as the combined algorithm.
func SharedFockBuildJK(dx *ddi.Context, eng *integrals.Engine, sch *integrals.Schwarz,
	dj, dka, dkb *linalg.Matrix, cfg Config) JKResult {
	n := eng.Basis.NumBF
	shells := eng.Basis.Shells
	ns := len(shells)
	npairs := NumPairs(ns)
	tau := cfg.tau()
	nthreads := cfg.threads()
	sched := cfg.schedule()
	maxQ := sch.MaxQ()
	maxSz := eng.Basis.ShellSizeMax()
	src := cfg.source(eng)

	jAcc := linalg.NewSquare(n)
	kaAcc := linalg.NewSquare(n)
	var kbAcc *linalg.Matrix
	nK := 1
	if dkb != nil {
		kbAcc = linalg.NewSquare(n)
		nK = 2
	}
	// Buffer sets: index 0 = J's FI; 1..nK = K FI sets; then K FJ sets.
	newBufs := func() [][]float64 {
		b := make([][]float64, nthreads)
		for t := range b {
			b[t] = make([]float64, maxSz*n)
		}
		return b
	}
	jFI := newBufs()
	kFI := make([][][]float64, nK)
	kFJ := make([][][]float64, nK)
	for m := 0; m < nK; m++ {
		kFI[m] = newBufs()
		kFJ[m] = newBufs()
	}
	threadStats := make([]Stats, nthreads)

	flush := func(tc *omp.Context, bufs [][]float64, sh int, acc *linalg.Matrix) {
		s := &shells[sh]
		off, cnt := s.BFOffset, s.NumFuncs()
		lo, hi := tc.StaticRange(n)
		for local := 0; local < cnt; local++ {
			row := off + local
			for y := lo; y < hi; y++ {
				sum := 0.0
				for t := 0; t < nthreads; t++ {
					sum += bufs[t][local*n+y]
					bufs[t][local*n+y] = 0
				}
				if sum == 0 {
					continue
				}
				if row >= y {
					acc.Add(row, y, sum)
				} else {
					acc.Add(y, row, sum)
				}
			}
		}
	}

	dx.DLBReset()
	team := omp.NewTeam(nthreads)
	var ijShared int64
	team.Parallel(func(tc *omp.Context) {
		me := tc.ThreadID()
		st := &threadStats[me]
		var buf []float64
		iold := -1
		kAccs := []*linalg.Matrix{kaAcc, kbAcc}
		for {
			tc.Master(func() {
				ijShared = dx.DLBNext()
				st.DLBGrabs++
			})
			tc.Barrier()
			ij := int(ijShared)
			tc.Barrier()
			if ij >= npairs {
				break
			}
			i, j := PairDecode(ij)
			if sch.PairQ(i, j)*maxQ < tau {
				if me == 0 {
					st.PairsSkipped++
				}
				continue
			}
			if i != iold && iold >= 0 {
				tc.Barrier()
				flush(tc, jFI, iold, jAcc)
				for m := 0; m < nK; m++ {
					flush(tc, kFI[m], iold, kAccs[m])
				}
				st.Flushes++
				tc.Barrier()
			}
			oi, oj := shells[i].BFOffset, shells[j].BFOffset
			nj := shells[j].NumFuncs()
			niF := shells[i].NumFuncs()
			toBuf := func(bufs [][]float64, off, cnt int) func(x, y int, v float64) {
				my := bufs[me]
				return func(x, y int, v float64) {
					if y >= off && y-off < cnt && y > x {
						x, y = y, x
					}
					my[(x-off)*n+y] += v
				}
			}
			jFIme := toBuf(jFI, oi, niF)
			kFIme := make([]func(x, y int, v float64), nK)
			kFJme := make([]func(x, y int, v float64), nK)
			for m := 0; m < nK; m++ {
				kFIme[m] = toBuf(kFI[m], oi, niF)
				kFJme[m] = toBuf(kFJ[m], oj, nj)
			}
			tc.For(ij+1, sched, func(kl int) {
				k, l := PairDecode(kl)
				if sch.Screened(i, j, k, l, tau) {
					st.QuartetsScreened++
					return
				}
				st.QuartetsComputed++
				buf = src.ShellQuartet(i, j, k, l, buf)
				// J: AB -> FI, CD -> shared direct (race-free per kl).
				applyQuartet6(dj, buf, shells, i, j, k, l, func(role, x, y int, v float64) {
					switch role {
					case roleAB:
						jFIme(x, y, v)
					case roleCD:
						jAcc.Add(x, y, v)
					}
				})
				// K matrices: AC/AD -> FI, BD/BC -> FJ.
				for m := 0; m < nK; m++ {
					dk := dka
					if m == 1 {
						dk = dkb
					}
					fiU, fjU := kFIme[m], kFJme[m]
					applyQuartet6(dk, buf, shells, i, j, k, l, func(role, x, y int, v float64) {
						switch role {
						case roleAC, roleAD:
							fiU(x, y, -2*v)
						case roleBD, roleBC:
							fjU(x, y, -2*v)
						}
					})
				}
			})
			flush(tc, kFJ[0], j, kaAcc)
			if nK == 2 {
				flush(tc, kFJ[1], j, kbAcc)
			}
			st.Flushes++
			tc.Barrier()
			iold = i
		}
		if iold >= 0 {
			tc.Barrier()
			flush(tc, jFI, iold, jAcc)
			flush(tc, kFI[0], iold, kaAcc)
			if nK == 2 {
				flush(tc, kFI[1], iold, kbAcc)
			}
			tc.Barrier()
		}
	})

	var stats Stats
	for t := range threadStats {
		stats.Add(threadStats[t])
	}
	dx.GSumF(jAcc.Data)
	dx.GSumF(kaAcc.Data)
	Finalize(jAcc)
	Finalize(kaAcc)
	if kbAcc != nil {
		dx.GSumF(kbAcc.Data)
		Finalize(kbAcc)
	}
	return JKResult{J: jAcc, KA: kaAcc, KB: kbAcc, Stats: stats}
}
