package fock

import (
	"repro/internal/ddi"
	"repro/internal/integrals"
	"repro/internal/linalg"
	"repro/internal/mpi"
)

// MPIOnlyBuild is the paper's Algorithm 1, the stock GAMESS SCF
// parallelization: every rank holds private copies of the density and the
// Fock accumulator; the dynamic load balancer hands out combined (i, j)
// shell-pair indices; each rank runs the full (k, l) loops for its pairs;
// a global sum reduces the Fock matrix at the end.
//
// Call from inside mpi.Run on every rank. d is the (replicated) density;
// the returned matrix is the complete two-electron Fock, identical on all
// ranks.
func MPIOnlyBuild(dx *ddi.Context, eng *integrals.Engine,
	sch *integrals.Schwarz, d *linalg.Matrix, cfg Config) (*linalg.Matrix, Stats) {
	n := eng.Basis.NumBF
	shells := eng.Basis.Shells
	ns := len(shells)
	tau := cfg.tau()
	src := cfg.source(eng)
	acc := linalg.NewSquare(n)
	var stats Stats
	tel := dx.Comm.Telemetry()
	rank := dx.Comm.Rank()

	dx.DLBReset()
	next := dx.DLBNext() // first pair index this rank owns
	stats.DLBGrabs++
	var buf []float64
	ij := int64(0)
	for i := 0; i < ns; i++ {
		for j := 0; j <= i; j++ {
			// SDC hook: one corruption opportunity per scanned shell pair.
			// Every rank scans all pairs in the same order regardless of
			// which rank the DLB hands each one to, so scheduled injections
			// are deterministic per rank; and the private accumulator always
			// rides the closing gsumf, so a landed NaN-poison or bit-flip
			// reaches every rank's Fock. Transport checksums cannot catch it
			// (the payload is "validly" wrong at send time) — the SCF-side
			// matrix validators must.
			dx.Comm.InjectSDC(mpi.SiteFock, acc.Data)
			// MPI DLB over the combined ij index (Algorithm 1 line 3).
			if ij != next {
				ij++
				continue
			}
			ij++
			next = dx.DLBNext()
			stats.DLBGrabs++
			var endTask func()
			if tel != nil {
				endTask = tel.Span("fock.task", "pair", rank, 0,
					map[string]any{"i": i, "j": j})
			}
			for k := 0; k <= i; k++ {
				lmax := quartetLoopBounds(i, j, k)
				for l := 0; l <= lmax; l++ {
					if sch.Screened(i, j, k, l, tau) {
						stats.QuartetsScreened++
						continue
					}
					stats.QuartetsComputed++
					buf = src.ShellQuartet(i, j, k, l, buf)
					applyQuartet(d, buf, shells, i, j, k, l,
						func(x, y int, v float64) { addLower(acc, x, y, v) })
				}
			}
			if endTask != nil {
				endTask()
			}
		}
	}
	// 2e-Fock matrix reduction over MPI ranks (Algorithm 1 line 16).
	dx.GSumF(acc.Data)
	Finalize(acc)
	return acc, stats
}
