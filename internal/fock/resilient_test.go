package fock

import (
	"errors"
	"testing"
	"time"

	"repro/internal/ddi"
	"repro/internal/linalg"
	"repro/internal/molecule"
	"repro/internal/mpi"
)

// TestResilientMatchesSerial: with nobody dying, the lease-based build is
// just Algorithm 1 with one-sided accumulation — every rank must
// reproduce the serial Fock matrix, and the ranks together must compute
// each quartet exactly once.
func TestResilientMatchesSerial(t *testing.T) {
	eng, sch, d := setup(t, molecule.Water(), "6-31g")
	want, wantStats := SerialBuild(eng, sch, d, DefaultTau)

	const ranks = 3
	got := make([]*linalg.Matrix, ranks)
	stats := make([]Stats, ranks)
	err := mpi.Run(ranks, func(c *mpi.Comm) {
		dx := ddi.New(c)
		got[c.Rank()], stats[c.Rank()] = ResilientBuild(dx, eng, sch, d, Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for r := 0; r < ranks; r++ {
		if diff := got[r].MaxAbsDiff(want); diff > 1e-10 {
			t.Fatalf("rank %d: resilient vs serial diff = %v", r, diff)
		}
		total += stats[r].QuartetsComputed
	}
	if total != wantStats.QuartetsComputed {
		t.Fatalf("ranks computed %d quartets, serial computed %d (not exactly once)",
			total, wantStats.QuartetsComputed)
	}
}

// TestResilientSurvivesRankDeath is the tentpole's mid-Fock-build
// acceptance test: one rank dies at a DLB draw while holding an
// uncompleted lease; the survivors re-issue it and still produce the
// exact serial Fock matrix, with the collective quartet count proving no
// quartet was lost or duplicated.
func TestResilientSurvivesRankDeath(t *testing.T) {
	eng, sch, d := setup(t, molecule.Water(), "6-31g")
	want, wantStats := SerialBuild(eng, sch, d, DefaultTau)

	const ranks, victim = 4, 1
	got := make([]*linalg.Matrix, ranks)
	stats := make([]Stats, ranks)
	rep, err := mpi.RunWithOptions(ranks, mpi.RunOptions{
		Deadline: 10 * time.Second,
		// The victim claims its first task, then dies drawing its second —
		// leaving one computed-but-unpushed lease for survivors to re-issue.
		Fault: &mpi.FaultPlan{Kills: []mpi.Kill{{Rank: victim, Site: mpi.SiteDLB, After: 2}}},
	}, func(c *mpi.Comm) {
		if c.Rank() != victim {
			// Hold survivors back so the victim is guaranteed to be
			// holding a lease when it dies (keeps the test deterministic).
			for c.Healthy() {
				time.Sleep(time.Millisecond)
			}
		}
		dx := ddi.New(c)
		got[c.Rank()], stats[c.Rank()] = ResilientBuild(dx, eng, sch, d, Config{})
	})
	if !errors.Is(err, mpi.ErrRankFailed) {
		t.Fatalf("want ErrRankFailed, got %v", err)
	}
	if got := rep.DeadRanks(); len(got) != 1 || got[0] != victim {
		t.Fatalf("DeadRanks = %v, want [%d]", got, victim)
	}
	if len(rep.Completed) != ranks-1 {
		t.Fatalf("Completed = %v, want the %d survivors", rep.Completed, ranks-1)
	}
	var total, reissued int64
	for _, r := range rep.Completed {
		if diff := got[r].MaxAbsDiff(want); diff > 1e-10 {
			t.Fatalf("survivor %d: resilient vs serial diff = %v", r, diff)
		}
		total += stats[r].QuartetsComputed
		reissued += stats[r].TasksReissued
	}
	// The victim never pushed anything, so the survivors alone must have
	// computed exactly the serial quartet count — the dead rank's lease
	// re-issued, nothing lost, nothing double-counted.
	if total != wantStats.QuartetsComputed {
		t.Fatalf("survivors computed %d quartets, serial computed %d (lost or duplicated work)",
			total, wantStats.QuartetsComputed)
	}
	if reissued == 0 {
		t.Fatal("no lease was re-issued despite a rank dying while holding one")
	}
}
