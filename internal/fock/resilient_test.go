package fock

import (
	"errors"
	"testing"
	"time"

	"repro/internal/ddi"
	"repro/internal/linalg"
	"repro/internal/molecule"
	"repro/internal/mpi"
)

// TestResilientMatchesSerial: with nobody dying, the lease-based build is
// just Algorithm 1 with one-sided accumulation — every rank must
// reproduce the serial Fock matrix, and the ranks together must compute
// each quartet exactly once.
func TestResilientMatchesSerial(t *testing.T) {
	eng, sch, d := setup(t, molecule.Water(), "6-31g")
	want, wantStats := SerialBuild(eng, sch, d, DefaultTau)

	const ranks = 3
	got := make([]*linalg.Matrix, ranks)
	stats := make([]Stats, ranks)
	err := mpi.Run(ranks, func(c *mpi.Comm) {
		dx := ddi.New(c)
		got[c.Rank()], stats[c.Rank()] = ResilientBuild(dx, eng, sch, d, Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for r := 0; r < ranks; r++ {
		if diff := got[r].MaxAbsDiff(want); diff > 1e-10 {
			t.Fatalf("rank %d: resilient vs serial diff = %v", r, diff)
		}
		total += stats[r].QuartetsCommitted
	}
	if total != wantStats.QuartetsComputed {
		t.Fatalf("ranks committed %d quartets, serial computed %d (not exactly once)",
			total, wantStats.QuartetsComputed)
	}
}

// TestResilientSurvivesRankDeath is the tentpole's mid-Fock-build
// acceptance test: one rank dies at a DLB draw while holding an
// uncompleted lease; the survivors re-issue it and still produce the
// exact serial Fock matrix, with the collective quartet count proving no
// quartet was lost or duplicated.
func TestResilientSurvivesRankDeath(t *testing.T) {
	eng, sch, d := setup(t, molecule.Water(), "6-31g")
	want, wantStats := SerialBuild(eng, sch, d, DefaultTau)

	const ranks, victim = 4, 1
	got := make([]*linalg.Matrix, ranks)
	stats := make([]Stats, ranks)
	rep, err := mpi.RunWithOptions(ranks, mpi.RunOptions{
		Deadline: 10 * time.Second,
		// The victim claims its first task, then dies drawing its second —
		// leaving one computed-but-unpushed lease for survivors to re-issue.
		Fault: &mpi.FaultPlan{Kills: []mpi.Kill{{Rank: victim, Site: mpi.SiteDLB, After: 2}}},
	}, func(c *mpi.Comm) {
		if c.Rank() != victim {
			// Hold survivors back so the victim is guaranteed to be
			// holding a lease when it dies (keeps the test deterministic).
			for c.Healthy() {
				time.Sleep(time.Millisecond)
			}
		}
		dx := ddi.New(c)
		got[c.Rank()], stats[c.Rank()] = ResilientBuild(dx, eng, sch, d, Config{})
	})
	if !errors.Is(err, mpi.ErrRankFailed) {
		t.Fatalf("want ErrRankFailed, got %v", err)
	}
	if got := rep.DeadRanks(); len(got) != 1 || got[0] != victim {
		t.Fatalf("DeadRanks = %v, want [%d]", got, victim)
	}
	if len(rep.Completed) != ranks-1 {
		t.Fatalf("Completed = %v, want the %d survivors", rep.Completed, ranks-1)
	}
	var total, reissued int64
	for _, r := range rep.Completed {
		if diff := got[r].MaxAbsDiff(want); diff > 1e-10 {
			t.Fatalf("survivor %d: resilient vs serial diff = %v", r, diff)
		}
		total += stats[r].QuartetsCommitted
		reissued += stats[r].TasksReissued
	}
	// The victim never pushed anything, so the survivors alone must have
	// committed exactly the serial quartet count — the dead rank's lease
	// re-issued, nothing lost, nothing double-counted.
	if total != wantStats.QuartetsComputed {
		t.Fatalf("survivors committed %d quartets, serial computed %d (lost or duplicated work)",
			total, wantStats.QuartetsComputed)
	}
	if reissued == 0 {
		t.Fatal("no lease was re-issued despite a rank dying while holding one")
	}
}

// TestResilientHedgesStraggler is the performance-fault acceptance test:
// one rank runs 12× slow (a sustained chaos Slowdown, not a death), the
// straggler detector flags it from the shared latency window, and fast
// ranks speculatively recompute its outstanding leases. First writer
// wins: the collective COMMITTED quartet count still equals the serial
// count exactly, and every rank still reproduces the serial Fock matrix,
// even though some quartets were computed twice.
func TestResilientHedgesStraggler(t *testing.T) {
	// A 4x4 hydrogen grid in sto-3g: 16 s-shells, 136 pair tasks — a
	// task space big enough for the straggler to accumulate the samples
	// the detector needs while fast ranks still have leases to hedge.
	mol := &molecule.Molecule{Name: "H16"}
	for a := 0; a < 16; a++ {
		mol.AddAtomAngstrom("H", float64(a%4)*1.2, float64(a/4)*1.2, 0)
	}
	eng, sch, d := setup(t, mol, "sto-3g")
	want, wantStats := SerialBuild(eng, sch, d, DefaultTau)

	const ranks, slow = 3, 1
	// Whether a hedge fires at all is scheduler-dependent: on a loaded CI
	// box the fast ranks can drain the cursor before the straggler has
	// the two latency samples the detector needs, leaving nothing to
	// hedge. Retry a few builds for the liveness half; the correctness
	// invariants (serial-identical Fock, exactly-once commits) are
	// asserted unconditionally on every attempt.
	var hedged, deduped int64
	for attempt := 0; attempt < 5 && hedged == 0; attempt++ {
		got := make([]*linalg.Matrix, ranks)
		stats := make([]Stats, ranks)
		_, err := mpi.RunWithOptions(ranks, mpi.RunOptions{
			Deadline: 30 * time.Second,
			Fault: &mpi.FaultPlan{Slowdowns: []mpi.Slowdown{
				{Rank: slow, Factor: 12, Sites: []mpi.FaultSite{mpi.SiteFock}}}},
		}, func(c *mpi.Comm) {
			dx := ddi.New(c)
			got[c.Rank()], stats[c.Rank()] = ResilientBuild(dx, eng, sch, d,
				Config{HedgeMinSamples: 2})
		})
		if err != nil {
			t.Fatal(err)
		}
		var committed int64
		hedged, deduped = 0, 0
		for r := 0; r < ranks; r++ {
			if diff := got[r].MaxAbsDiff(want); diff > 1e-10 {
				t.Fatalf("rank %d: hedged resilient vs serial diff = %v", r, diff)
			}
			committed += stats[r].QuartetsCommitted
			hedged += stats[r].TasksHedged
			deduped += stats[r].TasksDeduped
		}
		if committed != wantStats.QuartetsComputed {
			t.Fatalf("ranks committed %d quartets, serial computed %d (hedging double-counted or lost work)",
				committed, wantStats.QuartetsComputed)
		}
	}
	if hedged == 0 {
		t.Fatal("straggler was never hedged despite a 12x sustained slowdown")
	}
	// Every hedge produced a duplicate result; exactly one copy won, so
	// the loser (hedger or straggler) must have been deduplicated.
	if deduped == 0 {
		t.Fatal("hedges fired but no duplicate result was ever dropped")
	}
}
