package fock

import (
	"repro/internal/basis"
	"repro/internal/integrals"
	"repro/internal/linalg"
)

// SerialBuildJK constructs the Coulomb matrix J contracted with dj and
// the (full, un-halved) exchange matrix K contracted with dk in a single
// pass over the symmetry-unique screened quartets:
//
//	J_ab = sum_cd dj_cd (ab|cd)        K_ab = sum_cd dk_cd (ac|bd)
//
// The restricted builders fold these as G = J(D) - K(D)/2; unrestricted
// Hartree-Fock needs them separately (F_sigma = H + J(D_total) -
// K(D_sigma)), which is why the paper's conclusion lists UHF among the
// methods that inherit this work's parallel structure directly.
func SerialBuildJK(eng *integrals.Engine, sch *integrals.Schwarz,
	dj, dk *linalg.Matrix, tau float64) (j, k *linalg.Matrix, stats Stats) {
	n := eng.Basis.NumBF
	shells := eng.Basis.Shells
	ns := len(shells)
	jAcc := linalg.NewSquare(n)
	kAcc := linalg.NewSquare(n)
	var buf []float64
	for i := 0; i < ns; i++ {
		for jj := 0; jj <= i; jj++ {
			for kk := 0; kk <= i; kk++ {
				lmax := quartetLoopBounds(i, jj, kk)
				for l := 0; l <= lmax; l++ {
					if sch.Screened(i, jj, kk, l, tau) {
						stats.QuartetsScreened++
						continue
					}
					stats.QuartetsComputed++
					buf = eng.ShellQuartet(i, jj, kk, l, buf)
					applyQuartetJK(dj, dk, buf, shells, i, jj, kk, l, jAcc, kAcc)
				}
			}
		}
	}
	Finalize(jAcc)
	Finalize(kAcc)
	return jAcc, kAcc, stats
}

// applyQuartetJK routes the six per-quartet updates into separate J and K
// accumulators. The combined kernel applies G-updates with Coulomb weight
// 2sI*D and exchange weight -sI*D/2; here the Coulomb roles carry the
// same 2sI*dj and the exchange roles carry +sI*dk (full K, positive — the
// caller subtracts).
func applyQuartetJK(dj, dk *linalg.Matrix, blk []float64, shells []basis.Shell,
	i, j, k, l int, jAcc, kAcc *linalg.Matrix) {
	// Coulomb pass with dj: keep only the AB/CD roles (the kernel's
	// exchange values would carry dj, the wrong density for K).
	applyQuartet6(dj, blk, shells, i, j, k, l, func(role, x, y int, v float64) {
		if role == roleAB || role == roleCD {
			addLower(jAcc, x, y, v) // already 2 s I dj (diag-doubled)
		}
	})
	kExchange(dk, blk, shells, i, j, k, l, kAcc)
}

// kExchange applies only the exchange updates with density dk and weight
// +s I dk (full K).
func kExchange(dk *linalg.Matrix, blk []float64, shells []basis.Shell,
	i, j, k, l int, kAcc *linalg.Matrix) {
	applyQuartet6(dk, blk, shells, i, j, k, l, func(role, x, y int, v float64) {
		switch role {
		case roleAC, roleBD, roleAD, roleBC:
			// v carries the combined kernel's -s I dk / 2; scale to +2 for
			// the full (un-halved) exchange matrix.
			addLower(kAcc, x, y, -2*v)
		}
	})
}
