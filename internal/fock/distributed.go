package fock

import (
	"repro/internal/ddi"
	"repro/internal/integrals"
	"repro/internal/linalg"
)

// DistributedFockBuild implements the distributed-data Fock construction
// of the paper's related work (Harrison et al. 1996; Alexeev, Kendall &
// Gordon 2002): instead of replicating the Fock matrix on every rank and
// reducing with gsumf, the Fock matrix lives in a DDI distributed array
// partitioned by rows across ranks; each rank accumulates its quartet
// contributions locally and pushes them with one-sided accumulate
// operations. Memory for the distributed copy scales as N^2/P per rank,
// at the price of one-sided traffic — the trade-off the paper's
// shared-Fock algorithm sidesteps with node-level sharing.
//
// Call from inside mpi.Run on every rank; returns the complete Fock
// matrix (gathered from the distributed array) on every rank.
func DistributedFockBuild(dx *ddi.Context, eng *integrals.Engine,
	sch *integrals.Schwarz, d *linalg.Matrix, cfg Config) (*linalg.Matrix, Stats) {
	n := eng.Basis.NumBF
	shells := eng.Basis.Shells
	ns := len(shells)
	tau := cfg.tau()
	src := cfg.source(eng)

	fArr := dx.CreateDArray(n, n)
	var stats Stats

	// Local accumulation over this rank's DLB-assigned ij tasks (same
	// canonical enumeration as Algorithm 1).
	acc := linalg.NewSquare(n)
	dx.DLBReset()
	next := dx.DLBNext()
	stats.DLBGrabs++
	var buf []float64
	ij := int64(0)
	for i := 0; i < ns; i++ {
		for j := 0; j <= i; j++ {
			if ij != next {
				ij++
				continue
			}
			ij++
			next = dx.DLBNext()
			stats.DLBGrabs++
			for k := 0; k <= i; k++ {
				lmax := quartetLoopBounds(i, j, k)
				for l := 0; l <= lmax; l++ {
					if sch.Screened(i, j, k, l, tau) {
						stats.QuartetsScreened++
						continue
					}
					stats.QuartetsComputed++
					buf = src.ShellQuartet(i, j, k, l, buf)
					applyQuartet(d, buf, shells, i, j, k, l,
						func(x, y int, v float64) { addLower(acc, x, y, v) })
				}
			}
		}
	}
	// Push the local contribution into the distributed array with
	// one-sided accumulates, one owner-aligned row block at a time.
	lo := 0
	for lo < n {
		owner := fArr.OwnerOf(lo)
		hi := lo
		for hi < n && fArr.OwnerOf(hi) == owner {
			hi++
		}
		fArr.AccRows(lo, hi-lo, acc.Data[lo*n:hi*n])
		lo = hi
	}
	dx.Comm.Barrier()

	// Gather the full matrix back (a get-based broadcast; a production
	// code would keep working on distributed blocks instead).
	full := linalg.NewSquare(n)
	fArr.GetRows(0, n, full.Data)
	Finalize(full)
	return full, stats
}
