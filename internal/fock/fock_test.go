package fock

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/basis"
	"repro/internal/ddi"
	"repro/internal/integrals"
	"repro/internal/linalg"
	"repro/internal/molecule"
	"repro/internal/mpi"
	"repro/internal/omp"
)

// testDensity builds a plausible symmetric positive density-like matrix
// from the core Hamiltonian guess so the Fock builders are exercised with
// realistic magnitudes (not just random noise).
func testDensity(eng *integrals.Engine, nocc int) *linalg.Matrix {
	h := eng.CoreHamiltonian()
	s := eng.Overlap()
	x, err := linalg.LowdinOrthogonalizer(s, 1e-10)
	if err != nil {
		panic(err)
	}
	fp := linalg.TripleProduct(x, h)
	_, cp := linalg.EigenSym(fp)
	c := linalg.Mul(x, cp)
	n := eng.Basis.NumBF
	d := linalg.NewSquare(n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			sum := 0.0
			for o := 0; o < nocc; o++ {
				sum += c.At(a, o) * c.At(b, o)
			}
			d.Set(a, b, 2*sum)
		}
	}
	return d
}

func setup(t testing.TB, mol *molecule.Molecule, set string) (*integrals.Engine, *integrals.Schwarz, *linalg.Matrix) {
	t.Helper()
	b, err := basis.Build(mol, set)
	if err != nil {
		t.Fatal(err)
	}
	eng := integrals.NewEngine(b)
	sch := integrals.ComputeSchwarz(eng)
	d := testDensity(eng, mol.NumElectrons()/2)
	return eng, sch, d
}

func TestSerialMatchesDenseReference(t *testing.T) {
	// The fundamental correctness check: the symmetry-folded quartet loop
	// must reproduce the textbook dense contraction.
	for _, tc := range []struct {
		mol *molecule.Molecule
		set string
	}{
		{molecule.H2(), "sto-3g"},
		{molecule.Water(), "sto-3g"},
		{molecule.Water(), "6-31g"},
	} {
		eng, sch, d := setup(t, tc.mol, tc.set)
		got, stats := SerialBuild(eng, sch, d, 1e-14)
		want := ReferenceFock2e(eng, d)
		if diff := got.MaxAbsDiff(want); diff > 1e-9 {
			t.Fatalf("%s/%s: serial vs dense reference diff = %v", tc.mol.Name, tc.set, diff)
		}
		if stats.QuartetsComputed == 0 {
			t.Fatal("no quartets computed")
		}
	}
}

func TestSerialWithPolarization(t *testing.T) {
	// d functions (6-31G(d) on CH4's carbon) exercise the L=2 paths.
	eng, sch, d := setup(t, molecule.Methane(), "6-31g(d)")
	got, _ := SerialBuild(eng, sch, d, 1e-14)
	want := ReferenceFock2e(eng, d)
	if diff := got.MaxAbsDiff(want); diff > 1e-9 {
		t.Fatalf("CH4/6-31G(d): diff = %v", diff)
	}
}

func TestSerialScreeningConsistency(t *testing.T) {
	// A loose threshold must stay close to the tight result and strictly
	// reduce work.
	eng, sch, d := setup(t, molecule.GrapheneFlake(4), "sto-3g")
	tight, st1 := SerialBuild(eng, sch, d, 1e-14)
	loose, st2 := SerialBuild(eng, sch, d, 1e-6)
	if st2.QuartetsComputed >= st1.QuartetsComputed {
		t.Fatalf("screening removed nothing: %d vs %d", st2.QuartetsComputed, st1.QuartetsComputed)
	}
	if diff := tight.MaxAbsDiff(loose); diff > 1e-4 {
		t.Fatalf("screened result drifted too far: %v", diff)
	}
}

func TestPairIndexRoundTrip(t *testing.T) {
	for ij := 0; ij < 50000; ij++ {
		i, j := PairDecode(ij)
		if j > i || j < 0 {
			t.Fatalf("PairDecode(%d) = (%d,%d) not canonical", ij, i, j)
		}
		if PairIndex(i, j) != ij {
			t.Fatalf("round trip failed at %d: (%d,%d)", ij, i, j)
		}
	}
}

func TestQuartetEnumerationCanonical(t *testing.T) {
	// The (i, j<=i, k<=i, l<=lmax) loops must enumerate every unordered
	// quartet pair {(ij),(kl)} exactly once.
	ns := 7
	seen := map[[2]int]int{}
	for i := 0; i < ns; i++ {
		for j := 0; j <= i; j++ {
			for k := 0; k <= i; k++ {
				lmax := quartetLoopBounds(i, j, k)
				for l := 0; l <= lmax; l++ {
					pab, pcd := PairIndex(i, j), PairIndex(k, l)
					key := [2]int{pab, pcd}
					seen[key]++
				}
			}
		}
	}
	np := NumPairs(ns)
	want := np * (np + 1) / 2
	if len(seen) != want {
		t.Fatalf("enumerated %d distinct pair-pairs, want %d", len(seen), want)
	}
	for key, count := range seen {
		if count != 1 {
			t.Fatalf("pair-pair %v enumerated %d times", key, count)
		}
		if key[1] > key[0] {
			t.Fatalf("non-canonical pair-pair %v", key)
		}
	}
}

func buildersAgreeOn(t *testing.T, mol *molecule.Molecule, set string, ranks, threads int) {
	t.Helper()
	eng, sch, d := setup(t, mol, set)
	want, _ := SerialBuild(eng, sch, d, DefaultTau)

	run := func(name string, build func(dx *ddi.Context) *linalg.Matrix) {
		results := make([]*linalg.Matrix, ranks)
		err := mpi.Run(ranks, func(c *mpi.Comm) {
			dx := ddi.New(c)
			results[c.Rank()] = build(dx)
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for r := 0; r < ranks; r++ {
			if diff := results[r].MaxAbsDiff(want); diff > 1e-10 {
				t.Fatalf("%s rank %d: diff vs serial = %v", name, r, diff)
			}
		}
	}

	cfg := Config{Threads: threads}
	run("mpi-only", func(dx *ddi.Context) *linalg.Matrix {
		f, _ := MPIOnlyBuild(dx, eng, sch, d, cfg)
		return f
	})
	run("private-fock", func(dx *ddi.Context) *linalg.Matrix {
		f, _ := PrivateFockBuild(dx, eng, sch, d, cfg)
		return f
	})
	run("shared-fock", func(dx *ddi.Context) *linalg.Matrix {
		f, _ := SharedFockBuild(dx, eng, sch, d, cfg)
		return f
	})
}

func TestAllBuildersAgreeWater(t *testing.T) {
	buildersAgreeOn(t, molecule.Water(), "sto-3g", 3, 2)
}

func TestAllBuildersAgreeWater631G(t *testing.T) {
	buildersAgreeOn(t, molecule.Water(), "6-31g", 2, 3)
}

func TestAllBuildersAgreeMethanePolarized(t *testing.T) {
	buildersAgreeOn(t, molecule.Methane(), "6-31g(d)", 2, 2)
}

func TestAllBuildersAgreeGrapheneFlake(t *testing.T) {
	// A small all-carbon flake: the actual workload type of the paper.
	buildersAgreeOn(t, molecule.GrapheneFlake(4), "sto-3g", 4, 3)
}

func TestBuildersSingleRankSingleThread(t *testing.T) {
	buildersAgreeOn(t, molecule.H2(), "sto-3g", 1, 1)
}

func TestBuildersManyRanksFewShells(t *testing.T) {
	// More ranks than DLB tasks: some ranks do nothing; result must hold.
	buildersAgreeOn(t, molecule.H2(), "sto-3g", 6, 2)
}

func TestSharedFockSchedules(t *testing.T) {
	// The paper observed no significant difference between OpenMP
	// schedules; all must at least be correct.
	eng, sch, d := setup(t, molecule.Water(), "sto-3g")
	want, _ := SerialBuild(eng, sch, d, DefaultTau)
	for _, sched := range []omp.Schedule{
		{Kind: omp.Static}, {Kind: omp.Dynamic, Chunk: 1},
		{Kind: omp.Dynamic, Chunk: 4}, {Kind: omp.Guided},
	} {
		err := mpi.Run(2, func(c *mpi.Comm) {
			f, _ := SharedFockBuild(ddi.New(c), eng, sch, d,
				Config{Threads: 3, Schedule: sched})
			if diff := f.MaxAbsDiff(want); diff > 1e-10 {
				t.Errorf("schedule %v: diff %v", sched, diff)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestSharedFockFlushCounting(t *testing.T) {
	eng, sch, d := setup(t, molecule.Water(), "sto-3g")
	err := mpi.Run(1, func(c *mpi.Comm) {
		_, stats := SharedFockBuild(ddi.New(c), eng, sch, d, Config{Threads: 2})
		if stats.Flushes == 0 {
			t.Error("shared-Fock build reported no flushes")
		}
		if stats.QuartetsComputed == 0 {
			t.Error("no quartets computed")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsPartitionAcrossRanks(t *testing.T) {
	// Summed over ranks, computed+screened quartets must equal the serial
	// totals (each quartet belongs to exactly one rank).
	eng, sch, d := setup(t, molecule.Water(), "sto-3g")
	_, serialStats := SerialBuild(eng, sch, d, DefaultTau)
	perRank := make([]Stats, 3)
	err := mpi.Run(3, func(c *mpi.Comm) {
		_, st := MPIOnlyBuild(ddi.New(c), eng, sch, d, Config{})
		perRank[c.Rank()] = st
	})
	if err != nil {
		t.Fatal(err)
	}
	var total Stats
	for _, st := range perRank {
		total.Add(st)
	}
	if total.QuartetsComputed != serialStats.QuartetsComputed {
		t.Fatalf("computed quartets %d != serial %d", total.QuartetsComputed, serialStats.QuartetsComputed)
	}
	if total.QuartetsScreened != serialStats.QuartetsScreened {
		t.Fatalf("screened quartets %d != serial %d", total.QuartetsScreened, serialStats.QuartetsScreened)
	}
}

func TestFinalizeSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := linalg.NewSquare(6)
	for i := 0; i < 6; i++ {
		for j := 0; j <= i; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	Finalize(m)
	if !m.IsSymmetric(0) {
		t.Fatal("Finalize did not produce a symmetric matrix")
	}
}

func TestMemoryFootprints(t *testing.T) {
	// Table 2 shape: at N=5340 (2.0 nm), MPI-only with 256 ranks is about
	// 50x the private-Fock and 200x the shared-Fock node footprints.
	nbf := 5340
	mpiF := MPIOnlyFootprint(nbf, 256, 0)
	prF := PrivateFockFootprint(nbf, 64, 4, 0)
	shF := SharedFockFootprint(nbf, 4, 0)
	if mpiF.PerNodeBytes() <= prF.PerNodeBytes() || prF.PerNodeBytes() <= shF.PerNodeBytes() {
		t.Fatal("footprint ordering wrong")
	}
	ratioPr := float64(mpiF.PerNodeBytes()) / float64(prF.PerNodeBytes())
	ratioSh := float64(mpiF.PerNodeBytes()) / float64(shF.PerNodeBytes())
	if ratioPr < 2 || ratioPr > 3 {
		t.Fatalf("MPI/private ratio = %v (want ~2.4: 256*2.5 / (4*66))", ratioPr)
	}
	if ratioSh < 40 || ratioSh > 50 {
		t.Fatalf("MPI/shared ratio = %v (want ~45.7: 256*2.5 / (4*3.5))", ratioSh)
	}
}

func TestBufferBytes(t *testing.T) {
	if got := BufferBytes(100, 6, 4); got != 2*4*6*100*8 {
		t.Fatalf("BufferBytes = %d", got)
	}
}

func TestFullUpdateCount(t *testing.T) {
	if FullUpdateCount(Stats{QuartetsComputed: 7}) != 42 {
		t.Fatal("FullUpdateCount wrong")
	}
}

func TestSerialBuildJKConsistentWithCombined(t *testing.T) {
	// G = J(D) - K(D)/2 must reproduce the combined kernel exactly.
	eng, sch, d := setup(t, molecule.Water(), "sto-3g")
	g, _ := SerialBuild(eng, sch, d, 1e-14)
	j, k, _ := SerialBuildJK(eng, sch, d, d, 1e-14)
	combo := j.Clone()
	combo.AxpyFrom(-0.5, k)
	if diff := combo.MaxAbsDiff(g); diff > 1e-10 {
		t.Fatalf("J - K/2 vs combined kernel: diff %v", diff)
	}
	if !j.IsSymmetric(1e-10) || !k.IsSymmetric(1e-10) {
		t.Fatal("J or K not symmetric")
	}
}

func TestSerialBuildJKSeparateDensities(t *testing.T) {
	// J must depend only on dj and K only on dk.
	eng, sch, d := setup(t, molecule.H2(), "sto-3g")
	zero := linalg.NewSquare(d.Rows)
	j1, k1, _ := SerialBuildJK(eng, sch, d, zero, 1e-14)
	j2, k2, _ := SerialBuildJK(eng, sch, zero, d, 1e-14)
	if k1.FrobeniusNorm() > 1e-12 {
		t.Fatal("K nonzero for zero exchange density")
	}
	if j2.FrobeniusNorm() > 1e-12 {
		t.Fatal("J nonzero for zero Coulomb density")
	}
	if j1.FrobeniusNorm() == 0 || k2.FrobeniusNorm() == 0 {
		t.Fatal("J/K vanished for nonzero densities")
	}
}

func TestJKAgainstDenseReference(t *testing.T) {
	// Full dense J and K from the raw tensor on a tiny system.
	eng, sch, d := setup(t, molecule.H2(), "sto-3g")
	j, k, _ := SerialBuildJK(eng, sch, d, d, 1e-14)
	n := eng.Basis.NumBF
	var buf []float64
	shells := eng.Basis.Shells
	tensor := make([]float64, n*n*n*n)
	for i := range shells {
		for jj := range shells {
			for kk := range shells {
				for l := range shells {
					buf = eng.ShellQuartet(i, jj, kk, l, buf)
					si, sj, sk, sl := &shells[i], &shells[jj], &shells[kk], &shells[l]
					idx := 0
					for fa := 0; fa < si.NumFuncs(); fa++ {
						for fb := 0; fb < sj.NumFuncs(); fb++ {
							for fc := 0; fc < sk.NumFuncs(); fc++ {
								for fd := 0; fd < sl.NumFuncs(); fd++ {
									a, b := si.BFOffset+fa, sj.BFOffset+fb
									c, dd := sk.BFOffset+fc, sl.BFOffset+fd
									tensor[((a*n+b)*n+c)*n+dd] = buf[idx]
									idx++
								}
							}
						}
					}
				}
			}
		}
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			var wantJ, wantK float64
			for c := 0; c < n; c++ {
				for dd := 0; dd < n; dd++ {
					wantJ += d.At(c, dd) * tensor[((a*n+b)*n+c)*n+dd]
					wantK += d.At(c, dd) * tensor[((a*n+c)*n+b)*n+dd]
				}
			}
			if math.Abs(j.At(a, b)-wantJ) > 1e-10 {
				t.Fatalf("J[%d,%d] = %v want %v", a, b, j.At(a, b), wantJ)
			}
			if math.Abs(k.At(a, b)-wantK) > 1e-10 {
				t.Fatalf("K[%d,%d] = %v want %v", a, b, k.At(a, b), wantK)
			}
		}
	}
}

func TestDistributedFockMatchesSerial(t *testing.T) {
	// The distributed-data variant (related-work baseline) must agree
	// with the serial reference across rank counts.
	eng, sch, d := setup(t, molecule.Water(), "sto-3g")
	want, serialStats := SerialBuild(eng, sch, d, DefaultTau)
	for _, ranks := range []int{1, 2, 5} {
		results := make([]*linalg.Matrix, ranks)
		perRank := make([]Stats, ranks)
		err := mpi.Run(ranks, func(c *mpi.Comm) {
			f, st := DistributedFockBuild(ddi.New(c), eng, sch, d, Config{})
			results[c.Rank()] = f
			perRank[c.Rank()] = st
		})
		if err != nil {
			t.Fatal(err)
		}
		var total Stats
		for r := 0; r < ranks; r++ {
			if diff := results[r].MaxAbsDiff(want); diff > 1e-10 {
				t.Fatalf("ranks=%d rank %d: diff %v", ranks, r, diff)
			}
			total.Add(perRank[r])
		}
		if total.QuartetsComputed != serialStats.QuartetsComputed {
			t.Fatalf("ranks=%d: quartets %d != serial %d", ranks,
				total.QuartetsComputed, serialStats.QuartetsComputed)
		}
	}
}

func TestParallelJKBuildersMatchSerial(t *testing.T) {
	// The J/K-split parallel builders (the UHF path) must reproduce the
	// serial split kernel for asymmetric dj/dka/dkb densities.
	eng, sch, d := setup(t, molecule.Water(), "sto-3g")
	// Asymmetric test densities: scaled/shifted copies of d.
	dka := d.Clone()
	dka.Scale(0.5)
	dkb := d.Clone()
	dkb.Scale(0.25)
	wantJ, wantKA, _ := SerialBuildJK(eng, sch, d, dka, DefaultTau)
	_, wantKB, _ := SerialBuildJK(eng, sch, d, dkb, DefaultTau)

	builders := map[string]func(dx *ddi.Context) JKResult{
		"mpi-only": func(dx *ddi.Context) JKResult {
			return MPIOnlyBuildJK(dx, eng, sch, d, dka, dkb, Config{Threads: 2})
		},
		"private-fock": func(dx *ddi.Context) JKResult {
			return PrivateFockBuildJK(dx, eng, sch, d, dka, dkb, Config{Threads: 2})
		},
		"shared-fock": func(dx *ddi.Context) JKResult {
			return SharedFockBuildJK(dx, eng, sch, d, dka, dkb, Config{Threads: 2})
		},
	}
	for name, build := range builders {
		results := make([]JKResult, 3)
		err := mpi.Run(3, func(c *mpi.Comm) {
			results[c.Rank()] = build(ddi.New(c))
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for r, res := range results {
			if diff := res.J.MaxAbsDiff(wantJ); diff > 1e-10 {
				t.Fatalf("%s rank %d: J diff %v", name, r, diff)
			}
			if diff := res.KA.MaxAbsDiff(wantKA); diff > 1e-10 {
				t.Fatalf("%s rank %d: KA diff %v", name, r, diff)
			}
			if diff := res.KB.MaxAbsDiff(wantKB); diff > 1e-10 {
				t.Fatalf("%s rank %d: KB diff %v", name, r, diff)
			}
		}
	}
}

func TestParallelJKNilSecondExchange(t *testing.T) {
	eng, sch, d := setup(t, molecule.H2(), "sto-3g")
	err := mpi.Run(2, func(c *mpi.Comm) {
		res := SharedFockBuildJK(ddi.New(c), eng, sch, d, d, nil, Config{Threads: 2})
		if res.KB != nil {
			t.Error("KB should be nil when dkb is nil")
		}
		wantJ, wantK, _ := SerialBuildJK(eng, sch, d, d, DefaultTau)
		if res.J.MaxAbsDiff(wantJ) > 1e-10 || res.KA.MaxAbsDiff(wantK) > 1e-10 {
			t.Error("nil-KB build mismatch")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestERIStoreMatchesDirect(t *testing.T) {
	eng, sch, d := setup(t, molecule.Water(), "sto-3g")
	want, directStats := SerialBuild(eng, sch, d, DefaultTau)
	store, err := BuildStore(eng, sch, DefaultTau)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := store.BuildFock(d)
	if diff := got.MaxAbsDiff(want); diff > 1e-12 {
		t.Fatalf("in-core vs direct diff = %v", diff)
	}
	if int64(store.NumQuartets()) != directStats.QuartetsComputed {
		t.Fatalf("stored %d quartets, direct computed %d", store.NumQuartets(), directStats.QuartetsComputed)
	}
	if store.Bytes() <= 0 {
		t.Fatal("empty store")
	}
	// Replaying with a different density must also match direct.
	d2 := d.Clone()
	d2.Scale(0.37)
	want2, _ := SerialBuild(eng, sch, d2, DefaultTau)
	got2, _ := store.BuildFock(d2)
	if diff := got2.MaxAbsDiff(want2); diff > 1e-12 {
		t.Fatalf("replay with new density diff = %v", diff)
	}
}

func TestERIStoreCapRefusesHugeSystems(t *testing.T) {
	// A modest graphene flake at 6-31G(d) already exceeds the 2 GiB cap —
	// the paper's systems (from 0.5 nm up) are far beyond it, which is
	// exactly why only direct SCF works there.
	mol := molecule.GrapheneFlake(20)
	b, err := basis.Build(mol, "6-31g(d)")
	if err != nil {
		t.Fatal(err)
	}
	eng := integrals.NewEngine(b)
	// A fake always-pass Schwarz via tau=0 on a tiny synthetic Schwarz
	// would be slow; estimate with the real one.
	sch := integrals.ComputeSchwarz(eng)
	if est := EstimateStoreBytes(eng, sch, DefaultTau); est <= MaxStoreBytes {
		t.Fatalf("estimate %d unexpectedly fits", est)
	}
	if _, err := BuildStore(eng, sch, DefaultTau); err == nil {
		t.Fatal("expected cap refusal")
	}
}

func TestPairCacheBuilders(t *testing.T) {
	// All builders with a PairCache source must match the direct path.
	eng, sch, d := setup(t, molecule.Water(), "6-31g")
	want, _ := SerialBuild(eng, sch, d, DefaultTau)
	pc := integrals.NewPairCache(eng, 0)
	cfg := Config{Threads: 2, Quartets: pc}
	err := mpi.Run(2, func(c *mpi.Comm) {
		dx := ddi.New(c)
		// NOTE: all ranks must run the builders in the same order (each
		// build is a collective); a map literal here would randomize the
		// order per rank and cross-match collectives.
		builders := []struct {
			name string
			f    func() *linalg.Matrix
		}{
			{"mpi-only", func() *linalg.Matrix { m, _ := MPIOnlyBuild(dx, eng, sch, d, cfg); return m }},
			{"private", func() *linalg.Matrix { m, _ := PrivateFockBuild(dx, eng, sch, d, cfg); return m }},
			{"shared", func() *linalg.Matrix { m, _ := SharedFockBuild(dx, eng, sch, d, cfg); return m }},
		}
		for _, b := range builders {
			if diff := b.f().MaxAbsDiff(want); diff > 1e-10 {
				t.Errorf("%s with pair cache: diff %v", b.name, diff)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDensityScreenedBuildMatches(t *testing.T) {
	// With a realistic density the density-weighted screen must stay
	// within the screening tolerance of the plain build.
	eng, sch, d := setup(t, molecule.GrapheneFlake(4), "sto-3g")
	plain, plainStats := SerialBuild(eng, sch, d, 1e-10)
	screened, scrStats := DensityScreenedBuild(eng, sch, d, 1e-10)
	if diff := plain.MaxAbsDiff(screened); diff > 1e-7 {
		t.Fatalf("density screening drifted: %v", diff)
	}
	if scrStats.QuartetsComputed > plainStats.QuartetsComputed {
		t.Fatal("density screening computed MORE quartets")
	}
}

func TestIncrementalBuilderSCFWork(t *testing.T) {
	// Incremental builds must shrink per-iteration work as dD -> 0 while
	// reproducing the direct result.
	eng, sch, d := setup(t, molecule.Water(), "sto-3g")
	ib := NewIncrementalBuilder(eng, sch, 1e-10)
	want, _ := SerialBuild(eng, sch, d, 1e-12)
	g1, s1 := ib.Build(d)
	if diff := g1.MaxAbsDiff(want); diff > 1e-7 {
		t.Fatalf("first incremental build diff %v", diff)
	}
	// Tiny density change: the delta build must do (much) less work.
	d2 := d.Clone()
	d2.Add(0, 0, 1e-9)
	g2, s2 := ib.Build(d2)
	want2, _ := SerialBuild(eng, sch, d2, 1e-12)
	if diff := g2.MaxAbsDiff(want2); diff > 1e-6 {
		t.Fatalf("incremental drifted: %v", diff)
	}
	if s2.QuartetsComputed >= s1.QuartetsComputed {
		t.Fatalf("delta build did not shrink: %d vs %d", s2.QuartetsComputed, s1.QuartetsComputed)
	}
	// Reset forces a full rebuild.
	ib.Reset()
	_, s3 := ib.Build(d2)
	if s3.QuartetsComputed < s1.QuartetsComputed/2 {
		t.Fatalf("post-reset build suspiciously small: %d", s3.QuartetsComputed)
	}
}
