package jobs

import (
	"testing"
	"time"
)

// TestWALTraceSurvivesReplay pins the durability half of request
// tracing: a job's trace ID rides the accept record, survives a crash
// replay, survives compaction, and resurfaces on the restored job and
// its status snapshot.
func TestWALTraceSurvivesReplay(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(WALOptions{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	now := time.Unix(0, 1700000000_000000000)
	j := NewJob("job-000001", "hash-a", Spec{Molecule: "h2", Mode: ModeSerial}, now)
	j.Trace = "deadbeef00000001"
	if err := w.AppendAccept(j, now); err != nil {
		t.Fatalf("AppendAccept: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2, rep, err := OpenWAL(WALOptions{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if len(rep.Jobs) != 1 {
		t.Fatalf("replayed %d jobs, want 1", len(rep.Jobs))
	}
	rj := rep.Jobs[0]
	if rj.Trace != "deadbeef00000001" {
		t.Fatalf("replayed trace %q, want the accepted trace ID", rj.Trace)
	}

	restored := RestoreJob(rj)
	if restored.Trace != "deadbeef00000001" {
		t.Errorf("restored job trace %q", restored.Trace)
	}
	if st := restored.Snapshot(); st.TraceID != "deadbeef00000001" {
		t.Errorf("status snapshot trace %q", st.TraceID)
	}

	// Compaction rewrites the log; the trace must survive the rewrite.
	if err := w2.Compact(rep.Jobs); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	w2.Close()
	w3, rep3, err := OpenWAL(WALOptions{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("reopen after compact: %v", err)
	}
	defer w3.Close()
	if len(rep3.Jobs) != 1 || rep3.Jobs[0].Trace != "deadbeef00000001" {
		t.Fatalf("post-compaction replay lost the trace: %+v", rep3.Jobs)
	}
	if n := w3.Segments(); n < 1 {
		t.Errorf("Segments() = %d, want >= 1", n)
	}
}
