package jobs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testJob(id string, prio int) *Job {
	return NewJob(id, "hash-"+id, Spec{Priority: prio}, time.Now())
}

func TestQueueFIFOWithinPriority(t *testing.T) {
	q := NewQueue(64)
	// Interleave two priorities; within each, submission order must hold.
	for i := 0; i < 10; i++ {
		if err := q.Submit(testJob(fmt.Sprintf("lo-%d", i), 0)); err != nil {
			t.Fatal(err)
		}
		if err := q.Submit(testJob(fmt.Sprintf("hi-%d", i), 5)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for q.Len() > 0 {
		got = append(got, q.TryClaim().ID)
	}
	var want []string
	for i := 0; i < 10; i++ {
		want = append(want, fmt.Sprintf("hi-%d", i))
	}
	for i := 0; i < 10; i++ {
		want = append(want, fmt.Sprintf("lo-%d", i))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("claim order[%d] = %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestQueueBoundsAndClose(t *testing.T) {
	q := NewQueue(2)
	if err := q.Submit(testJob("a", 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(testJob("b", 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(testJob("c", 0)); err != ErrQueueFull {
		t.Fatalf("over-capacity submit: got %v, want ErrQueueFull", err)
	}
	q.Close()
	if err := q.Submit(testJob("d", 0)); err != ErrQueueClosed {
		t.Fatalf("post-close submit: got %v, want ErrQueueClosed", err)
	}
	// The backlog stays claimable after Close (drain semantics)...
	if j := q.Claim(); j == nil || j.ID != "a" {
		t.Fatalf("drain claim = %v", j)
	}
	if j := q.Claim(); j == nil || j.ID != "b" {
		t.Fatalf("drain claim 2 = %v", j)
	}
	// ...and an empty closed queue returns nil without blocking.
	if j := q.Claim(); j != nil {
		t.Fatalf("empty closed queue returned %v", j)
	}
}

func TestQueueRemove(t *testing.T) {
	q := NewQueue(8)
	for i := 0; i < 5; i++ {
		_ = q.Submit(testJob(fmt.Sprintf("j%d", i), i%2))
	}
	if !q.Remove("j2") {
		t.Fatal("Remove(j2) = false")
	}
	if q.Remove("j2") {
		t.Fatal("double Remove(j2) = true")
	}
	if q.Remove("nope") {
		t.Fatal("Remove of unknown id = true")
	}
	seen := map[string]bool{}
	for q.Len() > 0 {
		seen[q.TryClaim().ID] = true
	}
	if seen["j2"] || len(seen) != 4 {
		t.Fatalf("claims after remove: %v", seen)
	}
}

// TestQueueConcurrentSubmitCancelDrain is the -race stress promised by
// the PR: submitters, cancelers, and claiming workers race, then the
// queue is closed and drained; every job must be accounted for exactly
// once (claimed or removed), with nothing lost and nothing duplicated.
func TestQueueConcurrentSubmitCancelDrain(t *testing.T) {
	const (
		submitters     = 4
		perSubmitter   = 200
		workers        = 3
		cancelAttempts = 150
	)
	q := NewQueue(submitters * perSubmitter) // roomy: this test is about races, not backpressure

	var claimed sync.Map
	var claimedN, removedN, submittedN atomic.Int64
	var wg, workerWG sync.WaitGroup

	for w := 0; w < workers; w++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for {
				j := q.Claim()
				if j == nil {
					return
				}
				if _, dup := claimed.LoadOrStore(j.ID, true); dup {
					t.Errorf("job %s claimed twice", j.ID)
				}
				claimedN.Add(1)
			}
		}()
	}

	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				id := fmt.Sprintf("s%d-%d", s, i)
				if err := q.Submit(testJob(id, i%3)); err != nil {
					t.Errorf("submit %s: %v", id, err)
					continue
				}
				submittedN.Add(1)
			}
		}(s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < cancelAttempts; i++ {
			if q.Remove(fmt.Sprintf("s%d-%d", i%submitters, i%perSubmitter)) {
				removedN.Add(1)
			}
		}
	}()

	wg.Wait()
	q.Close()
	workerWG.Wait()

	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
	total := claimedN.Load() + removedN.Load()
	if total != submittedN.Load() {
		t.Fatalf("conservation violated: %d claimed + %d removed != %d submitted",
			claimedN.Load(), removedN.Load(), submittedN.Load())
	}
}

func TestJobFSM(t *testing.T) {
	now := time.Now()
	j := NewJob("j1", "h1", Spec{}, now)
	if j.State() != StateQueued {
		t.Fatalf("new job state = %s", j.State())
	}
	// Illegal: finishing a job that never ran.
	if err := j.MarkDone(&Outcome{}, now); err == nil {
		t.Fatal("Queued → Done should be illegal")
	}
	if err := j.MarkRunning(func() {}, now); err != nil {
		t.Fatal(err)
	}
	if j.Attempts() != 1 {
		t.Fatalf("attempts = %d", j.Attempts())
	}
	// Retry path: Running → Queued → Running.
	if err := j.Requeue(); err != nil {
		t.Fatal(err)
	}
	if err := j.MarkRunning(func() {}, now); err != nil {
		t.Fatal(err)
	}
	if j.Attempts() != 2 {
		t.Fatalf("attempts after retry = %d", j.Attempts())
	}
	if err := j.MarkDone(&Outcome{Energy: -75}, now); err != nil {
		t.Fatal(err)
	}
	if !j.State().Terminal() {
		t.Fatal("Done should be terminal")
	}
	// Terminal states are sticky.
	if err := j.Requeue(); err == nil {
		t.Fatal("Done → Queued should be illegal")
	}
	if changed, err := j.MarkCanceled("late", now); err != nil || changed {
		t.Fatalf("cancel of terminal job: changed=%v err=%v", changed, err)
	}
	st := j.Snapshot()
	if st.State != StateDone || st.Result == nil || st.Result.Energy != -75 || st.Attempts != 2 {
		t.Fatalf("snapshot = %+v", st)
	}
}

func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	c.Put("a", &Outcome{Energy: 1})
	c.Put("b", &Outcome{Energy: 2})
	if _, ok := c.Get("a"); !ok { // refresh a → b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", &Outcome{Energy: 3}) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if out, ok := c.Get("a"); !ok || out.Energy != 1 {
		t.Fatal("a lost")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestQueuePriorityAging(t *testing.T) {
	q := NewQueue(8)
	now := time.Now()
	lo := NewJob("job-000001", "a", Spec{Priority: 0}, now)
	hi1 := NewJob("job-000002", "b", Spec{Priority: 5}, now)
	hi2 := NewJob("job-000003", "c", Spec{Priority: 5}, now)
	if err := q.Submit(lo); err != nil {
		t.Fatal(err)
	}
	// Let the low-priority job accumulate real queue wait before the
	// high-priority stream arrives — aging is driven by enqueue time.
	time.Sleep(120 * time.Millisecond)
	for _, j := range []*Job{hi1, hi2} {
		if err := q.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	// Without aging the low-priority job drains last.
	if got := q.TryClaim(); got.ID != hi1.ID {
		t.Fatalf("first claim %s, want %s", got.ID, hi1.ID)
	}
	// lo has waited >= 2 intervals of 50ms: 0 + 2*3 = 6 > 5, so it now
	// outranks the remaining high-priority job (which has waited ~0).
	if changed := q.Age(time.Now(), 50*time.Millisecond, 3); changed < 1 {
		t.Fatalf("Age changed %d items, want >= 1", changed)
	}
	if got := q.TryClaim(); got.ID != lo.ID {
		t.Fatalf("post-aging claim %s, want starved job %s", got.ID, lo.ID)
	}
	if got := q.TryClaim(); got.ID != hi2.ID {
		t.Fatalf("final claim %s, want %s", got.ID, hi2.ID)
	}
}

func TestQueueForceSubmitBypassesCap(t *testing.T) {
	q := NewQueue(1)
	now := time.Now()
	if err := q.Submit(NewJob("job-000001", "a", Spec{}, now)); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(NewJob("job-000002", "b", Spec{}, now)); err != ErrQueueFull {
		t.Fatalf("over-cap Submit: %v, want ErrQueueFull", err)
	}
	if err := q.ForceSubmit(NewJob("job-000003", "c", Spec{}, now)); err != nil {
		t.Fatalf("ForceSubmit: %v", err)
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d, want 2", q.Len())
	}
	q.Close()
	if err := q.ForceSubmit(NewJob("job-000004", "d", Spec{}, now)); err != ErrQueueClosed {
		t.Fatalf("ForceSubmit after close: %v, want ErrQueueClosed", err)
	}
}
