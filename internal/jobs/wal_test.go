package jobs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// walFixture writes a small but representative log: three jobs covering
// every lifecycle shape (done with outcome, failed after retry, still
// queued at "crash" time), returning the directory.
func walFixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	w, rep, err := OpenWAL(WALOptions{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	if len(rep.Jobs) != 0 {
		t.Fatalf("fresh dir replayed %d jobs", len(rep.Jobs))
	}
	now := time.Unix(0, 1700000000_000000000)
	mk := func(id, hash string, prio int) *Job {
		return NewJob(id, hash, Spec{Molecule: "h2", Mode: ModeSerial, Priority: prio}, now)
	}
	j1, j2, j3 := mk("job-000001", "hash-a", 0), mk("job-000002", "hash-b", 1), mk("job-000003", "hash-c", 0)
	out := &Outcome{Energy: -1.1167, Converged: true, Iterations: 9, NumBF: 2, Mode: ModeSerial}

	steps := []error{
		w.AppendAccept(j1, now),
		w.AppendState(j1.ID, StateRunning, 1, "", nil, now),
		w.AppendState(j1.ID, StateDone, 1, "", out, now),
		w.AppendAccept(j2, now),
		w.AppendState(j2.ID, StateRunning, 1, "", nil, now),
		w.AppendState(j2.ID, StateQueued, 1, "", nil, now), // retry requeue
		w.AppendState(j2.ID, StateRunning, 2, "", nil, now),
		w.AppendState(j2.ID, StateFailed, 2, "did not converge", nil, now),
		w.AppendAccept(j3, now),
		w.AppendState(j3.ID, StateRunning, 1, "", nil, now),
	}
	for i, err := range steps {
		if err != nil {
			t.Fatalf("append step %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return dir
}

func TestWALReplayRoundTrip(t *testing.T) {
	dir := walFixture(t)
	rep, _, err := ReplayDir(dir)
	if err != nil {
		t.Fatalf("ReplayDir: %v", err)
	}
	if rep.Corrupt != nil {
		t.Fatalf("clean log reported corruption: %v", rep.Corrupt)
	}
	if len(rep.Jobs) != 3 || rep.Records != 10 {
		t.Fatalf("replayed %d jobs / %d records, want 3 / 10", len(rep.Jobs), rep.Records)
	}
	if rep.MaxID != 3 {
		t.Errorf("MaxID = %d, want 3", rep.MaxID)
	}
	byID := map[string]*ReplayJob{}
	for _, j := range rep.Jobs {
		byID[j.ID] = j
	}
	if j := byID["job-000001"]; j.State != StateDone || j.Outcome == nil || j.Outcome.Energy != -1.1167 {
		t.Errorf("job-000001 replayed wrong: %+v", j)
	}
	if j := byID["job-000002"]; j.State != StateFailed || j.Attempts != 2 || j.Error == "" {
		t.Errorf("job-000002 replayed wrong: %+v", j)
	}
	// The job running at crash time is pending — and only it.
	pending := rep.Pending()
	if len(pending) != 1 || pending[0].ID != "job-000003" {
		t.Fatalf("Pending() = %v, want exactly job-000003", pending)
	}
	// A restored pending job re-enters the FSM as Queued with its attempt
	// count intact.
	j := RestoreJob(pending[0])
	if j.State() != StateQueued || j.Attempts() != 1 {
		t.Errorf("restored job state %s attempts %d, want queued/1", j.State(), j.Attempts())
	}
}

// TestWALCrashPointTruncation truncates the log at EVERY byte boundary
// and asserts replay never panics, never invents jobs, never loses a job
// whose accept record is intact, and never moves a job to done without
// the full done record — the consistent-prefix property.
func TestWALCrashPointTruncation(t *testing.T) {
	dir := walFixture(t)
	seg := filepath.Join(dir, segName(1))
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, _ := ReplayDir(dir)

	// Record boundaries: a cut exactly between records is a legitimately
	// shorter log (the tail was simply never written); a cut anywhere else
	// tears a record and MUST be reported as corruption.
	boundaries := map[int]int{} // byte offset → records before it
	{
		off := bytesIndexByte(full, '\n') + 1 // past the segment header
		boundaries[off] = 0
		n := 0
		for off < len(full) {
			nl := bytesIndexByte(full[off:], '\n')
			var bodyLen int
			var crc uint32
			if _, err := fmtSscanf(string(full[off:off+nl]), &bodyLen, &crc); err != nil {
				t.Fatalf("fixture scan: %v", err)
			}
			off += nl + 1 + bodyLen + 1
			n++
			boundaries[off] = n
		}
	}

	tdir := t.TempDir()
	tseg := filepath.Join(tdir, segName(1))
	prevRecords := -1
	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(tseg, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rep, _, err := ReplayDir(tdir) // must never panic
		if err != nil {
			t.Fatalf("cut %d: I/O error: %v", cut, err)
		}
		atBoundary, nBefore := false, 0
		if n, ok := boundaries[cut]; ok {
			atBoundary, nBefore = true, n
		}
		if atBoundary {
			if rep.Corrupt != nil || rep.Records != nBefore {
				t.Fatalf("cut %d (boundary): %d records, corrupt=%v; want %d records, clean",
					cut, rep.Records, rep.Corrupt, nBefore)
			}
		} else if rep.Corrupt == nil {
			t.Fatalf("cut %d tears a record but replay reported no corruption (%d records)",
				cut, rep.Records)
		}
		if rep.Records < prevRecords {
			t.Fatalf("cut %d: replay went backwards (%d < %d records) — not a prefix",
				cut, rep.Records, prevRecords)
		}
		prevRecords = rep.Records
		if len(rep.Jobs) > len(ref.Jobs) {
			t.Fatalf("cut %d: invented %d jobs", cut, len(rep.Jobs)-len(ref.Jobs))
		}
		for i, j := range rep.Jobs {
			if j.ID != ref.Jobs[i].ID {
				t.Fatalf("cut %d: job %d is %s, reference has %s — not a prefix", cut, i, j.ID, ref.Jobs[i].ID)
			}
			// Never double-run a done job: done implies the recorded outcome
			// survived intact.
			if j.State == StateDone && (j.Outcome == nil || j.Outcome.Energy != ref.Jobs[i].Outcome.Energy) {
				t.Fatalf("cut %d: job %s done without an intact outcome", cut, j.ID)
			}
		}
		for _, p := range rep.Pending() {
			if p.State.Terminal() {
				t.Fatalf("cut %d: terminal job %s in Pending()", cut, p.ID)
			}
		}
	}
}

// TestWALCrashPointBitFlip flips one bit at every byte of the log and
// asserts replay either still yields the reference state (flip landed in
// already-discardable tail — impossible here, so really: never) or
// reports corruption with a consistent prefix. Single-bit damage must
// never pass silently.
func TestWALCrashPointBitFlip(t *testing.T) {
	dir := walFixture(t)
	seg := filepath.Join(dir, segName(1))
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, _ := ReplayDir(dir)

	tdir := t.TempDir()
	tseg := filepath.Join(tdir, segName(1))
	buf := make([]byte, len(full))
	for i := 0; i < len(full); i++ {
		for _, bit := range []uint{0, 3, 7} {
			copy(buf, full)
			buf[i] ^= 1 << bit
			if err := os.WriteFile(tseg, buf, 0o644); err != nil {
				t.Fatal(err)
			}
			rep, _, err := ReplayDir(tdir) // must never panic
			if err != nil {
				t.Fatalf("flip %d.%d: I/O error: %v", i, bit, err)
			}
			if rep.Corrupt == nil && rep.Records != ref.Records {
				t.Fatalf("flip %d.%d: silent record loss (%d of %d)", i, bit, rep.Records, ref.Records)
			}
			if len(rep.Jobs) > len(ref.Jobs) {
				t.Fatalf("flip %d.%d: invented jobs", i, bit)
			}
			for j, rj := range rep.Jobs {
				if rj.ID != ref.Jobs[j].ID {
					t.Fatalf("flip %d.%d: job %d is %s, want prefix job %s", i, bit, j, rj.ID, ref.Jobs[j].ID)
				}
				if rj.State == StateDone && rj.Outcome == nil {
					t.Fatalf("flip %d.%d: done job %s lost its outcome silently", i, bit, rj.ID)
				}
			}
		}
	}
}

func TestWALSegmentRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segment bound forces rotation nearly every record.
	w, _, err := OpenWAL(WALOptions{Dir: dir, SegmentBytes: 256, NoSync: true, KeepDone: 2})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	out := &Outcome{Energy: -1, Converged: true}
	for i := 0; i < 8; i++ {
		j := NewJob(segName(i), "h", Spec{Molecule: "h2"}, now)
		j.ID = walIDForTest(i)
		if err := w.AppendAccept(j, now); err != nil {
			t.Fatal(err)
		}
		if err := w.AppendState(j.ID, StateRunning, 1, "", nil, now); err != nil {
			t.Fatal(err)
		}
		if err := w.AppendState(j.ID, StateDone, 1, "", out, now); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore := countSegs(t, dir)
	if segsBefore < 3 {
		t.Fatalf("only %d segments after 24 records with 256-byte bound", segsBefore)
	}
	rep, _, err := ReplayDir(dir)
	if err != nil || rep.Corrupt != nil {
		t.Fatalf("replay: %v / %v", err, rep.Corrupt)
	}
	if len(rep.Jobs) != 8 {
		t.Fatalf("replayed %d jobs, want 8", len(rep.Jobs))
	}
	// Compact: KeepDone=2 keeps only the most recent two terminal jobs.
	if err := w.Compact(rep.Jobs); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if n := countSegs(t, dir); n != 1 {
		t.Fatalf("%d segments after compaction, want 1", n)
	}
	rep2, _, err := ReplayDir(dir)
	if err != nil || rep2.Corrupt != nil {
		t.Fatalf("post-compact replay: %v / %v", err, rep2.Corrupt)
	}
	if len(rep2.Jobs) != 2 {
		t.Fatalf("post-compact replay has %d jobs, want 2", len(rep2.Jobs))
	}
	for _, j := range rep2.Jobs {
		if j.State != StateDone || j.Outcome == nil {
			t.Errorf("compacted job %s: state %s outcome %v", j.ID, j.State, j.Outcome)
		}
	}
}

func TestWALDisableDropsAppends(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(WALOptions{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	j := NewJob("job-000001", "h", Spec{Molecule: "h2"}, now)
	if err := w.AppendAccept(j, now); err != nil {
		t.Fatal(err)
	}
	w.Disable() // the SIGKILL instant
	j2 := NewJob("job-000002", "h2", Spec{Molecule: "h2"}, now)
	if err := w.AppendAccept(j2, now); err != nil {
		t.Fatalf("post-kill append errored instead of no-op: %v", err)
	}
	_ = w.Close()
	rep, _, err := ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 1 || rep.Jobs[0].ID != "job-000001" {
		t.Fatalf("post-kill state leaked to disk: %+v", rep.Jobs)
	}
}

func walIDForTest(i int) string { return FmtJobID(uint64(i + 1)) }

// bytesIndexByte and fmtSscanf keep the boundary scanner readable.
func bytesIndexByte(b []byte, c byte) int { return bytes.IndexByte(b, c) }

func fmtSscanf(header string, bodyLen *int, crc *uint32) (int, error) {
	return fmt.Sscanf(header, "rec len=%d crc32=%08x", bodyLen, crc)
}

func countSegs(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return len(entries)
}
