package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Write-ahead job log: every accepted Spec and every lifecycle
// transition is appended to a CRC-protected, fsync'd, segmented log
// before the corresponding in-memory state becomes client-visible, so a
// crashed server replays the log on boot and loses nothing that was
// acknowledged. The framing follows the HFCKPT checkpoint idiom
// (internal/scf/checkpoint.go): a versioned ASCII header whose length
// field makes truncation detectable before parsing, and a CRC-32 per
// record that makes any single-bit flip detectable.
//
// Segment format (one file, wal-NNNNNN.log):
//
//	HFWAL v1 seg=N\n                     segment header
//	rec len=N crc32=XXXXXXXX\n<body>\n    repeated; CRC-32 (IEEE) of body
//
// Replay folds records in file order. A torn or bit-flipped record stops
// replay at that point: everything before it is a consistent prefix
// (each record is atomic — it either fully counts or not at all), and
// the damage is reported, never panicked on. A record can only be torn
// at the tail of the last segment in a crash; corruption anywhere else
// is bit rot, which replay also refuses to read past — conservative by
// design, since records after a rotten region may reference state the
// rotten region created.

// walMagic opens every segment.
const walMagic = "HFWAL"

// Record types.
const (
	walAccept = "accept" // a Spec admitted to the queue
	walState  = "state"  // a lifecycle transition of an accepted job
)

// walRecord is one serialized log entry.
type walRecord struct {
	T       string   `json:"t"`
	ID      string   `json:"id"`
	Hash    string   `json:"hash,omitempty"`
	Spec    *Spec    `json:"spec,omitempty"`  // accept only
	State   State    `json:"state,omitempty"` // state only
	Attempt int      `json:"attempt,omitempty"`
	Err     string   `json:"err,omitempty"`
	Out     *Outcome `json:"out,omitempty"`
	TS      int64    `json:"ts,omitempty"`    // unix nanoseconds
	Trace   string   `json:"trace,omitempty"` // accept only: request trace ID
}

// WALOptions shapes a WAL. Zero values take the documented defaults.
type WALOptions struct {
	Dir          string // segment directory (created if absent); required
	SegmentBytes int64  // rotate past this many bytes; default 1 MiB
	NoSync       bool   // skip the per-append fsync (tests, benchmarks)
	KeepDone     int    // terminal jobs Compact retains; default 512
	Tel          *telemetry.Session
}

func (o WALOptions) withDefaults() WALOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.KeepDone <= 0 {
		o.KeepDone = 512
	}
	return o
}

// WAL is an open write-ahead job log. All appends are serialized; a
// disabled WAL (crash simulation, see Disable) turns every append into a
// no-op exactly the way a SIGKILL would — nothing after the kill instant
// reaches disk.
type WAL struct {
	opt WALOptions

	mu       sync.Mutex
	f        *os.File
	seg      int
	size     int64
	disabled bool
}

// segName renders a segment file name; the fixed-width numeric suffix
// makes lexicographic directory order equal replay order.
func segName(n int) string { return fmt.Sprintf("wal-%06d.log", n) }

// OpenWAL replays every existing segment in dir and opens a fresh
// segment for appends. The returned Replay carries the reconstructed job
// table (and a description of any corruption found; see Replay.Corrupt).
// A new segment is always started so appends never extend a possibly
// torn tail.
func OpenWAL(opt WALOptions) (*WAL, *Replay, error) {
	opt = opt.withDefaults()
	if opt.Dir == "" {
		return nil, nil, fmt.Errorf("jobs: wal: no directory configured")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("jobs: wal: %w", err)
	}
	rep, lastSeg, err := ReplayDir(opt.Dir)
	if err != nil {
		return nil, nil, err
	}
	w := &WAL{opt: opt, seg: lastSeg}
	if err := w.rotateLocked(); err != nil {
		return nil, nil, err
	}
	if tel := opt.Tel; tel != nil {
		tel.Counter("svc.wal.replayed_jobs").Add(int64(len(rep.Jobs)))
		tel.Counter("svc.wal.replayed_records").Add(int64(rep.Records))
		if rep.DiscardedBytes > 0 {
			tel.Counter("svc.wal.corrupt_tail_bytes").Add(int64(rep.DiscardedBytes))
		}
	}
	return w, rep, nil
}

// rotateLocked closes the current segment and opens the next one. The
// caller holds mu (or is the constructor).
func (w *WAL) rotateLocked() error {
	if w.f != nil {
		if !w.opt.NoSync {
			_ = w.f.Sync()
		}
		_ = w.f.Close()
	}
	w.seg++
	path := filepath.Join(w.opt.Dir, segName(w.seg))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: wal: opening segment: %w", err)
	}
	header := fmt.Sprintf("%s v1 seg=%d\n", walMagic, w.seg)
	if _, err := f.WriteString(header); err != nil {
		f.Close()
		return fmt.Errorf("jobs: wal: writing segment header: %w", err)
	}
	w.f = f
	w.size = int64(len(header))
	w.opt.Tel.Gauge("svc.wal.segment").Set(float64(w.seg))
	return nil
}

// append frames, writes, and (unless NoSync) fsyncs one record.
func (w *WAL) append(rec walRecord) error {
	if w == nil {
		return nil
	}
	body, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: wal: encoding record: %w", err)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "rec len=%d crc32=%08x\n", len(body), crc32.ChecksumIEEE(body))
	buf.Write(body)
	buf.WriteByte('\n')

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.disabled {
		return nil
	}
	if w.f == nil {
		return fmt.Errorf("jobs: wal: closed")
	}
	if w.size > w.opt.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := w.f.Write(buf.Bytes())
	w.size += int64(n)
	if err != nil {
		return fmt.Errorf("jobs: wal: append: %w", err)
	}
	if !w.opt.NoSync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("jobs: wal: fsync: %w", err)
		}
	}
	if tel := w.opt.Tel; tel != nil {
		tel.Counter("svc.wal.appends").Add(1)
		tel.Counter("svc.wal.bytes").Add(int64(buf.Len()))
	}
	return nil
}

// AppendAccept logs the admission of job j — call before acknowledging
// the submission to the client.
func (w *WAL) AppendAccept(j *Job, now time.Time) error {
	if w == nil {
		return nil
	}
	spec := j.Spec
	return w.append(walRecord{T: walAccept, ID: j.ID, Hash: j.Hash, Spec: &spec,
		TS: now.UnixNano(), Trace: j.Trace})
}

// AppendState logs a lifecycle transition — call before the transition
// becomes client-visible (persist, then serve).
func (w *WAL) AppendState(id string, st State, attempt int, errMsg string, out *Outcome, now time.Time) error {
	if w == nil {
		return nil
	}
	return w.append(walRecord{T: walState, ID: id, State: st, Attempt: attempt,
		Err: errMsg, Out: out, TS: now.UnixNano()})
}

// Disable makes every subsequent append a silent no-op — the crash
// simulator's SIGKILL point: in-memory state may keep evolving for a few
// microseconds while goroutines unwind, but none of it reaches disk.
func (w *WAL) Disable() {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.disabled = true
	w.mu.Unlock()
}

// Segments returns how many wal-*.log segment files are on disk —
// surfaced by the readiness endpoint so operators can see compaction
// keeping up.
func (w *WAL) Segments() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	entries, err := os.ReadDir(w.opt.Dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		var seg int
		if _, err := fmt.Sscanf(e.Name(), "wal-%06d.log", &seg); err == nil && strings.HasSuffix(e.Name(), ".log") {
			n++
		}
	}
	return n
}

// Close syncs and closes the current segment.
func (w *WAL) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	if !w.opt.NoSync {
		_ = w.f.Sync()
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// Compact rewrites the log to a single fresh segment holding the given
// authoritative job table — non-terminal jobs in full, plus the most
// recent KeepDone terminal jobs (so replay still dedups recent
// resubmissions against their recorded results) — then deletes every
// older segment. Write-new-then-delete-old ordering means a crash during
// compaction leaves a superset of the needed records, never a subset.
func (w *WAL) Compact(table []*ReplayJob) error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.disabled || w.f == nil {
		return nil
	}
	// Partition and bound the terminal history.
	var live, done []*ReplayJob
	for _, rj := range table {
		if rj.State.Terminal() {
			done = append(done, rj)
		} else {
			live = append(live, rj)
		}
	}
	if len(done) > w.opt.KeepDone {
		done = done[len(done)-w.opt.KeepDone:]
	}
	oldest := w.firstSegLocked()
	if err := w.rotateLocked(); err != nil {
		return err
	}
	for _, rj := range append(live, done...) {
		spec := rj.Spec
		if err := w.appendLocked(walRecord{T: walAccept, ID: rj.ID, Hash: rj.Hash,
			Spec: &spec, TS: rj.Submitted.UnixNano(), Trace: rj.Trace}); err != nil {
			return err
		}
		if rj.State != StateQueued {
			if err := w.appendLocked(walRecord{T: walState, ID: rj.ID, State: rj.State,
				Attempt: rj.Attempts, Err: rj.Error, Out: rj.Outcome,
				TS: rj.Finished.UnixNano()}); err != nil {
				return err
			}
		}
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("jobs: wal: compact fsync: %w", err)
	}
	// The new segment is durable; the old ones are now redundant.
	for seg := oldest; seg < w.seg; seg++ {
		_ = os.Remove(filepath.Join(w.opt.Dir, segName(seg)))
	}
	w.opt.Tel.Counter("svc.wal.compactions").Add(1)
	return nil
}

// appendLocked is append without the lock or rotation — used by Compact,
// which already holds mu and wants all records in one segment.
func (w *WAL) appendLocked(rec walRecord) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: wal: encoding record: %w", err)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "rec len=%d crc32=%08x\n", len(body), crc32.ChecksumIEEE(body))
	buf.Write(body)
	buf.WriteByte('\n')
	n, err := w.f.Write(buf.Bytes())
	w.size += int64(n)
	if err != nil {
		return fmt.Errorf("jobs: wal: append: %w", err)
	}
	return nil
}

// firstSegLocked returns the lowest segment number present on disk (or
// the current one when the directory scan fails).
func (w *WAL) firstSegLocked() int {
	entries, err := os.ReadDir(w.opt.Dir)
	if err != nil {
		return w.seg
	}
	first := w.seg
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "wal-%06d.log", &n); err == nil && n < first {
			first = n
		}
	}
	return first
}

// ReplayJob is one job reconstructed from the log.
type ReplayJob struct {
	ID        string
	Hash      string
	Spec      Spec
	Trace     string // original request trace ID, surviving replay
	State     State
	Attempts  int
	Error     string
	Outcome   *Outcome
	Submitted time.Time
	Finished  time.Time
}

// Replay is the result of folding a WAL directory: the job table in
// acceptance order plus an account of what was read and what was
// damaged.
type Replay struct {
	Jobs     []*ReplayJob
	MaxID    uint64 // highest numeric job-NNNNNN suffix seen
	Records  int
	Segments int
	// Corrupt describes the first framing or checksum violation hit, if
	// any; Jobs then holds the consistent prefix before it. A clean crash
	// (torn final record) and bit rot both land here — replay never
	// panics and never reads past damage.
	Corrupt        error
	DiscardedBytes int
}

// Pending returns the non-terminal jobs — the backlog to re-enqueue on
// boot — in acceptance order. A job whose recorded state is done, failed,
// or canceled is never in this list: replay dedups finished work against
// the log instead of running it twice.
func (r *Replay) Pending() []*ReplayJob {
	var out []*ReplayJob
	for _, j := range r.Jobs {
		if !j.State.Terminal() {
			out = append(out, j)
		}
	}
	return out
}

// DoneCount returns how many replayed jobs carry a recorded terminal
// done state.
func (r *Replay) DoneCount() int {
	n := 0
	for _, j := range r.Jobs {
		if j.State == StateDone {
			n++
		}
	}
	return n
}

// ReplayDir folds every segment in dir (no WAL handle needed — usable
// for offline inspection). It returns the replay, the highest segment
// number seen, and an error only for I/O failures; corruption is
// reported in Replay.Corrupt with the consistent prefix retained.
func ReplayDir(dir string) (*Replay, int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return &Replay{}, 0, nil
		}
		return nil, 0, fmt.Errorf("jobs: wal: reading %s: %w", dir, err)
	}
	var segs []string
	lastSeg := 0
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "wal-%06d.log", &n); err == nil && strings.HasSuffix(e.Name(), ".log") {
			segs = append(segs, e.Name())
			if n > lastSeg {
				lastSeg = n
			}
		}
	}
	sort.Strings(segs)

	rep := &Replay{Segments: len(segs)}
	byID := make(map[string]*ReplayJob)
	for _, name := range segs {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, 0, fmt.Errorf("jobs: wal: reading %s: %w", name, err)
		}
		if stop := replaySegment(rep, byID, name, raw); stop {
			break
		}
	}
	return rep, lastSeg, nil
}

// replaySegment folds one segment's records into rep, returning true if
// replay must stop (corruption — nothing after it is trustworthy).
func replaySegment(rep *Replay, byID map[string]*ReplayJob, name string, raw []byte) bool {
	corrupt := func(off int, format string, args ...any) bool {
		rep.Corrupt = fmt.Errorf("jobs: wal: %s at byte %d: %s", name, off, fmt.Sprintf(format, args...))
		rep.DiscardedBytes += len(raw) - off
		return true
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return corrupt(0, "segment header truncated")
	}
	var version, seg int
	if _, err := fmt.Sscanf(string(raw[:nl]), walMagic+" v%d seg=%d", &version, &seg); err != nil {
		return corrupt(0, "malformed segment header %q", string(raw[:nl]))
	}
	if version != 1 {
		return corrupt(0, "unsupported wal version %d (this build reads v1)", version)
	}
	off := nl + 1
	for off < len(raw) {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			return corrupt(off, "torn record header")
		}
		header := string(raw[off : off+nl])
		var bodyLen int
		var storedCRC uint32
		// Strict match: leniency here would let a bit flip in the framing
		// itself slip through.
		if _, err := fmt.Sscanf(header, "rec len=%d crc32=%08x", &bodyLen, &storedCRC); err != nil ||
			header != fmt.Sprintf("rec len=%d crc32=%08x", bodyLen, storedCRC) {
			return corrupt(off, "malformed record header %q", header)
		}
		bodyStart := off + nl + 1
		if bodyLen < 0 || bodyStart+bodyLen+1 > len(raw) {
			return corrupt(off, "torn record: header claims %d body bytes, %d present",
				bodyLen, len(raw)-bodyStart)
		}
		body := raw[bodyStart : bodyStart+bodyLen]
		if raw[bodyStart+bodyLen] != '\n' {
			return corrupt(off, "record missing terminator")
		}
		if got := crc32.ChecksumIEEE(body); got != storedCRC {
			return corrupt(off, "record CRC mismatch: stored %08x, computed %08x (bit-flipped on disk?)",
				storedCRC, got)
		}
		var rec walRecord
		if err := json.Unmarshal(body, &rec); err != nil {
			return corrupt(off, "record body unreadable despite valid CRC: %v", err)
		}
		foldRecord(rep, byID, rec)
		rep.Records++
		off = bodyStart + bodyLen + 1
	}
	return false
}

// foldRecord applies one valid record to the job table. Records that
// reference unknown jobs or make illegal transitions are tolerated (the
// table keeps its last consistent view): the log is an append-only
// journal, and a replayer that crashed mid-compaction may legitimately
// see a terminal record twice.
func foldRecord(rep *Replay, byID map[string]*ReplayJob, rec walRecord) {
	switch rec.T {
	case walAccept:
		if rec.Spec == nil || rec.ID == "" {
			return
		}
		if _, dup := byID[rec.ID]; dup {
			return // compaction crash artifact: same accept twice
		}
		rj := &ReplayJob{ID: rec.ID, Hash: rec.Hash, Spec: *rec.Spec, Trace: rec.Trace,
			State: StateQueued, Submitted: time.Unix(0, rec.TS)}
		byID[rec.ID] = rj
		rep.Jobs = append(rep.Jobs, rj)
		var n uint64
		if _, err := fmt.Sscanf(rec.ID, "job-%d", &n); err == nil && n > rep.MaxID {
			rep.MaxID = n
		}
	case walState:
		rj := byID[rec.ID]
		if rj == nil || rj.State.Terminal() {
			return // unknown job or a duplicate terminal record: keep the first
		}
		rj.State = rec.State
		if rec.Attempt > rj.Attempts {
			rj.Attempts = rec.Attempt
		}
		if rec.Err != "" {
			rj.Error = rec.Err
		}
		if rec.Out != nil {
			rj.Outcome = rec.Out
		}
		if rj.State.Terminal() {
			rj.Finished = time.Unix(0, rec.TS)
		}
	}
}
