package jobs

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// State is a job lifecycle state.
type State string

// The job lifecycle FSM. Legal transitions:
//
//	Queued  → Running   (claimed by a worker)
//	Queued  → Canceled  (canceled while waiting)
//	Running → Done      (run succeeded)
//	Running → Failed    (run failed, retry budget exhausted)
//	Running → Canceled  (context canceled mid-run)
//	Running → Queued    (retryable failure, budget remaining)
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether a job in state s will never change state again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// legalTransitions enumerates the FSM edges; transition() rejects
// anything not listed, so an illegal edge is a bug surfaced loudly
// rather than a silently corrupted lifecycle.
var legalTransitions = map[State][]State{
	StateQueued:  {StateRunning, StateCanceled},
	StateRunning: {StateDone, StateFailed, StateCanceled, StateQueued},
}

// Outcome is the result payload of a completed job — the subset of an
// SCF Result that serializes compactly and caches safely.
type Outcome struct {
	Energy     float64 `json:"energy"`              // total energy, hartree
	Converged  bool    `json:"converged"`           // SCF convergence flag
	Iterations int     `json:"iterations"`          // SCF iterations spent
	NumBF      int     `json:"num_basis_functions"` // basis dimension
	Restarts   int     `json:"restarts,omitempty"`  // resilient-driver shrink-restarts
	WallMS     float64 `json:"wall_ms"`             // run wall time (excludes queue wait)
	Mode       string  `json:"mode"`                // mode that produced the result
}

// Job is one tracked calculation flowing through the queue and worker
// pool. All mutable state is behind mu; accessors return snapshots.
type Job struct {
	ID   string // service-assigned, unique per server instance
	Hash string // canonical content hash (see Spec.CanonicalHash)
	Spec Spec   // normalized spec

	// Trace is the request trace ID minted (or propagated) at ingress.
	// It is set once before the job is published to the queue/registry
	// and immutable afterwards, so readers need no lock. It is not part
	// of Spec: two requests for the same calculation share a canonical
	// hash but carry distinct traces.
	Trace string

	mu        sync.Mutex
	state     State
	attempts  int  // run attempts started (1 = first try)
	cached    bool // outcome served from the result cache
	outcome   *Outcome
	errMsg    string
	cancel    context.CancelFunc // live only while Running
	submitted time.Time
	started   time.Time // first MarkRunning
	finished  time.Time // terminal transition
}

// FmtJobID renders the canonical job ID for a numeric sequence value —
// the shared format the service mints and the WAL replay parses back.
func FmtJobID(n uint64) string { return fmt.Sprintf("job-%06d", n) }

// NewJob returns a Queued job.
func NewJob(id, hash string, spec Spec, now time.Time) *Job {
	return &Job{ID: id, Hash: hash, Spec: spec, state: StateQueued, submitted: now}
}

// NewCachedJob returns a job born Done with a cache-served outcome, so a
// cache hit still yields a GET-able record.
func NewCachedJob(id, hash string, spec Spec, out *Outcome, now time.Time) *Job {
	return &Job{ID: id, Hash: hash, Spec: spec, state: StateDone, cached: true,
		outcome: out, submitted: now, started: now, finished: now}
}

// RestoreJob reconstructs a job from a WAL replay record. A non-terminal
// recorded state (queued or running at crash time) restores as Queued —
// the crashed attempt never finished, so the job goes back through the
// FSM from the top; its attempt count survives so retry budgets span
// crashes.
func RestoreJob(rj *ReplayJob) *Job {
	j := &Job{ID: rj.ID, Hash: rj.Hash, Spec: rj.Spec, Trace: rj.Trace,
		state: rj.State, attempts: rj.Attempts, errMsg: rj.Error,
		outcome: rj.Outcome, submitted: rj.Submitted, finished: rj.Finished}
	if !rj.State.Terminal() {
		j.state = StateQueued
	}
	return j
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Attempts returns how many run attempts have started.
func (j *Job) Attempts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

// transition moves the FSM to target, enforcing the edge table. The
// caller holds j.mu.
func (j *Job) transition(to State) error {
	for _, t := range legalTransitions[j.state] {
		if t == to {
			j.state = to
			return nil
		}
	}
	return fmt.Errorf("jobs: illegal transition %s → %s for job %s", j.state, to, j.ID)
}

// MarkRunning moves Queued → Running, recording the attempt and the
// cancel function that aborts the in-flight run.
func (j *Job) MarkRunning(cancel context.CancelFunc, now time.Time) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.transition(StateRunning); err != nil {
		return err
	}
	j.attempts++
	j.cancel = cancel
	if j.started.IsZero() {
		j.started = now
	}
	return nil
}

// MarkDone moves Running → Done with the outcome.
func (j *Job) MarkDone(out *Outcome, now time.Time) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.transition(StateDone); err != nil {
		return err
	}
	j.outcome = out
	j.cancel = nil
	j.finished = now
	return nil
}

// MarkFailed moves Running → Failed with the error message.
func (j *Job) MarkFailed(msg string, now time.Time) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.transition(StateFailed); err != nil {
		return err
	}
	j.errMsg = msg
	j.cancel = nil
	j.finished = now
	return nil
}

// MarkCanceled moves Queued/Running → Canceled. Canceling an
// already-terminal job is a no-op reported via the bool.
func (j *Job) MarkCanceled(msg string, now time.Time) (bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false, nil
	}
	if err := j.transition(StateCanceled); err != nil {
		return false, err
	}
	j.errMsg = msg
	j.cancel = nil
	j.finished = now
	return true, nil
}

// Requeue moves Running → Queued for a bounded retry.
func (j *Job) Requeue() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.transition(StateQueued); err != nil {
		return err
	}
	j.cancel = nil
	return nil
}

// Cancel requests cancellation: it aborts an in-flight run's context (the
// worker then records the terminal state) and reports whether a live run
// was signaled. Queued jobs must be canceled via MarkCanceled after
// removal from the queue.
func (j *Job) Cancel() bool {
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
		return true
	}
	return false
}

// Status is the JSON view of a job served by the HTTP API.
type Status struct {
	ID          string   `json:"id"`
	Hash        string   `json:"hash"`
	State       State    `json:"state"`
	Cached      bool     `json:"cached,omitempty"`
	Attempts    int      `json:"attempts,omitempty"`
	Error       string   `json:"error,omitempty"`
	Result      *Outcome `json:"result,omitempty"`
	SubmittedAt string   `json:"submitted_at,omitempty"`
	QueueWaitMS float64  `json:"queue_wait_ms,omitempty"`
	TotalMS     float64  `json:"total_ms,omitempty"`
	Priority    int      `json:"priority,omitempty"`
	Molecule    string   `json:"molecule,omitempty"`
	Basis       string   `json:"basis,omitempty"`
	Mode        string   `json:"mode,omitempty"`
	TraceID     string   `json:"trace_id,omitempty"`
}

// Snapshot returns a point-in-time Status.
func (j *Job) Snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.ID, Hash: j.Hash, State: j.state, Cached: j.cached,
		Attempts: j.attempts, Error: j.errMsg, Result: j.outcome,
		Priority: j.Spec.Priority, Molecule: j.Spec.Molecule,
		Basis: j.Spec.Basis, Mode: j.Spec.Mode, TraceID: j.Trace,
	}
	if !j.submitted.IsZero() {
		st.SubmittedAt = j.submitted.UTC().Format(time.RFC3339Nano)
		if !j.started.IsZero() {
			st.QueueWaitMS = float64(j.started.Sub(j.submitted)) / float64(time.Millisecond)
		}
		if !j.finished.IsZero() {
			st.TotalMS = float64(j.finished.Sub(j.submitted)) / float64(time.Millisecond)
		}
	}
	return st
}
