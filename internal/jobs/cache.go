package jobs

import (
	"container/list"
	"sync"

	"repro/internal/telemetry"
)

// Cache is a concurrency-safe LRU result cache keyed by the canonical
// content hash. A converged SCF result is deterministic for a given
// canonical spec, so cache entries never expire — only capacity evicts.
type Cache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	hits   int64
	miss   int64
	evicts int64

	// Optional telemetry handles fed alongside the internal counts, so
	// cache effectiveness is visible at runtime through /metrics rather
	// than only post-mortem through Stats.
	hitC, missC, evictC *telemetry.Counter
}

type cacheEntry struct {
	hash string
	out  *Outcome
}

// NewCache returns an LRU cache holding at most capacity outcomes
// (capacity <= 0 means 256).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 256
	}
	return &Cache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Instrument attaches telemetry counters (svc.cache.hit/miss/evict in
// the service) that the cache increments on every lookup and eviction.
// Call before the cache sees traffic.
func (c *Cache) Instrument(hit, miss, evict *telemetry.Counter) {
	c.mu.Lock()
	c.hitC, c.missC, c.evictC = hit, miss, evict
	c.mu.Unlock()
}

// Get returns the cached outcome for hash, refreshing its recency.
func (c *Cache) Get(hash string) (*Outcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[hash]
	if !ok {
		c.miss++
		c.missC.Add(1)
		return nil, false
	}
	c.hits++
	c.hitC.Add(1)
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).out, true
}

// Peek returns the cached outcome for hash without refreshing recency or
// counting a hit/miss — the probe used by metrics endpoints and peer
// cache lookups that should not distort the eviction order or the
// effectiveness counters.
func (c *Cache) Peek(hash string) (*Outcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[hash]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).out, true
}

// Put stores out under hash, evicting the least recently used entry past
// capacity.
func (c *Cache) Put(hash string, out *Outcome) {
	if out == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[hash]; ok {
		el.Value.(*cacheEntry).out = out
		c.ll.MoveToFront(el)
		return
	}
	c.items[hash] = c.ll.PushFront(&cacheEntry{hash: hash, out: out})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).hash)
		c.evicts++
		c.evictC.Add(1)
	}
}

// Len returns the number of cached outcomes.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns lifetime hit/miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.miss
}

// Evictions returns how many entries capacity pressure has pushed out.
func (c *Cache) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evicts
}
