package jobs

import (
	"container/list"
	"sync"
)

// Cache is a concurrency-safe LRU result cache keyed by the canonical
// content hash. A converged SCF result is deterministic for a given
// canonical spec, so cache entries never expire — only capacity evicts.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	hits  int64
	miss  int64
}

type cacheEntry struct {
	hash string
	out  *Outcome
}

// NewCache returns an LRU cache holding at most capacity outcomes
// (capacity <= 0 means 256).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 256
	}
	return &Cache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached outcome for hash, refreshing its recency.
func (c *Cache) Get(hash string) (*Outcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[hash]
	if !ok {
		c.miss++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).out, true
}

// Put stores out under hash, evicting the least recently used entry past
// capacity.
func (c *Cache) Put(hash string, out *Outcome) {
	if out == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[hash]; ok {
		el.Value.(*cacheEntry).out = out
		c.ll.MoveToFront(el)
		return
	}
	c.items[hash] = c.ll.PushFront(&cacheEntry{hash: hash, out: out})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).hash)
	}
}

// Len returns the number of cached outcomes.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns lifetime hit/miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.miss
}
