package jobs

import (
	"container/heap"
	"errors"
	"sync"
)

// Queue errors surfaced to admission control.
var (
	// ErrQueueFull reports a Submit rejected by the capacity bound — the
	// service maps it to HTTP 429 with a Retry-After hint.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrQueueClosed reports a Submit after Close — the drain path.
	ErrQueueClosed = errors.New("jobs: queue closed")
)

// Queue is a bounded, concurrency-safe priority queue of jobs. Higher
// Spec.Priority runs first; within one priority, submission order (FIFO)
// is preserved via a monotonic sequence number. Claim blocks until an
// item is available or the queue is closed and empty — the worker-pool
// idiom mirroring the paper's dynamic load balancer, where idle workers
// pull the next task instead of being assigned a static share.
type Queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  pqHeap
	cap    int
	seq    uint64
	closed bool
}

// NewQueue returns a queue admitting at most capacity queued jobs
// (capacity <= 0 means 64).
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		capacity = 64
	}
	q := &Queue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Submit enqueues j, rejecting with ErrQueueFull past capacity and
// ErrQueueClosed after Close.
func (q *Queue) Submit(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if q.items.Len() >= q.cap {
		return ErrQueueFull
	}
	q.seq++
	heap.Push(&q.items, &pqItem{job: j, prio: j.Spec.Priority, seq: q.seq})
	q.cond.Signal()
	return nil
}

// Claim blocks until a job is available and returns the
// highest-priority, oldest one. It returns nil once the queue is closed
// and drained — the worker's signal to exit.
func (q *Queue) Claim() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.items.Len() > 0 {
			return heap.Pop(&q.items).(*pqItem).job
		}
		if q.closed {
			return nil
		}
		q.cond.Wait()
	}
}

// TryClaim is Claim without blocking: nil when nothing is queued.
func (q *Queue) TryClaim() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.items.Len() == 0 {
		return nil
	}
	return heap.Pop(&q.items).(*pqItem).job
}

// Remove drops the queued job with the given ID (cancellation support).
// It reports whether the job was found; a job already claimed by a
// worker is not in the queue and returns false.
func (q *Queue) Remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, it := range q.items {
		if it.job.ID == id {
			heap.Remove(&q.items, i)
			return true
		}
	}
	return false
}

// Len returns the number of queued (unclaimed) jobs.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.items.Len()
}

// Cap returns the admission capacity.
func (q *Queue) Cap() int { return q.cap }

// Closed reports whether Close has been called.
func (q *Queue) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// Close stops admissions and wakes every blocked Claim. Already-queued
// jobs remain claimable, so a drain finishes the backlog rather than
// dropping it.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// pqItem is one heap entry; seq breaks priority ties FIFO.
type pqItem struct {
	job   *Job
	prio  int
	seq   uint64
	index int
}

type pqHeap []*pqItem

func (h pqHeap) Len() int { return len(h) }

func (h pqHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio // max-heap on priority
	}
	return h[i].seq < h[j].seq // FIFO within a priority
}

func (h pqHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *pqHeap) Push(x any) {
	it := x.(*pqItem)
	it.index = len(*h)
	*h = append(*h, it)
}

func (h *pqHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}
