package jobs

import (
	"container/heap"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Queue errors surfaced to admission control.
var (
	// ErrQueueFull reports a Submit rejected by the capacity bound — the
	// service maps it to HTTP 429 with a Retry-After hint.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrQueueClosed reports a Submit after Close — the drain path.
	ErrQueueClosed = errors.New("jobs: queue closed")
)

// Queue is a bounded, concurrency-safe priority queue of jobs. Higher
// Spec.Priority runs first; within one priority, submission order (FIFO)
// is preserved via a monotonic sequence number. Claim blocks until an
// item is available or the queue is closed and empty — the worker-pool
// idiom mirroring the paper's dynamic load balancer, where idle workers
// pull the next task instead of being assigned a static share.
type Queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  pqHeap
	cap    int
	seq    uint64
	closed bool
}

// NewQueue returns a queue admitting at most capacity queued jobs
// (capacity <= 0 means 64).
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		capacity = 64
	}
	q := &Queue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Submit enqueues j, rejecting with ErrQueueFull past capacity and
// ErrQueueClosed after Close.
func (q *Queue) Submit(j *Job) error {
	return q.submit(j, false)
}

// ForceSubmit enqueues j past the capacity bound (still rejecting after
// Close). The WAL replay path uses it: a crash backlog larger than the
// admission cap must be recovered in full, not dropped — backpressure
// applies to new work, never to work already acknowledged.
func (q *Queue) ForceSubmit(j *Job) error {
	return q.submit(j, true)
}

func (q *Queue) submit(j *Job, force bool) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if !force && q.items.Len() >= q.cap {
		return ErrQueueFull
	}
	q.seq++
	heap.Push(&q.items, &pqItem{job: j, prio: j.Spec.Priority, eff: j.Spec.Priority,
		seq: q.seq, enqueued: time.Now()})
	q.cond.Signal()
	return nil
}

// Age applies priority aging: a job that has waited longer than `after`
// gains `boost` effective priority per elapsed `after` interval (capped
// at maxAgeSteps intervals), so low-priority work cannot starve behind a
// steady high-priority stream. Returns how many queued jobs had their
// effective priority raised by this call. Base priorities are never
// mutated — aging is a property of the queue, not the job.
func (q *Queue) Age(now time.Time, after time.Duration, boost int) int {
	if after <= 0 || boost <= 0 {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	changed := 0
	for _, it := range q.items {
		steps := int(now.Sub(it.enqueued) / after)
		if steps > maxAgeSteps {
			steps = maxAgeSteps
		}
		if eff := it.prio + steps*boost; eff != it.eff {
			it.eff = eff
			changed++
		}
	}
	if changed > 0 {
		heap.Init(&q.items)
	}
	return changed
}

// maxAgeSteps bounds the aging boost so an ancient job cannot overflow
// past every conceivable explicit priority forever.
const maxAgeSteps = 64

// Claim blocks until a job is available and returns the
// highest-priority, oldest one. It returns nil once the queue is closed
// and drained — the worker's signal to exit.
func (q *Queue) Claim() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.items.Len() > 0 {
			return heap.Pop(&q.items).(*pqItem).job
		}
		if q.closed {
			return nil
		}
		q.cond.Wait()
	}
}

// ClaimUntil is Claim with a retirement flag: it additionally returns
// nil — without popping anything — once retired is set, so an elastic
// worker being scaled down stops promptly even while jobs are queued
// (the survivors claim them instead). Pair with Kick to wake blocked
// claimants after flipping the flag.
func (q *Queue) ClaimUntil(retired *atomic.Bool) *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if retired.Load() {
			return nil
		}
		if q.items.Len() > 0 {
			return heap.Pop(&q.items).(*pqItem).job
		}
		if q.closed {
			return nil
		}
		q.cond.Wait()
	}
}

// Kick wakes every blocked Claim/ClaimUntil without changing queue
// state, so callers that flipped an external condition (worker
// retirement) get it re-checked.
func (q *Queue) Kick() {
	q.mu.Lock()
	q.cond.Broadcast()
	q.mu.Unlock()
}

// TryClaim is Claim without blocking: nil when nothing is queued.
func (q *Queue) TryClaim() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.items.Len() == 0 {
		return nil
	}
	return heap.Pop(&q.items).(*pqItem).job
}

// Remove drops the queued job with the given ID (cancellation support).
// It reports whether the job was found; a job already claimed by a
// worker is not in the queue and returns false.
func (q *Queue) Remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, it := range q.items {
		if it.job.ID == id {
			heap.Remove(&q.items, i)
			return true
		}
	}
	return false
}

// Len returns the number of queued (unclaimed) jobs.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.items.Len()
}

// Cap returns the admission capacity.
func (q *Queue) Cap() int { return q.cap }

// Closed reports whether Close has been called.
func (q *Queue) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// Close stops admissions and wakes every blocked Claim. Already-queued
// jobs remain claimable, so a drain finishes the backlog rather than
// dropping it.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// pqItem is one heap entry; seq breaks priority ties FIFO. eff is the
// aged effective priority (starts equal to prio, raised by Age).
type pqItem struct {
	job      *Job
	prio     int
	eff      int
	seq      uint64
	enqueued time.Time
	index    int
}

type pqHeap []*pqItem

func (h pqHeap) Len() int { return len(h) }

func (h pqHeap) Less(i, j int) bool {
	if h[i].eff != h[j].eff {
		return h[i].eff > h[j].eff // max-heap on (aged) effective priority
	}
	return h[i].seq < h[j].seq // FIFO within a priority
}

func (h pqHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *pqHeap) Push(x any) {
	it := x.(*pqItem)
	it.index = len(*h)
	*h = append(*h, it)
}

func (h *pqHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}
