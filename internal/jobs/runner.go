package jobs

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro"
	"repro/internal/telemetry"
)

// ErrUnconverged is reported (via errors.Is) when a run completes its
// iteration budget without reaching the convergence thresholds. It is
// retryable: the service's bounded-retry loop gets another attempt at it.
var ErrUnconverged = errors.New("scf did not converge")

// Runner executes one attempt of a job spec through the facade. Retry
// policy lives in the service's worker loop (it owns the FSM and the
// queue); the runner just maps a spec to the right Run* entry point and
// packages the outcome.
type Runner struct {
	// Telemetry, when set, instruments every run the runner executes —
	// including the runtime's chaos.* and dlb.* mitigation counters — on
	// the shared session, so they surface through the service's /metrics.
	Telemetry *repro.Telemetry
}

// RunOnce executes the normalized spec under ctx and returns the
// outcome. Cancellation and deadline expiry surface as errors matching
// repro.ErrCanceled; everything else is a run failure.
//
// When ctx carries a telemetry.TraceContext, the run executes under a
// trace-derived session: a job.run span brackets the whole attempt and
// every span the SCF/Fock/DDI/MPI layers record inherits the request's
// trace ID — the hand-off that lets the service stitch one waterfall
// from ingress down to individual MPI operations.
func (r Runner) RunOnce(ctx context.Context, spec Spec) (*Outcome, error) {
	n := spec.Normalized()
	mol, err := n.ResolveMolecule()
	if err != nil {
		return nil, err
	}
	tc, _ := telemetry.TraceFromContext(ctx)
	tel := r.Telemetry.WithTrace(tc.TraceID)
	opt := repro.SCFOptions{
		MaxIter:    n.MaxIter,
		ConvDens:   n.ConvDens,
		ConvEnergy: n.ConvEnergy,
		Guess:      n.Guess,
		Telemetry:  tel,
	}
	start := time.Now()
	endRun := tel.SpanArgsAtEnd("job.run", n.Mode, telemetry.DriverPid, tc.Tid)
	var res *repro.Result
	var rec *repro.RecoveryInfo
	switch n.Mode {
	case ModeSerial:
		res, err = repro.RunRHFCtx(ctx, mol, n.Basis, opt)
	case ModeParallel:
		res, err = repro.RunParallelRHFCtx(ctx, mol, n.Basis, repro.ParallelConfig{
			Algorithm: repro.Algorithm(n.Algorithm), Ranks: n.Ranks, Threads: n.Threads,
		}, opt)
	default: // ModeResilient — the service default: absorbs rank death
		res, rec, err = repro.RunResilientRHFCtx(ctx, mol, n.Basis, repro.ResilientConfig{
			Algorithm: repro.Algorithm(n.Algorithm), Ranks: n.Ranks,
			Threads: n.Threads, Telemetry: tel,
		}, opt)
	}
	endRun(map[string]any{"molecule": n.Molecule, "basis": n.Basis, "ok": err == nil})
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Energy:     res.Energy,
		Converged:  res.Converged,
		Iterations: res.Iterations,
		NumBF:      res.D.Rows,
		WallMS:     float64(time.Since(start)) / float64(time.Millisecond),
		Mode:       n.Mode,
	}
	if rec != nil {
		out.Restarts = rec.Restarts
	}
	if !res.Converged {
		// Exhausting MaxIter is a run failure, not a result: only converged
		// energies are cacheable or billable as done.
		return nil, fmt.Errorf("%w in %d iterations (rms-density > %g)",
			ErrUnconverged, res.Iterations, n.ConvDens)
	}
	return out, nil
}

// Permanent reports whether err should not be retried: cancellations and
// deadline expiries (the job's budget is spent, not the cluster's
// health) and spec-level errors that are deterministic.
func Permanent(err error) bool {
	return errors.Is(err, repro.ErrCanceled) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}
