// Package jobs turns single-shot Hartree-Fock calculations into
// schedulable work items: a declarative job Spec with canonical content
// hashing (so byte-different but physically identical requests dedup), a
// bounded priority queue with FIFO ordering within each priority, a job
// lifecycle FSM (queued → running → done/failed/canceled) with bounded
// retry, an LRU result cache keyed by the content hash, and a runner that
// executes specs through the facade's resilient SCF entry points.
//
// The package lifts the paper's load-balancing theme one level: where
// Algorithms 2-3 distribute shell-pair tasks across ranks inside one SCF,
// this layer distributes whole SCF jobs across a worker pool inside one
// long-running service (see internal/service).
package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro"
)

// Run modes accepted by Spec.Mode.
const (
	ModeSerial    = "serial"    // single-process RunRHFCtx
	ModeParallel  = "parallel"  // RunParallelRHFCtx on the in-process runtimes
	ModeResilient = "resilient" // RunResilientRHFCtx (default): survives rank death
)

// Spec declares one Hartree-Fock job. Exactly one of Molecule (a builtin
// or paper-system name) or XYZ (an inline geometry) selects the system.
// The zero value of every other field means "default".
type Spec struct {
	Molecule string `json:"molecule,omitempty"` // builtin name ("water") or paper system ("0.5nm")
	XYZ      string `json:"xyz,omitempty"`      // inline XYZ geometry (angstrom)
	Charge   int    `json:"charge,omitempty"`   // total charge applied to an XYZ geometry
	Basis    string `json:"basis,omitempty"`    // basis set name; default sto-3g

	Mode      string `json:"mode,omitempty"`      // serial | parallel | resilient (default resilient)
	Algorithm string `json:"algorithm,omitempty"` // Fock algorithm for parallel/resilient modes
	Ranks     int    `json:"ranks,omitempty"`     // MPI ranks; default 2
	Threads   int    `json:"threads,omitempty"`   // OpenMP threads per rank; default 2

	MaxIter    int     `json:"max_iter,omitempty"`    // SCF iteration cap; default 100
	ConvDens   float64 `json:"conv_dens,omitempty"`   // RMS-density threshold; default 1e-8
	ConvEnergy float64 `json:"conv_energy,omitempty"` // energy threshold; default 1e-9
	Guess      string  `json:"guess,omitempty"`       // core (default) or gwh

	Priority   int    `json:"priority,omitempty"`    // higher runs first; FIFO within a priority
	TimeoutMS  int64  `json:"timeout_ms,omitempty"`  // per-job deadline; 0 = service default
	MaxRetries int    `json:"max_retries,omitempty"` // bounded retry budget; 0 = service default
	Tenant     string `json:"tenant,omitempty"`      // admission-quota bucket; "" = the anonymous tenant
}

// Normalized returns the spec with defaults applied — the form that is
// validated, hashed, and executed.
func (s Spec) Normalized() Spec {
	if s.Basis == "" {
		s.Basis = "sto-3g"
	}
	s.Basis = strings.ToLower(strings.TrimSpace(s.Basis))
	if s.Mode == "" {
		s.Mode = ModeResilient
	}
	if s.Mode != ModeSerial {
		if s.Ranks <= 0 {
			s.Ranks = 2
		}
		if s.Threads <= 0 {
			s.Threads = 2
		}
		if s.Algorithm == "" {
			if s.Mode == ModeResilient {
				s.Algorithm = string(repro.ResilientFock)
			} else {
				s.Algorithm = string(repro.SharedFock)
			}
		}
	}
	if s.MaxIter == 0 {
		s.MaxIter = 100
	}
	if s.ConvDens == 0 {
		s.ConvDens = 1e-8
	}
	if s.ConvEnergy == 0 {
		s.ConvEnergy = 1e-9
	}
	if s.Guess == "" {
		s.Guess = "core"
	}
	return s
}

// ResolveMolecule builds the molecule the spec names: inline XYZ first,
// then builtin molecules, then paper systems. Unknown names get an error
// listing everything that would have worked.
func (s Spec) ResolveMolecule() (*repro.Molecule, error) {
	if s.XYZ != "" {
		m, err := repro.ParseXYZ(s.XYZ)
		if err != nil {
			return nil, fmt.Errorf("jobs: bad xyz: %w", err)
		}
		m.Charge = s.Charge
		return m, nil
	}
	if s.Molecule == "" {
		return nil, fmt.Errorf("jobs: spec names no molecule (set molecule or xyz)")
	}
	if m, err := repro.BuiltinMolecule(s.Molecule); err == nil {
		return m, nil
	}
	if m, err := repro.PaperSystem(s.Molecule); err == nil {
		return m, nil
	}
	return nil, fmt.Errorf("jobs: unknown molecule %q (builtins: %s; paper systems: %s; or pass an inline xyz)",
		s.Molecule, strings.Join(repro.BuiltinMoleculeNames(), ", "),
		strings.Join(repro.PaperSystemNames(), ", "))
}

// Validate checks the normalized spec end to end: the molecule resolves,
// the basis builds over it, and the mode/guess names are known. It
// returns the basis dimensions so admission can report system size
// without re-building.
func (s Spec) Validate() (repro.BasisInfo, error) {
	n := s.Normalized()
	switch n.Mode {
	case ModeSerial, ModeParallel, ModeResilient:
	default:
		return repro.BasisInfo{}, fmt.Errorf("jobs: unknown mode %q (want %s, %s, or %s)",
			n.Mode, ModeSerial, ModeParallel, ModeResilient)
	}
	switch n.Guess {
	case "core", "gwh":
	default:
		return repro.BasisInfo{}, fmt.Errorf("jobs: unknown guess %q (want core or gwh)", n.Guess)
	}
	if n.TimeoutMS < 0 || n.MaxRetries < 0 || n.MaxIter < 0 {
		return repro.BasisInfo{}, fmt.Errorf("jobs: negative timeout_ms, max_retries, or max_iter")
	}
	mol, err := n.ResolveMolecule()
	if err != nil {
		return repro.BasisInfo{}, err
	}
	info, err := repro.DescribeBasis(mol, n.Basis)
	if err != nil {
		return repro.BasisInfo{}, fmt.Errorf("jobs: %w", err)
	}
	return info, nil
}

// CanonicalHash returns a hex SHA-256 over the job's physical content:
// the canonicalized geometry (atoms sorted, coordinates fixed-point
// rounded), total charge, basis, convergence targets, iteration cap, and
// initial guess. Execution-shape fields — mode, algorithm, ranks,
// threads, priority, timeout, retries, tenant — are deliberately excluded: they
// change how the answer is computed, not what the answer is, so requests
// differing only in those dedup onto one cache entry. Atom order and XYZ
// whitespace never change the hash (see TestCanonicalHashInvariance).
func (s Spec) CanonicalHash() (string, error) {
	n := s.Normalized()
	mol, err := n.ResolveMolecule()
	if err != nil {
		return "", err
	}
	atoms := make([]string, mol.NumAtoms())
	for i, a := range mol.Atoms {
		atoms[i] = fmt.Sprintf("%d %s %s %s", a.Z,
			canonCoord(a.Pos[0]), canonCoord(a.Pos[1]), canonCoord(a.Pos[2]))
	}
	sort.Strings(atoms)

	h := sha256.New()
	fmt.Fprintf(h, "charge=%d\nbasis=%s\nmaxiter=%d\nconvdens=%.17g\nconvenergy=%.17g\nguess=%s\n",
		mol.Charge, n.Basis, n.MaxIter, n.ConvDens, n.ConvEnergy, n.Guess)
	for _, a := range atoms {
		fmt.Fprintln(h, a)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// canonCoord renders a coordinate as fixed-point nanobohr, washing out
// float formatting noise (and the -0.0 vs +0.0 split) while preserving
// far more precision than any chemically meaningful difference.
func canonCoord(v float64) string {
	r := math.Round(v * 1e9)
	if r == 0 {
		r = 0 // collapse -0
	}
	return strconv.FormatInt(int64(r), 10)
}
