package jobs

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// waterXYZLines is a water geometry as individual atom lines, permuted
// and re-spaced by the property test below.
var waterXYZLines = []string{
	"O 0.000000 0.000000 0.117300",
	"H 0.000000 0.757200 -0.469200",
	"H 0.000000 -0.757200 -0.469200",
}

func xyzFrom(lines []string, comment string) string {
	return fmt.Sprintf("%d\n%s\n%s\n", len(lines), comment, strings.Join(lines, "\n"))
}

// injectWhitespace perturbs an atom line without changing its content:
// extra interior runs of spaces/tabs and trailing blanks.
func injectWhitespace(rng *rand.Rand, line string) string {
	fields := strings.Fields(line)
	seps := []string{" ", "  ", "\t", " \t ", "    "}
	var b strings.Builder
	if rng.Intn(2) == 0 {
		b.WriteString(seps[rng.Intn(len(seps))])
	}
	for i, f := range fields {
		if i > 0 {
			b.WriteString(seps[rng.Intn(len(seps))])
		}
		b.WriteString(f)
	}
	if rng.Intn(2) == 0 {
		b.WriteString(seps[rng.Intn(len(seps))])
	}
	return b.String()
}

// TestCanonicalHashInvariance is the property test promised by
// Spec.CanonicalHash: for N random atom permutations with random
// whitespace injected into every line, the hash is bit-identical.
func TestCanonicalHashInvariance(t *testing.T) {
	ref, err := Spec{XYZ: xyzFrom(waterXYZLines, "water"), Basis: "sto-3g"}.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		lines := append([]string(nil), waterXYZLines...)
		rng.Shuffle(len(lines), func(i, j int) { lines[i], lines[j] = lines[j], lines[i] })
		for i := range lines {
			lines[i] = injectWhitespace(rng, lines[i])
		}
		// The comment line and execution-shape fields must not matter either.
		s := Spec{
			XYZ:   xyzFrom(lines, fmt.Sprintf("perturbed %d", trial)),
			Basis: "STO-3G", // case-insensitive
			Mode:  []string{"", ModeSerial, ModeParallel, ModeResilient}[trial%4],
			Ranks: trial % 5, Threads: trial % 3, Priority: trial % 7,
			TimeoutMS: int64(trial), MaxRetries: trial % 2,
		}
		h, err := s.CanonicalHash()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if h != ref {
			t.Fatalf("trial %d: hash diverged\nxyz:\n%s\ngot  %s\nwant %s",
				trial, s.XYZ, h, ref)
		}
	}
}

func TestCanonicalHashSeparatesContent(t *testing.T) {
	base := Spec{Molecule: "water", Basis: "sto-3g"}
	ref, err := base.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	distinct := []Spec{
		{Molecule: "methane", Basis: "sto-3g"},           // different molecule
		{Molecule: "water", Basis: "6-31g"},              // different basis
		{Molecule: "water", Basis: "sto-3g", MaxIter: 7}, // different iteration cap
		{Molecule: "water", Basis: "sto-3g", ConvDens: 1e-6},
		{Molecule: "water", Basis: "sto-3g", Guess: "gwh"},
		{XYZ: "3\nshifted water\nO 0 0 0.2\nH 0 0.7572 -0.4692\nH 0 -0.7572 -0.4692\n"},
	}
	seen := map[string]int{ref: -1}
	for i, s := range distinct {
		h, err := s.CanonicalHash()
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if prev, dup := seen[h]; dup {
			t.Fatalf("spec %d collides with spec %d (hash %s)", i, prev, h)
		}
		seen[h] = i
	}
}

func TestCanonicalHashMatchesBuiltin(t *testing.T) {
	// An inline XYZ of the builtin water must hash identically to naming
	// it — the geometry round-trips through Molecule.XYZ().
	mol, err := Spec{Molecule: "water"}.ResolveMolecule()
	if err != nil {
		t.Fatal(err)
	}
	byName, err := Spec{Molecule: "water"}.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	byXYZ, err := Spec{XYZ: mol.XYZ()}.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if byName != byXYZ {
		t.Fatalf("builtin vs round-tripped XYZ hash mismatch:\n%s\n%s", byName, byXYZ)
	}
}

func TestSpecValidate(t *testing.T) {
	if _, err := (Spec{Molecule: "water"}).Validate(); err != nil {
		t.Fatalf("default spec should validate: %v", err)
	}
	bad := []Spec{
		{},                                    // no molecule
		{Molecule: "unobtainium"},             // unknown molecule
		{Molecule: "water", Basis: "nope"},    // unknown basis
		{Molecule: "water", Mode: "quantum"},  // unknown mode
		{Molecule: "water", Guess: "psychic"}, // unknown guess
		{Molecule: "water", TimeoutMS: -1},    // negative timeout
		{XYZ: "1\nbroken\nXx 0 0 0\n"},        // unknown element
	}
	for i, s := range bad {
		if _, err := s.Validate(); err == nil {
			t.Fatalf("spec %d (%+v) should fail validation", i, s)
		}
	}
	// The unknown-molecule error must teach the caller what exists.
	_, err := (Spec{Molecule: "unobtainium"}).Validate()
	for _, want := range []string{"water", "benzene", "0.5nm", "5.0nm"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("unknown-molecule error should list %q, got: %v", want, err)
		}
	}
}
