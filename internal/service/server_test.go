package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
)

// testServer wires a Server to an httptest listener. Workers start only
// when start is true, so backpressure tests can fill the queue
// deterministically.
func testServer(t *testing.T, cfg Config, start bool) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if start {
		s.StartWorkers()
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := s.Drain(ctx); err != nil {
				t.Errorf("drain: %v", err)
			}
		})
	}
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, spec jobs.Spec) (submitResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var out submitResponse
	if resp.StatusCode < 400 {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return out, resp
}

func getStatus(t *testing.T, ts *httptest.Server, id string) jobs.Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: HTTP %d", id, resp.StatusCode)
	}
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

func awaitTerminal(t *testing.T, ts *httptest.Server, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getStatus(t, ts, id)
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServeSubmitPollDone(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, QueueCap: 8}, true)

	out, resp := postJob(t, ts, jobs.Spec{Molecule: "h2", Mode: jobs.ModeSerial})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, want 202", resp.StatusCode)
	}
	if out.ID == "" || out.Hash == "" {
		t.Fatalf("submit response missing id/hash: %+v", out)
	}
	st := awaitTerminal(t, ts, out.ID)
	if st.State != jobs.StateDone {
		t.Fatalf("job ended %s (%s), want done", st.State, st.Error)
	}
	if st.Result == nil || !st.Result.Converged {
		t.Fatalf("job done but result not converged: %+v", st.Result)
	}
	// RHF/STO-3G H2 at 0.74 Å: E ≈ -1.117 hartree.
	if e := st.Result.Energy; e > -1.0 || e < -1.2 {
		t.Errorf("H2 energy %v outside [-1.2, -1.0]", e)
	}
}

func TestServeCachedResubmit(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueCap: 8}, true)

	first, resp := postJob(t, ts, jobs.Spec{Molecule: "water", Mode: jobs.ModeSerial})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", resp.StatusCode)
	}
	done := awaitTerminal(t, ts, first.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("first job ended %s (%s)", done.State, done.Error)
	}

	// Resubmit the same physics under a different spelling: alias name,
	// different basis case, different execution mode. Must be a cache hit.
	start := time.Now()
	second, resp2 := postJob(t, ts, jobs.Spec{Molecule: "h2o", Basis: "STO-3G", Mode: jobs.ModeParallel})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cached resubmit: HTTP %d, want 200", resp2.StatusCode)
	}
	if !second.Cached || second.Result == nil {
		t.Fatalf("resubmit not served from cache: %+v", second)
	}
	if second.Hash != first.Hash {
		t.Fatalf("hash mismatch across spellings: %s vs %s", first.Hash, second.Hash)
	}
	if second.Result.Energy != done.Result.Energy {
		t.Fatalf("cached energy %v != original %v", second.Result.Energy, done.Result.Energy)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cached resubmit took %v, expected near-instant", d)
	}
	// The cached job still has a GET-able record of its own.
	if st := getStatus(t, ts, second.ID); st.State != jobs.StateDone || !st.Cached {
		t.Errorf("cached job record: %+v", st)
	}
}

func TestServeBackpressure429(t *testing.T) {
	// No workers: the queue fills deterministically.
	s, ts := testServer(t, Config{Workers: 1, QueueCap: 1, RetryAfter: 3 * time.Second}, false)

	if _, resp := postJob(t, ts, jobs.Spec{Molecule: "h2", Mode: jobs.ModeSerial}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", resp.StatusCode)
	}
	_, resp := postJob(t, ts, jobs.Spec{Molecule: "water", Mode: jobs.ModeSerial})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: HTTP %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}
	if got := s.tel.Counter("svc.jobs.rejected").Value(); got != 1 {
		t.Errorf("svc.jobs.rejected = %d, want 1", got)
	}

	// A duplicate of the queued job coalesces instead of bouncing: dedup
	// beats backpressure.
	out, resp2 := postJob(t, ts, jobs.Spec{Molecule: "h2", Mode: jobs.ModeSerial})
	if resp2.StatusCode != http.StatusAccepted || !out.Coalesced {
		t.Fatalf("duplicate of queued job: HTTP %d coalesced=%v, want 202 coalesced", resp2.StatusCode, out.Coalesced)
	}

	// Start the pool; the backlog must drain to completion.
	s.StartWorkers()
	st := awaitTerminal(t, ts, out.ID)
	if st.State != jobs.StateDone {
		t.Fatalf("backlogged job ended %s (%s)", st.State, st.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestServeCancelQueued(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueCap: 4}, false)

	out, resp := postJob(t, ts, jobs.Spec{Molecule: "water", Mode: jobs.ModeSerial})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+out.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	var st jobs.Status
	if err := json.NewDecoder(dresp.Body).Decode(&st); err != nil {
		t.Fatalf("decode cancel response: %v", err)
	}
	dresp.Body.Close()
	if st.State != jobs.StateCanceled {
		t.Fatalf("canceled queued job in state %s", st.State)
	}
	if s.queue.Len() != 0 {
		t.Errorf("queue depth %d after cancel, want 0", s.queue.Len())
	}
	// Canceling a terminal job is a no-op that still returns the record.
	dresp2, err := http.DefaultClient.Do(req.Clone(context.Background()))
	if err != nil {
		t.Fatalf("second DELETE: %v", err)
	}
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusOK {
		t.Errorf("second DELETE: HTTP %d", dresp2.StatusCode)
	}
}

func TestServeDeadline(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueCap: 4}, true)

	// A 1 ms deadline expires before the first SCF iteration completes;
	// the cancellation gate must stop the run and record it as canceled,
	// not failed (no retry burn).
	out, resp := postJob(t, ts, jobs.Spec{Molecule: "water", Mode: jobs.ModeSerial, TimeoutMS: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	st := awaitTerminal(t, ts, out.ID)
	if st.State != jobs.StateCanceled {
		t.Fatalf("deadline job ended %s (%s), want canceled", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Errorf("cancel reason %q does not mention the deadline", st.Error)
	}
	if st.Attempts != 1 {
		t.Errorf("deadline job burned %d attempts, want 1", st.Attempts)
	}
}

func TestServeBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueCap: 4}, false)

	cases := []struct {
		name string
		body string
	}{
		{"malformed json", `{`},
		{"unknown field", `{"molecule":"h2","flavor":"strange"}`},
		{"unknown molecule", `{"molecule":"kryptonite"}`},
		{"unknown basis", `{"molecule":"h2","basis":"cc-pVQZ"}`},
		{"bad mode", `{"molecule":"h2","mode":"quantum"}`},
		{"negative maxiter", `{"molecule":"h2","maxiter":-3}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400 (error %q)", tc.name, resp.StatusCode, e.Error)
		}
	}

	// Unknown-molecule errors list what IS available.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"molecule":"kryptonite"}`))
	if err != nil {
		t.Fatal(err)
	}
	var e errorResponse
	_ = json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	for _, want := range []string{"water", "benzene", "kryptonite"} {
		if !strings.Contains(e.Error, want) {
			t.Errorf("unknown-molecule error %q missing %q", e.Error, want)
		}
	}

	if resp, err := http.Get(ts.URL + "/v1/jobs/job-999999"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET unknown id: HTTP %d, want 404", resp.StatusCode)
		}
	}
}

func TestServeQueueHealthMetrics(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 3, QueueCap: 5}, false)

	for i := 0; i < 2; i++ {
		spec := jobs.Spec{Molecule: "h2", Mode: jobs.ModeSerial, MaxIter: 50 + i}
		if _, resp := postJob(t, ts, spec); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/queue")
	if err != nil {
		t.Fatal(err)
	}
	var q queueResponse
	if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
		t.Fatalf("decode queue: %v", err)
	}
	resp.Body.Close()
	if q.Depth != 2 || q.Capacity != 5 || q.Workers != 3 || q.Draining {
		t.Errorf("queue view %+v, want depth 2 cap 5 workers 3 not draining", q)
	}
	if q.States["queued"] != 2 {
		t.Errorf("states %v, want 2 queued", q.States)
	}

	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("healthz: HTTP %d", resp.StatusCode)
		}
	}

	resp, err = http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	resp.Body.Close()
	if metrics.Counters["svc.jobs.accepted"] != 2 {
		t.Errorf("metrics counters %v, want svc.jobs.accepted=2", metrics.Counters)
	}
	// The chaos/mitigation taxonomy is pre-registered, so scrapers see it
	// (as zeros) even before any fault fires.
	for _, name := range []string{"chaos.dups_dropped", "dlb.hedged", "dlb.reissued", "ddi.lease.expired"} {
		if _, present := metrics.Counters[name]; !present {
			t.Errorf("metrics missing pre-registered counter %q", name)
		}
	}

	// The default exposition is Prometheus text: counters end in _total
	// and the hf_ prefix namespaces every family.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	promBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prometheus content type %q", ct)
	}
	if !strings.Contains(string(promBody), "hf_svc_jobs_accepted_total 2") {
		t.Errorf("prometheus exposition missing hf_svc_jobs_accepted_total 2:\n%s", promBody)
	}

	// Drain flips readiness and POST to 503 while the backlog finishes;
	// liveness (/healthz) stays 200 so the supervisor does not kill a
	// replica that is deliberately draining.
	s.StartWorkers()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !s.Draining() {
		t.Fatal("server not draining after Drain")
	}
	if _, resp := postJob(t, ts, jobs.Spec{Molecule: "h2"}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST while drained: HTTP %d, want 503", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("healthz while drained: HTTP %d, want 200 (liveness only)", resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("readyz while drained: HTTP %d, want 503", resp.StatusCode)
		}
	}
	// Zero lost jobs: everything submitted before the drain is terminal.
	s.mu.Lock()
	for id, j := range s.byID {
		if !j.State().Terminal() {
			t.Errorf("job %s non-terminal after drain: %s", id, j.State())
		}
	}
	s.mu.Unlock()
}

func TestServeRetryOnFailure(t *testing.T) {
	// An unconverged run is a retryable failure: MaxIter 1 with a tight
	// threshold cannot converge, so the job should burn 1 + MaxRetries
	// attempts and land Failed.
	_, ts := testServer(t, Config{Workers: 1, QueueCap: 4, MaxRetries: 2}, true)

	out, resp := postJob(t, ts, jobs.Spec{Molecule: "h2", Mode: jobs.ModeSerial, MaxIter: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	st := awaitTerminal(t, ts, out.ID)
	if st.State != jobs.StateFailed {
		t.Fatalf("job ended %s, want failed (error %q)", st.State, st.Error)
	}
	if st.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 retries)", st.Attempts)
	}
}

func TestLoadgenSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("loadgen is a multi-second soak; run without -short")
	}
	rep, err := RunLoadgen(LoadgenOptions{Jobs: 50, Clients: 8, Workers: 2, QueueCap: 3, Seed: 7})
	if err != nil {
		t.Fatalf("loadgen: %v\n%s", err, rep.Format())
	}
	if err := rep.Gates(); err != nil {
		t.Fatalf("gates: %v\n%s", err, rep.Format())
	}
	t.Logf("\n%s", rep.Format())
}

var _ = fmt.Sprintf // keep fmt imported for debug edits
