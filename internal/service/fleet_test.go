package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/jobs"
)

func TestRingDeterministicAndBalanced(t *testing.T) {
	members := []string{"r0", "r1", "r2"}
	a := NewRing(members, 0)
	b := NewRing([]string{"r2", "r0", "r1"}, 0) // order must not matter

	counts := map[string]int{}
	moved := 0
	small := NewRing([]string{"r0", "r1"}, 0)
	for i := 0; i < 1000; i++ {
		h := fmt.Sprintf("hash-%04d", i)
		own := a.Owner(h)
		if got := b.Owner(h); got != own {
			t.Fatalf("rings disagree on %s: %s vs %s", h, own, got)
		}
		counts[own]++
		// Consistency: dropping r2 must only remap r2's share.
		if own != "r2" && small.Owner(h) != own {
			moved++
		}
	}
	for _, m := range members {
		if counts[m] < 100 {
			t.Fatalf("ownership badly skewed: %v", counts)
		}
	}
	if moved > 0 {
		t.Fatalf("%d hashes not owned by the removed replica changed owner", moved)
	}
	if own := (*Ring)(nil).Owner("x"); own != "" {
		t.Fatalf("nil ring owner = %q, want empty", own)
	}
}

// startTestFleet boots n replicas on ephemeral ports and joins them into
// one consistent-hash group.
func startTestFleet(t *testing.T, n int, cfg Config) ([]*Server, map[string]string) {
	t.Helper()
	servers := make([]*Server, n)
	members := map[string]string{}
	for i := 0; i < n; i++ {
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("New replica %d: %v", i, err)
		}
		addr, err := s.Start("127.0.0.1:0")
		if err != nil {
			t.Fatalf("Start replica %d: %v", i, err)
		}
		servers[i] = s
		members[fmt.Sprintf("r%d", i)] = addr
	}
	for i, s := range servers {
		s.ConfigureFleet(fmt.Sprintf("r%d", i), members, 0)
	}
	t.Cleanup(func() {
		for _, s := range servers {
			if !s.Killed() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				_ = s.Drain(ctx)
				cancel()
			}
		}
	})
	return servers, members
}

// fleetPost submits spec to the replica at addr and decodes the response.
func fleetPost(t *testing.T, addr string, spec jobs.Spec) (submitResponse, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST to %s: %v", addr, err)
	}
	defer resp.Body.Close()
	var out submitResponse
	if resp.StatusCode < 400 {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return out, resp.StatusCode
}

// waitFleetDone polls every replica until the hash is cached somewhere.
func waitFleetDone(t *testing.T, members map[string]string, hash string, within time.Duration) *jobs.Outcome {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		for _, addr := range members {
			resp, err := http.Get(fmt.Sprintf("http://%s/v1/cache/%s", addr, hash))
			if err != nil {
				continue
			}
			if resp.StatusCode == http.StatusOK {
				var out jobs.Outcome
				err := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					t.Fatalf("decode cache probe: %v", err)
				}
				return &out
			}
			resp.Body.Close()
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("hash %s never became cached fleet-wide", hash)
	return nil
}

func TestFleetForwardAndPeerFetch(t *testing.T) {
	servers, members := startTestFleet(t, 2, Config{Workers: 1, QueueCap: 16,
		DefaultTimeout: time.Minute})

	spec := jobs.Spec{Molecule: "h2", Basis: "sto-3g", Mode: jobs.ModeSerial}
	hash, err := spec.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	ring, _ := servers[0].Fleet()
	owner := ring.Owner(hash)
	// Submit to the NON-owner: the request must route to the owner.
	nonOwner := "r0"
	if owner == "r0" {
		nonOwner = "r1"
	}
	out, status := fleetPost(t, members[nonOwner], spec)
	if status != http.StatusAccepted {
		t.Fatalf("forwarded submit status %d, want 202", status)
	}
	if out.Replica != owner {
		t.Fatalf("job accepted by %q, want owner %q", out.Replica, owner)
	}
	waitFleetDone(t, members, hash, 30*time.Second)

	// Resubmit to the non-owner: served via peer cache fetch, one hop, no
	// second execution.
	out2, status2 := fleetPost(t, members[nonOwner], spec)
	if status2 != http.StatusOK || !out2.Cached {
		t.Fatalf("resubmit status %d cached=%v, want 200 cached", status2, out2.Cached)
	}
	var ownerIdx, nonIdx int
	if owner == "r0" {
		ownerIdx, nonIdx = 0, 1
	} else {
		ownerIdx, nonIdx = 1, 0
	}
	if n := servers[ownerIdx].Executions()[hash]; n != 1 {
		t.Fatalf("owner executed %d times, want 1", n)
	}
	if n := servers[nonIdx].Executions()[hash]; n != 0 {
		t.Fatalf("non-owner executed %d times, want 0", n)
	}
	if got := servers[nonIdx].Telemetry().Counter("svc.fleet.peer_hit").Value(); got < 1 {
		t.Fatalf("svc.fleet.peer_hit = %d, want >= 1", got)
	}
	if got := servers[nonIdx].Telemetry().Counter("svc.fleet.forwarded").Value(); got < 1 {
		t.Fatalf("svc.fleet.forwarded = %d, want >= 1", got)
	}
}

func TestFleetHandoffWhenOwnerDown(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueCap: 16, DefaultTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	// A guaranteed-dead peer address: bind a port, then free it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()
	s.ConfigureFleet("live", map[string]string{"live": addr, "dead": deadAddr}, 0)

	// Find a spec the dead replica owns (vary the hash via MaxIter).
	ring, _ := s.Fleet()
	var spec jobs.Spec
	var hash string
	for iter := 30; ; iter++ {
		spec = jobs.Spec{Molecule: "h2", Basis: "sto-3g", Mode: jobs.ModeSerial, MaxIter: iter}
		h, err := spec.CanonicalHash()
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(h) == "dead" {
			hash = h
			break
		}
	}
	out, status := fleetPost(t, addr, spec)
	if status != http.StatusAccepted {
		t.Fatalf("handoff submit status %d, want 202", status)
	}
	if out.Replica != "live" {
		t.Fatalf("accepted by %q, want local hand-off to live", out.Replica)
	}
	if got := s.Telemetry().Counter("svc.fleet.handoff").Value(); got < 1 {
		t.Fatalf("svc.fleet.handoff = %d, want >= 1", got)
	}
	waitFleetDone(t, map[string]string{"live": addr}, hash, 30*time.Second)
	if n := s.Executions()[hash]; n != 1 {
		t.Fatalf("live replica executed %d times, want 1", n)
	}
}

func TestCrashReplayRecoversBacklogExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	mk := func() *Server {
		s, err := New(Config{Workers: 2, QueueCap: 4, DefaultTimeout: time.Minute,
			WALDir: dir, WALNoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// Boot 1: accept three jobs with the worker pool never started (so
	// they deterministically sit queued), then crash. The accepts are on
	// disk; nothing ever ran.
	s1 := mk()
	hashes := map[string]bool{}
	for i, iter := range []int{41, 42, 43} {
		spec := jobs.Spec{Molecule: "h2", Basis: "sto-3g", Mode: jobs.ModeSerial, MaxIter: iter}
		resp := postToHandler(t, s1, spec)
		if resp.State != jobs.StateQueued {
			t.Fatalf("submit %d state %q, want queued", i, resp.State)
		}
		hashes[resp.Hash] = true
	}
	s1.Kill() // SIGKILL: no drain, no compaction, queue contents abandoned

	// Boot 2: replay must re-enqueue all three and run each exactly once.
	s2 := mk()
	if got := s2.RecoveredBacklog(); got != 3 {
		t.Fatalf("recovered backlog %d, want 3", got)
	}
	s2.StartWorkers()
	deadline := time.Now().Add(60 * time.Second)
	for done := 0; done < 3 && time.Now().Before(deadline); {
		done = 0
		for h := range hashes {
			if _, ok := s2.Cache().Peek(h); ok {
				done++
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	execs := s2.Executions()
	for h := range hashes {
		if execs[h] != 1 {
			t.Fatalf("hash %s executed %d times after replay, want 1 (execs: %v)", h, execs[h], execs)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s2.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Boot 3: the drained server compacted; replay sees terminal jobs
	// only, nothing re-enqueues, and the cache re-warms from the log.
	s3 := mk()
	if got := s3.RecoveredBacklog(); got != 0 {
		t.Fatalf("post-compaction backlog %d, want 0", got)
	}
	if got := s3.RecoveredDone(); got != 3 {
		t.Fatalf("post-compaction recovered done %d, want 3", got)
	}
	for h := range hashes {
		if _, ok := s3.Cache().Peek(h); !ok {
			t.Fatalf("hash %s not re-warmed into the cache from the compacted log", h)
		}
	}
	s3.Kill()
}

// postToHandler drives a submit through the handler without a listener.
func postToHandler(t *testing.T, s *Server, spec jobs.Spec) submitResponse {
	t.Helper()
	body, _ := json.Marshal(spec)
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code >= 400 {
		t.Fatalf("submit status %d: %s", rec.Code, rec.Body.String())
	}
	var out submitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}
