package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/jobs"
)

// LoadgenOptions shapes a self-contained load test: RunLoadgen starts a
// real Server on a loopback ephemeral port, drives a mixed workload of
// duplicate and distinct jobs through it over HTTP, drains it, and
// reports throughput, cache behavior, queue-depth percentiles, and tail
// latency. The defaults satisfy the EXP-SERVE gates.
type LoadgenOptions struct {
	Jobs     int           // total jobs; default 60 (≥ 50 for the gate)
	Clients  int           // concurrent submitting clients; default 8
	Workers  int           // server worker pool; default 2
	QueueCap int           // server queue bound; default 4 — small, so backpressure is observable
	Timeout  time.Duration // per-job deadline; default 60s
	Seed     int64         // workload shuffle seed; default 1
	Out      io.Writer     // progress log; nil = quiet
}

func (o LoadgenOptions) withDefaults() LoadgenOptions {
	if o.Jobs <= 0 {
		o.Jobs = 60
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 4
	}
	if o.Timeout <= 0 {
		o.Timeout = 60 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// LoadgenReport is the measured result of a loadgen run.
type LoadgenReport struct {
	Jobs       int // requests submitted (dup + distinct), excluding 429 retries
	DupStream  int // requests in the duplicate stream
	Distinct   int // requests in the distinct stream
	Completed  int // jobs that reached Done (including cached/coalesced)
	Failed     int
	Canceled   int
	LostStuck  int // jobs with no terminal state after drain — must be 0
	Rejected   int // 429 responses observed (requests were retried after)
	CacheHits  int // duplicate-stream requests answered from the result cache
	Coalesced  int // requests deduped onto an in-flight job
	DupHitRate float64
	Wall       time.Duration
	Throughput float64 // completed jobs per second
	LatP50     time.Duration
	LatP95     time.Duration
	LatP99     time.Duration
	LatMax     time.Duration
	DepthP50   int64
	DepthP95   int64
	DepthMax   int64
}

// Gates verifies the EXP-SERVE acceptance criteria and returns the first
// violation.
func (r *LoadgenReport) Gates() error {
	switch {
	case r.Jobs < 50:
		return fmt.Errorf("loadgen: only %d jobs driven, gate needs ≥ 50", r.Jobs)
	case r.DupHitRate < 0.40:
		return fmt.Errorf("loadgen: duplicate-stream cache-hit rate %.0f%%, gate needs ≥ 40%%", 100*r.DupHitRate)
	case r.Rejected < 1:
		return fmt.Errorf("loadgen: no 429 observed, gate needs ≥ 1 backpressure rejection")
	case r.LostStuck != 0:
		return fmt.Errorf("loadgen: %d jobs lost or stuck after drain, gate needs 0", r.LostStuck)
	case r.Failed != 0:
		return fmt.Errorf("loadgen: %d jobs failed", r.Failed)
	}
	return nil
}

// Format renders the human-readable report.
func (r *LoadgenReport) Format() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "== loadgen report ==\n")
	fmt.Fprintf(&b, "jobs submitted:        %d (%d duplicate stream, %d distinct)\n", r.Jobs, r.DupStream, r.Distinct)
	fmt.Fprintf(&b, "completed:             %d (%d failed, %d canceled, %d lost/stuck)\n", r.Completed, r.Failed, r.Canceled, r.LostStuck)
	fmt.Fprintf(&b, "backpressure (429):    %d rejections, all retried\n", r.Rejected)
	fmt.Fprintf(&b, "cache hits:            %d (duplicate-stream hit rate %.0f%%), %d coalesced\n", r.CacheHits, 100*r.DupHitRate, r.Coalesced)
	fmt.Fprintf(&b, "wall time:             %v\n", r.Wall.Round(time.Millisecond))
	fmt.Fprintf(&b, "throughput:            %.1f jobs/s\n", r.Throughput)
	fmt.Fprintf(&b, "completion latency:    p50 %v  p95 %v  p99 %v  max %v\n",
		r.LatP50.Round(time.Millisecond), r.LatP95.Round(time.Millisecond),
		r.LatP99.Round(time.Millisecond), r.LatMax.Round(time.Millisecond))
	fmt.Fprintf(&b, "queue depth:           p50 %d  p95 %d  max %d (cap was exercised)\n", r.DepthP50, r.DepthP95, r.DepthMax)
	return b.String()
}

// lgClient wraps the HTTP plumbing of one loadgen run.
type lgClient struct {
	base   string
	client *http.Client
}

func (c *lgClient) submit(spec jobs.Spec) (submitResponse, int, error) {
	body, _ := json.Marshal(spec)
	resp, err := c.client.Post(c.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return submitResponse{}, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		ra, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		return submitResponse{}, resp.StatusCode, fmt.Errorf("429 retry-after %ds", ra)
	}
	var out submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return submitResponse{}, resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return out, resp.StatusCode, fmt.Errorf("submit: HTTP %d", resp.StatusCode)
	}
	return out, resp.StatusCode, nil
}

func (c *lgClient) status(id string) (jobs.Status, error) {
	resp, err := c.client.Get(c.base + "/v1/jobs/" + id)
	if err != nil {
		return jobs.Status{}, err
	}
	defer resp.Body.Close()
	var st jobs.Status
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// awaitTerminal polls id until its state is terminal or the deadline
// passes, returning the final status.
func (c *lgClient) awaitTerminal(id string, deadline time.Time) (jobs.Status, error) {
	for {
		st, err := c.status(id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// submitWithRetry retries 429s (honoring a capped Retry-After) so
// backpressure sheds load without losing it. Returns the accepted
// response and how many 429s were absorbed.
func (c *lgClient) submitWithRetry(spec jobs.Spec, maxAttempts int) (submitResponse, int, error) {
	rejected := 0
	for attempt := 0; ; attempt++ {
		out, code, err := c.submit(spec)
		if code == http.StatusTooManyRequests {
			rejected++
			if attempt >= maxAttempts {
				return out, rejected, fmt.Errorf("still 429 after %d attempts", attempt+1)
			}
			time.Sleep(100 * time.Millisecond)
			continue
		}
		return out, rejected, err
	}
}

// loadgenWorkload builds the request mix: ~40% distinct specs (different
// molecules and convergence targets → unique hashes) and ~60% duplicate
// stream (three byte-level renderings of the same water geometry — atom
// order permuted, whitespace injected — plus repeated named specs, all
// collapsing to two canonical hashes).
func loadgenWorkload(n int, rng *rand.Rand) (distinct, dups []jobs.Spec) {
	distinctMols := []string{"h2", "heh+", "water", "methane", "ammonia"}
	nDistinct := (n * 2) / 5
	for i := 0; i < nDistinct; i++ {
		distinct = append(distinct, jobs.Spec{
			Molecule: distinctMols[i%len(distinctMols)],
			Basis:    "sto-3g",
			Mode:     []string{jobs.ModeSerial, jobs.ModeParallel, jobs.ModeResilient}[i%3],
			// Vary a physical knob so every distinct spec hashes uniquely
			// even when the molecule repeats.
			MaxIter: 90 + i,
		})
	}
	// The duplicate stream: the same physics spelled differently.
	waterVariants := []jobs.Spec{
		{Molecule: "water", Basis: "sto-3g", Mode: jobs.ModeSerial},
		{Molecule: "h2o", Basis: "STO-3G", Mode: jobs.ModeParallel}, // alias + case
		{XYZ: "3\nwater permuted\nH 0.000000  0.757200 -0.469200\nH  0.000000 -0.757200 -0.469200\nO\t0.000000 0.000000  0.117300\n"},
		{XYZ: "3\n  water spaced \nO 0.0 0.0 0.1173\nH 0.0 0.7572 -0.4692\nH 0.0 -0.7572 -0.4692\n"},
	}
	h2Variants := []jobs.Spec{
		{Molecule: "h2", Basis: "sto-3g"},
		{XYZ: "2\nh2 inline\nH 0 0 0\nH 0 0 0.74\n", Basis: "sto-3g", Mode: jobs.ModeSerial},
	}
	for i := 0; nDistinct+len(dups) < n; i++ {
		if i%3 == 0 {
			dups = append(dups, h2Variants[rng.Intn(len(h2Variants))])
		} else {
			dups = append(dups, waterVariants[rng.Intn(len(waterVariants))])
		}
	}
	return distinct, dups
}

// RunLoadgen executes the built-in load test. See LoadgenOptions.
func RunLoadgen(opt LoadgenOptions) (*LoadgenReport, error) {
	opt = opt.withDefaults()
	srv, err := New(Config{
		Workers:        opt.Workers,
		QueueCap:       opt.QueueCap,
		DefaultTimeout: opt.Timeout,
		RetryAfter:     time.Second,
	})
	if err != nil {
		return nil, err
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(opt.Out, "loadgen: serving on %s (%d workers, queue cap %d)\n", addr, opt.Workers, opt.QueueCap)
	cl := &lgClient{base: "http://" + addr, client: &http.Client{Timeout: 30 * time.Second}}

	rng := rand.New(rand.NewSource(opt.Seed))
	distinct, dups := loadgenWorkload(opt.Jobs, rng)
	rep := &LoadgenReport{Jobs: len(distinct) + len(dups), Distinct: len(distinct), DupStream: len(dups)}
	start := time.Now()

	// Phase 1 — burst: the whole distinct stream plus one instance of each
	// duplicate base, from opt.Clients concurrent clients against a queue
	// of opt.QueueCap. The burst exceeds capacity by construction, so some
	// submissions bounce with 429 and are retried — that is the
	// backpressure gate.
	warm := append(append([]jobs.Spec{}, distinct...), dups[0], dups[len(dups)-1])
	var mu sync.Mutex
	var ids []string
	var latencies []time.Duration
	var firstErr error
	noteErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	runStream := func(stream []jobs.Spec, dupStream bool) {
		sem := make(chan struct{}, opt.Clients)
		var wg sync.WaitGroup
		for _, spec := range stream {
			wg.Add(1)
			sem <- struct{}{}
			go func(spec jobs.Spec) {
				defer wg.Done()
				defer func() { <-sem }()
				t0 := time.Now()
				out, rejected, err := cl.submitWithRetry(spec, 200)
				if err != nil {
					noteErr(err)
					return
				}
				mu.Lock()
				rep.Rejected += rejected
				if out.Cached {
					if dupStream {
						rep.CacheHits++
					}
				} else if out.Coalesced {
					rep.Coalesced++
				}
				ids = append(ids, out.ID)
				mu.Unlock()
				st, err := cl.awaitTerminal(out.ID, time.Now().Add(opt.Timeout+30*time.Second))
				if err != nil {
					noteErr(err)
					return
				}
				mu.Lock()
				latencies = append(latencies, time.Since(t0))
				switch st.State {
				case jobs.StateDone:
					rep.Completed++
				case jobs.StateFailed:
					rep.Failed++
				case jobs.StateCanceled:
					rep.Canceled++
				}
				mu.Unlock()
			}(spec)
		}
		wg.Wait()
	}

	fmt.Fprintf(opt.Out, "loadgen: phase 1 — bursting %d distinct jobs (+2 warmers) to force 429s\n", len(distinct))
	runStream(warm, false)
	fmt.Fprintf(opt.Out, "loadgen: phase 1 done — %d rejections absorbed so far\n", rep.Rejected)

	// Phase 2 — the duplicate stream: byte-different spellings of already
	// warmed content, which should now be served from the canonical-hash
	// cache.
	fmt.Fprintf(opt.Out, "loadgen: phase 2 — duplicate stream of %d jobs\n", len(dups))
	runStream(dups, true)

	// Drain: stop admissions, finish the backlog, verify nothing is lost.
	drainCtx, cancel := context.WithTimeout(context.Background(), opt.Timeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil && err != context.DeadlineExceeded {
		return nil, fmt.Errorf("loadgen: drain: %w", err)
	}
	rep.Wall = time.Since(start)

	// Post-drain audit straight off the server state (HTTP is down now).
	for _, id := range ids {
		if j := srv.lookup(id); j == nil || !j.State().Terminal() {
			rep.LostStuck++
		}
	}
	if srv.queue.Len() != 0 {
		rep.LostStuck += srv.queue.Len()
	}

	if rep.DupStream > 0 {
		rep.DupHitRate = float64(rep.CacheHits) / float64(rep.DupStream)
	}
	if rep.Wall > 0 {
		rep.Throughput = float64(rep.Completed) / rep.Wall.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if n := len(latencies); n > 0 {
		rep.LatP50 = latencies[n/2]
		rep.LatP95 = latencies[(n*95)/100]
		rep.LatP99 = latencies[min((n*99)/100, n-1)]
		rep.LatMax = latencies[n-1]
	}
	depth := srv.tel.Histogram("svc.queue.depth")
	rep.DepthP50 = depth.Percentile(0.50)
	rep.DepthP95 = depth.Percentile(0.95)
	rep.DepthMax = depth.Max()

	if firstErr != nil {
		return rep, firstErr
	}
	return rep, nil
}
