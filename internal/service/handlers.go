package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/jobs"
)

// maxSpecBytes bounds a POST body — generous for inline XYZ geometries
// (the 5.0 nm paper system is ~100 KB) while keeping admission cheap.
const maxSpecBytes = 4 << 20

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/queue", s.handleQueue)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// submitResponse is the POST /v1/jobs body.
type submitResponse struct {
	ID        string        `json:"id"`
	Hash      string        `json:"hash"`
	State     jobs.State    `json:"state"`
	Cached    bool          `json:"cached,omitempty"`    // served straight from the result cache
	Coalesced bool          `json:"coalesced,omitempty"` // deduped onto an identical in-flight job
	Result    *jobs.Outcome `json:"result,omitempty"`
	NumBF     int           `json:"num_basis_functions,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		s.tel.Histogram("svc.request.post_ns").Observe(time.Since(start).Nanoseconds())
	}()

	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		return
	}
	var spec jobs.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad job spec: " + err.Error()})
		return
	}
	info, err := spec.Validate()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	spec = spec.Normalized()
	hash, err := spec.CanonicalHash()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	// Dedup layer 1: a finished identical job serves straight from cache.
	if out, ok := s.cache.Get(hash); ok {
		s.tel.Counter("svc.cache.hit").Add(1)
		j := jobs.NewCachedJob(s.newID(), hash, spec, out, time.Now())
		s.register(j, false)
		writeJSON(w, http.StatusOK, submitResponse{
			ID: j.ID, Hash: hash, State: jobs.StateDone, Cached: true,
			Result: out, NumBF: info.NumBF,
		})
		return
	}
	s.tel.Counter("svc.cache.miss").Add(1)

	// Dedup layer 2: coalesce onto an identical queued/running job — the
	// duplicate costs nothing and resolves when the original does.
	if prior := s.activeByHash(hash); prior != nil && !prior.State().Terminal() {
		s.tel.Counter("svc.jobs.coalesced").Add(1)
		writeJSON(w, http.StatusAccepted, submitResponse{
			ID: prior.ID, Hash: hash, State: prior.State(), Coalesced: true, NumBF: info.NumBF,
		})
		return
	}

	// Admission: the bounded queue is the backpressure valve.
	j := jobs.NewJob(s.newID(), hash, spec, time.Now())
	if err := s.queue.Submit(j); err != nil {
		s.tel.Counter("svc.jobs.rejected").Add(1)
		retryAfter := int(s.cfg.RetryAfter / time.Second)
		if retryAfter < 1 {
			retryAfter = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfter))
		status := http.StatusTooManyRequests
		msg := "queue full, retry later"
		if err == jobs.ErrQueueClosed {
			status = http.StatusServiceUnavailable
			msg = "server is draining"
		}
		writeJSON(w, status, errorResponse{Error: msg})
		return
	}
	s.register(j, true)
	s.tel.Counter("svc.jobs.accepted").Add(1)
	s.observeDepth()
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID: j.ID, Hash: hash, State: jobs.StateQueued, NumBF: info.NumBF,
	})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job id"})
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job id"})
		return
	}
	switch j.State() {
	case jobs.StateQueued:
		// Pull it out of the queue first so no worker claims it; if a
		// worker won the race, fall through to the running path.
		if s.queue.Remove(j.ID) {
			if changed, _ := j.MarkCanceled("canceled by request", time.Now()); changed {
				s.tel.Counter("svc.jobs.canceled").Add(1)
			}
			s.retireHash(j)
			s.observeDepth()
		} else {
			j.Cancel()
		}
	case jobs.StateRunning:
		// Signal the in-flight context; the worker records the terminal
		// state when the SCF loop observes it at the next iteration.
		j.Cancel()
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// queueResponse is the GET /v1/queue body.
type queueResponse struct {
	Depth    int            `json:"depth"`
	Capacity int            `json:"capacity"`
	Workers  int            `json:"workers"`
	Draining bool           `json:"draining"`
	States   map[string]int `json:"states"`
}

func (s *Server) handleQueue(w http.ResponseWriter, r *http.Request) {
	states := map[string]int{}
	s.mu.Lock()
	for _, j := range s.byID {
		states[string(j.State())]++
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, queueResponse{
		Depth:    s.queue.Len(),
		Capacity: s.queue.Cap(),
		Workers:  s.cfg.Workers,
		Draining: s.Draining(),
		States:   states,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.tel.Registry.WriteJSON(w)
}
