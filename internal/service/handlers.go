package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/jobs"
)

// maxSpecBytes bounds a POST body — generous for inline XYZ geometries
// (the 5.0 nm paper system is ~100 KB) while keeping admission cheap.
const maxSpecBytes = 4 << 20

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/cache/{hash}", s.handleCacheProbe)
	mux.HandleFunc("GET /v1/queue", s.handleQueue)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// submitResponse is the POST /v1/jobs body.
type submitResponse struct {
	ID        string        `json:"id"`
	Hash      string        `json:"hash"`
	State     jobs.State    `json:"state"`
	Cached    bool          `json:"cached,omitempty"`    // served straight from the result cache
	Coalesced bool          `json:"coalesced,omitempty"` // deduped onto an identical in-flight job
	Result    *jobs.Outcome `json:"result,omitempty"`
	NumBF     int           `json:"num_basis_functions,omitempty"`
	Replica   string        `json:"replica,omitempty"` // fleet member that accepted the job
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		s.tel.Histogram("svc.request.post_ns").Observe(time.Since(start).Nanoseconds())
	}()

	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		return
	}
	var spec jobs.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad job spec: " + err.Error()})
		return
	}
	info, err := spec.Validate()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	spec = spec.Normalized()
	hash, err := spec.CanonicalHash()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	f := s.currentFleet()
	self := ""
	if f != nil {
		self = f.self
	}

	// Dedup layer 1: a finished identical job serves straight from cache,
	// regardless of ring ownership — cached is cached.
	if out, ok := s.cache.Get(hash); ok {
		j := jobs.NewCachedJob(s.newID(), hash, spec, out, time.Now())
		s.register(j, false)
		writeJSON(w, http.StatusOK, submitResponse{
			ID: j.ID, Hash: hash, State: jobs.StateDone, Cached: true,
			Result: out, NumBF: info.NumBF, Replica: self,
		})
		return
	}

	// Fleet routing: a submit for a hash this replica does not own goes
	// to the owner — its cache first (one GET beats re-running an SCF),
	// then a forwarded POST. A forwarded request (loop guard) or an
	// unreachable owner is handled locally: hand-off trades placement for
	// availability, and the last-chance dedup in runJob still prevents a
	// duplicate execution.
	if f != nil && r.Header.Get(forwardedHeader) == "" {
		if owner := f.ring.Owner(hash); owner != f.self {
			if res := f.fetchPeerCache(owner, hash); res.status == http.StatusOK && res.outcome != nil {
				s.tel.Counter("svc.fleet.peer_hit").Add(1)
				s.cache.Put(hash, res.outcome)
				j := jobs.NewCachedJob(s.newID(), hash, spec, res.outcome, time.Now())
				s.register(j, false)
				writeJSON(w, http.StatusOK, submitResponse{
					ID: j.ID, Hash: hash, State: jobs.StateDone, Cached: true,
					Result: res.outcome, NumBF: info.NumBF, Replica: self,
				})
				return
			}
			if s.forwardSubmit(w, owner, spec) {
				return
			}
			s.tel.Counter("svc.fleet.handoff").Add(1)
		}
	}

	// Dedup layer 2: coalesce onto an identical queued/running job — the
	// duplicate costs nothing and resolves when the original does.
	if prior := s.activeByHash(hash); prior != nil && !prior.State().Terminal() {
		s.tel.Counter("svc.jobs.coalesced").Add(1)
		writeJSON(w, http.StatusAccepted, submitResponse{
			ID: prior.ID, Hash: hash, State: prior.State(), Coalesced: true,
			NumBF: info.NumBF, Replica: self,
		})
		return
	}

	// Admission, gate 1: the per-tenant quota — one tenant flooding the
	// queue cannot starve the rest of the fleet's clients.
	if s.tenantOverQuota(spec.Tenant) {
		s.tel.Counter("svc.jobs.quota_rejected").Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests,
			errorResponse{Error: "tenant quota exceeded, retry later"})
		return
	}

	// Admission, gate 2: the bounded queue is the backpressure valve.
	j := jobs.NewJob(s.newID(), hash, spec, time.Now())
	if err := s.queue.Submit(j); err != nil {
		s.tel.Counter("svc.jobs.rejected").Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		status := http.StatusTooManyRequests
		msg := "queue full, retry later"
		if err == jobs.ErrQueueClosed {
			status = http.StatusServiceUnavailable
			msg = "server is draining"
		}
		writeJSON(w, status, errorResponse{Error: msg})
		return
	}
	// Persist, then serve: the accept record must be durable before the
	// client sees 202, or a crash could lose an acknowledged job.
	if walErr := s.wal.AppendAccept(j, time.Now()); walErr != nil {
		s.queue.Remove(j.ID)
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "write-ahead log unavailable: " + walErr.Error()})
		return
	}
	s.register(j, true)
	s.tel.Counter("svc.jobs.accepted").Add(1)
	s.observeDepth()
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID: j.ID, Hash: hash, State: jobs.StateQueued, NumBF: info.NumBF, Replica: self,
	})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job id"})
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// listResponse is the GET /v1/jobs body: one bounded page of job
// statuses in ID order plus the cursor for the next page.
type listResponse struct {
	Jobs  []jobs.Status `json:"jobs"`
	Next  string        `json:"next,omitempty"` // pass as ?after= for the next page
	Total int           `json:"total"`          // matching jobs across all pages
}

// List pagination bounds.
const (
	defaultListLimit = 50
	maxListLimit     = 500
)

// handleList serves GET /v1/jobs?status=<s>&limit=<n>&after=<id>:
// ID-ordered, optionally filtered by lifecycle state, paginated with a
// hard page-size ceiling so one request can never marshal the entire
// registry of a long-lived server.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	filter := q.Get("status")
	switch jobs.State(filter) {
	case "", jobs.StateQueued, jobs.StateRunning, jobs.StateDone, jobs.StateFailed, jobs.StateCanceled:
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf(
			"unknown status %q (want queued, running, done, failed, or canceled)", filter)})
		return
	}
	limit := defaultListLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "limit must be a positive integer"})
			return
		}
		limit = n
	}
	if limit > maxListLimit {
		limit = maxListLimit
	}
	after := q.Get("after")

	s.mu.Lock()
	all := make([]*jobs.Job, 0, len(s.byID))
	for _, j := range s.byID {
		all = append(all, j)
	}
	s.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })

	resp := listResponse{Jobs: []jobs.Status{}}
	for _, j := range all {
		st := j.Snapshot()
		if filter != "" && st.State != jobs.State(filter) {
			continue
		}
		resp.Total++
		if j.ID <= after || len(resp.Jobs) >= limit {
			continue
		}
		resp.Jobs = append(resp.Jobs, st)
	}
	if n := len(resp.Jobs); n == limit && n < resp.Total {
		resp.Next = resp.Jobs[n-1].ID
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCacheProbe serves GET /v1/cache/{hash} — the intra-fleet
// peer-fetch path: 200 + outcome when the result is cached here, 202
// when an identical job is queued or running here (the caller may wait),
// 404 otherwise. Peek, not Get: a peer probe must not distort this
// replica's LRU order or hit/miss accounting.
func (s *Server) handleCacheProbe(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if out, ok := s.cache.Peek(hash); ok {
		writeJSON(w, http.StatusOK, out)
		return
	}
	if prior := s.activeByHash(hash); prior != nil && !prior.State().Terminal() {
		writeJSON(w, http.StatusAccepted, map[string]string{"state": string(prior.State())})
		return
	}
	writeJSON(w, http.StatusNotFound, errorResponse{Error: "not cached"})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job id"})
		return
	}
	switch j.State() {
	case jobs.StateQueued:
		// Pull it out of the queue first so no worker claims it; if a
		// worker won the race, fall through to the running path.
		if s.queue.Remove(j.ID) {
			now := time.Now()
			_ = s.wal.AppendState(j.ID, jobs.StateCanceled, j.Attempts(), "canceled by request", nil, now)
			if changed, _ := j.MarkCanceled("canceled by request", now); changed {
				s.tel.Counter("svc.jobs.canceled").Add(1)
			}
			s.retireHash(j)
			s.observeDepth()
		} else {
			j.Cancel()
		}
	case jobs.StateRunning:
		// Signal the in-flight context; the worker records the terminal
		// state when the SCF loop observes it at the next iteration.
		j.Cancel()
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// queueResponse is the GET /v1/queue body.
type queueResponse struct {
	Depth    int            `json:"depth"`
	Capacity int            `json:"capacity"`
	Workers  int            `json:"workers"`
	Draining bool           `json:"draining"`
	States   map[string]int `json:"states"`
	Replica  string         `json:"replica,omitempty"`
	Fleet    []string       `json:"fleet,omitempty"`
}

func (s *Server) handleQueue(w http.ResponseWriter, r *http.Request) {
	states := map[string]int{}
	s.mu.Lock()
	for _, j := range s.byID {
		states[string(j.State())]++
	}
	s.mu.Unlock()
	resp := queueResponse{
		Depth:    s.queue.Len(),
		Capacity: s.queue.Cap(),
		Workers:  s.cfg.Workers,
		Draining: s.Draining(),
		States:   states,
	}
	if ring, self := s.Fleet(); ring != nil {
		resp.Replica = self
		resp.Fleet = ring.Members()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.tel.Registry.WriteJSON(w)
}
