package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/jobs"
	"repro/internal/telemetry"
)

// maxSpecBytes bounds a POST body — generous for inline XYZ geometries
// (the 5.0 nm paper system is ~100 KB) while keeping admission cheap.
const maxSpecBytes = 4 << 20

// statusRecorder captures the status code a handler writes so the
// per-route request counter can label it.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// counted wraps a handler with the svc.http.requests{route=,code=}
// labeled counter.
func (s *Server) counted(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(sr, r)
		s.tel.Counter(fmt.Sprintf("svc.http.requests{route=%q,code=%q}",
			route, strconv.Itoa(sr.code))).Add(1)
	}
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.counted("/v1/jobs", s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs", s.counted("/v1/jobs", s.handleList))
	mux.HandleFunc("GET /v1/jobs/{id}", s.counted("/v1/jobs/{id}", s.handleGet))
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.counted("/v1/jobs/{id}/trace", s.handleWaterfall))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.counted("/v1/jobs/{id}", s.handleCancel))
	mux.HandleFunc("GET /v1/cache/{hash}", s.counted("/v1/cache/{hash}", s.handleCacheProbe))
	mux.HandleFunc("GET /v1/queue", s.counted("/v1/queue", s.handleQueue))
	mux.HandleFunc("GET /v1/debug/flight", s.counted("/v1/debug/flight", s.handleFlight))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// submitResponse is the POST /v1/jobs body.
type submitResponse struct {
	ID        string        `json:"id"`
	Hash      string        `json:"hash"`
	State     jobs.State    `json:"state"`
	Cached    bool          `json:"cached,omitempty"`    // served straight from the result cache
	Coalesced bool          `json:"coalesced,omitempty"` // deduped onto an identical in-flight job
	Result    *jobs.Outcome `json:"result,omitempty"`
	NumBF     int           `json:"num_basis_functions,omitempty"`
	Replica   string        `json:"replica,omitempty"`  // fleet member that accepted the job
	TraceID   string        `json:"trace_id,omitempty"` // request trace (also in X-HF-Trace)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		s.tel.Histogram("svc.request.post_ns").Observe(time.Since(start).Nanoseconds())
	}()

	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		return
	}
	// Trace ingress: inherit a propagated trace ID (fleet forward, client
	// correlation header) or mint a fresh one. Every response carries the
	// trace back in X-HF-Trace, and every span the job produces — down to
	// individual MPI ops — is stamped with it.
	trace := telemetry.SanitizeTraceID(r.Header.Get(telemetry.TraceHeader))
	if trace != "" {
		s.tel.Counter("svc.trace.propagated").Add(1)
	} else {
		trace = telemetry.NewTraceID()
		s.tel.Counter("svc.trace.minted").Add(1)
	}
	w.Header().Set(telemetry.TraceHeader, trace)
	ttel := s.tel.WithTrace(trace)
	var spec jobs.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad job spec: " + err.Error()})
		return
	}
	info, err := spec.Validate()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	spec = spec.Normalized()
	hash, err := spec.CanonicalHash()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	f := s.currentFleet()
	self := ""
	if f != nil {
		self = f.self
	}

	// Dedup layer 1: a finished identical job serves straight from cache,
	// regardless of ring ownership — cached is cached.
	if out, ok := s.cache.Get(hash); ok {
		j := jobs.NewCachedJob(s.newID(), hash, spec, out, time.Now())
		j.Trace = trace
		s.register(j, false)
		ttel.Instant("svc.submit", "cache-hit", telemetry.DriverPid, 0,
			map[string]any{"job": j.ID, "hash": hash})
		writeJSON(w, http.StatusOK, submitResponse{
			ID: j.ID, Hash: hash, State: jobs.StateDone, Cached: true,
			Result: out, NumBF: info.NumBF, Replica: self, TraceID: trace,
		})
		return
	}

	// Fleet routing: a submit for a hash this replica does not own goes
	// to the owner — its cache first (one GET beats re-running an SCF),
	// then a forwarded POST. A forwarded request (loop guard) or an
	// unreachable owner is handled locally: hand-off trades placement for
	// availability, and the last-chance dedup in runJob still prevents a
	// duplicate execution.
	if f != nil && r.Header.Get(forwardedHeader) == "" {
		if owner := f.ring.Owner(hash); owner != f.self {
			if res := f.fetchPeerCache(owner, hash); res.status == http.StatusOK && res.outcome != nil {
				s.tel.Counter("svc.fleet.peer_hit").Add(1)
				s.cache.Put(hash, res.outcome)
				j := jobs.NewCachedJob(s.newID(), hash, spec, res.outcome, time.Now())
				j.Trace = trace
				s.register(j, false)
				ttel.Instant("svc.submit", "peer-hit", telemetry.DriverPid, 0,
					map[string]any{"job": j.ID, "hash": hash, "owner": owner})
				writeJSON(w, http.StatusOK, submitResponse{
					ID: j.ID, Hash: hash, State: jobs.StateDone, Cached: true,
					Result: res.outcome, NumBF: info.NumBF, Replica: self, TraceID: trace,
				})
				return
			}
			if s.forwardSubmit(w, owner, spec, trace) {
				return
			}
			s.tel.Counter("svc.fleet.handoff").Add(1)
		}
	}

	// Dedup layer 2: coalesce onto an identical queued/running job — the
	// duplicate costs nothing and resolves when the original does.
	if prior := s.activeByHash(hash); prior != nil && !prior.State().Terminal() {
		s.tel.Counter("svc.jobs.coalesced").Add(1)
		// The coalesced submission rides the prior job's trace — that is the
		// trace its spans will actually carry.
		ttel.Instant("svc.submit", "coalesced", telemetry.DriverPid, 0,
			map[string]any{"job": prior.ID, "hash": hash})
		writeJSON(w, http.StatusAccepted, submitResponse{
			ID: prior.ID, Hash: hash, State: prior.State(), Coalesced: true,
			NumBF: info.NumBF, Replica: self, TraceID: prior.Trace,
		})
		return
	}

	// Admission, gate 1: the per-tenant quota — one tenant flooding the
	// queue cannot starve the rest of the fleet's clients.
	if s.tenantOverQuota(spec.Tenant) {
		s.tel.Counter("svc.jobs.quota_rejected").Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests,
			errorResponse{Error: "tenant quota exceeded, retry later"})
		return
	}

	// Admission, gate 2: the bounded queue is the backpressure valve.
	j := jobs.NewJob(s.newID(), hash, spec, time.Now())
	j.Trace = trace // before publication: immutable once the queue can see it
	if err := s.queue.Submit(j); err != nil {
		s.tel.Counter("svc.jobs.rejected").Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		status := http.StatusTooManyRequests
		msg := "queue full, retry later"
		if err == jobs.ErrQueueClosed {
			status = http.StatusServiceUnavailable
			msg = "server is draining"
		}
		writeJSON(w, status, errorResponse{Error: msg})
		return
	}
	// Persist, then serve: the accept record must be durable before the
	// client sees 202, or a crash could lose an acknowledged job.
	if walErr := s.wal.AppendAccept(j, time.Now()); walErr != nil {
		s.queue.Remove(j.ID)
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "write-ahead log unavailable: " + walErr.Error()})
		return
	}
	s.register(j, true)
	s.tel.Counter("svc.jobs.accepted").Add(1)
	if t := sanitizeLabelValue(spec.Tenant); t != "" {
		s.tel.Counter(fmt.Sprintf("svc.jobs.accepted{tenant=%q}", t)).Add(1)
	}
	s.observeDepth()
	ttel.Instant("svc.submit", "accepted", telemetry.DriverPid, 0,
		map[string]any{"job": j.ID, "hash": hash})
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID: j.ID, Hash: hash, State: jobs.StateQueued, NumBF: info.NumBF,
		Replica: self, TraceID: trace,
	})
}

// sanitizeLabelValue bounds a client-supplied string (tenant name) before
// it becomes a metric label: [a-zA-Z0-9_-] survive, the rest drop, length
// capped — arbitrary client bytes must not mint unbounded label values.
func sanitizeLabelValue(v string) string {
	var b strings.Builder
	for _, c := range v {
		if b.Len() >= 48 {
			break
		}
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
			b.WriteRune(c)
		}
	}
	return b.String()
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job id"})
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// listResponse is the GET /v1/jobs body: one bounded page of job
// statuses in ID order plus the cursor for the next page.
type listResponse struct {
	Jobs  []jobs.Status `json:"jobs"`
	Next  string        `json:"next,omitempty"` // pass as ?after= for the next page
	Total int           `json:"total"`          // matching jobs across all pages
}

// List pagination bounds.
const (
	defaultListLimit = 50
	maxListLimit     = 500
)

// handleList serves GET /v1/jobs?status=<s>&limit=<n>&after=<id>:
// ID-ordered, optionally filtered by lifecycle state, paginated with a
// hard page-size ceiling so one request can never marshal the entire
// registry of a long-lived server.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	filter := q.Get("status")
	switch jobs.State(filter) {
	case "", jobs.StateQueued, jobs.StateRunning, jobs.StateDone, jobs.StateFailed, jobs.StateCanceled:
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf(
			"unknown status %q (want queued, running, done, failed, or canceled)", filter)})
		return
	}
	limit := defaultListLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "limit must be a positive integer"})
			return
		}
		limit = n
	}
	if limit > maxListLimit {
		limit = maxListLimit
	}
	after := q.Get("after")

	s.mu.Lock()
	all := make([]*jobs.Job, 0, len(s.byID))
	for _, j := range s.byID {
		all = append(all, j)
	}
	s.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })

	resp := listResponse{Jobs: []jobs.Status{}}
	for _, j := range all {
		st := j.Snapshot()
		if filter != "" && st.State != jobs.State(filter) {
			continue
		}
		resp.Total++
		if j.ID <= after || len(resp.Jobs) >= limit {
			continue
		}
		resp.Jobs = append(resp.Jobs, st)
	}
	if n := len(resp.Jobs); n == limit && n < resp.Total {
		resp.Next = resp.Jobs[n-1].ID
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCacheProbe serves GET /v1/cache/{hash} — the intra-fleet
// peer-fetch path: 200 + outcome when the result is cached here, 202
// when an identical job is queued or running here (the caller may wait),
// 404 otherwise. Peek, not Get: a peer probe must not distort this
// replica's LRU order or hit/miss accounting.
func (s *Server) handleCacheProbe(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if out, ok := s.cache.Peek(hash); ok {
		writeJSON(w, http.StatusOK, out)
		return
	}
	if prior := s.activeByHash(hash); prior != nil && !prior.State().Terminal() {
		writeJSON(w, http.StatusAccepted, map[string]string{"state": string(prior.State())})
		return
	}
	writeJSON(w, http.StatusNotFound, errorResponse{Error: "not cached"})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job id"})
		return
	}
	switch j.State() {
	case jobs.StateQueued:
		// Pull it out of the queue first so no worker claims it; if a
		// worker won the race, fall through to the running path.
		if s.queue.Remove(j.ID) {
			now := time.Now()
			_ = s.wal.AppendState(j.ID, jobs.StateCanceled, j.Attempts(), "canceled by request", nil, now)
			if changed, _ := j.MarkCanceled("canceled by request", now); changed {
				s.tel.Counter("svc.jobs.canceled").Add(1)
			}
			s.retireHash(j)
			s.observeDepth()
		} else {
			j.Cancel()
		}
	case jobs.StateRunning:
		// Signal the in-flight context; the worker records the terminal
		// state when the SCF loop observes it at the next iteration.
		j.Cancel()
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// queueResponse is the GET /v1/queue body.
type queueResponse struct {
	Depth    int            `json:"depth"`
	Capacity int            `json:"capacity"`
	Workers  int            `json:"workers"`
	Draining bool           `json:"draining"`
	States   map[string]int `json:"states"`
	Replica  string         `json:"replica,omitempty"`
	Fleet    []string       `json:"fleet,omitempty"`
}

func (s *Server) handleQueue(w http.ResponseWriter, r *http.Request) {
	states := map[string]int{}
	s.mu.Lock()
	for _, j := range s.byID {
		states[string(j.State())]++
	}
	s.mu.Unlock()
	resp := queueResponse{
		Depth:    s.queue.Len(),
		Capacity: s.queue.Cap(),
		Workers:  s.cfg.Workers,
		Draining: s.Draining(),
		States:   states,
	}
	if ring, self := s.Fleet(); ring != nil {
		resp.Replica = self
		resp.Fleet = ring.Members()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is pure liveness: if the process can run this handler,
// it is alive — 200 even while draining (a draining server is alive, it
// is just not ready; that distinction lives at /readyz).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyzResponse is the GET /readyz body.
type readyzResponse struct {
	Status           string   `json:"status"` // ready | rebalancing | draining | killed
	Replica          string   `json:"replica,omitempty"`
	Workers          int      `json:"workers"` // live (post-resize) worker-pool size
	PoolEpoch        int64    `json:"pool_epoch"`
	Rebalancing      bool     `json:"rebalancing,omitempty"`
	QueueDepth       int      `json:"queue_depth"`
	QueueCap         int      `json:"queue_cap"`
	WALSegments      int      `json:"wal_segments,omitempty"`
	Ring             []string `json:"ring,omitempty"`
	RecoveredBacklog int      `json:"recovered_backlog,omitempty"`
}

// handleReadyz is readiness: 200 with the replica's serving state when
// it can accept work; 503 while draining or killed, and 503 while a
// membership join/rebalance handshake is in flight — the pool size is
// about to change, so a balancer should route elsewhere for the moment.
// Fleet experiments poll this instead of sleeping after boot.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	workers := s.WorkerCount()
	if workers == 0 {
		workers = s.cfg.Workers // pool not started yet: report the configured size
	}
	resp := readyzResponse{
		Status:           "ready",
		Workers:          workers,
		PoolEpoch:        s.PoolEpoch(),
		Rebalancing:      s.Rebalancing(),
		QueueDepth:       s.queue.Len(),
		QueueCap:         s.queue.Cap(),
		WALSegments:      s.wal.Segments(),
		RecoveredBacklog: s.recoveredPending,
	}
	if ring, self := s.Fleet(); ring != nil {
		resp.Replica = self
		resp.Ring = ring.Members()
	}
	status := http.StatusOK
	switch {
	case s.killed.Load():
		resp.Status = "killed"
		status = http.StatusServiceUnavailable
	case s.Draining():
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	case resp.Rebalancing:
		resp.Status = "rebalancing"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// handleMetrics serves the telemetry registry: Prometheus text
// exposition by default (replica as a const label on every series),
// the raw registry snapshot as JSON with ?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = s.tel.Registry.WriteJSON(w)
		return
	}
	labels := map[string]string{}
	if _, self := s.Fleet(); self != "" {
		labels["replica"] = self
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.tel.Registry.WritePrometheus(w, labels)
}

// waterfallSpan is one stitched span in a job's waterfall.
type waterfallSpan struct {
	Cat     string         `json:"cat"`
	Name    string         `json:"name"`
	Pid     int            `json:"pid"`
	Tid     int            `json:"tid"`
	StartUS float64        `json:"start_us"`         // µs since this replica's trace origin
	DurUS   float64        `json:"dur_us,omitempty"` // 0 for instants
	Phase   string         `json:"phase"`            // span | instant
	Args    map[string]any `json:"args,omitempty"`
}

// waterfallResponse is the GET /v1/jobs/{id}/trace body: everything this
// replica recorded under the job's trace ID, in start order, plus the
// job-level timings (queue wait synthesized from the status record —
// waiting in a queue emits no span).
type waterfallResponse struct {
	Job         string          `json:"job"`
	TraceID     string          `json:"trace_id"`
	State       jobs.State      `json:"state"`
	Cached      bool            `json:"cached,omitempty"`
	QueueWaitMS float64         `json:"queue_wait_ms,omitempty"`
	TotalMS     float64         `json:"total_ms,omitempty"`
	Spans       []waterfallSpan `json:"spans"`
	Categories  map[string]int  `json:"categories"` // span count per category
}

// handleWaterfall serves the stitched per-job waterfall: every span and
// instant on this replica's recorder carrying the job's trace ID. For a
// job forwarded from another replica the trace ID is the join key — the
// caller merges waterfalls (or trace files) from each replica the
// request crossed.
func (s *Server) handleWaterfall(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job id"})
		return
	}
	st := j.Snapshot()
	resp := waterfallResponse{
		Job: j.ID, TraceID: j.Trace, State: st.State, Cached: st.Cached,
		QueueWaitMS: st.QueueWaitMS, TotalMS: st.TotalMS,
		Spans: []waterfallSpan{}, Categories: map[string]int{},
	}
	if j.Trace != "" {
		for _, e := range s.tel.Recorder.Events() {
			if id, _ := e.Args[telemetry.TraceArgKey].(string); id != j.Trace {
				continue
			}
			phase := "span"
			if e.Ph == telemetry.PhaseInstant {
				phase = "instant"
			}
			resp.Spans = append(resp.Spans, waterfallSpan{
				Cat: e.Cat, Name: e.Name, Pid: e.Pid, Tid: e.Tid,
				StartUS: e.Ts, DurUS: e.Dur, Phase: phase, Args: e.Args,
			})
			resp.Categories[e.Cat]++
		}
		sort.SliceStable(resp.Spans, func(a, b int) bool {
			if resp.Spans[a].StartUS != resp.Spans[b].StartUS {
				return resp.Spans[a].StartUS < resp.Spans[b].StartUS
			}
			return resp.Spans[a].DurUS > resp.Spans[b].DurUS // parents before children
		})
	}
	s.tel.Counter("svc.trace.waterfalls").Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// handleFlight serves the most recent flight-recorder dump (404 before
// any dump has fired).
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	d := s.tel.Flight.LastDump()
	if d == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no flight dump recorded"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = d.WriteJSON(w)
}
