package service

import (
	"io"
	"testing"
)

// TestFleetChaosSmall is the scaled-down tier-1 version of the fleet
// chaos gate (the full >= 1000-job run lives behind `scaling -exp
// fleet`): 3 replicas, a 120-job duplicate storm over 6 distinct
// hashes, one replica killed mid-run with victim jobs parked on its
// queue and restarted from its WAL. Same invariants, smaller numbers.
func TestFleetChaosSmall(t *testing.T) {
	rep, err := RunFleet(FleetOptions{
		Jobs:     120,
		Distinct: 6,
		Clients:  4,
		Victims:  3,
		WALRoot:  t.TempDir(),
		Out:      io.Discard,
	})
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	for _, p := range []struct {
		name string
		run  FleetRun
	}{{"baseline", rep.Baseline}, {"chaos", rep.Chaos}} {
		if p.run.Storm.Submitted < 120 {
			t.Errorf("%s: storm submitted %d, want >= 120", p.name, p.run.Storm.Submitted)
		}
		if p.run.Lost != 0 || p.run.Failed != 0 {
			t.Errorf("%s: lost %d failed %d, want 0/0", p.name, p.run.Lost, p.run.Failed)
		}
		if p.run.MinExec != 1 || p.run.MaxExec != 1 {
			t.Errorf("%s: executions per hash %d..%d, want exactly 1",
				p.name, p.run.MinExec, p.run.MaxExec)
		}
	}
	if rep.Chaos.Reenqueued < 1 {
		t.Errorf("chaos: WAL re-enqueued %d jobs, want >= 1", rep.Chaos.Reenqueued)
	}
	if gap := rep.HitRateGapPoints(); gap > 5 {
		t.Errorf("hit-rate gap %.2f points, want <= 5 (baseline %.1f%%, chaos %.1f%%)",
			gap, rep.Baseline.Storm.HitRate(), rep.Chaos.Storm.HitRate())
	}
	if CSVFleet(rep) == "" || FormatFleet(rep) == "" {
		t.Error("empty report rendering")
	}
}
