package service

// Telemetry-driven worker-pool autoscaler: sizes the rank pool from the
// signals the server already exports — queue depth (svc.queue.depth),
// in-flight run count, and the pool gauges — instead of a side channel.
// Policy, deliberately asymmetric:
//
//   - Scale UP eagerly: when queued depth exceeds HighDepthPerWorker ×
//     workers, double the pool (capped at Max). A burst is cheapest to
//     absorb immediately; the join handshake makes admission safe.
//   - Scale DOWN cautiously (hysteresis): only after DownAfterTicks
//     consecutive idle observations (empty queue AND zero running jobs),
//     halve the pool (floored at Min). One busy tick resets the streak,
//     so oscillating load cannot flap the pool.
//   - Cooldown between any two scaling events bounds the rate of epoch
//     churn regardless of how noisy the signals get.
//
// Retired workers finish their current job before exiting (see
// Server.Resize), so a scale-down can never lose work.

import (
	"time"
)

// AutoscalerConfig shapes StartAutoscaler. Zero values take defaults.
type AutoscalerConfig struct {
	Min      int           // pool floor; default 1
	Max      int           // pool ceiling; default 8
	Interval time.Duration // observation period; default 20ms
	// HighDepthPerWorker is the queued-jobs-per-worker threshold that
	// triggers a scale-up; default 2.
	HighDepthPerWorker float64
	// DownAfterTicks is how many consecutive idle observations precede a
	// scale-down; default 8.
	DownAfterTicks int
	// Cooldown is the minimum gap between scaling events; default
	// 2×Interval.
	Cooldown time.Duration
}

func (c AutoscalerConfig) withDefaults() AutoscalerConfig {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 8
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Interval <= 0 {
		c.Interval = 20 * time.Millisecond
	}
	if c.HighDepthPerWorker <= 0 {
		c.HighDepthPerWorker = 2
	}
	if c.DownAfterTicks <= 0 {
		c.DownAfterTicks = 8
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * c.Interval
	}
	return c
}

// StartAutoscaler runs the scaling loop in a background goroutine until
// the server's background channel closes (Drain/Kill/Close). Call after
// StartWorkers.
func (s *Server) StartAutoscaler(cfg AutoscalerConfig) {
	cfg = cfg.withDefaults()
	go s.autoscaleLoop(cfg)
}

func (s *Server) autoscaleLoop(cfg AutoscalerConfig) {
	t := time.NewTicker(cfg.Interval)
	defer t.Stop()
	idleTicks := 0
	var lastEvent time.Time
	for {
		select {
		case <-s.stopBg:
			return
		case now := <-t.C:
			if s.killed.Load() {
				return
			}
			depth := s.queue.Len()
			running := s.running.Load()
			workers := s.WorkerCount()

			if depth == 0 && running == 0 {
				idleTicks++
			} else {
				idleTicks = 0
			}
			if now.Sub(lastEvent) < cfg.Cooldown {
				continue
			}
			switch {
			case float64(depth) > cfg.HighDepthPerWorker*float64(workers) && workers < cfg.Max:
				target := workers * 2
				if target > cfg.Max {
					target = cfg.Max
				}
				s.Resize(target)
				lastEvent = now
				idleTicks = 0
			case idleTicks >= cfg.DownAfterTicks && workers > cfg.Min:
				target := workers / 2
				if target < cfg.Min {
					target = cfg.Min
				}
				s.Resize(target)
				lastEvent = now
				idleTicks = 0
			}
		}
	}
}
