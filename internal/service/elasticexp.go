package service

// The elastic serving experiment: one hfserve replica boots with a
// single worker, an attached membership, and the telemetry-driven
// autoscaler, then takes a burst of distinct submissions over real HTTP.
// The gates assert the elastic loop end to end:
//
//   - the autoscaler grows the pool while the burst is queued (scale-up
//     events fire, the pool peaks above its floor, and the growth rode
//     the membership join protocol — joins announced and committed);
//   - zero jobs are lost across the grows and shrinks: every accepted
//     job reaches a terminal Done state;
//   - once the burst drains, hysteresis shrinks the pool back to the
//     floor (scale-down events fire) — capacity is returned, not leaked.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/telemetry"
)

// ElasticServeOptions shapes RunElasticServe.
type ElasticServeOptions struct {
	Jobs    int // burst size (distinct specs); default 40
	MaxPool int // autoscaler ceiling; default 8
	Out     io.Writer
}

func (o ElasticServeOptions) withDefaults() ElasticServeOptions {
	if o.Jobs <= 0 {
		o.Jobs = 40
	}
	if o.MaxPool <= 0 {
		o.MaxPool = 8
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// ElasticServeResult is the outcome of the elastic serving run.
type ElasticServeResult struct {
	Submitted      int
	Done           int
	Lost           int // accepted jobs that never reached Done
	PeakPool       int
	FinalPool      int
	ScaleUps       int64
	ScaleDowns     int64
	JoinsAnnounced int64
	JoinsCommitted int64
	PoolEpoch      int64
	WallMS         float64
}

// RunElasticServe runs the elastic serving experiment per the package
// comment above. It returns an error only on harness failures (bind,
// HTTP transport); gate evaluation belongs to the caller.
func RunElasticServe(opt ElasticServeOptions) (*ElasticServeResult, error) {
	opt = opt.withDefaults()
	tel := telemetry.NewSession()
	s, err := New(Config{
		Workers:        1,
		QueueCap:       2 * opt.Jobs,
		DefaultTimeout: time.Minute,
		Telemetry:      tel,
	})
	if err != nil {
		return nil, err
	}
	s.AttachMembership(cluster.NewMembership(1, tel))
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s.StartAutoscaler(AutoscalerConfig{
		Min: 1, Max: opt.MaxPool,
		Interval:       10 * time.Millisecond,
		DownAfterTicks: 5,
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = s.Drain(ctx)
		cancel()
	}()

	client := &http.Client{Timeout: 30 * time.Second}
	res := &ElasticServeResult{}
	start := time.Now()

	// The burst: distinct specs (MaxIter varies) so every job pays for a
	// real SCF run — no cache hits to hide lost work behind. Water rather
	// than H2 so one worker cannot drain the burst as fast as it arrives;
	// the queue must actually back up for the autoscaler to see it.
	ids := make([]string, 0, opt.Jobs)
	for i := 0; i < opt.Jobs; i++ {
		spec := jobs.Spec{Molecule: "water", Basis: "sto-3g", Mode: jobs.ModeSerial, MaxIter: 20 + i}
		body, err := json.Marshal(spec)
		if err != nil {
			return nil, err
		}
		resp, err := client.Post("http://"+addr+"/v1/jobs", "application/json",
			strings.NewReader(string(body)))
		if err != nil {
			return nil, fmt.Errorf("POST: %w", err)
		}
		var out struct {
			ID    string `json:"id"`
			Error string `json:"error"`
		}
		decErr := json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if resp.StatusCode >= 400 {
			return nil, fmt.Errorf("submit %d: status %d (%s)", i, resp.StatusCode, out.Error)
		}
		if decErr != nil {
			return nil, fmt.Errorf("submit %d: bad response: %w", i, decErr)
		}
		ids = append(ids, out.ID)
		res.Submitted++
	}

	// Track the pool peak while the burst drains.
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		if w := s.WorkerCount(); w > res.PeakPool {
			res.PeakPool = w
		}
		done := 0
		for _, id := range ids {
			if j := s.lookup(id); j != nil && j.State() == jobs.StateDone {
				done++
			}
		}
		res.Done = done
		if done == len(ids) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	res.Lost = res.Submitted - res.Done

	// Let hysteresis return the pool to the floor.
	shrinkBy := time.Now().Add(5 * time.Second)
	for time.Now().Before(shrinkBy) && s.WorkerCount() > 1 {
		time.Sleep(10 * time.Millisecond)
	}
	res.FinalPool = s.WorkerCount()
	res.ScaleUps = tel.Counter("elastic.scale_up").Value()
	res.ScaleDowns = tel.Counter("elastic.scale_down").Value()
	res.JoinsAnnounced = tel.Counter("elastic.joins.announced").Value()
	res.JoinsCommitted = tel.Counter("elastic.joins.committed").Value()
	res.PoolEpoch = s.PoolEpoch()
	res.WallMS = float64(time.Since(start).Microseconds()) / 1000

	fmt.Fprintf(opt.Out, "elastic serve: %d jobs, pool 1 -> peak %d -> final %d, %d ups / %d downs, %d lost, %.0f ms\n",
		res.Submitted, res.PeakPool, res.FinalPool, res.ScaleUps, res.ScaleDowns, res.Lost, res.WallMS)
	return res, nil
}
