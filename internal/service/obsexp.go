package service

// The observability experiment (EXP-OBS): a 3-replica fleet serves one
// traced request end to end, and the gates verify the nervous system —
//
//   - a submit to a NON-owning replica is forwarded to the owner with
//     its trace ID riding the X-HF-Trace header, and the owner's
//     stitched waterfall (GET /v1/jobs/{id}/trace) spans every layer:
//     service (svc.job) → runner (job.run) → SCF (scf.iter) → Fock
//     (fock.build, fock.task) → DDI/MPI (dlb.draw, mpi.op), all under
//     the single trace ID the client saw;
//   - a repeat submit to a third replica is served by a peer cache
//     fetch (cached result, svc.fleet.peer_hit), with its own trace;
//   - a deliberately unconvergeable job fails terminally and triggers a
//     flight-recorder dump, served at GET /v1/debug/flight;
//   - the replicas' recorders merge (pid offset per replica) into one
//     fleet-wide Chrome trace that passes both structural validation
//     (ValidateTrace) and trace-ID continuity (ValidateContinuity) —
//     the same checks cmd/tracecheck re-runs over the emitted file.
//
// Submissions are sequential — each job completes before the next
// starts — so span nesting on shared lanes stays strict and the merged
// trace is validatable.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/jobs"
	"repro/internal/telemetry"
)

// ObsOptions shapes RunObservability.
type ObsOptions struct {
	TracePath string // merged fleet trace output path; "" skips the file
	Out       io.Writer
}

// waterfallCategories are the span categories the stitched waterfall
// must contain for the chain to count as end-to-end.
var waterfallCategories = []string{
	"svc.job", "job.run", "scf.iter", "fock.build", "fock.task", "mpi.op", "dlb.draw",
}

// ObsReport is the experiment outcome; Failures lists every violated
// gate (empty = pass).
type ObsReport struct {
	TraceID        string         // the forwarded request's trace
	ForwardedJob   string         // job ID on the owning replica
	Owner          string         // replica that owned and ran the job
	Ingress        string         // replica the client submitted to
	WaterfallSpans int            // spans in the stitched waterfall
	Categories     map[string]int // per-category span counts in the waterfall
	PeerHitJob     string         // job served by the third replica's peer fetch
	PeerCached     bool
	FailedJob      string // the unconvergeable job
	FlightEntries  int    // entries in the failure flight dump
	TraceEvents    int    // events in the merged fleet trace
	ContinuityOK   bool
	Failures       []string
}

// Passed reports whether every gate held.
func (r *ObsReport) Passed() bool { return len(r.Failures) == 0 }

func (r *ObsReport) fail(format string, a ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, a...))
}

// waitReady polls every replica's /readyz until all report ready.
func (h *fleetHarness) waitReady(within time.Duration) error {
	deadline := time.Now().Add(within)
	for _, name := range h.names {
		for {
			resp, err := h.client.Get("http://" + h.addrs[name] + "/readyz")
			if err == nil {
				code := resp.StatusCode
				resp.Body.Close()
				if code == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("replica %s never became ready", name)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return nil
}

// obsSubmit POSTs spec to the named replica and decodes the response.
func (h *fleetHarness) obsSubmit(name string, spec jobs.Spec) (submitResponse, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return submitResponse{}, err
	}
	resp, err := h.client.Post("http://"+h.addrs[name]+"/v1/jobs", "application/json",
		strings.NewReader(string(body)))
	if err != nil {
		return submitResponse{}, fmt.Errorf("POST to %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return submitResponse{}, fmt.Errorf("replica %s: status %d (%s)", name, resp.StatusCode, e.Error)
	}
	var out submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return submitResponse{}, fmt.Errorf("replica %s: bad response: %w", name, err)
	}
	return out, nil
}

// waitState polls the job on the named replica until it reaches want.
func (h *fleetHarness) waitState(name, id string, want jobs.State, within time.Duration) (jobs.Status, error) {
	deadline := time.Now().Add(within)
	var st jobs.Status
	for time.Now().Before(deadline) {
		resp, err := h.client.Get(fmt.Sprintf("http://%s/v1/jobs/%s", h.addrs[name], id))
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err == nil && st.State == want {
				return st, nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return st, fmt.Errorf("job %s on %s: state %q, wanted %q (timeout %v)",
		id, name, st.State, want, within)
}

// fetchWaterfall GETs the stitched waterfall for a job.
func (h *fleetHarness) fetchWaterfall(name, id string) (waterfallResponse, error) {
	var wf waterfallResponse
	resp, err := h.client.Get(fmt.Sprintf("http://%s/v1/jobs/%s/trace", h.addrs[name], id))
	if err != nil {
		return wf, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return wf, fmt.Errorf("waterfall for %s on %s: status %d", id, name, resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&wf)
	return wf, err
}

// mergedFleetTrace concatenates every replica's recorder into one event
// slice, offsetting pids by 100 per replica so lanes never collide.
func (h *fleetHarness) mergedFleetTrace() []telemetry.Event {
	var events []telemetry.Event
	for i, name := range h.names {
		for _, e := range h.servers[name].Telemetry().Recorder.Events() {
			e.Pid += 100 * i
			events = append(events, e)
		}
	}
	return events
}

// RunObservability executes the experiment and returns the report (the
// error return is for harness failures — gate violations land in
// report.Failures so the caller can print them all).
func RunObservability(opt ObsOptions) (*ObsReport, error) {
	if opt.Out == nil {
		opt.Out = io.Discard
	}
	rep := &ObsReport{Categories: map[string]int{}}

	fopt := FleetOptions{Replicas: 3, Workers: 2, Distinct: 1}.withDefaults()
	h, err := bootFleet(fopt)
	if err != nil {
		return nil, fmt.Errorf("booting fleet: %w", err)
	}
	defer h.drainAll()
	if err := h.waitReady(10 * time.Second); err != nil {
		return nil, err
	}
	fmt.Fprintf(opt.Out, "  fleet of %d ready: %v\n", len(h.names), h.names)
	ring, _ := h.servers[h.names[0]].Fleet()

	// --- Gate 1: forwarded submit, end-to-end waterfall ---------------
	spec := jobs.Spec{Molecule: "water", Basis: "sto-3g", Mode: jobs.ModeResilient,
		Ranks: 2, Threads: 2}
	hash, err := spec.CanonicalHash()
	if err != nil {
		return nil, err
	}
	owner := ring.Owner(hash)
	var ingress, third string
	for _, name := range h.names {
		if name == owner {
			continue
		}
		if ingress == "" {
			ingress = name
		} else {
			third = name
		}
	}
	rep.Owner, rep.Ingress = owner, ingress

	sub, err := h.obsSubmit(ingress, spec)
	if err != nil {
		return nil, fmt.Errorf("forwarded submit: %w", err)
	}
	rep.TraceID, rep.ForwardedJob = sub.TraceID, sub.ID
	if sub.TraceID == "" {
		rep.fail("submit response carried no trace ID")
	}
	if sub.Replica != owner {
		rep.fail("submit to %s was answered by %q, expected forward to owner %q",
			ingress, sub.Replica, owner)
	}
	if _, err := h.waitState(owner, sub.ID, jobs.StateDone, time.Minute); err != nil {
		return nil, err
	}
	wf, err := h.fetchWaterfall(owner, sub.ID)
	if err != nil {
		return nil, err
	}
	rep.WaterfallSpans, rep.Categories = len(wf.Spans), wf.Categories
	if wf.TraceID != sub.TraceID {
		rep.fail("waterfall trace %q != submit trace %q", wf.TraceID, sub.TraceID)
	}
	for _, cat := range waterfallCategories {
		if wf.Categories[cat] == 0 {
			rep.fail("waterfall missing %s spans (chain broken at that layer)", cat)
		}
	}
	fmt.Fprintf(opt.Out, "  forwarded %s→%s: job %s trace %s, waterfall %d spans %v\n",
		ingress, owner, sub.ID, sub.TraceID, len(wf.Spans), wf.Categories)

	// --- Gate 2: peer cache fetch on a third replica ------------------
	peerHitsBefore := h.servers[third].Telemetry().Counter("svc.fleet.peer_hit").Value()
	sub2, err := h.obsSubmit(third, spec)
	if err != nil {
		return nil, fmt.Errorf("peer-fetch submit: %w", err)
	}
	rep.PeerHitJob, rep.PeerCached = sub2.ID, sub2.Cached
	if !sub2.Cached {
		rep.fail("submit to third replica %s was not served from cache", third)
	}
	if got := h.servers[third].Telemetry().Counter("svc.fleet.peer_hit").Value(); got <= peerHitsBefore {
		rep.fail("no svc.fleet.peer_hit recorded on %s (before=%d after=%d)", third, peerHitsBefore, got)
	}
	if sub2.TraceID == "" {
		rep.fail("peer-fetched submit carried no trace ID")
	}
	fmt.Fprintf(opt.Out, "  peer fetch on %s: job %s cached=%v trace %s\n",
		third, sub2.ID, sub2.Cached, sub2.TraceID)

	// --- Gate 3: failure flight dump ----------------------------------
	failSpec := jobs.Spec{Molecule: "water", Basis: "sto-3g", Mode: jobs.ModeSerial, MaxIter: 1}
	failHash, err := failSpec.CanonicalHash()
	if err != nil {
		return nil, err
	}
	failOwner := ring.Owner(failHash)
	sub3, err := h.obsSubmit(failOwner, failSpec)
	if err != nil {
		return nil, fmt.Errorf("failing submit: %w", err)
	}
	rep.FailedJob = sub3.ID
	if _, err := h.waitState(failOwner, sub3.ID, jobs.StateFailed, time.Minute); err != nil {
		return nil, err
	}
	resp, err := h.client.Get("http://" + h.addrs[failOwner] + "/v1/debug/flight")
	if err != nil {
		return nil, err
	}
	var dump telemetry.FlightDump
	decErr := json.NewDecoder(resp.Body).Decode(&dump)
	resp.Body.Close()
	switch {
	case resp.StatusCode != http.StatusOK:
		rep.fail("GET /v1/debug/flight on %s: status %d, want 200 after job failure", failOwner, resp.StatusCode)
	case decErr != nil:
		rep.fail("flight dump unreadable: %v", decErr)
	case len(dump.Entries) == 0:
		rep.fail("flight dump has no entries")
	default:
		rep.FlightEntries = len(dump.Entries)
	}
	fmt.Fprintf(opt.Out, "  failure on %s: job %s failed, flight dump %d entries (reason %q)\n",
		failOwner, sub3.ID, len(dump.Entries), dump.Reason)

	// --- Gate 4: merged fleet trace validates, continuity holds -------
	events := h.mergedFleetTrace()
	rep.TraceEvents = len(events)
	var buf bytes.Buffer
	if err := telemetry.WriteTraceEvents(&buf, events); err != nil {
		return nil, err
	}
	if _, err := telemetry.ValidateTrace(buf.Bytes()); err != nil {
		rep.fail("merged fleet trace invalid: %v", err)
	}
	cont, err := telemetry.ValidateContinuity(buf.Bytes())
	if err != nil {
		rep.fail("trace continuity broken: %v", err)
	} else {
		rep.ContinuityOK = true
		fmt.Fprintf(opt.Out, "  merged trace: %d events, %d request traces, %d traced spans\n",
			len(events), cont.Traces, cont.Spans)
	}
	if opt.TracePath != "" {
		f, err := os.Create(opt.TracePath)
		if err != nil {
			return nil, fmt.Errorf("writing trace: %w", err)
		}
		_, wErr := f.Write(buf.Bytes())
		if cErr := f.Close(); wErr == nil {
			wErr = cErr
		}
		if wErr != nil {
			return nil, fmt.Errorf("writing trace: %w", wErr)
		}
		fmt.Fprintf(opt.Out, "  fleet trace written to %s\n", opt.TracePath)
	}
	return rep, nil
}

// FormatObservability renders the report.
func FormatObservability(r *ObsReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  forwarded submit    %s → %s (job %s, trace %s)\n",
		r.Ingress, r.Owner, r.ForwardedJob, r.TraceID)
	fmt.Fprintf(&b, "  waterfall           %d spans: %v\n", r.WaterfallSpans, r.Categories)
	fmt.Fprintf(&b, "  peer cache fetch    job %s cached=%v\n", r.PeerHitJob, r.PeerCached)
	fmt.Fprintf(&b, "  failure flight dump job %s, %d entries\n", r.FailedJob, r.FlightEntries)
	fmt.Fprintf(&b, "  merged fleet trace  %d events, continuity ok=%v\n", r.TraceEvents, r.ContinuityOK)
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  GATE FAILED: %s\n", f)
	}
	if r.Passed() {
		b.WriteString("  all observability gates held\n")
	}
	return b.String()
}
