package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
)

// TestResizeZeroJobsLost: shrinking and regrowing the worker pool while
// a burst is in flight must not lose a single accepted job — retirees
// exit at claim boundaries, never mid-job.
func TestResizeZeroJobsLost(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 3, QueueCap: 64, DefaultTimeout: time.Minute}, true)

	ids := make([]string, 0, 10)
	for i := 0; i < 10; i++ {
		out, resp := postJob(t, ts, jobs.Spec{
			Molecule: "water", Basis: "sto-3g", Mode: jobs.ModeSerial, MaxIter: 30 + i,
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		ids = append(ids, out.ID)
	}

	if from, to := s.Resize(1); from != 3 || to != 1 {
		t.Fatalf("shrink: %d -> %d, want 3 -> 1", from, to)
	}
	if w := s.WorkerCount(); w != 1 {
		t.Fatalf("after shrink: %d workers", w)
	}
	if from, to := s.Resize(4); from != 1 || to != 4 {
		t.Fatalf("grow: %d -> %d, want 1 -> 4", from, to)
	}
	if s.PoolEpoch() != 2 {
		t.Fatalf("pool epoch = %d after two resizes", s.PoolEpoch())
	}

	for _, id := range ids {
		if st := awaitTerminal(t, ts, id); st.State != jobs.StateDone {
			t.Fatalf("job %s ended %s after resizes, want done", id, st.State)
		}
	}
}

// TestResizeRidesJoinProtocol: with a membership attached, a pool grow
// must go announce -> handshake -> commit, and a shrink must be recorded
// as a membership shrink.
func TestResizeRidesJoinProtocol(t *testing.T) {
	s, _ := testServer(t, Config{Workers: 2, QueueCap: 8}, true)
	m := cluster.NewMembership(2, s.Telemetry())
	s.AttachMembership(m)

	s.Resize(4)
	if m.Size() != 4 || m.Epoch() != 1 {
		t.Fatalf("after grow: membership size=%d epoch=%d, want 4/1", m.Size(), m.Epoch())
	}
	if n := s.Telemetry().Counter("elastic.joins.committed").Value(); n != 1 {
		t.Fatalf("joins.committed = %d, want 1 (grow must ride the protocol)", n)
	}
	s.Resize(1)
	if m.Size() != 1 || m.Epoch() != 2 {
		t.Fatalf("after shrink: membership size=%d epoch=%d, want 1/2", m.Size(), m.Epoch())
	}
	if w := s.WorkerCount(); w != 1 {
		t.Fatalf("worker count = %d, want 1", w)
	}
}

// TestAutoscalerGrowAndShrink: a queued burst must scale the pool up,
// and the idle hysteresis must return it to the floor — with every job
// finishing.
func TestAutoscalerGrowAndShrink(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueCap: 64, DefaultTimeout: time.Minute}, true)
	s.AttachMembership(cluster.NewMembership(1, s.Telemetry()))
	s.StartAutoscaler(AutoscalerConfig{
		Min: 1, Max: 4, Interval: 5 * time.Millisecond, DownAfterTicks: 3,
	})

	// Submit the burst concurrently: a serial submit loop drains as fast
	// as one worker runs, so the queue would never back up enough to
	// trip the scale-up threshold.
	const burst = 12
	idCh := make(chan string, burst)
	for i := 0; i < 12; i++ {
		go func(i int) {
			out, resp := postJob(t, ts, jobs.Spec{
				Molecule: "water", Basis: "sto-3g", Mode: jobs.ModeSerial, MaxIter: 40 + i,
			})
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("submit %d: HTTP %d", i, resp.StatusCode)
				idCh <- ""
				return
			}
			idCh <- out.ID
		}(i)
	}
	ids := make([]string, 0, burst)
	for i := 0; i < burst; i++ {
		if id := <-idCh; id != "" {
			ids = append(ids, id)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	for _, id := range ids {
		if st := awaitTerminal(t, ts, id); st.State != jobs.StateDone {
			t.Fatalf("job %s ended %s, want done", id, st.State)
		}
	}
	if n := s.Telemetry().Counter("elastic.scale_up").Value(); n < 1 {
		t.Fatalf("scale_up = %d, want >= 1", n)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && s.WorkerCount() > 1 {
		time.Sleep(5 * time.Millisecond)
	}
	if w := s.WorkerCount(); w != 1 {
		t.Fatalf("pool = %d after idle, hysteresis never shrank it", w)
	}
	if n := s.Telemetry().Counter("elastic.scale_down").Value(); n < 1 {
		t.Fatalf("scale_down = %d, want >= 1", n)
	}
}

// flakyPeer fails the first n requests at the transport level (hijack +
// close, so the client sees a connection error, not an HTTP status) and
// then serves the given status.
func flakyPeer(t *testing.T, failFirst int, thenStatus int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n <= int64(failFirst) {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("test listener cannot hijack")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatalf("hijack: %v", err)
			}
			conn.Close()
			return
		}
		w.WriteHeader(thenStatus)
		if thenStatus == http.StatusOK {
			json.NewEncoder(w).Encode(&jobs.Outcome{})
		}
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

// TestFleetFetchRetryTransient: a peer that drops two connections and
// then answers must be re-probed (with the retries counted) and the
// third probe's answer returned.
func TestFleetFetchRetryTransient(t *testing.T) {
	peer, calls := flakyPeer(t, 2, http.StatusOK)
	s, _ := testServer(t, Config{Workers: 1, QueueCap: 8}, false)
	s.ConfigureFleet("r0", map[string]string{
		"r0": "127.0.0.1:1",
		"p":  strings.TrimPrefix(peer.URL, "http://"),
	}, 16)

	res := s.currentFleet().fetchPeerCache("p", "deadbeef")
	if res.status != http.StatusOK || res.outcome == nil {
		t.Fatalf("fetch after transient failures: status=%d outcome=%v", res.status, res.outcome)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("peer probed %d times, want 3 (1 probe + 2 retries)", n)
	}
	if n := s.Telemetry().Counter("svc.fleet.fetch_retries").Value(); n != 2 {
		t.Fatalf("svc.fleet.fetch_retries = %d, want 2", n)
	}
}

// TestFleetFetchRetryBounded: a peer that never answers is given up on
// after the retry budget — and an HTTP miss (404) is an answer, not a
// failure, so it must not be retried at all.
func TestFleetFetchRetryBounded(t *testing.T) {
	down, downCalls := flakyPeer(t, 1<<30, 0)
	miss, missCalls := flakyPeer(t, 0, http.StatusNotFound)
	s, _ := testServer(t, Config{Workers: 1, QueueCap: 8}, false)
	s.ConfigureFleet("r0", map[string]string{
		"r0":   "127.0.0.1:1",
		"down": strings.TrimPrefix(down.URL, "http://"),
		"miss": strings.TrimPrefix(miss.URL, "http://"),
	}, 16)
	f := s.currentFleet()

	if res := f.fetchPeerCache("down", "deadbeef"); res.status != 0 {
		t.Fatalf("dead peer: status = %d, want 0", res.status)
	}
	if n := downCalls.Load(); n != int64(1+fetchRetries) {
		t.Fatalf("dead peer probed %d times, want %d", n, 1+fetchRetries)
	}
	if res := f.fetchPeerCache("miss", "deadbeef"); res.status != http.StatusNotFound {
		t.Fatalf("missing hash: status = %d, want 404", res.status)
	}
	if n := missCalls.Load(); n != 1 {
		t.Fatalf("404 answer re-probed: %d calls, want 1", n)
	}
	if res := f.fetchPeerCache("stranger", "deadbeef"); res.status != 0 {
		t.Fatalf("unknown member: status = %d, want 0 with no probes", res.status)
	}
}

// TestFetchBackoffJitterBounds: the retry backoff is full jitter inside
// [0, 5ms * 2^attempt) and deterministic per (peer, hash, attempt).
func TestFetchBackoffJitterBounds(t *testing.T) {
	for attempt := 0; attempt < 4; attempt++ {
		window := 5 * time.Millisecond << uint(attempt)
		for _, peer := range []string{"r1", "r2", "far-away"} {
			d := fetchBackoff(peer, "deadbeef", attempt)
			if d < 0 || d >= window {
				t.Fatalf("fetchBackoff(%q, %d) = %v outside [0, %v)", peer, attempt, d, window)
			}
			if d != fetchBackoff(peer, "deadbeef", attempt) {
				t.Fatalf("fetchBackoff(%q, %d) not deterministic", peer, attempt)
			}
		}
	}
}

// TestReadyzRebalancing503: while a join handshake is in flight the
// replica must fail readiness (load balancers stop routing to it) and
// report the rank-pool size and epoch; after commit it is ready again.
func TestReadyzRebalancing503(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 2, QueueCap: 8}, true)
	m := cluster.NewMembership(2, s.Telemetry())
	s.AttachMembership(m)

	readyz := func() (readyzResponse, int) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rz readyzResponse
		if err := json.NewDecoder(resp.Body).Decode(&rz); err != nil {
			t.Fatal(err)
		}
		return rz, resp.StatusCode
	}

	rz, code := readyz()
	if code != http.StatusOK || rz.Status != "ready" {
		t.Fatalf("before handshake: HTTP %d status %q", code, rz.Status)
	}
	if rz.Workers != 2 || rz.PoolEpoch != 0 {
		t.Fatalf("readyz pool report: workers=%d epoch=%d, want 2/0", rz.Workers, rz.PoolEpoch)
	}

	m.Announce(1, "joiner")
	if !m.BeginRebalance() {
		t.Fatal("BeginRebalance failed")
	}
	rz, code = readyz()
	if code != http.StatusServiceUnavailable || rz.Status != "rebalancing" || !rz.Rebalancing {
		t.Fatalf("during handshake: HTTP %d status %q rebalancing=%v, want 503/rebalancing/true",
			code, rz.Status, rz.Rebalancing)
	}

	m.CommitJoins(nil)
	s.Resize(3) // the committed rank actually enters the pool
	rz, code = readyz()
	if code != http.StatusOK || rz.Status != "ready" {
		t.Fatalf("after commit: HTTP %d status %q", code, rz.Status)
	}
	if rz.Workers != 3 || rz.PoolEpoch != 1 {
		t.Fatalf("after grow: workers=%d epoch=%d, want 3/1", rz.Workers, rz.PoolEpoch)
	}
}
