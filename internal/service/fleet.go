package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/jobs"
	"repro/internal/telemetry"
)

// Fleet support: N hfserve replicas form a fleet with consistent-hash
// ownership of job content hashes. A replica receiving a submit it does
// not own forwards the POST to the owner (one hop, guarded by the
// X-HF-Forwarded header); if the owner is unreachable the receiving
// replica hands the job off to itself so availability survives a dead
// peer. Result caches are sharded the same way, with a peer-fetch path
// (GET /v1/cache/{hash}) so any replica can serve any cached result at
// the cost of one intra-fleet hop.

// forwardedHeader marks an intra-fleet forwarded submit. A forwarded
// request is always handled locally — one hop maximum, so a stale or
// disagreeing ring can never produce a routing loop.
const forwardedHeader = "X-HF-Forwarded"

// fleet is a Server's view of its replica group.
type fleet struct {
	self  string            // this replica's name
	addrs map[string]string // replica name → host:port (includes self)
	ring  *Ring
	hc    *http.Client
	tel   *telemetry.Session // retry accounting (svc.fleet.fetch_retries)
}

// ConfigureFleet joins the server to a replica group. self names this
// replica; addrs maps every member name (including self) to its
// host:port. Call before Start. vnodes <= 0 takes DefaultVNodes.
func (s *Server) ConfigureFleet(self string, addrs map[string]string, vnodes int) {
	names := make([]string, 0, len(addrs))
	for n := range addrs {
		names = append(names, n)
	}
	cp := make(map[string]string, len(addrs))
	for n, a := range addrs {
		cp[n] = a
	}
	s.fleetMu.Lock()
	s.fleet = &fleet{
		self:  self,
		addrs: cp,
		ring:  NewRing(names, vnodes),
		hc:    &http.Client{Timeout: 5 * time.Second},
		tel:   s.tel,
	}
	s.fleetMu.Unlock()
}

// Fleet returns the current ring ("" members when not configured) and
// this replica's name.
func (s *Server) Fleet() (*Ring, string) {
	s.fleetMu.Lock()
	defer s.fleetMu.Unlock()
	if s.fleet == nil {
		return nil, ""
	}
	return s.fleet.ring, s.fleet.self
}

// currentFleet snapshots the fleet pointer.
func (s *Server) currentFleet() *fleet {
	s.fleetMu.Lock()
	defer s.fleetMu.Unlock()
	return s.fleet
}

// peerList returns the fleet members other than self.
func (f *fleet) peerList() []string {
	var out []string
	for n := range f.addrs {
		if n != f.self {
			out = append(out, n)
		}
	}
	return out
}

// peerCacheResult is one peer's answer to a cache probe.
type peerCacheResult struct {
	status  int // 200 cached, 202 in flight, 404 miss, 0 unreachable
	outcome *jobs.Outcome
}

// fetchRetries bounds the re-probes of an unreachable peer: one probe
// plus up to two retries. A transient connection refusal (peer
// restarting, listener backlog full) is worth a short wait; a peer that
// stays dark through three probes is treated as down and the sweep moves
// on — availability over completeness, exactly like the forward path.
const fetchRetries = 2

// fetchPeerCache probes one peer's result cache for hash, retrying
// transport-level failures (status 0) with full-jitter backoff. HTTP
// responses — including 404 and 202 — are answers, not failures, and
// never retried.
func (f *fleet) fetchPeerCache(peer, hash string) peerCacheResult {
	if _, ok := f.addrs[peer]; !ok {
		return peerCacheResult{} // unknown member: nothing to retry against
	}
	res := f.fetchPeerCacheOnce(peer, hash)
	for attempt := 0; res.status == 0 && attempt < fetchRetries; attempt++ {
		if f.tel != nil {
			f.tel.Counter("svc.fleet.fetch_retries").Add(1)
		}
		time.Sleep(fetchBackoff(peer, hash, attempt))
		res = f.fetchPeerCacheOnce(peer, hash)
	}
	return res
}

// fetchBackoff is the full-jitter retry delay for attempt (0-based):
// uniform in [0, 5ms·2^attempt). Deterministic per (peer, hash, attempt)
// so runs reproduce; jittered across keys so a fleet-wide sweep against
// a restarting peer does not re-probe in a synchronized wave.
func fetchBackoff(peer, hash string, attempt int) time.Duration {
	window := uint64(5 * time.Millisecond << uint(attempt))
	seed := uint64(attempt) << 48
	for _, c := range []byte(peer + "/" + hash) {
		seed = seed<<7 ^ seed>>57 ^ uint64(c)
	}
	// splitmix64 finalizer over the folded seed.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return time.Duration(z % window)
}

// fetchPeerCacheOnce is one unretried cache probe.
func (f *fleet) fetchPeerCacheOnce(peer, hash string) peerCacheResult {
	addr, ok := f.addrs[peer]
	if !ok {
		return peerCacheResult{}
	}
	resp, err := f.hc.Get(fmt.Sprintf("http://%s/v1/cache/%s", addr, hash))
	if err != nil {
		return peerCacheResult{}
	}
	defer resp.Body.Close()
	res := peerCacheResult{status: resp.StatusCode}
	if resp.StatusCode == http.StatusOK {
		var out jobs.Outcome
		if json.NewDecoder(io.LimitReader(resp.Body, maxSpecBytes)).Decode(&out) == nil {
			res.outcome = &out
		} else {
			res.status = 0 // unreadable body: treat as unreachable
		}
	}
	return res
}

// sweepPeerCaches probes every other replica for hash and returns the
// first cached outcome found, plus whether any peer reported the hash in
// flight (202). The sweep is the last-chance dedup barrier before a
// worker pays for an SCF run: with consistent hashing the owner is the
// likely holder, so it is probed first, but after a hand-off or a ring
// change the result can legitimately live anywhere.
func (s *Server) sweepPeerCaches(hash string) (*jobs.Outcome, bool) {
	f := s.currentFleet()
	if f == nil {
		return nil, false
	}
	peers := f.peerList()
	if owner := f.ring.Owner(hash); owner != f.self {
		// Probe the owner first.
		for i, p := range peers {
			if p == owner && i != 0 {
				peers[0], peers[i] = peers[i], peers[0]
			}
		}
	}
	inflight := false
	for _, p := range peers {
		switch res := f.fetchPeerCache(p, hash); res.status {
		case http.StatusOK:
			if res.outcome != nil {
				s.tel.Counter("svc.fleet.peer_hit").Add(1)
				return res.outcome, inflight
			}
		case http.StatusAccepted:
			inflight = true
		}
	}
	return nil, inflight
}

// awaitPeerResult polls the fleet for a result another replica reported
// in flight, giving the remote run a bounded window to finish before
// this replica falls back to computing locally. Bounded because the
// remote replica may die mid-run — waiting forever would convert a peer
// crash into a local hang.
func (s *Server) awaitPeerResult(hash string, budget time.Duration) *jobs.Outcome {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		out, inflight := s.sweepPeerCaches(hash)
		if out != nil {
			return out
		}
		if !inflight {
			return nil // remote attempt vanished (crash or eviction): run locally
		}
	}
	return nil
}

// forwardSubmit proxies a validated submit to the owning replica,
// writing the owner's response through to the client. The request trace
// ID rides along in the X-HF-Trace header, so the owner's spans land
// under the same trace the ingress replica minted. It returns false
// if the owner is unreachable — the caller then hands the job off to the
// local queue instead (availability over placement).
func (s *Server) forwardSubmit(w http.ResponseWriter, owner string, spec jobs.Spec, trace string) bool {
	f := s.currentFleet()
	if f == nil {
		return false
	}
	addr, ok := f.addrs[owner]
	if !ok {
		return false
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return false
	}
	req, err := http.NewRequest(http.MethodPost, fmt.Sprintf("http://%s/v1/jobs", addr), bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, f.self)
	if trace != "" {
		req.Header.Set(telemetry.TraceHeader, trace)
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	s.tel.Counter("svc.fleet.forwarded").Add(1)
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, io.LimitReader(resp.Body, maxSpecBytes))
	return true
}

// execTracker counts completed local SCF executions per content hash —
// the ground truth the fleet chaos gate audits for exactly-once
// execution. Replayed done records count: the execution happened on this
// replica before the crash and its result survived in the WAL.
type execTracker struct {
	mu sync.Mutex
	m  map[string]int
}

func (e *execTracker) add(hash string) {
	e.mu.Lock()
	if e.m == nil {
		e.m = make(map[string]int)
	}
	e.m[hash]++
	e.mu.Unlock()
}

// snapshot returns a copy of the per-hash execution counts.
func (e *execTracker) snapshot() map[string]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]int, len(e.m))
	for h, n := range e.m {
		out[h] = n
	}
	return out
}

// Executions returns a copy of this replica's per-content-hash count of
// completed SCF executions (replayed pre-crash completions included).
func (s *Server) Executions() map[string]int { return s.execs.snapshot() }
