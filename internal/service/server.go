// Package service is the HF-as-a-service layer: a stdlib net/http JSON
// API in front of the internal/jobs queue, a worker pool sized to a
// simulated-cluster budget, admission control with backpressure (bounded
// queue → 429 + Retry-After), per-job deadlines and cancellation threaded
// down into the SCF loop, an LRU result cache keyed by canonical content
// hash, and graceful drain on shutdown.
//
// Durability: when Config.WALDir is set, every accepted spec and every
// lifecycle transition is written to a CRC-protected, fsync'd write-ahead
// log (internal/jobs WAL) before it becomes client-visible. A restarted
// server replays the log: jobs queued or running at the crash re-enqueue,
// finished jobs dedup against their recorded results, and the result
// cache re-warms from recorded outcomes.
//
// Fleet: ConfigureFleet joins N replicas into a consistent-hash group —
// each content hash has one owning replica, non-owners forward submits
// (one hop) and fetch cached results from peers, and an unreachable
// owner degrades to local hand-off rather than an error. See fleet.go.
//
// Endpoints:
//
//	POST   /v1/jobs        submit a job (200 cached, 202 accepted, 400 bad
//	                       spec, 429 queue full / tenant quota, 503 draining)
//	GET    /v1/jobs/{id}   job status + result
//	GET    /v1/jobs        list jobs (?status=, ?limit=, ?after= pagination)
//	DELETE /v1/jobs/{id}   cancel a queued or running job
//	GET    /v1/cache/{hash} result-cache probe (200 cached, 202 in flight,
//	                       404 miss) — the intra-fleet peer-fetch path
//	GET    /v1/queue       queue depth, capacity, per-state totals
//	GET    /v1/jobs/{id}/trace  stitched per-job waterfall (queue wait,
//	                       lookup, run, per-iteration/per-build spans)
//	GET    /v1/debug/flight last flight-recorder dump (404 before any)
//	GET    /healthz        liveness (always 200 while the process serves)
//	GET    /readyz         readiness (503 draining/killed; replica ID, WAL
//	                       segments, queue depth, ring membership)
//	GET    /metrics        Prometheus text exposition (?format=json for
//	                       the registry snapshot JSON)
//
// Counter taxonomy (on the shared telemetry registry):
//
//	svc.jobs.accepted / rejected / completed / failed / canceled /
//	svc.jobs.retried / svc.jobs.coalesced    job lifecycle counts
//	svc.jobs.quota_rejected                  per-tenant admission rejections
//	svc.jobs.reenqueued                      crash backlog re-admitted at boot
//	svc.cache.hit / svc.cache.miss / svc.cache.evict   result-cache outcomes
//	svc.wal.appends / bytes / compactions    write-ahead log activity
//	svc.wal.replayed_jobs / replayed_records / corrupt_tail_bytes   boot replay
//	svc.fleet.peer_hit / forwarded / handoff intra-fleet routing outcomes
//	svc.queue.depth                          gauge + histogram (percentiles)
//	svc.queue.wait_ns, svc.job.run_ns        latency histograms
//	svc.request.post_ns                      POST /v1/jobs handler latency
//	svc.trace.minted / propagated            trace IDs created vs inherited
//	svc.trace.waterfalls                     waterfall endpoint renders
//	svc.http.requests{route=,code=}          per-route/status request counts
//	obs.flight.records / obs.flight.dumps    flight-recorder activity
//	build_info{version=,go_version=,revision=}  constant-1 build stamp
//
// The runtime's performance-fault counters (chaos.* transport chaos,
// dlb.hedged/reissued/dedup_dropped straggler mitigation, ddi.lease.*
// re-issue paths) are pre-registered at construction and fed by every
// job the workers run, so /metrics always carries the full taxonomy —
// zeros included — for scrapers that alert on it.
//
// Spans: one "svc.job" span per run attempt on the DriverPid lane, tid =
// worker index, plus "svc.lookup" spans for the last-chance dedup passes.
// Every accepted submission carries a request trace ID (minted at
// ingress or inherited from the X-HF-Trace header) that the runner's
// derived telemetry session stamps into every span down to individual
// MPI operations — see internal/telemetry/tracectx.go.
package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/telemetry"
)

// Config shapes a Server. Zero values take the documented defaults.
type Config struct {
	Workers        int           // concurrent job runners; default 4 — the "cluster" budget
	QueueCap       int           // queued-job bound before 429s; default 64
	CacheSize      int           // LRU result-cache entries; default 256
	DefaultTimeout time.Duration // per-job deadline when the spec sets none; default 5m
	MaxRetries     int           // default retry budget when the spec sets none; default 1
	RetryAfter     time.Duration // Retry-After floor/fallback on 429s; default 1s
	MaxRetryAfter  time.Duration // Retry-After ceiling; default 60s

	WALDir      string        // write-ahead log directory; "" disables durability
	WALNoSync   bool          // skip per-append fsync (tests)
	WALSegment  int64         // WAL segment rotation size; default 1 MiB
	WALKeepDone int           // terminal jobs retained by compaction; default 512
	TenantQuota int           // max active (queued+running) jobs per tenant; 0 = unlimited
	AgeAfter    time.Duration // priority-aging interval; 0 disables aging
	AgeBoost    int           // effective-priority boost per AgeAfter waited
	Telemetry   *telemetry.Session
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxRetryAfter <= 0 {
		c.MaxRetryAfter = 60 * time.Second
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.NewSession()
	}
	return c
}

// Server is one HF-serving instance: registry of every job it has seen,
// the bounded queue, the worker pool, the result cache, and (optionally)
// a write-ahead log and a fleet membership.
type Server struct {
	cfg    Config
	tel    *telemetry.Session
	queue  *jobs.Queue
	cache  *jobs.Cache
	runner jobs.Runner
	wal    *jobs.WAL

	mu        sync.Mutex
	byID      map[string]*jobs.Job
	byHash    map[string]*jobs.Job // queued/running jobs, for in-flight coalescing
	nextID    uint64
	jobTenant map[string]string // active job ID → tenant (quota accounting)
	tenantUse map[string]int    // tenant → active job count

	fleetMu sync.Mutex
	fleet   *fleet

	execs execTracker

	recoveredPending int // jobs re-enqueued from the WAL at boot
	recoveredDone    int // terminal jobs replayed from the WAL at boot

	// Elastic worker pool (see Resize/StartAutoscaler): pool holds the
	// live worker handles, poolEpoch advances on every resize, and
	// membership (optional) mirrors pool transitions into a
	// cluster.Membership so scale-ups ride the join handshake.
	poolMu     sync.Mutex
	pool       []*workerHandle
	nextWorker int
	poolEpoch  atomic.Int64
	membership *cluster.Membership
	running    atomic.Int64 // jobs currently inside runJob

	draining atomic.Bool
	killed   atomic.Bool
	workers  sync.WaitGroup
	started  atomic.Bool
	stopBg   chan struct{}
	bgOnce   sync.Once

	httpSrv *http.Server
	ln      net.Listener
}

// New returns a Server with its worker pool not yet started; call
// StartWorkers (or Start, which does both plus HTTP). When cfg.WALDir is
// set the write-ahead log is opened and replayed here: the crash backlog
// re-enqueues (bypassing the admission cap — that work was already
// acknowledged), finished jobs land terminal in the registry, and their
// outcomes re-warm the result cache.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		tel:       cfg.Telemetry,
		queue:     jobs.NewQueue(cfg.QueueCap),
		cache:     jobs.NewCache(cfg.CacheSize),
		byID:      make(map[string]*jobs.Job),
		byHash:    make(map[string]*jobs.Job),
		jobTenant: make(map[string]string),
		tenantUse: make(map[string]int),
		runner:    jobs.Runner{Telemetry: cfg.Telemetry},
		stopBg:    make(chan struct{}),
	}
	// Pre-register the full counter taxonomy so every name appears in
	// /metrics from the first scrape (zeros included).
	for _, name := range []string{
		"chaos.dups", "chaos.dups_dropped", "chaos.reorders",
		"chaos.partition_held", "chaos.slowdown.events", "chaos.slowdown_ns",
		"dlb.hedged", "dlb.reissued", "dlb.dedup_dropped",
		"ddi.lease.steals", "ddi.lease.expired",
		"svc.cache.hit", "svc.cache.miss", "svc.cache.evict",
		"svc.jobs.quota_rejected", "svc.jobs.reenqueued",
		"svc.wal.appends", "svc.wal.bytes", "svc.wal.compactions",
		"svc.wal.replayed_jobs", "svc.wal.replayed_records", "svc.wal.corrupt_tail_bytes",
		"svc.fleet.peer_hit", "svc.fleet.forwarded", "svc.fleet.handoff",
		"svc.trace.minted", "svc.trace.propagated", "svc.trace.waterfalls",
		"svc.fleet.fetch_retries",
		"obs.flight.records", "obs.flight.dumps",
		"elastic.joins.announced", "elastic.joins.committed", "elastic.joins.expired",
		"elastic.join.retransmits", "elastic.join.dup_dropped",
		"elastic.migrations", "elastic.scale_up", "elastic.scale_down",
		"distmat.get.bytes", "distmat.put.bytes", "distmat.acc.bytes",
		"distmat.purify.sweeps",
		"distmat.abft.audits", "distmat.abft.mismatches",
		"distmat.abft.repaired_tiles", "distmat.abft.parity_refreshes",
		"distmat.abft.reconstructed_tiles", "distmat.abft.parity.bytes",
	} {
		s.tel.Counter(name)
	}
	s.tel.Gauge("straggler.flagged")
	registerBuildInfo(s.tel)
	s.cache.Instrument(s.tel.Counter("svc.cache.hit"), s.tel.Counter("svc.cache.miss"),
		s.tel.Counter("svc.cache.evict"))

	if cfg.WALDir != "" {
		wal, rep, err := jobs.OpenWAL(jobs.WALOptions{
			Dir: cfg.WALDir, SegmentBytes: cfg.WALSegment, NoSync: cfg.WALNoSync,
			KeepDone: cfg.WALKeepDone, Tel: cfg.Telemetry,
		})
		if err != nil {
			return nil, fmt.Errorf("service: opening wal: %w", err)
		}
		s.wal = wal
		// Persist flight dumps next to the WAL so a postmortem after a
		// crash-and-replay has the pre-crash ring on disk.
		s.tel.Flight.SetOnDump(flightPersister(cfg.WALDir))
		s.restoreFromReplay(rep)
		if s.recoveredPending > 0 {
			s.tel.Logf("svc", "wal replay re-enqueued %d jobs (restored %d terminal)",
				s.recoveredPending, s.recoveredDone)
			s.tel.DumpFlight("wal-replay")
		}
	}
	return s, nil
}

// registerBuildInfo publishes the constant-1 build_info gauge carrying
// the module version, Go toolchain, and VCS revision as labels — the
// standard Prometheus idiom for joining metrics to a build.
func registerBuildInfo(tel *telemetry.Session) {
	version, goVersion, revision := "unknown", "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		goVersion = bi.GoVersion
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		for _, st := range bi.Settings {
			if st.Key == "vcs.revision" && st.Value != "" {
				revision = st.Value
			}
		}
	}
	tel.Gauge(fmt.Sprintf("build_info{version=%q,go_version=%q,revision=%q}",
		version, goVersion, revision)).Set(1)
}

// flightPersister returns an OnDump callback writing each flight dump as
// flight-NNNNNN.json under dir. Persistence failures are silent: a dump
// is best-effort postmortem context, never worth failing a request over.
func flightPersister(dir string) func(*telemetry.FlightDump) {
	var seq atomic.Uint64
	return func(d *telemetry.FlightDump) {
		path := filepath.Join(dir, fmt.Sprintf("flight-%06d.json", seq.Add(1)))
		f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return
		}
		_ = d.WriteJSON(f)
		_ = f.Close()
	}
}

// restoreFromReplay folds a WAL replay into the fresh server: terminal
// jobs become queryable history (outcomes re-warm the cache and count as
// pre-crash executions), non-terminal jobs re-enqueue past the admission
// cap — backpressure applies to new work, never to acknowledged work.
func (s *Server) restoreFromReplay(rep *jobs.Replay) {
	for _, rj := range rep.Jobs {
		j := jobs.RestoreJob(rj)
		s.byID[j.ID] = j
		if rj.State.Terminal() {
			s.recoveredDone++
			if rj.State == jobs.StateDone && rj.Outcome != nil {
				s.cache.Put(rj.Hash, rj.Outcome)
				s.execs.add(rj.Hash)
			}
			continue
		}
		if err := s.queue.ForceSubmit(j); err == nil {
			s.byHash[j.Hash] = j
			s.recoveredPending++
			s.tel.Counter("svc.jobs.reenqueued").Add(1)
		}
	}
	if rep.MaxID > s.nextID {
		s.nextID = rep.MaxID
	}
	s.observeDepth()
}

// RecoveredBacklog returns how many non-terminal jobs the boot-time WAL
// replay re-enqueued.
func (s *Server) RecoveredBacklog() int { return s.recoveredPending }

// RecoveredDone returns how many terminal jobs the boot-time WAL replay
// restored as queryable history.
func (s *Server) RecoveredDone() int { return s.recoveredDone }

// Telemetry returns the server's telemetry session.
func (s *Server) Telemetry() *telemetry.Session { return s.tel }

// Cache exposes the result cache (read-side: the chaos gate audits hit
// counts and warm entries).
func (s *Server) Cache() *jobs.Cache { return s.cache }

// workerHandle identifies one live worker; retired tells its loop to
// exit at the next claim boundary (never mid-job).
type workerHandle struct {
	idx     int
	retired atomic.Bool
}

// StartWorkers launches the worker pool (and the priority-aging ticker
// when configured). Idempotent.
func (s *Server) StartWorkers() {
	if s.started.Swap(true) {
		return
	}
	s.poolMu.Lock()
	for i := 0; i < s.cfg.Workers; i++ {
		s.spawnWorkerLocked()
	}
	s.poolMu.Unlock()
	s.observePool()
	if s.cfg.AgeAfter > 0 && s.cfg.AgeBoost > 0 {
		go s.agingLoop()
	}
}

// spawnWorkerLocked adds one worker to the pool (poolMu held).
func (s *Server) spawnWorkerLocked() {
	h := &workerHandle{idx: s.nextWorker}
	s.nextWorker++
	s.pool = append(s.pool, h)
	s.workers.Add(1)
	go s.workerLoop(h)
}

// AttachMembership mirrors pool transitions into m: Resize scale-ups run
// the announce → handshake → commit join protocol against it, and
// scale-downs shrink it, so /readyz and the elastic.* telemetry report
// the same epochs a compute-layer membership would.
func (s *Server) AttachMembership(m *cluster.Membership) {
	s.poolMu.Lock()
	s.membership = m
	s.poolMu.Unlock()
}

// WorkerCount returns the live (non-retired) worker-pool size.
func (s *Server) WorkerCount() int {
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	return len(s.pool)
}

// PoolEpoch returns the pool generation: 0 at boot, +1 per Resize.
func (s *Server) PoolEpoch() int64 { return s.poolEpoch.Load() }

// Rebalancing reports whether an attached membership is mid-handshake.
func (s *Server) Rebalancing() bool {
	s.poolMu.Lock()
	m := s.membership
	s.poolMu.Unlock()
	return m != nil && m.Rebalancing()
}

// Running returns how many jobs are currently executing in workers.
func (s *Server) Running() int64 { return s.running.Load() }

// Resize grows or shrinks the worker pool to target (clamped to ≥1).
// Growth spawns workers immediately; shrink retires the newest workers
// at their next claim boundary — a mid-job worker finishes its job
// first, so no job is ever lost to a scale-down. With a membership
// attached, growth runs the join protocol (announce → handshake →
// commit) and shrink records the departure, advancing the shared epoch.
// Returns the pool size before and after.
func (s *Server) Resize(target int) (from, to int) {
	if target < 1 {
		target = 1
	}
	s.poolMu.Lock()
	from = len(s.pool)
	m := s.membership
	switch {
	case target > from:
		added := target - from
		if m != nil {
			// The pool's join rides the same protocol compute ranks use; a
			// worker pool has no checkpoint to hand over, so the commit
			// payload is empty.
			host := "pool"
			if f := s.currentFleet(); f != nil {
				host = f.self + "-pool"
			}
			t := m.Announce(added, host)
			if m.BeginRebalance() {
				m.CommitJoins(nil)
			} else {
				_ = t // ticket expired under us; grow the pool regardless
			}
		}
		for i := 0; i < added; i++ {
			s.spawnWorkerLocked()
		}
		s.tel.Counter("elastic.scale_up").Add(1)
	case target < from:
		// Retire from the tail: newest first, preserving the original
		// workers' indices for stable telemetry lanes.
		removed := from - target
		for _, h := range s.pool[target:] {
			h.retired.Store(true)
		}
		s.pool = s.pool[:target]
		if m != nil {
			m.Shrink(removed)
		}
		s.tel.Counter("elastic.scale_down").Add(1)
	default:
		s.poolMu.Unlock()
		return from, from
	}
	s.poolMu.Unlock()
	s.poolEpoch.Add(1)
	s.queue.Kick() // wake blocked claimants so retirees re-check their flag
	s.observePool()
	s.tel.Instant("svc.submit", "pool-resize", telemetry.DriverPid, 0,
		map[string]any{"from": from, "to": target, "epoch": s.poolEpoch.Load()})
	return from, target
}

// observePool exports the pool gauges.
func (s *Server) observePool() {
	s.tel.Gauge("elastic.pool_size").Set(float64(s.WorkerCount()))
	s.tel.Gauge("elastic.pool_epoch").Set(float64(s.poolEpoch.Load()))
}

// agingLoop periodically applies priority aging so low-priority jobs
// cannot starve behind a steady high-priority stream.
func (s *Server) agingLoop() {
	period := s.cfg.AgeAfter / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.stopBg:
			return
		case now := <-t.C:
			s.queue.Age(now, s.cfg.AgeAfter, s.cfg.AgeBoost)
		}
	}
}

// stopBackground closes the background-goroutine stop channel once.
func (s *Server) stopBackground() {
	s.bgOnce.Do(func() { close(s.stopBg) })
}

// Start listens on addr (host:port; port 0 picks an ephemeral one),
// starts the workers, and serves HTTP in a background goroutine. It
// returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.Handler()}
	s.StartWorkers()
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// Serve only fails fatally before Drain; nothing to do but record it.
			s.tel.Counter("svc.http.serve_errors").Add(1)
		}
	}()
	return ln.Addr().String(), nil
}

// Kill simulates a SIGKILL at this instant: the write-ahead log stops
// accepting appends (nothing after the kill reaches disk, exactly as if
// the process died), the listener hard-closes mid-connection, queued
// work is abandoned, and in-flight runs are aborted. No drain, no
// compaction, no goodbye. Recovery happens when a new Server is built
// over the same WALDir.
func (s *Server) Kill() {
	if s.killed.Swap(true) {
		return
	}
	s.wal.Disable() // first: the disk image is frozen at the kill instant
	s.draining.Store(true)
	s.stopBackground()
	s.queue.Close()
	s.mu.Lock()
	for _, j := range s.byID {
		if j.State() == jobs.StateRunning {
			j.Cancel()
		}
	}
	s.mu.Unlock()
	if s.httpSrv != nil {
		_ = s.httpSrv.Close() // hard close: no graceful connection drain
	}
}

// Killed reports whether Kill has fired.
func (s *Server) Killed() bool { return s.killed.Load() }

// Drain gracefully shuts the server down: stop accepting (healthz flips,
// POST returns 503), let workers finish the queued backlog, and — if ctx
// expires first — cancel in-flight jobs and wait for them to record
// terminal states. The HTTP listener closes after the workers exit so
// status polls keep working throughout the drain. A WAL-backed server
// compacts its log on the way out, so the next boot replays a bounded
// segment instead of the full history.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.stopBackground()
	s.queue.Close()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline: abort in-flight runs. Workers observe the canceled
		// contexts at the next SCF iteration and record Canceled states,
		// so nothing is lost — just unfinished.
		s.mu.Lock()
		for _, j := range s.byID {
			if j.State() == jobs.StateRunning {
				j.Cancel()
			}
		}
		s.mu.Unlock()
		<-done
	}
	if s.wal != nil && !s.killed.Load() {
		if err := s.wal.Compact(s.replayTable()); err == nil {
			_ = s.wal.Close()
		}
	}
	if s.httpSrv != nil {
		sdCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.httpSrv.Shutdown(sdCtx); err != nil {
			return err
		}
	}
	return ctx.Err()
}

// replayTable renders the current job registry as WAL replay records in
// ID (acceptance) order — the input Compact rewrites the log from.
func (s *Server) replayTable() []*jobs.ReplayJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.byID))
	for id := range s.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	table := make([]*jobs.ReplayJob, 0, len(ids))
	for _, id := range ids {
		j := s.byID[id]
		st := j.Snapshot()
		if st.Cached {
			continue // cache-hit ephemera: never WAL-logged, nothing to keep
		}
		table = append(table, &jobs.ReplayJob{
			ID: j.ID, Hash: j.Hash, Spec: j.Spec, Trace: j.Trace, State: st.State,
			Attempts: st.Attempts, Error: st.Error, Outcome: st.Result,
		})
	}
	return table
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// lookup returns the job with the given ID.
func (s *Server) lookup(id string) *jobs.Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byID[id]
}

// register stores j in the ID index (and, when active, the hash index
// plus the tenant quota accounting).
func (s *Server) register(j *jobs.Job, active bool) {
	s.mu.Lock()
	s.byID[j.ID] = j
	if active {
		s.byHash[j.Hash] = j
		tenant := j.Spec.Tenant
		s.jobTenant[j.ID] = tenant
		s.tenantUse[tenant]++
	}
	s.mu.Unlock()
}

// tenantOverQuota reports whether admitting one more job for tenant
// would exceed the per-tenant active-job quota.
func (s *Server) tenantOverQuota(tenant string) bool {
	if s.cfg.TenantQuota <= 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenantUse[tenant] >= s.cfg.TenantQuota
}

// activeByHash returns the queued/running job with this content hash.
func (s *Server) activeByHash(hash string) *jobs.Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byHash[hash]
}

// retireHash drops the hash index entry once j is terminal, but only if
// it still points at j (a newer submission may have replaced it), and
// releases j's tenant quota slot (idempotent: keyed by job ID).
func (s *Server) retireHash(j *jobs.Job) {
	s.mu.Lock()
	if s.byHash[j.Hash] == j {
		delete(s.byHash, j.Hash)
	}
	if tenant, ok := s.jobTenant[j.ID]; ok {
		delete(s.jobTenant, j.ID)
		if s.tenantUse[tenant] > 1 {
			s.tenantUse[tenant]--
		} else {
			delete(s.tenantUse, tenant)
		}
	}
	s.mu.Unlock()
}

// newID mints a job ID.
func (s *Server) newID() string {
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.mu.Unlock()
	return jobs.FmtJobID(id)
}

// observeDepth records the queue depth into both the gauge (current
// value for /metrics) and the histogram (percentiles for the loadgen
// report).
func (s *Server) observeDepth() {
	d := int64(s.queue.Len())
	s.tel.Gauge("svc.queue.depth").Set(float64(d))
	s.tel.Histogram("svc.queue.depth").Observe(d)
}

// retryAfterSeconds derives the 429 Retry-After hint from the observed
// drain rate: p50 job wall time × queue depth / workers estimates when a
// queue slot will free. Before any job has finished (empty histogram)
// the configured fallback applies; the result is clamped to
// [RetryAfter, MaxRetryAfter] so one slow outlier cannot tell clients
// to go away for an hour.
func (s *Server) retryAfterSeconds() int {
	floor := int(s.cfg.RetryAfter / time.Second)
	if floor < 1 {
		floor = 1
	}
	h := s.tel.Histogram("svc.job.run_ns")
	if h.Count() == 0 {
		return floor
	}
	p50 := time.Duration(h.Percentile(0.5))
	est := p50 * time.Duration(s.queue.Len()+1) / time.Duration(s.cfg.Workers)
	secs := int((est + time.Second - 1) / time.Second)
	if secs < floor {
		secs = floor
	}
	if ceil := int(s.cfg.MaxRetryAfter / time.Second); secs > ceil {
		secs = ceil
	}
	return secs
}

// jobTimeout resolves the per-job deadline.
func (s *Server) jobTimeout(spec jobs.Spec) time.Duration {
	if spec.TimeoutMS > 0 {
		return time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	return s.cfg.DefaultTimeout
}

// jobRetries resolves the per-job retry budget.
func (s *Server) jobRetries(spec jobs.Spec) int {
	if spec.MaxRetries > 0 {
		return spec.MaxRetries
	}
	return s.cfg.MaxRetries
}

// workerLoop claims and runs jobs until the queue closes and drains, or
// the worker is retired by a scale-down (checked only between jobs — a
// retiree finishes its current job first).
func (s *Server) workerLoop(h *workerHandle) {
	defer s.workers.Done()
	for {
		j := s.queue.ClaimUntil(&h.retired)
		if j == nil {
			return
		}
		if s.killed.Load() {
			return // the process is "dead": abandon the claim mid-air
		}
		s.observeDepth()
		s.running.Add(1)
		s.runJob(h.idx, j)
		s.running.Add(-1)
	}
}

// recordDone persists then applies a successful completion: WAL first
// (durability), then the FSM transition (client visibility), then the
// cache. executed says whether this replica actually paid for the SCF
// run (false for peer-fetched results), feeding the exactly-once audit.
func (s *Server) recordDone(j *jobs.Job, out *jobs.Outcome, executed bool) {
	now := time.Now()
	_ = s.wal.AppendState(j.ID, jobs.StateDone, j.Attempts(), "", out, now)
	if mkErr := j.MarkDone(out, now); mkErr == nil {
		s.cache.Put(j.Hash, out)
		s.tel.Counter("svc.jobs.completed").Add(1)
		if executed {
			s.execs.add(j.Hash)
		}
	}
	s.retireHash(j)
}

// runJob executes one claimed job through the FSM: one attempt, then
// either Done, a bounded-retry requeue, or a terminal Failed/Canceled.
// Before paying for an SCF run it makes a last-chance dedup pass — the
// local cache, then every fleet peer — because an identical job may have
// finished elsewhere between admission and claim.
func (s *Server) runJob(worker int, j *jobs.Job) {
	now := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), s.jobTimeout(j.Spec))
	defer cancel()
	// Thread the request trace through the run: the context carries it to
	// the runner (which derives a traced session for the compute layers),
	// and ttel stamps it into the service-layer spans recorded here.
	ctx = telemetry.ContextWithTrace(ctx, telemetry.TraceContext{TraceID: j.Trace, Tid: worker})
	ttel := s.tel.WithTrace(j.Trace)
	if err := j.MarkRunning(cancel, now); err != nil {
		// Canceled between Remove-miss and Claim: the job is already
		// terminal; nothing to run.
		s.retireHash(j)
		return
	}
	_ = s.wal.AppendState(j.ID, jobs.StateRunning, j.Attempts(), "", nil, now)
	st := j.Snapshot()
	s.tel.Histogram("svc.queue.wait_ns").Observe(int64(st.QueueWaitMS * float64(time.Millisecond)))

	// Last-chance dedup, layer 1: the local cache may have warmed while
	// this job sat queued (peek — the admission path already counted the
	// authoritative hit/miss for this submission).
	endLookup := ttel.SpanArgsAtEnd("svc.lookup", "local-cache", telemetry.DriverPid, worker)
	out, ok := s.cache.Peek(j.Hash)
	endLookup(map[string]any{"job": j.ID, "hit": ok})
	if ok {
		s.recordDone(j, out, false)
		return
	}
	// Layer 2: a fleet peer may hold (or be computing) the result.
	if s.currentFleet() != nil {
		endSweep := ttel.SpanArgsAtEnd("svc.lookup", "peer-sweep", telemetry.DriverPid, worker)
		out, inflight := s.sweepPeerCaches(j.Hash)
		if out == nil && inflight {
			out = s.awaitPeerResult(j.Hash, s.peerWaitBudget(j.Spec))
		}
		endSweep(map[string]any{"job": j.ID, "hit": out != nil})
		if out != nil {
			s.recordDone(j, out, false)
			return
		}
	}

	endSpan := ttel.Span("svc.job", j.ID, telemetry.DriverPid, worker,
		map[string]any{"hash": j.Hash, "attempt": j.Attempts(), "mode": j.Spec.Mode})
	runStart := time.Now()
	out, err := s.runner.RunOnce(ctx, j.Spec)
	runDur := time.Since(runStart)
	endSpan()
	if s.killed.Load() {
		return // SIGKILL'd mid-run: a dead process records nothing
	}
	s.tel.Histogram("svc.job.run_ns").Observe(runDur.Nanoseconds())

	switch {
	case err == nil:
		s.recordDone(j, out, true)
	case jobs.Permanent(err):
		// Cancellation vs deadline: both stop the job, but they read
		// differently in the status record.
		msg := "canceled"
		if errors.Is(err, context.DeadlineExceeded) {
			msg = fmt.Sprintf("deadline exceeded after %v", s.jobTimeout(j.Spec))
		}
		tNow := time.Now()
		_ = s.wal.AppendState(j.ID, jobs.StateCanceled, j.Attempts(), msg, nil, tNow)
		if _, mkErr := j.MarkCanceled(msg, tNow); mkErr == nil {
			s.tel.Counter("svc.jobs.canceled").Add(1)
		}
		s.retireHash(j)
	default:
		// Run failure: bounded retry through the FSM while budget remains
		// and the queue still accepts work.
		if j.Attempts() <= s.jobRetries(j.Spec) && !s.queue.Closed() {
			if rqErr := j.Requeue(); rqErr == nil {
				if subErr := s.queue.Submit(j); subErr == nil {
					_ = s.wal.AppendState(j.ID, jobs.StateQueued, j.Attempts(), err.Error(), nil, time.Now())
					s.tel.Counter("svc.jobs.retried").Add(1)
					s.observeDepth()
					return
				}
				// Queue full/closed: fall through to a terminal failure.
				_ = j.MarkRunning(func() {}, time.Now())
			}
		}
		tNow := time.Now()
		_ = s.wal.AppendState(j.ID, jobs.StateFailed, j.Attempts(), err.Error(), nil, tNow)
		if mkErr := j.MarkFailed(err.Error(), tNow); mkErr == nil {
			s.tel.Counter("svc.jobs.failed").Add(1)
			// Terminal failure: snapshot the flight ring so the postmortem
			// has the job's last spans and log lines even with no live trace.
			ttel.Logf("svc", "job %s failed after %d attempts: %v", j.ID, j.Attempts(), err)
			ttel.DumpFlight("job-failed")
		}
		s.retireHash(j)
	}
}

// peerWaitBudget bounds how long a worker waits for a peer's in-flight
// identical run before computing locally: generous enough to ride out a
// typical small-system SCF, small against the job's own deadline.
func (s *Server) peerWaitBudget(spec jobs.Spec) time.Duration {
	budget := s.jobTimeout(spec) / 4
	if budget > 5*time.Second {
		budget = 5 * time.Second
	}
	if budget < 200*time.Millisecond {
		budget = 200 * time.Millisecond
	}
	return budget
}
