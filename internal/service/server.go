// Package service is the HF-as-a-service layer: a stdlib net/http JSON
// API in front of the internal/jobs queue, a worker pool sized to a
// simulated-cluster budget, admission control with backpressure (bounded
// queue → 429 + Retry-After), per-job deadlines and cancellation threaded
// down into the SCF loop, an LRU result cache keyed by canonical content
// hash, and graceful drain on shutdown.
//
// Endpoints:
//
//	POST   /v1/jobs      submit a job (200 cached, 202 accepted, 400 bad
//	                     spec, 429 queue full, 503 draining)
//	GET    /v1/jobs/{id} job status + result
//	DELETE /v1/jobs/{id} cancel a queued or running job
//	GET    /v1/queue     queue depth, capacity, per-state totals
//	GET    /healthz      liveness (503 while draining)
//	GET    /metrics      telemetry registry snapshot (JSON)
//
// Counter taxonomy (on the shared telemetry registry):
//
//	svc.jobs.accepted / rejected / completed / failed / canceled /
//	svc.jobs.retried / svc.jobs.coalesced    job lifecycle counts
//	svc.cache.hit / svc.cache.miss           result-cache outcomes
//	svc.queue.depth                          gauge + histogram (percentiles)
//	svc.queue.wait_ns, svc.job.run_ns        latency histograms
//	svc.request.post_ns                      POST /v1/jobs handler latency
//
// The runtime's performance-fault counters (chaos.* transport chaos,
// dlb.hedged/reissued/dedup_dropped straggler mitigation, ddi.lease.*
// re-issue paths) are pre-registered at construction and fed by every
// job the workers run, so /metrics always carries the full taxonomy —
// zeros included — for scrapers that alert on it.
//
// Spans: one "svc.job" span per run attempt on the DriverPid lane, tid =
// worker index.
package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jobs"
	"repro/internal/telemetry"
)

// Config shapes a Server. Zero values take the documented defaults.
type Config struct {
	Workers        int           // concurrent job runners; default 4 — the "cluster" budget
	QueueCap       int           // queued-job bound before 429s; default 64
	CacheSize      int           // LRU result-cache entries; default 256
	DefaultTimeout time.Duration // per-job deadline when the spec sets none; default 5m
	MaxRetries     int           // default retry budget when the spec sets none; default 1
	RetryAfter     time.Duration // Retry-After hint on 429s; default 1s
	Telemetry      *telemetry.Session
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.NewSession()
	}
	return c
}

// Server is one HF-serving instance: registry of every job it has seen,
// the bounded queue, the worker pool, and the result cache.
type Server struct {
	cfg    Config
	tel    *telemetry.Session
	queue  *jobs.Queue
	cache  *jobs.Cache
	runner jobs.Runner

	mu     sync.Mutex
	byID   map[string]*jobs.Job
	byHash map[string]*jobs.Job // queued/running jobs, for in-flight coalescing
	nextID uint64

	draining atomic.Bool
	workers  sync.WaitGroup
	started  atomic.Bool

	httpSrv *http.Server
	ln      net.Listener
}

// New returns a Server with its worker pool not yet started; call
// StartWorkers (or Start, which does both plus HTTP).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		tel:    cfg.Telemetry,
		queue:  jobs.NewQueue(cfg.QueueCap),
		cache:  jobs.NewCache(cfg.CacheSize),
		byID:   make(map[string]*jobs.Job),
		byHash: make(map[string]*jobs.Job),
		runner: jobs.Runner{Telemetry: cfg.Telemetry},
	}
	// Pre-register the chaos and straggler-mitigation counters so they
	// appear in /metrics from the first scrape (zeros included).
	for _, name := range []string{
		"chaos.dups", "chaos.dups_dropped", "chaos.reorders",
		"chaos.partition_held", "chaos.slowdown.events", "chaos.slowdown_ns",
		"dlb.hedged", "dlb.reissued", "dlb.dedup_dropped",
		"ddi.lease.steals", "ddi.lease.expired",
	} {
		s.tel.Counter(name)
	}
	s.tel.Gauge("straggler.flagged")
	return s
}

// Telemetry returns the server's telemetry session.
func (s *Server) Telemetry() *telemetry.Session { return s.tel }

// StartWorkers launches the worker pool. Idempotent.
func (s *Server) StartWorkers() {
	if s.started.Swap(true) {
		return
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.workers.Add(1)
		go s.workerLoop(i)
	}
}

// Start listens on addr (host:port; port 0 picks an ephemeral one),
// starts the workers, and serves HTTP in a background goroutine. It
// returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.Handler()}
	s.StartWorkers()
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// Serve only fails fatally before Drain; nothing to do but record it.
			s.tel.Counter("svc.http.serve_errors").Add(1)
		}
	}()
	return ln.Addr().String(), nil
}

// Drain gracefully shuts the server down: stop accepting (healthz flips,
// POST returns 503), let workers finish the queued backlog, and — if ctx
// expires first — cancel in-flight jobs and wait for them to record
// terminal states. The HTTP listener closes after the workers exit so
// status polls keep working throughout the drain.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.Close()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline: abort in-flight runs. Workers observe the canceled
		// contexts at the next SCF iteration and record Canceled states,
		// so nothing is lost — just unfinished.
		s.mu.Lock()
		for _, j := range s.byID {
			if j.State() == jobs.StateRunning {
				j.Cancel()
			}
		}
		s.mu.Unlock()
		<-done
	}
	if s.httpSrv != nil {
		sdCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.httpSrv.Shutdown(sdCtx); err != nil {
			return err
		}
	}
	return ctx.Err()
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// lookup returns the job with the given ID.
func (s *Server) lookup(id string) *jobs.Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byID[id]
}

// register stores j in the ID index (and, when active, the hash index).
func (s *Server) register(j *jobs.Job, active bool) {
	s.mu.Lock()
	s.byID[j.ID] = j
	if active {
		s.byHash[j.Hash] = j
	}
	s.mu.Unlock()
}

// activeByHash returns the queued/running job with this content hash.
func (s *Server) activeByHash(hash string) *jobs.Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byHash[hash]
}

// retireHash drops the hash index entry once j is terminal, but only if
// it still points at j (a newer submission may have replaced it).
func (s *Server) retireHash(j *jobs.Job) {
	s.mu.Lock()
	if s.byHash[j.Hash] == j {
		delete(s.byHash, j.Hash)
	}
	s.mu.Unlock()
}

// newID mints a job ID.
func (s *Server) newID() string {
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.mu.Unlock()
	return fmt.Sprintf("job-%06d", id)
}

// observeDepth records the queue depth into both the gauge (current
// value for /metrics) and the histogram (percentiles for the loadgen
// report).
func (s *Server) observeDepth() {
	d := int64(s.queue.Len())
	s.tel.Gauge("svc.queue.depth").Set(float64(d))
	s.tel.Histogram("svc.queue.depth").Observe(d)
}

// jobTimeout resolves the per-job deadline.
func (s *Server) jobTimeout(spec jobs.Spec) time.Duration {
	if spec.TimeoutMS > 0 {
		return time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	return s.cfg.DefaultTimeout
}

// jobRetries resolves the per-job retry budget.
func (s *Server) jobRetries(spec jobs.Spec) int {
	if spec.MaxRetries > 0 {
		return spec.MaxRetries
	}
	return s.cfg.MaxRetries
}

// workerLoop claims and runs jobs until the queue closes and drains.
func (s *Server) workerLoop(worker int) {
	defer s.workers.Done()
	for {
		j := s.queue.Claim()
		if j == nil {
			return
		}
		s.observeDepth()
		s.runJob(worker, j)
	}
}

// runJob executes one claimed job through the FSM: one attempt, then
// either Done, a bounded-retry requeue, or a terminal Failed/Canceled.
func (s *Server) runJob(worker int, j *jobs.Job) {
	now := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), s.jobTimeout(j.Spec))
	defer cancel()
	if err := j.MarkRunning(cancel, now); err != nil {
		// Canceled between Remove-miss and Claim: the job is already
		// terminal; nothing to run.
		s.retireHash(j)
		return
	}
	st := j.Snapshot()
	s.tel.Histogram("svc.queue.wait_ns").Observe(int64(st.QueueWaitMS * float64(time.Millisecond)))

	endSpan := s.tel.Span("svc.job", j.ID, telemetry.DriverPid, worker,
		map[string]any{"hash": j.Hash, "attempt": j.Attempts(), "mode": j.Spec.Mode})
	runStart := time.Now()
	out, err := s.runner.RunOnce(ctx, j.Spec)
	runDur := time.Since(runStart)
	endSpan()
	s.tel.Histogram("svc.job.run_ns").Observe(runDur.Nanoseconds())

	switch {
	case err == nil:
		if mkErr := j.MarkDone(out, time.Now()); mkErr == nil {
			s.cache.Put(j.Hash, out)
			s.tel.Counter("svc.jobs.completed").Add(1)
		}
		s.retireHash(j)
	case jobs.Permanent(err):
		// Cancellation vs deadline: both stop the job, but they read
		// differently in the status record.
		msg := "canceled"
		if errors.Is(err, context.DeadlineExceeded) {
			msg = fmt.Sprintf("deadline exceeded after %v", s.jobTimeout(j.Spec))
		}
		if _, mkErr := j.MarkCanceled(msg, time.Now()); mkErr == nil {
			s.tel.Counter("svc.jobs.canceled").Add(1)
		}
		s.retireHash(j)
	default:
		// Run failure: bounded retry through the FSM while budget remains
		// and the queue still accepts work.
		if j.Attempts() <= s.jobRetries(j.Spec) && !s.queue.Closed() {
			if rqErr := j.Requeue(); rqErr == nil {
				if subErr := s.queue.Submit(j); subErr == nil {
					s.tel.Counter("svc.jobs.retried").Add(1)
					s.observeDepth()
					return
				}
				// Queue full/closed: fall through to a terminal failure.
				_ = j.MarkRunning(func() {}, time.Now())
			}
		}
		if mkErr := j.MarkFailed(err.Error(), time.Now()); mkErr == nil {
			s.tel.Counter("svc.jobs.failed").Add(1)
		}
		s.retireHash(j)
	}
}
