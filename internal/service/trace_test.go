package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/telemetry"
)

// postJobTraced submits spec with an explicit X-HF-Trace header and
// returns the decoded response plus the trace header echoed back.
func postJobTraced(t *testing.T, url string, spec jobs.Spec, trace string) (submitResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if trace != "" {
		req.Header.Set(telemetry.TraceHeader, trace)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	var out submitResponse
	if resp.StatusCode < 400 {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return out, resp
}

func TestTraceMintAndPropagate(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueCap: 8}, true)

	// No header: the server mints an ID and returns it both ways.
	out, resp := postJob(t, ts, jobs.Spec{Molecule: "h2", Mode: jobs.ModeSerial})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	hdr := resp.Header.Get(telemetry.TraceHeader)
	if hdr == "" || out.TraceID != hdr {
		t.Fatalf("minted trace: header %q, body %q — want both set and equal", hdr, out.TraceID)
	}
	if telemetry.SanitizeTraceID(hdr) == "" {
		t.Errorf("minted trace %q fails its own sanitizer", hdr)
	}
	awaitTerminal(t, ts, out.ID)
	if got := s.Telemetry().Counter("svc.trace.minted").Value(); got < 1 {
		t.Errorf("svc.trace.minted = %d, want >= 1", got)
	}

	// Client-supplied header: propagated verbatim, status carries it.
	out2, resp2 := postJobTraced(t, ts.URL,
		jobs.Spec{Molecule: "h2", Mode: jobs.ModeSerial, MaxIter: 55}, "deadbeef12345678")
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("traced submit: HTTP %d", resp2.StatusCode)
	}
	if out2.TraceID != "deadbeef12345678" {
		t.Fatalf("supplied trace not propagated: %q", out2.TraceID)
	}
	if got := s.Telemetry().Counter("svc.trace.propagated").Value(); got < 1 {
		t.Errorf("svc.trace.propagated = %d, want >= 1", got)
	}
	st := awaitTerminal(t, ts, out2.ID)
	if st.TraceID != "deadbeef12345678" {
		t.Errorf("status trace %q, want the supplied ID", st.TraceID)
	}

	// Garbage header: rejected by the sanitizer, fresh ID minted instead.
	out3, resp3 := postJobTraced(t, ts.URL,
		jobs.Spec{Molecule: "h2", Mode: jobs.ModeSerial, MaxIter: 56}, "not hex at all!")
	if resp3.StatusCode != http.StatusAccepted {
		t.Fatalf("garbage-traced submit: HTTP %d", resp3.StatusCode)
	}
	if out3.TraceID == "not hex at all!" || out3.TraceID == "" {
		t.Errorf("garbage trace not replaced: %q", out3.TraceID)
	}
	awaitTerminal(t, ts, out3.ID)
}

func TestWaterfallEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueCap: 8}, true)

	out, resp := postJob(t, ts, jobs.Spec{Molecule: "h2", Mode: jobs.ModeSerial})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	awaitTerminal(t, ts, out.ID)

	wresp, err := http.Get(ts.URL + "/v1/jobs/" + out.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	if wresp.StatusCode != http.StatusOK {
		t.Fatalf("waterfall: HTTP %d", wresp.StatusCode)
	}
	var wf waterfallResponse
	if err := json.NewDecoder(wresp.Body).Decode(&wf); err != nil {
		t.Fatalf("decode waterfall: %v", err)
	}
	if wf.TraceID != out.TraceID {
		t.Fatalf("waterfall trace %q, want %q", wf.TraceID, out.TraceID)
	}
	for _, cat := range []string{"svc.job", "job.run", "scf.iter"} {
		if wf.Categories[cat] == 0 {
			t.Errorf("waterfall missing %s spans: %v", cat, wf.Categories)
		}
	}
	// Start-ordered spans.
	for i := 1; i < len(wf.Spans); i++ {
		if wf.Spans[i].StartUS < wf.Spans[i-1].StartUS {
			t.Fatalf("spans not start-ordered at %d", i)
		}
	}
	// Every span in the waterfall carries the job's trace ID.
	for _, sp := range wf.Spans {
		if sp.Args[telemetry.TraceArgKey] != wf.TraceID {
			t.Errorf("span %s/%s args %v missing the trace", sp.Cat, sp.Name, sp.Args)
		}
	}

	if resp, err := http.Get(ts.URL + "/v1/jobs/nope/trace"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job waterfall: HTTP %d, want 404", resp.StatusCode)
		}
	}
}

func TestTraceSurvivesFleetForwarding(t *testing.T) {
	servers, members := startTestFleet(t, 2, Config{Workers: 1, QueueCap: 16,
		DefaultTimeout: time.Minute})

	spec := jobs.Spec{Molecule: "h2", Basis: "sto-3g", Mode: jobs.ModeSerial}
	hash, err := spec.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	ring, _ := servers[0].Fleet()
	owner := ring.Owner(hash)
	nonOwner := "r0"
	if owner == "r0" {
		nonOwner = "r1"
	}

	const trace = "feedc0de00000042"
	out, resp := postJobTraced(t, "http://"+members[nonOwner], spec, trace)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("forwarded submit: HTTP %d", resp.StatusCode)
	}
	if out.Replica != owner {
		t.Fatalf("accepted by %q, want owner %q", out.Replica, owner)
	}
	if out.TraceID != trace {
		t.Fatalf("trace %q did not survive the forward hop: got %q", trace, out.TraceID)
	}
	waitFleetDone(t, members, hash, 30*time.Second)

	// The owner ran the job; its waterfall carries the original trace ID
	// down to the SCF layer.
	wresp, err := http.Get(fmt.Sprintf("http://%s/v1/jobs/%s/trace", members[owner], out.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	if wresp.StatusCode != http.StatusOK {
		t.Fatalf("owner waterfall: HTTP %d", wresp.StatusCode)
	}
	var wf waterfallResponse
	if err := json.NewDecoder(wresp.Body).Decode(&wf); err != nil {
		t.Fatal(err)
	}
	if wf.TraceID != trace {
		t.Fatalf("owner waterfall trace %q, want %q", wf.TraceID, trace)
	}
	for _, cat := range []string{"svc.job", "job.run", "scf.iter"} {
		if wf.Categories[cat] == 0 {
			t.Errorf("owner waterfall missing %s: %v", cat, wf.Categories)
		}
	}
}

func TestReadyzAndFlightEndpoints(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueCap: 8}, true)

	var rz readyzResponse
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: HTTP %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rz.Status != "ready" || rz.Workers != 1 || rz.QueueCap != 8 {
		t.Errorf("readyz %+v, want ready with workers=1 cap=8", rz)
	}

	// Before any failure: no flight dump.
	if resp, err := http.Get(ts.URL + "/v1/debug/flight"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("flight before any dump: HTTP %d, want 404", resp.StatusCode)
		}
	}

	// A terminal failure dumps the flight ring (MaxIter 1 cannot converge
	// and the default retry budget is zero).
	out, presp := postJob(t, ts, jobs.Spec{Molecule: "h2", Mode: jobs.ModeSerial, MaxIter: 1})
	if presp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", presp.StatusCode)
	}
	if st := awaitTerminal(t, ts, out.ID); st.State != jobs.StateFailed {
		t.Fatalf("job ended %s, want failed", st.State)
	}
	fresp, err := http.Get(ts.URL + "/v1/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer fresp.Body.Close()
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("flight after failure: HTTP %d", fresp.StatusCode)
	}
	var dump telemetry.FlightDump
	if err := json.NewDecoder(fresp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.Reason != "job-failed" || len(dump.Entries) == 0 {
		t.Errorf("dump reason %q with %d entries, want job-failed with context", dump.Reason, len(dump.Entries))
	}
	if got := s.Telemetry().Counter("obs.flight.dumps").Value(); got < 1 {
		t.Errorf("obs.flight.dumps = %d, want >= 1", got)
	}

	// build_info is pre-registered as a labeled gauge on every boot.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("hf_build_info{")) {
		t.Errorf("metrics missing hf_build_info gauge:\n%s", buf.String())
	}
}
