package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/jobs"
)

// h2Spec returns a distinct-hash h2 spec (MaxIter is part of the
// canonical hash, so varying it varies the hash).
func h2Spec(iter int) jobs.Spec {
	return jobs.Spec{Molecule: "h2", Basis: "sto-3g", Mode: jobs.ModeSerial, MaxIter: iter}
}

func getList(t *testing.T, ts *httptest.Server, query string) (listResponse, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs" + query)
	if err != nil {
		t.Fatalf("GET /v1/jobs%s: %v", query, err)
	}
	defer resp.Body.Close()
	var out listResponse
	if resp.StatusCode < 400 {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode list: %v", err)
		}
	}
	return out, resp.StatusCode
}

func TestListJobsFilterAndPagination(t *testing.T) {
	// No workers: every submission deterministically sits queued.
	_, ts := testServer(t, Config{Workers: 1, QueueCap: 16}, false)
	for i := 0; i < 5; i++ {
		if _, resp := postJob(t, ts, h2Spec(40+i)); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
	}

	all, status := getList(t, ts, "")
	if status != http.StatusOK || all.Total != 5 || len(all.Jobs) != 5 {
		t.Fatalf("list all: status %d total %d len %d, want 200/5/5", status, all.Total, len(all.Jobs))
	}
	for i := 1; i < len(all.Jobs); i++ {
		if all.Jobs[i-1].ID >= all.Jobs[i].ID {
			t.Fatalf("list not ID-ordered: %s before %s", all.Jobs[i-1].ID, all.Jobs[i].ID)
		}
	}

	// Paginate with limit 2: three pages, cursors chaining.
	var paged []string
	after := ""
	for pages := 0; pages < 4; pages++ {
		page, status := getList(t, ts, "?limit=2&after="+after)
		if status != http.StatusOK {
			t.Fatalf("page status %d", status)
		}
		for _, j := range page.Jobs {
			paged = append(paged, j.ID)
		}
		if page.Next == "" {
			break
		}
		after = page.Next
	}
	if len(paged) != 5 {
		t.Fatalf("pagination yielded %d jobs, want 5 (%v)", len(paged), paged)
	}

	queued, _ := getList(t, ts, "?status=queued")
	if queued.Total != 5 {
		t.Fatalf("status=queued total %d, want 5", queued.Total)
	}
	done, _ := getList(t, ts, "?status=done")
	if done.Total != 0 || len(done.Jobs) != 0 {
		t.Fatalf("status=done total %d len %d, want 0/0", done.Total, len(done.Jobs))
	}
	if _, status := getList(t, ts, "?status=bogus"); status != http.StatusBadRequest {
		t.Fatalf("bad status filter: %d, want 400", status)
	}
	if _, status := getList(t, ts, "?limit=-1"); status != http.StatusBadRequest {
		t.Fatalf("bad limit: %d, want 400", status)
	}
}

func TestTenantQuota(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueCap: 16, TenantQuota: 2}, false)
	withTenant := func(iter int, tenant string) jobs.Spec {
		s := h2Spec(iter)
		s.Tenant = tenant
		return s
	}
	for i := 0; i < 2; i++ {
		if _, resp := postJob(t, ts, withTenant(50+i, "acme")); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("acme submit %d: status %d, want 202", i, resp.StatusCode)
		}
	}
	_, resp := postJob(t, ts, withTenant(52, "acme"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quota 429 missing Retry-After")
	}
	// A different tenant is unaffected — the queue still has room.
	if _, resp := postJob(t, ts, withTenant(53, "other")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other-tenant submit: status %d, want 202", resp.StatusCode)
	}
}

func TestDynamicRetryAfter(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueCap: 1, RetryAfter: 2 * time.Second}, false)
	// Before any job has run, the fallback applies.
	if _, resp := postJob(t, ts, h2Spec(60)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fill submit: %d", resp.StatusCode)
	}
	_, resp := postJob(t, ts, h2Spec(61))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("fallback Retry-After %q, want \"2\"", got)
	}
	// With an observed p50 of ~3s and depth 1 on 1 worker, the estimate
	// is p50 × (depth+1) / workers = 6s.
	s.Telemetry().Histogram("svc.job.run_ns").Observe((3 * time.Second).Nanoseconds())
	_, resp = postJob(t, ts, h2Spec(61))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "6" {
		t.Fatalf("drain-rate Retry-After %q, want \"6\"", got)
	}
}

func TestCacheProbeEndpoint(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueCap: 16}, false)
	spec := h2Spec(70)
	hash, err := spec.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	probe := func() int {
		resp, err := http.Get(ts.URL + "/v1/cache/" + hash)
		if err != nil {
			t.Fatalf("probe: %v", err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := probe(); got != http.StatusNotFound {
		t.Fatalf("cold probe: %d, want 404", got)
	}
	if _, resp := postJob(t, ts, spec); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if got := probe(); got != http.StatusAccepted {
		t.Fatalf("queued probe: %d, want 202", got)
	}
	s.cache.Put(hash, &jobs.Outcome{Energy: -1, Converged: true})
	if got := probe(); got != http.StatusOK {
		t.Fatalf("warm probe: %d, want 200", got)
	}
	// Probes must not distort the cache effectiveness counters.
	if hits, misses := s.cache.Stats(); hits != 0 || misses != 1 {
		// one miss from the original submit's cache.Get
		t.Fatalf("probe distorted counters: hits %d misses %d, want 0/1", hits, misses)
	}
}

func TestExecutionsTracksLocalRuns(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueCap: 16}, true)
	spec := h2Spec(80)
	hash, _ := spec.CanonicalHash()
	out, resp := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := getStatus(t, ts, out.ID); st.State == jobs.StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := s.Executions()[hash]; n != 1 {
		t.Fatalf("executions[%s] = %d, want 1", hash, n)
	}
	// A duplicate is a cache hit: no second execution.
	if out2, resp2 := postJob(t, ts, spec); resp2.StatusCode != http.StatusOK || !out2.Cached {
		t.Fatalf("dup submit: status %d cached %v", resp2.StatusCode, out2.Cached)
	}
	if n := s.Executions()[hash]; n != 1 {
		t.Fatalf("dup caused re-execution: %d", n)
	}
}
