package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/jobs"
)

// The fleet chaos experiment: three hfserve replicas with write-ahead
// logs and consistent-hash cache sharding serve a duplicate-heavy
// workload of >= 1000 submissions over real HTTP. The run happens twice
// — once clean (baseline) and once with one replica SIGKILL'd mid-run
// and restarted from its WAL — and the gates assert that the kill is
// invisible at the serving contract level:
//
//   - zero lost jobs: every job acknowledged by any replica (including
//     those queued on the victim at the kill instant) reaches a terminal
//     state, with no failed or canceled stragglers fleet-wide;
//   - exactly-once execution: across all surviving replica incarnations,
//     each distinct content hash was computed by exactly one SCF run;
//   - cache effectiveness holds: the aggregate client-observed cache
//     hit-rate of the chaos run is within 5 percentage points of the
//     no-kill baseline.
//
// The kill is simulated in-process with Server.Kill — the WAL stops
// accepting appends atomically (nothing after the kill instant reaches
// disk), the listener hard-closes, and the recovery path is a fresh
// Server over the same WAL directory, exactly the code path a process
// restart takes.

// FleetOptions shapes RunFleet. Zero values take the documented
// defaults, sized so the default run satisfies the >= 1000 jobs gate.
type FleetOptions struct {
	Replicas int    // fleet size; default 3
	Jobs     int    // duplicate-storm submissions; default 1000
	Distinct int    // distinct content hashes in the storm; default 25
	Workers  int    // worker pool per replica; default 2
	Clients  int    // concurrent storm clients; default 8
	Victims  int    // jobs parked on the kill target's queue; default 4
	WALRoot  string // WAL parent directory; default a fresh temp dir
	Out      io.Writer
}

func (o FleetOptions) withDefaults() FleetOptions {
	if o.Replicas <= 0 {
		o.Replicas = 3
	}
	if o.Jobs <= 0 {
		o.Jobs = 1000
	}
	if o.Distinct <= 0 {
		o.Distinct = 25
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Victims <= 0 {
		o.Victims = 4
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// FleetPhase is the client-side accounting of one storm phase.
type FleetPhase struct {
	Submitted int // POSTs that got a non-429 answer
	Hits      int // 200 + cached (local or peer cache)
	Accepted  int // 202 accepted or coalesced
	Retries   int // 429 bounces (resubmitted until admitted)
}

// HitRate returns the client-observed cache hit-rate in percent.
func (p FleetPhase) HitRate() float64 {
	if p.Submitted == 0 {
		return 0
	}
	return 100 * float64(p.Hits) / float64(p.Submitted)
}

// FleetRun is the outcome of one full fleet pass (baseline or chaos).
type FleetRun struct {
	Storm      FleetPhase
	WarmupJobs int
	VictimJobs int
	Distinct   int
	Lost       int // accepted jobs that never reached a terminal state
	Failed     int // terminal failed/canceled jobs fleet-wide
	MaxExec    int // max executions of any one hash across replicas
	MinExec    int // min executions of any one hash across replicas
	Reenqueued int // WAL-replayed backlog on the restarted replica (chaos only)
	WallMS     float64
}

// FleetReport is the full experiment: baseline vs. chaos.
type FleetReport struct {
	Baseline FleetRun
	Chaos    FleetRun
	Replicas int
	Killed   string // name of the killed replica
}

// HitRateGapPoints returns |baseline - chaos| aggregate hit-rate in
// percentage points.
func (r *FleetReport) HitRateGapPoints() float64 {
	gap := r.Baseline.Storm.HitRate() - r.Chaos.Storm.HitRate()
	if gap < 0 {
		gap = -gap
	}
	return gap
}

// fleetHarness is one booted fleet: servers, addresses, and the specs.
type fleetHarness struct {
	opt     FleetOptions
	names   []string
	servers map[string]*Server
	addrs   map[string]string
	walDirs map[string]string
	specs   []jobs.Spec // distinct storm content
	hashes  []string    // canonical hashes of specs
	client  *http.Client
}

func (h *fleetHarness) serverConfig() Config {
	return Config{
		Workers:        h.opt.Workers,
		QueueCap:       64,
		DefaultTimeout: time.Minute,
		WALNoSync:      true, // fsync fidelity is covered by the WAL unit tests; the gate is about replay
	}
}

// bootFleet starts opt.Replicas servers with WALs and joins them.
func bootFleet(opt FleetOptions) (*fleetHarness, error) {
	h := &fleetHarness{
		opt:     opt,
		servers: map[string]*Server{},
		addrs:   map[string]string{},
		walDirs: map[string]string{},
		client:  &http.Client{Timeout: 30 * time.Second},
	}
	root := opt.WALRoot
	if root == "" {
		var err error
		root, err = os.MkdirTemp("", "hffleet-*")
		if err != nil {
			return nil, err
		}
	}
	for i := 0; i < opt.Replicas; i++ {
		name := fmt.Sprintf("r%d", i)
		h.names = append(h.names, name)
		h.walDirs[name] = fmt.Sprintf("%s/%s", root, name)
		cfg := h.serverConfig()
		cfg.WALDir = h.walDirs[name]
		s, err := New(cfg)
		if err != nil {
			return nil, fmt.Errorf("boot %s: %w", name, err)
		}
		addr, err := s.Start("127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("start %s: %w", name, err)
		}
		h.servers[name] = s
		h.addrs[name] = addr
	}
	for _, name := range h.names {
		h.servers[name].ConfigureFleet(name, h.addrs, 0)
	}
	for i := 0; i < opt.Distinct; i++ {
		spec := jobs.Spec{Molecule: "h2", Basis: "sto-3g", Mode: jobs.ModeSerial, MaxIter: 101 + i}
		hash, err := spec.CanonicalHash()
		if err != nil {
			return nil, err
		}
		h.specs = append(h.specs, spec)
		h.hashes = append(h.hashes, hash)
	}
	return h, nil
}

// submit POSTs spec to the named replica, retrying on 429, and reports
// the outcome into phase (mutex held by caller via channel discipline).
func (h *fleetHarness) submit(name string, spec jobs.Spec, phase *FleetPhase, mu *sync.Mutex) error {
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	for attempt := 0; ; attempt++ {
		resp, err := h.client.Post("http://"+h.addrs[name]+"/v1/jobs", "application/json",
			strings.NewReader(string(body)))
		if err != nil {
			return fmt.Errorf("POST to %s: %w", name, err)
		}
		var out struct {
			Cached    bool   `json:"cached"`
			Coalesced bool   `json:"coalesced"`
			Error     string `json:"error"`
		}
		decErr := json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			mu.Lock()
			phase.Retries++
			mu.Unlock()
			if attempt > 200 {
				return fmt.Errorf("replica %s: still 429 after %d retries", name, attempt)
			}
			time.Sleep(20 * time.Millisecond)
			continue
		case resp.StatusCode >= 400:
			return fmt.Errorf("replica %s: status %d (%s)", name, resp.StatusCode, out.Error)
		case decErr != nil:
			return fmt.Errorf("replica %s: bad response: %w", name, decErr)
		}
		mu.Lock()
		phase.Submitted++
		if resp.StatusCode == http.StatusOK && out.Cached {
			phase.Hits++
		} else {
			phase.Accepted++
		}
		mu.Unlock()
		return nil
	}
}

// waitCached polls the named replica until hash is in its result cache.
func (h *fleetHarness) waitCached(name, hash string, within time.Duration) error {
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		resp, err := h.client.Get(fmt.Sprintf("http://%s/v1/cache/%s", h.addrs[name], hash))
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				return nil
			}
		}
		time.Sleep(15 * time.Millisecond)
	}
	return fmt.Errorf("hash %s never cached on %s", hash[:12], name)
}

// warmup executes every distinct spec once (routing finds the ring
// owner) and then touches it on every replica so all local caches hold
// every hash — after this, the duplicate storm is all cache hits and the
// kill window cannot force a recomputation of warm content.
func (h *fleetHarness) warmup(run *FleetRun) error {
	var mu sync.Mutex
	var discard FleetPhase
	for i, spec := range h.specs {
		if err := h.submit(h.names[i%len(h.names)], spec, &discard, &mu); err != nil {
			return err
		}
		// Wait for the owner (whoever that is) to finish and cache it.
		ring, _ := h.servers[h.names[0]].Fleet()
		if err := h.waitCached(ring.Owner(h.hashes[i]), h.hashes[i], 30*time.Second); err != nil {
			return err
		}
		// Touch on every replica: a local miss peer-fetches and installs.
		for _, name := range h.names {
			if err := h.submit(name, spec, &discard, &mu); err != nil {
				return err
			}
		}
		run.WarmupJobs += 1 + len(h.names)
	}
	return nil
}

// storm drives n duplicate submissions round-robin across replicas from
// opt.Clients concurrent clients.
func (h *fleetHarness) storm(n int, run *FleetRun) error {
	var mu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, h.opt.Clients)
	per := n / h.opt.Clients
	for c := 0; c < h.opt.Clients; c++ {
		count := per
		if c == 0 {
			count += n % h.opt.Clients
		}
		wg.Add(1)
		go func(c, count int) {
			defer wg.Done()
			for i := 0; i < count; i++ {
				k := c*per + i
				spec := h.specs[k%len(h.specs)]
				name := h.names[k%len(h.names)]
				if err := h.submit(name, spec, &run.Storm, &mu); err != nil {
					errCh <- err
					return
				}
			}
		}(c, count)
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

// victimSpecs crafts jobs the ring assigns to the kill target, so the
// restarted replica provably replays and completes them. MaxIter varies
// the canonical hash without changing the physics budget materially.
func (h *fleetHarness) victimSpecs(target string, n int) ([]jobs.Spec, []string, error) {
	ring, _ := h.servers[h.names[0]].Fleet()
	var specs []jobs.Spec
	var hashes []string
	for iter := 301; len(specs) < n; iter++ {
		spec := jobs.Spec{Molecule: "h2", Basis: "sto-3g", Mode: jobs.ModeSerial, MaxIter: iter}
		hash, err := spec.CanonicalHash()
		if err != nil {
			return nil, nil, err
		}
		if ring.Owner(hash) == target {
			specs = append(specs, spec)
			hashes = append(hashes, hash)
		}
	}
	return specs, hashes, nil
}

// restart replaces the killed replica: a fresh Server over the same WAL
// directory, rebound to the same address, rejoined to the fleet.
func (h *fleetHarness) restart(name string) (*Server, error) {
	cfg := h.serverConfig()
	cfg.WALDir = h.walDirs[name]
	s, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("restart %s: %w", name, err)
	}
	s.ConfigureFleet(name, h.addrs, 0)
	// The killed listener releases its port asynchronously; retry the bind.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := s.Start(h.addrs[name]); err == nil {
			break
		} else if time.Now().After(deadline) {
			return nil, fmt.Errorf("rebinding %s on %s: %w", name, h.addrs[name], err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	h.servers[name] = s
	return s, nil
}

// audit fills the loss/exactly-once fields of run from the fleet's
// registries (list endpoint) and execution tallies.
func (h *fleetHarness) audit(run *FleetRun, allHashes []string) error {
	// Terminal-state sweep via the list endpoint: failed or canceled
	// anywhere is a loss of acknowledged work.
	for _, name := range h.names {
		for _, state := range []string{"failed", "canceled", "queued", "running"} {
			resp, err := h.client.Get(fmt.Sprintf(
				"http://%s/v1/jobs?status=%s&limit=1", h.addrs[name], state))
			if err != nil {
				return fmt.Errorf("listing %s on %s: %w", state, name, err)
			}
			var page struct {
				Total int `json:"total"`
			}
			err = json.NewDecoder(resp.Body).Decode(&page)
			resp.Body.Close()
			if err != nil {
				return err
			}
			switch state {
			case "failed", "canceled":
				run.Failed += page.Total
			case "queued", "running":
				run.Lost += page.Total // post-drain: nothing may still be pending
			}
		}
	}
	// Exactly-once: per-hash execution counts summed across replicas.
	run.MinExec, run.MaxExec = 1<<30, 0
	totals := map[string]int{}
	for _, s := range h.servers {
		for hash, n := range s.Executions() {
			totals[hash] += n
		}
	}
	for _, hash := range allHashes {
		n := totals[hash]
		if n < run.MinExec {
			run.MinExec = n
		}
		if n > run.MaxExec {
			run.MaxExec = n
		}
	}
	run.Distinct = len(allHashes)
	return nil
}

// quiesce polls every replica's queue endpoint until no job is queued
// or running anywhere — the audit precondition.
func (h *fleetHarness) quiesce(within time.Duration) error {
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		pending := 0
		for _, name := range h.names {
			resp, err := h.client.Get("http://" + h.addrs[name] + "/v1/queue")
			if err != nil {
				return fmt.Errorf("quiesce poll %s: %w", name, err)
			}
			var q struct {
				Depth  int            `json:"depth"`
				States map[string]int `json:"states"`
			}
			err = json.NewDecoder(resp.Body).Decode(&q)
			resp.Body.Close()
			if err != nil {
				return err
			}
			pending += q.Depth + q.States["queued"] + q.States["running"]
		}
		if pending == 0 {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("fleet did not quiesce within %v", within)
}

// drainAll gracefully drains every live replica.
func (h *fleetHarness) drainAll() {
	for _, s := range h.servers {
		if !s.Killed() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			_ = s.Drain(ctx)
			cancel()
		}
	}
}

// runFleetPass executes one full pass. kill == "" is the baseline; a
// replica name is the chaos pass: half the storm, park victim jobs on
// the target's queue, SIGKILL it, restart it from its WAL, verify the
// backlog replays, then finish the storm.
func runFleetPass(opt FleetOptions, kill string, out io.Writer) (FleetRun, error) {
	var run FleetRun
	h, err := bootFleet(opt)
	if err != nil {
		return run, err
	}
	defer h.drainAll()
	start := time.Now()

	fmt.Fprintf(out, "  warmup: %d distinct specs across %d replicas\n", opt.Distinct, opt.Replicas)
	if err := h.warmup(&run); err != nil {
		return run, fmt.Errorf("warmup: %w", err)
	}
	allHashes := append([]string{}, h.hashes...)

	half := opt.Jobs / 2
	if err := h.storm(half, &run); err != nil {
		return run, fmt.Errorf("storm first half: %w", err)
	}

	if kill != "" {
		specs, hashes, err := h.victimSpecs(kill, opt.Victims)
		if err != nil {
			return run, err
		}
		allHashes = append(allHashes, hashes...)
		var mu sync.Mutex
		var discard FleetPhase
		for _, spec := range specs {
			// Accepted (202 + WAL accept) on the victim; with the storm
			// paused and tiny specs, some may finish before the kill — the
			// gate needs at least one still pending, which Victims=4 against
			// an immediate kill reliably leaves.
			if err := h.submit(kill, spec, &discard, &mu); err != nil {
				return run, fmt.Errorf("victim submit: %w", err)
			}
			run.VictimJobs++
		}
		fmt.Fprintf(out, "  SIGKILL %s with %d victim jobs parked (storm at %d/%d)\n",
			kill, run.VictimJobs, half, opt.Jobs)
		h.servers[kill].Kill()

		restarted, err := h.restart(kill)
		if err != nil {
			return run, err
		}
		run.Reenqueued = restarted.RecoveredBacklog()
		fmt.Fprintf(out, "  restarted %s: %d jobs re-enqueued from WAL, %d terminal replayed\n",
			kill, restarted.RecoveredBacklog(), restarted.RecoveredDone())
		// The replayed backlog must complete before the storm resumes.
		for _, hash := range hashes {
			if err := h.waitCached(kill, hash, 30*time.Second); err != nil {
				return run, fmt.Errorf("replayed victim: %w", err)
			}
		}
	}

	if err := h.storm(opt.Jobs-half, &run); err != nil {
		return run, fmt.Errorf("storm second half: %w", err)
	}

	// Quiesce: every accepted job terminal before auditing (the audit
	// itself runs over HTTP, so the drain happens after, via the defer).
	if err := h.quiesce(time.Minute); err != nil {
		return run, err
	}
	if err := h.audit(&run, allHashes); err != nil {
		return run, err
	}
	run.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	return run, nil
}

// RunFleet executes the full experiment: baseline pass, then chaos pass
// with replica r1 killed and restarted.
func RunFleet(opt FleetOptions) (*FleetReport, error) {
	opt = opt.withDefaults()
	rep := &FleetReport{Replicas: opt.Replicas, Killed: "r1"}

	fmt.Fprintln(opt.Out, "baseline pass (no kill):")
	base, err := runFleetPass(opt, "", opt.Out)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	rep.Baseline = base

	fmt.Fprintln(opt.Out, "chaos pass (kill r1 mid-storm):")
	chaos, err := runFleetPass(opt, rep.Killed, opt.Out)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	rep.Chaos = chaos
	return rep, nil
}

// FormatFleet renders the report.
func FormatFleet(r *FleetReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-34s %12s %12s\n", "", "baseline", "kill+restart")
	row := func(label, a, c string) { fmt.Fprintf(&b, "  %-34s %12s %12s\n", label, a, c) }
	row("storm submissions",
		fmt.Sprintf("%d", r.Baseline.Storm.Submitted), fmt.Sprintf("%d", r.Chaos.Storm.Submitted))
	row("cache hits (client-observed)",
		fmt.Sprintf("%d", r.Baseline.Storm.Hits), fmt.Sprintf("%d", r.Chaos.Storm.Hits))
	row("hit rate",
		fmt.Sprintf("%.1f%%", r.Baseline.Storm.HitRate()), fmt.Sprintf("%.1f%%", r.Chaos.Storm.HitRate()))
	row("429 retries",
		fmt.Sprintf("%d", r.Baseline.Storm.Retries), fmt.Sprintf("%d", r.Chaos.Storm.Retries))
	row("warmup + victim jobs",
		fmt.Sprintf("%d + %d", r.Baseline.WarmupJobs, r.Baseline.VictimJobs),
		fmt.Sprintf("%d + %d", r.Chaos.WarmupJobs, r.Chaos.VictimJobs))
	row("distinct hashes",
		fmt.Sprintf("%d", r.Baseline.Distinct), fmt.Sprintf("%d", r.Chaos.Distinct))
	row("executions per hash (min..max)",
		fmt.Sprintf("%d..%d", r.Baseline.MinExec, r.Baseline.MaxExec),
		fmt.Sprintf("%d..%d", r.Chaos.MinExec, r.Chaos.MaxExec))
	row("lost / failed jobs",
		fmt.Sprintf("%d / %d", r.Baseline.Lost, r.Baseline.Failed),
		fmt.Sprintf("%d / %d", r.Chaos.Lost, r.Chaos.Failed))
	row("WAL backlog re-enqueued", "-", fmt.Sprintf("%d", r.Chaos.Reenqueued))
	row("wall",
		fmt.Sprintf("%.0f ms", r.Baseline.WallMS), fmt.Sprintf("%.0f ms", r.Chaos.WallMS))
	fmt.Fprintf(&b, "  hit-rate gap: %.2f points (killed replica: %s)\n",
		r.HitRateGapPoints(), r.Killed)
	return b.String()
}

// CSVFleet renders the report as CSV.
func CSVFleet(r *FleetReport) string {
	var b strings.Builder
	b.WriteString("pass,storm_submissions,cache_hits,hit_rate_pct,retries_429,warmup_jobs,victim_jobs,distinct_hashes,min_exec,max_exec,lost,failed,reenqueued,wall_ms\n")
	for _, p := range []struct {
		name string
		run  FleetRun
	}{{"baseline", r.Baseline}, {"chaos", r.Chaos}} {
		fmt.Fprintf(&b, "%s,%d,%d,%.2f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.0f\n",
			p.name, p.run.Storm.Submitted, p.run.Storm.Hits, p.run.Storm.HitRate(),
			p.run.Storm.Retries, p.run.WarmupJobs, p.run.VictimJobs, p.run.Distinct,
			p.run.MinExec, p.run.MaxExec, p.run.Lost, p.run.Failed, p.run.Reenqueued, p.run.WallMS)
	}
	return b.String()
}
