package service

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring assigning job content hashes to replica
// names. Each replica contributes vnodes virtual points so ownership
// spreads evenly even with three replicas; looking up a hash walks
// clockwise to the first point at or past it. Adding or removing one
// replica moves only ~1/N of the hash space — the property that makes a
// killed replica's share redistribute without reshuffling everything.
type Ring struct {
	points []ringPoint // sorted by pos
	names  []string    // member names, sorted (for stable iteration)
}

type ringPoint struct {
	pos  uint64
	name string
}

// DefaultVNodes is the virtual-node count per replica when the caller
// passes vnodes <= 0. 64 points per member keeps the expected ownership
// imbalance under a few percent for single-digit fleets.
const DefaultVNodes = 64

// NewRing builds a ring over the given replica names. Duplicate names
// collapse; order does not matter — two replicas constructing rings from
// the same member set agree on every ownership decision, which is what
// lets routing work without a coordinator.
func NewRing(names []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := map[string]bool{}
	r := &Ring{}
	for _, n := range names {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.names = append(r.names, n)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{pos: fnv64(fmt.Sprintf("%s#%d", n, v)), name: n})
		}
	}
	sort.Strings(r.names)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		return r.points[i].name < r.points[j].name // deterministic tie-break
	})
	return r
}

// Owner returns the replica owning the given content hash ("" on an
// empty ring).
func (r *Ring) Owner(hash string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	pos := fnv64(hash)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0 // wrap: clockwise past the top of the ring
	}
	return r.points[i].name
}

// Members returns the replica names on the ring, sorted.
func (r *Ring) Members() []string {
	if r == nil {
		return nil
	}
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// fnv64 hashes s to a ring position: FNV-64a followed by a murmur3-style
// finalizer. Raw FNV clusters badly on short strings sharing a prefix —
// "r0#0".."r0#63" land within a few thousand positions of each other,
// which collapses the virtual nodes into one arc and wrecks the balance
// the vnodes exist to provide. The finalizer's avalanche spreads them.
func fnv64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
