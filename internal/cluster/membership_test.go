package cluster

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/telemetry"
)

func TestMembershipJoinLifecycle(t *testing.T) {
	tel := telemetry.NewSession()
	m := NewMembership(2, tel)

	ticket := m.Announce(1, "joiner-a")
	if ticket.State() != JoinAnnounced {
		t.Fatalf("after announce: state = %v", ticket.State())
	}
	if n := m.PendingJoins(); n != 1 {
		t.Fatalf("pending joins = %d, want 1", n)
	}
	if n := m.PendingRanks(); n != 1 {
		t.Fatalf("pending ranks = %d, want 1", n)
	}

	if !m.BeginRebalance() {
		t.Fatal("BeginRebalance returned false with a pending candidate")
	}
	if ticket.State() != JoinHandshake {
		t.Fatalf("after begin: state = %v", ticket.State())
	}
	if !m.Rebalancing() {
		t.Fatal("not rebalancing during the handshake")
	}

	ckpt := []byte("HFCKPT v1 stand-in")
	if added := m.CommitJoins(ckpt); added != 1 {
		t.Fatalf("CommitJoins added %d ranks, want 1", added)
	}
	if ticket.State() != JoinCommitted {
		t.Fatalf("after commit: state = %v", ticket.State())
	}
	got, err := ticket.AwaitAdmission(time.Second)
	if err != nil {
		t.Fatalf("AwaitAdmission: %v", err)
	}
	if !bytes.Equal(got, ckpt) {
		t.Fatalf("checkpoint handed to joiner differs: %q", got)
	}
	if m.Size() != 3 || m.Epoch() != 1 {
		t.Fatalf("after commit: size=%d epoch=%d, want 3/1", m.Size(), m.Epoch())
	}
	if m.Rebalancing() {
		t.Fatal("still rebalancing after commit")
	}
	if n := tel.Counter("elastic.joins.committed").Value(); n != 1 {
		t.Fatalf("joins.committed = %d, want 1", n)
	}
}

func TestMembershipTTLExpiryAndReAnnounce(t *testing.T) {
	tel := telemetry.NewSession()
	m := NewMembership(2, tel)
	m.SetJoinTTL(time.Millisecond)

	ticket := m.Announce(1, "slowpoke")
	time.Sleep(5 * time.Millisecond)
	if n := m.PendingJoins(); n != 0 {
		t.Fatalf("pending joins after TTL = %d, want 0", n)
	}
	if ticket.State() != JoinExpired {
		t.Fatalf("state after TTL = %v, want expired", ticket.State())
	}
	if n := tel.Counter("elastic.joins.expired").Value(); n != 1 {
		t.Fatalf("joins.expired = %d, want 1", n)
	}
	// An expired candidate must not be admitted by a later commit.
	if m.BeginRebalance() {
		t.Fatal("BeginRebalance admitted an expired candidate")
	}

	m.SetJoinTTL(time.Minute)
	retry, backoff := m.ReAnnounce(ticket)
	if retry.Attempt != 1 {
		t.Fatalf("re-announce attempt = %d, want 1", retry.Attempt)
	}
	if want := mpi.JoinBackoff("slowpoke", 1); backoff != want {
		t.Fatalf("backoff = %v, want deterministic %v", backoff, want)
	}
	if !m.BeginRebalance() {
		t.Fatal("re-announced candidate not picked up")
	}
	if added := m.CommitJoins(nil); added != 1 {
		t.Fatalf("re-announced candidate: added = %d, want 1", added)
	}
}

func TestMembershipAbortRebalance(t *testing.T) {
	m := NewMembership(2, nil)
	ticket := m.Announce(2, "joiner")
	if !m.BeginRebalance() {
		t.Fatal("BeginRebalance failed")
	}
	m.AbortRebalance("rank death won the race")
	if ticket.State() != JoinAborted {
		t.Fatalf("state after abort = %v", ticket.State())
	}
	if m.Rebalancing() {
		t.Fatal("still rebalancing after abort")
	}
	if m.Size() != 2 || m.Epoch() != 0 {
		t.Fatalf("abort changed the pool: size=%d epoch=%d", m.Size(), m.Epoch())
	}
	// Commit after abort must admit nobody.
	if added := m.CommitJoins(nil); added != 0 {
		t.Fatalf("commit after abort added %d ranks", added)
	}
}

func TestMembershipShrinkFloor(t *testing.T) {
	m := NewMembership(3, nil)
	if size := m.Shrink(1); size != 2 || m.Epoch() != 1 {
		t.Fatalf("shrink 1: size=%d epoch=%d, want 2/1", size, m.Epoch())
	}
	if size := m.Shrink(10); size != 1 || m.Epoch() != 2 {
		t.Fatalf("shrink 10: size=%d epoch=%d, want floor 1 / epoch 2", size, m.Epoch())
	}
	if size := m.Shrink(0); size != 1 || m.Epoch() != 2 {
		t.Fatalf("shrink 0 must be a no-op: size=%d epoch=%d", size, m.Epoch())
	}
}

func TestMembershipMigrationAdvancesEpoch(t *testing.T) {
	tel := telemetry.NewSession()
	m := NewMembership(4, tel)
	m.RecordMigration([]int{1, 3})
	if m.Size() != 4 {
		t.Fatalf("migration changed pool size: %d", m.Size())
	}
	if m.Epoch() != 1 {
		t.Fatalf("migration epoch = %d, want 1", m.Epoch())
	}
	if n := tel.Counter("elastic.migrations").Value(); n != 2 {
		t.Fatalf("elastic.migrations = %d, want 2 (one per re-hosted rank)", n)
	}
	m.RecordMigration(nil)
	if m.Epoch() != 1 {
		t.Fatal("empty migration advanced the epoch")
	}
}

func TestMembershipBusChaosHealedBeforeAdmission(t *testing.T) {
	tel := telemetry.NewSession()
	m := NewMembership(2, tel)

	// One duplicated and one corrupted announce: the bus discipline must
	// heal both so exactly two candidates (not three) reach the handshake.
	m.Bus().DuplicateNext()
	m.Announce(1, "dup-host")
	m.Bus().CorruptNext()
	m.Announce(1, "corrupt-host")

	if n := m.PendingJoins(); n != 2 {
		t.Fatalf("pending joins = %d, want 2 (chaos not healed)", n)
	}
	if !m.BeginRebalance() {
		t.Fatal("BeginRebalance failed")
	}
	if added := m.CommitJoins(nil); added != 2 {
		t.Fatalf("added = %d ranks, want 2", added)
	}
	if n := tel.Counter("elastic.join.dup_dropped").Value(); n != 1 {
		t.Fatalf("dup_dropped = %d, want 1", n)
	}
	if n := tel.Counter("elastic.join.retransmits").Value(); n != 1 {
		t.Fatalf("retransmits = %d, want 1", n)
	}
}

func TestMembershipConcurrentAnnounce(t *testing.T) {
	m := NewMembership(1, nil)
	const candidates = 8
	var wg sync.WaitGroup
	for i := 0; i < candidates; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.Announce(1, fmt.Sprintf("host-%d", i))
		}(i)
	}
	wg.Wait()
	if n := m.PendingJoins(); n != candidates {
		t.Fatalf("pending joins = %d, want %d", n, candidates)
	}
	if !m.BeginRebalance() {
		t.Fatal("BeginRebalance failed")
	}
	if added := m.CommitJoins(nil); added != candidates {
		t.Fatalf("added = %d, want %d", added, candidates)
	}
	if m.Size() != 1+candidates || m.Epoch() != 1 {
		t.Fatalf("size=%d epoch=%d, want %d/1", m.Size(), m.Epoch(), 1+candidates)
	}
}
