package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/knl"
)

func TestMachineSpecs(t *testing.T) {
	theta := Theta()
	if theta.MaxNodes != 3624 {
		t.Fatalf("Theta nodes = %d (Table 1 says 3,624)", theta.MaxNodes)
	}
	if theta.Node.Model != "Xeon Phi 7230" {
		t.Fatalf("Theta node = %s", theta.Node.Model)
	}
	jlse := JLSE()
	if jlse.MaxNodes != 10 || jlse.Node.Model != "Xeon Phi 7210" {
		t.Fatalf("JLSE spec wrong: %+v", jlse)
	}
}

func TestAllreduceTimeProperties(t *testing.T) {
	net := Aries()
	if net.AllreduceTime(1<<20, 1) != 0 {
		t.Fatal("single rank allreduce must be free")
	}
	// Grows with payload.
	if net.AllreduceTime(1<<30, 64) <= net.AllreduceTime(1<<20, 64) {
		t.Fatal("allreduce not monotone in bytes")
	}
	// Latency term grows with rank count (log), bandwidth term saturates:
	// time(2P) >= time(P) always.
	f := func(kb uint16, p uint8) bool {
		bytes := int64(kb)*1024 + 8
		ranks := int(p)%1000 + 2
		return net.AllreduceTime(bytes, 2*ranks) >= net.AllreduceTime(bytes, ranks)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworksDistinct(t *testing.T) {
	a, o := Aries(), OmniPath()
	if a.Name == o.Name {
		t.Fatal("networks should be distinguishable")
	}
	if a.RMALatencySec <= 0 || o.RMALatencySec <= 0 {
		t.Fatal("RMA latency unset")
	}
}

func TestJobArithmetic(t *testing.T) {
	j := Job{Nodes: 8, RanksPerNode: 4, ThreadsPerRank: 64}
	if j.TotalRanks() != 32 || j.HWThreadsPerNode() != 256 {
		t.Fatalf("job arithmetic wrong: %+v", j)
	}
}

func TestValidate(t *testing.T) {
	theta := Theta()
	cases := []struct {
		job Job
		ok  bool
	}{
		{Job{Nodes: 4, RanksPerNode: 4, ThreadsPerRank: 64}, true},
		{Job{Nodes: 3624, RanksPerNode: 256, ThreadsPerRank: 1}, true},
		{Job{Nodes: 0, RanksPerNode: 4, ThreadsPerRank: 64}, false},
		{Job{Nodes: 4000, RanksPerNode: 4, ThreadsPerRank: 64}, false},
		{Job{Nodes: 4, RanksPerNode: 0, ThreadsPerRank: 64}, false},
		{Job{Nodes: 4, RanksPerNode: 4, ThreadsPerRank: 65}, false}, // 260 > 256
	}
	for i, c := range cases {
		err := theta.Validate(c.job)
		if (err == nil) != c.ok {
			t.Fatalf("case %d: err=%v ok=%v", i, err, c.ok)
		}
	}
}

func TestWithModes(t *testing.T) {
	m := JLSE().WithModes(knl.AllToAll, knl.FlatDDR)
	if m.Node.ClusterModeUsed != knl.AllToAll || m.Node.MemoryModeUsed != knl.FlatDDR {
		t.Fatal("WithModes did not propagate to the node")
	}
	// Original untouched (value semantics).
	if JLSE().Node.ClusterModeUsed != knl.Quadrant {
		t.Fatal("WithModes mutated the constructor default")
	}
}

func TestSystemMTBF(t *testing.T) {
	theta := Theta()
	// One node: the system MTBF is the node MTBF.
	if got := theta.SystemMTBFSec(1); got != DefaultNodeMTBFHours*3600 {
		t.Fatalf("1-node MTBF = %v s", got)
	}
	// Rates add: n nodes fail n times as often.
	if got, want := theta.SystemMTBFSec(3000), DefaultNodeMTBFHours*3600/3000.0; got != want {
		t.Fatalf("3000-node MTBF = %v s, want %v", got, want)
	}
	// Full Theta with a 2-year node MTBF fails about every 4.8 hours.
	if h := theta.SystemMTBFSec(3624) / 3600; h < 4 || h > 6 {
		t.Fatalf("full-Theta MTBF = %v h, expected ~4.8", h)
	}
	// A zero-valued machine falls back to the default node MTBF.
	if got := (Machine{}).SystemMTBFSec(10); got != DefaultNodeMTBFHours*3600/10.0 {
		t.Fatalf("default fallback = %v s", got)
	}
	if !math.IsInf((Machine{}).SystemMTBFSec(0), 1) {
		t.Fatal("zero nodes must never fail")
	}
}
