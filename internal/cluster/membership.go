package cluster

// Elastic membership: the bookkeeping half of the elastic runtime. A
// Membership tracks the current rank-pool size and its epoch (a counter
// that increments on every size or placement change), and runs the join
// protocol for candidates that want to enter a running computation:
//
//	announce  — the candidate frames a JoinAnnounce through the JoinBus
//	            (sequence-numbered + checksummed, see mpi/join.go) and
//	            waits for admission with a TTL;
//	handshake — the driver, at an SCF iteration boundary, moves every
//	            announced candidate into the checkpoint handshake
//	            (BeginRebalance) and stops the running epoch;
//	commit    — the driver hands the last CRC-verified checkpoint to the
//	            admitted candidates (CommitJoins), the pool grows, and
//	            the epoch increments — the restarted computation includes
//	            the new ranks from its first iteration;
//	expire    — a candidate not admitted within the TTL expires and
//	            re-announces after a full-jitter backoff (JoinBackoff),
//	            so a wedged driver cannot strand a herd of candidates in
//	            lockstep retries.
//
// Shrink (rank death) and migration (straggler re-host, same size but
// new placement) also advance the epoch: any layer that caches
// per-world state — straggler windows, lease cycles, worker pools —
// keys it by epoch and never reads a stale world's data.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// JoinState is a join ticket's position in the protocol state machine.
type JoinState int

const (
	// JoinAnnounced: framed through the bus, waiting for the driver to
	// reach an iteration boundary.
	JoinAnnounced JoinState = iota
	// JoinHandshake: the driver is stopping the running epoch to admit
	// this candidate (checkpoint handshake in flight).
	JoinHandshake
	// JoinCommitted: admitted; the ticket carries the checkpoint.
	JoinCommitted
	// JoinExpired: the TTL lapsed before admission; the candidate should
	// re-announce after JoinBackoff.
	JoinExpired
	// JoinAborted: the driver abandoned the handshake (e.g. the epoch
	// died for a different reason); the ticket reverts to announced-like
	// retry semantics on the candidate side.
	JoinAborted
)

func (s JoinState) String() string {
	switch s {
	case JoinAnnounced:
		return "announced"
	case JoinHandshake:
		return "handshake"
	case JoinCommitted:
		return "committed"
	case JoinExpired:
		return "expired"
	case JoinAborted:
		return "aborted"
	}
	return fmt.Sprintf("JoinState(%d)", int(s))
}

// JoinTicket is one candidate's pending join.
type JoinTicket struct {
	Host        string
	Ranks       int
	Attempt     int // 0-based announce attempt (for backoff)
	Seq         int64
	AnnouncedAt time.Time
	Deadline    time.Time

	mu         sync.Mutex
	state      JoinState
	checkpoint []byte
	admitted   chan struct{}
}

// State returns the ticket's current protocol state.
func (t *JoinTicket) State() JoinState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

func (t *JoinTicket) setState(s JoinState) {
	t.mu.Lock()
	t.state = s
	t.mu.Unlock()
}

// Checkpoint returns the checkpoint handed over at commit (nil before).
func (t *JoinTicket) Checkpoint() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.checkpoint
}

// AwaitAdmission blocks until the driver commits this ticket (returning
// the handshake checkpoint) or the wait times out (the candidate should
// then re-announce after JoinBackoff(host, attempt+1)).
func (t *JoinTicket) AwaitAdmission(timeout time.Duration) ([]byte, error) {
	select {
	case <-t.admitted:
		return t.Checkpoint(), nil
	case <-time.After(timeout):
		return nil, fmt.Errorf("cluster: join of %q (%d ranks) not admitted within %v",
			t.Host, t.Ranks, timeout)
	}
}

// Event is one membership transition, for experiment reports and tests.
type Event struct {
	Time   time.Time
	Kind   string // announce | handshake | commit | expire | abort | grow | shrink | migrate
	Detail string
	Epoch  int64
	Size   int
}

// DefaultJoinTTL bounds how long an announced candidate waits for the
// driver to reach an iteration boundary before it expires and backs off.
const DefaultJoinTTL = 30 * time.Second

// Membership is the elastic rank pool of one computation (or one serving
// replica's worker pool). Concurrency-safe.
type Membership struct {
	mu          sync.Mutex
	size        int
	epoch       int64
	joinTTL     time.Duration
	pending     []*JoinTicket
	bus         *mpi.JoinBus
	tel         *telemetry.Session
	rebalancing bool
	events      []Event
	now         func() time.Time // test hook
}

// NewMembership returns a pool of the given initial size (min 1). tel
// (optional) receives the elastic.* counters and gauges.
func NewMembership(size int, tel *telemetry.Session) *Membership {
	if size < 1 {
		size = 1
	}
	m := &Membership{
		size:    size,
		joinTTL: DefaultJoinTTL,
		bus:     mpi.NewJoinBus(tel),
		tel:     tel,
		now:     time.Now,
	}
	m.gauge("elastic.pool_size", float64(size))
	m.gauge("elastic.pool_epoch", 0)
	m.gauge("elastic.rebalance_inflight", 0)
	return m
}

// SetJoinTTL overrides the announce TTL (tests and fast experiments).
func (m *Membership) SetJoinTTL(d time.Duration) {
	m.mu.Lock()
	m.joinTTL = d
	m.mu.Unlock()
}

// Bus exposes the join bus (chaos experiments arm its fault knobs).
func (m *Membership) Bus() *mpi.JoinBus { return m.bus }

func (m *Membership) count(name string, n int64) {
	if m.tel != nil {
		m.tel.Counter(name).Add(n)
	}
}

func (m *Membership) gauge(name string, v float64) {
	if m.tel != nil {
		m.tel.Gauge(name).Set(v)
	}
}

// Size returns the current rank-pool size.
func (m *Membership) Size() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.size
}

// Epoch returns the membership epoch: incremented on every grow, shrink,
// or migration.
func (m *Membership) Epoch() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Rebalancing reports whether a join/rebalance handshake is in flight
// (readiness probes return 503 during this window).
func (m *Membership) Rebalancing() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rebalancing
}

// Events returns a copy of the transition log.
func (m *Membership) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// event appends to the transition log; caller holds the lock.
func (m *Membership) event(kind, detail string) {
	m.events = append(m.events, Event{
		Time: m.now(), Kind: kind, Detail: detail, Epoch: m.epoch, Size: m.size,
	})
}

// Announce frames a JoinAnnounce for the candidate through the bus and
// returns its ticket. attempt is 0 for a first announce; an expired
// candidate re-announces with attempt+1 after JoinBackoff.
func (m *Membership) Announce(ranks int, host string) *JoinTicket {
	return m.announce(ranks, host, 0)
}

// ReAnnounce retries an expired/aborted ticket. It returns the new
// ticket and the full-jitter backoff the candidate should wait before
// the announce takes effect (tests apply it synthetically; a live
// candidate sleeps it).
func (m *Membership) ReAnnounce(t *JoinTicket) (*JoinTicket, time.Duration) {
	attempt := t.Attempt + 1
	return m.announce(t.Ranks, t.Host, attempt), mpi.JoinBackoff(t.Host, attempt)
}

func (m *Membership) announce(ranks int, host string, attempt int) *JoinTicket {
	if ranks < 1 {
		ranks = 1
	}
	seq := m.bus.Send(mpi.JoinFrame{
		Kind: mpi.JoinAnnounce, Sender: host, Epoch: m.Epoch(), Ranks: ranks,
		Payload: []int{attempt},
	})
	m.drainBus()
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := len(m.pending) - 1; i >= 0; i-- {
		if t := m.pending[i]; t.Host == host && t.Seq == seq {
			return t
		}
	}
	// The frame was dropped as a duplicate (bus chaos); surface an
	// already-expired ticket so the candidate backs off and retries.
	t := &JoinTicket{Host: host, Ranks: ranks, Attempt: attempt,
		AnnouncedAt: m.now(), admitted: make(chan struct{})}
	t.state = JoinExpired
	return t
}

// drainBus materializes every deliverable frame into the pending set.
// Duplicate, reordered, or corrupted announces were already healed by
// the bus's delivery discipline, so each surviving frame is exactly one
// protocol action.
func (m *Membership) drainBus() {
	for {
		f, ok := m.bus.Recv(0)
		if !ok {
			return
		}
		if f.Kind != mpi.JoinAnnounce {
			continue // grants/commits are driver→candidate; nothing to track here
		}
		m.mu.Lock()
		attempt := 0
		if len(f.Payload) > 0 {
			attempt = f.Payload[0]
		}
		now := m.now()
		t := &JoinTicket{
			Host: f.Sender, Ranks: f.Ranks, Attempt: attempt, Seq: f.Seq,
			AnnouncedAt: now, Deadline: now.Add(m.joinTTL),
			admitted: make(chan struct{}),
		}
		t.state = JoinAnnounced
		m.pending = append(m.pending, t)
		m.count("elastic.joins.announced", 1)
		m.event("announce", fmt.Sprintf("%s offers %d rank(s), attempt %d", f.Sender, f.Ranks, attempt))
		m.mu.Unlock()
	}
}

// expireStale walks announced tickets past their TTL into JoinExpired;
// caller holds the lock.
func (m *Membership) expireStale() {
	now := m.now()
	kept := m.pending[:0]
	for _, t := range m.pending {
		if t.State() == JoinAnnounced && now.After(t.Deadline) {
			t.setState(JoinExpired)
			m.count("elastic.joins.expired", 1)
			m.event("expire", fmt.Sprintf("%s (%d rank(s)) waited past TTL", t.Host, t.Ranks))
			continue
		}
		kept = append(kept, t)
	}
	for i := len(kept); i < len(m.pending); i++ {
		m.pending[i] = nil
	}
	m.pending = kept
}

// PendingJoins returns how many candidates are announced and unexpired.
func (m *Membership) PendingJoins() int {
	m.drainBus()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireStale()
	n := 0
	for _, t := range m.pending {
		if t.State() == JoinAnnounced {
			n++
		}
	}
	return n
}

// PendingRanks returns the total ranks offered by announced candidates.
func (m *Membership) PendingRanks() int {
	m.drainBus()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireStale()
	n := 0
	for _, t := range m.pending {
		if t.State() == JoinAnnounced {
			n += t.Ranks
		}
	}
	return n
}

// BeginRebalance moves every announced candidate into the checkpoint
// handshake and marks the pool rebalancing (readiness flips to 503). It
// returns false when no unexpired candidate is pending.
func (m *Membership) BeginRebalance() bool {
	m.drainBus()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireStale()
	any := false
	for _, t := range m.pending {
		if t.State() == JoinAnnounced {
			t.setState(JoinHandshake)
			any = true
		}
	}
	if any {
		m.rebalancing = true
		m.gauge("elastic.rebalance_inflight", 1)
		m.event("handshake", "checkpoint handshake started")
	}
	return any
}

// CommitJoins admits every candidate in handshake: each receives the
// checkpoint (the CRC-verified bytes the restarted epoch also warm-
// starts from), the pool grows by their offered ranks, and the epoch
// increments. Returns the number of ranks added.
func (m *Membership) CommitJoins(checkpoint []byte) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	added := 0
	kept := m.pending[:0]
	for _, t := range m.pending {
		if t.State() != JoinHandshake {
			kept = append(kept, t)
			continue
		}
		t.mu.Lock()
		t.state = JoinCommitted
		t.checkpoint = checkpoint
		close(t.admitted)
		t.mu.Unlock()
		added += t.Ranks
		m.count("elastic.joins.committed", 1)
	}
	for i := len(kept); i < len(m.pending); i++ {
		m.pending[i] = nil
	}
	m.pending = kept
	if added > 0 {
		m.size += added
		m.epoch++
		m.event("commit", fmt.Sprintf("%d rank(s) admitted", added))
		m.event("grow", fmt.Sprintf("pool %d -> %d", m.size-added, m.size))
	}
	m.rebalancing = false
	m.gauge("elastic.rebalance_inflight", 0)
	m.gauge("elastic.pool_size", float64(m.size))
	m.gauge("elastic.pool_epoch", float64(m.epoch))
	return added
}

// AbortRebalance abandons an in-flight handshake (the epoch ended for a
// different reason, e.g. a rank death won the race): handshake tickets
// become aborted and the candidates re-announce with backoff.
func (m *Membership) AbortRebalance(reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	kept := m.pending[:0]
	for _, t := range m.pending {
		if t.State() == JoinHandshake {
			t.setState(JoinAborted)
			m.event("abort", fmt.Sprintf("%s: %s", t.Host, reason))
			continue
		}
		kept = append(kept, t)
	}
	for i := len(kept); i < len(m.pending); i++ {
		m.pending[i] = nil
	}
	m.pending = kept
	m.rebalancing = false
	m.gauge("elastic.rebalance_inflight", 0)
}

// Shrink removes dead ranks from the pool (floor 1) and advances the
// epoch — the membership-side record of a shrink-restart.
func (m *Membership) Shrink(dead int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if dead < 1 {
		return m.size
	}
	from := m.size
	m.size -= dead
	if m.size < 1 {
		m.size = 1
	}
	m.epoch++
	m.event("shrink", fmt.Sprintf("pool %d -> %d (%d dead)", from, m.size, dead))
	m.gauge("elastic.pool_size", float64(m.size))
	m.gauge("elastic.pool_epoch", float64(m.epoch))
	return m.size
}

// RecordMigration re-hosts straggler-flagged ranks: the pool size is
// unchanged but the placement is new, so the epoch advances (stale
// straggler windows keyed by the old epoch are never read again).
func (m *Membership) RecordMigration(ranks []int) {
	if len(ranks) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.epoch++
	m.count("elastic.migrations", int64(len(ranks)))
	m.event("migrate", fmt.Sprintf("re-hosted rank(s) %v", ranks))
	m.gauge("elastic.pool_epoch", float64(m.epoch))
}
