// Package cluster models the multi-node machines of the paper's
// evaluation — the JLSE Xeon Phi cluster (Omni-Path) and the Theta Cray
// XC40 (Aries dragonfly) — together with interconnect cost models for the
// collective and one-sided operations the Hartree-Fock algorithms use.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/knl"
)

// Network is a latency/bandwidth interconnect model.
type Network struct {
	Name         string
	LatencySec   float64 // small-message one-way latency
	BandwidthBps float64 // per-link large-message bandwidth
	// RMALatencySec is the latency of a one-sided fetch-and-add, the DLB
	// primitive; slightly cheaper than a full message round trip on both
	// fabrics (HW-accelerated atomics).
	RMALatencySec float64
}

// Aries returns the Cray XC40 Aries dragonfly model (Theta).
func Aries() Network {
	return Network{
		Name:          "Aries dragonfly",
		LatencySec:    1.3e-6,
		BandwidthBps:  10e9,
		RMALatencySec: 0.9e-6,
	}
}

// OmniPath returns the Intel Omni-Path model (JLSE).
func OmniPath() Network {
	return Network{
		Name:          "Omni-Path",
		LatencySec:    1.0e-6,
		BandwidthBps:  12e9,
		RMALatencySec: 0.8e-6,
	}
}

// AllreduceTime models a Rabenseifner-style allreduce of bytes across
// ranks: 2 log2(P) latency terms plus 2 (P-1)/P of the payload through
// the per-node bandwidth.
func (n Network) AllreduceTime(bytes int64, ranks int) float64 {
	if ranks <= 1 {
		return 0
	}
	p := float64(ranks)
	steps := math.Ceil(math.Log2(p))
	return 2*steps*n.LatencySec + 2*(p-1)/p*float64(bytes)/n.BandwidthBps
}

// Machine is a named collection of identical KNL nodes on a network.
type Machine struct {
	Name     string
	MaxNodes int
	Node     knl.Node
	Net      Network
	// NodeMTBFHours is the mean time between fail-stop failures of a
	// single node, in hours. Production HPC nodes sit around one failure
	// every couple of years; large jobs see failures far more often
	// because node failure rates add.
	NodeMTBFHours float64
}

// DefaultNodeMTBFHours is the per-node mean time between failures used
// when a machine does not override it: two years, a common planning
// figure for commodity HPC nodes.
const DefaultNodeMTBFHours = 2 * 365 * 24 // 17,520 h

// Theta returns the ALCF Theta model: 3,624 Intel Xeon Phi 7230 nodes on
// Aries (Table 1).
func Theta() Machine {
	return Machine{Name: "Theta (Cray XC40)", MaxNodes: 3624, Node: knl.Phi7230(), Net: Aries(),
		NodeMTBFHours: DefaultNodeMTBFHours}
}

// JLSE returns the JLSE evaluation cluster: 10 Xeon Phi 7210 nodes on
// Omni-Path (Table 1).
func JLSE() Machine {
	return Machine{Name: "JLSE Xeon Phi cluster", MaxNodes: 10, Node: knl.Phi7210(), Net: OmniPath(),
		NodeMTBFHours: DefaultNodeMTBFHours}
}

// SystemMTBFSec returns the mean time between failures, in seconds, of a
// job spanning the given node count: independent exponential node
// lifetimes compose to a system rate of nodes/MTBF_node. At Theta's full
// 3,624 nodes a 2-year per-node MTBF yields a failure roughly every
// 4.8 hours — the regime that motivates fault-tolerant runtimes.
func (m Machine) SystemMTBFSec(nodes int) float64 {
	if nodes < 1 {
		return math.Inf(1)
	}
	mtbf := m.NodeMTBFHours
	if mtbf <= 0 {
		mtbf = DefaultNodeMTBFHours
	}
	return mtbf * 3600 / float64(nodes)
}

// Job is a requested run configuration.
type Job struct {
	Nodes          int
	RanksPerNode   int
	ThreadsPerRank int
	Affinity       knl.Affinity
}

// TotalRanks returns the global MPI rank count.
func (j Job) TotalRanks() int { return j.Nodes * j.RanksPerNode }

// HWThreadsPerNode returns the hardware threads a node hosts under j.
func (j Job) HWThreadsPerNode() int { return j.RanksPerNode * j.ThreadsPerRank }

// Validate checks the job against the machine's limits.
func (m Machine) Validate(j Job) error {
	if j.Nodes < 1 || j.Nodes > m.MaxNodes {
		return fmt.Errorf("cluster: %d nodes outside [1, %d] on %s", j.Nodes, m.MaxNodes, m.Name)
	}
	if j.RanksPerNode < 1 || j.ThreadsPerRank < 1 {
		return fmt.Errorf("cluster: ranks per node and threads per rank must be >= 1")
	}
	if ht := j.HWThreadsPerNode(); ht > m.Node.HWThreads() {
		return fmt.Errorf("cluster: %d hardware threads exceed the node's %d", ht, m.Node.HWThreads())
	}
	return nil
}

// WithModes returns a copy of the machine with its nodes reconfigured.
func (m Machine) WithModes(cm knl.ClusterMode, mm knl.MemoryMode) Machine {
	m.Node = m.Node.WithModes(cm, mm)
	return m
}
