package loadbalance

import (
	"sync"
	"testing"
	"testing/quick"
)

// drainAll runs every worker concurrently until the balancer is empty and
// returns how many times each task was handed out.
func drainAll(t *testing.T, b Balancer, n, workers int) []int {
	t.Helper()
	counts := make([]int, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				task, ok := b.Next(w)
				if !ok {
					return
				}
				mu.Lock()
				counts[task]++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	return counts
}

func checkExactlyOnce(t *testing.T, counts []int, name string) {
	t.Helper()
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("%s: task %d handed out %d times", name, i, c)
		}
	}
}

func TestCounterExactlyOnce(t *testing.T) {
	for _, chunk := range []int{1, 3, 16} {
		b := NewCounter(500, chunk)
		checkExactlyOnce(t, drainAll(t, b, 500, 7), b.Name())
	}
}

func TestStaticExactlyOnce(t *testing.T) {
	b := NewStatic(500, 6)
	checkExactlyOnce(t, drainAll(t, b, 500, 6), b.Name())
}

func TestStaticDisjointDeterministic(t *testing.T) {
	b := NewStatic(20, 4)
	var got []int
	for {
		task, ok := b.Next(1)
		if !ok {
			break
		}
		got = append(got, task)
	}
	want := []int{1, 5, 9, 13, 17}
	if len(got) != len(want) {
		t.Fatalf("worker 1 tasks = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("worker 1 tasks = %v want %v", got, want)
		}
	}
}

func TestStaticOutOfRangeWorker(t *testing.T) {
	b := NewStatic(10, 2)
	if _, ok := b.Next(5); ok {
		t.Fatal("out-of-range worker got a task")
	}
}

func TestStealingExactlyOnce(t *testing.T) {
	b, err := NewStealing(1000, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	checkExactlyOnce(t, drainAll(t, b, 1000, 8), b.Name())
}

func TestStealingStealsOnImbalance(t *testing.T) {
	// Sequentially drain worker 0's block, then it must steal.
	b, _ := NewStealing(100, 4, 1)
	for i := 0; i < 50; i++ {
		if _, ok := b.Next(0); !ok {
			break
		}
	}
	if b.Steals() == 0 {
		t.Fatal("no steals happened despite draining one worker")
	}
}

func TestStealingRejectsZeroWorkers(t *testing.T) {
	if _, err := NewStealing(10, 0, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestStealingQuickExactlyOnce(t *testing.T) {
	f := func(seed int64, nRaw, wRaw uint8) bool {
		n := int(nRaw)%200 + 1
		w := int(wRaw)%8 + 1
		b, err := NewStealing(n, w, seed)
		if err != nil {
			return false
		}
		counts := make([]int, n)
		// Deterministic sequential interleaving.
		active := make([]bool, w)
		for i := range active {
			active[i] = true
		}
		remaining := n
		for remaining > 0 {
			progressed := false
			for ww := 0; ww < w; ww++ {
				if !active[ww] {
					continue
				}
				task, ok := b.Next(ww)
				if !ok {
					active[ww] = false
					continue
				}
				counts[task]++
				remaining--
				progressed = true
			}
			if !progressed {
				break
			}
		}
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMakespanBalancedVsStatic(t *testing.T) {
	// Heavy-tailed costs: dynamic and stealing must beat static.
	n, workers := 400, 8
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = 1
	}
	// Worker 0's static share becomes pathological.
	for i := 0; i < n; i += workers {
		costs[i] = 50
	}
	staticFinish, _ := Makespan(NewStatic(n, workers), costs, workers)
	dynFinish, _ := Makespan(NewCounter(n, 1), costs, workers)
	st, _ := NewStealing(n, workers, 3)
	stealFinish, _ := Makespan(st, costs, workers)
	if dynFinish >= staticFinish {
		t.Fatalf("dynamic (%v) should beat static (%v) on skewed costs", dynFinish, staticFinish)
	}
	if stealFinish >= staticFinish {
		t.Fatalf("stealing (%v) should beat static (%v) on skewed costs", stealFinish, staticFinish)
	}
}

func TestMakespanConservation(t *testing.T) {
	// Sum of busy time must equal sum of costs for every strategy.
	n, workers := 137, 5
	costs := make([]float64, n)
	total := 0.0
	for i := range costs {
		costs[i] = float64(i%7) + 1
		total += costs[i]
	}
	for _, b := range []Balancer{NewCounter(n, 2), NewStatic(n, workers)} {
		_, busy := Makespan(b, costs, workers)
		sum := 0.0
		for _, v := range busy {
			sum += v
		}
		if sum != total {
			t.Fatalf("%s: busy sum %v != total %v", b.Name(), sum, total)
		}
	}
}
