// Package loadbalance provides the work-distribution strategies discussed
// by the paper and its related work: the DDI-style shared global counter
// (dynamic load balancing, the strategy all three of the paper's
// algorithms use), static round-robin partitioning (the classical
// alternative the paper's Section 4.2 contrasts with), and randomized
// work stealing (the technique of Liu et al. cited as future-oriented
// related work).
//
// All strategies implement Balancer over an abstract task index space so
// they can drive both the real Fock builders and standalone experiments.
package loadbalance

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Balancer hands out task indices from [0, N) to a set of workers. Next
// returns the worker's next task and ok=false when the worker should stop.
type Balancer interface {
	// Next returns the next task for the given worker.
	Next(worker int) (task int, ok bool)
	// Name identifies the strategy.
	Name() string
}

// --- Dynamic shared counter (DDI dlbnext) ---

// Counter is the DDI-style dynamic balancer: a single shared counter that
// every worker increments atomically. Chunk > 1 amortizes counter traffic
// by handing out chunks of consecutive indices.
type Counter struct {
	n     int
	chunk int
	next  atomic.Int64
	// local per-worker chunk state
	mu    sync.Mutex
	local map[int]*counterLocal
}

type counterLocal struct{ cur, end int }

// NewCounter returns a dynamic balancer over n tasks with the given chunk
// size (minimum 1).
func NewCounter(n, chunk int) *Counter {
	if chunk < 1 {
		chunk = 1
	}
	return &Counter{n: n, chunk: chunk, local: map[int]*counterLocal{}}
}

// Name implements Balancer.
func (c *Counter) Name() string { return "dynamic-counter" }

// Next implements Balancer.
func (c *Counter) Next(worker int) (int, bool) {
	c.mu.Lock()
	st, ok := c.local[worker]
	if !ok {
		st = &counterLocal{}
		c.local[worker] = st
	}
	c.mu.Unlock()
	if st.cur >= st.end {
		start := int(c.next.Add(int64(c.chunk))) - c.chunk
		if start >= c.n {
			return 0, false
		}
		st.cur = start
		st.end = start + c.chunk
		if st.end > c.n {
			st.end = c.n
		}
	}
	t := st.cur
	st.cur++
	return t, true
}

// --- Static round-robin ---

// Static partitions tasks round-robin by worker id at creation time; no
// shared state at all (the zero-communication strategy).
type Static struct {
	n       int
	workers int
	mu      sync.Mutex
	cursor  map[int]int
}

// NewStatic returns a static balancer over n tasks for the given worker
// count.
func NewStatic(n, workers int) *Static {
	return &Static{n: n, workers: workers, cursor: map[int]int{}}
}

// Name implements Balancer.
func (s *Static) Name() string { return "static-round-robin" }

// Next implements Balancer.
func (s *Static) Next(worker int) (int, bool) {
	if worker < 0 || worker >= s.workers {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.cursor[worker]
	if !ok {
		cur = worker
	}
	if cur >= s.n {
		return 0, false
	}
	s.cursor[worker] = cur + s.workers
	return cur, true
}

// --- Randomized work stealing ---

// Stealing implements per-worker deques with randomized stealing: each
// worker starts with a contiguous block; when its own block drains it
// steals half of a random victim's remaining block. This mirrors the
// inter-node work-stealing SCF algorithm of Liu, Patel & Chow (IPDPS'14).
type Stealing struct {
	workers int
	rng     *rand.Rand
	mu      sync.Mutex
	lo, hi  []int // remaining [lo, hi) block per worker
	steals  int
}

// NewStealing returns a stealing balancer over n tasks for the given
// worker count, seeded deterministically.
func NewStealing(n, workers int, seed int64) (*Stealing, error) {
	if workers <= 0 {
		return nil, errors.New("loadbalance: need at least one worker")
	}
	s := &Stealing{
		workers: workers,
		rng:     rand.New(rand.NewSource(seed)),
		lo:      make([]int, workers),
		hi:      make([]int, workers),
	}
	per := n / workers
	extra := n % workers
	start := 0
	for w := 0; w < workers; w++ {
		count := per
		if w < extra {
			count++
		}
		s.lo[w] = start
		s.hi[w] = start + count
		start += count
	}
	return s, nil
}

// Name implements Balancer.
func (s *Stealing) Name() string { return "work-stealing" }

// Steals reports how many successful steals occurred.
func (s *Stealing) Steals() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.steals
}

// Next implements Balancer.
func (s *Stealing) Next(worker int) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if worker < 0 || worker >= s.workers {
		return 0, false
	}
	if s.lo[worker] < s.hi[worker] {
		t := s.lo[worker]
		s.lo[worker]++
		return t, true
	}
	// Steal: try random victims, then a deterministic scan so termination
	// is exact rather than probabilistic.
	for attempt := 0; attempt < s.workers; attempt++ {
		v := s.rng.Intn(s.workers)
		if s.tryStealFrom(worker, v) {
			t := s.lo[worker]
			s.lo[worker]++
			return t, true
		}
	}
	for v := 0; v < s.workers; v++ {
		if s.tryStealFrom(worker, v) {
			t := s.lo[worker]
			s.lo[worker]++
			return t, true
		}
	}
	return 0, false
}

// tryStealFrom moves the upper half of v's remaining block to the thief.
// Caller holds the lock.
func (s *Stealing) tryStealFrom(thief, v int) bool {
	if v == thief || s.lo[v] >= s.hi[v] {
		return false
	}
	remaining := s.hi[v] - s.lo[v]
	take := (remaining + 1) / 2
	s.lo[thief] = s.hi[v] - take
	s.hi[thief] = s.hi[v]
	s.hi[v] -= take
	s.steals++
	return true
}

// --- Simulation harness for comparing strategies ---

// Makespan runs the balancer to completion with the given per-task costs
// and worker count, returning the simulated parallel finish time and the
// per-worker busy times. Workers draw tasks greedily (earliest-available
// first), which matches how the Fock builders consume the balancers.
func Makespan(b Balancer, costs []float64, workers int) (finish float64, busy []float64) {
	busy = make([]float64, workers)
	done := false
	for !done {
		// Advance the globally earliest worker.
		w := 0
		for i := 1; i < workers; i++ {
			if busy[i] < busy[w] {
				w = i
			}
		}
		t, ok := b.Next(w)
		if !ok {
			// This worker is out of work; give every other worker a chance
			// before declaring completion.
			done = true
			for i := 0; i < workers; i++ {
				if i == w {
					continue
				}
				if t2, ok2 := b.Next(i); ok2 {
					busy[i] += costs[t2]
					done = false
					break
				}
			}
			continue
		}
		busy[w] += costs[t]
	}
	for _, v := range busy {
		if v > finish {
			finish = v
		}
	}
	return finish, busy
}
