package loadbalance

import (
	"math"
	"testing"
)

func TestEWMAConverges(t *testing.T) {
	var e EWMA
	if e.Value() != 0 || e.Count() != 0 {
		t.Fatal("zero value not empty")
	}
	e.Observe(100)
	if e.Value() != 100 {
		t.Fatalf("first sample should initialize directly, got %v", e.Value())
	}
	for i := 0; i < 50; i++ {
		e.Observe(400)
	}
	if math.Abs(e.Value()-400) > 1 {
		t.Fatalf("EWMA did not converge to sustained level: %v", e.Value())
	}
	if e.Count() != 51 {
		t.Fatalf("count = %d, want 51", e.Count())
	}
}

func TestMedian(t *testing.T) {
	if m := Median(nil); m != 0 {
		t.Fatalf("empty median = %v", m)
	}
	if m := Median([]float64{0, -1, 5}); m != 5 {
		t.Fatalf("median should ignore non-positive entries, got %v", m)
	}
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v, want 2", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v, want 2.5", m)
	}
}

func TestFlagStragglers(t *testing.T) {
	ewma := []float64{10, 11, 45, 9}
	counts := []int64{5, 5, 5, 5}
	got := FlagStragglers(ewma, counts, 2, 3)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("flagged = %v, want [2]", got)
	}

	// Below the sample floor: no flags, even for a huge EWMA.
	counts[2] = 2
	if got := FlagStragglers(ewma, counts, 2, 3); got != nil {
		t.Fatalf("underspampled rank flagged: %v", got)
	}

	// A single qualified rank is its own median — never flagged.
	if got := FlagStragglers([]float64{50}, []int64{9}, 2, 3); got != nil {
		t.Fatalf("lone rank flagged: %v", got)
	}

	// Uniform latencies: nobody exceeds k× median.
	if got := FlagStragglers([]float64{10, 10, 10, 10}, []int64{9, 9, 9, 9}, 2, 3); got != nil {
		t.Fatalf("uniform ranks flagged: %v", got)
	}

	// The median must resist the straggler's own pull: 2 slow of 4 is
	// still flagged because the median sits on the fast side boundary.
	got = FlagStragglers([]float64{10, 10, 100, 100}, []int64{9, 9, 9, 9}, 1.5, 3)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("flagged = %v, want [2 3]", got)
	}
}
