package loadbalance

// Straggler detection: the policy half of the performance-fault story.
//
// The paper's DLB absorbs *fine-grained* imbalance by construction — a
// slow rank simply draws fewer ij tasks — but a sustained straggler
// still dominates the drain tail: whatever it holds when the cursor
// empties finishes at its (slow) pace while every fast rank idles. The
// detector below turns per-rank task-latency EWMAs (published through a
// DDI counter window, see internal/ddi) into a flag set that the hedged
// DLB uses to speculatively re-issue the straggler's outstanding leases.
//
// The mechanism is deliberately simple and robust: an exponentially
// weighted moving average per rank, flagged when it exceeds k× the
// median of all ranks with enough samples. The median (not the mean)
// keeps the straggler's own latency from dragging the baseline up, and
// the minimum-sample floor keeps one unlucky first task from flagging a
// healthy rank.

import "sort"

// DefaultEWMAAlpha is the smoothing factor used when an EWMA is created
// with Alpha 0: heavy enough smoothing to ride out single slow tasks,
// light enough to flag a sustained slowdown within a few tasks.
const DefaultEWMAAlpha = 0.3

// EWMA is an exponentially weighted moving average of task latencies.
// The zero value (Alpha 0) uses DefaultEWMAAlpha. Not concurrency-safe;
// each rank owns its own.
type EWMA struct {
	Alpha float64
	value float64
	n     int64
}

// Observe folds one sample in and returns the updated average. The
// first sample initializes the average directly (no zero-bias warmup).
func (e *EWMA) Observe(x float64) float64 {
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = DefaultEWMAAlpha
	}
	e.n++
	if e.n == 1 {
		e.value = x
	} else {
		e.value += a * (x - e.value)
	}
	return e.value
}

// Value returns the current average (0 before any sample).
func (e *EWMA) Value() float64 { return e.value }

// Count returns how many samples have been observed.
func (e *EWMA) Count() int64 { return e.n }

// Median returns the median of the positive entries of vals (0 when
// none are positive).
func Median(vals []float64) float64 {
	pos := make([]float64, 0, len(vals))
	for _, v := range vals {
		if v > 0 {
			pos = append(pos, v)
		}
	}
	if len(pos) == 0 {
		return 0
	}
	sort.Float64s(pos)
	mid := len(pos) / 2
	if len(pos)%2 == 1 {
		return pos[mid]
	}
	return (pos[mid-1] + pos[mid]) / 2
}

// FlagStragglers returns the ranks whose latency EWMA exceeds k× the
// median EWMA. ewma[r] and counts[r] are rank r's current average and
// sample count; ranks with fewer than minSamples samples neither
// contribute to the median nor get flagged (too little evidence either
// way). k <= 1 takes the conventional threshold 2. Flagging needs at
// least two qualified ranks — a median of one rank is just that rank.
func FlagStragglers(ewma []float64, counts []int64, k float64, minSamples int64) []int {
	if k <= 1 {
		k = 2
	}
	if minSamples < 1 {
		minSamples = 1
	}
	qualified := make([]float64, 0, len(ewma))
	for r, v := range ewma {
		if r < len(counts) && counts[r] >= minSamples && v > 0 {
			qualified = append(qualified, v)
		}
	}
	if len(qualified) < 2 {
		return nil
	}
	med := Median(qualified)
	if med <= 0 {
		return nil
	}
	var flagged []int
	for r, v := range ewma {
		if r < len(counts) && counts[r] >= minSamples && v > k*med {
			flagged = append(flagged, r)
		}
	}
	return flagged
}
