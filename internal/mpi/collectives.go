package mpi

// Collectives are implemented over the point-to-point layer with binomial
// trees (Bcast, Reduce, Gather) and reduce+broadcast (Allreduce), the same
// structure real MPI libraries use at these scales. Each collective call
// consumes a per-rank sequence number folded into an internal tag so that
// back-to-back collectives cannot cross-match; all ranks must call
// collectives in the same order (standard MPI semantics).

// Op is a reduction operator.
type Op int

// Supported reduction operators.
const (
	Sum Op = iota
	Max
	Min
)

func (o Op) apply(dst, src []float64) {
	switch o {
	case Sum:
		for i, v := range src {
			dst[i] += v
		}
	case Max:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	case Min:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	}
}

// nextCollTag returns the internal tag for this rank's next collective.
func (c *Comm) nextCollTag() int {
	seq := c.world.collSeq[c.rank].Add(1)
	return internalTagBase + int(seq%(1<<20))
}

// collOp opens a telemetry span for one collective call and records its
// payload size; the returned func closes the span. Point-to-point spans
// emitted by the collective's internal sends/recvs nest inside it.
func (c *Comm) collOp(name string, floats int) func() {
	tel := c.world.root.telemetry
	if tel != nil {
		tel.Histogram("mpi." + name + ".bytes").Observe(int64(8 * floats))
	}
	return tel.TimedOp("mpi.op", name, c.rank, 0)
}

// relRank maps a rank into the tree rooted at root.
func relRank(rank, root, size int) int { return (rank - root + size) % size }

func absRank(rel, root, size int) int { return (rel + root) % size }

// Bcast broadcasts buf from root to every rank (in place) via a binomial
// tree.
func (c *Comm) Bcast(root int, buf []float64) {
	c.checkPeer(root)
	defer c.collOp("bcast", len(buf))()
	tag := c.nextCollTag()
	rel := relRank(c.rank, root, c.size)
	// Receive from parent (clear lowest set bit).
	if rel != 0 {
		parent := absRank(rel&(rel-1), root, c.size)
		data, _, _ := c.Recv(parent, tag)
		copy(buf, data)
	}
	// Forward to children: set bits above the lowest set bit.
	for bit := 1; bit < c.size; bit <<= 1 {
		if rel&(bit-1) == 0 && rel&bit == 0 {
			child := rel | bit
			if child < c.size {
				c.send(absRank(child, root, c.size), tag, buf, nil)
			}
		} else {
			break
		}
	}
}

// Reduce combines buf across ranks with op into out on root; out is only
// written on root (it may be nil elsewhere). buf is not modified.
func (c *Comm) Reduce(root int, op Op, buf []float64, out []float64) {
	c.checkPeer(root)
	defer c.collOp("reduce", len(buf))()
	tag := c.nextCollTag()
	rel := relRank(c.rank, root, c.size)
	acc := append([]float64(nil), buf...)
	// Gather partial sums from children (binomial tree, deepest first).
	for bit := 1; bit < c.size; bit <<= 1 {
		if rel&bit != 0 {
			// Send accumulated value to parent and stop.
			parent := absRank(rel&^bit, root, c.size)
			c.send(parent, tag, acc, nil)
			c.world.stats.Reduces.Add(1)
			return
		}
		child := rel | bit
		if child < c.size {
			data, _, _ := c.Recv(absRank(child, root, c.size), tag)
			op.apply(acc, data)
		}
	}
	// Only the root reaches here.
	copy(out, acc)
	c.world.stats.Reduces.Add(1)
}

// Allreduce combines buf across all ranks with op; every rank receives the
// result in out (which may alias buf).
func (c *Comm) Allreduce(op Op, buf []float64, out []float64) {
	defer c.collOp("allreduce", len(buf))()
	tmp := make([]float64, len(buf))
	c.Reduce(0, op, buf, tmp)
	c.Bcast(0, tmp)
	copy(out, tmp)
}

// AllreduceSumInPlace is the gsumf shape: sums buf across ranks in place.
func (c *Comm) AllreduceSumInPlace(buf []float64) {
	c.Allreduce(Sum, buf, buf)
}

// Gather collects each rank's buf (equal lengths) on root into out, which
// must have len == size*len(buf) on root (ignored elsewhere).
func (c *Comm) Gather(root int, buf []float64, out []float64) {
	c.checkPeer(root)
	defer c.collOp("gather", len(buf))()
	tag := c.nextCollTag()
	if c.rank == root {
		copy(out[root*len(buf):(root+1)*len(buf)], buf)
		for i := 0; i < c.size-1; i++ {
			data, src, _ := c.Recv(AnySource, tag)
			copy(out[src*len(data):], data)
		}
	} else {
		c.send(root, tag, buf, nil)
	}
}

// Allgather collects each rank's buf on every rank.
func (c *Comm) Allgather(buf []float64, out []float64) {
	c.Gather(0, buf, out)
	c.Bcast(0, out)
}

// Scatter distributes equal-length chunks of in (on root) so every rank
// receives its chunk in out; len(in) == size*len(out) on root.
func (c *Comm) Scatter(root int, in []float64, out []float64) {
	c.checkPeer(root)
	defer c.collOp("scatter", len(out))()
	tag := c.nextCollTag()
	if c.rank == root {
		for r := 0; r < c.size; r++ {
			if r == root {
				copy(out, in[r*len(out):(r+1)*len(out)])
				continue
			}
			c.send(r, tag, in[r*len(out):(r+1)*len(out)], nil)
		}
	} else {
		data, _, _ := c.Recv(root, tag)
		copy(out, data)
	}
}

// BcastInts broadcasts an int payload from root.
func (c *Comm) BcastInts(root int, buf []int) {
	c.checkPeer(root)
	tag := c.nextCollTag()
	rel := relRank(c.rank, root, c.size)
	if rel != 0 {
		parent := absRank(rel&(rel-1), root, c.size)
		data, _, _ := c.RecvInts(parent, tag)
		copy(buf, data)
	}
	for bit := 1; bit < c.size; bit <<= 1 {
		if rel&(bit-1) == 0 && rel&bit == 0 {
			child := rel | bit
			if child < c.size {
				c.send(absRank(child, root, c.size), tag, nil, buf)
			}
		} else {
			break
		}
	}
}
