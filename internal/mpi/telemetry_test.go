package mpi

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestRunTelemetry checks that a telemetry-instrumented run records
// per-op spans, payload histograms, and barrier skew, and that the
// emitted trace validates.
func TestRunTelemetry(t *testing.T) {
	tel := telemetry.NewSession()
	rep, err := RunWithOptions(4, RunOptions{Telemetry: tel}, func(c *Comm) {
		buf := []float64{float64(c.Rank())}
		c.Barrier()
		c.AllreduceSumInPlace(buf)
		if buf[0] != 6 {
			t.Errorf("allreduce = %v", buf[0])
		}
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		}
		if c.Rank() == 1 {
			data, _, _ := c.Recv(0, 7)
			if len(data) != 3 {
				t.Errorf("recv len = %d", len(data))
			}
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Completed) != 4 {
		t.Fatalf("completed = %v", rep.Completed)
	}

	if got := tel.Counter("mpi.send.msgs").Value(); got == 0 {
		t.Fatal("no sends counted")
	}
	for _, h := range []string{"mpi.op.barrier_ns", "mpi.op.allreduce_ns", "mpi.barrier.skew_ns"} {
		if tel.Histogram(h).Count() == 0 {
			t.Errorf("histogram %q empty", h)
		}
	}
	// 2 explicit barriers x 4 ranks; collectives add internal sends but
	// not extra Barrier calls.
	if got := tel.Histogram("mpi.op.barrier_ns").Count(); got != 8 {
		t.Errorf("barrier spans = %d, want 8", got)
	}

	var buf bytes.Buffer
	if err := tel.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	stats, err := telemetry.ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Categories["mpi.op"] == 0 {
		t.Fatal("no mpi.op spans in trace")
	}
}

func TestRunReportRankWall(t *testing.T) {
	rep, err := RunWithOptions(3, RunOptions{}, func(c *Comm) {
		if c.Rank() == 2 {
			time.Sleep(20 * time.Millisecond)
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RankWall) != 3 {
		t.Fatalf("rank wall entries = %d", len(rep.RankWall))
	}
	for r, w := range rep.RankWall {
		if w <= 0 {
			t.Errorf("rank %d wall = %v", r, w)
		}
		// All ranks waited for the sleeper at the barrier.
		if w < 15*time.Millisecond {
			t.Errorf("rank %d wall %v below the sleeping rank's floor", r, w)
		}
	}
}

func TestRecoveryCountsAndOutcomes(t *testing.T) {
	plan := &FaultPlan{Kills: []Kill{{Rank: 1, Site: SiteBarrier, After: 1}}}
	rep, err := RunWithOptions(3, RunOptions{Deadline: 2 * time.Second, Fault: plan}, func(c *Comm) {
		c.Barrier()
	})
	if err == nil {
		t.Fatal("want run error after injected kill")
	}
	ev := rep.RecoveryCounts()
	if ev.Kills != 1 {
		t.Fatalf("kills = %d, want 1", ev.Kills)
	}
	if ev.Unwound != 2 {
		t.Fatalf("unwound = %d, want 2", ev.Unwound)
	}
	if got := rep.OutcomeOf(1); got != "killed" {
		t.Fatalf("rank 1 outcome = %q", got)
	}
	for _, r := range []int{0, 2} {
		if got := rep.OutcomeOf(r); got != "unwound" {
			t.Fatalf("rank %d outcome = %q", r, got)
		}
	}
	if rep.OutcomeOf(99) != "unknown" {
		t.Fatal("out-of-range rank should be unknown")
	}
	if len(rep.RankWall) != 3 {
		t.Fatalf("rank wall entries = %d", len(rep.RankWall))
	}
	for r, w := range rep.RankWall {
		if w <= 0 {
			t.Errorf("rank %d wall = %v", r, w)
		}
	}
}

// TestTelemetryDisabledIsInert confirms a nil session changes nothing:
// the instrumentation hooks must be invisible when telemetry is off.
func TestTelemetryDisabledIsInert(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Telemetry() != nil {
			t.Error("telemetry should be nil for plain Run")
		}
		buf := []float64{1}
		c.AllreduceSumInPlace(buf)
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
