package mpi

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestEverySingleBitFlipDetectedInCollective is the transport-level
// detection property: a single bit flipped in a Bcast payload — any
// element, any bit — is always detected by the receiver's checksum
// verification and repaired by retransmission, never silently absorbed.
// Bcast exercises the collective path (tree of point-to-point sends), so
// this transitively covers the framing every collective inherits.
func TestEverySingleBitFlipDetectedInCollective(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	payload := make([]float64, 256)
	for i := range payload {
		payload[i] = rng.NormFloat64()
	}
	// Sweep bits exhaustively and sample elements; one run per flip keeps
	// the per-rank event counters aligned with the schedule.
	for _, idx := range []int{0, 1, 127, 255} {
		for bit := 0; bit < 64; bit++ {
			tel := telemetry.NewSession()
			plan := &FaultPlan{Corrupts: []Corrupt{
				{Rank: 0, Site: SiteSend, After: 1, Kind: CorruptBitFlip, Index: idx, Bit: bit},
			}}
			_, err := RunWithOptions(4, RunOptions{Fault: plan, Telemetry: tel}, func(c *Comm) {
				buf := append([]float64(nil), payload...)
				c.Bcast(0, buf)
				for i, v := range buf {
					if v != payload[i] {
						t.Errorf("idx=%d bit=%d: corrupted value %v at %d reached a rank", idx, bit, v, i)
					}
				}
			})
			if err != nil {
				t.Fatalf("idx=%d bit=%d: run failed: %v", idx, bit, err)
			}
			snap := tel.Registry.Snapshot()
			if snap.Counters["sdc.injected"] != 1 || snap.Counters["sdc.detected"] != 1 {
				t.Fatalf("idx=%d bit=%d: injected=%d detected=%d, want 1/1",
					idx, bit, snap.Counters["sdc.injected"], snap.Counters["sdc.detected"])
			}
			if snap.Counters["sdc.recovered"] != 1 {
				t.Fatalf("idx=%d bit=%d: corruption not recovered by retransmission", idx, bit)
			}
		}
	}
}

// TestCorruptionDetectedOnReduceAndGather verifies the framing holds on
// the reduction-tree and gather paths too (receive sites deeper in the
// trees), and that NaN poison in flight is equally caught.
func TestCorruptionDetectedOnReduceAndGather(t *testing.T) {
	for _, kind := range []CorruptionKind{CorruptBitFlip, CorruptNaN} {
		tel := telemetry.NewSession()
		plan := &FaultPlan{Corrupts: []Corrupt{
			{Rank: 3, Site: SiteSend, After: 1, Kind: kind, Index: 2, Bit: 51},
		}}
		_, err := RunWithOptions(4, RunOptions{Fault: plan, Telemetry: tel}, func(c *Comm) {
			buf := []float64{1, 2, 3, 4}
			c.AllreduceSumInPlace(buf)
			for i, v := range buf {
				if v != float64(4*(i+1)) {
					t.Errorf("kind=%v: allreduce slot %d = %v, want %v", kind, i, v, 4*(i+1))
				}
			}
		})
		if err != nil {
			t.Fatalf("kind=%v: %v", kind, err)
		}
		snap := tel.Registry.Snapshot()
		if snap.Counters["sdc.detected"] != snap.Counters["sdc.injected"] || snap.Counters["sdc.injected"] == 0 {
			t.Fatalf("kind=%v: injected=%d detected=%d", kind,
				snap.Counters["sdc.injected"], snap.Counters["sdc.detected"])
		}
	}
}

// TestPersistentCorruptionEscalates drives the retry budget to
// exhaustion: a corruption that repeats on every retransmission must
// escalate to a KindCorrupted RankFailure (unwrapping to ErrRankFailed)
// so the shrink-restart recovery path takes over, and the dead receiver
// must be counted in DeadRanks.
func TestPersistentCorruptionEscalates(t *testing.T) {
	tel := telemetry.NewSession()
	plan := &FaultPlan{Corrupts: []Corrupt{
		{Rank: 0, Site: SiteSend, After: 1, Kind: CorruptBitFlip, Index: 0, Bit: 7, Repeat: 100},
	}}
	rep, err := RunWithOptions(2, RunOptions{Fault: plan, Telemetry: tel, Deadline: 2 * time.Second},
		func(c *Comm) {
			if c.Rank() == 0 {
				c.Send(1, 5, []float64{3.14})
			} else {
				c.Recv(0, 5)
			}
		})
	if err == nil {
		t.Fatal("persistent corruption did not fail the run")
	}
	if !errors.Is(err, ErrRankFailed) {
		t.Fatalf("want ErrRankFailed, got %v", err)
	}
	var rf *RankFailure
	if !errors.As(err, &rf) || rf.Kind != KindCorrupted || rf.Rank != 1 {
		t.Fatalf("want KindCorrupted on rank 1, got %+v", rf)
	}
	if ev := rep.RecoveryCounts(); ev.Corrupted != 1 {
		t.Fatalf("RecoveryCounts.Corrupted = %d, want 1", ev.Corrupted)
	}
	if dead := rep.DeadRanks(); len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("DeadRanks = %v, want [1]", dead)
	}
	snap := tel.Registry.Snapshot()
	if snap.Counters["sdc.escalated"] != 1 {
		t.Fatalf("sdc.escalated = %d, want 1", snap.Counters["sdc.escalated"])
	}
	if snap.Counters["sdc.retries"] != maxRetransmits {
		t.Fatalf("sdc.retries = %d, want %d", snap.Counters["sdc.retries"], maxRetransmits)
	}
}

// TestBoundedRepeatRecoversWithinBudget: a corruption repeating fewer
// times than the retry budget is cured by retransmission — the run
// completes and the payload arrives clean.
func TestBoundedRepeatRecoversWithinBudget(t *testing.T) {
	tel := telemetry.NewSession()
	plan := &FaultPlan{Corrupts: []Corrupt{
		{Rank: 0, Site: SiteSend, After: 1, Kind: CorruptNaN, Index: 0, Repeat: maxRetransmits - 1},
	}}
	_, err := RunWithOptions(2, RunOptions{Fault: plan, Telemetry: tel}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 9, []float64{2.5, -1.0})
		} else {
			data, _, _ := c.Recv(0, 9)
			if data[0] != 2.5 || data[1] != -1.0 {
				t.Errorf("payload arrived corrupted: %v", data)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := tel.Registry.Snapshot()
	if snap.Counters["sdc.recovered"] != 1 || snap.Counters["sdc.escalated"] != 0 {
		t.Fatalf("recovered=%d escalated=%d, want 1/0",
			snap.Counters["sdc.recovered"], snap.Counters["sdc.escalated"])
	}
	if snap.Counters["sdc.retries"] != maxRetransmits {
		t.Fatalf("sdc.retries = %d, want %d", snap.Counters["sdc.retries"], maxRetransmits)
	}
}

// TestUnverifiedTransportLetsCorruptionThrough documents the Unverified
// escape hatch: with verification off, the same injection reaches the
// receiver unchecked (this is the mode bench_test.go uses to price the
// checksums, and what a pre-integrity runtime would have done).
func TestUnverifiedTransportLetsCorruptionThrough(t *testing.T) {
	plan := &FaultPlan{Corrupts: []Corrupt{
		{Rank: 0, Site: SiteSend, After: 1, Kind: CorruptBitFlip, Index: 0, Bit: 62},
	}}
	var got float64
	_, err := RunWithOptions(2, RunOptions{Fault: plan, Unverified: true}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1.0})
		} else {
			data, _, _ := c.Recv(0, 1)
			got = data[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got == 1.0 {
		t.Fatal("corruption should have slipped through unverified transport")
	}
}

// TestIsendCorruptionVerifiedAtWait: the nonblocking path shares the
// framing — a corrupted Isend payload is repaired before Wait returns.
func TestIsendCorruptionVerifiedAtWait(t *testing.T) {
	tel := telemetry.NewSession()
	plan := &FaultPlan{Corrupts: []Corrupt{
		{Rank: 0, Site: SiteSend, After: 1, Kind: CorruptBitFlip, Index: 1, Bit: 3},
	}}
	_, err := RunWithOptions(2, RunOptions{Fault: plan, Telemetry: tel}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Isend(1, 2, []float64{7, 8, 9}).Wait()
		} else {
			data, _, _ := c.Irecv(0, 2).Wait()
			if data[1] != 8 {
				t.Errorf("Irecv returned corrupted payload: %v", data)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap := tel.Registry.Snapshot(); snap.Counters["sdc.recovered"] != 1 {
		t.Fatalf("nonblocking corruption not recovered: %+v", snap.Counters)
	}
}

// TestConfigurableGraceShortensAbandonment: with a tiny Grace a wedged
// rank is abandoned quickly; the default used to be a hard-coded 500ms.
func TestConfigurableGraceShortensAbandonment(t *testing.T) {
	plan := &FaultPlan{
		Kills:  []Kill{{Rank: 0, Site: SiteBarrier, After: 1}},
		Delays: []Delay{{Rank: 1, Site: SiteBarrier, After: 1, Sleep: 3 * time.Second}},
	}
	start := time.Now()
	rep, err := RunWithOptions(2, RunOptions{
		Fault:    plan,
		Deadline: 50 * time.Millisecond,
		Grace:    30 * time.Millisecond,
	}, func(c *Comm) {
		c.Barrier()
	})
	if err == nil {
		t.Fatal("want failure")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("abandonment took %v; grace not honored", el)
	}
	if len(rep.Abandoned) != 1 || rep.Abandoned[0] != 1 {
		t.Fatalf("Abandoned = %v, want [1]", rep.Abandoned)
	}
}
