package mpi

// Fault tolerance: the runtime-level half of the PR's resilience story.
//
// At the paper's headline scale (3,000 KNL nodes / 192,000 cores, Figure
// 7) node failures during a run are the norm, and GAMESS' only answer is
// a full restart from the PUNCH file. This file makes failure a
// first-class, *testable* runtime event:
//
//   - FaultPlan injects rank deaths and delays at well-defined runtime
//     events (barrier entry, send, recv, DLB fetch-add), modeling
//     fail-stop node loss. Real MPI failure detection also happens at
//     communication events, so this is the natural fault model for an
//     in-process runtime.
//   - Every blocking primitive (mailbox take, Barrier, and therefore all
//     collectives) observes the world's poison state and an optional
//     per-operation deadline, converting silent hangs into typed
//     RankFailure panics that unwind the surviving ranks.
//   - RunWithOptions returns a structured RunReport: which rank failed,
//     where, who unwound, who completed, and which goroutines had to be
//     abandoned (and fenced off the shared windows).
//
// Error taxonomy: a run error always unwraps to ErrRankFailed (a rank
// died: injected kill or real panic) or ErrTimeout (a blocking operation
// exceeded the deadline, i.e. a peer was stuck rather than dead).

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Sentinel errors for errors.Is dispatch on a failed run.
var (
	// ErrRankFailed reports that at least one rank died (injected kill or
	// panic); surviving ranks were unwound from their blocking operations.
	ErrRankFailed = errors.New("mpi: rank failed")
	// ErrTimeout reports that a blocking operation exceeded the configured
	// deadline — a peer was stuck (not provably dead) and the run gave up
	// waiting instead of hanging forever.
	ErrTimeout = errors.New("mpi: deadline exceeded")
)

// FailureKind classifies how a rank left the computation.
type FailureKind int

// Failure kinds.
const (
	KindPanic     FailureKind = iota // the rank's code panicked
	KindKilled                       // an injected FaultPlan kill fired
	KindTimeout                      // the rank gave up after Deadline blocked
	KindCorrupted                    // payload checksum verification failed beyond the retry budget
)

func (k FailureKind) String() string {
	switch k {
	case KindKilled:
		return "killed"
	case KindTimeout:
		return "timeout"
	case KindCorrupted:
		return "corrupted"
	default:
		return "panic"
	}
}

// RankFailure is the typed error describing one rank's failure. It
// unwraps to ErrRankFailed (killed/panic) or ErrTimeout.
type RankFailure struct {
	Rank    int
	Site    string // where the failure was observed ("barrier", "dlb #3", ...)
	Kind    FailureKind
	Cause   any           // the panic value for KindPanic
	Elapsed time.Duration // blocked time for KindTimeout
}

// Error implements error.
func (f *RankFailure) Error() string {
	switch f.Kind {
	case KindTimeout:
		return fmt.Sprintf("mpi: rank %d timed out after %v blocked at %s", f.Rank, f.Elapsed.Round(time.Millisecond), f.Site)
	case KindKilled:
		return fmt.Sprintf("mpi: rank %d killed at %s (injected fault)", f.Rank, f.Site)
	case KindCorrupted:
		return fmt.Sprintf("mpi: rank %d gave up at %s: %v", f.Rank, f.Site, f.Cause)
	default:
		return fmt.Sprintf("mpi: rank %d panicked at %s: %v", f.Rank, f.Site, f.Cause)
	}
}

// Unwrap lets errors.Is(err, ErrRankFailed) / errors.Is(err, ErrTimeout)
// dispatch on the failure class.
func (f *RankFailure) Unwrap() error {
	if f.Kind == KindTimeout {
		return ErrTimeout
	}
	return ErrRankFailed
}

// --- fault injection ---

// FaultSite names a runtime event class at which faults can be injected.
type FaultSite string

// Injectable runtime events. SiteDLB is the one-sided fetch-and-add under
// ddi.DLBNext — the paper's dynamic load balancer draw. SiteFock is one
// Fock-build task (corruption there models a bad FMA or memory error
// inside the quartet loops) and SiteCheckpoint is one checkpoint write;
// both are corruption-only sites counted by the layers that own them
// (internal/fock task loops, the SCF recovery driver). SitePurify is one
// SP2 purification sweep on an ABFT-protected distributed matrix: a kill
// there dies mid-purification (tiles in flight), and a corruption lands
// in resident tile memory — the in-memory bit-flip the checksum audit
// exists to catch.
const (
	SiteBarrier    FaultSite = "barrier"
	SiteSend       FaultSite = "send"
	SiteRecv       FaultSite = "recv"
	SiteDLB        FaultSite = "dlb"
	SiteFock       FaultSite = "fock"
	SiteCheckpoint FaultSite = "checkpoint"
	SitePurify     FaultSite = "purify"
)

func siteIndex(s FaultSite) int {
	switch s {
	case SiteBarrier:
		return 0
	case SiteSend:
		return 1
	case SiteRecv:
		return 2
	case SiteFock:
		return 4
	case SiteCheckpoint:
		return 5
	case SitePurify:
		return 6
	default:
		return 3
	}
}

// Kill schedules rank Rank to die on its After-th event (1-based) at
// Site. Death happens before the event takes effect, so a rank killed at
// a DLB draw never consumes the drawn index.
type Kill struct {
	Rank  int
	Site  FaultSite
	After int
}

// Delay stalls rank Rank for Sleep on its After-th event at Site —
// modeling a slow or wedged (but not dead) peer, the case the Deadline
// machinery exists for.
type Delay struct {
	Rank  int
	Site  FaultSite
	After int
	Sleep time.Duration
}

// CorruptionKind selects how an injected silent-data-corruption event
// mutates its target.
type CorruptionKind int

// Corruption kinds.
const (
	// CorruptBitFlip flips a single bit of one float64 (or one byte of a
	// serialized checkpoint) — the canonical single-event-upset model.
	CorruptBitFlip CorruptionKind = iota
	// CorruptNaN overwrites one float64 with a quiet NaN — the shape a
	// faulty functional unit produces inside a Fock task.
	CorruptNaN
)

func (k CorruptionKind) String() string {
	if k == CorruptNaN {
		return "nan-poison"
	}
	return "bit-flip"
}

// Corrupt schedules a silent-data-corruption event: on rank Rank's
// After-th event (1-based) at Site, the payload in flight is mutated per
// Kind. Unlike Kill, nothing crashes — the corruption must be *detected*
// by the integrity layer (checksum verification at receives, matrix
// validators in the SCF, the checkpoint CRC) or it silently poisons the
// run. Index/Bit select the flipped element and bit (clamped to range).
// Repeat > 0 corrupts that many retransmissions too, driving the bounded
// retry to exhaustion so escalation to the RankFailure path is testable.
type Corrupt struct {
	Rank   int
	Site   FaultSite
	After  int
	Kind   CorruptionKind
	Index  int // element (float64/byte) to corrupt within the payload
	Bit    int // bit to flip for CorruptBitFlip
	Repeat int // additional retransmissions to re-corrupt (escalation testing)
}

// --- performance-fault (chaos) schedules ---
//
// Kill/Delay/Corrupt model crash and data faults; the types below model
// PERFORMANCE faults: the run still produces a result, but the network
// or a core misbehaves in ways that inflate wall time (stragglers) or
// stress delivery ordering (duplication, reordering, partitions). They
// are deterministic schedules like the rest of the plan, so chaos runs
// are reproducible.

// Slowdown models a sustained straggler: rank Rank runs slow for the
// whole run instead of dying or stalling once (contrast Delay).
type Slowdown struct {
	Rank int
	// Factor stretches task-site work: a unit of work that took t is
	// stalled a further (Factor-1)·t by Comm.TaskStall, so the rank's
	// observed task latency is Factor× its true latency. Values <= 1
	// apply no task stall.
	Factor float64
	// OpDelay adds a fixed latency to every matching communication event
	// — a degraded NIC rather than a slow core.
	OpDelay time.Duration
	// Sites restricts where the slowdown applies; empty means all sites.
	Sites []FaultSite
}

func (s *Slowdown) appliesTo(site FaultSite) bool {
	if len(s.Sites) == 0 {
		return true
	}
	for _, x := range s.Sites {
		if x == site {
			return true
		}
	}
	return false
}

// Duplicate schedules rank Rank's After-th send (1-based) to be
// delivered Copies extra times (0 means 1 extra). The duplicates carry
// the same transport sequence number as the original, so the receiver's
// dedup must drop all but one.
type Duplicate struct {
	Rank   int
	After  int
	Copies int
}

// Reorder holds rank Rank's After-th send (1-based) back until Behind
// later sends (0 means 1) from the same rank have been delivered, making
// the held message arrive out of order. A safety timer flushes the held
// message even when no later send comes, so a quiescing sender cannot
// stall the run.
type Reorder struct {
	Rank   int
	After  int
	Behind int
}

// Partition opens a transient network partition: any message crossing
// the cut between Ranks and the remaining ranks, sent inside the window
// [Start, Start+Duration) measured from run start, is held and delivered
// when the partition heals. The partition must heal before the run
// deadline or blocked receivers time out — which is exactly the
// distinction the deadline machinery exists to make.
type Partition struct {
	Ranks    []int // one side of the cut (world ranks)
	Start    time.Duration
	Duration time.Duration
}

// crosses reports whether a src→dst message crosses the cut.
func (p *Partition) crosses(src, dst int) bool {
	in := func(r int) bool {
		for _, x := range p.Ranks {
			if x == r {
				return true
			}
		}
		return false
	}
	return in(src) != in(dst)
}

// FaultPlan is an injection schedule for one run. The zero value injects
// nothing.
type FaultPlan struct {
	Kills    []Kill
	Delays   []Delay
	Corrupts []Corrupt

	// Performance faults (see the chaos section above).
	Slowdowns  []Slowdown
	Duplicates []Duplicate
	Reorders   []Reorder
	Partitions []Partition
}

// messageChaos reports whether the plan reshapes message delivery
// (duplication, reordering, partitions) and therefore requires the
// sequence-numbered transport that restores per-channel FIFO order.
func (p *FaultPlan) messageChaos() bool {
	return len(p.Duplicates)+len(p.Reorders)+len(p.Partitions) > 0
}

type siteCounters [7]atomic.Int64

// faultState tracks per-rank, per-site event counts against the plan.
type faultState struct {
	plan   FaultPlan
	counts []siteCounters
	tel    *telemetry.Session // run telemetry for chaos counters (may be nil)
}

// hit records one event, fires any matching delay/kill/slowdown, and
// returns the matching corruption (nil for none) for the caller to apply
// to the payload in flight.
func (fs *faultState) hit(rank int, site FaultSite) *Corrupt {
	_, cr := fs.hitN(rank, site)
	return cr
}

// hitN is hit exposing the event ordinal, which the send path needs to
// match Duplicate/Reorder schedules and release held reorders.
func (fs *faultState) hitN(rank int, site FaultSite) (int64, *Corrupt) {
	n := fs.counts[rank][siteIndex(site)].Add(1)
	for _, d := range fs.plan.Delays {
		if d.Rank == rank && d.Site == site && int64(d.After) == n {
			time.Sleep(d.Sleep)
		}
	}
	for i := range fs.plan.Slowdowns {
		s := &fs.plan.Slowdowns[i]
		if s.Rank == rank && s.OpDelay > 0 && s.appliesTo(site) {
			if fs.tel != nil {
				fs.tel.Counter("chaos.slowdown.events").Add(1)
			}
			time.Sleep(s.OpDelay)
		}
	}
	for _, k := range fs.plan.Kills {
		if k.Rank == rank && k.Site == site && int64(k.After) == n {
			panic(injectedKill{rank: rank, site: site, n: int(n)})
		}
	}
	for i := range fs.plan.Corrupts {
		c := &fs.plan.Corrupts[i]
		if c.Rank == rank && c.Site == site && int64(c.After) == n {
			return n, c
		}
	}
	return n, nil
}

// sendChaos returns the duplicate/reorder entries scheduled for rank's
// n-th send event (already counted by hitN).
func (fs *faultState) sendChaos(rank int, n int64) (dup *Duplicate, ro *Reorder) {
	for i := range fs.plan.Duplicates {
		d := &fs.plan.Duplicates[i]
		if d.Rank == rank && int64(d.After) == n {
			dup = d
		}
	}
	for i := range fs.plan.Reorders {
		r := &fs.plan.Reorders[i]
		if r.Rank == rank && int64(r.After) == n {
			ro = r
		}
	}
	return dup, ro
}

// slowdownFor returns the sustained task-stall factor for rank at site
// (0 when none is scheduled).
func (fs *faultState) slowdownFor(rank int, site FaultSite) float64 {
	for i := range fs.plan.Slowdowns {
		s := &fs.plan.Slowdowns[i]
		if s.Rank == rank && s.Factor > 1 && s.appliesTo(site) {
			return s.Factor
		}
	}
	return 0
}

// partitionDelay returns how long a src→dst message sent now must be
// held for every partition window it falls into (0 = deliver now).
func (fs *faultState) partitionDelay(src, dst int, elapsed time.Duration) time.Duration {
	var hold time.Duration
	for i := range fs.plan.Partitions {
		p := &fs.plan.Partitions[i]
		if elapsed >= p.Start && elapsed < p.Start+p.Duration && p.crosses(src, dst) {
			if d := p.Start + p.Duration - elapsed; d > hold {
				hold = d
			}
		}
	}
	return hold
}

// Panic payload types used to classify unwinding in the rank runner.
type injectedKill struct {
	rank int
	site FaultSite
	n    int
}

type failurePanic struct{ f *RankFailure }

type timeoutPanic struct {
	rank    int
	site    string
	elapsed time.Duration
}

// corruptionPanic unwinds a receiver whose payload failed checksum
// verification beyond the retry budget — persistent corruption that
// retransmission cannot cure, escalated to the RankFailure path so the
// shrink-restart recovery above takes over.
type corruptionPanic struct {
	rank int
	site string
	err  error
}

// --- run options and report ---

// RunOptions configures a fault-aware run.
type RunOptions struct {
	// Deadline bounds the time any single blocking operation (Recv,
	// Barrier, collectives, resilient-build waits) may stay blocked; 0
	// waits forever (classic MPI semantics). When a wait exceeds the
	// deadline the waiting rank unwinds with a KindTimeout RankFailure.
	Deadline time.Duration
	// Fault optionally injects rank deaths, delays, and silent data
	// corruption.
	Fault *FaultPlan
	// Grace is how long, past the deadline, poisoned survivors get to
	// unwind before the run abandons (and fences) whatever is left.
	// 0 means the default 500ms; it only matters when Deadline > 0.
	Grace time.Duration
	// WatchTick overrides the watchdog wakeup period that lets blocked
	// waiters re-check poison and deadline state. 0 derives it from the
	// deadline (deadline/8, clamped to [1ms, 20ms]).
	WatchTick time.Duration
	// Unverified disables checksum verification of message payloads —
	// the pre-integrity transport, kept for measuring checksum overhead
	// (bench_test.go) and for experiments that want corruption to land.
	Unverified bool
	// Telemetry, when set, receives per-op spans, wait-time histograms,
	// and barrier-arrival skew from every communicator of the run.
	Telemetry *telemetry.Session
}

// rank outcome states recorded on the top-level world.
const (
	outcomeRunning int8 = iota
	outcomeCompleted
	outcomeUnwound
	outcomeFailed
	outcomeAbandoned
)

// RunReport describes how a run ended, rank by rank.
type RunReport struct {
	Size      int
	Failures  []RankFailure   // primary failures (killed / panicked / timed out), in detection order
	Unwound   []int           // survivors that observed the poison and unwound cleanly
	Completed []int           // ranks that returned normally
	Abandoned []int           // goroutines still blocked/stuck at grace expiry; leaked but fenced from windows
	RankWall  []time.Duration // per-rank goroutine wall time (run duration for abandoned ranks)
	Err       error           // nil on a clean run
}

// RecoveryEvents tallies a run's failure and recovery events, the counts
// the resilience experiment reports next to per-rank wall times.
type RecoveryEvents struct {
	Kills     int // injected fail-stop deaths
	Panics    int // ranks lost to panics in user code
	Timeouts  int // ranks that gave up after Deadline blocked
	Corrupted int // ranks that gave up on persistently corrupt payloads
	Unwound   int // survivors unwound cleanly by the poison
	Abandoned int // goroutines fenced off after the grace period
}

// RecoveryCounts reduces the report to event tallies.
func (r *RunReport) RecoveryCounts() RecoveryEvents {
	ev := RecoveryEvents{Unwound: len(r.Unwound), Abandoned: len(r.Abandoned)}
	for _, f := range r.Failures {
		switch f.Kind {
		case KindKilled:
			ev.Kills++
		case KindTimeout:
			ev.Timeouts++
		case KindCorrupted:
			ev.Corrupted++
		default:
			ev.Panics++
		}
	}
	return ev
}

// OutcomeOf names how the given rank ended: "completed", "unwound",
// "abandoned", or the failure kind ("killed", "panic", "timeout").
func (r *RunReport) OutcomeOf(rank int) string {
	for _, f := range r.Failures {
		if f.Rank == rank {
			return f.Kind.String()
		}
	}
	for _, x := range r.Completed {
		if x == rank {
			return "completed"
		}
	}
	for _, x := range r.Unwound {
		if x == rank {
			return "unwound"
		}
	}
	for _, x := range r.Abandoned {
		if x == rank {
			return "abandoned"
		}
	}
	return "unknown"
}

// DeadRanks returns the ranks that are genuinely gone — killed, panicked,
// or abandoned (fenced). Timed-out waiters are NOT dead: they unwound
// healthy after giving up on a stuck peer.
func (r *RunReport) DeadRanks() []int {
	set := map[int]bool{}
	for _, f := range r.Failures {
		if f.Kind != KindTimeout {
			set[f.Rank] = true
		}
	}
	for _, a := range r.Abandoned {
		set[a] = true
	}
	out := make([]int, 0, len(set))
	for rk := range set {
		out = append(out, rk)
	}
	sort.Ints(out)
	return out
}

// Run executes f on size ranks concurrently and returns when all ranks
// finish. A panic on any rank is recovered, propagated as a typed
// RankFailure error, and poisons the world so blocked peers unwind
// instead of deadlocking.
func Run(size int, f func(c *Comm)) error {
	_, err := RunWithOptions(size, RunOptions{}, f)
	return err
}

// RunWithOptions executes f on size ranks with fault injection and
// deadline-bounded blocking, returning a structured report alongside the
// error (report.Err == err).
func RunWithOptions(size int, opt RunOptions, f func(c *Comm)) (*RunReport, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: size must be positive, got %d", size)
	}
	w := newWorld(size, nil)
	w.deadline = opt.Deadline
	w.grace = opt.Grace
	if w.grace <= 0 {
		w.grace = 500 * time.Millisecond
	}
	w.watchTick = opt.WatchTick
	w.noVerify = opt.Unverified
	w.telemetry = opt.Telemetry
	if opt.Fault != nil {
		w.fault = &faultState{plan: *opt.Fault, counts: make([]siteCounters, size), tel: opt.Telemetry}
		if opt.Fault.messageChaos() {
			w.chaosOn = true
			w.sendSeqs = make(map[chanKey]int64)
		}
	}
	w.outcomes = make([]int8, size)
	w.rankWall = make([]time.Duration, size)
	w.runStart = time.Now()
	if w.deadline > 0 {
		w.startWatchdog()
	}

	var wg sync.WaitGroup
	wg.Add(size)
	for r := 0; r < size; r++ {
		go func(rank int) {
			t0 := time.Now()
			defer wg.Done()
			defer func() { w.finishRank(rank, time.Since(t0), recover()) }()
			f(&Comm{rank: rank, size: size, world: w})
		}(r)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	if w.deadline <= 0 {
		<-done
	} else {
		w.waitWithGrace(done)
	}
	if w.watchStop != nil {
		close(w.watchStop)
	}
	report := w.buildReport()
	return report, report.Err
}

// waitWithGrace waits for all ranks; once the world is poisoned it gives
// survivors one deadline (plus slack) to unwind, then abandons and fences
// whatever is left so the caller regains control.
func (w *World) waitWithGrace(done chan struct{}) {
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	var graceTimer <-chan time.Time
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
			if graceTimer == nil && w.poisonF.Load() != nil {
				graceTimer = time.After(w.deadline + w.grace)
			}
		case <-graceTimer:
			w.abandonStragglers()
			return
		}
	}
}

// abandonStragglers marks still-running ranks abandoned and fences them
// from the shared windows, so a wedged goroutine that later wakes cannot
// corrupt state the survivors (or a restarted attempt) rely on.
func (w *World) abandonStragglers() {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	for r := range w.outcomes {
		if w.outcomes[r] == outcomeRunning {
			w.outcomes[r] = outcomeAbandoned
			w.fenced[r].Store(true)
		}
	}
}

// finishRank classifies how a rank's goroutine ended and records it,
// along with the goroutine's wall time.
func (w *World) finishRank(rank int, wall time.Duration, p any) {
	w.failMu.Lock()
	w.rankWall[rank] = wall
	w.failMu.Unlock()
	switch v := p.(type) {
	case nil:
		w.setOutcome(rank, outcomeCompleted)
	case failurePanic:
		w.setOutcome(rank, outcomeUnwound)
	case timeoutPanic:
		w.recordFailure(RankFailure{Rank: v.rank, Site: v.site, Kind: KindTimeout, Elapsed: v.elapsed})
	case corruptionPanic:
		w.recordFailure(RankFailure{Rank: v.rank, Site: v.site, Kind: KindCorrupted, Cause: v.err})
	case injectedKill:
		w.recordFailure(RankFailure{Rank: v.rank, Site: fmt.Sprintf("%s #%d", v.site, v.n), Kind: KindKilled})
	default:
		w.recordFailure(RankFailure{Rank: rank, Site: "user code", Kind: KindPanic, Cause: v})
	}
}

func (w *World) setOutcome(rank int, o int8) {
	w.failMu.Lock()
	if w.outcomes[rank] == outcomeRunning {
		w.outcomes[rank] = o
	}
	w.failMu.Unlock()
}

// recordFailure registers a primary failure and poisons the world so
// every blocked peer unwinds.
func (w *World) recordFailure(f RankFailure) {
	w.failMu.Lock()
	w.failures = append(w.failures, f)
	if w.outcomes[f.Rank] == outcomeRunning {
		w.outcomes[f.Rank] = outcomeFailed
	}
	w.failMu.Unlock()
	fc := f
	w.poisonWorld(&fc)
}

// poisonWorld marks this world and every sub-world failed and wakes all
// blocked waiters: barrier waiters AND mailbox receivers (the seed's
// poison only woke the barrier — a receiver blocked on a dead peer hung
// forever).
func (w *World) poisonWorld(f *RankFailure) {
	w.poisonF.CompareAndSwap(nil, f)
	w.barrier.poison()
	for _, b := range w.boxes {
		b.cond.Broadcast()
	}
	w.subWorlds.Range(func(_, v any) bool {
		v.(*World).poisonWorld(f)
		return true
	})
}

// buildReport snapshots per-rank outcomes into a RunReport.
func (w *World) buildReport() *RunReport {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	rep := &RunReport{Size: w.size}
	rep.Failures = append(rep.Failures, w.failures...)
	rep.RankWall = append(rep.RankWall, w.rankWall...)
	for r, o := range w.outcomes {
		// Abandoned (or still-running) goroutines never reported a wall
		// time; charge them the full run duration.
		if rep.RankWall[r] == 0 && o != outcomeCompleted {
			rep.RankWall[r] = time.Since(w.runStart)
		}
	}
	for r, o := range w.outcomes {
		switch o {
		case outcomeCompleted:
			rep.Completed = append(rep.Completed, r)
		case outcomeUnwound:
			rep.Unwound = append(rep.Unwound, r)
		case outcomeAbandoned:
			rep.Abandoned = append(rep.Abandoned, r)
		}
	}
	if len(rep.Failures) > 0 {
		f := rep.Failures[0]
		rep.Err = &f
	}
	return rep
}

// --- watchdog: periodic wakeups so deadline checks can run ---

func (w *World) startWatchdog() {
	w.watchStop = make(chan struct{})
	tick := w.watchTick
	if tick <= 0 {
		tick = w.deadline / 8
		if tick < time.Millisecond {
			tick = time.Millisecond
		}
		if tick > 20*time.Millisecond {
			tick = 20 * time.Millisecond
		}
	}
	go func() {
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-w.watchStop:
				return
			case <-t.C:
				w.broadcastAll()
			}
		}
	}()
}

// broadcastAll wakes every blocked waiter (recursively through split
// communicators) so it can re-check poison and deadline state.
func (w *World) broadcastAll() {
	for _, b := range w.boxes {
		b.cond.Broadcast()
	}
	w.barrier.cond.Broadcast()
	w.subWorlds.Range(func(_, v any) bool {
		v.(*World).broadcastAll()
		return true
	})
}

// --- per-comm fault hooks and queries ---

// faultHook records one runtime event for fault injection and returns
// the corruption scheduled for it, if any, so the caller can apply it to
// the payload in flight. Injection targets world ranks, so events on
// split communicators are not counted.
func (c *Comm) faultHook(site FaultSite) *Corrupt {
	w := c.world
	if w != w.root || w.root.fault == nil {
		return nil
	}
	return w.root.fault.hit(c.rank, site)
}

// TaskStall applies any sustained chaos Slowdown scheduled for this rank
// at the given site to one unit of work that took elapsed: the caller is
// stalled a further (Factor-1)·elapsed, so its observed task latency
// becomes Factor× the true latency — a genuine straggler rather than a
// one-shot hiccup. Task loops (Fock builders, DLB workloads) call it
// after each task. Returns the stall applied (0 when no slowdown is
// scheduled, which is the fast path for clean runs). Like fault
// injection, slowdowns target world ranks only.
func (c *Comm) TaskStall(site FaultSite, elapsed time.Duration) time.Duration {
	w := c.world
	if w != w.root || w.root.fault == nil || elapsed <= 0 {
		return 0
	}
	f := w.root.fault.slowdownFor(c.rank, site)
	if f <= 1 {
		return 0
	}
	stall := time.Duration(float64(elapsed) * (f - 1))
	if tel := w.root.telemetry; tel != nil {
		tel.Counter("chaos.slowdown.events").Add(1)
		tel.Counter("chaos.slowdown_ns").Add(stall.Nanoseconds())
	}
	time.Sleep(stall)
	return stall
}

// checkFenced bars an abandoned rank from mutating shared windows. The
// panic unwinds it like any other failure observation.
func (c *Comm) checkFenced() {
	w := c.world
	if w != w.root {
		return
	}
	if w.fenced[c.rank].Load() {
		f := w.poisonF.Load()
		if f == nil {
			f = &RankFailure{Rank: c.rank, Site: "fenced", Kind: KindTimeout}
		}
		panic(failurePanic{f: f})
	}
}

// checkPoison unwinds the caller if the world has been poisoned by a
// peer's failure. Blocking primitives call it whenever they would wait.
func (c *Comm) checkPoison() {
	if f := c.world.poisonF.Load(); f != nil {
		panic(failurePanic{f: f})
	}
}

// Deadline returns the per-blocking-operation deadline of this run (0 =
// none).
func (c *Comm) Deadline() time.Duration { return c.world.root.deadline }

// CheckDeadline panics with a timeout failure when the elapsed time since
// start exceeds the run's deadline. Resilient algorithms call it in their
// polling loops so a wedged lease-holder cannot stall the build forever.
func (c *Comm) CheckDeadline(site string, start time.Time) {
	d := c.world.root.deadline
	if d <= 0 {
		return
	}
	if el := time.Since(start); el > d {
		panic(timeoutPanic{rank: c.rank, site: site, elapsed: el})
	}
}

// FailedRanks returns the world ranks currently known dead (killed,
// panicked) or fenced after abandonment, ascending. Timed-out waiters are
// not included — they are healthy ranks that gave up on a stuck peer. On
// a split communicator the returned ids are still WORLD ranks.
func (c *Comm) FailedRanks() []int {
	w := c.world.root
	set := map[int]bool{}
	w.failMu.Lock()
	for _, f := range w.failures {
		if f.Kind != KindTimeout {
			set[f.Rank] = true
		}
	}
	w.failMu.Unlock()
	for r := range w.fenced {
		if w.fenced[r].Load() {
			set[r] = true
		}
	}
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// Healthy reports whether no failure has been observed in this run.
func (c *Comm) Healthy() bool { return c.world.root.poisonF.Load() == nil }
