package mpi

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunSizeValidation(t *testing.T) {
	if err := Run(0, func(c *Comm) {}); err == nil {
		t.Fatal("expected error for size 0")
	}
	if err := Run(-3, func(c *Comm) {}); err == nil {
		t.Fatal("expected error for negative size")
	}
}

func TestRankAndSize(t *testing.T) {
	var seen [5]atomic.Bool
	err := Run(5, func(c *Comm) {
		if c.Size() != 5 {
			t.Errorf("size = %d", c.Size())
		}
		seen[c.Rank()].Store(true)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := range seen {
		if !seen[r].Load() {
			t.Fatalf("rank %d never ran", r)
		}
	}
}

func TestSendRecvBasic(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			data, src, tag := c.Recv(0, 7)
			if src != 0 || tag != 7 || len(data) != 3 || data[2] != 3 {
				t.Errorf("got %v src=%d tag=%d", data, src, tag)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{1}
			c.Send(1, 0, buf)
			buf[0] = 99 // must not affect the receiver
			c.Barrier()
		} else {
			c.Barrier()
			data, _, _ := c.Recv(0, 0)
			if data[0] != 1 {
				t.Errorf("send did not copy: %v", data)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvWildcards(t *testing.T) {
	err := Run(3, func(c *Comm) {
		switch c.Rank() {
		case 0:
			got := map[int]bool{}
			for i := 0; i < 2; i++ {
				data, src, _ := c.Recv(AnySource, AnyTag)
				got[src] = true
				if data[0] != float64(src) {
					t.Errorf("payload mismatch from %d: %v", src, data)
				}
			}
			if !got[1] || !got[2] {
				t.Errorf("missing sources: %v", got)
			}
		default:
			c.Send(0, c.Rank()+10, []float64{float64(c.Rank())})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagSelectivity(t *testing.T) {
	// Messages with different tags must be matched by tag even when they
	// arrive out of request order.
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 5, []float64{5})
			c.Send(1, 6, []float64{6})
		} else {
			// Ask for tag 6 first.
			d6, _, _ := c.Recv(0, 6)
			d5, _, _ := c.Recv(0, 5)
			if d6[0] != 6 || d5[0] != 5 {
				t.Errorf("tag matching broken: %v %v", d5, d6)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendInts(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.SendInts(1, 3, []int{42, -7})
		} else {
			d, src, tag := c.RecvInts(0, 3)
			if src != 0 || tag != 3 || d[0] != 42 || d[1] != -7 {
				t.Errorf("ints: %v", d)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	var phase atomic.Int64
	err := Run(8, func(c *Comm) {
		phase.Add(1)
		c.Barrier()
		if phase.Load() != 8 {
			t.Errorf("barrier released before all ranks arrived: %d", phase.Load())
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastVariousRootsAndSizes(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 7, 8, 13} {
		for root := 0; root < size; root += 2 {
			err := Run(size, func(c *Comm) {
				buf := make([]float64, 4)
				if c.Rank() == root {
					for i := range buf {
						buf[i] = float64(10*root + i)
					}
				}
				c.Bcast(root, buf)
				for i := range buf {
					if buf[i] != float64(10*root+i) {
						t.Errorf("size=%d root=%d rank=%d: buf=%v", size, root, c.Rank(), buf)
						return
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, size := range []int{1, 2, 5, 8, 9} {
		err := Run(size, func(c *Comm) {
			in := []float64{float64(c.Rank()), 1}
			out := make([]float64, 2)
			c.Reduce(0, Sum, in, out)
			if c.Rank() == 0 {
				wantSum := float64(size*(size-1)) / 2
				if out[0] != wantSum || out[1] != float64(size) {
					t.Errorf("size=%d: reduce = %v", size, out)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestReduceMaxMin(t *testing.T) {
	err := Run(6, func(c *Comm) {
		in := []float64{float64(c.Rank())}
		outMax := make([]float64, 1)
		outMin := make([]float64, 1)
		c.Reduce(2, Max, in, outMax)
		c.Reduce(2, Min, in, outMin)
		if c.Rank() == 2 {
			if outMax[0] != 5 || outMin[0] != 0 {
				t.Errorf("max=%v min=%v", outMax, outMin)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduce(t *testing.T) {
	for _, size := range []int{1, 3, 4, 10} {
		err := Run(size, func(c *Comm) {
			buf := []float64{1, float64(c.Rank())}
			c.AllreduceSumInPlace(buf)
			wantSum := float64(size*(size-1)) / 2
			if buf[0] != float64(size) || buf[1] != wantSum {
				t.Errorf("size=%d rank=%d: %v", size, c.Rank(), buf)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllreduceRepeatedNoCrossTalk(t *testing.T) {
	// Successive collectives must not cross-match messages.
	err := Run(4, func(c *Comm) {
		for iter := 0; iter < 20; iter++ {
			buf := []float64{float64(iter)}
			c.AllreduceSumInPlace(buf)
			if buf[0] != float64(4*iter) {
				t.Errorf("iter %d: got %v", iter, buf[0])
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatter(t *testing.T) {
	err := Run(4, func(c *Comm) {
		// Gather
		out := make([]float64, 4)
		c.Gather(1, []float64{float64(c.Rank() * c.Rank())}, out)
		if c.Rank() == 1 {
			for r := 0; r < 4; r++ {
				if out[r] != float64(r*r) {
					t.Errorf("gather: %v", out)
				}
			}
		}
		c.Barrier()
		// Scatter
		var in []float64
		if c.Rank() == 1 {
			in = []float64{10, 11, 12, 13}
		}
		chunk := make([]float64, 1)
		c.Scatter(1, in, chunk)
		if chunk[0] != float64(10+c.Rank()) {
			t.Errorf("scatter rank %d: %v", c.Rank(), chunk)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	err := Run(5, func(c *Comm) {
		out := make([]float64, 5)
		c.Allgather([]float64{float64(c.Rank() + 1)}, out)
		for r := 0; r < 5; r++ {
			if out[r] != float64(r+1) {
				t.Errorf("allgather rank %d: %v", c.Rank(), out)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastInts(t *testing.T) {
	err := Run(6, func(c *Comm) {
		buf := make([]int, 2)
		if c.Rank() == 3 {
			buf[0], buf[1] = 17, -4
		}
		c.BcastInts(3, buf)
		if buf[0] != 17 || buf[1] != -4 {
			t.Errorf("rank %d: %v", c.Rank(), buf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFetchAddSharedCounter(t *testing.T) {
	const size, grabs = 8, 100
	counts := make([]atomic.Int64, size*grabs)
	err := Run(size, func(c *Comm) {
		for i := 0; i < grabs; i++ {
			v := c.FetchAdd("dlb", 0, 1)
			counts[v].Add(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Fatalf("counter value %d claimed %d times", i, counts[i].Load())
		}
	}
}

func TestCounterStoreLoad(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.CounterStore("w", 3, 123)
		}
		c.Barrier()
		if got := c.CounterLoad("w", 3); got != 123 {
			t.Errorf("CounterLoad = %d", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicPropagation(t *testing.T) {
	err := Run(4, func(c *Comm) {
		if c.Rank() == 2 {
			panic("deliberate failure")
		}
		// Other ranks block in a barrier; the poison must release them.
		defer func() { recover() }()
		c.Barrier()
	})
	if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("expected propagated panic, got %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1, 2, 3, 4})
		} else {
			c.Recv(0, 0)
		}
		c.Barrier()
		msgs, floats, barriers, _ := c.WorldStats()
		if msgs < 1 || floats < 4 || barriers < 1 {
			t.Errorf("stats: msgs=%d floats=%d barriers=%d", msgs, floats, barriers)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceLargeBuffer(t *testing.T) {
	// Fock-matrix sized reduction (packed triangular of N=60 -> 1830).
	n := 1830
	err := Run(4, func(c *Comm) {
		buf := make([]float64, n)
		for i := range buf {
			buf[i] = float64(c.Rank()+1) * float64(i)
		}
		c.AllreduceSumInPlace(buf)
		for i := range buf {
			want := 10.0 * float64(i) // (1+2+3+4) * i
			if math.Abs(buf[i]-want) > 1e-12 {
				t.Errorf("buf[%d] = %v want %v", i, buf[i], want)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecv(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			req := c.Isend(1, 9, []float64{1, 2})
			req.Wait()
		} else {
			req := c.Irecv(0, 9)
			data, src, tag := req.Wait()
			if src != 0 || tag != 9 || len(data) != 2 || data[1] != 2 {
				t.Errorf("irecv got %v src=%d tag=%d", data, src, tag)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendBufferReuse(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{42}
			req := c.Isend(1, 0, buf)
			buf[0] = -1 // must not affect the in-flight copy
			req.Wait()
		} else {
			data, _, _ := c.Recv(0, 0)
			if data[0] != 42 {
				t.Errorf("buffer reuse corrupted payload: %v", data)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvTestPolling(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 1 {
			req := c.Irecv(0, 5)
			if req.Test() {
				// May legitimately be true if the send won the race, but
				// before the barrier the send hasn't been posted yet.
				t.Error("Test true before send was posted")
			}
			c.Barrier()
			data, _, _ := req.Wait()
			if data[0] != 7 {
				t.Errorf("polled recv got %v", data)
			}
			if !req.Test() {
				t.Error("Test false after Wait")
			}
		} else {
			c.Barrier()
			c.Send(1, 5, []float64{7})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitAllOverlap(t *testing.T) {
	// Post several receives, then sends arrive out of order; WaitAll must
	// complete them all with correct tag matching.
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			r1 := c.Irecv(1, 1)
			r2 := c.Irecv(1, 2)
			r3 := c.Irecv(1, 3)
			WaitAll(r1, r2, r3, nil)
			for i, r := range []*Request{r1, r2, r3} {
				data, _, tag := r.Wait()
				if tag != i+1 || data[0] != float64(10*(i+1)) {
					t.Errorf("req %d: data=%v tag=%d", i, data, tag)
				}
			}
		} else {
			// Reverse order sends.
			c.Send(0, 3, []float64{30})
			c.Send(0, 2, []float64{20})
			c.Send(0, 1, []float64{10})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitByColor(t *testing.T) {
	// 8 ranks on 2 "nodes" of 4 (the paper's layout): split by node id.
	err := Run(8, func(c *Comm) {
		node := c.Rank() / 4
		sub := c.Split(node, c.Rank())
		if sub == nil {
			t.Errorf("rank %d got nil subcomm", c.Rank())
			return
		}
		if sub.Size() != 4 {
			t.Errorf("rank %d: sub size %d", c.Rank(), sub.Size())
		}
		if sub.Rank() != c.Rank()%4 {
			t.Errorf("rank %d: sub rank %d", c.Rank(), sub.Rank())
		}
		// Node-local allreduce: sums within each node only.
		buf := []float64{float64(c.Rank())}
		sub.AllreduceSumInPlace(buf)
		want := float64(0 + 1 + 2 + 3)
		if node == 1 {
			want = 4 + 5 + 6 + 7
		}
		if buf[0] != want {
			t.Errorf("rank %d: node sum %v want %v", c.Rank(), buf[0], want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitKeyOrdering(t *testing.T) {
	// Reversed keys must reverse the sub-ranks.
	err := Run(4, func(c *Comm) {
		sub := c.Split(0, -c.Rank())
		if sub.Rank() != 3-c.Rank() {
			t.Errorf("rank %d: sub rank %d want %d", c.Rank(), sub.Rank(), 3-c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitOptOut(t *testing.T) {
	err := Run(4, func(c *Comm) {
		color := 0
		if c.Rank() == 3 {
			color = -1
		}
		sub := c.Split(color, 0)
		if c.Rank() == 3 {
			if sub != nil {
				t.Error("opted-out rank got a communicator")
			}
			return
		}
		if sub == nil || sub.Size() != 3 {
			t.Errorf("rank %d: bad subcomm", c.Rank())
		}
		// The sub-communicator must be fully functional.
		sub.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitRepeated(t *testing.T) {
	// Successive splits must not interfere.
	err := Run(6, func(c *Comm) {
		for iter := 0; iter < 5; iter++ {
			sub := c.Split(c.Rank()%2, c.Rank())
			buf := []float64{1}
			sub.AllreduceSumInPlace(buf)
			if buf[0] != 3 {
				t.Errorf("iter %d rank %d: %v", iter, c.Rank(), buf[0])
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
