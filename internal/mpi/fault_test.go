package mpi

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestKillAtBarrierUnwindsPeers kills one rank entering its second
// barrier; every surviving rank must observe the failure and unwind
// (satellite: poison must reach barrier waiters) instead of deadlocking.
func TestKillAtBarrierUnwindsPeers(t *testing.T) {
	const n = 4
	rep, err := RunWithOptions(n, RunOptions{
		Deadline: 2 * time.Second,
		Fault:    &FaultPlan{Kills: []Kill{{Rank: 1, Site: SiteBarrier, After: 2}}},
	}, func(c *Comm) {
		c.Barrier()
		c.Barrier() // rank 1 dies entering this one; peers block here
		c.Barrier()
	})
	if !errors.Is(err, ErrRankFailed) {
		t.Fatalf("want ErrRankFailed, got %v", err)
	}
	if len(rep.Failures) == 0 || rep.Failures[0].Rank != 1 || rep.Failures[0].Kind != KindKilled {
		t.Fatalf("bad failures: %+v", rep.Failures)
	}
	if got := rep.DeadRanks(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DeadRanks = %v, want [1]", got)
	}
	if len(rep.Unwound) != n-1 {
		t.Fatalf("Unwound = %v, want the other %d ranks", rep.Unwound, n-1)
	}
	if len(rep.Abandoned) != 0 {
		t.Fatalf("Abandoned = %v, want none", rep.Abandoned)
	}
}

// TestRecvUnwindsOnPeerDeath is the satellite-1 regression: before the
// fix, poison only woke Barrier waiters, so a receiver blocked on a dead
// peer hung forever. No deadline here — the poison broadcast alone must
// unwind the receiver.
func TestRecvUnwindsOnPeerDeath(t *testing.T) {
	doneCh := make(chan error, 1)
	go func() {
		doneCh <- Run(2, func(c *Comm) {
			if c.Rank() == 1 {
				panic("rank 1 dies before sending")
			}
			c.Recv(1, 7) // would block forever without mailbox poison
		})
	}()
	select {
	case err := <-doneCh:
		if !errors.Is(err, ErrRankFailed) {
			t.Fatalf("want ErrRankFailed, got %v", err)
		}
		if !strings.Contains(err.Error(), "rank 1 dies before sending") {
			t.Fatalf("error should carry the panic cause, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unwind after peer death (mailbox not poisoned)")
	}
}

// TestRequestWaitUnwindsOnPeerDeath: a nonblocking receive whose peer dies
// must re-raise the failure from Wait on the owning rank (satellite 1,
// Irecv half).
func TestRequestWaitUnwindsOnPeerDeath(t *testing.T) {
	doneCh := make(chan error, 1)
	go func() {
		doneCh <- Run(2, func(c *Comm) {
			if c.Rank() == 1 {
				panic("peer death")
			}
			r := c.Irecv(1, 3)
			r.Wait()
		})
	}()
	select {
	case err := <-doneCh:
		if !errors.Is(err, ErrRankFailed) {
			t.Fatalf("want ErrRankFailed, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Request.Wait did not unwind after peer death")
	}
}

// TestWaitErrReturnsTypedError: WaitErr converts the unwinding into a
// typed error for callers that handle peer death locally.
func TestWaitErrReturnsTypedError(t *testing.T) {
	var mu sync.Mutex
	var seen error
	_ = Run(2, func(c *Comm) {
		if c.Rank() == 1 {
			panic("peer death")
		}
		_, _, _, err := c.Irecv(1, 3).WaitErr()
		mu.Lock()
		seen = err
		mu.Unlock()
	})
	if !errors.Is(seen, ErrRankFailed) {
		t.Fatalf("WaitErr = %v, want ErrRankFailed", seen)
	}
}

// TestDeadlineConvertsHangToTimeout: a receive that can never be matched
// (the peer completes without sending) must unwind with ErrTimeout within
// the deadline instead of hanging.
func TestDeadlineConvertsHangToTimeout(t *testing.T) {
	start := time.Now()
	rep, err := RunWithOptions(2, RunOptions{Deadline: 80 * time.Millisecond}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Recv(1, 5) // rank 1 never sends
		}
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("timeout took %v, deadline not enforced", el)
	}
	if len(rep.Failures) == 0 || rep.Failures[0].Kind != KindTimeout || rep.Failures[0].Rank != 0 {
		t.Fatalf("bad failures: %+v", rep.Failures)
	}
	// A timed-out waiter is healthy — it gave up on a stuck peer; nobody
	// is actually dead in this run.
	if got := rep.DeadRanks(); len(got) != 0 {
		t.Fatalf("DeadRanks = %v, want none", got)
	}
}

// TestDelayedRankTimesOutBarrier: an injected delay models a wedged peer;
// the waiting rank must time out at the barrier, and the delayed rank —
// once it wakes into the poisoned world — must unwind, not be abandoned.
func TestDelayedRankTimesOutBarrier(t *testing.T) {
	rep, err := RunWithOptions(2, RunOptions{
		Deadline: 60 * time.Millisecond,
		Fault:    &FaultPlan{Delays: []Delay{{Rank: 1, Site: SiteBarrier, After: 1, Sleep: 300 * time.Millisecond}}},
	}, func(c *Comm) {
		c.Barrier()
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if len(rep.Failures) == 0 || rep.Failures[0].Rank != 0 || rep.Failures[0].Site != "barrier" {
		t.Fatalf("bad failures: %+v", rep.Failures)
	}
	// Rank 1 slept through the poison, then entered the poisoned barrier
	// and unwound cleanly within the grace period.
	if len(rep.Unwound) != 1 || rep.Unwound[0] != 1 {
		t.Fatalf("Unwound = %v, want [1]", rep.Unwound)
	}
	if len(rep.Abandoned) != 0 {
		t.Fatalf("Abandoned = %v, want none", rep.Abandoned)
	}
}

// TestStuckRankIsAbandonedAndFenced: a rank wedged longer than the grace
// period is abandoned (the run returns without it) and fenced so its
// late window mutations cannot corrupt survivor state.
func TestStuckRankIsAbandonedAndFenced(t *testing.T) {
	var mu sync.Mutex
	var lateFenced bool
	wedged := make(chan struct{})
	rep, err := RunWithOptions(2, RunOptions{
		Deadline: 50 * time.Millisecond,
		Fault:    &FaultPlan{Delays: []Delay{{Rank: 1, Site: SiteSend, After: 1, Sleep: 900 * time.Millisecond}}},
	}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Recv(1, 1) // times out: rank 1 is asleep in its send hook
			return
		}
		defer func() {
			// After waking, the fenced rank's window ops must refuse.
			if r := recover(); r != nil {
				if _, ok := r.(failurePanic); ok {
					mu.Lock()
					lateFenced = true
					mu.Unlock()
				}
				close(wedged)
				panic(r)
			}
			close(wedged)
		}()
		c.Send(0, 1, []float64{1})
		c.FetchAdd("w", 0, 1)
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if len(rep.Abandoned) != 1 || rep.Abandoned[0] != 1 {
		t.Fatalf("Abandoned = %v, want [1]", rep.Abandoned)
	}
	if got := rep.DeadRanks(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DeadRanks = %v, want [1] (the abandoned rank)", got)
	}
	// Wait for the wedged goroutine to wake and hit the fence.
	select {
	case <-wedged:
	case <-time.After(5 * time.Second):
		t.Fatal("wedged rank never woke")
	}
	mu.Lock()
	defer mu.Unlock()
	if !lateFenced {
		t.Fatal("late window op by abandoned rank was not fenced")
	}
}

// TestKillAtDLBDrawFiresBeforeTheAdd: a rank killed at its Nth DLB draw
// must die BEFORE consuming the index, so no task index is silently lost
// with it.
func TestKillAtDLBDrawFiresBeforeTheAdd(t *testing.T) {
	var mu sync.Mutex
	draws := map[int][]int64{}
	rep, err := RunWithOptions(2, RunOptions{
		Deadline: 2 * time.Second,
		Fault:    &FaultPlan{Kills: []Kill{{Rank: 1, Site: SiteDLB, After: 3}}},
	}, func(c *Comm) {
		if c.Rank() == 1 {
			for i := 0; i < 5; i++ { // third hit kills before the add
				v := c.FetchAdd("dlb", 0, 1)
				mu.Lock()
				draws[1] = append(draws[1], v)
				mu.Unlock()
			}
			return
		}
		// Rank 0 waits for the failure, then drains the counter.
		for c.Healthy() {
			time.Sleep(time.Millisecond)
		}
		for i := 0; i < 10; i++ {
			v := c.FetchAdd("dlb", 0, 1)
			mu.Lock()
			draws[0] = append(draws[0], v)
			mu.Unlock()
		}
	})
	if !errors.Is(err, ErrRankFailed) {
		t.Fatalf("want ErrRankFailed, got %v", err)
	}
	if got := len(draws[1]); got != 2 {
		t.Fatalf("killed rank recorded %d draws, want 2 (third kill fires before the add)", got)
	}
	// Every drawn index is unique and the union is contiguous: nothing
	// was consumed by the dead rank and lost.
	seen := map[int64]bool{}
	var max int64 = -1
	for _, ds := range draws {
		for _, v := range ds {
			if seen[v] {
				t.Fatalf("index %d drawn twice", v)
			}
			seen[v] = true
			if v > max {
				max = v
			}
		}
	}
	if int64(len(seen)) != max+1 {
		t.Fatalf("drawn indices not contiguous: %d seen, max %d", len(seen), max)
	}
	if rep.Failures[0].Site != "dlb #3" {
		t.Fatalf("failure site = %q, want dlb #3", rep.Failures[0].Site)
	}
}

// TestKillDuringCollectiveUnwinds: collectives are built on send/recv, so
// a kill at a send mid-Allreduce must unwind every participant.
func TestKillDuringCollectiveUnwinds(t *testing.T) {
	_, err := RunWithOptions(4, RunOptions{
		Deadline: 2 * time.Second,
		Fault:    &FaultPlan{Kills: []Kill{{Rank: 2, Site: SiteSend, After: 1}}},
	}, func(c *Comm) {
		buf := []float64{float64(c.Rank())}
		c.AllreduceSumInPlace(buf)
	})
	if !errors.Is(err, ErrRankFailed) {
		t.Fatalf("want ErrRankFailed, got %v", err)
	}
}

// TestCleanRunReport: a failure-free run reports every rank completed.
func TestCleanRunReport(t *testing.T) {
	rep, err := RunWithOptions(3, RunOptions{Deadline: time.Second}, func(c *Comm) {
		c.Barrier()
		buf := []float64{1}
		c.AllreduceSumInPlace(buf)
	})
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	if rep.Err != nil || len(rep.Completed) != 3 || len(rep.Failures) != 0 {
		t.Fatalf("bad report: %+v", rep)
	}
}

// TestFailedRanksQueryDuringRun: survivors can query who died (to steal
// their leases) while still inside the run.
func TestFailedRanksQueryDuringRun(t *testing.T) {
	var mu sync.Mutex
	var observed []int
	_, err := RunWithOptions(3, RunOptions{
		Deadline: 2 * time.Second,
		Fault:    &FaultPlan{Kills: []Kill{{Rank: 2, Site: SiteDLB, After: 1}}},
	}, func(c *Comm) {
		if c.Rank() == 2 {
			c.FetchAdd("dlb", 0, 1) // dies here
			return
		}
		// Survivors poll until the failure is visible.
		deadline := time.Now().Add(2 * time.Second)
		for c.Healthy() && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		mu.Lock()
		observed = append(observed, c.FailedRanks()...)
		mu.Unlock()
	})
	if !errors.Is(err, ErrRankFailed) {
		t.Fatalf("want ErrRankFailed, got %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(observed) != 2 || observed[0] != 2 || observed[1] != 2 {
		t.Fatalf("FailedRanks observed = %v, want [2 2] (both survivors saw rank 2)", observed)
	}
}
