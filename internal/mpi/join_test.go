package mpi

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func sendAnnounce(b *JoinBus, sender string, ranks int) int64 {
	return b.Send(JoinFrame{Kind: JoinAnnounce, Sender: sender, Ranks: ranks})
}

func TestJoinBusOrderedDelivery(t *testing.T) {
	b := NewJoinBus(nil)
	for i := 1; i <= 5; i++ {
		seq := sendAnnounce(b, "host-a", i)
		if seq != int64(i) {
			t.Fatalf("send %d: assigned seq %d", i, seq)
		}
	}
	for i := 1; i <= 5; i++ {
		f, ok := b.Recv(time.Second)
		if !ok {
			t.Fatalf("recv %d: timeout", i)
		}
		if f.Seq != int64(i) || f.Ranks != i {
			t.Fatalf("recv %d: got seq %d ranks %d", i, f.Seq, f.Ranks)
		}
	}
	if _, ok := b.Recv(0); ok {
		t.Fatal("drained bus delivered an extra frame")
	}
}

func TestJoinBusDuplicateDropped(t *testing.T) {
	tel := telemetry.NewSession()
	b := NewJoinBus(tel)
	b.DuplicateNext()
	sendAnnounce(b, "host-a", 2)
	sendAnnounce(b, "host-a", 3)

	f1, ok := b.Recv(time.Second)
	if !ok || f1.Seq != 1 {
		t.Fatalf("first delivery: ok=%v seq=%d", ok, f1.Seq)
	}
	f2, ok := b.Recv(time.Second)
	if !ok || f2.Seq != 2 || f2.Ranks != 3 {
		t.Fatalf("second delivery: ok=%v seq=%d ranks=%d (duplicate not dropped?)", ok, f2.Seq, f2.Ranks)
	}
	if _, ok := b.Recv(0); ok {
		t.Fatal("duplicate survived dedup")
	}
	if n := tel.Counter("elastic.join.dup_dropped").Value(); n != 1 {
		t.Fatalf("dup_dropped = %d, want 1", n)
	}
}

func TestJoinBusCorruptRecovered(t *testing.T) {
	tel := telemetry.NewSession()
	b := NewJoinBus(tel)
	b.CorruptNext()
	sendAnnounce(b, "host-a", 2)

	f, ok := b.Recv(time.Second)
	if !ok {
		t.Fatal("recv timeout")
	}
	if f.Ranks != 2 {
		t.Fatalf("corrupted frame delivered: ranks = %d, want 2 (restored)", f.Ranks)
	}
	if f.checksum() != f.sum {
		t.Fatal("restored frame fails its own checksum")
	}
	if n := tel.Counter("elastic.join.retransmits").Value(); n != 1 {
		t.Fatalf("retransmits = %d, want 1", n)
	}
}

func TestJoinBusReorderRestored(t *testing.T) {
	b := NewJoinBus(nil)
	sendAnnounce(b, "host-a", 1)
	b.ReorderNext()
	sendAnnounce(b, "host-a", 2) // held back and delivered behind seq 3
	sendAnnounce(b, "host-a", 3)

	var got []int64
	for i := 0; i < 3; i++ {
		f, ok := b.Recv(time.Second)
		if !ok {
			t.Fatalf("recv %d: timeout", i)
		}
		got = append(got, f.Seq)
	}
	for i, seq := range got {
		if seq != int64(i+1) {
			t.Fatalf("delivery order %v: per-sender seq order not restored", got)
		}
	}
}

func TestJoinBusInterleavedSenders(t *testing.T) {
	b := NewJoinBus(nil)
	sendAnnounce(b, "a", 1)
	sendAnnounce(b, "b", 1)
	sendAnnounce(b, "a", 2)
	next := map[string]int64{"a": 1, "b": 1}
	for i := 0; i < 3; i++ {
		f, ok := b.Recv(time.Second)
		if !ok {
			t.Fatalf("recv %d: timeout", i)
		}
		if f.Seq != next[f.Sender] {
			t.Fatalf("sender %s delivered seq %d, want %d", f.Sender, f.Seq, next[f.Sender])
		}
		next[f.Sender]++
	}
}

func TestJoinBusConcurrent(t *testing.T) {
	b := NewJoinBus(nil)
	const senders, frames = 4, 25
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < frames; i++ {
				sendAnnounce(b, fmt.Sprintf("host-%d", s), i)
			}
		}(s)
	}
	seen := make(map[string]int64)
	for i := 0; i < senders*frames; i++ {
		f, ok := b.Recv(2 * time.Second)
		if !ok {
			t.Fatalf("recv %d: timeout (%d delivered)", i, len(seen))
		}
		if f.Seq != seen[f.Sender]+1 {
			t.Fatalf("sender %s: seq %d after %d", f.Sender, f.Seq, seen[f.Sender])
		}
		seen[f.Sender] = f.Seq
	}
	wg.Wait()
	if _, ok := b.Recv(0); ok {
		t.Fatal("extra frame after full drain")
	}
}

func TestJoinBackoffJitterBounds(t *testing.T) {
	for attempt := 0; attempt < 10; attempt++ {
		window := 50 * time.Millisecond << uint(attempt)
		if window > 2*time.Second {
			window = 2 * time.Second
		}
		for _, host := range []string{"a", "b", "node-17"} {
			d := JoinBackoff(host, attempt)
			if d < 0 || d >= window {
				t.Fatalf("JoinBackoff(%q, %d) = %v outside [0, %v)", host, attempt, d, window)
			}
			if d != JoinBackoff(host, attempt) {
				t.Fatalf("JoinBackoff(%q, %d) not deterministic", host, attempt)
			}
		}
	}
	// Different hosts should not back off in lockstep on every attempt.
	same := 0
	for attempt := 0; attempt < 8; attempt++ {
		if JoinBackoff("host-a", attempt) == JoinBackoff("host-b", attempt) {
			same++
		}
	}
	if same == 8 {
		t.Fatal("backoff identical across hosts for every attempt: no jitter")
	}
}
