package mpi

// Membership join framing: the out-of-band control channel a candidate
// rank uses to announce itself to a running computation. Frames ride the
// same delivery discipline as the data transport (comm.go): every frame
// carries a per-sender sequence number and a Fletcher-64 checksum over
// its entire envelope, the receiver delivers strictly in per-sender seq
// order, drops stale duplicates, holds early arrivals until the gap
// fills, and recovers a corrupted frame from the sender's retained clean
// copy (the in-process stand-in for a bounded retransmit). A membership
// message that could be duplicated, reordered, or silently corrupted
// would let one flaky fabric event double-admit a rank or commit a
// half-announced join — so the control plane inherits exactly the
// guarantees the data plane already earns.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/integrity"
	"repro/internal/telemetry"
)

// JoinKind enumerates membership-protocol frame types.
type JoinKind int

const (
	// JoinAnnounce is a candidate offering ranks to the computation.
	JoinAnnounce JoinKind = iota
	// JoinGrant moves an announced candidate into the checkpoint
	// handshake (driver → candidate).
	JoinGrant
	// JoinCommit admits the candidate at the next epoch boundary.
	JoinCommit
	// JoinAbort cancels an in-flight handshake.
	JoinAbort
	// JoinLeave is a voluntary departure (drain) announcement.
	JoinLeave
)

func (k JoinKind) String() string {
	switch k {
	case JoinAnnounce:
		return "announce"
	case JoinGrant:
		return "grant"
	case JoinCommit:
		return "commit"
	case JoinAbort:
		return "abort"
	case JoinLeave:
		return "leave"
	}
	return fmt.Sprintf("JoinKind(%d)", int(k))
}

// JoinFrame is one membership-protocol message. Seq is assigned by
// Send (per-sender, monotonically increasing from 1); the checksum
// covers every envelope field including the sender identity.
type JoinFrame struct {
	Kind    JoinKind
	Sender  string // candidate host / driver identity
	Seq     int64
	Epoch   int64 // membership epoch the sender observed
	Ranks   int   // ranks offered (announce) or granted (commit)
	Payload []int // kind-specific extras (e.g. migrated rank ids)
	sum     uint64
}

// envelope flattens every checksummed field into one int slice.
func (f *JoinFrame) envelope() []int {
	ints := make([]int, 0, 5+len(f.Sender)+len(f.Payload))
	ints = append(ints, int(f.Kind), int(f.Seq), int(f.Epoch), f.Ranks, len(f.Payload))
	for _, b := range []byte(f.Sender) {
		ints = append(ints, int(b))
	}
	ints = append(ints, f.Payload...)
	return ints
}

func (f *JoinFrame) checksum() uint64 {
	return integrity.ChecksumPayload(nil, f.envelope())
}

// clone deep-copies the frame (the retained clean copy must not alias
// the in-flight payload slice a fault knob may corrupt).
func (f JoinFrame) clone() JoinFrame {
	if f.Payload != nil {
		f.Payload = append([]int(nil), f.Payload...)
	}
	return f
}

// JoinBus is the membership control channel. One bus serves a whole
// membership domain: candidates Send announce frames, the driver Recvs
// them (and may Send grants/commits back). Concurrency-safe.
type JoinBus struct {
	mu        sync.Mutex
	cond      *sync.Cond
	queue     []JoinFrame
	sendSeq   map[string]int64
	delivered map[string]int64
	clean     map[string]JoinFrame // clean copies pending delivery, keyed sender#seq
	tel       *telemetry.Session

	// Fault knobs (tests and chaos experiments): each applies to the next
	// Send only, modeling one fabric event on the control channel.
	corruptNext   bool
	duplicateNext bool
	reorderNext   bool
}

// NewJoinBus returns an empty bus. tel (optional) receives the
// elastic.join.* delivery counters.
func NewJoinBus(tel *telemetry.Session) *JoinBus {
	b := &JoinBus{
		sendSeq:   make(map[string]int64),
		delivered: make(map[string]int64),
		clean:     make(map[string]JoinFrame),
		tel:       tel,
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// CorruptNext flips a bit in the next sent frame's envelope in flight;
// the receiver must detect the checksum mismatch and recover from the
// retained clean copy.
func (b *JoinBus) CorruptNext() { b.mu.Lock(); b.corruptNext = true; b.mu.Unlock() }

// DuplicateNext delivers the next sent frame twice; the receiver must
// drop the stale copy.
func (b *JoinBus) DuplicateNext() { b.mu.Lock(); b.duplicateNext = true; b.mu.Unlock() }

// ReorderNext swaps the next sent frame behind the frame already queued
// ahead of it (no-op on an empty queue); per-sender seq order must be
// restored at delivery.
func (b *JoinBus) ReorderNext() { b.mu.Lock(); b.reorderNext = true; b.mu.Unlock() }

func (b *JoinBus) count(name string) {
	if b.tel != nil {
		b.tel.Counter(name).Add(1)
	}
}

// Send assigns the frame its per-sender sequence number and checksum,
// retains a clean copy, applies any pending fault knob, and enqueues it.
// It returns the assigned sequence number.
func (b *JoinBus) Send(f JoinFrame) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sendSeq[f.Sender]++
	f.Seq = b.sendSeq[f.Sender]
	f.sum = f.checksum()
	b.clean[frameKey(f.Sender, f.Seq)] = f.clone()

	inFlight := f.clone()
	if b.corruptNext {
		b.corruptNext = false
		inFlight.Ranks ^= 1 << 6 // one flipped bit in the envelope
	}
	b.queue = append(b.queue, inFlight)
	if b.duplicateNext {
		b.duplicateNext = false
		b.queue = append(b.queue, inFlight.clone())
	}
	if b.reorderNext && len(b.queue) >= 2 {
		b.reorderNext = false
		n := len(b.queue)
		b.queue[n-1], b.queue[n-2] = b.queue[n-2], b.queue[n-1]
	}
	b.cond.Broadcast()
	return f.Seq
}

func frameKey(sender string, seq int64) string {
	return fmt.Sprintf("%s#%d", sender, seq)
}

// Recv delivers the next in-order frame from any sender, waiting up to
// timeout (0 = non-blocking). Stale duplicates are dropped, early
// arrivals are held until their gap fills, and a corrupted frame is
// restored from the sender's clean copy. Returns false on timeout.
func (b *JoinBus) Recv(timeout time.Duration) (JoinFrame, bool) {
	deadline := time.Now().Add(timeout)
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if f, ok := b.takeDeliverable(); ok {
			return f, true
		}
		remaining := time.Until(deadline)
		if timeout <= 0 || remaining <= 0 {
			return JoinFrame{}, false
		}
		// Timed wait: a timer broadcast bounds the sleep so a quiet bus
		// cannot block the caller past its deadline.
		t := time.AfterFunc(remaining, func() {
			b.mu.Lock()
			b.cond.Broadcast()
			b.mu.Unlock()
		})
		b.cond.Wait()
		t.Stop()
	}
}

// takeDeliverable scans the queue (caller holds the lock): stale
// duplicates are purged as encountered, and the first frame whose seq is
// exactly next-in-order for its sender is verified, removed, and
// returned. Frames ahead of a gap stay queued.
func (b *JoinBus) takeDeliverable() (JoinFrame, bool) {
	kept := b.queue[:0]
	var out JoinFrame
	found := false
	for i, f := range b.queue {
		if found {
			kept = append(kept, b.queue[i:]...)
			break
		}
		next := b.delivered[f.Sender] + 1
		switch {
		case f.Seq < next:
			// Stale duplicate: already delivered — drop.
			b.count("elastic.join.dup_dropped")
		case f.Seq > next:
			// Early arrival: hold for the gap to fill.
			kept = append(kept, f)
		default:
			if f.checksum() != f.sum {
				// In-flight corruption: restore from the clean copy, the
				// stand-in for asking the sender to retransmit.
				f = b.clean[frameKey(f.Sender, f.Seq)]
				b.count("elastic.join.retransmits")
			}
			b.delivered[f.Sender] = f.Seq
			delete(b.clean, frameKey(f.Sender, f.Seq))
			out, found = f, true
		}
	}
	// Zero the tail so dropped frames do not pin their payloads.
	for i := len(kept); i < len(b.queue); i++ {
		b.queue[i] = JoinFrame{}
	}
	b.queue = kept
	return out, found
}

// Pending returns how many frames are queued (including held early
// arrivals and not-yet-dropped duplicates).
func (b *JoinBus) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

// JoinBackoff returns the full-jitter re-announce backoff for a
// candidate's attempt (0-based): uniform in [0, 50ms·2^attempt), capped
// at a 2s window. Same discipline as the transport's retransmit backoff
// (retryBackoff in comm.go): deterministic per (host, attempt) so runs
// reproduce, jittered across hosts so expired candidates do not
// re-announce in synchronized waves.
func JoinBackoff(host string, attempt int) time.Duration {
	const (
		base = 50 * time.Millisecond
		cap  = 2 * time.Second
	)
	window := base << uint(attempt)
	if window > cap {
		window = cap
	}
	seed := uint64(attempt) << 48
	for _, c := range []byte(host) {
		seed = seed<<7 ^ seed>>57 ^ uint64(c)
	}
	return time.Duration(splitmix64(seed) % uint64(window))
}
