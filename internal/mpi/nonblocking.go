package mpi

// Nonblocking point-to-point operations (MPI_Isend / MPI_Irecv /
// MPI_Wait). The GAMESS DDI layer uses nonblocking transfers to overlap
// distributed-array traffic with integral computation; these complete the
// substrate so such overlap patterns can be expressed here too.

// Request is a handle to an in-flight nonblocking operation.
type Request struct {
	done chan struct{}
	data []float64
	src  int
	tag  int
}

// Wait blocks until the operation completes and returns the received
// payload (nil for sends) with its envelope.
func (r *Request) Wait() (data []float64, source, tag int) {
	<-r.done
	return r.data, r.src, r.tag
}

// Test reports whether the operation has completed without blocking.
func (r *Request) Test() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Isend starts a nonblocking send. The payload is copied immediately, so
// the caller may reuse the buffer right away (MPI_Isend with an eager
// protocol). The returned request completes as soon as the message is
// enqueued at the destination.
func (c *Comm) Isend(dest, tag int, data []float64) *Request {
	c.checkPeer(dest)
	c.checkTag(tag)
	r := &Request{done: make(chan struct{})}
	payload := append([]float64(nil), data...)
	go func() {
		c.world.stats.Messages.Add(1)
		c.world.stats.Floats.Add(int64(len(payload)))
		c.world.boxes[dest].deliver(message{source: c.rank, tag: tag, data: payload})
		close(r.done)
	}()
	return r
}

// Irecv starts a nonblocking receive matching (source, tag), wildcards
// allowed. Complete it with Wait or poll with Test.
func (c *Comm) Irecv(source, tag int) *Request {
	if source != AnySource {
		c.checkPeer(source)
	}
	r := &Request{done: make(chan struct{})}
	go func() {
		msg := c.world.boxes[c.rank].take(source, tag)
		r.data = msg.data
		r.src = msg.source
		r.tag = msg.tag
		close(r.done)
	}()
	return r
}

// WaitAll waits for every request.
func WaitAll(reqs ...*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}
