package mpi

// Nonblocking point-to-point operations (MPI_Isend / MPI_Irecv /
// MPI_Wait). The GAMESS DDI layer uses nonblocking transfers to overlap
// distributed-array traffic with integral computation; these complete the
// substrate so such overlap patterns can be expressed here too.
//
// Fault semantics: the background receive goroutine captures any failure
// unwinding (peer death, deadline) and re-raises it from Wait, so the
// rank that owns the request — not an anonymous goroutine — unwinds.

// Request is a handle to an in-flight nonblocking operation.
type Request struct {
	done     chan struct{}
	data     []float64
	src      int
	tag      int
	panicVal any // failure captured in the background goroutine
}

// Wait blocks until the operation completes and returns the received
// payload (nil for sends) with its envelope. If the operation failed
// because a peer rank died or the deadline expired, Wait re-raises that
// failure on the calling rank so it unwinds like any blocked receiver.
func (r *Request) Wait() (data []float64, source, tag int) {
	<-r.done
	if r.panicVal != nil {
		panic(r.panicVal)
	}
	return r.data, r.src, r.tag
}

// WaitErr is like Wait but converts a failure into a typed error
// (unwrapping to ErrRankFailed or ErrTimeout) instead of unwinding, for
// callers that want to handle peer death locally.
func (r *Request) WaitErr() (data []float64, source, tag int, err error) {
	<-r.done
	switch v := r.panicVal.(type) {
	case nil:
		return r.data, r.src, r.tag, nil
	case failurePanic:
		return nil, 0, 0, v.f
	case timeoutPanic:
		return nil, 0, 0, &RankFailure{Rank: v.rank, Site: v.site, Kind: KindTimeout, Elapsed: v.elapsed}
	case corruptionPanic:
		return nil, 0, 0, &RankFailure{Rank: v.rank, Site: v.site, Kind: KindCorrupted, Cause: v.err}
	default:
		panic(v) // not a failure: a genuine bug, keep crashing
	}
}

// Test reports whether the operation has completed without blocking.
func (r *Request) Test() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Isend starts a nonblocking send. The payload is copied immediately, so
// the caller may reuse the buffer right away (MPI_Isend with an eager
// protocol). The returned request completes as soon as the message is
// enqueued at the destination. Fault hooks fire synchronously on the
// calling rank, before the request is returned.
func (c *Comm) Isend(dest, tag int, data []float64) *Request {
	c.checkPeer(dest)
	c.checkTag(tag)
	n, cr := c.faultHookSend()
	r := &Request{done: make(chan struct{})}
	payload := append([]float64(nil), data...)
	go func() {
		c.frameAndDeliver(dest, message{source: c.rank, tag: tag, data: payload}, cr, n)
		close(r.done)
	}()
	return r
}

// Irecv starts a nonblocking receive matching (source, tag), wildcards
// allowed. Complete it with Wait or poll with Test.
func (c *Comm) Irecv(source, tag int) *Request {
	if source != AnySource {
		c.checkPeer(source)
	}
	c.faultHook(SiteRecv)
	r := &Request{done: make(chan struct{})}
	go func() {
		defer func() {
			if p := recover(); p != nil {
				r.panicVal = p
			}
			close(r.done)
		}()
		msg := c.world.boxes[c.rank].take(c, source, tag)
		msg = c.verifyMsg(msg)
		r.data = msg.data
		r.src = msg.source
		r.tag = msg.tag
	}()
	return r
}

// WaitAll waits for every request.
func WaitAll(reqs ...*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}
