// Package mpi is an in-process message-passing runtime with MPI-like
// semantics: a fixed set of ranks executing the same function as
// goroutines, tagged point-to-point sends and receives with wildcard
// matching, tree-based collectives, and shared windows supporting the
// one-sided fetch-and-add that the GAMESS DDI dynamic load balancer needs.
//
// It substitutes for the Intel MPI + DDI stack of the paper: the Fock
// build algorithms only require send/recv ordering guarantees, barriers,
// global sums, and an atomic global counter — all of which behave here
// exactly as on a real cluster, with real concurrency, so the algorithms'
// synchronization logic is genuinely exercised.
package mpi

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/integrity"
	"repro/internal/telemetry"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -2
)

// internalTagBase separates collective traffic from user tags; user tags
// must be small non-negative integers.
const internalTagBase = 1 << 24

// message is one point-to-point payload in flight. Every message is
// framed with a Fletcher-64 checksum of its clean payload (sum); the
// receiver verifies it after matching and, on mismatch, "retransmits"
// from the sender-side retransmit buffer (origin/originInts — retained
// only when an injected corruption actually fired, since that is the
// only way a payload can differ from its checksum in-process). corrupt/
// corruptLeft let a Corrupt{Repeat: n} schedule re-corrupt n
// retransmissions, driving the bounded retry to exhaustion.
type message struct {
	source int
	tag    int
	data   []float64
	ints   []int

	// seq is the per-(source, dest, tag) channel sequence number, assigned
	// only when the run's fault plan includes message chaos (duplication,
	// reordering, partitions). 0 means "no sequencing": the production hot
	// path never pays for chaos bookkeeping. Under chaos the receiver
	// delivers each channel strictly in seq order and drops duplicates, so
	// delivery is invariant under any duplication/reordering schedule.
	seq int64

	sum         uint64    // checksum of the clean payload (verified transport)
	origin      []float64 // clean retransmit copy, set only when corruption fired
	originInts  []int
	corrupt     *Corrupt // schedule entry to re-apply on retransmission
	corruptLeft int      // retransmissions still to corrupt
}

// chanKey identifies one ordered p2p channel. MPI guarantees FIFO per
// (source, dest, tag) — NOT per source: receives on different tags may
// legally complete out of send order, so sequencing per source would
// deadlock legitimate programs.
type chanKey struct {
	src, dst, tag int
}

// mailbox is a rank's unordered-arrival, ordered-matching receive queue.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
	// delivered tracks, per incoming channel, the highest seq handed to a
	// receiver — the receiver half of the chaos-mode sequencing protocol.
	// Allocated lazily: nil until the first sequenced message arrives.
	delivered map[chanKey]int64
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) deliver(msg message) {
	m.mu.Lock()
	m.queue = append(m.queue, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take blocks until a message matching (source, tag) is available and
// removes it. Matching follows MPI ordering: the earliest-queued matching
// message wins. Already-delivered matches are drained even after a peer
// failure; only an empty wait observes poison (unwinding the receiver)
// or the run deadline (converting a silent hang into ErrTimeout).
func (m *mailbox) take(c *Comm, source, tag int) message {
	deadline := c.world.root.deadline
	var start time.Time
	if deadline > 0 {
		start = time.Now()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i := 0; i < len(m.queue); i++ {
			msg := m.queue[i]
			if msg.seq > 0 {
				// Stale duplicate of an already-delivered message: drop it
				// during ANY scan, whatever (source, tag) this receive asked
				// for — a duplicate on a channel never requested again (a
				// one-shot collective tag) must still drain, not squat in
				// the queue forever.
				ch := chanKey{src: msg.source, dst: c.rank, tag: msg.tag}
				if msg.seq <= m.delivered[ch] {
					m.queue = append(m.queue[:i], m.queue[i+1:]...)
					i--
					if tel := c.world.root.telemetry; tel != nil {
						tel.Counter("chaos.dups_dropped").Add(1)
					}
					continue
				}
			}
			if (source != AnySource && msg.source != source) ||
				(tag != AnyTag && msg.tag != tag) {
				continue
			}
			if msg.seq > 0 {
				// Chaos-mode sequencing: deliver each channel in seq order.
				ch := chanKey{src: msg.source, dst: c.rank, tag: msg.tag}
				d := m.delivered[ch]
				if msg.seq > d+1 {
					// A gap: an earlier message of this channel is still in
					// flight (reordered or partition-held). Skip; the watchdog
					// or its eventual delivery re-wakes us.
					continue
				}
				if m.delivered == nil {
					m.delivered = make(map[chanKey]int64)
				}
				m.delivered[ch] = msg.seq
			}
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			return msg
		}
		if f := c.world.poisonF.Load(); f != nil {
			panic(failurePanic{f: f})
		}
		if deadline > 0 {
			if el := time.Since(start); el > deadline {
				panic(timeoutPanic{rank: c.rank, site: "recv", elapsed: el})
			}
		}
		m.cond.Wait()
	}
}

// window is a shared memory region with atomic access, modeling an MPI-3
// one-sided window (the DDI layer builds its DLB counter on one).
type window struct {
	mu   sync.Mutex
	data []float64
	ctr  []atomic.Int64
}

// World owns the shared state of one run: mailboxes, barrier, windows,
// and — on the top-level world — the failure bookkeeping shared by every
// communicator split from it.
type World struct {
	size      int
	boxes     []*mailbox
	windows   sync.Map // name -> *window
	subWorlds sync.Map // split key -> *World
	barrier   *cyclicBarrier
	collSeq   []atomic.Int64 // per-rank collective sequence numbers
	stats     Stats

	// root points to the top-level world (self for the world communicator);
	// fault injection, fencing, and failure records live only there, keyed
	// by world rank ids.
	root      *World
	deadline  time.Duration      // per-blocking-op bound; 0 = wait forever
	grace     time.Duration      // unwind window past deadline before abandoning (root only)
	watchTick time.Duration      // watchdog wakeup override; 0 = derived from deadline (root only)
	noVerify  bool               // disables payload checksum verification (root only)
	fault     *faultState        // injection schedule; nil = none
	telemetry *telemetry.Session // nil = telemetry disabled (root only)

	// Chaos-mode transport state (root only, see FaultPlan.messageChaos):
	// per-channel send sequence counters and reorder-held messages.
	chaosOn  bool
	seqMu    sync.Mutex
	sendSeqs map[chanKey]int64
	heldMu   sync.Mutex
	held     []*heldMsg

	poisonF   atomic.Pointer[RankFailure] // first observed failure
	fenced    []atomic.Bool               // abandoned ranks barred from windows (root only)
	failMu    sync.Mutex
	failures  []RankFailure   // primary failures in detection order (root only)
	outcomes  []int8          // per-rank outcome states (root only)
	rankWall  []time.Duration // per-rank goroutine wall time (root only)
	runStart  time.Time       // when the rank goroutines launched (root only)
	watchStop chan struct{}   // stops the deadline watchdog
}

// newWorld builds the shared state of a communicator: the top-level world
// when root is nil, otherwise a sub-world inheriting root's deadline and
// failure state.
func newWorld(size int, root *World) *World {
	w := &World{
		size:    size,
		boxes:   make([]*mailbox, size),
		barrier: newCyclicBarrier(size),
		collSeq: make([]atomic.Int64, size),
	}
	if root == nil {
		w.root = w
		w.fenced = make([]atomic.Bool, size)
	} else {
		w.root = root
		w.deadline = root.deadline
	}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w
}

// Stats aggregates communication volume over a run; the large-system
// simulator's network cost model is sanity-checked against it.
type Stats struct {
	Messages atomic.Int64
	Floats   atomic.Int64
	Barriers atomic.Int64
	Reduces  atomic.Int64
}

// Comm is one rank's communicator handle.
type Comm struct {
	rank  int
	size  int
	world *World
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// WorldStats returns a snapshot of the run's communication statistics.
func (c *Comm) WorldStats() (messages, floats, barriers, reduces int64) {
	s := &c.world.stats
	return s.Messages.Load(), s.Floats.Load(), s.Barriers.Load(), s.Reduces.Load()
}

// Telemetry returns the run's telemetry session (nil when disabled).
// Split communicators share the top-level world's session; all layers
// above the runtime (ddi, fock, scf) reach telemetry through this.
func (c *Comm) Telemetry() *telemetry.Session { return c.world.root.telemetry }

// Send delivers a copy of data to rank dest with the given tag. Tags must
// be in [0, 1<<24).
func (c *Comm) Send(dest, tag int, data []float64) {
	c.checkPeer(dest)
	c.checkTag(tag)
	c.send(dest, tag, data, nil)
}

// SendInts delivers an integer payload.
func (c *Comm) SendInts(dest, tag int, data []int) {
	c.checkPeer(dest)
	c.checkTag(tag)
	c.send(dest, tag, nil, data)
}

func (c *Comm) send(dest, tag int, data []float64, ints []int) {
	n, cr := c.faultHookSend()
	if tel := c.world.root.telemetry; tel != nil {
		tel.Counter("mpi.send.msgs").Add(1)
		tel.Histogram("mpi.send.bytes").Observe(int64(8 * (len(data) + len(ints))))
	}
	msg := message{source: c.rank, tag: tag}
	if data != nil {
		msg.data = append([]float64(nil), data...)
	}
	if ints != nil {
		msg.ints = append([]int(nil), ints...)
	}
	c.frameAndDeliver(dest, msg, cr, n)
}

// faultHookSend fires the send-site fault hook and returns the send
// event ordinal alongside any corruption — the ordinal is what the chaos
// routing matches Duplicate/Reorder schedules against.
func (c *Comm) faultHookSend() (n int64, cr *Corrupt) {
	w := c.world
	if w != w.root || w.root.fault == nil {
		return 0, nil
	}
	return w.root.fault.hitN(c.rank, SiteSend)
}

// frameAndDeliver checksums the (clean) payload, applies any scheduled
// corruption to the in-flight copy, and delivers. Because every
// collective is built on this point-to-point path, Bcast/Reduce/
// Allreduce/Gather/Scatter all inherit verified framing — and, in chaos
// runs, sequenced delivery — for free. n is the send event ordinal from
// faultHookSend (0 outside the root world or without a fault plan).
func (c *Comm) frameAndDeliver(dest int, msg message, cr *Corrupt, n int64) {
	w := c.world.root
	if !w.noVerify {
		msg.sum = integrity.ChecksumPayload(msg.data, msg.ints)
	}
	if cr != nil {
		// Keep a clean copy for retransmission, then corrupt what flies.
		msg.origin = append([]float64(nil), msg.data...)
		msg.originInts = append([]int(nil), msg.ints...)
		msg.corrupt = cr
		msg.corruptLeft = cr.Repeat
		applyCorruptPayload(cr, msg.data, msg.ints)
		if tel := w.telemetry; tel != nil {
			tel.Counter("sdc.injected").Add(1)
			tel.Counter("sdc.injected." + string(cr.Site)).Add(1)
		}
	}
	c.world.stats.Messages.Add(1)
	c.world.stats.Floats.Add(int64(len(msg.data)))
	if c.world == w && w.chaosOn {
		w.chaosRoute(c.rank, dest, msg, n)
		return
	}
	c.world.boxes[dest].deliver(msg)
}

// --- chaos-mode message routing ---

// heldMsg is a reorder-held message waiting for later sends from the
// same sender (or the safety timer) to release it.
type heldMsg struct {
	sender   int
	releaseN int64 // release once the sender's send count reaches this
	dest     int
	msg      message
	released bool
}

// reorderMaxHold bounds how long a reordered message can be withheld
// when its sender stops sending — liveness insurance, sized well under
// any reasonable run deadline.
const reorderMaxHold = 50 * time.Millisecond

// chaosRoute delivers a message under the chaos plan: it assigns the
// channel sequence number, applies partition hold-back, injects
// duplicate copies, and withholds reordered messages until their release
// condition. Every path eventually delivers (partitions heal, reorders
// have a safety timer), so chaos perturbs timing and ordering but never
// loses a message.
func (w *World) chaosRoute(src, dest int, msg message, n int64) {
	ch := chanKey{src: src, dst: dest, tag: msg.tag}
	w.seqMu.Lock()
	w.sendSeqs[ch]++
	msg.seq = w.sendSeqs[ch]
	w.seqMu.Unlock()

	dup, ro := w.fault.sendChaos(src, n)
	copies := 0
	if dup != nil {
		copies = dup.Copies
		if copies <= 0 {
			copies = 1
		}
		if tel := w.telemetry; tel != nil {
			tel.Counter("chaos.dups").Add(int64(copies))
		}
	}

	if ro != nil {
		behind := ro.Behind
		if behind <= 0 {
			behind = 1
		}
		h := &heldMsg{sender: src, releaseN: n + int64(behind), dest: dest, msg: msg}
		w.heldMu.Lock()
		w.held = append(w.held, h)
		w.heldMu.Unlock()
		if tel := w.telemetry; tel != nil {
			tel.Counter("chaos.reorders").Add(1)
		}
		time.AfterFunc(reorderMaxHold, func() { w.releaseHeld(src, 1<<62) })
	} else {
		w.chaosDeliver(src, dest, msg)
	}
	// Duplicates of a reordered message are delivered immediately — the
	// receiver sees copies AHEAD of the held original, exercising both the
	// gap wait and the duplicate drop.
	for i := 0; i < copies; i++ {
		w.chaosDeliver(src, dest, msg)
	}
	// This send may satisfy the release condition of earlier holds.
	w.releaseHeld(src, n)
}

// chaosDeliver delivers now, or after the partition heals when the
// message crosses an active partition cut.
func (w *World) chaosDeliver(src, dest int, msg message) {
	if hold := w.fault.partitionDelay(src, dest, time.Since(w.runStart)); hold > 0 {
		if tel := w.telemetry; tel != nil {
			tel.Counter("chaos.partition_held").Add(1)
		}
		box := w.boxes[dest]
		time.AfterFunc(hold+time.Millisecond, func() { box.deliver(msg) })
		return
	}
	w.boxes[dest].deliver(msg)
}

// releaseHeld delivers every held message of the given sender whose
// release condition (send count reached, or safety-timer flush with a
// huge n) is now met.
func (w *World) releaseHeld(sender int, n int64) {
	var release []*heldMsg
	w.heldMu.Lock()
	for _, h := range w.held {
		if !h.released && h.sender == sender && n >= h.releaseN {
			h.released = true
			release = append(release, h)
		}
	}
	w.heldMu.Unlock()
	for _, h := range release {
		w.chaosDeliver(h.sender, h.dest, h.msg)
	}
}

// applyCorruptPayload mutates a payload per the corruption schedule:
// NaN-poison or bit-flip for float payloads, bit-flip for int payloads.
func applyCorruptPayload(cr *Corrupt, floats []float64, ints []int) {
	switch {
	case len(floats) > 0 && cr.Kind == CorruptNaN:
		integrity.PoisonNaN(floats, cr.Index)
	case len(floats) > 0:
		integrity.FlipFloatBit(floats, cr.Index, cr.Bit)
	case len(ints) > 0:
		i := cr.Index
		if i < 0 {
			i = 0
		}
		if i >= len(ints) {
			i = len(ints) - 1
		}
		ints[i] ^= 1 << uint(cr.Bit&63)
	}
}

// Verification retry policy: a corrupted payload gets maxRetransmits
// chances to arrive clean, with full-jitter exponential backoff over a
// window starting at retryBackoff0, before the receiver escalates to a
// KindCorrupted RankFailure (persistent corruption is a sick node, not a
// soft error).
const (
	maxRetransmits = 3
	retryBackoff0  = 50 * time.Microsecond
)

// splitmix64 is the SplitMix64 finalizer — a tiny, allocation-free,
// statistically solid mixer for deterministic jitter seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// retryBackoff returns the sleep before retransmit attempt (0-based):
// full jitter, uniform in [0, retryBackoff0·2^attempt). Deterministic
// doubling made concurrent mismatching receivers retry in lockstep,
// hammering the sender in synchronized waves; full jitter desynchronizes
// them while the hash seed — receiver rank, message envelope, attempt —
// keeps every run bit-reproducible.
func retryBackoff(rank, source, tag, attempt int) time.Duration {
	window := retryBackoff0 << uint(attempt)
	seed := uint64(rank)<<48 ^ uint64(source)<<32 ^ uint64(uint32(tag))<<8 ^ uint64(attempt)
	return time.Duration(splitmix64(seed) % uint64(window))
}

// verifyMsg checks the payload against its checksum frame and drives the
// retry/backoff/escalation ladder. It runs OUTSIDE the mailbox lock, on
// the receiving rank, so exactly one rank observes each corruption —
// which is what keeps the sdc.detected counter equal to sdc.injected.
func (c *Comm) verifyMsg(msg message) message {
	w := c.world.root
	if w.noVerify {
		return msg
	}
	tel := w.telemetry
	for attempt := 0; ; attempt++ {
		if integrity.ChecksumPayload(msg.data, msg.ints) == msg.sum {
			if attempt > 0 && tel != nil {
				tel.Counter("sdc.recovered").Add(1)
			}
			return msg
		}
		if attempt == 0 && tel != nil {
			// Count detection once per corrupted message, not per retry.
			tel.Counter("sdc.detected").Add(1)
			tel.Counter("sdc.detected.transport").Add(1)
		}
		if attempt >= maxRetransmits {
			if tel != nil {
				tel.Counter("sdc.escalated").Add(1)
			}
			panic(corruptionPanic{rank: c.rank, site: "recv",
				err: fmt.Errorf("payload from rank %d (tag %d, %d floats, %d ints) failed checksum verification %d times",
					msg.source, msg.tag, len(msg.data), len(msg.ints), attempt+1)})
		}
		if tel != nil {
			tel.Counter("sdc.retries").Add(1)
		}
		time.Sleep(retryBackoff(c.rank, msg.source, msg.tag, attempt))
		msg.retransmit()
	}
}

// retransmit restores the payload from the sender-side clean copy,
// re-corrupting it while the schedule's Repeat budget lasts. Without a
// clean copy (corruption was not injected — impossible in-process, but
// the defensive path is kept) the same bytes are retried and the ladder
// runs to escalation.
func (msg *message) retransmit() {
	if msg.origin == nil && msg.originInts == nil {
		return
	}
	msg.data = append([]float64(nil), msg.origin...)
	msg.ints = append([]int(nil), msg.originInts...)
	if msg.corruptLeft > 0 {
		msg.corruptLeft--
		applyCorruptPayload(msg.corrupt, msg.data, msg.ints)
	}
}

// Recv blocks until a message matching source and tag arrives and returns
// its payload along with the actual source and tag (useful with
// wildcards).
func (c *Comm) Recv(source, tag int) (data []float64, actualSource, actualTag int) {
	if source != AnySource {
		c.checkPeer(source)
	}
	c.faultHook(SiteRecv)
	end := c.world.root.telemetry.TimedOp("mpi.op", "recv", c.rank, 0)
	msg := c.world.boxes[c.rank].take(c, source, tag)
	end()
	msg = c.verifyMsg(msg)
	return msg.data, msg.source, msg.tag
}

// RecvInts receives an integer payload.
func (c *Comm) RecvInts(source, tag int) (data []int, actualSource, actualTag int) {
	c.faultHook(SiteRecv)
	end := c.world.root.telemetry.TimedOp("mpi.op", "recv", c.rank, 0)
	msg := c.world.boxes[c.rank].take(c, source, tag)
	end()
	msg = c.verifyMsg(msg)
	return msg.ints, msg.source, msg.tag
}

// InjectSDC fires the fault hook for a corruption-only site (SiteFock)
// and applies any scheduled corruption to the given buffer in place,
// reporting whether one landed. The owning layer (the Fock task loops)
// calls it once per task; telemetry counts the injection here so
// detection layers can be audited against it.
func (c *Comm) InjectSDC(site FaultSite, floats []float64) bool {
	cr := c.faultHook(site)
	if cr == nil {
		return false
	}
	applyCorruptPayload(cr, floats, nil)
	if tel := c.world.root.telemetry; tel != nil {
		tel.Counter("sdc.injected").Add(1)
		tel.Counter("sdc.injected." + string(site)).Add(1)
	}
	return true
}

// InjectSDCBytes is InjectSDC for serialized byte payloads (SiteCheckpoint):
// it flips one bit of one byte per the schedule.
func (c *Comm) InjectSDCBytes(site FaultSite, data []byte) bool {
	cr := c.faultHook(site)
	if cr == nil {
		return false
	}
	integrity.FlipByteBit(data, cr.Index, cr.Bit)
	if tel := c.world.root.telemetry; tel != nil {
		tel.Counter("sdc.injected").Add(1)
		tel.Counter("sdc.injected." + string(site)).Add(1)
	}
	return true
}

func (c *Comm) checkPeer(r int) {
	if r < 0 || r >= c.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", r, c.size))
	}
}

func (c *Comm) checkTag(tag int) {
	if tag < 0 || tag >= internalTagBase {
		panic(fmt.Sprintf("mpi: user tag %d out of range", tag))
	}
}

// --- barrier ---

// cyclicBarrier is a reusable counting barrier for size participants.
type cyclicBarrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	size     int
	count    int
	gen      int
	poisoned bool
	// firstArrival is the entry time of the current generation's first
	// rank; the closing rank turns it into the barrier-arrival skew
	// metric (how long the earliest rank idled waiting for the latest).
	firstArrival time.Time
}

func newCyclicBarrier(size int) *cyclicBarrier {
	b := &cyclicBarrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *cyclicBarrier) await(c *Comm) {
	deadline := c.world.root.deadline
	var start time.Time
	if deadline > 0 {
		start = time.Now()
	}
	tel := c.world.root.telemetry
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		panicPoisoned(c)
	}
	gen := b.gen
	b.count++
	if tel != nil && b.count == 1 {
		b.firstArrival = time.Now()
	}
	if b.count == b.size {
		if tel != nil && b.size > 1 {
			tel.Histogram("mpi.barrier.skew_ns").Observe(time.Since(b.firstArrival).Nanoseconds())
		}
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen && !b.poisoned {
		if deadline > 0 {
			if el := time.Since(start); el > deadline {
				// Withdraw: this rank never completed the barrier.
				b.count--
				panic(timeoutPanic{rank: c.rank, site: "barrier", elapsed: el})
			}
		}
		b.cond.Wait()
	}
	if b.poisoned {
		panicPoisoned(c)
	}
}

// panicPoisoned unwinds a rank that observed a poisoned barrier with the
// typed failure that caused the poison.
func panicPoisoned(c *Comm) {
	if f := c.world.poisonF.Load(); f != nil {
		panic(failurePanic{f: f})
	}
	// Poisoned before the failure record landed; synthesize a generic one.
	panic(failurePanic{f: &RankFailure{Rank: -1, Site: "barrier", Kind: KindPanic,
		Cause: "peer rank failure"}})
}

func (b *cyclicBarrier) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	c.faultHook(SiteBarrier)
	c.world.stats.Barriers.Add(1)
	end := c.world.root.telemetry.TimedOp("mpi.op", "barrier", c.rank, 0)
	c.world.barrier.await(c)
	end()
}

// --- shared windows (MPI-3 one-sided emulation) ---

// getWindow creates or fetches the named window sized for at least n
// counters. The first creator fixes the capacity, so a generous minimum is
// applied; DLB windows only ever use a handful of counters.
func (c *Comm) getWindow(name string, n int) *window {
	// Fast path first: LoadOrStore would construct (and zero) a full
	// window-sized allocation on every call just to discard it when the
	// window already exists — and window ops are the innermost loop of
	// every distributed-matrix collective.
	if v, ok := c.world.windows.Load(name); ok {
		return v.(*window)
	}
	capacity := n
	if capacity < 64 {
		capacity = 64
	}
	v, _ := c.world.windows.LoadOrStore(name, &window{
		data: make([]float64, capacity),
		ctr:  make([]atomic.Int64, capacity),
	})
	return v.(*window)
}

// FetchAdd atomically adds delta to counter idx of the named window and
// returns the previous value — the primitive under DDI's dlbnext. The
// fault hook fires BEFORE the add, so a rank killed at a DLB draw never
// consumes the drawn index.
func (c *Comm) FetchAdd(name string, idx int, delta int64) int64 {
	c.checkFenced()
	c.faultHook(SiteDLB)
	w := c.getWindow(name, idx+1)
	if idx >= len(w.ctr) {
		panic(fmt.Sprintf("mpi: window %q counter %d out of range", name, idx))
	}
	return w.ctr[idx].Add(delta) - delta
}

// CounterStore atomically sets counter idx of the named window.
func (c *Comm) CounterStore(name string, idx int, v int64) {
	c.checkFenced()
	w := c.getWindow(name, idx+1)
	w.ctr[idx].Store(v)
}

// CounterLoad atomically reads counter idx of the named window.
func (c *Comm) CounterLoad(name string, idx int) int64 {
	w := c.getWindow(name, idx+1)
	return w.ctr[idx].Load()
}

// CounterCAS atomically compares-and-swaps counter idx of the named
// window, reporting success — the primitive under the DDI lease table's
// claim/steal/complete transitions.
func (c *Comm) CounterCAS(name string, idx int, old, new int64) bool {
	c.checkFenced()
	w := c.getWindow(name, idx+1)
	if idx >= len(w.ctr) {
		panic(fmt.Sprintf("mpi: window %q counter %d out of range", name, idx))
	}
	return w.ctr[idx].CompareAndSwap(old, new)
}

// WinCreateCounters creates (or re-fetches) a named counter window with
// at least n slots. The first creator of a window fixes its capacity (at
// a minimum of 64), so windows that need more counters — like the DDI
// lease table, one slot per task — must be created explicitly before
// first use.
func (c *Comm) WinCreateCounters(name string, n int) {
	w := c.getWindow(name, n)
	if len(w.ctr) < n {
		panic(fmt.Sprintf("mpi: counter window %q exists with %d < %d slots", name, len(w.ctr), n))
	}
}

// WinCreate collectively creates (or re-fetches) a named float window of
// the given size; every rank must pass the same size.
func (c *Comm) WinCreate(name string, size int) {
	v, _ := c.world.windows.LoadOrStore(name, &window{
		data: make([]float64, size),
		ctr:  make([]atomic.Int64, 1),
	})
	if len(v.(*window).data) < size {
		panic(fmt.Sprintf("mpi: window %q exists with smaller size", name))
	}
}

// WinPut stores data at offset of the named window (one-sided put).
func (c *Comm) WinPut(name string, offset int, data []float64) {
	c.checkFenced()
	w := c.getWindow(name, offset+len(data))
	w.mu.Lock()
	defer w.mu.Unlock()
	copy(w.data[offset:offset+len(data)], data)
}

// WinGet copies window contents at offset into out (one-sided get).
func (c *Comm) WinGet(name string, offset int, out []float64) {
	w := c.getWindow(name, offset+len(out))
	w.mu.Lock()
	defer w.mu.Unlock()
	copy(out, w.data[offset:offset+len(out)])
}

// WinAcc atomically accumulates (sums) data into the window at offset —
// the DDI acc operation used by distributed-data SCF variants.
func (c *Comm) WinAcc(name string, offset int, data []float64) {
	c.checkFenced()
	w := c.getWindow(name, offset+len(data))
	w.mu.Lock()
	defer w.mu.Unlock()
	for i, v := range data {
		w.data[offset+i] += v
	}
}

// Split partitions the communicator by color (like MPI_Comm_split): ranks
// with equal color form a new communicator whose ranks are ordered by
// (key, old rank). A negative color opts out and receives nil. This is
// how node-local communicators are carved out of the world (the paper's
// jobs run 4 ranks per node; node-level collectives use such a split).
// Collective: every rank must call it at the same point.
func (c *Comm) Split(color, key int) *Comm {
	// Gather (color, key) from every rank through a window, then compute
	// membership deterministically on each rank.
	name := fmt.Sprintf("mpi.split.%d", c.world.collSeq[c.rank].Add(1))
	c.getWindow(name, 2*c.size)
	cw, _ := c.world.windows.Load(name)
	w := cw.(*window)
	w.ctr[2*c.rank].Store(int64(color))
	w.ctr[2*c.rank+1].Store(int64(key))
	c.Barrier()
	if color < 0 {
		c.Barrier()
		return nil
	}
	type member struct{ rank, key int }
	var members []member
	for r := 0; r < c.size; r++ {
		if int(w.ctr[2*r].Load()) == color {
			members = append(members, member{rank: r, key: int(w.ctr[2*r+1].Load())})
		}
	}
	sort.Slice(members, func(a, b int) bool {
		if members[a].key != members[b].key {
			return members[a].key < members[b].key
		}
		return members[a].rank < members[b].rank
	})
	myNew := -1
	for i, m := range members {
		if m.rank == c.rank {
			myNew = i
		}
	}
	// Build the sub-world: a fresh set of mailboxes and barrier shared
	// through another window-backed registry.
	subKey := fmt.Sprintf("%s.world.%d", name, color)
	v, _ := c.world.subWorlds.LoadOrStore(subKey, newWorld(len(members), c.world.root))
	sub := v.(*World)
	c.Barrier()
	return &Comm{rank: myNew, size: len(members), world: sub}
}
