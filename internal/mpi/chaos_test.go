package mpi

// Tests for the performance-fault (chaos) layer: sequenced delivery must
// make duplication/reordering/partition schedules invisible to program
// semantics (only timing changes), and the sustained-slowdown hooks must
// stall exactly the scheduled rank. The headline property test runs
// randomized chaos schedules against a clean baseline and demands
// bitwise-identical collective results and exact p2p content.

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// chaosWorkload runs rounds of allreduce + a tagged ring exchange on n
// ranks under the given plan and returns every rank's allreduce results
// concatenated, for bitwise comparison against a clean run. Ring
// payloads are verified for exact content inside the workers.
func chaosWorkload(t *testing.T, n, rounds int, plan *FaultPlan, tel *telemetry.Session) [][]float64 {
	t.Helper()
	results := make([][]float64, n)
	_, err := RunWithOptions(n, RunOptions{
		Deadline:  10 * time.Second,
		Fault:     plan,
		Telemetry: tel,
	}, func(c *Comm) {
		for round := 0; round < rounds; round++ {
			buf := make([]float64, 5)
			for j := range buf {
				// Non-terminating binary fractions so any change in
				// reduction order or a double-count would change bits.
				buf[j] = 1.0 / float64(c.Rank()+j+round+2)
			}
			c.AllreduceSumInPlace(buf)
			results[c.Rank()] = append(results[c.Rank()], buf...)

			// Ring exchange with per-round tags: exact content and FIFO
			// order must survive any duplication/reordering schedule.
			next := (c.Rank() + 1) % c.Size()
			prev := (c.Rank() + c.Size() - 1) % c.Size()
			c.Send(next, 200+round, []float64{float64(c.Rank()), float64(round)})
			data, src, _ := c.Recv(prev, 200+round)
			if src != prev || len(data) != 2 || data[0] != float64(prev) || data[1] != float64(round) {
				t.Errorf("rank %d round %d: ring recv = %v from %d, want [%d %d] from %d",
					c.Rank(), round, data, src, prev, round, prev)
			}
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return results
}

// TestChaosScheduleInvariance is the dedup/reorder property test: for
// seeded random schedules of duplicated + reordered (+ partitioned) p2p
// deliveries, every allreduce result must be bitwise identical to the
// clean run and every ring message must arrive exactly once, in order.
func TestChaosScheduleInvariance(t *testing.T) {
	const n, rounds, trials = 4, 5, 8
	clean := chaosWorkload(t, n, rounds, nil, nil)

	rng := rand.New(rand.NewSource(20260806))
	for trial := 0; trial < trials; trial++ {
		plan := &FaultPlan{}
		for i := 0; i < 1+rng.Intn(3); i++ {
			plan.Duplicates = append(plan.Duplicates, Duplicate{
				Rank: rng.Intn(n), After: 1 + rng.Intn(20), Copies: 1 + rng.Intn(2)})
		}
		for i := 0; i < 1+rng.Intn(3); i++ {
			plan.Reorders = append(plan.Reorders, Reorder{
				Rank: rng.Intn(n), After: 1 + rng.Intn(20), Behind: 1 + rng.Intn(2)})
		}
		if trial%2 == 1 {
			plan.Partitions = append(plan.Partitions, Partition{
				Ranks: []int{rng.Intn(n)}, Start: 0, Duration: 5 * time.Millisecond})
		}
		tel := telemetry.NewSession()
		got := chaosWorkload(t, n, rounds, plan, tel)
		for r := range clean {
			if len(got[r]) != len(clean[r]) {
				t.Fatalf("trial %d rank %d: %d results, want %d", trial, r, len(got[r]), len(clean[r]))
			}
			for j := range clean[r] {
				if got[r][j] != clean[r][j] {
					t.Fatalf("trial %d rank %d result %d: %v != clean %v (plan %+v)",
						trial, r, j, got[r][j], clean[r][j], plan)
				}
			}
		}
	}
}

// TestChaosDuplicatesDropped pins down the dedup counters: a send
// duplicated twice must be received once, and both extra copies must be
// dropped by the receiver's sequence check when it next scans the queue.
func TestChaosDuplicatesDropped(t *testing.T) {
	tel := telemetry.NewSession()
	_, err := RunWithOptions(2, RunOptions{
		Deadline:  5 * time.Second,
		Fault:     &FaultPlan{Duplicates: []Duplicate{{Rank: 0, After: 1, Copies: 2}}},
		Telemetry: tel,
	}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 5, []float64{1, 2, 3})
			c.Send(1, 5, []float64{4, 5, 6})
		} else {
			a, _, _ := c.Recv(0, 5)
			b, _, _ := c.Recv(0, 5)
			if a[0] != 1 || b[0] != 4 {
				t.Errorf("FIFO violated: got %v then %v", a, b)
			}
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tel.Counter("chaos.dups").Value(); got != 2 {
		t.Errorf("chaos.dups = %d, want 2", got)
	}
	if got := tel.Counter("chaos.dups_dropped").Value(); got != 2 {
		t.Errorf("chaos.dups_dropped = %d, want 2", got)
	}
}

// TestChaosReorderRestoresFIFO holds rank 0's first send behind its
// second; the receiver must still observe program order, waiting out the
// sequence gap rather than delivering the early arrival.
func TestChaosReorderRestoresFIFO(t *testing.T) {
	tel := telemetry.NewSession()
	_, err := RunWithOptions(2, RunOptions{
		Deadline:  5 * time.Second,
		Fault:     &FaultPlan{Reorders: []Reorder{{Rank: 0, After: 1, Behind: 1}}},
		Telemetry: tel,
	}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 9, []float64{1})
			c.Send(1, 9, []float64{2})
		} else {
			a, _, _ := c.Recv(0, 9)
			b, _, _ := c.Recv(0, 9)
			if a[0] != 1 || b[0] != 2 {
				t.Errorf("reorder leaked through: got %v then %v", a[0], b[0])
			}
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tel.Counter("chaos.reorders").Value(); got != 1 {
		t.Errorf("chaos.reorders = %d, want 1", got)
	}
}

// TestChaosReorderSafetyTimer: a reordered message whose sender never
// sends again must still be delivered (by the safety timer), so a
// quiescing sender cannot wedge its receiver.
func TestChaosReorderSafetyTimer(t *testing.T) {
	start := time.Now()
	_, err := RunWithOptions(2, RunOptions{
		Deadline: 5 * time.Second,
		Fault:    &FaultPlan{Reorders: []Reorder{{Rank: 0, After: 1, Behind: 5}}},
	}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 3, []float64{42}) // held: no later sends ever come
		} else {
			data, _, _ := c.Recv(0, 3)
			if data[0] != 42 {
				t.Errorf("recv = %v, want 42", data[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < reorderMaxHold/2 {
		t.Errorf("run finished in %v — message was not actually held", el)
	}
}

// TestChaosPartitionHealsAndDelivers: messages crossing an active
// partition cut are held and delivered after the window closes; nothing
// is lost and blocked receivers do not time out.
func TestChaosPartitionHealsAndDelivers(t *testing.T) {
	tel := telemetry.NewSession()
	_, err := RunWithOptions(4, RunOptions{
		Deadline: 5 * time.Second,
		Fault: &FaultPlan{Partitions: []Partition{
			{Ranks: []int{0, 1}, Start: 0, Duration: 20 * time.Millisecond}}},
		Telemetry: tel,
	}, func(c *Comm) {
		// Cross-cut exchange while the partition is open.
		if c.Rank() == 0 {
			c.Send(2, 7, []float64{7})
		}
		if c.Rank() == 2 {
			data, _, _ := c.Recv(0, 7)
			if data[0] != 7 {
				t.Errorf("cross-cut recv = %v, want 7", data[0])
			}
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tel.Counter("chaos.partition_held").Value(); got < 1 {
		t.Errorf("chaos.partition_held = %d, want >= 1", got)
	}
}

// TestChaosTaskStall: the sustained-slowdown hook stalls only the
// scheduled rank at the scheduled site, proportionally to elapsed work.
func TestChaosTaskStall(t *testing.T) {
	tel := telemetry.NewSession()
	stalls := make([]time.Duration, 2)
	_, err := RunWithOptions(2, RunOptions{
		Fault: &FaultPlan{Slowdowns: []Slowdown{
			{Rank: 1, Factor: 3, Sites: []FaultSite{SiteFock}}}},
		Telemetry: tel,
	}, func(c *Comm) {
		stalls[c.Rank()] = c.TaskStall(SiteFock, 10*time.Millisecond)
		if c.TaskStall(SiteBarrier, 10*time.Millisecond) != 0 {
			t.Errorf("rank %d: stall fired at unscheduled site", c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stalls[0] != 0 {
		t.Errorf("rank 0 stalled %v, want 0", stalls[0])
	}
	if want := 20 * time.Millisecond; stalls[1] != want {
		t.Errorf("rank 1 stalled %v, want %v (factor 3 on 10ms)", stalls[1], want)
	}
	if got := tel.Counter("chaos.slowdown_ns").Value(); got != int64(20*time.Millisecond) {
		t.Errorf("chaos.slowdown_ns = %d, want %d", got, 20*time.Millisecond)
	}
}

// TestChaosOpDelaySlowdown: the OpDelay form adds fixed latency at the
// matching communication sites and counts each event.
func TestChaosOpDelaySlowdown(t *testing.T) {
	tel := telemetry.NewSession()
	start := time.Now()
	_, err := RunWithOptions(2, RunOptions{
		Fault: &FaultPlan{Slowdowns: []Slowdown{
			{Rank: 0, OpDelay: 5 * time.Millisecond, Sites: []FaultSite{SiteSend}}}},
		Telemetry: tel,
	}, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 3; i++ {
				c.Send(1, 1, []float64{float64(i)})
			}
		} else {
			for i := 0; i < 3; i++ {
				c.Recv(0, 1)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Errorf("run took %v, want >= 15ms of injected op delay", el)
	}
	if got := tel.Counter("chaos.slowdown.events").Value(); got < 3 {
		t.Errorf("chaos.slowdown.events = %d, want >= 3", got)
	}
}

// TestRetryBackoffJitter covers the full-jitter satellite: backoff is
// deterministic for a given (rank, envelope, attempt), bounded by the
// exponential window, and desynchronized across ranks.
func TestRetryBackoffJitter(t *testing.T) {
	for attempt := 0; attempt < 4; attempt++ {
		window := retryBackoff0 << uint(attempt)
		for rank := 0; rank < 8; rank++ {
			b := retryBackoff(rank, 3, 17, attempt)
			if b != retryBackoff(rank, 3, 17, attempt) {
				t.Fatalf("backoff not deterministic for rank %d attempt %d", rank, attempt)
			}
			if b < 0 || b >= window {
				t.Fatalf("backoff %v outside [0, %v)", b, window)
			}
		}
	}
	distinct := map[time.Duration]bool{}
	for rank := 0; rank < 8; rank++ {
		distinct[retryBackoff(rank, 3, 17, 2)] = true
	}
	if len(distinct) < 4 {
		t.Errorf("only %d distinct backoffs across 8 ranks — still in lockstep", len(distinct))
	}
}
