package ddi

// Tests for the straggler-mitigation half of the lease table: hedged
// (speculative) re-issue with first-writer-wins commit, TTL-based early
// lease expiry, chunked draws, and the straggler detector bridge. The
// headline property here is the DLB half of the chaos satellite: no
// schedule of concurrent hedged commits ever double-fires a lease.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// TestLeaseHedgeNeverDoubleFires is the property test for first-writer-
// wins dedup: rank 0 leases EVERY task, then all ranks race to commit —
// rank 0 through its own leases, the others through hedged speculative
// recomputes. However the CAS races interleave, every task must be
// committed exactly once, and the duplicate-drop count must equal the
// hedge count (each hedged task produced exactly one loser).
func TestLeaseHedgeNeverDoubleFires(t *testing.T) {
	const ranks, total = 4, 64
	rec := newLeaseRecorder()
	tel := telemetry.NewSession()
	_, err := mpi.RunWithOptions(ranks, mpi.RunOptions{
		Deadline:  10 * time.Second,
		Telemetry: tel,
	}, func(c *mpi.Comm) {
		l := New(c).NewLeaseDLB(total)
		var mine []int
		if c.Rank() == 0 {
			mine = l.DrawChunk(total)
			if len(mine) != total {
				t.Errorf("DrawChunk claimed %d of %d", len(mine), total)
			}
		}
		c.Barrier() // hedgers start only once every task is leased by rank 0
		if c.Rank() == 0 {
			for _, idx := range mine {
				if l.Reserve(idx, 0) {
					rec.record(0, idx) // "push"
					l.Finish(idx)
				}
			}
		} else {
			for {
				idx, owner, ok := l.Hedge([]int{0})
				if !ok {
					break
				}
				if owner != 0 {
					t.Errorf("hedged owner = %d, want 0", owner)
				}
				if l.Reserve(idx, owner) {
					rec.record(c.Rank(), idx) // speculative "push" won
					l.Finish(idx)
				}
			}
		}
		c.Barrier()
		if !l.AllComplete() {
			t.Errorf("rank %d: tasks left undone after all commit races settled", c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.assertExactlyOnce(t, total)
	hedged := tel.Counter("dlb.hedged").Value()
	dropped := tel.Counter("dlb.dedup_dropped").Value()
	if hedged == 0 {
		t.Fatal("no task was ever hedged")
	}
	// Every Reserve attempt is either the unique winner or a dropped
	// duplicate: total attempts = total (owner) + hedged (speculative),
	// total wins = total, so drops must equal hedges exactly.
	if dropped != hedged {
		t.Fatalf("dlb.dedup_dropped = %d, want %d (= dlb.hedged): a lease double-fired or a loser was not dropped", dropped, hedged)
	}
	if got := tel.Counter("dlb.reissued").Value(); got != hedged {
		t.Fatalf("dlb.reissued = %d, want %d", got, hedged)
	}
}

// TestLeaseExpiredReclaim covers deadline-based early lease expiry: a
// lease held past the TTL by a slow (but living) rank is reclaimed and
// committed by a peer, and the original owner's late commit loses the
// race and is deduplicated.
func TestLeaseExpiredReclaim(t *testing.T) {
	const total = 3
	rec := newLeaseRecorder()
	tel := telemetry.NewSession()
	_, err := mpi.RunWithOptions(2, mpi.RunOptions{
		Deadline:  10 * time.Second,
		Telemetry: tel,
	}, func(c *mpi.Comm) {
		l := New(c).NewLeaseDLB(total)
		if c.Rank() == 1 {
			idx, ok := l.Next()
			if !ok {
				t.Error("rank 1 drew nothing")
				return
			}
			c.Barrier()
			time.Sleep(200 * time.Millisecond) // unresponsive, not dead
			if l.Complete(idx) {
				t.Error("stale owner's late commit won despite TTL expiry")
			}
			return
		}
		c.Barrier()
		for {
			idx, ok := l.Next()
			if !ok {
				break
			}
			if l.Complete(idx) {
				rec.record(0, idx)
			}
		}
		start := time.Now()
		for !l.AllComplete() {
			if idx, ok := l.Expired(30 * time.Millisecond); ok {
				if l.Complete(idx) {
					rec.record(0, idx)
				} else {
					t.Error("reclaimed lease lost its own commit with no contender")
				}
				continue
			}
			if time.Since(start) > 5*time.Second {
				t.Error("TTL expiry never fired")
				return
			}
			time.Sleep(time.Millisecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.assertExactlyOnce(t, total)
	if got := tel.Counter("ddi.lease.expired").Value(); got < 1 {
		t.Fatalf("ddi.lease.expired = %d, want >= 1", got)
	}
	if got := tel.Counter("dlb.reissued").Value(); got < 1 {
		t.Fatalf("dlb.reissued = %d, want >= 1", got)
	}
	// The sleeper's failed Complete is a dropped duplicate.
	if got := tel.Counter("dlb.dedup_dropped").Value(); got < 1 {
		t.Fatalf("dlb.dedup_dropped = %d, want >= 1", got)
	}
}

// TestLeaseExpiredDisabled: a zero TTL must never reclaim anything.
func TestLeaseExpiredDisabled(t *testing.T) {
	_, err := mpi.RunWithOptions(2, mpi.RunOptions{Deadline: 5 * time.Second}, func(c *mpi.Comm) {
		l := New(c).NewLeaseDLB(2)
		if c.Rank() == 1 {
			idx, _ := l.Next()
			c.Barrier()
			c.Barrier()
			if !l.Complete(idx) {
				t.Error("own commit failed with expiry disabled")
			}
			return
		}
		c.Barrier()
		if idx, ok := l.Expired(0); ok {
			t.Errorf("Expired(0) reclaimed task %d", idx)
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStragglerBridge drives the telemetry bridge end to end: ranks
// publish task latencies through the shared window, and every rank's
// detector read agrees on which rank is slow.
func TestStragglerBridge(t *testing.T) {
	const ranks, slow = 4, 2
	var mu sync.Mutex
	flagged := make(map[int][]int)
	err := mpi.Run(ranks, func(c *mpi.Comm) {
		dx := New(c)
		lat := 10 * time.Millisecond
		if c.Rank() == slow {
			lat = 80 * time.Millisecond
		}
		for i := 0; i < 4; i++ {
			dx.ObserveTaskLatency(lat)
		}
		c.Barrier()
		got := dx.Stragglers(2, 3)
		mu.Lock()
		flagged[c.Rank()] = got
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < ranks; r++ {
		if len(flagged[r]) != 1 || flagged[r][0] != slow {
			t.Fatalf("rank %d flagged %v, want [%d]", r, flagged[r], slow)
		}
	}
}
