// Package ddi reimplements the slice of the GAMESS Distributed Data
// Interface that the paper's Hartree-Fock algorithms use: the dynamic
// load balancer (ddi_dlbnext), the global matrix sum (ddi_gsumf), and
// distributed arrays with one-sided get/put/accumulate.
//
// The paper notes that the classic DDI spawns a data-server process per
// compute rank (doubling rank counts and memory), while the MPI-3 version
// used for its benchmarks relies on native one-sided communication and
// needs no data servers. This implementation corresponds to the MPI-3
// flavor: the DLB counter is a one-sided fetch-and-add on a shared
// window, and no server ranks exist. The DataServerFactor knob in
// internal/memmodel accounts for the legacy mode's memory cost.
package ddi

import (
	"fmt"
	"sync/atomic"

	"repro/internal/loadbalance"
	"repro/internal/mpi"
)

// Context is one rank's handle to the DDI services.
type Context struct {
	Comm       *mpi.Comm
	epoch      int64
	leaseCycle int64            // lease-based DLB cycle sequence (see lease.go)
	ewma       loadbalance.EWMA // this rank's task-latency average (see straggler.go)
	// memberEpoch keys the shared straggler window by membership epoch
	// (see straggler.go): after an elastic grow/shrink/migration the
	// world size changes, and a resized world must never read the stale
	// EWMA vector a differently-sized predecessor published.
	memberEpoch int64
}

// New wraps an MPI communicator with DDI services.
func New(c *mpi.Comm) *Context { return &Context{Comm: c} }

// NewShrunk wraps a communicator of a world rebuilt after rank failure.
// epoch keys the membership-scoped shared windows (the straggler EWMA
// vector; see SetMembershipEpoch) so the reassigned world never reads
// state a differently-sized predecessor published — the ddi half of
// window reassignment when a distributed computation shrinks and its
// tiles are reconstructed onto a new owner map (internal/distmat ABFT).
func NewShrunk(c *mpi.Comm, epoch int64) *Context {
	d := New(c)
	d.SetMembershipEpoch(epoch)
	return d
}

// dlbWindow is the shared window holding the DLB counter; the epoch index
// separates successive DLB cycles without requiring counter zeroing races.
const dlbWindow = "ddi.dlb"

// DLBNext returns the next global task index (0, 1, 2, ...) across all
// ranks — ddi_dlbnext. Every call hands out a unique index; work sharing
// follows from ranks skipping indices they did not draw.
func (d *Context) DLBNext() int64 {
	tel := d.Comm.Telemetry()
	tel.Counter("ddi.dlb.draws").Add(1)
	end := tel.TimedOp("dlb.draw", "dlbnext", d.Comm.Rank(), 0)
	v := d.Comm.FetchAdd(dlbWindow, int(d.epoch%32), 1)
	end()
	return v
}

// DLBReset starts a new DLB cycle. Collective: every rank must call it at
// the same point; it barriers, advances the epoch, and zeroes the new
// counter slot.
func (d *Context) DLBReset() {
	d.Comm.Barrier()
	d.epoch++
	if d.Comm.Rank() == 0 {
		d.Comm.CounterStore(dlbWindow, int(d.epoch%32), 0)
	}
	d.Comm.Barrier()
}

// GSumF sums buf element-wise across all ranks, in place on every rank —
// ddi_gsumf, the Fock matrix reduction closing Algorithms 1-3.
func (d *Context) GSumF(buf []float64) {
	d.Comm.AllreduceSumInPlace(buf)
}

// GSumI sums a scalar across ranks (convenience for counters in tests and
// statistics).
func (d *Context) GSumI(v int64) int64 {
	buf := []float64{float64(v)}
	d.Comm.AllreduceSumInPlace(buf)
	return int64(buf[0])
}

// --- Distributed arrays ---

// arraySeq provides process-wide unique distributed array ids.
var arraySeq atomic.Int64

// DArray is a dense (rows x cols) matrix distributed by contiguous row
// blocks across ranks, accessed with one-sided Get/Put/Acc like DDI's
// distributed arrays (the substrate of distributed-data SCF).
type DArray struct {
	ctx        *Context
	id         int64
	Rows, Cols int
	rowsOfRank []int // first row owned by each rank; len = size+1
}

// CreateDArray collectively creates a rows x cols distributed array. All
// ranks must call it in the same order with the same shape.
func (d *Context) CreateDArray(rows, cols int) *DArray {
	size := d.Comm.Size()
	a := &DArray{ctx: d, Rows: rows, Cols: cols, rowsOfRank: make([]int, size+1)}
	// Deterministic id: derive collectively from a shared counter so all
	// ranks agree (each rank's first create sees the same sequence).
	if d.Comm.Rank() == 0 {
		id := arraySeq.Add(1)
		d.Comm.CounterStore("ddi.darr.id", 0, id)
	}
	d.Comm.Barrier()
	a.id = d.Comm.CounterLoad("ddi.darr.id", 0)
	base := rows / size
	extra := rows % size
	for r := 0; r < size; r++ {
		n := base
		if r < extra {
			n++
		}
		a.rowsOfRank[r+1] = a.rowsOfRank[r] + n
	}
	for r := 0; r < size; r++ {
		n := a.rowsOfRank[r+1] - a.rowsOfRank[r]
		if n > 0 {
			d.Comm.WinCreate(a.winName(r), n*cols)
		}
	}
	d.Comm.Barrier()
	return a
}

func (a *DArray) winName(rank int) string {
	return fmt.Sprintf("ddi.darr.%d.%d", a.id, rank)
}

// OwnerOf returns the rank owning the given global row.
func (a *DArray) OwnerOf(row int) int {
	for r := 0; r < len(a.rowsOfRank)-1; r++ {
		if row < a.rowsOfRank[r+1] {
			return r
		}
	}
	panic(fmt.Sprintf("ddi: row %d out of range %d", row, a.Rows))
}

// LocalRange returns the [lo, hi) global row range owned by this rank.
func (a *DArray) LocalRange() (lo, hi int) {
	r := a.ctx.Comm.Rank()
	return a.rowsOfRank[r], a.rowsOfRank[r+1]
}

// rowSpans walks the per-owner contiguous spans of [row, row+n).
func (a *DArray) rowSpans(row, n int, visit func(rank, globalRow, count int)) {
	if row < 0 || row+n > a.Rows {
		panic(fmt.Sprintf("ddi: rows [%d,%d) out of range %d", row, row+n, a.Rows))
	}
	for n > 0 {
		r := a.OwnerOf(row)
		count := a.rowsOfRank[r+1] - row
		if count > n {
			count = n
		}
		visit(r, row, count)
		row += count
		n -= count
	}
}

// GetRows fetches rows [row, row+n) into out (n*Cols floats).
func (a *DArray) GetRows(row, n int, out []float64) {
	pos := 0
	a.rowSpans(row, n, func(rank, globalRow, count int) {
		local := globalRow - a.rowsOfRank[rank]
		a.ctx.Comm.WinGet(a.winName(rank), local*a.Cols, out[pos:pos+count*a.Cols])
		pos += count * a.Cols
	})
}

// PutRows stores rows [row, row+n) from data.
func (a *DArray) PutRows(row, n int, data []float64) {
	pos := 0
	a.rowSpans(row, n, func(rank, globalRow, count int) {
		local := globalRow - a.rowsOfRank[rank]
		a.ctx.Comm.WinPut(a.winName(rank), local*a.Cols, data[pos:pos+count*a.Cols])
		pos += count * a.Cols
	})
}

// AccRows accumulates (sums) rows [row, row+n) from data.
func (a *DArray) AccRows(row, n int, data []float64) {
	pos := 0
	a.rowSpans(row, n, func(rank, globalRow, count int) {
		local := globalRow - a.rowsOfRank[rank]
		a.ctx.Comm.WinAcc(a.winName(rank), local*a.Cols, data[pos:pos+count*a.Cols])
		pos += count * a.Cols
	})
}
