package ddi

// Straggler telemetry bridge: each rank publishes its task-latency EWMA
// into a shared counter window, and any rank can read the whole vector
// back to run the internal/loadbalance detector. This is what connects
// the imbalance telemetry (PR 2) to the hedged DLB: a flagged rank's
// outstanding leases become candidates for speculative re-issue.

import (
	"time"

	"repro/internal/loadbalance"
)

// stragglerWindow holds, for a communicator of size P, slots [0, P) =
// per-rank latency EWMA in nanoseconds and slots [P, 2P) = per-rank
// sample counts.
const stragglerWindow = "ddi.straggler"

// ObserveTaskLatency folds one completed task's wall time into this
// rank's latency EWMA and publishes the updated (EWMA, count) pair to
// the shared straggler window. Call it once per task, timed around the
// real work (including any chaos stall — that is the point: a straggler
// is whatever LOOKS slow from outside).
func (d *Context) ObserveTaskLatency(dur time.Duration) {
	size := d.Comm.Size()
	d.Comm.WinCreateCounters(stragglerWindow, 2*size)
	v := d.ewma.Observe(float64(dur.Nanoseconds()))
	r := d.Comm.Rank()
	d.Comm.CounterStore(stragglerWindow, r, int64(v))
	d.Comm.CounterStore(stragglerWindow, size+r, d.ewma.Count())
}

// Stragglers reads every rank's published latency EWMA and returns the
// ranks flagged slower than k× the median (with at least minSamples
// observations each; see loadbalance.FlagStragglers for the exact
// policy). The flagged count is exported as the straggler.flagged gauge.
func (d *Context) Stragglers(k float64, minSamples int64) []int {
	size := d.Comm.Size()
	d.Comm.WinCreateCounters(stragglerWindow, 2*size)
	ewma := make([]float64, size)
	counts := make([]int64, size)
	for r := 0; r < size; r++ {
		ewma[r] = float64(d.Comm.CounterLoad(stragglerWindow, r))
		counts[r] = d.Comm.CounterLoad(stragglerWindow, size+r)
	}
	flagged := loadbalance.FlagStragglers(ewma, counts, k, minSamples)
	if tel := d.Comm.Telemetry(); tel != nil {
		tel.Gauge("straggler.flagged").Set(float64(len(flagged)))
	}
	return flagged
}
