package ddi

// Straggler telemetry bridge: each rank publishes its task-latency EWMA
// into a shared counter window, and any rank can read the whole vector
// back to run the internal/loadbalance detector. This is what connects
// the imbalance telemetry (PR 2) to the hedged DLB: a flagged rank's
// outstanding leases become candidates for speculative re-issue.

import (
	"fmt"
	"time"

	"repro/internal/loadbalance"
)

// stragglerWindowBase holds, for a communicator of size P, slots [0, P)
// = per-rank latency EWMA in nanoseconds and slots [P, 2P) = per-rank
// sample counts. Under an elastic membership the window name is keyed by
// the membership epoch (see stragglerWindow), so a resized world starts
// from a fresh vector instead of reading — or colliding with the
// different-sized allocation of — a stale epoch's data.
const stragglerWindowBase = "ddi.straggler"

// SetMembershipEpoch keys this context's straggler window by the given
// membership epoch. The elastic SCF driver calls it once per epoch;
// fixed-membership runs (epoch 0) keep the unsuffixed window name.
func (d *Context) SetMembershipEpoch(e int64) { d.memberEpoch = e }

// MembershipEpoch returns the epoch set by SetMembershipEpoch.
func (d *Context) MembershipEpoch() int64 { return d.memberEpoch }

// stragglerWindow returns the epoch-keyed shared window name.
func (d *Context) stragglerWindow() string {
	if d.memberEpoch == 0 {
		return stragglerWindowBase
	}
	return fmt.Sprintf("%s.e%d", stragglerWindowBase, d.memberEpoch)
}

// ObserveTaskLatency folds one completed task's wall time into this
// rank's latency EWMA and publishes the updated (EWMA, count) pair to
// the shared straggler window. Call it once per task, timed around the
// real work (including any chaos stall — that is the point: a straggler
// is whatever LOOKS slow from outside).
func (d *Context) ObserveTaskLatency(dur time.Duration) {
	size := d.Comm.Size()
	win := d.stragglerWindow()
	d.Comm.WinCreateCounters(win, 2*size)
	v := d.ewma.Observe(float64(dur.Nanoseconds()))
	r := d.Comm.Rank()
	d.Comm.CounterStore(win, r, int64(v))
	d.Comm.CounterStore(win, size+r, d.ewma.Count())
}

// Stragglers reads every rank's published latency EWMA and returns the
// ranks flagged slower than k× the median (with at least minSamples
// observations each; see loadbalance.FlagStragglers for the exact
// policy). The flagged count is exported as the straggler.flagged gauge.
func (d *Context) Stragglers(k float64, minSamples int64) []int {
	ewma, counts := d.PublishedLatencies()
	flagged := loadbalance.FlagStragglers(ewma, counts, k, minSamples)
	if tel := d.Comm.Telemetry(); tel != nil {
		tel.Gauge("straggler.flagged").Set(float64(len(flagged)))
	}
	return flagged
}

// PublishedLatencies reads the shared straggler window for the current
// membership epoch: per-rank latency EWMAs (ns) and sample counts. The
// elastic driver and the autoscaler read these directly when deciding
// migrations.
func (d *Context) PublishedLatencies() ([]float64, []int64) {
	size := d.Comm.Size()
	win := d.stragglerWindow()
	d.Comm.WinCreateCounters(win, 2*size)
	ewma := make([]float64, size)
	counts := make([]int64, size)
	for r := 0; r < size; r++ {
		ewma[r] = float64(d.Comm.CounterLoad(win, r))
		counts[r] = d.Comm.CounterLoad(win, size+r)
	}
	return ewma, counts
}
