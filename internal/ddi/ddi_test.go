package ddi

import (
	"sync/atomic"
	"testing"

	"repro/internal/mpi"
)

func TestDLBNextUnique(t *testing.T) {
	const size, per = 6, 50
	claimed := make([]atomic.Int64, size*per)
	err := mpi.Run(size, func(c *mpi.Comm) {
		d := New(c)
		d.DLBReset()
		for i := 0; i < per; i++ {
			claimed[d.DLBNext()].Add(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range claimed {
		if claimed[i].Load() != 1 {
			t.Fatalf("index %d claimed %d times", i, claimed[i].Load())
		}
	}
}

func TestDLBResetStartsNewCycle(t *testing.T) {
	err := mpi.Run(4, func(c *mpi.Comm) {
		d := New(c)
		d.DLBReset()
		// Drain a few indices in cycle 1.
		for i := 0; i < 3; i++ {
			d.DLBNext()
		}
		d.DLBReset()
		// Collect each rank's first index of cycle 2; the minimum across
		// ranks must be 0 (counter restarted).
		mine := []float64{float64(d.DLBNext())}
		c.Allreduce(mpi.Min, mine, mine)
		if mine[0] != 0 {
			t.Errorf("cycle 2 min index = %v, want 0", mine[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDLBManyEpochs(t *testing.T) {
	// Exercise epoch slot wrap-around (> 32 cycles).
	err := mpi.Run(2, func(c *mpi.Comm) {
		d := New(c)
		for e := 0; e < 40; e++ {
			d.DLBReset()
			mine := []float64{float64(d.DLBNext())}
			c.Allreduce(mpi.Min, mine, mine)
			if mine[0] != 0 {
				t.Errorf("epoch %d: min first index = %v", e, mine[0])
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGSumF(t *testing.T) {
	err := mpi.Run(5, func(c *mpi.Comm) {
		d := New(c)
		buf := []float64{1, float64(c.Rank())}
		d.GSumF(buf)
		if buf[0] != 5 || buf[1] != 10 {
			t.Errorf("GSumF = %v", buf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGSumI(t *testing.T) {
	err := mpi.Run(3, func(c *mpi.Comm) {
		d := New(c)
		if got := d.GSumI(int64(c.Rank() + 1)); got != 6 {
			t.Errorf("GSumI = %d", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDArrayRowDistribution(t *testing.T) {
	err := mpi.Run(3, func(c *mpi.Comm) {
		d := New(c)
		a := d.CreateDArray(10, 4)
		lo, hi := a.LocalRange()
		// 10 rows over 3 ranks: 4, 3, 3.
		want := [][2]int{{0, 4}, {4, 7}, {7, 10}}
		if lo != want[c.Rank()][0] || hi != want[c.Rank()][1] {
			t.Errorf("rank %d range = [%d,%d)", c.Rank(), lo, hi)
		}
		if a.OwnerOf(0) != 0 || a.OwnerOf(5) != 1 || a.OwnerOf(9) != 2 {
			t.Error("OwnerOf wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDArrayPutGet(t *testing.T) {
	err := mpi.Run(4, func(c *mpi.Comm) {
		d := New(c)
		a := d.CreateDArray(9, 2)
		if c.Rank() == 0 {
			data := make([]float64, 9*2)
			for i := range data {
				data[i] = float64(i)
			}
			a.PutRows(0, 9, data)
		}
		c.Barrier()
		// Every rank reads a cross-owner span.
		out := make([]float64, 4*2)
		a.GetRows(3, 4, out)
		for i := range out {
			if out[i] != float64(3*2+i) {
				t.Errorf("rank %d: out=%v", c.Rank(), out)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDArrayAccumulate(t *testing.T) {
	err := mpi.Run(4, func(c *mpi.Comm) {
		d := New(c)
		a := d.CreateDArray(5, 3)
		ones := make([]float64, 5*3)
		for i := range ones {
			ones[i] = 1
		}
		a.AccRows(0, 5, ones)
		c.Barrier()
		out := make([]float64, 5*3)
		a.GetRows(0, 5, out)
		for i, v := range out {
			if v != 4 {
				t.Errorf("acc[%d] = %v want 4", i, v)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDArrayTwoArraysIndependent(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) {
		d := New(c)
		a := d.CreateDArray(4, 1)
		b := d.CreateDArray(4, 1)
		if c.Rank() == 0 {
			a.PutRows(0, 4, []float64{1, 1, 1, 1})
			b.PutRows(0, 4, []float64{2, 2, 2, 2})
		}
		c.Barrier()
		out := make([]float64, 4)
		a.GetRows(0, 4, out)
		if out[0] != 1 {
			t.Errorf("a = %v", out)
		}
		b.GetRows(0, 4, out)
		if out[0] != 2 {
			t.Errorf("b = %v", out)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDArrayOutOfRangePanics(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) {
		d := New(c)
		a := d.CreateDArray(3, 1)
		defer func() {
			if recover() == nil {
				t.Error("expected panic for out-of-range rows")
			}
		}()
		a.GetRows(2, 5, make([]float64, 5))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDArrayMoreRanksThanRows(t *testing.T) {
	err := mpi.Run(5, func(c *mpi.Comm) {
		d := New(c)
		a := d.CreateDArray(3, 2)
		lo, hi := a.LocalRange()
		if c.Rank() >= 3 && lo != hi {
			t.Errorf("rank %d should own nothing, got [%d,%d)", c.Rank(), lo, hi)
		}
		if c.Rank() == 4 {
			a.PutRows(0, 3, []float64{1, 2, 3, 4, 5, 6})
		}
		c.Barrier()
		out := make([]float64, 6)
		a.GetRows(0, 3, out)
		if out[5] != 6 {
			t.Errorf("rank %d: %v", c.Rank(), out)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
