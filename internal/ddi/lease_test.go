package ddi

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
)

// leaseRecorder collects which rank completed which task, and asserts
// exactly-once coverage of [0, total).
type leaseRecorder struct {
	mu   sync.Mutex
	who  map[int]int // task -> completing rank
	dups int
}

func newLeaseRecorder() *leaseRecorder { return &leaseRecorder{who: map[int]int{}} }

func (r *leaseRecorder) record(rank, idx int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.who[idx]; dup {
		r.dups++
	}
	r.who[idx] = rank
}

func (r *leaseRecorder) assertExactlyOnce(t *testing.T, total int) {
	t.Helper()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dups != 0 {
		t.Fatalf("%d tasks completed more than once", r.dups)
	}
	if len(r.who) != total {
		t.Fatalf("%d of %d tasks completed", len(r.who), total)
	}
}

// leaseWorkLoop is the canonical fault-aware consumption pattern: drain
// the fresh cursor, then steal from the dead until every task is done.
func leaseWorkLoop(t *testing.T, c *mpi.Comm, l *LeaseDLB, rec *leaseRecorder) {
	for {
		idx, ok := l.Next()
		if !ok {
			break
		}
		if l.Complete(idx) {
			rec.record(c.Rank(), idx) // "push the contribution"
		}
	}
	start := time.Now()
	for !l.AllComplete() {
		if idx, ok := l.Steal(); ok {
			if l.Complete(idx) {
				rec.record(c.Rank(), idx)
			}
			continue
		}
		if time.Since(start) > 10*time.Second {
			t.Errorf("rank %d: lease cycle never completed", c.Rank())
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestLeaseExactlyOnceNoFailure: the lease cycle degenerates to plain
// dlbnext semantics when nobody dies.
func TestLeaseExactlyOnceNoFailure(t *testing.T) {
	const total = 200
	rec := newLeaseRecorder()
	err := mpi.Run(4, func(c *mpi.Comm) {
		l := New(c).NewLeaseDLB(total)
		leaseWorkLoop(t, c, l, rec)
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.assertExactlyOnce(t, total)
}

// TestLeaseExactlyOnceUnderRankDeath is the tentpole's DLB acceptance
// test: a rank dies holding two unpushed leases; survivors re-issue them
// and the cycle still completes with every task processed exactly once —
// no lost and no duplicated work.
func TestLeaseExactlyOnceUnderRankDeath(t *testing.T) {
	const total = 25
	rec := newLeaseRecorder()
	rep, err := mpi.RunWithOptions(4, mpi.RunOptions{
		Deadline: 5 * time.Second,
		// The victim's third cursor draw kills it, leaving its first two
		// tasks leased (claimed, never completed).
		Fault: &mpi.FaultPlan{Kills: []mpi.Kill{{Rank: 1, Site: mpi.SiteDLB, After: 3}}},
	}, func(c *mpi.Comm) {
		l := New(c).NewLeaseDLB(total)
		if c.Rank() == 1 {
			l.Next()
			l.Next()
			l.Next() // killed here, before the draw lands
			t.Error("victim survived its own kill")
			return
		}
		// Survivors wait for the death so the victim is guaranteed to
		// hold leases when the cursor race starts.
		for c.Healthy() {
			time.Sleep(time.Millisecond)
		}
		leaseWorkLoop(t, c, l, rec)
	})
	if !errors.Is(err, mpi.ErrRankFailed) {
		t.Fatalf("want ErrRankFailed, got %v", err)
	}
	if got := rep.DeadRanks(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DeadRanks = %v, want [1]", got)
	}
	rec.assertExactlyOnce(t, total)
	// The two orphaned leases must have been completed by survivors.
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for idx, rank := range rec.who {
		if rank == 1 {
			t.Fatalf("task %d recorded by the dead rank", idx)
		}
	}
}

// TestLeaseStealsUnclaimedDraw covers the draw/claim gap: a rank that
// dies after drawing an index but before claiming it leaves a free slot
// behind the cursor; Steal must re-issue it.
func TestLeaseStealsUnclaimedDraw(t *testing.T) {
	const total = 10
	rec := newLeaseRecorder()
	_, err := mpi.RunWithOptions(2, mpi.RunOptions{Deadline: 5 * time.Second}, func(c *mpi.Comm) {
		l := New(c).NewLeaseDLB(total)
		if c.Rank() == 1 {
			// Simulate death in the gap: draw the cursor directly (as
			// Next would), then die before the claim CAS.
			c.FetchAdd(l.curW, 0, 1)
			panic("died between draw and claim")
		}
		for c.Healthy() {
			time.Sleep(time.Millisecond)
		}
		leaseWorkLoop(t, c, l, rec)
	})
	if !errors.Is(err, mpi.ErrRankFailed) {
		t.Fatalf("want ErrRankFailed, got %v", err)
	}
	rec.assertExactlyOnce(t, total)
}

// TestDLBResetWraparoundExactlyOnce is the satellite-3 stress test: >32
// DLB cycles force the epoch%32 slot reuse, and after each reuse the
// counter must still hand out every index exactly once per cycle. Run
// under -race this also audits the reset/draw synchronization.
func TestDLBResetWraparoundExactlyOnce(t *testing.T) {
	const size, cycles, total = 4, 40, 64
	var mu sync.Mutex
	perCycle := make([]map[int64]int, cycles)
	for i := range perCycle {
		perCycle[i] = map[int64]int{}
	}
	err := mpi.Run(size, func(c *mpi.Comm) {
		d := New(c)
		for e := 0; e < cycles; e++ {
			d.DLBReset()
			for {
				v := d.DLBNext()
				if v >= total {
					break
				}
				mu.Lock()
				perCycle[e][v]++
				mu.Unlock()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for e, got := range perCycle {
		if len(got) != total {
			t.Fatalf("cycle %d: %d of %d indices handed out (slot reuse lost work)", e, len(got), total)
		}
		for v, n := range got {
			if n != 1 {
				t.Fatalf("cycle %d: index %d handed out %d times after slot reuse", e, v, n)
			}
		}
	}
}
