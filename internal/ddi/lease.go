package ddi

// Lease-based dynamic load balancing: the fault-aware DLB mode.
//
// The classic dlbnext counter hands out each task index exactly once and
// forgets it — if the drawing rank dies, the index dies with it and the
// Fock matrix silently loses those quartets' contributions. Following the
// task re-issue idea from dynamic-distribution Hartree-Fock work (HONPAS;
// see PAPERS.md), a lease cycle instead tracks per-task state in a shared
// counter window:
//
//	0        free  — not yet claimed by anyone
//	rank+1   leased — claimed by that world rank, result not yet pushed
//	-1       done  — contribution pushed to the shared result
//
// Ranks draw indices from a cursor (one-sided fetch-and-add, exactly like
// dlbnext) and claim them with a CAS; when a rank dies, survivors re-issue
// its leases with Steal. Exactly-once completion rests on two invariants:
//
//  1. Every transition into the done state is a CAS from a unique prior
//     owner, and a task's contribution is pushed to the shared result
//     immediately before its done-mark with no failure point in between
//     (fault injection fires only at runtime events: barrier, send, recv,
//     DLB draw — and abandoned ranks are fenced from the windows), so
//     "done" implies "pushed exactly once".
//  2. A claim and a steal race through CAS on the same slot; the loser
//     simply skips the task, so no index is ever processed twice.
import "fmt"

const (
	leaseFree int64 = 0
	leaseDone int64 = -1
)

// LeaseDLB is one rank's handle to a lease-based DLB cycle.
type LeaseDLB struct {
	ctx    *Context
	cycle  int64
	total  int
	stateW string // per-task lease state, total slots
	curW   string // draw cursor, 1 slot
}

// NewLeaseDLB starts a new lease cycle over task indices [0, total).
// Every rank of the communicator must call it once per cycle, in the same
// order, but — unlike DLBReset — it does NOT barrier: survivors of a rank
// failure can still open their handle and finish the cycle. Fresh windows
// per cycle make zeroing (and its races) unnecessary.
func (d *Context) NewLeaseDLB(total int) *LeaseDLB {
	d.leaseCycle++
	l := &LeaseDLB{ctx: d, cycle: d.leaseCycle, total: total}
	l.stateW = leaseWindowName(d.leaseCycle, "state")
	l.curW = leaseWindowName(d.leaseCycle, "cur")
	if total > 0 {
		d.Comm.WinCreateCounters(l.stateW, total)
	}
	return l
}

func leaseWindowName(cycle int64, part string) string {
	return fmt.Sprintf("ddi.lease.%s.%d", part, cycle)
}

// Total returns the number of task indices in the cycle.
func (l *LeaseDLB) Total() int { return l.total }

// Cycle returns the cycle sequence number, usable to key per-cycle
// companion windows (e.g. a shared Fock accumulation buffer).
func (l *LeaseDLB) Cycle() int64 { return l.cycle }

// Next draws and claims the next fresh task index. ok is false once the
// cursor is exhausted — switch to Steal then. A drawn index whose claim
// is lost to a concurrent steal is skipped and the draw retried, so a
// returned index is always exclusively owned by this rank.
func (l *LeaseDLB) Next() (idx int, ok bool) {
	tel := l.ctx.Comm.Telemetry()
	tel.Counter("ddi.lease.draws").Add(1)
	defer tel.TimedOp("dlb.draw", "lease-next", l.ctx.Comm.Rank(), 0)()
	me := int64(l.ctx.Comm.Rank()) + 1
	for {
		v := l.ctx.Comm.FetchAdd(l.curW, 0, 1)
		if v >= int64(l.total) {
			return -1, false
		}
		if l.ctx.Comm.CounterCAS(l.stateW, int(v), leaseFree, me) {
			return int(v), true
		}
	}
}

// Complete marks a task this rank owns as done. Call it immediately
// after pushing the task's contribution to the shared result; the pair
// forms the push-then-mark critical section invariant 1 relies on.
func (l *LeaseDLB) Complete(idx int) {
	me := int64(l.ctx.Comm.Rank()) + 1
	l.ctx.Comm.CounterCAS(l.stateW, idx, me, leaseDone)
}

// Steal re-issues one task abandoned by a failed rank: either still
// leased by a rank now known dead, or drawn but never claimed (the owner
// died between its draw and its claim — such slots sit free BEHIND the
// cursor). Returns ok=false when there is nothing to steal right now;
// poll AllComplete to distinguish "nothing ever" from "peers still
// working".
func (l *LeaseDLB) Steal() (idx int, ok bool) {
	failed := l.ctx.Comm.FailedRanks()
	if len(failed) == 0 {
		return -1, false
	}
	dead := make(map[int64]bool, len(failed))
	for _, r := range failed {
		dead[int64(r)+1] = true
	}
	me := int64(l.ctx.Comm.Rank()) + 1
	cur := l.ctx.Comm.CounterLoad(l.curW, 0)
	if cur > int64(l.total) {
		cur = int64(l.total)
	}
	for i := int64(0); i < cur; i++ {
		s := l.ctx.Comm.CounterLoad(l.stateW, int(i))
		if s == leaseFree || dead[s] {
			if l.ctx.Comm.CounterCAS(l.stateW, int(i), s, me) {
				if tel := l.ctx.Comm.Telemetry(); tel != nil {
					tel.Counter("ddi.lease.steals").Add(1)
					tel.Instant("recovery.reissue", "lease-steal", l.ctx.Comm.Rank(), 0,
						map[string]any{"task": int(i), "from": s - 1})
				}
				return int(i), true
			}
		}
	}
	return -1, false
}

// AllComplete reports whether every task index has been drawn and marked
// done — the cycle's termination condition. Because contributions are
// pushed before their done-mark, a rank observing AllComplete may safely
// read the full shared result.
func (l *LeaseDLB) AllComplete() bool {
	if l.ctx.Comm.CounterLoad(l.curW, 0) < int64(l.total) {
		return false
	}
	for i := 0; i < l.total; i++ {
		if l.ctx.Comm.CounterLoad(l.stateW, i) != leaseDone {
			return false
		}
	}
	return true
}

// Outstanding counts tasks not yet done — leased or unclaimed — for
// progress reporting and tests.
func (l *LeaseDLB) Outstanding() int {
	n := 0
	for i := 0; i < l.total; i++ {
		if l.ctx.Comm.CounterLoad(l.stateW, i) != leaseDone {
			n++
		}
	}
	return n
}
