package ddi

// Lease-based dynamic load balancing: the fault-aware DLB mode.
//
// The classic dlbnext counter hands out each task index exactly once and
// forgets it — if the drawing rank dies, the index dies with it and the
// Fock matrix silently loses those quartets' contributions. Following the
// task re-issue idea from dynamic-distribution Hartree-Fock work (HONPAS;
// see PAPERS.md), a lease cycle instead tracks per-task state in a shared
// counter window:
//
//	0        free       — not yet claimed by anyone
//	rank+1   leased     — claimed by that world rank, result not pushed
//	-(rank+2) committing — that rank won the commit race and is pushing
//	-1       done       — contribution pushed to the shared result
//
// Ranks draw indices from a cursor (one-sided fetch-and-add, exactly like
// dlbnext) and claim them with a CAS. Publication is two-phase: a rank
// first Reserves the slot (CAS owner → committing), then pushes its
// contribution, then Finishes (CAS committing → done). Exactly-once
// completion rests on two invariants:
//
//  1. Only the Reserve winner may push, and the done-mark follows its
//     push, so "done" implies "pushed exactly once" — the property
//     AllComplete readers rely on to read the full shared result.
//  2. Every slot transition is a CAS from a unique prior state. A
//     straggler's own commit, a hedger's speculative commit, an expiry
//     reclaim, and a post-failure steal all race through CAS on the same
//     slot; exactly one wins and every loser drops its (duplicate)
//     result. First writer wins, duplicates never double-count.
//
// Three re-issue paths give the lease table its straggler story
// (performance faults, not just crash faults):
//
//   - Steal: re-issue leases of ranks known DEAD (crash faults, PR 1).
//   - Expired: reclaim leases older than a TTL — deadline-based early
//     expiry for ranks that are unresponsive but not provably dead.
//   - Hedge: speculatively recompute a lease still held by a rank the
//     straggler detector flagged as slow, WITHOUT taking the lease away;
//     whoever finishes first commits, the other is deduplicated.
import (
	"fmt"
	"time"
)

const (
	leaseFree int64 = 0
	leaseDone int64 = -1
)

// LeaseDLB is one rank's handle to a lease-based DLB cycle.
type LeaseDLB struct {
	ctx     *Context
	cycle   int64
	total   int
	stateW  string       // per-task lease state, total slots
	tsW     string       // per-task claim timestamps (UnixNano), total slots
	curW    string       // draw cursor, 1 slot
	hedgeW  string       // per-task hedge-rights claims, total slots
	hedged  map[int]bool // task indices this rank already scanned past (local)
	hedgeAt int          // rolling scan offset for Hedge
}

// NewLeaseDLB starts a new lease cycle over task indices [0, total).
// Every rank of the communicator must call it once per cycle, in the same
// order, but — unlike DLBReset — it does NOT barrier: survivors of a rank
// failure can still open their handle and finish the cycle. Fresh windows
// per cycle make zeroing (and its races) unnecessary.
func (d *Context) NewLeaseDLB(total int) *LeaseDLB {
	d.leaseCycle++
	l := &LeaseDLB{ctx: d, cycle: d.leaseCycle, total: total}
	l.stateW = leaseWindowName(d.leaseCycle, "state")
	l.tsW = leaseWindowName(d.leaseCycle, "ts")
	l.curW = leaseWindowName(d.leaseCycle, "cur")
	l.hedgeW = leaseWindowName(d.leaseCycle, "hedge")
	l.hedged = make(map[int]bool)
	if size := d.Comm.Size(); size > 0 {
		// Desynchronize hedger scans so concurrent hedgers fan out over
		// different slots instead of piling on the lowest leased index.
		l.hedgeAt = d.Comm.Rank() * (total/size + 1)
	}
	if total > 0 {
		d.Comm.WinCreateCounters(l.stateW, total)
		d.Comm.WinCreateCounters(l.tsW, total)
		d.Comm.WinCreateCounters(l.hedgeW, total)
	}
	return l
}

func leaseWindowName(cycle int64, part string) string {
	return fmt.Sprintf("ddi.lease.%s.%d", part, cycle)
}

// Total returns the number of task indices in the cycle.
func (l *LeaseDLB) Total() int { return l.total }

// Cycle returns the cycle sequence number, usable to key per-cycle
// companion windows (e.g. a shared Fock accumulation buffer).
func (l *LeaseDLB) Cycle() int64 { return l.cycle }

func (l *LeaseDLB) me() int64         { return int64(l.ctx.Comm.Rank()) + 1 }
func (l *LeaseDLB) committing() int64 { return -(int64(l.ctx.Comm.Rank()) + 2) }

// stamp records the claim time of a freshly (re-)leased slot, the clock
// the TTL expiry path reads.
func (l *LeaseDLB) stamp(idx int) {
	l.ctx.Comm.CounterStore(l.tsW, idx, time.Now().UnixNano())
}

// Next draws and claims the next fresh task index. ok is false once the
// cursor is exhausted — switch to Steal/Hedge then. A drawn index whose
// claim is lost to a concurrent steal is skipped and the draw retried, so
// a returned index is always exclusively owned by this rank.
func (l *LeaseDLB) Next() (idx int, ok bool) {
	tel := l.ctx.Comm.Telemetry()
	tel.Counter("ddi.lease.draws").Add(1)
	defer tel.TimedOp("dlb.draw", "lease-next", l.ctx.Comm.Rank(), 0)()
	for {
		v := l.ctx.Comm.FetchAdd(l.curW, 0, 1)
		if v >= int64(l.total) {
			return -1, false
		}
		if l.ctx.Comm.CounterCAS(l.stateW, int(v), leaseFree, l.me()) {
			l.stamp(int(v))
			return int(v), true
		}
	}
}

// DrawChunk draws and claims up to n consecutive fresh indices in ONE
// cursor fetch-and-add — the coarse-grained draw that makes straggler
// damage visible (a slow rank holding a chunk stalls the whole tail) and
// hedging therefore worthwhile. Returns the claimed indices; empty once
// the cursor is exhausted.
func (l *LeaseDLB) DrawChunk(n int) []int {
	if n <= 0 {
		return nil
	}
	tel := l.ctx.Comm.Telemetry()
	tel.Counter("ddi.lease.draws").Add(1)
	v := l.ctx.Comm.FetchAdd(l.curW, 0, int64(n))
	if v >= int64(l.total) {
		return nil
	}
	hi := v + int64(n)
	if hi > int64(l.total) {
		hi = int64(l.total)
	}
	idxs := make([]int, 0, hi-v)
	for i := v; i < hi; i++ {
		if l.ctx.Comm.CounterCAS(l.stateW, int(i), leaseFree, l.me()) {
			l.stamp(int(i))
			idxs = append(idxs, int(i))
		}
	}
	return idxs
}

// Reserve opens the commit critical section for a task: it CASes the
// slot from "leased by owner" to "committing by me". Only the winner may
// push the task's contribution to the shared result; it must then call
// Finish. owner is the world rank whose lease is being committed — the
// caller itself for its own draws, the straggler for a hedged recompute.
// A false return means someone else already committed (or is committing)
// the task: the caller MUST drop its duplicate result.
func (l *LeaseDLB) Reserve(idx, owner int) bool {
	if l.ctx.Comm.CounterCAS(l.stateW, idx, int64(owner)+1, l.committing()) {
		return true
	}
	if tel := l.ctx.Comm.Telemetry(); tel != nil {
		tel.Counter("dlb.dedup_dropped").Add(1)
	}
	return false
}

// Finish closes the commit critical section opened by a successful
// Reserve: the pushed contribution becomes visible as done.
func (l *LeaseDLB) Finish(idx int) {
	if !l.ctx.Comm.CounterCAS(l.stateW, idx, l.committing(), leaseDone) {
		panic(fmt.Sprintf("ddi: lease %d finish without reserve (rank %d)", idx, l.ctx.Comm.Rank()))
	}
}

// Complete is the one-shot Reserve+Finish for callers that pushed their
// contribution before committing (safe only when nothing hedges the
// task concurrently — the resilient Fock builder uses the explicit
// Reserve → push → Finish sequence instead). Reports whether this rank
// won the commit.
func (l *LeaseDLB) Complete(idx int) bool {
	if !l.Reserve(idx, l.ctx.Comm.Rank()) {
		return false
	}
	l.Finish(idx)
	return true
}

// Done reports whether the task's contribution is already committed.
func (l *LeaseDLB) Done(idx int) bool {
	return l.ctx.Comm.CounterLoad(l.stateW, idx) == leaseDone
}

// Mine reports whether the task's lease is still held by this rank. A
// straggler polling it before starting each remaining task of a drawn
// chunk can skip work a hedger has already committed (or an expiry has
// reclaimed) instead of computing a result that would only be dropped.
func (l *LeaseDLB) Mine(idx int) bool {
	return l.ctx.Comm.CounterLoad(l.stateW, idx) == l.me()
}

// Steal re-issues one task abandoned by a failed rank: either still
// leased by a rank now known dead, or drawn but never claimed (the owner
// died between its draw and its claim — such slots sit free BEHIND the
// cursor). Returns ok=false when there is nothing to steal right now;
// poll AllComplete to distinguish "nothing ever" from "peers still
// working". Committing slots are never stolen — under the fault model
// ranks die at communication events, not inside the push critical
// section, so a committing slot always reaches done.
func (l *LeaseDLB) Steal() (idx int, ok bool) {
	failed := l.ctx.Comm.FailedRanks()
	if len(failed) == 0 {
		return -1, false
	}
	dead := make(map[int64]bool, len(failed))
	for _, r := range failed {
		dead[int64(r)+1] = true
	}
	cur := l.ctx.Comm.CounterLoad(l.curW, 0)
	if cur > int64(l.total) {
		cur = int64(l.total)
	}
	for i := int64(0); i < cur; i++ {
		s := l.ctx.Comm.CounterLoad(l.stateW, int(i))
		if s == leaseFree || dead[s] {
			if l.ctx.Comm.CounterCAS(l.stateW, int(i), s, l.me()) {
				l.stamp(int(i))
				if tel := l.ctx.Comm.Telemetry(); tel != nil {
					tel.Counter("ddi.lease.steals").Add(1)
					tel.Counter("dlb.reissued").Add(1)
					tel.Instant("recovery.reissue", "lease-steal", l.ctx.Comm.Rank(), 0,
						map[string]any{"task": int(i), "from": s - 1})
				}
				return int(i), true
			}
		}
	}
	return -1, false
}

// Expired reclaims one lease older than ttl held by another rank —
// deadline-based early expiry for a peer that is unresponsive but not
// provably dead. The lease transfers to the caller (restamped), so the
// reclaimed task flushes through the normal own-draw path; if the
// original owner wakes up and finishes anyway, its commit loses the
// Reserve race and is deduplicated. ttl <= 0 disables expiry.
func (l *LeaseDLB) Expired(ttl time.Duration) (idx int, ok bool) {
	if ttl <= 0 {
		return -1, false
	}
	now := time.Now().UnixNano()
	for i := 0; i < l.total; i++ {
		s := l.ctx.Comm.CounterLoad(l.stateW, i)
		if s <= 0 || s == l.me() {
			continue
		}
		ts := l.ctx.Comm.CounterLoad(l.tsW, i)
		if ts == 0 || now-ts < ttl.Nanoseconds() {
			continue
		}
		if l.ctx.Comm.CounterCAS(l.stateW, i, s, l.me()) {
			l.stamp(i)
			if tel := l.ctx.Comm.Telemetry(); tel != nil {
				tel.Counter("ddi.lease.expired").Add(1)
				tel.Counter("dlb.reissued").Add(1)
				tel.Instant("recovery.reissue", "lease-expired", l.ctx.Comm.Rank(), 0,
					map[string]any{"task": i, "from": s - 1})
			}
			return i, true
		}
	}
	return -1, false
}

// Hedge picks one task still leased by a rank in slow (world ranks, from
// the straggler detector) for speculative recomputation. The lease is
// NOT transferred — the straggler keeps computing — so commit is a fair
// race: whichever copy Reserves first wins, the other is deduplicated.
// Hedge rights are claimed through a shared window CAS, so at most ONE
// speculative copy of a task ever runs cluster-wide: concurrent hedgers
// spread over different tasks instead of all recomputing the same ones
// (which would trade the straggler's tail for redundant-compute tail).
// The scan starts at a rank-dependent rolling offset so hedgers probe
// disjoint regions first. Returns the task index and the straggler's
// rank to pass to Reserve.
func (l *LeaseDLB) Hedge(slow []int) (idx, owner int, ok bool) {
	if len(slow) == 0 || l.total == 0 {
		return -1, -1, false
	}
	slowSet := make(map[int64]bool, len(slow))
	for _, r := range slow {
		if r != l.ctx.Comm.Rank() {
			slowSet[int64(r)+1] = true
		}
	}
	if len(slowSet) == 0 {
		return -1, -1, false
	}
	for n := 0; n < l.total; n++ {
		i := (l.hedgeAt + n) % l.total
		if l.hedged[i] {
			continue
		}
		s := l.ctx.Comm.CounterLoad(l.stateW, i)
		if !slowSet[s] {
			continue
		}
		if !l.ctx.Comm.CounterCAS(l.hedgeW, i, 0, l.me()) {
			// Another rank already holds this task's hedge rights.
			l.hedged[i] = true
			continue
		}
		l.hedged[i] = true
		l.hedgeAt = (i + 1) % l.total
		if tel := l.ctx.Comm.Telemetry(); tel != nil {
			tel.Counter("dlb.hedged").Add(1)
			tel.Counter("dlb.reissued").Add(1)
			tel.Instant("recovery.reissue", "lease-hedge", l.ctx.Comm.Rank(), 0,
				map[string]any{"task": i, "owner": s - 1})
		}
		return i, int(s - 1), true
	}
	return -1, -1, false
}

// AllComplete reports whether every task index has been drawn and marked
// done — the cycle's termination condition. Because contributions are
// pushed inside the Reserve→Finish critical section, a rank observing
// AllComplete may safely read the full shared result.
func (l *LeaseDLB) AllComplete() bool {
	if l.ctx.Comm.CounterLoad(l.curW, 0) < int64(l.total) {
		return false
	}
	for i := 0; i < l.total; i++ {
		if l.ctx.Comm.CounterLoad(l.stateW, i) != leaseDone {
			return false
		}
	}
	return true
}

// Outstanding counts tasks not yet done — leased, committing, or
// unclaimed — for progress reporting and tests.
func (l *LeaseDLB) Outstanding() int {
	n := 0
	for i := 0; i < l.total; i++ {
		if l.ctx.Comm.CounterLoad(l.stateW, i) != leaseDone {
			n++
		}
	}
	return n
}
