package ddi

// Straggler-detector edge cases: every case here is a world where
// flagging ANY rank would be wrong, and a false positive is expensive —
// under the elastic runtime a flagged rank triggers a migration restart.
// A healthy uniform world, a world still inside the EWMA warm-up, and a
// single surviving rank must all flag nothing.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
)

// collectFlags runs a world of the given size where every rank observes
// its per-rank latency sequence, then reads the detector back on every
// rank.
func collectFlags(t *testing.T, ranks int, latency func(rank int) []time.Duration,
	k float64, minSamples int64, epoch int64) map[int][]int {
	t.Helper()
	var mu sync.Mutex
	flagged := make(map[int][]int)
	err := mpi.Run(ranks, func(c *mpi.Comm) {
		dx := New(c)
		dx.SetMembershipEpoch(epoch)
		for _, lat := range latency(c.Rank()) {
			dx.ObserveTaskLatency(lat)
		}
		c.Barrier()
		got := dx.Stragglers(k, minSamples)
		mu.Lock()
		flagged[c.Rank()] = got
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	return flagged
}

// TestStragglerAllEqualFlagsNothing: a perfectly uniform world has no
// straggler — every EWMA equals the median exactly, and k·median must
// not flag it.
func TestStragglerAllEqualFlagsNothing(t *testing.T) {
	const ranks = 4
	uniform := func(int) []time.Duration {
		return []time.Duration{10 * time.Millisecond, 10 * time.Millisecond,
			10 * time.Millisecond, 10 * time.Millisecond}
	}
	for rank, got := range collectFlags(t, ranks, uniform, 2, 3, 0) {
		if len(got) != 0 {
			t.Fatalf("rank %d flagged %v in a uniform world", rank, got)
		}
	}
}

// TestStragglerBelowWarmupFlagsNothing: with fewer samples than the
// EWMA warm-up floor, even a rank publishing 100× latencies is noise,
// not signal — one cold-cache task must not trigger a migration.
func TestStragglerBelowWarmupFlagsNothing(t *testing.T) {
	const ranks = 4
	warmup := func(rank int) []time.Duration {
		lat := time.Millisecond
		if rank == 1 {
			lat = 100 * time.Millisecond
		}
		return []time.Duration{lat, lat} // 2 samples < minSamples 3
	}
	for rank, got := range collectFlags(t, ranks, warmup, 2, 3, 0) {
		if len(got) != 0 {
			t.Fatalf("rank %d flagged %v inside the warm-up window", rank, got)
		}
	}
}

// TestStragglerSingleRankFlagsNothing: a single surviving rank has no
// peers to be slower than; the detector needs at least two qualified
// ranks before a median is meaningful.
func TestStragglerSingleRankFlagsNothing(t *testing.T) {
	slowAlone := func(int) []time.Duration {
		return []time.Duration{50 * time.Millisecond, 60 * time.Millisecond,
			70 * time.Millisecond, 80 * time.Millisecond}
	}
	for rank, got := range collectFlags(t, 1, slowAlone, 2, 3, 0) {
		if len(got) != 0 {
			t.Fatalf("rank %d flagged %v with no peers", rank, got)
		}
	}
}

// TestStragglerEpochKeyedWindow: after a membership change the detector
// must read the new epoch's window, not the old world's — a rank that
// was slow before a migration starts the new epoch with a clean slate.
func TestStragglerEpochKeyedWindow(t *testing.T) {
	const ranks, slow = 4, 1
	var mu sync.Mutex
	before := make(map[int][]int)
	after := make(map[int][]int)
	err := mpi.Run(ranks, func(c *mpi.Comm) {
		dx := New(c)
		dx.SetMembershipEpoch(0)
		lat := 5 * time.Millisecond
		if c.Rank() == slow {
			lat = 100 * time.Millisecond
		}
		for i := 0; i < 4; i++ {
			dx.ObserveTaskLatency(lat)
		}
		c.Barrier()
		got := dx.Stragglers(2, 3)
		mu.Lock()
		before[c.Rank()] = got
		mu.Unlock()
		c.Barrier()

		// Membership epoch advances (the migration re-hosted the slow
		// rank): a fresh detector keyed to the new epoch sees no samples.
		fresh := New(c)
		fresh.SetMembershipEpoch(1)
		got = fresh.Stragglers(2, 3)
		mu.Lock()
		after[c.Rank()] = got
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < ranks; r++ {
		if len(before[r]) != 1 || before[r][0] != slow {
			t.Fatalf("epoch 0: rank %d flagged %v, want [%d]", r, before[r], slow)
		}
		if len(after[r]) != 0 {
			t.Fatalf("epoch 1: rank %d still flags %v from the stale window", r, after[r])
		}
	}
}
