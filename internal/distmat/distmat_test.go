package distmat

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ddi"
	"repro/internal/linalg"
	"repro/internal/mpi"
)

func randSym(n int, seed int64) *linalg.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := linalg.NewSquare(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func randDense(n int, seed int64) *linalg.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := linalg.NewSquare(n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// onWorld runs f on every rank of a world of the given size with a grid
// and DDI context prepared.
func onWorld(t *testing.T, size int, f func(g *Grid, dx *ddi.Context)) {
	t.Helper()
	if err := mpi.Run(size, func(c *mpi.Comm) {
		f(NewGrid(c.Rank(), c.Size()), ddi.New(c))
	}); err != nil {
		t.Fatalf("mpi.Run: %v", err)
	}
}

func TestFactor2D(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 2: {2, 1}, 4: {2, 2}, 6: {3, 2}, 7: {7, 1}, 12: {4, 3}, 16: {4, 4}}
	for p, want := range cases {
		pr, pc := Factor2D(p)
		if pr != want[0] || pc != want[1] {
			t.Errorf("Factor2D(%d) = %dx%d, want %dx%d", p, pr, pc, want[0], want[1])
		}
		if pr*pc != p {
			t.Errorf("Factor2D(%d): %d*%d != %d", p, pr, pc, p)
		}
	}
}

func TestOwnershipPartition(t *testing.T) {
	// Every tile has exactly one owner; ownership covers all ranks for a
	// big enough block dimension.
	onWorld(t, 4, func(g *Grid, dx *ddi.Context) {
		m := New(g, dx, 17, 3)
		if dx.Comm.Rank() != 0 {
			return
		}
		seen := make([]int, dx.Comm.Size())
		for bi := 0; bi < m.NB; bi++ {
			for bj := 0; bj < m.NB; bj++ {
				o := m.OwnerOf(bi, bj)
				if o < 0 || o >= dx.Comm.Size() {
					t.Errorf("tile (%d,%d) owner %d out of range", bi, bj, o)
				}
				seen[o]++
			}
		}
		total := 0
		for r, c := range seen {
			if c == 0 {
				t.Errorf("rank %d owns no tiles", r)
			}
			total += c
		}
		if total != m.NB*m.NB {
			t.Errorf("ownership covers %d tiles, want %d", total, m.NB*m.NB)
		}
	})
}

func TestScatterGatherRoundTrip(t *testing.T) {
	for _, n := range []int{1, 5, 16, 23} {
		d := randSym(n, int64(n))
		onWorld(t, 4, func(g *Grid, dx *ddi.Context) {
			m := New(g, dx, n, 0)
			if err := m.ScatterDense(d); err != nil {
				t.Errorf("scatter n=%d: %v", n, err)
				return
			}
			got, err := m.GatherVerified()
			if err != nil {
				t.Errorf("gather n=%d: %v", n, err)
				return
			}
			if diff := got.MaxAbsDiff(d); diff != 0 {
				t.Errorf("n=%d round trip differs by %g", n, diff)
			}
		})
	}
}

func TestScatterRejectsDivergentReplicas(t *testing.T) {
	n := 6
	onWorld(t, 3, func(g *Grid, dx *ddi.Context) {
		d := randSym(n, 7)
		if dx.Comm.Rank() == 1 {
			d.Set(2, 3, d.At(2, 3)+1e-9) // one rank drifted
		}
		m := New(g, dx, n, 2)
		if err := m.ScatterDense(d); err == nil {
			t.Errorf("rank %d: scatter accepted divergent replicas", dx.Comm.Rank())
		}
	})
}

func TestAtAndZero(t *testing.T) {
	n := 9
	d := randSym(n, 3)
	onWorld(t, 4, func(g *Grid, dx *ddi.Context) {
		m := New(g, dx, n, 2)
		if err := m.ScatterDense(d); err != nil {
			t.Fatalf("scatter: %v", err)
		}
		// Errorf, not Fatalf: a per-rank Goexit before the collective Zero
		// would deadlock the surviving ranks in its barrier.
	scan:
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got := m.At(i, j); got != d.At(i, j) {
					t.Errorf("At(%d,%d) = %g, want %g", i, j, got, d.At(i, j))
					break scan
				}
			}
		}
		m.Zero()
		if got := FrobeniusNorm(m); got != 0 {
			t.Fatalf("after Zero, ||m|| = %g", got)
		}
	})
}

func TestMatMulMatchesDense(t *testing.T) {
	for _, tc := range []struct{ n, bs, ranks int }{
		{7, 2, 4}, {12, 3, 6}, {16, 4, 4}, {10, 0, 2},
	} {
		a := randDense(tc.n, 11)
		b := randDense(tc.n, 13)
		want := linalg.Mul(a, b)
		onWorld(t, tc.ranks, func(g *Grid, dx *ddi.Context) {
			da := New(g, dx, tc.n, tc.bs)
			db := New(g, dx, tc.n, tc.bs)
			dc := New(g, dx, tc.n, tc.bs)
			if err := da.ScatterDense(a); err != nil {
				t.Fatalf("scatter a: %v", err)
			}
			if err := db.ScatterDense(b); err != nil {
				t.Fatalf("scatter b: %v", err)
			}
			MatMul(dc, da, db)
			got, err := dc.GatherVerified()
			if err != nil {
				t.Fatalf("gather: %v", err)
			}
			if diff := got.MaxAbsDiff(want); diff > 1e-12 {
				t.Errorf("n=%d bs=%d ranks=%d: MatMul differs from dense by %g",
					tc.n, tc.bs, tc.ranks, diff)
			}
		})
	}
}

func TestReductionsMatchDense(t *testing.T) {
	n := 11
	a := randSym(n, 17)
	b := randSym(n, 19)
	onWorld(t, 4, func(g *Grid, dx *ddi.Context) {
		da := New(g, dx, n, 3)
		db := New(g, dx, n, 3)
		if err := da.ScatterDense(a); err != nil {
			t.Fatalf("scatter: %v", err)
		}
		if err := db.ScatterDense(b); err != nil {
			t.Fatalf("scatter: %v", err)
		}
		if got, want := Trace(da), a.Trace(); math.Abs(got-want) > 1e-12 {
			t.Errorf("Trace = %g, want %g", got, want)
		}
		if got, want := Dot(da, db), linalg.Dot(a, b); math.Abs(got-want) > 1e-10 {
			t.Errorf("Dot = %g, want %g", got, want)
		}
		if got, want := FrobeniusNorm(da), a.FrobeniusNorm(); math.Abs(got-want) > 1e-12 {
			t.Errorf("FrobeniusNorm = %g, want %g", got, want)
		}
		if got, want := RMSDiff(da, db), a.RMSDiff(b); math.Abs(got-want) > 1e-12 {
			t.Errorf("RMSDiff = %g, want %g", got, want)
		}

		// Gershgorin must bracket the true spectrum.
		lo, hi := Gershgorin(da)
		eigs, _ := linalg.EigenSym(a.Clone())
		for _, e := range eigs {
			if e < lo-1e-12 || e > hi+1e-12 {
				t.Errorf("eigenvalue %g outside Gershgorin [%g, %g]", e, lo, hi)
			}
		}
	})
}

func TestElementwiseOps(t *testing.T) {
	n := 8
	a := randDense(n, 23)
	b := randDense(n, 29)
	onWorld(t, 4, func(g *Grid, dx *ddi.Context) {
		da := New(g, dx, n, 3)
		db := New(g, dx, n, 3)
		dc := New(g, dx, n, 3)
		if err := da.ScatterDense(a); err != nil {
			t.Fatalf("scatter: %v", err)
		}
		if err := db.ScatterDense(b); err != nil {
			t.Fatalf("scatter: %v", err)
		}

		// y = 2x - 3y
		Copy(dc, db)
		Axpby(dc, da, 2, -3)
		want := a.Clone()
		want.Scale(2)
		want.AxpyFrom(-3, b)
		got, err := dc.GatherVerified()
		if err != nil {
			t.Fatalf("gather: %v", err)
		}
		if diff := got.MaxAbsDiff(want); diff > 1e-13 {
			t.Errorf("Axpby differs by %g", diff)
		}

		// AddScaledIdentity
		Copy(dc, da)
		AddScaledIdentity(dc, 0.5)
		want = a.Clone()
		for i := 0; i < n; i++ {
			want.Add(i, i, 0.5)
		}
		got, err = dc.GatherVerified()
		if err != nil {
			t.Fatalf("gather: %v", err)
		}
		if diff := got.MaxAbsDiff(want); diff > 1e-13 {
			t.Errorf("AddScaledIdentity differs by %g", diff)
		}

		// AntiSymmetrize: e = a - a^T
		AntiSymmetrize(dc, da)
		want = a.Clone()
		want.AxpyFrom(-1, a.Transpose())
		got, err = dc.GatherVerified()
		if err != nil {
			t.Fatalf("gather: %v", err)
		}
		if diff := got.MaxAbsDiff(want); diff > 1e-13 {
			t.Errorf("AntiSymmetrize differs by %g", diff)
		}

		// LinearCombine with aliasing: dc = 0.25*dc + 0.75*da
		lcWant := got.Clone()
		lcWant.Scale(0.25)
		lcWant.AxpyFrom(0.75, a)
		LinearCombine(dc, []float64{0.25, 0.75}, []*BlockMat{dc, da})
		got, err = dc.GatherVerified()
		if err != nil {
			t.Fatalf("gather: %v", err)
		}
		if diff := got.MaxAbsDiff(lcWant); diff > 1e-13 {
			t.Errorf("aliased LinearCombine differs by %g", diff)
		}
	})
}

func TestUnfoldLower(t *testing.T) {
	n := 10
	onWorld(t, 4, func(g *Grid, dx *ddi.Context) {
		m := New(g, dx, n, 3)
		// Accumulate a known lower triangle via AccTile-backed TileAccum.
		acc := NewTileAccum(m, 0)
		me := dx.Comm.Rank()
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				// Every rank contributes a share of each element.
				acc.AddLower(i, j, float64(i*n+j)/float64(dx.Comm.Size()))
				_ = me
			}
		}
		acc.Flush()
		UnfoldLower(m)
		got, err := m.GatherVerified()
		if err != nil {
			t.Fatalf("gather: %v", err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				want := float64(i*n + j)
				if math.Abs(got.At(i, j)-want) > 1e-12 || math.Abs(got.At(j, i)-want) > 1e-12 {
					t.Fatalf("element (%d,%d): got %g / %g, want %g", i, j, got.At(i, j), got.At(j, i), want)
				}
			}
		}
	})
}

func TestTileReaderBoundedAndCorrect(t *testing.T) {
	n := 12
	d := randSym(n, 31)
	onWorld(t, 4, func(g *Grid, dx *ddi.Context) {
		m := New(g, dx, n, 2) // 6x6 = 36 tiles
		if err := m.ScatterDense(d); err != nil {
			t.Fatalf("scatter: %v", err)
		}
		r := NewTileReader(m, 5)
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if got := r.At(i, j); got != d.At(i, j) {
						t.Fatalf("reader At(%d,%d) = %g, want %g", i, j, got, d.At(i, j))
					}
				}
			}
		}
		if r.PeakBytes() > 5*2*2*8 {
			t.Errorf("reader exceeded its budget: peak %d bytes", r.PeakBytes())
		}
		if r.Evictions == 0 {
			t.Errorf("capacity 5 over 36 tiles should have evicted")
		}
		r.Reset()
		if got := r.At(0, 0); got != d.At(0, 0) {
			t.Errorf("after Reset, At = %g, want %g", got, d.At(0, 0))
		}
	})
}

func TestTileAccumSpills(t *testing.T) {
	n := 12
	onWorld(t, 2, func(g *Grid, dx *ddi.Context) {
		m := New(g, dx, n, 2)
		a := NewTileAccum(m, 4)
		if dx.Comm.Rank() == 0 {
			for i := 0; i < n; i++ {
				for j := 0; j <= i; j++ {
					a.AddLower(j, i, 1) // non-canonical order on purpose
				}
			}
		}
		a.Flush()
		dx.Comm.Barrier()
		if dx.Comm.Rank() == 0 && a.Spills == 0 {
			t.Errorf("capacity 4 over %d dirty tiles should have spilled", m.NB*(m.NB+1)/2)
		}
		got, err := m.GatherVerified()
		if err != nil {
			t.Fatalf("gather: %v", err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if got.At(i, j) != 1 {
					t.Fatalf("element (%d,%d) = %g, want 1", i, j, got.At(i, j))
				}
			}
		}
	})
}

func TestPerRankTileBytes(t *testing.T) {
	// 66 basis functions on 16 ranks, bs 9: 8x8 blocks, 4 tiles/rank.
	if got, want := PerRankTileBytes(66, 16, 9), int64(4*9*9*8); got != want {
		t.Errorf("PerRankTileBytes(66,16,9) = %d, want %d", got, want)
	}
	// Distributed storage must undercut one replicated square matrix for
	// any nontrivial rank count.
	for _, ranks := range []int{4, 16, 64} {
		n := 660
		repl := int64(n) * int64(n) * 8
		if got := PerRankTileBytes(n, ranks, 0); got*int64(ranks) > 2*repl || got >= repl {
			t.Errorf("PerRankTileBytes(%d,%d) = %d: not a distribution win vs %d replicated",
				n, ranks, got, repl)
		}
	}
}
