package distmat

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ddi"
	"repro/internal/linalg"
)

// gappedSym builds a symmetric n x n matrix with a clean spectral gap
// after the first nocc eigenvalues: diag(-1 ... -1, +1 ... +1) plus a
// small symmetric perturbation well under half the gap, so the
// occupied/virtual split is unambiguous for both the eigensolver and
// purification.
func gappedSym(n, nocc int, seed int64) *linalg.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := linalg.NewSquare(n)
	for i := 0; i < n; i++ {
		if i < nocc {
			m.Set(i, i, -1)
		} else {
			m.Set(i, i, 1)
		}
		for j := 0; j < i; j++ {
			v := 0.05 * rng.NormFloat64() / float64(n)
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// densityFromEig is the eigensolver's density build for an orthonormal
// Fock: D' = 2 C_occ C_occ^T.
func densityFromEig(fp *linalg.Matrix, nocc int) *linalg.Matrix {
	_, c := linalg.EigenSym(fp.Clone())
	n := fp.Rows
	d := linalg.NewSquare(n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			sum := 0.0
			for o := 0; o < nocc; o++ {
				sum += c.At(a, o) * c.At(b, o)
			}
			d.Set(a, b, 2*sum)
		}
	}
	return d
}

func TestSP2DenseMatchesEigensolve(t *testing.T) {
	for _, tc := range []struct{ n, nocc int }{{6, 2}, {12, 5}, {20, 7}} {
		fp := gappedSym(tc.n, tc.nocc, int64(tc.n))
		want := densityFromEig(fp, tc.nocc)
		got, st, err := SP2Dense(fp, tc.nocc, 1e-13, 100)
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		if !st.Converged || st.Sweeps == 0 {
			t.Fatalf("n=%d: not converged (%+v)", tc.n, st)
		}
		if diff := got.MaxAbsDiff(want); diff > 1e-8 {
			t.Errorf("n=%d: purified density differs from eigensolve by %g", tc.n, diff)
		}
		if tr := got.Trace(); math.Abs(tr-2*float64(tc.nocc)) > 1e-8 {
			t.Errorf("n=%d: tr D' = %g, want %d", tc.n, tr, 2*tc.nocc)
		}
	}
}

func TestPurifyDistributedMatchesDense(t *testing.T) {
	n, nocc := 14, 5
	fp := gappedSym(n, nocc, 42)
	want, _, err := SP2Dense(fp, nocc, 1e-13, 100)
	if err != nil {
		t.Fatalf("dense reference: %v", err)
	}
	for _, ranks := range []int{1, 4, 6} {
		onWorld(t, ranks, func(g *Grid, dx *ddi.Context) {
			dfp := New(g, dx, n, 4)
			dst := New(g, dx, n, 4)
			xsq := New(g, dx, n, 4)
			if err := dfp.ScatterDense(fp); err != nil {
				t.Fatalf("scatter: %v", err)
			}
			st, err := Purify(dst, dfp, xsq, nocc, 1e-13, 100)
			if err != nil {
				t.Fatalf("ranks=%d: %v", ranks, err)
			}
			if !st.Converged {
				t.Fatalf("ranks=%d: not converged (%+v)", ranks, st)
			}
			got, err := dst.GatherVerified()
			if err != nil {
				t.Fatalf("gather: %v", err)
			}
			// The distributed path runs the identical algorithm with
			// deterministic reductions; only multiply-order roundoff
			// separates it from the dense oracle.
			if diff := got.MaxAbsDiff(want); diff > 1e-10 {
				t.Errorf("ranks=%d: distributed purification differs from dense by %g", ranks, diff)
			}
		})
	}
}

func TestPurifyInvariantsAndFailure(t *testing.T) {
	// A gapless spectrum with nocc cutting through a degenerate shell is
	// SP2's pathological case; with a tiny sweep budget it must report
	// non-convergence rather than hand back a bogus density.
	n := 8
	fp := linalg.Identity(n) // every eigenvalue 1, "occupy" half
	onWorld(t, 2, func(g *Grid, dx *ddi.Context) {
		dfp := New(g, dx, n, 3)
		dst := New(g, dx, n, 3)
		xsq := New(g, dx, n, 3)
		if err := dfp.ScatterDense(fp); err != nil {
			t.Fatalf("scatter: %v", err)
		}
		if _, err := Purify(dst, dfp, xsq, n/2, 1e-13, 5); err == nil {
			t.Errorf("purification of a gapless spectrum with 5 sweeps should fail")
		}
	})
}

func TestPurifySweepCounterTelemetry(t *testing.T) {
	n, nocc := 10, 3
	fp := gappedSym(n, nocc, 9)
	onWorld(t, 2, func(g *Grid, dx *ddi.Context) {
		dfp := New(g, dx, n, 3)
		dst := New(g, dx, n, 3)
		xsq := New(g, dx, n, 3)
		if err := dfp.ScatterDense(fp); err != nil {
			t.Fatalf("scatter: %v", err)
		}
		if _, err := Purify(dst, dfp, xsq, nocc, 1e-13, 100); err != nil {
			t.Fatalf("purify: %v", err)
		}
		get, _, _ := dst.Traffic()
		if dx.Comm.Size() > 1 && get == 0 {
			t.Errorf("multi-rank purification moved no off-rank bytes through the iterate")
		}
	})
}
