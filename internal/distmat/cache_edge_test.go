package distmat

import (
	"testing"

	"repro/internal/ddi"
)

// TestTileReaderFrontSlotCollision pins the direct-mapped front cache's
// collision behavior: two tiles whose keys share low bits (key & 7)
// fight over one slot, and alternating reads must still return correct
// values (the slot is a cache, not the source of truth).
func TestTileReaderFrontSlotCollision(t *testing.T) {
	n := 18 // bs=2 -> NB=9, so tiles (0,0) key 0 and (0,8) key 8 collide on slot 0
	d := randDense(n, 3)
	onWorld(t, 4, func(g *Grid, dx *ddi.Context) {
		m := New(g, dx, n, 2)
		if err := m.ScatterDense(d); err != nil {
			t.Errorf("scatter: %v", err)
			return
		}
		if dx.Comm.Rank() != 0 {
			return
		}
		r := NewTileReader(m, 0)
		for rep := 0; rep < 4; rep++ {
			if got, want := r.At(0, 0), d.At(0, 0); got != want {
				t.Errorf("rep %d: At(0,0) = %v, want %v", rep, got, want)
			}
			if got, want := r.At(0, 16), d.At(0, 16); got != want {
				t.Errorf("rep %d: At(0,16) = %v, want %v", rep, got, want)
			}
		}
		// 2 misses (one per tile), the rest map-path hits despite the
		// front-slot ping-pong.
		if r.Misses != 2 {
			t.Errorf("Misses = %d, want 2", r.Misses)
		}
		if r.Hits != 6 {
			t.Errorf("Hits = %d, want 6", r.Hits)
		}
	})
}

// TestTileReaderEvictThenReread evicts a tile at capacity and re-reads
// it immediately: the re-read must refetch (a miss), return fresh data,
// and the eviction must have invalidated any front-cache slot still
// pointing at the evicted tile.
func TestTileReaderEvictThenReread(t *testing.T) {
	n := 20 // bs=2 -> NB=10
	d := randDense(n, 5)
	onWorld(t, 4, func(g *Grid, dx *ddi.Context) {
		m := New(g, dx, n, 2)
		if err := m.ScatterDense(d); err != nil {
			t.Errorf("scatter: %v", err)
			return
		}
		if dx.Comm.Rank() != 0 {
			return
		}
		r := NewTileReader(m, 4) // minimum capacity
		// Fill to capacity: tiles (0,0), (0,1), (0,2), (0,3).
		for j := 0; j < 8; j += 2 {
			r.At(0, j)
		}
		if r.Evictions != 0 {
			t.Fatalf("Evictions = %d before overflow", r.Evictions)
		}
		// Tile (0,4) evicts FIFO-first (0,0), whose key 4... key of
		// (0,0) is 0, front slot 0. Overwrite the source AFTER eviction
		// via a raw window write to prove the re-read refetches instead
		// of serving the stale front slot.
		r.At(0, 8)
		if r.Evictions != 1 {
			t.Fatalf("Evictions = %d, want 1", r.Evictions)
		}
		missesBefore := r.Misses
		buf := make([]float64, m.BS*m.BS)
		m.GetTile(0, 0, buf)
		buf[0] = 12345.5
		m.PutTile(0, 0, buf)
		if got := r.At(0, 0); got != 12345.5 {
			t.Errorf("re-read after eviction = %v, want the fresh 12345.5", got)
		}
		if r.Misses != missesBefore+1 {
			t.Errorf("re-read after eviction was not a miss (Misses %d -> %d)", missesBefore, r.Misses)
		}
	})
}

// TestTileAccumSpillFlushOrdering interleaves Add spills with reads of
// the destination: a spill-flush pushes combined contributions with
// AccTile, so re-dirtying a tile after its spill must still sum — not
// overwrite — and the final content equals the full contribution sum.
func TestTileAccumSpillFlushOrdering(t *testing.T) {
	n := 20 // bs=2 -> NB=10 tiles per row
	onWorld(t, 4, func(g *Grid, dx *ddi.Context) {
		m := New(g, dx, n, 2)
		m.Zero()
		if dx.Comm.Rank() == 0 {
			a := NewTileAccum(m, 4) // minimum capacity
			// Dirty 4 tiles, then a 5th to force a spill, then re-dirty
			// the first tile (already spilled) with a second contribution.
			for j := 0; j < 8; j += 2 {
				a.Add(0, j, 1.5)
			}
			a.Add(0, 8, 2.5) // spill: flushes the 4 buffered tiles
			if a.Spills != 1 {
				t.Errorf("Spills = %d, want 1", a.Spills)
			}
			// Mid-stream read sees the spilled value already landed.
			if got := m.At(0, 0); got != 1.5 {
				t.Errorf("after spill, At(0,0) = %v, want 1.5", got)
			}
			a.Add(0, 0, 2.0) // re-dirty after spill: must accumulate on top
			a.Flush()
			if got := m.At(0, 0); got != 3.5 {
				t.Errorf("re-dirtied tile = %v, want 1.5 + 2.0", got)
			}
			if got := m.At(0, 8); got != 2.5 {
				t.Errorf("spill-trigger tile = %v, want 2.5", got)
			}
			if got := m.At(0, 2); got != 1.5 {
				t.Errorf("spilled tile = %v, want 1.5", got)
			}
			// Flush is idempotent on a clean accumulator.
			flushes := a.Flushes
			a.Flush()
			if a.Flushes != flushes {
				t.Errorf("empty Flush issued AccTiles (%d -> %d)", flushes, a.Flushes)
			}
		}
		dx.Comm.Barrier()
	})
}

// TestTileReaderRetarget pins the double-buffer swap contract: after
// Retarget the reader serves the new matrix's values, with the old
// cache dropped.
func TestTileReaderRetarget(t *testing.T) {
	n := 8
	d1 := randDense(n, 21)
	d2 := randDense(n, 22)
	onWorld(t, 4, func(g *Grid, dx *ddi.Context) {
		a := New(g, dx, n, 2)
		b := New(g, dx, n, 2)
		if err := a.ScatterDense(d1); err != nil {
			t.Errorf("scatter: %v", err)
			return
		}
		if err := b.ScatterDense(d2); err != nil {
			t.Errorf("scatter: %v", err)
			return
		}
		if dx.Comm.Rank() != 0 {
			return
		}
		r := NewTileReader(a, 0)
		if got := r.At(3, 3); got != d1.At(3, 3) {
			t.Errorf("pre-retarget read = %v, want %v", got, d1.At(3, 3))
		}
		r.Retarget(b)
		if got := r.At(3, 3); got != d2.At(3, 3) {
			t.Errorf("post-retarget read = %v, want %v (stale cache?)", got, d2.At(3, 3))
		}
	})
}
