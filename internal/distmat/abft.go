package distmat

// Algorithm-based fault tolerance (Huang–Abraham style) for BlockMat.
//
// An ABFT matrix (NewABFT) maintains parity tiles alongside the data
// tiles: the NB block rows and NB block columns are each cut into
// grid-aligned parity groups, and every group owns one checksum tile
// equal to the element-wise sum of its members. Group shapes follow the
// block-cyclic distribution itself:
//
//   row group (bi, k), k in [0, KR), KR = ceil(NB/Pc): the tiles
//     T(bi, bj) for bj in [k*Pc, min((k+1)*Pc, NB)) — one member per
//     grid column, all members living on grid row bi mod Pr.
//   col group (bj, k), k in [0, KC), KC = ceil(NB/Pr): the tiles
//     T(bi, bj) for bi in [k*Pr, ...) — one member per grid row.
//
// Parity owners are deliberately placed OFF the members' grid row
// (resp. column): a single rank failure can therefore never take a data
// tile together with its row parity, so every lost tile is
// reconstructible as parity minus the surviving members (Salvage). The
// same invariant doubles as silent-data-corruption detection: a
// resident bit flip in a data tile leaves both its row and its column
// parity disagreeing with a fresh member sum, and the intersection of a
// mismatched row group with a mismatched column group localizes the
// corrupt tile, which AuditParity then repairs in place from the row
// parity (extending the integrity ladder of the SDC work to resident
// tile memory, not just messages in flight).
//
// Parity maintenance is transparent: PutTile turns into
// read-old/put-new/accumulate-delta and AccTile accumulates its addend
// into both parities. Both are safe under the single-writer-per-tile
// discipline every mutating collective in ops.go already follows.

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// Parity comparison tolerances. Delta-accumulation rounds differently
// than a fresh member sum, so exact equality is wrong; drift far below
// these bounds is floating-point noise, anything above is corruption.
// NaN never compares greater, so parityMismatch checks it explicitly.
const (
	abftRelTol = 1e-8
	abftAbsTol = 1e-10
)

// abftRefreshEvery paces the full parity-refresh phase of AuditParity: a
// clean audit (no mismatch anywhere) returns after detection, and only
// every abftRefreshEvery-th audit rewrites all parities to reset the
// floating-point drift that delta accumulation slowly builds up. Drift
// crossing the mismatch tolerance between refreshes is still caught —
// it reads as a (row) mismatch and forces the full phase that cycle.
const abftRefreshEvery = 32

// abftState carries the parity-group tables of one ABFT matrix.
// Row group (bi, k) indexes rowOwner/rowOff at bi*kr + k; column group
// (bj, k) indexes colOwner/colOff at bj*kc + k.
type abftState struct {
	kr, kc   int
	rowOwner []int
	rowOff   []int
	colOwner []int
	colOff   []int

	ownedParity  int      // parity tiles stored on the calling rank
	names        []string // per-rank parity window names, precomputed
	sinceRefresh int      // audits since the last full parity refresh
	parityBytes  atomic.Int64
	parityCtr    *telemetry.Counter
}

// rowParityOwner places the parity of row group (bi, k) on the grid row
// BELOW the members' row (all members of a row group live on grid row
// bi mod Pr), cycling columns with k so parity load spreads evenly.
// Factor2D gives Pr >= 2 whenever the world has >= 2 ranks, so the
// owner is off-row exactly when survival is possible at all.
func rowParityOwner(g *Grid, bi, k int) int {
	return ((bi%g.Pr+1)%g.Pr)*g.Pc + (bi+k)%g.Pc
}

// colParityOwner places the parity of column group (bj, k) on the grid
// column beside the members' column, cycling rows with k. When Pc == 1
// the owner degenerates onto the members' column, but in that geometry
// every row group has a single member, i.e. the row parity is a full
// off-row copy, so reconstruction never needs the column parity.
func colParityOwner(g *Grid, bj, k int) int {
	return ((bj+k)%g.Pr)*g.Pc + (bj%g.Pc+1)%g.Pc
}

// initABFT builds the parity owner/offset tables and creates the parity
// windows. Called inside the collective constructor, between its
// barriers; every rank computes the identical tables.
func (m *BlockMat) initABFT() {
	comm := m.Dx.Comm
	g := m.G
	ab := &abftState{
		kr: (m.NB + g.Pc - 1) / g.Pc,
		kc: (m.NB + g.Pr - 1) / g.Pr,
	}
	ab.names = make([]string, comm.Size())
	for r := range ab.names {
		ab.names[r] = fmt.Sprintf("dm.ab.%d.%d", m.id, r)
	}
	ab.parityCtr = comm.Telemetry().Counter("distmat.abft.parity.bytes")
	m.ab = ab // abWinName reads the name table from here on
	counts := make([]int, comm.Size())
	ab.rowOwner = make([]int, m.NB*ab.kr)
	ab.rowOff = make([]int, m.NB*ab.kr)
	for bi := 0; bi < m.NB; bi++ {
		for k := 0; k < ab.kr; k++ {
			o := rowParityOwner(g, bi, k)
			ab.rowOwner[bi*ab.kr+k] = o
			ab.rowOff[bi*ab.kr+k] = counts[o] * m.BS * m.BS
			counts[o]++
		}
	}
	ab.colOwner = make([]int, m.NB*ab.kc)
	ab.colOff = make([]int, m.NB*ab.kc)
	for bj := 0; bj < m.NB; bj++ {
		for k := 0; k < ab.kc; k++ {
			o := colParityOwner(g, bj, k)
			ab.colOwner[bj*ab.kc+k] = o
			ab.colOff[bj*ab.kc+k] = counts[o] * m.BS * m.BS
			counts[o]++
		}
	}
	ab.ownedParity = counts[comm.Rank()]
	for r, c := range counts {
		if c > 0 {
			comm.WinCreate(m.abWinName(r), c*m.BS*m.BS)
		}
	}
}

// ABFT reports whether the matrix maintains checksum tiles.
func (m *BlockMat) ABFT() bool { return m.ab != nil }

func (m *BlockMat) abWinName(rank int) string { return m.ab.names[rank] }

// ParityBytes returns the off-rank one-sided bytes this rank moved
// maintaining parity tiles since creation.
func (m *BlockMat) ParityBytes() int64 {
	if m.ab == nil {
		return 0
	}
	return m.ab.parityBytes.Load()
}

// rawGetTile / rawPutTile move a data tile without parity maintenance
// or traffic accounting — the audit/repair/salvage plumbing, which must
// read and write tiles whose parity already reflects the true value.
func (m *BlockMat) rawGetTile(bi, bj int, out []float64) {
	t := m.tileIndex(bi, bj)
	m.Dx.Comm.WinGet(m.winName(m.owner[t]), m.offset[t], out)
}

func (m *BlockMat) rawPutTile(bi, bj int, data []float64) {
	t := m.tileIndex(bi, bj)
	m.Dx.Comm.WinPut(m.winName(m.owner[t]), m.offset[t], data)
}

// accParity accumulates a tile delta into the row and column parity of
// tile (bi, bj).
func (m *BlockMat) accParity(bi, bj int, delta []float64) {
	ab := m.ab
	me := m.Dx.Comm.Rank()
	rk := bj / m.G.Pc
	ck := bi / m.G.Pr
	for _, p := range [2]struct{ owner, off int }{
		{ab.rowOwner[bi*ab.kr+rk], ab.rowOff[bi*ab.kr+rk]},
		{ab.colOwner[bj*ab.kc+ck], ab.colOff[bj*ab.kc+ck]},
	} {
		if p.owner != me {
			bytes := int64(len(delta)) * 8
			ab.parityBytes.Add(bytes)
			ab.parityCtr.Add(bytes)
		}
		m.Dx.Comm.WinAcc(m.abWinName(p.owner), p.off, delta)
	}
}

// zeroParity clears this rank's parity region (the ABFT leg of Zero:
// resetting parities alongside the data kills accumulated float drift
// instead of accumulating a -old delta on top of it).
func (m *BlockMat) zeroParity() {
	if m.ab.ownedParity == 0 {
		return
	}
	zeros := make([]float64, m.ab.ownedParity*m.BS*m.BS)
	m.Dx.Comm.WinPut(m.abWinName(m.Dx.Comm.Rank()), 0, zeros)
}

// rowParityTile / colParityTile read a stored parity tile.
func (m *BlockMat) rowParityTile(bi, k int, out []float64) {
	m.Dx.Comm.WinGet(m.abWinName(m.ab.rowOwner[bi*m.ab.kr+k]), m.ab.rowOff[bi*m.ab.kr+k], out)
}

func (m *BlockMat) colParityTile(bj, k int, out []float64) {
	m.Dx.Comm.WinGet(m.abWinName(m.ab.colOwner[bj*m.ab.kc+k]), m.ab.colOff[bj*m.ab.kc+k], out)
}

// rowGroupSum freshly sums the members of row group (bi, k) into sum,
// skipping member column skipBj (-1 = none). buf is bs*bs scratch.
func (m *BlockMat) rowGroupSum(bi, k, skipBj int, sum, buf []float64) {
	for i := range sum {
		sum[i] = 0
	}
	for bj := k * m.G.Pc; bj < (k+1)*m.G.Pc && bj < m.NB; bj++ {
		if bj == skipBj {
			continue
		}
		m.rawGetTile(bi, bj, buf)
		for i, v := range buf {
			sum[i] += v
		}
	}
}

func (m *BlockMat) colGroupSum(bj, k, skipBi int, sum, buf []float64) {
	for i := range sum {
		sum[i] = 0
	}
	for bi := k * m.G.Pr; bi < (k+1)*m.G.Pr && bi < m.NB; bi++ {
		if bi == skipBi {
			continue
		}
		m.rawGetTile(bi, bj, buf)
		for i, v := range buf {
			sum[i] += v
		}
	}
}

// parityMismatch reports whether a freshly computed group sum disagrees
// with the stored parity beyond floating-point drift. NaN anywhere is a
// mismatch (NaN defeats ordered comparisons, so it is tested as d != d).
func parityMismatch(fresh, stored []float64) bool {
	for i := range fresh {
		d := math.Abs(fresh[i] - stored[i])
		if d != d { // NaN
			return true
		}
		lim := abftAbsTol + abftRelTol*math.Max(math.Abs(fresh[i]), math.Abs(stored[i]))
		if d > lim {
			return true
		}
	}
	return false
}

// AuditStats summarizes one collective AuditParity pass, aggregated
// across ranks (identical on every rank).
type AuditStats struct {
	Groups          int64 // parity groups audited (row + column)
	Mismatches      int64 // row groups whose stored parity disagreed with a fresh sum
	RepairedTiles   int64 // corrupt data tiles localized and rewritten from parity
	ParityRefreshes int64 // parities rewritten beyond tolerance in the refresh phase
}

// AuditParity collectively verifies every parity group against a fresh
// member sum, repairs localizable corrupt data tiles in place, and
// refreshes all parities (resetting accumulated float drift). The
// protocol is three barrier-separated phases so detection reads never
// race repair writes:
//
//	1a (read-only)  each row-parity owner re-sums its groups; a
//	    mismatched group is localized by cross-checking each member's
//	    COLUMN group — the member whose column parity also disagrees is
//	    the corrupt one. Zero members flagged means the row parity
//	    itself went stale (phase 2 refreshes it); more than one flagged
//	    is ambiguous and unrepairable.
//	1b (write) apply the planned repairs: corrected = stored row parity
//	    minus the sum of the other members, written raw (the parities
//	    already reflect the true value; a maintaining PutTile would
//	    corrupt them with the repair delta).
//	2  every parity owner recomputes fresh sums and rewrites its
//	    parities.
//
// Phases 1b and 2 only run when the allreduce after 1a shows a mismatch
// somewhere in the world, or every abftRefreshEvery-th audit (the drift
// reset) — the common clean audit is a single read-only pass plus one
// allreduce. On the fast path Groups counts row groups only.
//
// Returns an error on every rank if any group was unrepairable.
func (m *BlockMat) AuditParity() (AuditStats, error) {
	if m.ab == nil {
		return AuditStats{}, fmt.Errorf("distmat: AuditParity on a non-ABFT matrix")
	}
	comm := m.Dx.Comm
	me := comm.Rank()
	bs2 := m.BS * m.BS
	sum := make([]float64, bs2)
	buf := make([]float64, bs2)
	stored := make([]float64, bs2)
	comm.Barrier() // fence in-flight one-sided traffic before auditing

	// Phase 1a: detect + localize, read-only. Repairs are planned into
	// a local list and applied only after the barrier.
	type repair struct {
		bi, bj int
		data   []float64
	}
	var st AuditStats
	var repairs []repair
	var unrepairable int64
	for bi := 0; bi < m.NB; bi++ {
		for k := 0; k < m.ab.kr; k++ {
			if m.ab.rowOwner[bi*m.ab.kr+k] != me {
				continue
			}
			st.Groups++
			m.rowGroupSum(bi, k, -1, sum, buf)
			m.rowParityTile(bi, k, stored)
			if !parityMismatch(sum, stored) {
				continue
			}
			st.Mismatches++
			// Localize: the member whose column group also mismatches.
			corrupt := -1
			flagged := 0
			for bj := k * m.G.Pc; bj < (k+1)*m.G.Pc && bj < m.NB; bj++ {
				ck := bi / m.G.Pr
				m.colGroupSum(bj, ck, -1, sum, buf)
				m.colParityTile(bj, ck, stored)
				if parityMismatch(sum, stored) {
					flagged++
					corrupt = bj
				}
			}
			switch {
			case flagged == 1:
				// corrected = stored row parity - sum of other members.
				fix := make([]float64, bs2)
				m.rowParityTile(bi, k, fix)
				m.rowGroupSum(bi, k, corrupt, sum, buf)
				for i := range fix {
					fix[i] -= sum[i]
				}
				repairs = append(repairs, repair{bi, corrupt, fix})
				st.RepairedTiles++
			case flagged == 0:
				// The row parity itself drifted or was corrupted; the
				// refresh phase rewrites it from the (clean) members.
				st.ParityRefreshes++
			default:
				unrepairable++
			}
		}
	}
	// Aggregate detection results: every rank sees the world totals and
	// agrees on whether the repair/refresh phases are needed at all.
	agg := []float64{
		float64(st.Groups), float64(st.Mismatches), float64(st.RepairedTiles),
		float64(st.ParityRefreshes), float64(unrepairable),
	}
	m.Dx.GSumF(agg)
	m.ab.sinceRefresh++ // collective call: advances in lockstep on every rank
	if int64(agg[1]) > 0 || int64(agg[4]) > 0 || m.ab.sinceRefresh >= abftRefreshEvery {
		m.ab.sinceRefresh = 0
		comm.Barrier()

		// Phase 1b: apply repairs (raw writes; parity already correct).
		for _, r := range repairs {
			m.rawPutTile(r.bi, r.bj, r.data)
		}
		comm.Barrier()

		// Phase 2: refresh every parity from a fresh member sum.
		var extraGroups, extraRefreshes int64
		for bi := 0; bi < m.NB; bi++ {
			for k := 0; k < m.ab.kr; k++ {
				g := bi*m.ab.kr + k
				if m.ab.rowOwner[g] != me {
					continue
				}
				m.rowGroupSum(bi, k, -1, sum, buf)
				m.rowParityTile(bi, k, stored)
				if parityMismatch(sum, stored) {
					extraRefreshes++
				}
				comm.WinPut(m.abWinName(me), m.ab.rowOff[g], sum)
			}
		}
		for bj := 0; bj < m.NB; bj++ {
			for k := 0; k < m.ab.kc; k++ {
				g := bj*m.ab.kc + k
				if m.ab.colOwner[g] != me {
					continue
				}
				extraGroups++
				m.colGroupSum(bj, k, -1, sum, buf)
				m.colParityTile(bj, k, stored)
				if parityMismatch(sum, stored) {
					extraRefreshes++
				}
				comm.WinPut(m.abWinName(me), m.ab.colOff[g], sum)
			}
		}
		extra := []float64{float64(extraGroups), float64(extraRefreshes)}
		m.Dx.GSumF(extra)
		agg[0] += extra[0]
		agg[3] += extra[1]
	}
	st = AuditStats{
		Groups:          int64(agg[0]),
		Mismatches:      int64(agg[1]),
		RepairedTiles:   int64(agg[2]),
		ParityRefreshes: int64(agg[3]),
	}
	unrepairable = int64(agg[4])
	if me == 0 {
		tel := comm.Telemetry()
		tel.Counter("distmat.abft.audits").Add(1)
		tel.Counter("distmat.abft.mismatches").Add(st.Mismatches)
		tel.Counter("distmat.abft.repaired_tiles").Add(st.RepairedTiles)
		tel.Counter("distmat.abft.parity_refreshes").Add(st.ParityRefreshes)
		if st.Mismatches > 0 {
			// The audit is part of the SDC integrity ladder: a parity
			// mismatch is a detected silent corruption, a repaired tile
			// a recovered one.
			tel.Counter("sdc.detected").Add(st.Mismatches)
			tel.Counter("sdc.detected.purify").Add(st.Mismatches)
			tel.Counter("sdc.recovered").Add(st.RepairedTiles)
		}
	}
	comm.Barrier()
	if unrepairable > 0 {
		return st, fmt.Errorf("distmat: abft audit: %d parity group(s) with multiple corrupt members, unrepairable", unrepairable)
	}
	return st, nil
}

// injectResidentSDC gives the fault plan a shot at this rank's resident
// tile memory: the first owned data tile is read raw, offered to the
// injector at SitePurify (where a scheduled Kill also fires — a death
// mid-purification), and written back raw if corrupted. Raw on purpose:
// a real memory error does not update parity, which is exactly the
// discrepancy AuditParity exists to catch. Returns whether a corruption
// landed.
func (m *BlockMat) injectResidentSDC() bool {
	me := m.Dx.Comm.Rank()
	for bi := 0; bi < m.NB; bi++ {
		for bj := 0; bj < m.NB; bj++ {
			if m.owner[bi*m.NB+bj] != me {
				continue
			}
			buf := make([]float64, m.BS*m.BS)
			m.rawGetTile(bi, bj, buf)
			if m.Dx.Comm.InjectSDC(mpi.SitePurify, buf) {
				m.rawPutTile(bi, bj, buf)
				return true
			}
			return false
		}
	}
	return false
}

// --- Lost-tile reconstruction ---

// Salvage resolves tiles of an ABFT matrix whose world lost ranks. The
// surviving ranks keep their old-world windows readable (one-sided gets
// carry no failure fence), so a salvager reads live tiles directly and
// rebuilds dead-rank tiles from parity: row parity minus the other
// (recursively resolved) members, falling back to the column group when
// the row parity owner died too. Resolutions are memoized, so peeling a
// group once serves every later reference.
type Salvage struct {
	src  *BlockMat
	dead []bool

	mu            sync.Mutex
	cache         map[int][]float64
	inProgress    map[int]bool
	reconstructed int64
}

// NewSalvage wraps a surviving rank's handle to an ABFT matrix whose
// listed ranks died.
func NewSalvage(src *BlockMat, deadRanks []int) (*Salvage, error) {
	if !src.ABFT() {
		return nil, fmt.Errorf("distmat: salvage requires an ABFT matrix")
	}
	dead := make([]bool, src.Dx.Comm.Size())
	for _, r := range deadRanks {
		if r < 0 || r >= len(dead) {
			return nil, fmt.Errorf("distmat: salvage: dead rank %d out of world size %d", r, len(dead))
		}
		dead[r] = true
	}
	return &Salvage{
		src:        src,
		dead:       dead,
		cache:      map[int][]float64{},
		inProgress: map[int]bool{},
	}, nil
}

// Dims returns the logical dimension and tile edge of the source.
func (s *Salvage) Dims() (n, bs int) { return s.src.N, s.src.BS }

// Reconstructed returns how many tiles were rebuilt from parity (as
// opposed to read directly from a surviving owner).
func (s *Salvage) Reconstructed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reconstructed
}

// Resolve produces tile (bi, bj) into out (BS*BS floats), reading it
// from its owner when alive and reconstructing it from parity when not.
func (s *Salvage) Resolve(bi, bj int, out []float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, err := s.resolve(bi, bj)
	if err != nil {
		return err
	}
	copy(out, v)
	return nil
}

func (s *Salvage) resolve(bi, bj int) ([]float64, error) {
	t := s.src.tileIndex(bi, bj)
	if v, ok := s.cache[t]; ok {
		return v, nil
	}
	if s.inProgress[t] {
		return nil, fmt.Errorf("distmat: salvage: dependency cycle at tile (%d,%d)", bi, bj)
	}
	bs2 := s.src.BS * s.src.BS
	if !s.dead[s.src.owner[t]] {
		v := make([]float64, bs2)
		s.src.rawGetTile(bi, bj, v)
		s.cache[t] = v
		return v, nil
	}
	s.inProgress[t] = true
	defer delete(s.inProgress, t)
	v, err := s.fromRowGroup(bi, bj)
	if err != nil {
		var colErr error
		v, colErr = s.fromColGroup(bi, bj)
		if colErr != nil {
			return nil, fmt.Errorf("distmat: salvage: tile (%d,%d) unrecoverable: %v; %v", bi, bj, err, colErr)
		}
	}
	s.cache[t] = v
	s.reconstructed++
	return v, nil
}

// fromRowGroup peels tile (bi, bj) out of its row parity group.
func (s *Salvage) fromRowGroup(bi, bj int) ([]float64, error) {
	m := s.src
	k := bj / m.G.Pc
	if s.dead[m.ab.rowOwner[bi*m.ab.kr+k]] {
		return nil, fmt.Errorf("row parity owner dead")
	}
	v := make([]float64, m.BS*m.BS)
	m.rowParityTile(bi, k, v)
	for b := k * m.G.Pc; b < (k+1)*m.G.Pc && b < m.NB; b++ {
		if b == bj {
			continue
		}
		sib, err := s.resolve(bi, b)
		if err != nil {
			return nil, fmt.Errorf("row sibling (%d,%d): %w", bi, b, err)
		}
		for i := range v {
			v[i] -= sib[i]
		}
	}
	return v, nil
}

// fromColGroup peels tile (bi, bj) out of its column parity group.
func (s *Salvage) fromColGroup(bi, bj int) ([]float64, error) {
	m := s.src
	k := bi / m.G.Pr
	if s.dead[m.ab.colOwner[bj*m.ab.kc+k]] {
		return nil, fmt.Errorf("col parity owner dead")
	}
	v := make([]float64, m.BS*m.BS)
	m.colParityTile(bj, k, v)
	for b := k * m.G.Pr; b < (k+1)*m.G.Pr && b < m.NB; b++ {
		if b == bi {
			continue
		}
		sib, err := s.resolve(b, bj)
		if err != nil {
			return nil, fmt.Errorf("col sibling (%d,%d): %w", b, bj, err)
		}
		for i := range v {
			v[i] -= sib[i]
		}
	}
	return v, nil
}

// ABFTBytesPerRank models the worst rank's parity-tile storage for one
// n x n ABFT matrix over the given world (bs = 0 picks the grid
// default), next to the data-tile bytes the same rank holds — the
// checksum overhead column of the memory-footprint reports.
func ABFTBytesPerRank(n, ranks, bs int) (parity, data int64) {
	pr, pc := Factor2D(ranks)
	if bs <= 0 {
		bs = DefaultBlockSize(n, pr, pc)
	}
	nb := (n + bs - 1) / bs
	g := &Grid{Pr: pr, Pc: pc}
	kr := (nb + pc - 1) / pc
	kc := (nb + pr - 1) / pr
	counts := make([]int64, ranks)
	for bi := 0; bi < nb; bi++ {
		for k := 0; k < kr; k++ {
			counts[rowParityOwner(g, bi, k)]++
		}
	}
	for bj := 0; bj < nb; bj++ {
		for k := 0; k < kc; k++ {
			counts[colParityOwner(g, bj, k)]++
		}
	}
	var worst int64
	for _, c := range counts {
		if c > worst {
			worst = c
		}
	}
	tile := int64(bs) * int64(bs) * 8
	return worst * tile, PerRankTileBytes(n, ranks, bs)
}
