// Package distmat implements GA-style 2D block-distributed symmetric
// matrices over the DDI one-sided machinery, plus the distributed BLAS-3
// primitives (MatMul, trace, Frobenius norm, Gershgorin bounds) needed
// for purification-based SCF. It is the repository's answer to the
// memory wall in the paper's eqs. (3a)-(3c): the hybrid algorithms shrink
// the per-node *replication factor*, but every rank still holds full
// N x N matrices; distmat shards them across the world so the per-rank
// footprint falls as O(N^2 / P) and systems whose replicated matrices
// exceed a node's MCDRAM stay runnable.
//
// Layout: the matrix is split into fixed bs x bs tiles (the trailing
// block rows/columns are zero-padded inside their tiles, so tile algebra
// needs no edge cases). Tile (bi, bj) lives on rank
// (bi mod Pr)*Pc + (bj mod Pc) of a Pr x Pc process grid — block-cyclic
// in both dimensions, the gtfock/ScaLAPACK distribution, which keeps
// ownership balanced for any matrix size. Each rank backs its tiles with
// one DDI float window; every rank computes the identical (owner, offset)
// table, so any rank can Get/Put/Acc any tile with pure one-sided
// traffic and no directory lookups.
package distmat

import "math"

// Grid is a Pr x Pc process grid laid over a DDI world, row-major:
// rank = row*Pc + col. Pr >= Pc by construction (tall grids keep
// row-block ownership contiguous for the common Pr|NB case).
type Grid struct {
	Pr, Pc int
	// MyRow, MyCol locate the calling rank on the grid.
	MyRow, MyCol int
}

// Factor2D splits p ranks into the most-square Pr x Pc grid with
// Pr*Pc == p and Pr >= Pc (4 -> 2x2, 6 -> 3x2, 7 -> 7x1, 16 -> 4x4).
func Factor2D(p int) (pr, pc int) {
	if p < 1 {
		panic("distmat: grid needs at least one rank")
	}
	pc = int(math.Sqrt(float64(p)))
	for p%pc != 0 {
		pc--
	}
	pr = p / pc
	return pr, pc
}

// NewGrid lays a process grid over a world of the given size for the
// given rank. All ranks must construct it with the same size.
func NewGrid(rank, size int) *Grid {
	pr, pc := Factor2D(size)
	return &Grid{Pr: pr, Pc: pc, MyRow: rank / pc, MyCol: rank % pc}
}

// OwnerOf returns the rank owning block (bi, bj) under the block-cyclic
// distribution.
func (g *Grid) OwnerOf(bi, bj int) int {
	return (bi%g.Pr)*g.Pc + (bj % g.Pc)
}

// DefaultBlockSize picks a tile edge for an n x n matrix on a pr x pc
// grid: about two block rows per grid row (enough tiles that every rank
// owns work, few enough that tile overheads stay negligible), clamped to
// [1, 64].
func DefaultBlockSize(n, pr, pc int) int {
	dim := pr
	if pc > dim {
		dim = pc
	}
	bs := (n + 2*dim - 1) / (2 * dim)
	if bs < 1 {
		bs = 1
	}
	if bs > 64 {
		bs = 64
	}
	return bs
}

// PerRankTileBytes returns the maximum per-rank storage (bytes) of ONE
// n x n matrix distributed over ranks with tile edge bs (0 = the default
// for that grid): the worst rank's owned-tile count times the padded
// tile size. This is the distributed-storage counterpart of one
// replicated N^2 (or packed N(N+1)/2) matrix in eqs. (3a)-(3c).
func PerRankTileBytes(n, ranks, bs int) int64 {
	pr, pc := Factor2D(ranks)
	if bs <= 0 {
		bs = DefaultBlockSize(n, pr, pc)
	}
	nb := (n + bs - 1) / bs
	// Worst rank: owns ceil(nb/Pr) block rows x ceil(nb/Pc) block cols.
	rows := (nb + pr - 1) / pr
	cols := (nb + pc - 1) / pc
	return int64(rows) * int64(cols) * int64(bs) * int64(bs) * 8
}

// FootprintPerRank models the distributed SCF working set per rank:
// the five distributed matrix roles a purification SCF keeps live
// (S^-1/2, H, F, D and one multiply scratch) — the apples-to-apples
// comparison against the five replicated matrices charged per process by
// the eq. (3a) accounting. DIIS history and tile caches add a
// configurable constant on top; see scf.PurifiedOptions.
func FootprintPerRank(nbf, ranks int) int64 {
	return 5 * PerRankTileBytes(nbf, ranks, 0)
}
