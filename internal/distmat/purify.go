package distmat

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// SP2 purification (Niklasson's second-order spectral projection): map
// the orthonormal-basis Fock F' onto X0 = (eps_max*I - F') / (eps_max -
// eps_min) using Gershgorin bounds, so X0's spectrum lies in [0, 1] with
// occupied states above the gap. Each sweep squares X; X^2 sharpens the
// spectrum toward {0, 1}, and the branch choice
//
//	X <- X^2        (lowers the trace)   if |tr X^2 - nocc| <= |2 tr X - tr X^2 - nocc|
//	X <- 2X - X^2   (raises the trace)   otherwise
//
// steers tr X to the occupation count without knowing the chemical
// potential. At convergence X is the idempotent projector onto the nocc
// lowest orbitals and D' = 2X is the closed-shell orthonormal density.
//
// Stopping criterion: ||X - X^2||_F <= tol (idempotency) AND
// |tr X - nocc| <= traceTol. Both are invariants checked EVERY sweep;
// a non-finite trace aborts immediately (a corrupted tile poisons the
// whole sweep, better surfaced than iterated on).

// PurifyStats reports one purification run.
type PurifyStats struct {
	Sweeps    int
	IdemErr   float64 // final ||X - X^2||_F
	TraceErr  float64 // final |tr X - nocc|
	Converged bool
	// Branches records the branch executed at each sweep that took one:
	// 'S' for X <- X^2, 'R' for X <- 2X - X^2. The decisions depend only
	// on deterministic allreduced traces, so the string must be
	// bit-for-bit identical across ranks and across reruns — the
	// determinism invariant the chaos property test pins down.
	Branches string
}

// purifyTraceTol bounds the trace drift accepted at convergence; the
// idempotency tolerance is the caller's knob.
const purifyTraceTol = 1e-8

// Purify runs SP2 on the orthonormal Fock fp, writing the orthonormal
// closed-shell density D' = 2X into dst. xsq is caller-provided scratch
// of the same shape (reused across SCF iterations to keep the working
// set fixed). Collective; the branch decisions depend only on
// deterministic allreduced traces, so every rank takes the same path.
func Purify(dst, fp, xsq *BlockMat, nocc int, tol float64, maxSweeps int) (PurifyStats, error) {
	dst.sameShape(fp)
	dst.sameShape(xsq)
	if tol <= 0 {
		tol = 1e-12
	}
	if maxSweeps <= 0 {
		maxSweeps = 100
	}
	var st PurifyStats

	lo, hi := Gershgorin(fp)
	if hi-lo < 1e-300 {
		hi = lo + 1 // degenerate spectrum: any scaling works
	}
	// X0 = (hi*I - F') / (hi - lo)
	Copy(dst, fp)
	Scale(dst, -1/(hi-lo))
	AddScaledIdentity(dst, hi/(hi-lo))

	tel := dst.Dx.Comm.Telemetry()
	occ := float64(nocc)
	for sweep := 1; sweep <= maxSweeps; sweep++ {
		st.Sweeps = sweep
		tel.Counter("distmat.purify.sweeps").Add(1)
		if dst.ABFT() {
			// Give the fault plan its shot at resident tile memory (and
			// at killing a rank mid-purification), then audit: a landed
			// bit flip must be caught and repaired before it propagates
			// through the squaring.
			dst.injectResidentSDC()
			if _, aerr := dst.AuditParity(); aerr != nil {
				return st, fmt.Errorf("distmat: purification sweep %d: %w", sweep, aerr)
			}
		}
		MatMul(xsq, dst, dst)
		t := Trace(dst)
		ts := Trace(xsq)
		if !isFinite(t) || !isFinite(ts) {
			return st, fmt.Errorf("distmat: purification sweep %d produced a non-finite trace (tr X = %g, tr X^2 = %g)", sweep, t, ts)
		}
		st.IdemErr = math.Sqrt(FrobSqDiff(dst, xsq))
		st.TraceErr = math.Abs(t - occ)
		if st.IdemErr <= tol && st.TraceErr <= purifyTraceTol {
			st.Converged = true
			break
		}
		if math.Abs(ts-occ) <= math.Abs(2*t-ts-occ) {
			st.Branches += "S"
			Copy(dst, xsq) // X <- X^2
		} else {
			st.Branches += "R"
			Axpby(dst, xsq, -1, 2) // X <- 2X - X^2
		}
	}
	if !st.Converged {
		return st, fmt.Errorf("distmat: purification did not converge in %d sweeps (idempotency %.3e, trace error %.3e)",
			maxSweeps, st.IdemErr, st.TraceErr)
	}
	Scale(dst, 2) // D' = 2X (closed shell)
	return st, nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// SP2Dense is the replicated reference implementation of the identical
// algorithm (same initial map, branch rule and stopping criterion) on a
// dense matrix — the oracle for the distributed path's tests and the
// eigensolve-vs-purification benchmark. Returns D' = 2X.
func SP2Dense(fp *linalg.Matrix, nocc int, tol float64, maxSweeps int) (*linalg.Matrix, PurifyStats, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	if maxSweeps <= 0 {
		maxSweeps = 100
	}
	n := fp.Rows
	var st PurifyStats

	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		r := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				r += math.Abs(fp.At(i, j))
			}
		}
		d := fp.At(i, i)
		lo = math.Min(lo, d-r)
		hi = math.Max(hi, d+r)
	}
	if hi-lo < 1e-300 {
		hi = lo + 1
	}
	x := linalg.NewSquare(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := -fp.At(i, j) / (hi - lo)
			if i == j {
				v += hi / (hi - lo)
			}
			x.Set(i, j, v)
		}
	}

	xsq := linalg.NewSquare(n)
	occ := float64(nocc)
	for sweep := 1; sweep <= maxSweeps; sweep++ {
		st.Sweeps = sweep
		linalg.MulInto(xsq, x, x)
		t, ts := x.Trace(), xsq.Trace()
		if !isFinite(t) || !isFinite(ts) {
			return nil, st, fmt.Errorf("distmat: dense purification sweep %d produced a non-finite trace", sweep)
		}
		idemSq := 0.0
		for i, v := range x.Data {
			d := v - xsq.Data[i]
			idemSq += d * d
		}
		st.IdemErr = math.Sqrt(idemSq)
		st.TraceErr = math.Abs(t - occ)
		if st.IdemErr <= tol && st.TraceErr <= purifyTraceTol {
			st.Converged = true
			break
		}
		if math.Abs(ts-occ) <= math.Abs(2*t-ts-occ) {
			st.Branches += "S"
			x, xsq = xsq, x
		} else {
			st.Branches += "R"
			for i := range x.Data {
				x.Data[i] = 2*x.Data[i] - xsq.Data[i]
			}
		}
	}
	if !st.Converged {
		return nil, st, fmt.Errorf("distmat: dense purification did not converge in %d sweeps (idempotency %.3e, trace error %.3e)",
			maxSweeps, st.IdemErr, st.TraceErr)
	}
	x.Scale(2)
	return x, st, nil
}
