package distmat

// Tile movement for the distributed Fock build. The builder reads
// density elements in shell-block order and accumulates Fock
// contributions at canonical lower-triangle locations; both sides get a
// bounded per-rank staging area so the rank's working set stays O(cap)
// tiles no matter how large the matrix is — refetch traffic is the price
// of the memory bound, and both are counted.

// TileReader is a bounded read-through cache of density tiles with
// element granularity. Not safe for concurrent use (one per rank). Reset
// drops the contents when the underlying matrix changes (a new SCF
// iteration).
type TileReader struct {
	m     *BlockMat
	cap   int
	tiles map[int][]float64
	fifo  []int
	// recent is a small direct-mapped front cache over the map: the Fock
	// inner loops alternate reads across ~6 tile regions, so a slot per
	// low key bits keeps most hits off the map path.
	recent [8]struct {
		key  int
		tile []float64
	}

	Hits, Misses, Evictions int64
	peakTiles               int
}

// NewTileReader builds a reader over m holding at most capTiles tiles
// (0 = twice the block dimension, cf. a few block rows).
func NewTileReader(m *BlockMat, capTiles int) *TileReader {
	if capTiles <= 0 {
		capTiles = 2 * m.NB
	}
	if capTiles < 4 {
		capTiles = 4
	}
	r := &TileReader{m: m, cap: capTiles, tiles: make(map[int][]float64, capTiles)}
	for i := range r.recent {
		r.recent[i].key = -1
	}
	return r
}

// Retarget points the reader at a different matrix of the same shape
// and drops the cache — the double-buffer swap of the resilient SCF,
// where the density pointer flips between iterations instead of being
// copied.
func (r *TileReader) Retarget(m *BlockMat) {
	r.m = m
	r.Reset()
}

// Reset drops every cached tile (collectively irrelevant — purely
// local).
func (r *TileReader) Reset() {
	clear(r.tiles)
	r.fifo = r.fifo[:0]
	for i := range r.recent {
		r.recent[i].key = -1
	}
}

// At reads element (i, j), fetching the containing tile on a miss and
// evicting FIFO when over capacity.
func (r *TileReader) At(i, j int) float64 {
	bs := r.m.BS
	key := (i/bs)*r.m.NB + j/bs
	slot := &r.recent[key&7]
	if slot.key == key {
		r.Hits++
		return slot.tile[(i%bs)*bs+j%bs]
	}
	tile, ok := r.tiles[key]
	if !ok {
		r.Misses++
		if len(r.fifo) >= r.cap {
			old := r.fifo[0]
			r.fifo = r.fifo[1:]
			delete(r.tiles, old)
			if s := &r.recent[old&7]; s.key == old {
				s.key = -1
			}
			r.Evictions++
		}
		tile = make([]float64, bs*bs)
		r.m.GetTile(key/r.m.NB, key%r.m.NB, tile)
		r.tiles[key] = tile
		r.fifo = append(r.fifo, key)
		if len(r.fifo) > r.peakTiles {
			r.peakTiles = len(r.fifo)
		}
	} else {
		r.Hits++
	}
	slot.key = key
	slot.tile = tile
	return tile[(i%bs)*bs+j%bs]
}

// PeakBytes returns the high-water tile storage held by the reader.
func (r *TileReader) PeakBytes() int64 {
	return int64(r.peakTiles) * int64(r.m.BS) * int64(r.m.BS) * 8
}

// TileAccum is a write-combining accumulator over a distributed matrix:
// contributions are summed into local per-tile buffers and pushed with
// one AccTile per dirty tile, either when the buffer budget overflows or
// at Flush. Not safe for concurrent use (one per rank).
type TileAccum struct {
	m     *BlockMat
	cap   int
	tiles map[int][]float64

	Flushes   int64 // AccTile pushes issued
	Spills    int64 // flushes forced by the capacity bound
	peakTiles int
}

// NewTileAccum builds an accumulator over m buffering at most capTiles
// dirty tiles (0 = twice the block dimension).
func NewTileAccum(m *BlockMat, capTiles int) *TileAccum {
	if capTiles <= 0 {
		capTiles = 2 * m.NB
	}
	if capTiles < 4 {
		capTiles = 4
	}
	return &TileAccum{m: m, cap: capTiles, tiles: make(map[int][]float64, capTiles)}
}

// AddLower accumulates v at the canonical lower-triangle location of
// {x, y} — the distmat counterpart of fock.addLower.
func (a *TileAccum) AddLower(x, y int, v float64) {
	if x < y {
		x, y = y, x
	}
	a.Add(x, y, v)
}

// Add accumulates v at (i, j).
func (a *TileAccum) Add(i, j int, v float64) {
	bs := a.m.BS
	key := (i/bs)*a.m.NB + j/bs
	tile, ok := a.tiles[key]
	if !ok {
		if len(a.tiles) >= a.cap {
			a.Spills++
			a.Flush()
		}
		tile = make([]float64, bs*bs)
		a.tiles[key] = tile
		if len(a.tiles) > a.peakTiles {
			a.peakTiles = len(a.tiles)
		}
	}
	tile[(i%bs)*bs+j%bs] += v
}

// Flush pushes every dirty tile with one atomic AccTile each and clears
// the buffers. NOT collective — call freely; the build's closing barrier
// orders the last flush before readers.
func (a *TileAccum) Flush() {
	for key, tile := range a.tiles {
		a.m.AccTile(key/a.m.NB, key%a.m.NB, tile)
		a.Flushes++
	}
	clear(a.tiles)
}

// PeakBytes returns the high-water buffer storage held by the
// accumulator.
func (a *TileAccum) PeakBytes() int64 {
	return int64(a.peakTiles) * int64(a.m.BS) * int64(a.m.BS) * 8
}
