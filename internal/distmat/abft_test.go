package distmat

import (
	"math"
	"sync"
	"testing"

	"repro/internal/ddi"
	"repro/internal/integrity"
	"repro/internal/linalg"
	"repro/internal/mpi"
)

// maxAbsDiff returns the largest element-wise difference.
func maxAbsDiff(a, b *linalg.Matrix) float64 {
	worst := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestABFTParityOwnersOffRank pins the survivability invariant: no data
// tile shares a rank with its row parity, so one rank death never takes
// a tile and its primary checksum together.
func TestABFTParityOwnersOffRank(t *testing.T) {
	for _, p := range []int{2, 4, 6, 12} {
		pr, pc := Factor2D(p)
		g := &Grid{Pr: pr, Pc: pc}
		nb := 7
		kr := (nb + pc - 1) / pc
		for bi := 0; bi < nb; bi++ {
			for k := 0; k < kr; k++ {
				po := rowParityOwner(g, bi, k)
				for bj := k * pc; bj < (k+1)*pc && bj < nb; bj++ {
					if g.OwnerOf(bi, bj) == po {
						t.Errorf("p=%d: row parity (%d,%d) on rank %d co-located with member (%d,%d)",
							p, bi, k, po, bi, bj)
					}
				}
			}
		}
	}
}

// TestABFTParityMaintained runs a representative mix of mutating
// collectives on ABFT matrices and checks (a) the results match the
// plain-matrix reference bit for bit and (b) the audit stays clean —
// the transparent PutTile/AccTile parity maintenance tracks every op.
func TestABFTParityMaintained(t *testing.T) {
	n := 13
	a0 := randSym(n, 1)
	b0 := randDense(n, 2)
	onWorld(t, 4, func(g *Grid, dx *ddi.Context) {
		a, b, c := NewABFT(g, dx, n, 3), NewABFT(g, dx, n, 3), NewABFT(g, dx, n, 3)
		ra, rb, rc := New(g, dx, n, 3), New(g, dx, n, 3), New(g, dx, n, 3)
		if err := a.ScatterDense(a0); err != nil {
			t.Errorf("scatter: %v", err)
			return
		}
		if err := b.ScatterDense(b0); err != nil {
			t.Errorf("scatter: %v", err)
			return
		}
		ra.ScatterDense(a0)
		rb.ScatterDense(b0)
		for _, step := range []func(m, x, y *BlockMat){
			func(m, x, y *BlockMat) { MatMul(m, x, y) },
			func(m, x, y *BlockMat) { Axpby(m, x, 0.5, -1.25) },
			func(m, x, y *BlockMat) { Scale(m, 3) },
			func(m, x, y *BlockMat) { AddScaledIdentity(m, -0.75) },
			func(m, x, y *BlockMat) { AntiSymmetrize(m, x) },
			func(m, x, y *BlockMat) { Copy(m, y) },
		} {
			step(c, a, b)
			step(rc, ra, rb)
		}
		// Accumulate through the write-combiner too (the Fock path).
		acc := NewTileAccum(c, 4)
		racc := NewTileAccum(rc, 4)
		if dx.Comm.Rank() == 0 {
			for i := 0; i < n; i++ {
				acc.AddLower(i, i/2, 0.25*float64(i))
				racc.AddLower(i, i/2, 0.25*float64(i))
			}
		}
		acc.Flush()
		racc.Flush()
		dx.Comm.Barrier()

		st, err := c.AuditParity()
		if err != nil {
			t.Errorf("audit: %v", err)
			return
		}
		if st.Mismatches != 0 || st.RepairedTiles != 0 {
			t.Errorf("clean run audited dirty: %+v", st)
		}
		if st.Groups == 0 {
			t.Errorf("audit covered no groups")
		}
		got, err := c.GatherVerified()
		if err != nil {
			t.Errorf("gather: %v", err)
			return
		}
		want, _ := rc.GatherVerified()
		if d := maxAbsDiff(got, want); d != 0 {
			t.Errorf("ABFT result diverged from plain reference by %g", d)
		}
	})
}

// TestABFTAuditRepairsBitFlip injects a resident bit flip (raw write,
// bypassing parity — a memory error, not a message error) and checks the
// audit localizes and repairs it exactly.
func TestABFTAuditRepairsBitFlip(t *testing.T) {
	n := 12
	d0 := randSym(n, 7)
	onWorld(t, 4, func(g *Grid, dx *ddi.Context) {
		m := NewABFT(g, dx, n, 3)
		if err := m.ScatterDense(d0); err != nil {
			t.Errorf("scatter: %v", err)
			return
		}
		if dx.Comm.Rank() == 2 {
			buf := make([]float64, m.BS*m.BS)
			m.rawGetTile(1, 2, buf)
			integrity.FlipFloatBit(buf, 4, 52)
			m.rawPutTile(1, 2, buf)
		}
		dx.Comm.Barrier()
		st, err := m.AuditParity()
		if err != nil {
			t.Errorf("audit: %v", err)
			return
		}
		if st.Mismatches == 0 {
			t.Errorf("bit flip not detected: %+v", st)
		}
		if st.RepairedTiles != 1 {
			t.Errorf("RepairedTiles = %d, want 1", st.RepairedTiles)
		}
		got, err := m.GatherVerified()
		if err != nil {
			t.Errorf("gather: %v", err)
			return
		}
		if d := maxAbsDiff(got, d0); d > 1e-12 {
			t.Errorf("repaired matrix off by %g", d)
		}
		// The repaired matrix audits clean.
		st, err = m.AuditParity()
		if err != nil || st.Mismatches != 0 {
			t.Errorf("post-repair audit: %+v, %v", st, err)
		}
	})
}

// TestSalvageReconstruct treats one rank as dead and resolves every tile
// through Salvage: surviving tiles read through, dead tiles peel out of
// parity, and the reconstruction count is positive.
func TestSalvageReconstruct(t *testing.T) {
	n := 14
	d0 := randDense(n, 11)
	for _, tc := range []struct {
		ranks int
		dead  []int
	}{
		{4, []int{1}},
		{4, []int{2}},
		// 3x2 grid losing a whole grid row (ranks 2 and 3): row groups of
		// that block row lose every member, so recovery has to peel one
		// member out of its column group before the row parity yields the
		// other — the recursive path. (Two deaths that take a tile AND
		// both its parities, e.g. {1,2} here, are beyond single parity by
		// construction.)
		{6, []int{2, 3}},
	} {
		onWorld(t, tc.ranks, func(g *Grid, dx *ddi.Context) {
			m := NewABFT(g, dx, n, 3)
			if err := m.ScatterDense(d0); err != nil {
				t.Errorf("scatter: %v", err)
				return
			}
			dx.Comm.Barrier()
			if dx.Comm.Rank() != 0 {
				return
			}
			s, err := NewSalvage(m, tc.dead)
			if err != nil {
				t.Errorf("NewSalvage: %v", err)
				return
			}
			out := linalg.NewSquare(n)
			buf := make([]float64, m.BS*m.BS)
			for bi := 0; bi < m.NB; bi++ {
				for bj := 0; bj < m.NB; bj++ {
					if err := s.Resolve(bi, bj, buf); err != nil {
						t.Errorf("ranks=%d dead=%v: resolve (%d,%d): %v", tc.ranks, tc.dead, bi, bj, err)
						return
					}
					for r := 0; r < m.BS && bi*m.BS+r < n; r++ {
						for c := 0; c < m.BS && bj*m.BS+c < n; c++ {
							out.Set(bi*m.BS+r, bj*m.BS+c, buf[r*m.BS+c])
						}
					}
				}
			}
			if d := maxAbsDiff(out, d0); d > 1e-12 {
				t.Errorf("ranks=%d dead=%v: salvaged matrix off by %g", tc.ranks, tc.dead, d)
			}
			if s.Reconstructed() == 0 {
				t.Errorf("ranks=%d dead=%v: no tiles reconstructed from parity", tc.ranks, tc.dead)
			}
		})
	}
}

// TestSalvageConcurrentResolve exercises the memoized resolver from many
// goroutines at once — the shape of the real resume, where every new
// rank resolves its owned tiles against one shared salvager.
func TestSalvageConcurrentResolve(t *testing.T) {
	n := 12
	d0 := randDense(n, 13)
	onWorld(t, 4, func(g *Grid, dx *ddi.Context) {
		m := NewABFT(g, dx, n, 3)
		if err := m.ScatterDense(d0); err != nil {
			t.Errorf("scatter: %v", err)
			return
		}
		dx.Comm.Barrier()
		if dx.Comm.Rank() != 0 {
			return
		}
		s, err := NewSalvage(m, []int{3})
		if err != nil {
			t.Errorf("NewSalvage: %v", err)
			return
		}
		var wg sync.WaitGroup
		errs := make([]error, m.NB*m.NB)
		for bi := 0; bi < m.NB; bi++ {
			for bj := 0; bj < m.NB; bj++ {
				wg.Add(1)
				go func(bi, bj int) {
					defer wg.Done()
					buf := make([]float64, m.BS*m.BS)
					errs[bi*m.NB+bj] = s.Resolve(bi, bj, buf)
				}(bi, bj)
			}
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Errorf("concurrent resolve tile %d: %v", i, err)
			}
		}
	})
}

// TestABFTBytesPerRank sanity-checks the overhead model: parity storage
// is positive and a modest fraction of data storage for a realistic
// shape.
func TestABFTBytesPerRank(t *testing.T) {
	parity, data := ABFTBytesPerRank(1000, 256, 0)
	if parity <= 0 || data <= 0 {
		t.Fatalf("ABFTBytesPerRank = %d, %d; want positive", parity, data)
	}
	if parity > data {
		t.Errorf("parity bytes %d exceed data bytes %d for 1000 bf / 256 ranks", parity, data)
	}
}

// TestPurifyChaosDeterminism is the chaos property test: SP2
// purification under duplicate/reorder message chaos must take the
// bitwise-identical branch sequence and produce the bitwise-identical
// density as a clean run — the distmat extension of the allreduce
// determinism invariant.
func TestPurifyChaosDeterminism(t *testing.T) {
	n := 16
	nocc := 5
	f0 := randSym(n, 42)
	run := func(plan *mpi.FaultPlan) (string, *linalg.Matrix) {
		var branches string
		var dens *linalg.Matrix
		_, err := mpi.RunWithOptions(4, mpi.RunOptions{Fault: plan}, func(c *mpi.Comm) {
			g := NewGrid(c.Rank(), c.Size())
			dx := ddi.New(c)
			fp := New(g, dx, n, 0)
			dst := New(g, dx, n, 0)
			xsq := New(g, dx, n, 0)
			if err := fp.ScatterDense(f0); err != nil {
				t.Errorf("scatter: %v", err)
				return
			}
			st, err := Purify(dst, fp, xsq, nocc, 1e-12, 100)
			if err != nil {
				t.Errorf("purify: %v", err)
				return
			}
			d, gerr := dst.GatherVerified() // collective: every rank gathers
			if gerr != nil {
				t.Errorf("gather: %v", gerr)
				return
			}
			if c.Rank() == 0 {
				branches = st.Branches
				dens = d
			}
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return branches, dens
	}

	cleanBr, cleanD := run(nil)
	if cleanBr == "" || cleanD == nil {
		t.Fatalf("clean run produced no branches/density")
	}
	chaos := &mpi.FaultPlan{
		Duplicates: []mpi.Duplicate{{Rank: 1, After: 3, Copies: 2}},
		Reorders:   []mpi.Reorder{{Rank: 2, After: 5, Behind: 4}},
	}
	for trial := 0; trial < 2; trial++ {
		br, d := run(chaos)
		if br != cleanBr {
			t.Errorf("trial %d: branch sequence %q under chaos, want %q", trial, br, cleanBr)
		}
		for i := range d.Data {
			if d.Data[i] != cleanD.Data[i] {
				t.Errorf("trial %d: density diverged at element %d: %v vs %v",
					trial, i, d.Data[i], cleanD.Data[i])
				break
			}
		}
	}
}
