package distmat

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ddi"
	"repro/internal/integrity"
	"repro/internal/linalg"
	"repro/internal/telemetry"
)

// matSeq provides process-wide unique distributed matrix ids (same
// scheme as ddi.CreateDArray: rank 0 draws, shares through a counter
// window, so every rank in a world agrees on the id).
var matSeq atomic.Int64

// BlockMat is an n x n matrix distributed in bs x bs tiles over the
// process grid (see the package comment for the layout). All collective
// methods (New, Zero, Scatter/Gather, the ops in ops.go) must be called
// by every rank of the world at the same point; Get/Put/AccTile and At
// are one-sided and may be called by any rank at any time between
// barriers.
type BlockMat struct {
	G  *Grid
	Dx *ddi.Context
	N  int // logical dimension
	BS int // tile edge (trailing tiles zero-padded)
	NB int // tiles per dimension: ceil(N/BS)

	id     int64
	owner  []int // tile (bi,bj) -> owning rank, row-major over blocks
	offset []int // tile (bi,bj) -> float offset in the owner's window

	ownedTiles int
	names      []string // per-rank data window names, precomputed

	// One-sided traffic accounting (off-rank bytes only), mirrored into
	// the distmat.* telemetry counters when a session is attached. The
	// counter handles are resolved once at construction — tile ops are
	// the innermost loop of every collective, so a per-op map lookup is
	// measurable overhead.
	getBytes, putBytes, accBytes atomic.Int64
	getCtr, putCtr, accCtr       *telemetry.Counter

	// putScratch pools delta buffers for the ABFT read-old/put-new path
	// in PutTile (pooled, not a single field: concurrent Puts to
	// DIFFERENT tiles are legal and must not share scratch).
	putScratch sync.Pool

	// ab holds the checksum-tile state of an ABFT matrix (see abft.go);
	// nil for a plain matrix.
	ab *abftState
}

// New collectively creates an n x n distributed matrix with tile edge bs
// (0 = DefaultBlockSize for the grid). All ranks must call it in the
// same order with the same shape.
func New(g *Grid, dx *ddi.Context, n, bs int) *BlockMat {
	return newMat(g, dx, n, bs, false)
}

// NewABFT collectively creates an n x n distributed matrix that also
// maintains Huang–Abraham checksum tiles (see abft.go): PutTile and
// AccTile keep per-block-row and per-block-column parity tiles coherent,
// AuditParity detects and repairs resident corruption, and Salvage
// reconstructs tiles lost to rank death.
func NewABFT(g *Grid, dx *ddi.Context, n, bs int) *BlockMat {
	return newMat(g, dx, n, bs, true)
}

func newMat(g *Grid, dx *ddi.Context, n, bs int, abft bool) *BlockMat {
	comm := dx.Comm
	if bs <= 0 {
		bs = DefaultBlockSize(n, g.Pr, g.Pc)
	}
	nb := (n + bs - 1) / bs
	m := &BlockMat{G: g, Dx: dx, N: n, BS: bs, NB: nb}

	if comm.Rank() == 0 {
		comm.CounterStore("dm.id", 0, matSeq.Add(1))
	}
	comm.Barrier()
	m.id = comm.CounterLoad("dm.id", 0)

	m.names = make([]string, comm.Size())
	for r := range m.names {
		m.names[r] = fmt.Sprintf("dm.%d.%d", m.id, r)
	}
	tel := comm.Telemetry()
	m.getCtr = tel.Counter("distmat.get.bytes")
	m.putCtr = tel.Counter("distmat.put.bytes")
	m.accCtr = tel.Counter("distmat.acc.bytes")
	bs2 := bs * bs
	m.putScratch.New = func() any { return make([]float64, bs2) }

	counts := make([]int, comm.Size())
	m.owner = make([]int, nb*nb)
	m.offset = make([]int, nb*nb)
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			o := g.OwnerOf(bi, bj)
			m.owner[bi*nb+bj] = o
			m.offset[bi*nb+bj] = counts[o] * bs * bs
			counts[o]++
		}
	}
	m.ownedTiles = counts[comm.Rank()]
	for r, c := range counts {
		if c > 0 {
			comm.WinCreate(m.winName(r), c*bs*bs)
		}
	}
	if abft {
		m.initABFT()
	}
	comm.Barrier()
	return m
}

func (m *BlockMat) winName(rank int) string { return m.names[rank] }

// sameShape panics unless b shares m's dimension, tile edge and grid —
// the precondition of every tile-aligned binary op.
func (m *BlockMat) sameShape(b *BlockMat) {
	if m.N != b.N || m.BS != b.BS || m.G.Pr != b.G.Pr || m.G.Pc != b.G.Pc {
		panic(fmt.Sprintf("distmat: shape mismatch: %dx%d/bs%d vs %dx%d/bs%d",
			m.N, m.N, m.BS, b.N, b.N, b.BS))
	}
}

func (m *BlockMat) tileIndex(bi, bj int) int {
	if bi < 0 || bi >= m.NB || bj < 0 || bj >= m.NB {
		panic(fmt.Sprintf("distmat: tile (%d,%d) out of range %d", bi, bj, m.NB))
	}
	return bi*m.NB + bj
}

// OwnerOf returns the rank owning tile (bi, bj).
func (m *BlockMat) OwnerOf(bi, bj int) int { return m.owner[m.tileIndex(bi, bj)] }

// OwnsTile reports whether the calling rank owns tile (bi, bj).
func (m *BlockMat) OwnsTile(bi, bj int) bool {
	return m.owner[m.tileIndex(bi, bj)] == m.Dx.Comm.Rank()
}

// OwnedTiles returns the number of tiles stored on the calling rank.
func (m *BlockMat) OwnedTiles() int { return m.ownedTiles }

// LocalBytes returns the tile storage held by the calling rank.
func (m *BlockMat) LocalBytes() int64 {
	return int64(m.ownedTiles) * int64(m.BS) * int64(m.BS) * 8
}

func (m *BlockMat) countTraffic(kind *atomic.Int64, ctr *telemetry.Counter, owner, n int) {
	if owner == m.Dx.Comm.Rank() {
		return
	}
	bytes := int64(n) * 8
	kind.Add(bytes)
	ctr.Add(bytes)
}

// GetTile fetches tile (bi, bj) into out (BS*BS floats, row-major,
// zero-padded past N). One-sided.
func (m *BlockMat) GetTile(bi, bj int, out []float64) {
	t := m.tileIndex(bi, bj)
	m.countTraffic(&m.getBytes, m.getCtr, m.owner[t], len(out))
	m.Dx.Comm.WinGet(m.winName(m.owner[t]), m.offset[t], out)
}

// PutTile stores tile (bi, bj) from data (BS*BS floats). One-sided; the
// caller is responsible for write ownership (concurrent Put and Acc to
// the same tile race). On an ABFT matrix the overwrite becomes
// read-old/put-new/accumulate-delta so the parity tiles stay coherent —
// safe under the same single-writer-per-tile discipline.
func (m *BlockMat) PutTile(bi, bj int, data []float64) {
	t := m.tileIndex(bi, bj)
	m.countTraffic(&m.putBytes, m.putCtr, m.owner[t], len(data))
	if m.ab != nil {
		old := m.putScratch.Get().([]float64)[:len(data)]
		m.Dx.Comm.WinGet(m.winName(m.owner[t]), m.offset[t], old)
		for i := range old {
			old[i] = data[i] - old[i]
		}
		m.Dx.Comm.WinPut(m.winName(m.owner[t]), m.offset[t], data)
		m.accParity(bi, bj, old)
		m.putScratch.Put(old)
		return
	}
	m.Dx.Comm.WinPut(m.winName(m.owner[t]), m.offset[t], data)
}

// AccTile element-wise adds data (BS*BS floats) into tile (bi, bj).
// One-sided and atomic with respect to other AccTile calls (the window
// lock serializes accumulates), the distmat analogue of DDI's acc.
func (m *BlockMat) AccTile(bi, bj int, data []float64) {
	t := m.tileIndex(bi, bj)
	m.countTraffic(&m.accBytes, m.accCtr, m.owner[t], len(data))
	m.Dx.Comm.WinAcc(m.winName(m.owner[t]), m.offset[t], data)
	if m.ab != nil {
		m.accParity(bi, bj, data)
	}
}

// At reads one element, one-sided. Convenience for tests and spot
// checks; bulk readers should move tiles (see TileReader).
func (m *BlockMat) At(i, j int) float64 {
	bi, bj := i/m.BS, j/m.BS
	t := m.tileIndex(bi, bj)
	var buf [1]float64
	m.countTraffic(&m.getBytes, m.getCtr, m.owner[t], 1)
	m.Dx.Comm.WinGet(m.winName(m.owner[t]), m.offset[t]+(i%m.BS)*m.BS+(j%m.BS), buf[:])
	return buf[0]
}

// Traffic returns the off-rank one-sided bytes this rank moved through
// the matrix since creation (get, put, acc).
func (m *BlockMat) Traffic() (get, put, acc int64) {
	return m.getBytes.Load(), m.putBytes.Load(), m.accBytes.Load()
}

// Zero collectively clears the matrix. On an ABFT matrix the parity
// region is rewritten with zeros directly (not via PutTile deltas),
// which also resets any accumulated floating-point drift in the
// checksums.
func (m *BlockMat) Zero() {
	m.Dx.Comm.Barrier() // fence in-flight one-sided reads before mutating
	buf := make([]float64, m.BS*m.BS)
	me := m.Dx.Comm.Rank()
	for bi := 0; bi < m.NB; bi++ {
		for bj := 0; bj < m.NB; bj++ {
			if m.owner[bi*m.NB+bj] == me {
				if m.ab != nil {
					m.rawPutTile(bi, bj, buf)
				} else {
					m.PutTile(bi, bj, buf)
				}
			}
		}
	}
	if m.ab != nil {
		m.zeroParity()
	}
	m.Dx.Comm.Barrier()
}

// checksum windows: one int64 slot per rank, keyed by matrix id. The
// two-barrier protocol (store, barrier, read+verify, barrier) makes the
// window safely reusable across successive collective calls.
func (m *BlockMat) verifySame(ck uint64, op string) error {
	comm := m.Dx.Comm
	name := fmt.Sprintf("dm.ck.%d", m.id)
	comm.CounterStore(name, comm.Rank(), int64(ck))
	comm.Barrier()
	var err error
	for r := 0; r < comm.Size(); r++ {
		if got := uint64(comm.CounterLoad(name, r)); got != ck {
			err = fmt.Errorf("distmat: %s checksum mismatch: rank %d has %016x, rank %d has %016x",
				op, comm.Rank(), ck, r, got)
			break
		}
	}
	comm.Barrier()
	return err
}

// ScatterDense collectively distributes a replicated dense matrix into
// the tiles. Every rank passes its own copy of d; a Fletcher-64 checksum
// agreement across ranks rejects divergent replicas — the checkpoint
// interop guard: a warm-start density loaded from disk must be
// bit-identical everywhere before it is sharded.
func (m *BlockMat) ScatterDense(d *linalg.Matrix) error {
	if d.Rows != m.N || d.Cols != m.N {
		return fmt.Errorf("distmat: scatter of %dx%d into %dx%d", d.Rows, d.Cols, m.N, m.N)
	}
	ck := integrity.ChecksumPayload(d.Data, []int{d.Rows, d.Cols})
	if err := m.verifySame(ck, "scatter"); err != nil {
		return err
	}
	bs := m.BS
	buf := make([]float64, bs*bs)
	me := m.Dx.Comm.Rank()
	for bi := 0; bi < m.NB; bi++ {
		for bj := 0; bj < m.NB; bj++ {
			if m.owner[bi*m.NB+bj] != me {
				continue
			}
			for i := range buf {
				buf[i] = 0
			}
			for r := 0; r < bs && bi*bs+r < m.N; r++ {
				row := d.Row(bi*bs + r)
				for c := 0; c < bs && bj*bs+c < m.N; c++ {
					buf[r*bs+c] = row[bj*bs+c]
				}
			}
			m.PutTile(bi, bj, buf)
		}
	}
	m.Dx.Comm.Barrier()
	return nil
}

// GatherVerified collectively rebuilds the replicated dense matrix on
// every rank and verifies all ranks assembled a bit-identical copy
// (Fletcher-64 agreement) — the checkpoint-interop path back out of the
// distributed representation.
func (m *BlockMat) GatherVerified() (*linalg.Matrix, error) {
	if m.ab != nil {
		// Verify-on-gather: never hand back a replicated copy assembled
		// from tiles the checksum invariant would have rejected.
		if _, err := m.AuditParity(); err != nil {
			return nil, err
		}
	}
	bs := m.BS
	out := linalg.NewSquare(m.N)
	buf := make([]float64, bs*bs)
	for bi := 0; bi < m.NB; bi++ {
		for bj := 0; bj < m.NB; bj++ {
			m.GetTile(bi, bj, buf)
			for r := 0; r < bs && bi*bs+r < m.N; r++ {
				row := out.Row(bi*bs + r)
				for c := 0; c < bs && bj*bs+c < m.N; c++ {
					row[bj*bs+c] = buf[r*bs+c]
				}
			}
		}
	}
	ck := integrity.ChecksumPayload(out.Data, []int{out.Rows, out.Cols})
	if err := m.verifySame(ck, "gather"); err != nil {
		return nil, err
	}
	return out, nil
}
