package distmat

import (
	"fmt"
	"math"
)

// Distributed BLAS-3-ish primitives. Every function here is collective:
// all ranks of the world call it at the same point with the same
// arguments, and all end on a barrier, so a sequence of ops needs no
// extra synchronization between them. Mutating ops additionally OPEN
// with a barrier: window storage is shared, so a rank that reaches the
// op early must not overwrite tiles a slower rank is still reading
// one-sided — the opening fence closes the read epoch before the first
// write. Tile-aligned binary ops require operands of identical shape
// (same N, BS and grid), which guarantees co-location: matching tiles
// of both operands live on the same rank, so element-wise work is pure
// local arithmetic.

// forOwned visits every tile the calling rank owns.
func (m *BlockMat) forOwned(visit func(bi, bj int)) {
	me := m.Dx.Comm.Rank()
	for bi := 0; bi < m.NB; bi++ {
		for bj := 0; bj < m.NB; bj++ {
			if m.owner[bi*m.NB+bj] == me {
				visit(bi, bj)
			}
		}
	}
}

// tileMulAdd adds a*b into c (bs x bs row-major tiles), skipping zero
// a-elements (padded tiles make these common).
func tileMulAdd(c, a, b []float64, bs int) {
	for i := 0; i < bs; i++ {
		arow := a[i*bs : (i+1)*bs]
		crow := c[i*bs : (i+1)*bs]
		for k := 0; k < bs; k++ {
			v := arow[k]
			if v == 0 {
				continue
			}
			brow := b[k*bs : (k+1)*bs]
			for j := 0; j < bs; j++ {
				crow[j] += v * brow[j]
			}
		}
	}
}

// MatMul computes c = a * b. c must not alias a or b. Each rank computes
// only its owned tiles of c, streaming the needed row of a-tiles and
// column of b-tiles through one-sided gets — the SUMMA-style inner
// product over the block dimension.
func MatMul(c, a, b *BlockMat) {
	c.sameShape(a)
	c.sameShape(b)
	if c == a || c == b {
		panic("distmat: MatMul output aliases an input")
	}
	c.Dx.Comm.Barrier()
	bs := c.BS
	abuf := make([]float64, bs*bs)
	bbuf := make([]float64, bs*bs)
	ctile := make([]float64, bs*bs)
	c.forOwned(func(bi, bj int) {
		for i := range ctile {
			ctile[i] = 0
		}
		for k := 0; k < c.NB; k++ {
			a.GetTile(bi, k, abuf)
			b.GetTile(k, bj, bbuf)
			tileMulAdd(ctile, abuf, bbuf, bs)
		}
		c.PutTile(bi, bj, ctile)
	})
	c.Dx.Comm.Barrier()
}

// Copy sets dst = src (same shape).
func Copy(dst, src *BlockMat) {
	dst.sameShape(src)
	dst.Dx.Comm.Barrier()
	buf := make([]float64, dst.BS*dst.BS)
	dst.forOwned(func(bi, bj int) {
		src.GetTile(bi, bj, buf)
		dst.PutTile(bi, bj, buf)
	})
	dst.Dx.Comm.Barrier()
}

// Scale multiplies every element of m by s.
func Scale(m *BlockMat, s float64) {
	m.Dx.Comm.Barrier()
	buf := make([]float64, m.BS*m.BS)
	m.forOwned(func(bi, bj int) {
		m.GetTile(bi, bj, buf)
		for i := range buf {
			buf[i] *= s
		}
		m.PutTile(bi, bj, buf)
	})
	m.Dx.Comm.Barrier()
}

// Axpby sets y = a*x + b*y element-wise (same shape).
func Axpby(y, x *BlockMat, a, b float64) {
	y.sameShape(x)
	y.Dx.Comm.Barrier()
	xbuf := make([]float64, y.BS*y.BS)
	ybuf := make([]float64, y.BS*y.BS)
	y.forOwned(func(bi, bj int) {
		x.GetTile(bi, bj, xbuf)
		y.GetTile(bi, bj, ybuf)
		for i := range ybuf {
			ybuf[i] = a*xbuf[i] + b*ybuf[i]
		}
		y.PutTile(bi, bj, ybuf)
	})
	y.Dx.Comm.Barrier()
}

// AddScaledIdentity adds s to every diagonal element of m.
func AddScaledIdentity(m *BlockMat, s float64) {
	m.Dx.Comm.Barrier()
	bs := m.BS
	buf := make([]float64, bs*bs)
	m.forOwned(func(bi, bj int) {
		if bi != bj {
			return
		}
		m.GetTile(bi, bj, buf)
		for r := 0; r < bs && bi*bs+r < m.N; r++ {
			buf[r*bs+r] += s
		}
		m.PutTile(bi, bj, buf)
	})
	m.Dx.Comm.Barrier()
}

// LinearCombine sets dst = sum_i coefs[i]*mats[i] (all same shape).
// dst may appear among mats: each tile's inputs are read before the tile
// is written, and tiles are co-located, so no rank observes a partial
// update.
func LinearCombine(dst *BlockMat, coefs []float64, mats []*BlockMat) {
	if len(coefs) != len(mats) {
		panic(fmt.Sprintf("distmat: %d coefficients for %d matrices", len(coefs), len(mats)))
	}
	for _, m := range mats {
		dst.sameShape(m)
	}
	dst.Dx.Comm.Barrier()
	buf := make([]float64, dst.BS*dst.BS)
	acc := make([]float64, dst.BS*dst.BS)
	dst.forOwned(func(bi, bj int) {
		for i := range acc {
			acc[i] = 0
		}
		for t, m := range mats {
			m.GetTile(bi, bj, buf)
			for i := range acc {
				acc[i] += coefs[t] * buf[i]
			}
		}
		dst.PutTile(bi, bj, acc)
	})
	dst.Dx.Comm.Barrier()
}

// AntiSymmetrize sets e = a - a^T (same shape). The commutator-residual
// builder for orthonormal-basis DIIS: with a = F'D', e is [F', D'] up to
// the symmetry of the operands.
func AntiSymmetrize(e, a *BlockMat) {
	e.sameShape(a)
	if e == a {
		panic("distmat: AntiSymmetrize output aliases its input")
	}
	e.Dx.Comm.Barrier()
	bs := e.BS
	buf := make([]float64, bs*bs)
	tbuf := make([]float64, bs*bs)
	out := make([]float64, bs*bs)
	e.forOwned(func(bi, bj int) {
		a.GetTile(bi, bj, buf)
		a.GetTile(bj, bi, tbuf)
		for r := 0; r < bs; r++ {
			for c := 0; c < bs; c++ {
				out[r*bs+c] = buf[r*bs+c] - tbuf[c*bs+r]
			}
		}
		e.PutTile(bi, bj, out)
	})
	e.Dx.Comm.Barrier()
}

// UnfoldLower mirrors the lower triangle into the upper one — the
// distributed Finalize for tile-accumulated Fock builds, which write
// every symmetry-unique contribution at its canonical (max, min)
// location and leave the strict upper triangle zero.
func UnfoldLower(m *BlockMat) {
	bs := m.BS
	buf := make([]float64, bs*bs)
	out := make([]float64, bs*bs)
	m.Dx.Comm.Barrier() // all accumulates must land before tiles are read
	m.forOwned(func(bi, bj int) {
		if bi < bj {
			return
		}
		m.GetTile(bi, bj, buf)
		if bi == bj {
			for r := 0; r < bs; r++ {
				for c := r + 1; c < bs; c++ {
					buf[r*bs+c] = buf[c*bs+r]
				}
			}
			m.PutTile(bi, bj, buf)
			return
		}
		for r := 0; r < bs; r++ {
			for c := 0; c < bs; c++ {
				out[c*bs+r] = buf[r*bs+c]
			}
		}
		m.PutTile(bj, bi, out)
	})
	m.Dx.Comm.Barrier()
}

// Trace returns tr(m), identical on every rank (local partial + global
// sum; the in-order allreduce makes the value deterministic, which the
// purification branch decisions rely on).
func Trace(m *BlockMat) float64 {
	bs := m.BS
	buf := make([]float64, bs*bs)
	sum := 0.0
	m.forOwned(func(bi, bj int) {
		if bi != bj {
			return
		}
		m.GetTile(bi, bj, buf)
		for r := 0; r < bs && bi*bs+r < m.N; r++ {
			sum += buf[r*bs+r]
		}
	})
	v := []float64{sum}
	m.Dx.GSumF(v)
	m.Dx.Comm.Barrier()
	return v[0]
}

// Dot returns the element-wise inner product <a, b>, identical on every
// rank.
func Dot(a, b *BlockMat) float64 {
	a.sameShape(b)
	abuf := make([]float64, a.BS*a.BS)
	bbuf := make([]float64, a.BS*a.BS)
	sum := 0.0
	a.forOwned(func(bi, bj int) {
		a.GetTile(bi, bj, abuf)
		b.GetTile(bi, bj, bbuf)
		for i := range abuf {
			sum += abuf[i] * bbuf[i]
		}
	})
	v := []float64{sum}
	a.Dx.GSumF(v)
	a.Dx.Comm.Barrier()
	return v[0]
}

// FrobeniusNorm returns ||m||_F, identical on every rank.
func FrobeniusNorm(m *BlockMat) float64 { return math.Sqrt(Dot(m, m)) }

// FrobSqDiff returns ||a - b||_F^2, identical on every rank.
func FrobSqDiff(a, b *BlockMat) float64 {
	a.sameShape(b)
	abuf := make([]float64, a.BS*a.BS)
	bbuf := make([]float64, a.BS*a.BS)
	sum := 0.0
	a.forOwned(func(bi, bj int) {
		a.GetTile(bi, bj, abuf)
		b.GetTile(bi, bj, bbuf)
		for i := range abuf {
			d := abuf[i] - bbuf[i]
			sum += d * d
		}
	})
	v := []float64{sum}
	a.Dx.GSumF(v)
	a.Dx.Comm.Barrier()
	return v[0]
}

// RMSDiff returns sqrt(sum (a-b)^2 / N^2) — the distributed counterpart
// of linalg.Matrix.RMSDiff over the logical N x N elements (padding is
// zero in both operands and contributes nothing).
func RMSDiff(a, b *BlockMat) float64 {
	return math.Sqrt(FrobSqDiff(a, b) / float64(a.N*a.N))
}

// Gershgorin returns spectral bounds [lo, hi] of the symmetric matrix m
// from Gershgorin discs: every eigenvalue lies within radius
// sum_{j!=i} |m_ij| of some diagonal element. Each rank accumulates
// partial diagonal and absolute-row-sum vectors over its tiles; two
// global sums make the bounds identical everywhere.
func Gershgorin(m *BlockMat) (lo, hi float64) {
	bs := m.BS
	buf := make([]float64, bs*bs)
	diag := make([]float64, m.N)
	absRow := make([]float64, m.N)
	m.forOwned(func(bi, bj int) {
		m.GetTile(bi, bj, buf)
		for r := 0; r < bs && bi*bs+r < m.N; r++ {
			row := bi*bs + r
			for c := 0; c < bs && bj*bs+c < m.N; c++ {
				v := buf[r*bs+c]
				absRow[row] += math.Abs(v)
				if bi == bj && r == c {
					diag[row] = v
				}
			}
		}
	})
	m.Dx.GSumF(diag)
	m.Dx.GSumF(absRow)
	m.Dx.Comm.Barrier()
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < m.N; i++ {
		r := absRow[i] - math.Abs(diag[i])
		if diag[i]-r < lo {
			lo = diag[i] - r
		}
		if diag[i]+r > hi {
			hi = diag[i] + r
		}
	}
	return lo, hi
}
