package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// --- Histogram.Percentile edge cases -------------------------------------

func TestPercentileEmpty(t *testing.T) {
	var h Histogram
	for _, p := range []float64{0, 0.5, 1} {
		if got := h.Percentile(p); got != 0 {
			t.Errorf("empty histogram Percentile(%g) = %d, want 0", p, got)
		}
	}
	var nilH *Histogram
	if got := nilH.Percentile(0.5); got != 0 {
		t.Errorf("nil histogram Percentile = %d, want 0", got)
	}
}

func TestPercentileSingleObservation(t *testing.T) {
	var h Histogram
	h.Observe(100)
	// Every quantile of a one-point distribution is that point; the
	// bucket bound (128) must be clamped to the observed max.
	for _, p := range []float64{0, 0.001, 0.5, 1, 2} {
		if got := h.Percentile(p); got != 100 {
			t.Errorf("Percentile(%g) = %d, want 100", p, got)
		}
	}
}

func TestPercentileBounds(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	p0 := h.Percentile(0) // clamps to the first observation's bucket
	p50 := h.Percentile(0.5)
	p99 := h.Percentile(0.99)
	p100 := h.Percentile(1)
	if p100 != h.Max() {
		t.Errorf("p100 = %d, want max %d", p100, h.Max())
	}
	if !(p0 <= p50 && p50 <= p99 && p99 <= p100) {
		t.Errorf("percentiles not monotone: p0=%d p50=%d p99=%d p100=%d", p0, p50, p99, p100)
	}
	// Log2 buckets: p50 of 1..1000 must land in the bucket covering 500,
	// i.e. upper bound 512.
	if p50 != 512 {
		t.Errorf("p50 = %d, want 512 (log2 bucket covering 500)", p50)
	}
}

// --- Prometheus exposition ------------------------------------------------

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("svc.jobs.accepted").Add(2)
	r.Counter(`svc.http.requests{route="/v1/jobs",code="202"}`).Add(3)
	r.Gauge("svc.queue.depth").Set(1)
	r.Histogram("svc.queue.depth").Observe(2) // name collides with the gauge
	h := r.Histogram("svc.queue.wait_ns")
	h.Observe(1)
	h.Observe(1024)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, map[string]string{"replica": "r0"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE hf_svc_jobs_accepted_total counter\n",
		`hf_svc_jobs_accepted_total{replica="r0"} 2` + "\n",
		`hf_svc_http_requests_total{replica="r0",route="/v1/jobs",code="202"} 3` + "\n",
		"# TYPE hf_svc_queue_depth gauge\n",
		`hf_svc_queue_depth{replica="r0"} 1` + "\n",
		// gauge/histogram name collision: the histogram gains _hist
		"# TYPE hf_svc_queue_depth_hist histogram\n",
		// _ns histograms export in seconds with cumulative le buckets
		"# TYPE hf_svc_queue_wait_seconds histogram\n",
		`hf_svc_queue_wait_seconds_bucket{replica="r0",le="1e-09"} 1` + "\n",
		`hf_svc_queue_wait_seconds_bucket{replica="r0",le="+Inf"} 2` + "\n",
		`hf_svc_queue_wait_seconds_count{replica="r0"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Cumulative: the 1024ns bucket must count both observations.
	if !strings.Contains(out, `le="1.024e-06"} 2`) {
		t.Errorf("1024ns bucket not cumulative:\n%s", out)
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2, map[string]string{"replica": "r0"}); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("WritePrometheus output not deterministic")
	}
}

// --- Trace IDs ------------------------------------------------------------

func TestTraceIDMintAndSanitize(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || a == b {
		t.Errorf("minted IDs %q, %q: want 16 hex chars, distinct", a, b)
	}
	if got := SanitizeTraceID(a); got != a {
		t.Errorf("minted ID rejected by sanitizer: %q -> %q", a, got)
	}
	cases := map[string]string{
		"deadbeef01234567":      "deadbeef01234567",
		"AB-12-cd":              "AB-12-cd",
		"":                      "",
		"not hex!":              "",
		"ghij":                  "",
		strings.Repeat("a", 65): "",
	}
	for in, want := range cases {
		if got := SanitizeTraceID(in); got != want {
			t.Errorf("SanitizeTraceID(%q) = %q, want %q", in, got, want)
		}
	}
}

// --- Flight recorder ------------------------------------------------------

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(4)
	var dumped *FlightDump
	f.SetOnDump(func(d *FlightDump) { dumped = d })
	for i := 0; i < 6; i++ {
		f.Note(FlightEntry{Kind: FlightLog, Msg: strings.Repeat("x", i+1)})
	}
	d := f.Dump("test")
	if d.Recorded != 6 || !d.Truncated || len(d.Entries) != 4 {
		t.Fatalf("dump recorded=%d truncated=%v entries=%d, want 6/true/4",
			d.Recorded, d.Truncated, len(d.Entries))
	}
	// Chronological: the oldest surviving entry is #3 (len 3).
	if got := d.Entries[0].Msg; got != "xxx" {
		t.Errorf("oldest surviving entry %q, want \"xxx\"", got)
	}
	if got := d.Entries[3].Msg; got != "xxxxxx" {
		t.Errorf("newest entry %q, want \"xxxxxx\"", got)
	}
	if dumped != d || f.LastDump() != d {
		t.Error("OnDump callback / LastDump disagree with the returned dump")
	}

	var nilF *FlightRecorder
	nilF.Note(FlightEntry{})
	if nilF.Dump("x") != nil || nilF.LastDump() != nil || nilF.Recorded() != 0 {
		t.Error("nil FlightRecorder not inert")
	}
}

// --- Trace stamping + continuity ------------------------------------------

// recordChain records one full traced request chain plus optional
// untraced background spans into a fresh session and returns the trace
// JSON.
func recordChain(t *testing.T, traceID string, orphan bool) []byte {
	t.Helper()
	s := NewSession()
	ts := s.WithTrace(traceID)
	for _, c := range []struct{ cat, name string }{
		{"svc.job", "job-1"},
		{"job.run", "serial"},
		{"scf.iter", "iter-1"},
		{"fock.build", "shared"},
		{"mpi.op", "allreduce"},
	} {
		ts.Span(c.cat, c.name, DriverPid, 0, nil)()
	}
	if orphan {
		s.Span("fock.task", "pair", 0, 1, nil)() // untraced span in a traced category
	}
	s.Span("recovery.restore", "ckpt", 0, 0, nil)() // non-traced category: always fine
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWithTraceStampsSpanArgs(t *testing.T) {
	s := NewSession()
	ts := s.WithTrace("feedface00000001")
	if ts == s {
		t.Fatal("WithTrace returned the untraced receiver")
	}
	if s.WithTrace("") != s {
		t.Error("WithTrace(\"\") should return the receiver unchanged")
	}
	ts.Span("svc.job", "j", DriverPid, 0, map[string]any{"k": "v"})()
	ts.Instant("svc.submit", "accepted", DriverPid, 0, nil)
	events := s.Recorder.Events()
	if len(events) != 2 {
		t.Fatalf("recorded %d events, want 2", len(events))
	}
	for _, e := range events {
		if e.Args[TraceArgKey] != "feedface00000001" {
			t.Errorf("%s %q args = %v, want trace stamped", e.Cat, e.Name, e.Args)
		}
	}
	if events[0].Args["k"] != "v" {
		t.Error("caller args lost when stamping the trace ID")
	}
}

func TestValidateContinuity(t *testing.T) {
	data := recordChain(t, "cafe000000000001", false)
	stats, err := ValidateContinuity(data)
	if err != nil {
		t.Fatalf("continuity: %v", err)
	}
	if stats.Traces != 1 || stats.Spans != 5 {
		t.Errorf("stats traces=%d spans=%d, want 1/5", stats.Traces, stats.Spans)
	}
	if stats.PerTrace["cafe000000000001"]["fock.build"] != 1 {
		t.Errorf("per-trace categories %v", stats.PerTrace)
	}
}

func TestValidateContinuityOrphan(t *testing.T) {
	data := recordChain(t, "cafe000000000002", true)
	if _, err := ValidateContinuity(data); err == nil || !strings.Contains(err.Error(), "orphan") {
		t.Fatalf("orphan span not rejected: %v", err)
	}
}

func TestValidateContinuityBrokenChain(t *testing.T) {
	s := NewSession()
	ts := s.WithTrace("cafe000000000003")
	ts.Span("svc.job", "j", DriverPid, 0, nil)() // never reaches scf/fock
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateContinuity(buf.Bytes()); err == nil || !strings.Contains(err.Error(), "chain broken") {
		t.Fatalf("broken chain not rejected: %v", err)
	}
}

func TestValidateContinuityInactive(t *testing.T) {
	// No svc.job spans at all (a standalone hfrun trace): untraced
	// scf/fock spans are fine and the file passes trivially.
	s := NewSession()
	s.Span("scf.iter", "iter-1", 0, 0, nil)()
	s.Span("fock.build", "shared", 0, 0, nil)()
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	stats, err := ValidateContinuity(buf.Bytes())
	if err != nil {
		t.Fatalf("inactive trace rejected: %v", err)
	}
	if stats.Traces != 0 || stats.Spans != 0 {
		t.Errorf("inactive stats %+v, want zeros", stats)
	}
}

func TestSessionLogfAndDumpFlight(t *testing.T) {
	s := NewSession()
	s.Logf("svc", "job %s failed", "j-1")
	if got := s.Counter("obs.flight.records").Value(); got != 1 {
		t.Errorf("obs.flight.records = %d, want 1", got)
	}
	d := s.DumpFlight("test")
	if d == nil || len(d.Entries) != 1 || d.Entries[0].Msg != "job j-1 failed" {
		t.Fatalf("dump %+v, want the log line", d)
	}
	if got := s.Counter("obs.flight.dumps").Value(); got != 1 {
		t.Errorf("obs.flight.dumps = %d, want 1", got)
	}
	var nilS *Session
	nilS.Logf("svc", "x")
	if nilS.DumpFlight("x") != nil {
		t.Error("nil session DumpFlight not inert")
	}
}
