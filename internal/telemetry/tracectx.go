package telemetry

// Request-scoped trace context: a trace ID minted at HTTP ingress and
// propagated — via the X-HF-Trace header across fleet hops, via a
// context.Context through the job queue and runner, and via derived
// Sessions (Session.WithTrace) into every span the SCF/Fock/DDI/MPI
// layers record — so one client request can be stitched into a single
// waterfall no matter how many replicas and layers it crossed.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// TraceHeader is the HTTP header carrying a trace ID between fleet
// replicas (forwarded submits, peer cache fetches) and from clients that
// want to supply their own correlation ID.
const TraceHeader = "X-HF-Trace"

// TraceArgKey is the span-args key a traced Session stamps the trace ID
// under; waterfall stitching and continuity validation key off it.
const TraceArgKey = "trace"

// maxTraceIDLen bounds an externally supplied trace ID.
const maxTraceIDLen = 64

// TraceContext travels with one request through the job pipeline.
type TraceContext struct {
	TraceID string // hex trace ID ("" = untraced)
	Tid     int    // lane hint for spans recorded under this trace (worker index)
}

// traceSeq backs the collision-resistant fallback when crypto/rand is
// unavailable (it never is in practice, but minting must not fail).
var traceSeq atomic.Uint64

// NewTraceID mints a 16-hex-digit random trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%015x", traceSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// SanitizeTraceID validates an externally supplied trace ID (header
// value): hex digits and dashes, bounded length. Anything else returns
// "" so the caller mints a fresh ID instead of propagating garbage into
// metric names and trace files.
func SanitizeTraceID(id string) string {
	if id == "" || len(id) > maxTraceIDLen {
		return ""
	}
	for _, c := range id {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f', c >= 'A' && c <= 'F', c == '-':
		default:
			return ""
		}
	}
	return id
}

// traceCtxKey is the context key for a TraceContext.
type traceCtxKey struct{}

// ContextWithTrace attaches tc to ctx.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext extracts the TraceContext from ctx (zero value and
// false when absent).
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	if ctx == nil {
		return TraceContext{}, false
	}
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}
