// Package telemetry is the unified observability layer of the HF
// runtime: a concurrency-safe metrics registry (counters, gauges,
// log-scale histograms), a per-rank/per-thread event recorder emitting
// Chrome trace-event JSON (loadable in chrome://tracing and Perfetto),
// and a load-imbalance collector reducing per-rank Fock-build shares to
// max/mean factors.
//
// Span taxonomy (the `cat` field of trace events):
//
//	scf.iter          one SCF iteration (args: energy, dE, rmsD)
//	fock.build        one collective Fock build, named by variant
//	fock.task         one DLB task's work on one rank/thread
//	mpi.op            a blocking MPI operation (recv, barrier, bcast, ...)
//	dlb.draw          one dynamic-load-balancer index draw
//	recovery.reissue  a task lease stolen from a failed rank
//	recovery.restore  a checkpoint restore (or corrupt-checkpoint reject)
//	recovery.restart  a shrink-and-restart transition
//	integrity         instant: a data-integrity event (fock-quarantine,
//	                  density-invalid, watchdog-<rung>)
//
// Counter taxonomy of the data-integrity layer (audited against each
// other by tests and the `scaling -exp sdc` gate — every injected
// corruption must show up as detected):
//
//	sdc.injected[.<site>]    corruptions landed by fault injection, by
//	                         site (send, fock, checkpoint)
//	sdc.detected[.<layer>]   corruptions caught, by detection layer
//	                         (transport, fock, density, checkpoint)
//	sdc.retries              transport retransmits requested
//	sdc.recovered            corrupted messages repaired by retransmit
//	sdc.escalated            persistent corruption escalated to RankFailure
//	integrity.fock.recomputed     quarantined Fock builds rebuilt clean
//	integrity.watchdog.escalations  convergence-watchdog ladder steps
//
// Serving-layer taxonomy (internal/service; spans on the DriverPid lane
// with tid = worker index, category "svc.job"):
//
//	svc.jobs.accepted/rejected/completed/failed/canceled  admission and
//	                         terminal-state counts of the job queue
//	svc.jobs.retried         bounded-retry requeues
//	svc.jobs.coalesced       submissions deduped onto an in-flight job
//	svc.cache.hit/miss       result-cache outcomes (canonical-hash keyed)
//	svc.queue.depth          gauge (current) + histogram (percentiles)
//	svc.queue.wait_ns        queued-to-claimed latency
//	svc.job.run_ns           per-attempt run wall time
//	svc.request.post_ns      POST /v1/jobs handler latency
//	scf.canceled             SCF loops stopped by context cancellation
//
// Durability and fleet taxonomy (write-ahead job log + multi-replica
// routing in internal/service; audited by the `scaling -exp fleet`
// kill-a-replica gate):
//
//	svc.cache.evict          LRU result-cache evictions (hit/miss above)
//	svc.jobs.quota_rejected  submissions bounced by a per-tenant quota
//	svc.jobs.reenqueued      queued/running-at-crash jobs re-enqueued
//	                         from the WAL at boot
//	svc.wal.appends          records fsync'd to the write-ahead job log
//	svc.wal.replayed         records recovered at boot replay
//	svc.wal.discarded        bytes dropped at the first torn/corrupt
//	                         record (consistent-prefix recovery)
//	svc.wal.compactions      segment compaction passes on drain
//	svc.fleet.forwarded      submissions proxied to the owning replica
//	svc.fleet.peer_hit       cache misses satisfied from a peer's cache
//	svc.fleet.handoff        jobs served locally because the owner was
//	                         unreachable
//
// Performance-fault taxonomy (chaos injection in internal/mpi and the
// straggler mitigation in internal/ddi; audited by the `scaling -exp
// chaos` gate):
//
//	chaos.dups               duplicate deliveries injected at the mailbox
//	chaos.dups_dropped       stale duplicates dropped by seq-number dedup
//	chaos.reorders           deliveries pushed behind later traffic
//	chaos.partition_held     messages held back by a transient partition
//	chaos.slowdown.events    sustained-straggler stalls applied
//	chaos.slowdown_ns        total injected stall time
//	dlb.hedged               speculative (hedged) lease re-issues
//	dlb.reissued             total re-issues (expiry + steal + hedge)
//	dlb.dedup_dropped        duplicate task results discarded by
//	                         first-writer-wins commit
//	ddi.lease.steals         leases reclaimed from dead ranks
//	ddi.lease.expired        leases reclaimed past their TTL deadline
//	ddi.lease.draws          lease-cursor draws
//	straggler.flagged        gauge: ranks currently over the EWMA k-bar
//
// Request-tracing and observability taxonomy (internal/service; see
// tracectx.go, flight.go, prom.go):
//
//	job.run                  span: one runner attempt (jobs layer), named
//	                         by mode, nested inside its svc.job span
//	svc.lookup               span: last-chance cache/peer dedup lookups
//	                         before a worker pays for a run
//	svc.submit               instant: one POST /v1/jobs admission outcome
//	svc.trace.minted         trace IDs minted at HTTP ingress
//	svc.trace.propagated     trace IDs accepted from X-HF-Trace (fleet
//	                         forwarding or client-supplied)
//	svc.trace.waterfalls     GET /v1/jobs/{id}/trace requests served
//	obs.flight.records       structured log lines recorded in the ring
//	obs.flight.dumps         flight-recorder dumps (job failure, watchdog
//	                         escalation, WAL crash replay)
//	svc.http.requests{route=,code=}  HTTP responses by route and status
//
// Spans recorded through a Session derived with WithTrace carry the
// originating request's trace ID in their args (key "trace"), so one
// request stitches into a single waterfall across service → jobs → scf →
// fock → ddi/mpi, validated by ValidateContinuity / tracecheck -continuity.
//
// Lanes: pid = MPI rank (DriverPid for events outside any rank), tid = 0
// for the rank's main goroutine, 1..T for OpenMP team threads.
//
// Everything is nil-safe: a nil *Session (telemetry disabled) makes every
// instrumentation call a cheap no-op, so the runtime carries the hooks
// unconditionally.
package telemetry

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// DriverPid labels events emitted outside any MPI rank (e.g. the SCF
// recovery driver between attempts).
const DriverPid = -1

// Session bundles the collectors for one run. A Session may carry a
// trace ID (see WithTrace): every span and instant it records then
// stamps the ID into its args, so request-scoped waterfalls can be
// stitched out of the shared Recorder after the fact.
type Session struct {
	Registry *Registry
	Recorder *Recorder
	Loads    *LoadCollector
	Flight   *FlightRecorder

	// TraceID, when non-empty, is stamped into the args of every event
	// this session records (key TraceArgKey). Derived sessions from
	// WithTrace share every collector with their parent.
	TraceID string
}

// NewSession returns a session recording wall-clock events.
func NewSession() *Session {
	return &Session{Registry: NewRegistry(), Recorder: NewRecorder(),
		Loads: NewLoadCollector(), Flight: NewFlightRecorder(0)}
}

// WithTrace returns a session that records into the same collectors but
// stamps traceID into every span and instant. An empty traceID (or a nil
// receiver) returns the receiver unchanged, so untraced call paths pay
// nothing.
func (s *Session) WithTrace(traceID string) *Session {
	if s == nil || traceID == "" || traceID == s.TraceID {
		return s
	}
	d := *s
	d.TraceID = traceID
	return &d
}

// traceArgs stamps the session's trace ID into args (allocating the map
// when needed). Untraced sessions pass args through untouched.
func (s *Session) traceArgs(args map[string]any) map[string]any {
	if s.TraceID == "" {
		return args
	}
	if args == nil {
		return map[string]any{TraceArgKey: s.TraceID}
	}
	args[TraceArgKey] = s.TraceID
	return args
}

// noop is the shared end function returned by spans on a nil session.
var noop = func() {}

// noopArgs is the shared args-accepting end function for a nil session.
var noopArgs = func(map[string]any) {}

// Span starts a span on lane (pid, tid) and returns its end function.
// args (may be nil) are attached to the recorded event.
func (s *Session) Span(cat, name string, pid, tid int, args map[string]any) func() {
	if s == nil || s.Recorder == nil {
		return noop
	}
	start := s.Recorder.Now()
	return func() {
		end := s.Recorder.Now()
		args = s.traceArgs(args)
		s.Recorder.Complete(cat, name, pid, tid, start, end, args)
		s.Flight.Note(FlightEntry{At: end, Kind: FlightSpan, Cat: cat, Name: name,
			Pid: pid, Tid: tid, DurUS: float64(end.Sub(start).Nanoseconds()) / 1e3,
			Trace: s.TraceID, Args: args})
	}
}

// SpanArgsAtEnd is Span for call sites whose args are only known when
// the span closes (e.g. the energy of an SCF iteration).
func (s *Session) SpanArgsAtEnd(cat, name string, pid, tid int) func(args map[string]any) {
	if s == nil || s.Recorder == nil {
		return noopArgs
	}
	start := s.Recorder.Now()
	return func(args map[string]any) {
		end := s.Recorder.Now()
		args = s.traceArgs(args)
		s.Recorder.Complete(cat, name, pid, tid, start, end, args)
		s.Flight.Note(FlightEntry{At: end, Kind: FlightSpan, Cat: cat, Name: name,
			Pid: pid, Tid: tid, DurUS: float64(end.Sub(start).Nanoseconds()) / 1e3,
			Trace: s.TraceID, Args: args})
	}
}

// TimedOp starts a span that also feeds the histogram "<cat>.<name>_ns"
// with the operation's duration — the shape used for per-op wait-time
// metrics (recv wait, barrier wait, DLB draw latency).
func (s *Session) TimedOp(cat, name string, pid, tid int) func() {
	if s == nil || s.Recorder == nil {
		return noop
	}
	hist := s.Histogram(cat + "." + name + "_ns")
	start := s.Recorder.Now()
	return func() {
		end := s.Recorder.Now()
		s.Recorder.Complete(cat, name, pid, tid, start, end, s.traceArgs(nil))
		hist.Observe(end.Sub(start).Nanoseconds())
		s.Flight.Note(FlightEntry{At: end, Kind: FlightSpan, Cat: cat, Name: name,
			Pid: pid, Tid: tid, DurUS: float64(end.Sub(start).Nanoseconds()) / 1e3,
			Trace: s.TraceID})
	}
}

// Instant records a point event.
func (s *Session) Instant(cat, name string, pid, tid int, args map[string]any) {
	if s == nil {
		return
	}
	args = s.traceArgs(args)
	s.Recorder.Instant(cat, name, pid, tid, args)
	s.Flight.Note(FlightEntry{Kind: FlightInstant, Cat: cat, Name: name,
		Pid: pid, Tid: tid, Trace: s.TraceID, Args: args})
}

// Logf records a structured log line into the flight ring (and counts it
// on the obs.flight.records counter). Log lines are postmortem context —
// they never reach the Chrome trace, only flight dumps.
func (s *Session) Logf(cat, format string, a ...any) {
	if s == nil || s.Flight == nil {
		return
	}
	s.Flight.Note(FlightEntry{Kind: FlightLog, Cat: cat,
		Trace: s.TraceID, Msg: fmt.Sprintf(format, a...)})
	s.Counter("obs.flight.records").Add(1)
}

// DumpFlight snapshots the flight ring with the given reason, firing any
// registered persistence callback. Nil-safe; returns the dump (nil when
// the session has no flight recorder).
func (s *Session) DumpFlight(reason string) *FlightDump {
	if s == nil || s.Flight == nil {
		return nil
	}
	s.Counter("obs.flight.dumps").Add(1)
	return s.Flight.Dump(reason)
}

// Counter returns the named counter (nil, a no-op handle, when the
// session is nil).
func (s *Session) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.Registry.Counter(name)
}

// Gauge returns the named gauge.
func (s *Session) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.Registry.Gauge(name)
}

// Histogram returns the named histogram.
func (s *Session) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	return s.Registry.Histogram(name)
}

// RecordLoad reports one rank's share of a Fock build for the imbalance
// report.
func (s *Session) RecordLoad(variant string, rank int, l RankLoad) {
	if s == nil {
		return
	}
	s.Loads.Record(variant, rank, l)
}

// WriteTrace writes the Chrome trace JSON.
func (s *Session) WriteTrace(w io.Writer) error {
	if s == nil {
		return nil
	}
	return s.Recorder.WriteJSON(w)
}

// WriteMetrics writes the metrics snapshot JSON.
func (s *Session) WriteMetrics(w io.Writer) error {
	if s == nil {
		return nil
	}
	return s.Registry.WriteJSON(w)
}

// Summary renders the human-readable end-of-run report: the per-variant
// load-imbalance table plus headline counters and wait-time histograms.
func (s *Session) Summary() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("== telemetry summary ==\n")
	b.WriteString(FormatImbalance(s.Loads.Imbalance()))
	if names := s.Registry.CounterNames(); len(names) > 0 {
		b.WriteString("counters:\n")
		for _, n := range names {
			writePadded(&b, "  "+n, s.Registry.Counter(n).Value())
		}
	}
	if names := s.Registry.HistogramNames(); len(names) > 0 {
		b.WriteString("histograms (count / mean / max):\n")
		for _, n := range names {
			h := s.Registry.Histogram(n)
			if h.Count() == 0 {
				continue
			}
			if strings.HasSuffix(n, "_ns") {
				writeHistLine(&b, n, h.Count(),
					time.Duration(int64(h.Mean())).String(), time.Duration(h.Max()).String())
			} else {
				writeHistLine(&b, n, h.Count(),
					formatInt(int64(h.Mean())), formatInt(h.Max()))
			}
		}
	}
	if d := s.Recorder.Dropped(); d > 0 {
		writePadded(&b, "trace events dropped at cap", d)
	}
	return b.String()
}

func writePadded(b *strings.Builder, label string, v int64) {
	b.WriteString(padTo(label, 36))
	b.WriteString(formatInt(v))
	b.WriteByte('\n')
}

func writeHistLine(b *strings.Builder, name string, count int64, mean, max string) {
	b.WriteString(padTo("  "+name, 36))
	b.WriteString(padTo(formatInt(count), 12))
	b.WriteString(padTo(mean, 12))
	b.WriteString(max)
	b.WriteByte('\n')
}

func padTo(s string, n int) string {
	if len(s) >= n {
		return s + " "
	}
	return s + strings.Repeat(" ", n-len(s))
}

func formatInt(v int64) string {
	// Group thousands for readability: 1234567 -> "1,234,567".
	neg := v < 0
	if neg {
		v = -v
	}
	digits := []byte{}
	for i := 0; ; i++ {
		if i > 0 && i%3 == 0 {
			digits = append(digits, ',')
		}
		digits = append(digits, byte('0'+v%10))
		v /= 10
		if v == 0 {
			break
		}
	}
	if neg {
		digits = append(digits, '-')
	}
	for i, j := 0, len(digits)-1; i < j; i, j = i+1, j-1 {
		digits[i], digits[j] = digits[j], digits[i]
	}
	return string(digits)
}
