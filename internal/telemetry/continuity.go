package telemetry

// Trace-ID continuity validation: given a Chrome trace file, verify
// that every request-scoped span chain — svc.job at the service layer,
// job.run in the runner, scf.iter in the SCF driver, fock.build /
// fock.task in the Fock builders, mpi.op / dlb.draw underneath — shares
// one trace ID per request, and that no span in those categories runs
// untraced ("orphan") once request tracing is active. cmd/tracecheck
// runs this over fleet experiment traces in CI.

import (
	"encoding/json"
	"fmt"
	"sort"
)

// tracedCategories are the span categories that must carry a trace ID
// whenever request tracing is active (i.e. at least one svc.job span
// exists in the file). Standalone hfrun traces have no svc.job spans and
// pass trivially.
var tracedCategories = map[string]bool{
	"svc.job":    true,
	"job.run":    true,
	"scf.iter":   true,
	"fock.build": true,
	"fock.task":  true,
	"mpi.op":     true,
	"dlb.draw":   true,
}

// ContinuityStats summarizes trace-ID continuity across a trace file.
type ContinuityStats struct {
	Traces     int            // distinct trace IDs seen on svc.job spans
	Spans      int            // spans in traced categories
	Categories map[string]int // per-category span counts carrying a trace
	// PerTrace maps trace ID -> set of categories observed under it.
	PerTrace map[string]map[string]int
}

// eventTraceID extracts the stamped trace ID from a span's args.
func eventTraceID(e Event) string {
	if e.Args == nil {
		return ""
	}
	id, _ := e.Args[TraceArgKey].(string)
	return id
}

// ValidateContinuity parses Chrome trace JSON and checks request-scoped
// trace-ID continuity:
//
//   - every svc.job span carries a trace ID;
//   - every trace ID seen on a svc.job span also appears on at least one
//     scf.iter span and one fock.build span (the chain reached the
//     compute layers);
//   - no span in a traced category is an orphan (missing a trace ID)
//     while request tracing is active.
//
// A file with no svc.job spans (a standalone hfrun trace) passes
// trivially with zero Traces.
func ValidateContinuity(data []byte) (*ContinuityStats, error) {
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return nil, fmt.Errorf("telemetry: trace is not valid JSON: %w", err)
	}
	stats := &ContinuityStats{
		Categories: map[string]int{},
		PerTrace:   map[string]map[string]int{},
	}
	active := false
	for _, e := range tf.TraceEvents {
		if e.Ph == PhaseComplete && e.Cat == "svc.job" {
			active = true
			break
		}
	}
	if !active {
		return stats, nil
	}
	for i, e := range tf.TraceEvents {
		if e.Ph != PhaseComplete || !tracedCategories[e.Cat] {
			continue
		}
		stats.Spans++
		id := eventTraceID(e)
		if id == "" {
			return nil, fmt.Errorf(
				"telemetry: orphan span %d: %s %q on pid=%d tid=%d has no %q arg",
				i, e.Cat, e.Name, e.Pid, e.Tid, TraceArgKey)
		}
		stats.Categories[e.Cat]++
		m := stats.PerTrace[id]
		if m == nil {
			m = map[string]int{}
			stats.PerTrace[id] = m
		}
		m[e.Cat]++
	}
	var jobTraces []string
	for id, cats := range stats.PerTrace {
		if cats["svc.job"] > 0 {
			jobTraces = append(jobTraces, id)
		}
	}
	sort.Strings(jobTraces)
	stats.Traces = len(jobTraces)
	if stats.Traces == 0 {
		return nil, fmt.Errorf("telemetry: svc.job spans present but none carry a trace ID")
	}
	for _, id := range jobTraces {
		cats := stats.PerTrace[id]
		for _, need := range []string{"scf.iter", "fock.build"} {
			if cats[need] == 0 {
				return nil, fmt.Errorf(
					"telemetry: trace %s has svc.job spans but no %s span — chain broken before the compute layers",
					id, need)
			}
		}
	}
	return stats, nil
}
