package telemetry

// Load-imbalance profiling: each rank reports its share of every Fock
// build (DLB tasks drawn, quartets computed, wall time); builds are
// matched across ranks by per-rank sequence number (all ranks execute
// the same build sequence collectively), and the collector reduces each
// build to a max/mean imbalance factor — the quantity that justifies a
// dynamic load balancer design: 1.0 is a perfectly balanced build, and
// the paper's fine-grained ij task space exists precisely to keep this
// factor near 1 at high rank counts.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// RankLoad is one rank's share of one build.
type RankLoad struct {
	Tasks    int64         // DLB task indices drawn by this rank
	Quartets int64         // shell quartets this rank evaluated
	Wall     time.Duration // the rank's wall time inside the build
}

// BuildImbalance is the reduction of one build across its ranks.
type BuildImbalance struct {
	Ranks         int
	TaskFactor    float64 // max/mean of per-rank task counts
	QuartetFactor float64 // max/mean of per-rank quartet counts
	WallFactor    float64 // max/mean of per-rank wall times
	TotalTasks    int64
	TotalQuartets int64
	MaxWall       time.Duration
}

// VariantImbalance aggregates a Fock builder variant's builds.
type VariantImbalance struct {
	Variant string
	Builds  []BuildImbalance
	// Mean*Factor average the per-build factors; MaxTaskFactor is the
	// worst build observed.
	MeanTaskFactor    float64
	MaxTaskFactor     float64
	MeanQuartetFactor float64
	MeanWallFactor    float64
}

// LoadCollector gathers per-rank, per-build load records, safe for
// concurrent use by all ranks.
type LoadCollector struct {
	mu       sync.Mutex
	variants map[string]*variantLoads
}

type variantLoads struct {
	nextSeq map[int]int        // rank -> next build sequence number
	builds  []map[int]RankLoad // build seq -> rank -> load
}

// NewLoadCollector returns an empty collector.
func NewLoadCollector() *LoadCollector {
	return &LoadCollector{variants: map[string]*variantLoads{}}
}

// Record reports one rank's share of its next build of the given
// variant. Ranks must record builds in execution order (they do: one
// record per collective build call).
func (lc *LoadCollector) Record(variant string, rank int, l RankLoad) {
	if lc == nil {
		return
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	v := lc.variants[variant]
	if v == nil {
		v = &variantLoads{nextSeq: map[int]int{}}
		lc.variants[variant] = v
	}
	seq := v.nextSeq[rank]
	v.nextSeq[rank] = seq + 1
	for len(v.builds) <= seq {
		v.builds = append(v.builds, map[int]RankLoad{})
	}
	v.builds[seq][rank] = l
}

// factor reduces per-rank values to max/mean (1 when the mean is 0).
func factor(vals []float64) float64 {
	if len(vals) == 0 {
		return 1
	}
	var sum, max float64
	for _, v := range vals {
		sum += v
		if v > max {
			max = v
		}
	}
	mean := sum / float64(len(vals))
	if mean == 0 {
		return 1
	}
	return max / mean
}

// Imbalance reduces every recorded build to its imbalance factors,
// grouped by variant (sorted by variant name).
func (lc *LoadCollector) Imbalance() []VariantImbalance {
	if lc == nil {
		return nil
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	names := make([]string, 0, len(lc.variants))
	for n := range lc.variants {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]VariantImbalance, 0, len(names))
	for _, name := range names {
		v := lc.variants[name]
		vi := VariantImbalance{Variant: name}
		var sumT, sumQ, sumW float64
		for _, ranks := range v.builds {
			if len(ranks) == 0 {
				continue
			}
			var tasks, quartets, walls []float64
			b := BuildImbalance{Ranks: len(ranks)}
			for _, l := range ranks {
				tasks = append(tasks, float64(l.Tasks))
				quartets = append(quartets, float64(l.Quartets))
				walls = append(walls, float64(l.Wall))
				b.TotalTasks += l.Tasks
				b.TotalQuartets += l.Quartets
				if l.Wall > b.MaxWall {
					b.MaxWall = l.Wall
				}
			}
			b.TaskFactor = factor(tasks)
			b.QuartetFactor = factor(quartets)
			b.WallFactor = factor(walls)
			vi.Builds = append(vi.Builds, b)
			sumT += b.TaskFactor
			sumQ += b.QuartetFactor
			sumW += b.WallFactor
			if b.TaskFactor > vi.MaxTaskFactor {
				vi.MaxTaskFactor = b.TaskFactor
			}
		}
		if n := float64(len(vi.Builds)); n > 0 {
			vi.MeanTaskFactor = sumT / n
			vi.MeanQuartetFactor = sumQ / n
			vi.MeanWallFactor = sumW / n
		}
		out = append(out, vi)
	}
	return out
}

// FormatImbalance renders the imbalance rows as the end-of-run report:
// one aggregate line per variant plus a compact per-build factor list.
func FormatImbalance(rows []VariantImbalance) string {
	if len(rows) == 0 {
		return "load imbalance: no builds recorded\n"
	}
	var b strings.Builder
	b.WriteString("load imbalance (max/mean across ranks, averaged over builds; 1.00 = perfect):\n")
	fmt.Fprintf(&b, "  %-16s %7s %6s %10s %10s %10s %11s\n",
		"variant", "builds", "ranks", "task-imb", "quart-imb", "wall-imb", "worst-task")
	for _, r := range rows {
		ranks := 0
		if len(r.Builds) > 0 {
			ranks = r.Builds[0].Ranks
		}
		fmt.Fprintf(&b, "  %-16s %7d %6d %10.2f %10.2f %10.2f %11.2f\n",
			r.Variant, len(r.Builds), ranks,
			r.MeanTaskFactor, r.MeanQuartetFactor, r.MeanWallFactor, r.MaxTaskFactor)
	}
	for _, r := range rows {
		const maxShown = 24
		var parts []string
		for i, bi := range r.Builds {
			if i == maxShown {
				parts = append(parts, fmt.Sprintf("… (+%d more)", len(r.Builds)-maxShown))
				break
			}
			parts = append(parts, fmt.Sprintf("%.2f", bi.TaskFactor))
		}
		fmt.Fprintf(&b, "  %s per-build task factors: %s\n", r.Variant, strings.Join(parts, " "))
	}
	return b.String()
}
