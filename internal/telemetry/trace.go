package telemetry

// Chrome trace-event recording: completed spans and instant markers,
// tagged with a pid/tid lane (here: MPI rank / OpenMP thread), emitted
// as the JSON object format that chrome://tracing and Perfetto load
// directly. Timestamps are microseconds relative to the recorder start.
//
// The recorder is bounded: past MaxEvents it drops (and counts) new
// events instead of growing without limit, so tracing a long run
// degrades gracefully rather than exhausting memory.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"
)

// Event phase constants (the trace-event "ph" field).
const (
	PhaseComplete = "X" // a span with ts + dur
	PhaseInstant  = "i" // a point event
)

// Event is one Chrome trace event.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds since trace start
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope ("t" = thread)
	Args map[string]any `json:"args,omitempty"`
}

// End returns the event's end timestamp (ts for instants).
func (e Event) End() float64 { return e.Ts + e.Dur }

// DefaultMaxEvents bounds a recorder's buffered event count.
const DefaultMaxEvents = 1 << 20

// Recorder buffers trace events, safe for concurrent use.
type Recorder struct {
	now   func() time.Time
	start time.Time

	mu      sync.Mutex
	events  []Event
	max     int
	dropped int64
}

// NewRecorder returns a wall-clock recorder with the default event cap.
func NewRecorder() *Recorder {
	return NewRecorderWithClock(time.Now, DefaultMaxEvents)
}

// NewRecorderWithClock returns a recorder reading time from now (called
// once immediately to fix the trace origin) with the given event cap;
// tests use a fake clock for deterministic output.
func NewRecorderWithClock(now func() time.Time, maxEvents int) *Recorder {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	return &Recorder{now: now, start: now(), max: maxEvents}
}

// Now returns the recorder's current clock reading.
func (r *Recorder) Now() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.now()
}

func (r *Recorder) ts(t time.Time) float64 {
	return float64(t.Sub(r.start).Nanoseconds()) / 1e3
}

// sanitizeArgs replaces non-finite float args (Inf, NaN — e.g. the dE of
// the first SCF iteration) with their string form, since JSON cannot
// encode them and one bad value must not abort the whole trace export.
func sanitizeArgs(args map[string]any) map[string]any {
	for k, v := range args {
		if f, ok := v.(float64); ok && (math.IsInf(f, 0) || math.IsNaN(f)) {
			args[k] = fmt.Sprintf("%v", f)
		}
	}
	return args
}

func (r *Recorder) append(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.events) >= r.max {
		r.dropped++
		return
	}
	r.events = append(r.events, e)
}

// Complete records a finished span [start, end) on lane (pid, tid).
func (r *Recorder) Complete(cat, name string, pid, tid int, start, end time.Time, args map[string]any) {
	if r == nil {
		return
	}
	r.append(Event{
		Name: name, Cat: cat, Ph: PhaseComplete,
		Ts: r.ts(start), Dur: float64(end.Sub(start).Nanoseconds()) / 1e3,
		Pid: pid, Tid: tid, Args: sanitizeArgs(args),
	})
}

// Instant records a point event on lane (pid, tid).
func (r *Recorder) Instant(cat, name string, pid, tid int, args map[string]any) {
	if r == nil {
		return
	}
	r.append(Event{
		Name: name, Cat: cat, Ph: PhaseInstant, S: "t",
		Ts: r.ts(r.now()), Pid: pid, Tid: tid, Args: sanitizeArgs(args),
	})
}

// Events returns a copy of the buffered events.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Dropped returns how many events were discarded at the cap.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// traceFile is the on-disk Chrome trace object format.
type traceFile struct {
	TraceEvents     []Event        `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteJSON writes the buffered events as a Chrome trace JSON object
// ({"traceEvents": [...]}), loadable in chrome://tracing and Perfetto.
func (r *Recorder) WriteJSON(w io.Writer) error {
	events := r.Events()
	if events == nil {
		events = []Event{}
	}
	tf := traceFile{TraceEvents: events, DisplayTimeUnit: "ms"}
	if d := r.Dropped(); d > 0 {
		tf.OtherData = map[string]any{"droppedEvents": d}
	}
	data, err := json.MarshalIndent(tf, "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteTraceEvents writes an arbitrary event slice as a Chrome trace
// JSON object — used to merge several replicas' recorders (with their
// pids offset per replica) into one fleet-wide trace file.
func WriteTraceEvents(w io.Writer, events []Event) error {
	if events == nil {
		events = []Event{}
	}
	data, err := json.MarshalIndent(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"}, "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// --- validation (shared by tests and cmd/tracecheck) ---

// TraceStats summarizes a validated trace.
type TraceStats struct {
	Events     int
	Spans      int
	Instants   int
	Categories map[string]int // events per category
	Lanes      int            // distinct (pid, tid) pairs
	MaxDepth   int            // deepest span nesting observed
}

// ValidateTrace parses Chrome trace JSON (the object format WriteJSON
// emits) and verifies structural well-formedness: every event carries a
// phase and name, complete events have non-negative durations, and on
// each (pid, tid) lane spans nest strictly — any two spans are either
// disjoint or one contains the other. Returns per-category statistics.
func ValidateTrace(data []byte) (*TraceStats, error) {
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return nil, fmt.Errorf("telemetry: trace is not valid JSON: %w", err)
	}
	if len(tf.TraceEvents) == 0 {
		return nil, fmt.Errorf("telemetry: trace contains no events")
	}
	stats := &TraceStats{Events: len(tf.TraceEvents), Categories: map[string]int{}}
	type lane struct{ pid, tid int }
	spans := map[lane][]Event{}
	for i, e := range tf.TraceEvents {
		if e.Ph == "" {
			return nil, fmt.Errorf("telemetry: event %d (%q) has no phase", i, e.Name)
		}
		if e.Name == "" {
			return nil, fmt.Errorf("telemetry: event %d has no name", i)
		}
		stats.Categories[e.Cat]++
		switch e.Ph {
		case PhaseComplete:
			if e.Dur < 0 {
				return nil, fmt.Errorf("telemetry: span %q has negative duration %v", e.Name, e.Dur)
			}
			stats.Spans++
			spans[lane{e.Pid, e.Tid}] = append(spans[lane{e.Pid, e.Tid}], e)
		case PhaseInstant:
			stats.Instants++
		}
	}
	stats.Lanes = len(spans)
	// Per-lane nesting check: sort by (ts asc, dur desc) so a parent
	// precedes its children, then run a containment stack.
	const eps = 1e-3 // microseconds of float tolerance
	for ln, evs := range spans {
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].Ts != evs[j].Ts {
				return evs[i].Ts < evs[j].Ts
			}
			return evs[i].Dur > evs[j].Dur
		})
		var stack []Event
		for _, e := range evs {
			for len(stack) > 0 && stack[len(stack)-1].End() <= e.Ts+eps {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				if e.End() > top.End()+eps {
					return nil, fmt.Errorf(
						"telemetry: span %q [%.3f, %.3f) on pid=%d tid=%d overlaps %q [%.3f, %.3f) without nesting",
						e.Name, e.Ts, e.End(), ln.pid, ln.tid, top.Name, top.Ts, top.End())
				}
			}
			stack = append(stack, e)
			if len(stack) > stats.MaxDepth {
				stats.MaxDepth = len(stack)
			}
		}
	}
	return stats, nil
}
