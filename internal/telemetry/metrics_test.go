package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Add(3)
	c.Add(4)
	if got := r.Counter("x").Value(); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	g := r.Gauge("e")
	g.Set(-75.5)
	if got := r.Gauge("e").Value(); got != -75.5 {
		t.Fatalf("gauge = %v", got)
	}
}

func TestNilHandlesAreNoops(t *testing.T) {
	var r *Registry
	r.Counter("a").Add(1)
	r.Gauge("b").Set(2)
	r.Histogram("c").Observe(3)
	if r.Counter("a").Value() != 0 || r.Gauge("b").Value() != 0 || r.Histogram("c").Count() != 0 {
		t.Fatal("nil registry handles must read as zero")
	}
	var s *Session
	s.Span("cat", "n", 0, 0, nil)()
	s.SpanArgsAtEnd("cat", "n", 0, 0)(map[string]any{"k": 1})
	s.TimedOp("cat", "n", 0, 0)()
	s.Instant("cat", "n", 0, 0, nil)
	s.RecordLoad("v", 0, RankLoad{})
	if s.Summary() != "" {
		t.Fatal("nil session summary should be empty")
	}
	if err := s.WriteTrace(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{0, 1, 2, 3, 4, 1000, -5} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0 || h.Max() != 1000 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	s := h.Snapshot()
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != 7 {
		t.Fatalf("bucket counts sum to %d, want 7", total)
	}
	// v <= 1 lands in bucket 0 (le=1): observations 0, 1, and clamped -5.
	if s.Buckets[0].Le != 1 || s.Buckets[0].Count != 3 {
		t.Fatalf("bucket 0 = %+v", s.Buckets[0])
	}
	// 1000 lands in the le=1024 bucket.
	found := false
	for _, b := range s.Buckets {
		if b.Le == 1024 && b.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("1000 not in le=1024 bucket: %+v", s.Buckets)
	}
}

func TestBucketIndexBounds(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{math.MaxInt64, histBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
		if c.v > 0 && BucketUpperBound(bucketIndex(c.v)) < c.v {
			t.Errorf("upper bound of bucket for %d is below it", c.v)
		}
	}
}

// TestConcurrentUpdates hammers one histogram, counter, and gauge from
// many goroutines; run under -race it proves the lock-free update paths
// are sound, and the totals prove no update was lost.
func TestConcurrentUpdates(t *testing.T) {
	const goroutines = 12
	const per = 2000
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("shared.counter")
			h := r.Histogram("shared.hist")
			ga := r.Gauge("shared.gauge")
			for i := 0; i < per; i++ {
				c.Add(1)
				h.Observe(int64(g*per + i))
				ga.Set(float64(i))
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared.counter").Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
	h := r.Histogram("shared.hist")
	if h.Count() != goroutines*per {
		t.Fatalf("hist count = %d, want %d", h.Count(), goroutines*per)
	}
	if h.Min() != 0 || h.Max() != goroutines*per-1 {
		t.Fatalf("hist min/max = %d/%d", h.Min(), h.Max())
	}
	var sum int64
	for i := int64(0); i < goroutines*per; i++ {
		sum += i
	}
	if h.Sum() != sum {
		t.Fatalf("hist sum = %d, want %d", h.Sum(), sum)
	}
}

func TestSnapshotJSONDeterministicAndFinite(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("ok").Set(1.5)
	r.Gauge("bad").Set(math.Inf(-1))
	r.Gauge("nan").Set(math.NaN())
	r.Histogram("h").Observe(100)

	var b1, b2 bytes.Buffer
	if err := r.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("snapshot JSON not deterministic")
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(b1.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if _, ok := snap.Gauges["bad"]; ok {
		t.Fatal("non-finite gauge must be omitted from the snapshot")
	}
	if snap.Gauges["ok"] != 1.5 || snap.Counters["a"] != 1 || snap.Counters["b"] != 2 {
		t.Fatalf("snapshot contents wrong: %+v", snap)
	}
}
