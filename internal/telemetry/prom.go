package telemetry

// Prometheus text exposition (format 0.0.4) of a Registry snapshot.
//
// The registry's dotted names map to Prometheus conventions:
//
//   - every name is prefixed "hf_" and sanitized (dots → underscores);
//   - counters gain the "_total" suffix;
//   - a registry name of the form `base{k="v",...}` is a labeled series:
//     the base becomes the family, the braces become labels (the JSON
//     form keeps the raw name — both views stay complete);
//   - histograms whose name ends in "_ns" are exported in seconds
//     (suffix "_seconds") with cumulative le buckets at the registry's
//     power-of-two bounds; other histograms keep their raw unit;
//   - const labels (e.g. replica="r0") are attached to every series;
//   - a histogram whose family name would collide with a gauge of the
//     same name (svc.queue.depth is both) gains a "_hist" suffix.
//
// Output is deterministic: families and series sort lexicographically.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promPrefix namespaces every exported family.
const promPrefix = "hf_"

// promName sanitizes a dotted registry name into a Prometheus metric
// name: [a-zA-Z0-9_:] survive, everything else becomes '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(promPrefix) + len(name))
	b.WriteString(promPrefix)
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// splitLabeledName splits `base{k="v",...}` into base and the raw label
// body; a plain name returns ("", base-unchanged... ) with empty labels.
func splitLabeledName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// renderLabels joins const labels, parsed labels, and extras into a
// `{...}` block ("" when empty). Const labels render first, sorted.
func renderLabels(constLabels map[string]string, parsed string, extra ...string) string {
	var parts []string
	keys := make([]string, 0, len(constLabels))
	for k := range constLabels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", k, escapeLabelValue(constLabels[k])))
	}
	if parsed != "" {
		parts = append(parts, parsed)
	}
	parts = append(parts, extra...)
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// promFloat renders a float without exponent surprises.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promSeries is one output line of a family.
type promSeries struct {
	labels string // rendered label block ("" or "{...}")
	value  string
}

// promFamily collects one metric family for sorted emission.
type promFamily struct {
	name   string
	typ    string // counter | gauge | histogram
	series []promSeries
	// raw lines for histograms (already label-rendered, name-suffixed)
	lines []string
}

// WritePrometheus writes the registry snapshot in Prometheus text
// exposition format. constLabels are attached to every series.
func (r *Registry) WritePrometheus(w io.Writer, constLabels map[string]string) error {
	snap := r.Snapshot()
	fams := map[string]*promFamily{}
	add := func(name, typ string) *promFamily {
		f := fams[name]
		if f == nil {
			f = &promFamily{name: name, typ: typ}
			fams[name] = f
		}
		return f
	}

	for raw, v := range snap.Counters {
		base, labels := splitLabeledName(raw)
		fam := add(promName(base)+"_total", "counter")
		fam.series = append(fam.series, promSeries{
			labels: renderLabels(constLabels, labels),
			value:  strconv.FormatInt(v, 10),
		})
	}
	gaugeFams := map[string]bool{}
	for raw, v := range snap.Gauges {
		base, labels := splitLabeledName(raw)
		famName := promName(base)
		gaugeFams[famName] = true
		fam := add(famName, "gauge")
		fam.series = append(fam.series, promSeries{
			labels: renderLabels(constLabels, labels),
			value:  promFloat(v),
		})
	}
	for raw, h := range snap.Histograms {
		base, labels := splitLabeledName(raw)
		scale := 1.0
		famName := ""
		if strings.HasSuffix(base, "_ns") {
			famName = promName(strings.TrimSuffix(base, "_ns")) + "_seconds"
			scale = 1e-9
		} else {
			famName = promName(base)
			if gaugeFams[famName] {
				famName += "_hist" // e.g. svc.queue.depth is both gauge and histogram
			}
		}
		fam := add(famName, "histogram")
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			le := fmt.Sprintf("le=%q", promFloat(float64(b.Le)*scale))
			fam.lines = append(fam.lines, fmt.Sprintf("%s_bucket%s %d",
				famName, renderLabels(constLabels, labels, le), cum))
		}
		fam.lines = append(fam.lines,
			fmt.Sprintf("%s_bucket%s %d", famName, renderLabels(constLabels, labels, `le="+Inf"`), h.Count),
			fmt.Sprintf("%s_sum%s %s", famName, renderLabels(constLabels, labels), promFloat(float64(h.Sum)*scale)),
			fmt.Sprintf("%s_count%s %d", famName, renderLabels(constLabels, labels), h.Count))
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fam := fams[n]
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.name, fam.typ)
		sort.Slice(fam.series, func(i, j int) bool { return fam.series[i].labels < fam.series[j].labels })
		for _, s := range fam.series {
			fmt.Fprintf(&b, "%s%s %s\n", fam.name, s.labels, s.value)
		}
		for _, line := range fam.lines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
