package telemetry

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeClock returns a deterministic clock advancing 1ms per reading.
func fakeClock() func() time.Time {
	base := time.Unix(0, 0)
	n := 0
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

func at(ms int) time.Time { return time.Unix(0, 0).Add(time.Duration(ms) * time.Millisecond) }

// buildSampleTrace records a deterministic two-rank trace with nested
// spans (scf.iter > fock.build > fock.task/mpi.op) and an instant.
func buildSampleTrace() *Recorder {
	rec := NewRecorderWithClock(fakeClock(), 100) // start = 1ms
	for _, pid := range []int{0, 1} {
		rec.Complete("scf.iter", "iteration", pid, 0, at(10), at(90),
			map[string]any{"iter": 1, "energy": -74.96, "dE": math.Inf(-1)})
		rec.Complete("fock.build", "shared-fock", pid, 0, at(12), at(80), nil)
		rec.Complete("dlb.draw", "dlbnext", pid, 0, at(13), at(14), nil)
		rec.Complete("fock.task", "ij-task", pid, 1, at(15), at(40), map[string]any{"i": 2, "j": 1})
		rec.Complete("fock.task", "ij-task", pid, 2, at(15), at(45), map[string]any{"i": 2, "j": 1})
		rec.Complete("mpi.op", "allreduce", pid, 0, at(60), at(78), nil)
		rec.Complete("mpi.op", "recv", pid, 0, at(62), at(70), nil)
	}
	rec.Instant("recovery.reissue", "lease-steal", 0, 0, map[string]any{"task": 7})
	return rec
}

func TestGoldenTrace(t *testing.T) {
	rec := buildSampleTrace()
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_trace.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace JSON differs from golden file %s\ngot:\n%s", golden, buf.String())
	}

	// The emitted JSON must independently pass structural validation.
	stats, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Spans != 14 || stats.Instants != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// Required span taxonomy for a full run.
	for _, cat := range []string{"scf.iter", "fock.build", "fock.task", "mpi.op", "dlb.draw"} {
		if stats.Categories[cat] == 0 {
			t.Errorf("category %q missing", cat)
		}
	}
	// Lanes: 2 pids x (tid 0,1,2) = 6.
	if stats.Lanes != 6 {
		t.Fatalf("lanes = %d, want 6", stats.Lanes)
	}
	// Depth on tid 0: scf.iter > fock.build > mpi.op(allreduce) > mpi.op(recv).
	if stats.MaxDepth != 4 {
		t.Fatalf("max depth = %d, want 4", stats.MaxDepth)
	}
}

func TestValidateTraceRejectsOverlap(t *testing.T) {
	rec := NewRecorderWithClock(fakeClock(), 100)
	// Two spans on the same lane that overlap without nesting.
	rec.Complete("a", "first", 0, 0, at(10), at(50), nil)
	rec.Complete("a", "second", 0, 0, at(30), at(70), nil)
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrace(buf.Bytes()); err == nil {
		t.Fatal("overlapping spans on one lane must fail validation")
	}
	// The same intervals on different lanes are fine.
	rec2 := NewRecorderWithClock(fakeClock(), 100)
	rec2.Complete("a", "first", 0, 0, at(10), at(50), nil)
	rec2.Complete("a", "second", 0, 1, at(30), at(70), nil)
	buf.Reset()
	if err := rec2.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("distinct lanes must not conflict: %v", err)
	}
}

func TestValidateTraceRejectsGarbage(t *testing.T) {
	if _, err := ValidateTrace([]byte("not json")); err == nil {
		t.Fatal("want parse error")
	}
	if _, err := ValidateTrace([]byte(`{"traceEvents":[]}`)); err == nil {
		t.Fatal("want empty-trace error")
	}
	if _, err := ValidateTrace([]byte(`{"traceEvents":[{"name":"x"}]}`)); err == nil {
		t.Fatal("want missing-phase error")
	}
}

func TestRecorderCapAndDropCount(t *testing.T) {
	rec := NewRecorderWithClock(fakeClock(), 3)
	for i := 0; i < 10; i++ {
		rec.Instant("c", "e", 0, 0, nil)
	}
	if got := len(rec.Events()); got != 3 {
		t.Fatalf("buffered = %d, want 3", got)
	}
	if rec.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", rec.Dropped())
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("droppedEvents")) {
		t.Fatal("dropped count missing from trace otherData")
	}
}

func TestConcurrentRecording(t *testing.T) {
	s := NewSession()
	const goroutines = 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				end := s.TimedOp("mpi.op", "barrier", g, 0)
				end()
				s.Instant("recovery.reissue", "steal", g, 0, nil)
				s.RecordLoad("shared-fock", g, RankLoad{Tasks: 1, Quartets: 2, Wall: time.Microsecond})
			}
		}(g)
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	stats, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Spans != goroutines*200 || stats.Instants != goroutines*200 {
		t.Fatalf("stats = %+v", stats)
	}
	if got := s.Histogram("mpi.op.barrier_ns").Count(); got != goroutines*200 {
		t.Fatalf("hist count = %d", got)
	}
}

func TestSanitizeNonFiniteArgs(t *testing.T) {
	rec := NewRecorderWithClock(fakeClock(), 10)
	rec.Complete("c", "s", 0, 0, at(1), at(2),
		map[string]any{"inf": math.Inf(1), "ninf": math.Inf(-1), "nan": math.NaN(), "ok": 1.5})
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatalf("non-finite args must not break JSON export: %v", err)
	}
	ev := rec.Events()[0]
	if ev.Args["ok"] != 1.5 {
		t.Fatalf("finite arg altered: %v", ev.Args["ok"])
	}
	for _, k := range []string{"inf", "ninf", "nan"} {
		if _, isString := ev.Args[k].(string); !isString {
			t.Fatalf("arg %q not stringified: %v", k, ev.Args[k])
		}
	}
}
