package telemetry

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestImbalancePerfectBalance(t *testing.T) {
	lc := NewLoadCollector()
	for rank := 0; rank < 4; rank++ {
		lc.Record("shared-fock", rank, RankLoad{Tasks: 10, Quartets: 100, Wall: time.Millisecond})
	}
	rows := lc.Imbalance()
	if len(rows) != 1 || len(rows[0].Builds) != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	b := rows[0].Builds[0]
	if b.Ranks != 4 || b.TaskFactor != 1 || b.QuartetFactor != 1 || b.WallFactor != 1 {
		t.Fatalf("build = %+v", b)
	}
	if b.TotalTasks != 40 || b.TotalQuartets != 400 {
		t.Fatalf("totals = %+v", b)
	}
}

func TestImbalanceFactorAndSequencing(t *testing.T) {
	lc := NewLoadCollector()
	// Build 1: rank 0 does 30 tasks, rank 1 does 10 -> mean 20, max 30.
	lc.Record("mpi-only", 0, RankLoad{Tasks: 30})
	lc.Record("mpi-only", 1, RankLoad{Tasks: 10})
	// Build 2 (each rank's second record): perfectly balanced.
	lc.Record("mpi-only", 1, RankLoad{Tasks: 20})
	lc.Record("mpi-only", 0, RankLoad{Tasks: 20})
	rows := lc.Imbalance()
	if len(rows) != 1 || len(rows[0].Builds) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if got := rows[0].Builds[0].TaskFactor; math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("build 1 factor = %v, want 1.5", got)
	}
	if got := rows[0].Builds[1].TaskFactor; got != 1 {
		t.Fatalf("build 2 factor = %v, want 1", got)
	}
	if got := rows[0].MeanTaskFactor; math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("mean factor = %v, want 1.25", got)
	}
	if got := rows[0].MaxTaskFactor; math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("max factor = %v, want 1.5", got)
	}
}

func TestImbalanceMultipleVariantsSorted(t *testing.T) {
	lc := NewLoadCollector()
	lc.Record("shared-fock", 0, RankLoad{Tasks: 1})
	lc.Record("mpi-only", 0, RankLoad{Tasks: 1})
	rows := lc.Imbalance()
	if len(rows) != 2 || rows[0].Variant != "mpi-only" || rows[1].Variant != "shared-fock" {
		t.Fatalf("variants not sorted: %+v", rows)
	}
}

func TestFormatImbalance(t *testing.T) {
	lc := NewLoadCollector()
	lc.Record("shared-fock", 0, RankLoad{Tasks: 30, Quartets: 300, Wall: 3 * time.Millisecond})
	lc.Record("shared-fock", 1, RankLoad{Tasks: 10, Quartets: 100, Wall: time.Millisecond})
	out := FormatImbalance(lc.Imbalance())
	for _, want := range []string{"shared-fock", "task-imb", "1.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if got := FormatImbalance(nil); !strings.Contains(got, "no builds") {
		t.Errorf("empty report = %q", got)
	}
}

func TestSessionSummaryIncludesEverything(t *testing.T) {
	s := NewSession()
	s.Counter("ddi.dlb.draws").Add(42)
	s.Histogram("mpi.op.recv_ns").Observe(1500)
	s.Histogram("mpi.send.bytes").Observe(4096)
	s.RecordLoad("mpi-only", 0, RankLoad{Tasks: 5, Quartets: 50, Wall: time.Millisecond})
	s.RecordLoad("mpi-only", 1, RankLoad{Tasks: 5, Quartets: 50, Wall: time.Millisecond})
	sum := s.Summary()
	for _, want := range []string{
		"telemetry summary", "load imbalance", "mpi-only",
		"ddi.dlb.draws", "42", "mpi.op.recv_ns", "mpi.send.bytes", "4,096",
	} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	// Duration-valued histograms render as durations, byte ones as counts.
	if !strings.Contains(sum, "1.5µs") {
		t.Errorf("ns histogram not rendered as duration:\n%s", sum)
	}
}
