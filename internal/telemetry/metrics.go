package telemetry

// Concurrency-safe metrics: counters, gauges, and histograms with fixed
// log-scale (power-of-two) buckets, collected in a Registry keyed by
// name. All update paths are lock-free (atomics); only name resolution
// takes a lock, so instrumented hot loops should hold on to the returned
// handle instead of re-resolving per event.

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float metric (e.g. the current SCF energy).
type Gauge struct {
	bits atomic.Uint64
	set  atomic.Bool
}

// Set stores v as the gauge's current value. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
	g.set.Store(true)
}

// Value returns the gauge's current value (0 if never set or nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the fixed bucket count: bucket i holds observations
// v with upperBound(i-1) < v <= upperBound(i), upperBound(i) = 2^i.
// 63 buckets cover the full positive int64 range.
const histBuckets = 63

// Histogram accumulates int64 observations (typically nanoseconds or
// bytes) into fixed log2-scale buckets, tracking count/sum/min/max.
type Histogram struct {
	counts [histBuckets + 1]atomic.Int64 // +1: overflow bucket
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // valid only when count > 0
	max    atomic.Int64
}

// bucketIndex maps an observation to its bucket: 0 for v <= 1, else the
// position of the highest set bit of v-1 (so bucket i's upper bound is
// 2^i inclusive).
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(uint64(v - 1))
	if i > histBuckets {
		return histBuckets
	}
	return i
}

// BucketUpperBound returns the inclusive upper bound of bucket i.
func BucketUpperBound(i int) int64 {
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1) << uint(i)
}

// Observe records one value. Negative values clamp to 0. Safe on a nil
// receiver (no-op) and for any number of concurrent observers.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	if h.count.Add(1) == 1 {
		// First observer seeds min/max; racing observers fix them up below.
		h.min.Store(v)
		h.max.Store(v)
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Percentile returns an upper bound on the p-quantile (0 < p <= 1) of
// the observations: the inclusive upper bound of the first bucket whose
// cumulative count reaches p of the total. Resolution is the log2 bucket
// width — exact enough for tail-latency and queue-depth reporting, free
// of per-observation storage.
func (h *Histogram) Percentile(p float64) int64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	if p > 1 {
		p = 1
	}
	target := int64(math.Ceil(p * float64(n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			if upper := BucketUpperBound(i); upper < h.Max() {
				return upper
			}
			return h.Max()
		}
	}
	return h.Max()
}

// HistBucket is one non-empty bucket of a histogram snapshot.
type HistBucket struct {
	Le    int64 `json:"le"` // inclusive upper bound (2^i)
	Count int64 `json:"count"`
}

// HistSnapshot is a point-in-time view of a histogram.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
	Mean    float64      `json:"mean"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's current state (non-empty buckets
// only, ascending by bound).
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(), Mean: h.Mean()}
	if h == nil {
		return s
	}
	for i := range h.counts {
		if n := h.counts[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{Le: BucketUpperBound(i), Count: n})
		}
	}
	return s
}

// Registry is a concurrency-safe, name-keyed collection of metrics.
// Metrics are created on first use; handles remain valid for the life of
// the registry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// MetricsSnapshot is a point-in-time JSON-serializable view of a
// registry. Map keys serialize in sorted order, so output is
// deterministic for a fixed set of values.
type MetricsSnapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for n, g := range r.gauges {
			// Non-finite values (e.g. the -Inf dE of a first SCF iteration)
			// are unrepresentable in JSON; skip them rather than fail the
			// whole snapshot.
			if v := g.Value(); g.set.Load() && !math.IsInf(v, 0) && !math.IsNaN(v) {
				s.Gauges[n] = v
			}
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for n, h := range r.hists {
			s.Histograms[n] = h.Snapshot()
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON. Output key
// order is deterministic (encoding/json sorts map keys).
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// HistogramNames returns the registered histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
