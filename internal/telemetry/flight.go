package telemetry

// Flight recorder: a bounded ring of the most recent spans, instants,
// and structured log lines, snapshotted ("dumped") when something goes
// wrong — a job failure, a convergence-watchdog escalation, a WAL
// crash replay — so a postmortem has the last moments of context even
// when no one was exporting a live trace file. The ring keeps recording
// past its capacity by overwriting the oldest entries; a dump is a
// consistent copy in chronological order.

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Flight entry kinds.
const (
	FlightSpan    = "span"
	FlightInstant = "instant"
	FlightLog     = "log"
)

// FlightEntry is one recorded moment.
type FlightEntry struct {
	At    time.Time      `json:"at"`
	Kind  string         `json:"kind"` // span | instant | log
	Cat   string         `json:"cat,omitempty"`
	Name  string         `json:"name,omitempty"`
	Pid   int            `json:"pid,omitempty"`
	Tid   int            `json:"tid,omitempty"`
	DurUS float64        `json:"dur_us,omitempty"` // spans only
	Trace string         `json:"trace,omitempty"`
	Msg   string         `json:"msg,omitempty"` // log lines only
	Args  map[string]any `json:"args,omitempty"`
}

// FlightDump is one snapshot of the ring.
type FlightDump struct {
	Reason    string        `json:"reason"`
	DumpedAt  time.Time     `json:"dumped_at"`
	Recorded  int64         `json:"recorded_total"` // entries ever recorded
	Entries   []FlightEntry `json:"entries"`        // chronological
	Truncated bool          `json:"truncated"`      // ring overwrote older entries
}

// DefaultFlightEntries is the default ring capacity — enough for the
// last few jobs' worth of spans without holding a long run's history.
const DefaultFlightEntries = 512

// FlightRecorder is the bounded ring. All methods are nil-safe and
// concurrency-safe.
type FlightRecorder struct {
	mu     sync.Mutex
	buf    []FlightEntry
	next   int
	filled bool
	total  int64
	onDump func(*FlightDump)
	last   *FlightDump
}

// NewFlightRecorder returns a ring holding the last n entries
// (DefaultFlightEntries when n <= 0).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightEntries
	}
	return &FlightRecorder{buf: make([]FlightEntry, n)}
}

// Note records one entry, overwriting the oldest past capacity.
func (f *FlightRecorder) Note(e FlightEntry) {
	if f == nil {
		return
	}
	if e.At.IsZero() {
		e.At = time.Now()
	}
	f.mu.Lock()
	f.buf[f.next] = e
	f.next++
	if f.next == len(f.buf) {
		f.next = 0
		f.filled = true
	}
	f.total++
	f.mu.Unlock()
}

// SetOnDump registers a callback invoked (outside the ring lock) with
// every dump — the service uses it to persist dumps to disk.
func (f *FlightRecorder) SetOnDump(fn func(*FlightDump)) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.onDump = fn
	f.mu.Unlock()
}

// Dump snapshots the ring in chronological order, remembers it as the
// last dump, and fires the OnDump callback.
func (f *FlightRecorder) Dump(reason string) *FlightDump {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	d := &FlightDump{Reason: reason, DumpedAt: time.Now(), Recorded: f.total, Truncated: f.filled}
	if f.filled {
		d.Entries = append(d.Entries, f.buf[f.next:]...)
		d.Entries = append(d.Entries, f.buf[:f.next]...)
	} else {
		d.Entries = append(d.Entries, f.buf[:f.next]...)
	}
	f.last = d
	cb := f.onDump
	f.mu.Unlock()
	if cb != nil {
		cb(d)
	}
	return d
}

// LastDump returns the most recent dump (nil if none yet).
func (f *FlightRecorder) LastDump() *FlightDump {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last
}

// Recorded returns how many entries were ever recorded.
func (f *FlightRecorder) Recorded() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// WriteJSON writes d as indented JSON.
func (d *FlightDump) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
