package scf

// Cooperative cancellation of the SCF loop. The driver checks for
// cancellation once per iteration — between Fock builds, where every rank
// holds identical state — so a canceled run stops at a clean iteration
// boundary instead of mid-collective.
//
// Parallel runs cannot decide locally: the shared Context flips from
// "live" to "canceled" at one instant, and two ranks reading it a
// microsecond apart would disagree, leaving the late rank blocked in the
// next collective. Options.CancelAgree closes that race: each rank feeds
// its local observation into a tiny max-allreduce, so either every rank
// stops at iteration k or none does.

import (
	"errors"
	"fmt"

	"repro/internal/mpi"
)

// ErrCanceled is the sentinel reported (via errors.Is) when an SCF run is
// stopped by context cancellation or deadline expiry rather than by a
// numerical failure.
var ErrCanceled = errors.New("scf run canceled")

// CanceledError reports an SCF run stopped by its context. It matches
// ErrCanceled under errors.Is, and unwraps to the context's cause so
// callers can distinguish context.Canceled from context.DeadlineExceeded.
type CanceledError struct {
	Iter  int   // iteration at which the cancellation was observed (0 = before the loop)
	Cause error // context.Cause at observation time, may be nil
}

func (e *CanceledError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("scf: run canceled at iteration %d: %v", e.Iter, e.Cause)
	}
	return fmt.Sprintf("scf: run canceled at iteration %d", e.Iter)
}

// Is makes errors.Is(err, ErrCanceled) hold for every CanceledError.
func (e *CanceledError) Is(target error) bool { return target == ErrCanceled }

// Unwrap exposes the context cause (context.Canceled or
// context.DeadlineExceeded) to errors.Is.
func (e *CanceledError) Unwrap() error { return e.Cause }

// CollectiveCancel returns a CancelAgree implementation for a parallel
// run on comm c: each rank contributes its local observation to a
// one-element max-allreduce, so all ranks reach the identical decision at
// the identical iteration. The allreduce is three floats of traffic per
// iteration — noise next to the n^2-element Fock allreduce that follows.
func CollectiveCancel(c *mpi.Comm) func(local bool) bool {
	in := make([]float64, 1)
	out := make([]float64, 1)
	return func(local bool) bool {
		in[0] = 0
		if local {
			in[0] = 1
		}
		c.Allreduce(mpi.Max, in, out)
		return out[0] > 0
	}
}
