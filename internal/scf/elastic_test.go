package scf

import (
	"bytes"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/integrals"
	"repro/internal/molecule"
	"repro/internal/telemetry"
)

// TestCheckpointGrowCompat is the elastic compatibility property: a v1
// checkpoint written by an N-rank world must restore bit-identically
// (every density word equal under math.Float64bits) and warm-start
// worlds of 2N and N-1 ranks to the same converged energy within 1e-10
// hartree. The checkpoint format carries only basis-sized state, never
// rank-count-dependent layout — this is what lets a rebalanced epoch of
// any size resume the physics exactly where the old world stopped.
func TestCheckpointGrowCompat(t *testing.T) {
	const ranks = 2
	eng, sch, _ := resilientSetup(t)
	cold, _, err := RunRHFResilient(eng, sch, ResilientOptions{
		Ranks: ranks, Deadline: 20 * time.Second,
	})
	if err != nil || !cold.Converged {
		t.Fatalf("cold %d-rank SCF failed: %v", ranks, err)
	}

	data, err := EncodeCheckpoint("water", "sto-3g", cold)
	if err != nil {
		t.Fatal(err)
	}

	// Bit-identity: decoding twice (as two differently-sized joiners
	// would) yields word-for-word the density the writer held.
	for _, who := range []string{"2N-rank joiner", "N-1-rank survivor"} {
		cp, err := LoadCheckpoint(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", who, err)
		}
		d := cp.DensityMatrix()
		if d.Rows != cold.D.Rows || len(d.Data) != len(cold.D.Data) {
			t.Fatalf("%s: density %dx%d, want %dx%d", who, d.Rows, d.Cols, cold.D.Rows, cold.D.Cols)
		}
		for i := range d.Data {
			if math.Float64bits(d.Data[i]) != math.Float64bits(cold.D.Data[i]) {
				t.Fatalf("%s: density word %d differs: %x vs %x", who, i,
					math.Float64bits(d.Data[i]), math.Float64bits(cold.D.Data[i]))
			}
		}
	}

	// Warm-start invariance: the restored density converges a grown
	// (2N) and a shrunk (N-1) world to the same energy.
	for _, tc := range []struct {
		name  string
		ranks int
	}{
		{"grow-to-2N", 2 * ranks},
		{"shrink-to-N-1", ranks - 1},
	} {
		cp, err := LoadCheckpoint(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		warm, _, err := RunRHFResilient(eng, sch, ResilientOptions{
			Ranks:    tc.ranks,
			Deadline: 20 * time.Second,
			SCF:      Options{InitialDensity: cp.DensityMatrix()},
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !warm.Converged {
			t.Fatalf("%s: warm start did not converge", tc.name)
		}
		if dE := math.Abs(warm.Energy - cold.Energy); dE > 1e-10 {
			t.Fatalf("%s: |dE| = %.2e > 1e-10", tc.name, dE)
		}
		if warm.Iterations >= cold.Iterations {
			t.Fatalf("%s: warm start took %d iterations vs cold %d",
				tc.name, warm.Iterations, cold.Iterations)
		}
	}
}

// TestElasticGrowMidSCF: the elastic driver on a small system — one
// joiner announces mid-run, the epoch stops at an iteration boundary,
// and the grown world finishes from the checkpoint with the energy
// unchanged.
func TestElasticGrowMidSCF(t *testing.T) {
	ref, eng := serialSCF(t, molecule.Water(), "sto-3g", Options{})
	if !ref.Converged {
		t.Fatal("reference SCF did not converge")
	}
	sch := integrals.ComputeSchwarz(eng)

	tel := telemetry.NewSession()
	m := cluster.NewMembership(2, tel)
	var announced atomic.Bool
	res, tr, err := RunRHFElastic(eng, sch, ElasticOptions{
		Ranks:      2,
		MaxRanks:   3,
		Membership: m,
		Deadline:   20 * time.Second,
		Telemetry:  tel,
		OnIteration: func(epoch int64, iter int) {
			if epoch == 0 && iter >= 1 && !announced.Swap(true) {
				m.Announce(1, "test-joiner")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("elastic run did not converge")
	}
	if dE := math.Abs(res.Energy - ref.Energy); dE > 1e-10 {
		t.Fatalf("|dE| = %.2e > 1e-10 across the grow", dE)
	}
	if tr.GrowRestarts != 1 || tr.JoinsCommitted != 1 {
		t.Fatalf("grow restarts = %d, joins = %d, want 1/1", tr.GrowRestarts, tr.JoinsCommitted)
	}
	if tr.FinalRanks != 3 || m.Size() != 3 || m.Epoch() != 1 {
		t.Fatalf("final ranks = %d, pool = %d, epoch = %d, want 3/3/1",
			tr.FinalRanks, m.Size(), m.Epoch())
	}
	if got := len(tr.Epochs); got != 2 {
		t.Fatalf("epochs recorded = %d, want 2", got)
	}
}

// TestElasticRebalanceBudget: with a zero rebalance budget the driver
// must ignore pending joins rather than stopping the epoch — a wedged
// pool cannot thrash a run to death.
func TestElasticRebalanceBudget(t *testing.T) {
	ref, eng := serialSCF(t, molecule.Water(), "sto-3g", Options{})
	sch := integrals.ComputeSchwarz(eng)
	m := cluster.NewMembership(2, nil)
	var announced atomic.Bool
	res, tr, err := RunRHFElastic(eng, sch, ElasticOptions{
		Ranks:         2,
		MaxRanks:      4,
		Membership:    m,
		Deadline:      20 * time.Second,
		MaxRebalances: -1, // no transitions allowed
		OnIteration: func(epoch int64, iter int) {
			if !announced.Swap(true) {
				m.Announce(1, "never-admitted")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || math.Abs(res.Energy-ref.Energy) > 1e-10 {
		t.Fatalf("budget-0 run: conv=%v E=%v vs %v", res.Converged, res.Energy, ref.Energy)
	}
	if tr.GrowRestarts != 0 || len(tr.Epochs) != 1 {
		t.Fatalf("budget-0 run rebalanced: restarts=%d epochs=%d", tr.GrowRestarts, len(tr.Epochs))
	}
	if m.Size() != 2 {
		t.Fatalf("pool grew to %d under a zero budget", m.Size())
	}
}
