package scf

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/linalg"
)

// Checkpointing: persist a converged SCF state and warm-start later runs
// from it — the role GAMESS's PUNCH/restart files play. A production SCF
// on thousands of nodes checkpoints between jobs; here the same mechanism
// also accelerates repeated runs on perturbed geometries.

// Checkpoint is the serialized SCF state.
type Checkpoint struct {
	Molecule        string    `json:"molecule"`
	Basis           string    `json:"basis"`
	NumBF           int       `json:"num_bf"`
	Energy          float64   `json:"energy"`
	Converged       bool      `json:"converged"`
	Iterations      int       `json:"iterations"`
	OrbitalEnergies []float64 `json:"orbital_energies"`
	Density         []float64 `json:"density"` // row-major NumBF x NumBF
}

// SaveCheckpoint writes the result's restartable state as JSON.
func SaveCheckpoint(w io.Writer, molName, basisName string, res *Result) error {
	if res.D == nil {
		return fmt.Errorf("scf: result has no density to checkpoint")
	}
	cp := Checkpoint{
		Molecule:        molName,
		Basis:           basisName,
		NumBF:           res.D.Rows,
		Energy:          res.Energy,
		Converged:       res.Converged,
		Iterations:      res.Iterations,
		OrbitalEnergies: res.OrbitalEnergies,
		Density:         res.D.Data,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&cp)
}

// maxCheckpointBF bounds the basis size a checkpoint may claim; beyond it
// the file is certainly corrupt (the density alone would exceed 100 GB).
const maxCheckpointBF = 1 << 17

// LoadCheckpoint reads and validates a checkpoint written by
// SaveCheckpoint. A truncated, corrupted, or inconsistent file yields a
// descriptive error — never a panic — so drivers can fall back to a
// standard initial guess.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("scf: checkpoint truncated or corrupted: %w", err)
	}
	if cp.NumBF <= 0 || cp.NumBF > maxCheckpointBF {
		return nil, fmt.Errorf("scf: checkpoint claims %d basis functions (want 1..%d)",
			cp.NumBF, maxCheckpointBF)
	}
	if len(cp.Density) != cp.NumBF*cp.NumBF {
		return nil, fmt.Errorf("scf: checkpoint density has %d elements for %d basis functions (want %d)",
			len(cp.Density), cp.NumBF, cp.NumBF*cp.NumBF)
	}
	for i, v := range cp.Density {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("scf: checkpoint density element %d is not finite", i)
		}
	}
	return &cp, nil
}

// DensityMatrix reconstructs the checkpointed density.
func (cp *Checkpoint) DensityMatrix() *linalg.Matrix {
	m := linalg.NewSquare(cp.NumBF)
	copy(m.Data, cp.Density)
	return m
}
