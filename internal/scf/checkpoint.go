package scf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"strings"

	"repro/internal/linalg"
)

// Checkpointing: persist a converged SCF state and warm-start later runs
// from it — the role GAMESS's PUNCH/restart files play. A production SCF
// on thousands of nodes checkpoints between jobs; here the same mechanism
// also accelerates repeated runs on perturbed geometries.
//
// Format (version 1): an ASCII header line "HFCKPT v1 len=N", N bytes of
// JSON body, and a trailer line "crc32=XXXXXXXX" carrying the IEEE
// CRC-32 of the body. The header length makes truncation detectable
// before parsing; the CRC catches any bit-flip in the body (a checkpoint
// sits on disk through exactly the window a node is most likely to fail
// in, so it is the SDC target with the longest exposure). Version-0
// files — bare JSON, as the seed wrote — are still read.

// Checkpoint is the serialized SCF state.
type Checkpoint struct {
	Molecule        string    `json:"molecule"`
	Basis           string    `json:"basis"`
	NumBF           int       `json:"num_bf"`
	Energy          float64   `json:"energy"`
	Converged       bool      `json:"converged"`
	Iterations      int       `json:"iterations"`
	OrbitalEnergies []float64 `json:"orbital_energies"`
	Density         []float64 `json:"density"` // row-major NumBF x NumBF
}

// checkpointMagic opens every framed (version >= 1) checkpoint.
const checkpointMagic = "HFCKPT"

// EncodeCheckpoint serializes the result's restartable state in the
// current (version 1) framed format and returns the complete file bytes.
// Drivers that inject or audit corruption work on these bytes directly.
func EncodeCheckpoint(molName, basisName string, res *Result) ([]byte, error) {
	if res.D == nil {
		return nil, fmt.Errorf("scf: result has no density to checkpoint")
	}
	cp := Checkpoint{
		Molecule:        molName,
		Basis:           basisName,
		NumBF:           res.D.Rows,
		Energy:          res.Energy,
		Converged:       res.Converged,
		Iterations:      res.Iterations,
		OrbitalEnergies: res.OrbitalEnergies,
		Density:         res.D.Data,
	}
	body, err := json.Marshal(&cp)
	if err != nil {
		return nil, fmt.Errorf("scf: encoding checkpoint: %w", err)
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s v1 len=%d\n", checkpointMagic, len(body))
	b.Write(body)
	fmt.Fprintf(&b, "\ncrc32=%08x\n", crc32.ChecksumIEEE(body))
	return b.Bytes(), nil
}

// SaveCheckpoint writes the result's restartable state in the framed
// version-1 format (see the file comment).
func SaveCheckpoint(w io.Writer, molName, basisName string, res *Result) error {
	data, err := EncodeCheckpoint(molName, basisName, res)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// maxCheckpointBF bounds the basis size a checkpoint may claim; beyond it
// the file is certainly corrupt (the density alone would exceed 100 GB).
const maxCheckpointBF = 1 << 17

// LoadCheckpoint reads and validates a checkpoint written by
// SaveCheckpoint. A truncated, bit-flipped, or inconsistent file yields
// a descriptive error — never a panic — so drivers can fall back to a
// standard initial guess. Both the framed version-1 format and bare
// version-0 JSON (seed files) are accepted; only version 1 carries the
// CRC that makes single-bit corruption detectable.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("scf: reading checkpoint: %w", err)
	}
	body := raw
	if bytes.HasPrefix(raw, []byte(checkpointMagic)) {
		body, err = verifyCheckpointFrame(raw)
		if err != nil {
			return nil, err
		}
	}
	var cp Checkpoint
	if err := json.Unmarshal(body, &cp); err != nil {
		return nil, fmt.Errorf("scf: checkpoint truncated or corrupted: %w", err)
	}
	if cp.NumBF <= 0 || cp.NumBF > maxCheckpointBF {
		return nil, fmt.Errorf("scf: checkpoint claims %d basis functions (want 1..%d)",
			cp.NumBF, maxCheckpointBF)
	}
	if len(cp.Density) != cp.NumBF*cp.NumBF {
		return nil, fmt.Errorf("scf: checkpoint density has %d elements for %d basis functions (want %d)",
			len(cp.Density), cp.NumBF, cp.NumBF*cp.NumBF)
	}
	for i, v := range cp.Density {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("scf: checkpoint density element %d is not finite", i)
		}
	}
	return &cp, nil
}

// verifyCheckpointFrame parses and verifies the v1 framing, returning
// the JSON body. Every failure mode is named: a garbled header, an
// unsupported (future) version, a body shorter than the header claims,
// a missing trailer, and a CRC mismatch are distinct diagnostics.
func verifyCheckpointFrame(raw []byte) ([]byte, error) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("scf: checkpoint header truncated")
	}
	header := string(raw[:nl])
	var version, bodyLen int
	if _, err := fmt.Sscanf(header, checkpointMagic+" v%d len=%d", &version, &bodyLen); err != nil {
		return nil, fmt.Errorf("scf: malformed checkpoint header %q", header)
	}
	if version != 1 {
		return nil, fmt.Errorf("scf: unsupported checkpoint version %d (this build reads v0 and v1)", version)
	}
	rest := raw[nl+1:]
	if bodyLen < 0 || bodyLen > len(rest) {
		return nil, fmt.Errorf("scf: checkpoint truncated or corrupted: header claims %d body bytes, %d present", bodyLen, len(rest))
	}
	body := rest[:bodyLen]
	// The trailer is matched byte-for-byte ("\ncrc32=" + 8 lowercase hex
	// digits + "\n", nothing else): scanning it leniently would let a
	// bit flip in the framing itself (whitespace, hex case) slip by.
	trailer := string(rest[bodyLen:])
	const tprefix = "\ncrc32="
	if len(trailer) != len(tprefix)+9 || !strings.HasPrefix(trailer, tprefix) || trailer[len(trailer)-1] != '\n' {
		return nil, fmt.Errorf("scf: checkpoint CRC trailer missing or malformed (%q)", trailer)
	}
	stored := trailer[len(tprefix) : len(tprefix)+8]
	if expect := fmt.Sprintf("%08x", crc32.ChecksumIEEE(body)); stored != expect {
		return nil, fmt.Errorf("scf: checkpoint CRC mismatch: stored %s, computed %s (bit-flipped on disk?)", stored, expect)
	}
	return body, nil
}

// DensityMatrix reconstructs the checkpointed density.
func (cp *Checkpoint) DensityMatrix() *linalg.Matrix {
	m := linalg.NewSquare(cp.NumBF)
	copy(m.Data, cp.Density)
	return m
}
