package scf

import (
	"math"
	"testing"

	"repro/internal/molecule"
	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// TestPurifiedResilientCleanMatchesEigensolve: with no fault injected
// the resilient driver is the purified SCF over ABFT matrices — same
// fixed point, one attempt, nothing reconstructed.
func TestPurifiedResilientCleanMatchesEigensolve(t *testing.T) {
	want, _ := serialSCF(t, molecule.Water(), "sto-3g",
		Options{ConvDens: 1e-10, ConvEnergy: 1e-12})
	eng, sch := purifiedSetup(t)
	res, info, rec, err := RunRHFPurifiedResilient(eng, sch, PurifiedResilientOptions{
		PurifiedOptions: PurifiedOptions{
			Ranks:     4,
			BlockSize: 3,
			SCF:       Options{ConvDens: 1e-10, ConvEnergy: 1e-12},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d iterations", res.Iterations)
	}
	if dE := math.Abs(res.Energy - want.Energy); dE > 1e-10 {
		t.Errorf("clean resilient energy off by %g", dE)
	}
	if rec.Attempts != 1 || rec.Recoveries != 0 || rec.ReconstructedTiles != 0 {
		t.Errorf("clean run recovery trace = %+v, want one quiet attempt", rec)
	}
	if info.TotalSweeps == 0 {
		t.Errorf("no purification sweeps recorded")
	}
}

// TestPurifiedResilientSurvivesKill is the tentpole test: a rank killed
// mid-purification must be survived by parity reconstruction — the
// shrunken world resumes the interrupted iteration and lands on the
// reference energy, with tiles provably rebuilt from parity rather than
// restarted from scratch.
func TestPurifiedResilientSurvivesKill(t *testing.T) {
	want, _ := serialSCF(t, molecule.Water(), "sto-3g",
		Options{ConvDens: 1e-10, ConvEnergy: 1e-12})
	eng, sch := purifiedSetup(t)
	tel := telemetry.NewSession()
	res, _, rec, err := RunRHFPurifiedResilient(eng, sch, PurifiedResilientOptions{
		PurifiedOptions: PurifiedOptions{
			Ranks:     4,
			BlockSize: 3,
			SCF:       Options{ConvDens: 1e-10, ConvEnergy: 1e-12},
			Telemetry: tel,
		},
		// After 8 purification sweeps on rank 1 the kill fires inside a
		// sweep — past the first iteration, mid-purification.
		Fault: &mpi.FaultPlan{Kills: []mpi.Kill{{Rank: 1, Site: mpi.SitePurify, After: 8}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge after recovery (%d iterations)", res.Iterations)
	}
	if dE := math.Abs(res.Energy - want.Energy); dE > 1e-8 {
		t.Errorf("post-recovery energy off by %g", dE)
	}
	if rec.Recoveries != 1 || rec.Attempts != 2 {
		t.Errorf("Recoveries=%d Attempts=%d, want 1 recovery over 2 attempts", rec.Recoveries, rec.Attempts)
	}
	if len(rec.FailedRanks) != 1 || rec.FailedRanks[0] != 1 {
		t.Errorf("FailedRanks = %v, want [1]", rec.FailedRanks)
	}
	if rec.ReconstructedTiles == 0 {
		t.Errorf("no tiles reconstructed from parity — recovery did not exercise ABFT")
	}
	if rec.ResumedIter < 1 {
		t.Errorf("ResumedIter = %d, want >= 1", rec.ResumedIter)
	}
	if got := tel.Counter("distmat.abft.reconstructed_tiles").Value(); got != rec.ReconstructedTiles {
		t.Errorf("telemetry reconstructed_tiles = %d, recovery says %d", got, rec.ReconstructedTiles)
	}
	if len(rec.RanksPerAttempt) != 2 || rec.RanksPerAttempt[1] != 3 {
		t.Errorf("RanksPerAttempt = %v, want [4 3]", rec.RanksPerAttempt)
	}
}

// TestPurifiedResilientRepairsBitFlip: a resident bit flip injected
// between sweeps must be caught by the per-sweep audit and repaired,
// converging to the reference energy with zero recoveries (no rank
// died) and a positive repair count.
func TestPurifiedResilientRepairsBitFlip(t *testing.T) {
	want, _ := serialSCF(t, molecule.Water(), "sto-3g",
		Options{ConvDens: 1e-10, ConvEnergy: 1e-12})
	eng, sch := purifiedSetup(t)
	tel := telemetry.NewSession()
	res, _, rec, err := RunRHFPurifiedResilient(eng, sch, PurifiedResilientOptions{
		PurifiedOptions: PurifiedOptions{
			Ranks:     4,
			BlockSize: 3,
			SCF:       Options{ConvDens: 1e-10, ConvEnergy: 1e-12},
			Telemetry: tel,
		},
		// Flip a high mantissa bit in rank 2's first owned tile at the
		// 6th sweep: large enough to clear the audit tolerance, resident
		// (parity deliberately not updated by the injector). Index 4 —
		// element (4,1) of the water density, O 2pz x O 2s — is nonzero
		// by symmetry; index 0 would hit the out-of-plane 2py row, which
		// is exactly zero, and a bit flip on 0.0 only reaches denormal
		// territory no tolerance can see.
		Fault: &mpi.FaultPlan{Corrupts: []mpi.Corrupt{{
			Rank: 2, Site: mpi.SitePurify, After: 6,
			Kind: mpi.CorruptBitFlip, Index: 4, Bit: 51,
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge (%d iterations)", res.Iterations)
	}
	if dE := math.Abs(res.Energy - want.Energy); dE > 1e-10 {
		t.Errorf("post-repair energy off by %g", dE)
	}
	if rec.Recoveries != 0 {
		t.Errorf("Recoveries = %d, want 0 (a bit flip is repaired in place)", rec.Recoveries)
	}
	if tel.Counter("sdc.injected").Value() == 0 {
		t.Fatalf("fault plan never injected — the test is vacuous")
	}
	if rec.AuditMismatches == 0 || rec.RepairedTiles == 0 {
		t.Errorf("audit tallies %d/%d, want the injected flip detected and repaired",
			rec.AuditMismatches, rec.RepairedTiles)
	}
	if det := tel.Counter("sdc.detected").Value(); det == 0 {
		t.Errorf("sdc.detected = 0: the integrity ladder never saw the corruption")
	}
}

// TestPurifiedResilientExhaustsBudget: more kills than MaxRecoveries
// must surface as a budget-exhausted error, not a hang or a wrong
// answer.
func TestPurifiedResilientExhaustsBudget(t *testing.T) {
	eng, sch := purifiedSetup(t)
	_, _, rec, err := RunRHFPurifiedResilient(eng, sch, PurifiedResilientOptions{
		PurifiedOptions: PurifiedOptions{
			Ranks:     2,
			BlockSize: 3,
			SCF:       Options{ConvDens: 1e-10, ConvEnergy: 1e-12},
		},
		MaxRecoveries: -1, // no budget at all (0 means default)
		Fault:         &mpi.FaultPlan{Kills: []mpi.Kill{{Rank: 1, Site: mpi.SitePurify, After: 3}}},
	})
	if err == nil {
		t.Fatal("expected a budget-exhausted error")
	}
	if rec.Recoveries != 0 {
		t.Errorf("Recoveries = %d with a zero budget", rec.Recoveries)
	}
}
