package scf

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/fock"
	"repro/internal/integrals"
	"repro/internal/integrity"
	"repro/internal/linalg"
	"repro/internal/molecule"
	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// TestCheckpointV1AnySingleBitFlipRejected is the checkpoint half of the
// single-bit-flip property: flipping ANY bit of ANY byte of a framed
// checkpoint file — header, JSON body, or CRC trailer — must make
// LoadCheckpoint reject it. Exhaustive over the whole file.
func TestCheckpointV1AnySingleBitFlipRejected(t *testing.T) {
	ref, _ := serialSCF(t, molecule.Water(), "sto-3g", Options{})
	full, err := EncodeCheckpoint("water", "sto-3g", ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(bytes.NewReader(full)); err != nil {
		t.Fatalf("clean checkpoint rejected: %v", err)
	}
	for i := range full {
		for b := 0; b < 8; b++ {
			flipped := append([]byte(nil), full...)
			flipped[i] ^= 1 << uint(b)
			if _, err := LoadCheckpoint(bytes.NewReader(flipped)); err == nil {
				t.Fatalf("bit %d of byte %d (%q): flip accepted", b, i, full[i])
			}
		}
	}
}

// TestCheckpointV0LegacyStillReads: bare-JSON files written before the
// framing (the seed format) must keep loading.
func TestCheckpointV0LegacyStillReads(t *testing.T) {
	ref, _ := serialSCF(t, molecule.Water(), "sto-3g", Options{})
	full, err := EncodeCheckpoint("water", "sto-3g", ref)
	if err != nil {
		t.Fatal(err)
	}
	// Extract the body = the v0 file: strip header line and CRC trailer.
	nl := bytes.IndexByte(full, '\n')
	body := full[nl+1 : bytes.LastIndex(full, []byte("\ncrc32="))]
	cp, err := LoadCheckpoint(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("legacy v0 checkpoint rejected: %v", err)
	}
	if cp.NumBF != ref.D.Rows || cp.Energy != ref.Energy {
		t.Fatalf("v0 round-trip mismatch: %+v", cp)
	}
	// And a future version must be refused, not misparsed.
	future := []byte("HFCKPT v9 len=2\n{}\ncrc32=00000000\n")
	if _, err := LoadCheckpoint(bytes.NewReader(future)); err == nil {
		t.Fatal("future checkpoint version accepted")
	}
}

// TestFockQuarantineRecompute: a Fock build that returns a poisoned
// matrix is detected by the per-iteration validator, quarantined, and
// rebuilt; the run converges to the clean energy and records the event
// in History and on the sdc.* counters.
func TestFockQuarantineRecompute(t *testing.T) {
	ref, eng := serialSCF(t, molecule.Water(), "sto-3g", Options{})
	sch := integrals.ComputeSchwarz(eng)
	base := SerialBuilder(eng, sch, 0)
	calls := 0
	poisoning := func(d *linalg.Matrix) (*linalg.Matrix, fock.Stats) {
		g, st := base(d)
		calls++
		if calls == 2 { // corrupt iteration 2's first build only
			integrity.PoisonNaN(g.Data, 5)
		}
		return g, st
	}
	tel := telemetry.NewSession()
	res, err := RunRHF(eng, poisoning, Options{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || math.Abs(res.Energy-ref.Energy) > 1e-8 {
		t.Fatalf("E = %.12f, want %.12f", res.Energy, ref.Energy)
	}
	if !res.History[1].Recomputed {
		t.Fatalf("iteration 2 not flagged Recomputed: %+v", res.History[1])
	}
	snap := tel.Registry.Snapshot()
	if snap.Counters["sdc.detected.fock"] != 1 || snap.Counters["integrity.fock.recomputed"] != 1 {
		t.Fatalf("fock detection counters wrong: %+v", snap.Counters)
	}
}

// TestPersistentFockCorruptionErrors: when the rebuilt Fock is corrupt
// too, RunRHF must fail with a diagnostic instead of iterating on
// garbage.
func TestPersistentFockCorruptionErrors(t *testing.T) {
	_, eng := serialSCF(t, molecule.H2(), "sto-3g", Options{})
	sch := integrals.ComputeSchwarz(eng)
	base := SerialBuilder(eng, sch, 0)
	always := func(d *linalg.Matrix) (*linalg.Matrix, fock.Stats) {
		g, st := base(d)
		integrity.PoisonNaN(g.Data, 0)
		return g, st
	}
	if _, err := RunRHF(eng, always, Options{}); err == nil {
		t.Fatal("persistently corrupt Fock build did not error")
	}
}

// TestWatchdogConvergesOscillatingSCF is the satellite ladder test (run
// under -race in tier 2): a feedback term G' = G + k (D - D_prev) makes
// the un-extrapolated Roothaan iteration oscillate without converging;
// the watchdog must walk the ladder and converge it. At the fixed point
// D = D_prev the feedback vanishes, so the converged energy is the clean
// answer.
func TestWatchdogConvergesOscillatingSCF(t *testing.T) {
	ref, eng := serialSCF(t, molecule.Water(), "sto-3g", Options{})
	sch := integrals.ComputeSchwarz(eng)
	const kappa = 0.3
	osc := func() Builder {
		base := SerialBuilder(eng, sch, 0)
		var dPrev *linalg.Matrix
		return func(d *linalg.Matrix) (*linalg.Matrix, fock.Stats) {
			g, st := base(d)
			if dPrev != nil {
				g.AxpyFrom(kappa, d)
				g.AxpyFrom(-kappa, dPrev)
			}
			dPrev = d.Clone()
			return g, st
		}
	}

	// Without the watchdog (and without DIIS, which the ladder manages)
	// the case must genuinely fail to converge — otherwise this test
	// proves nothing.
	bare, err := RunRHF(eng, osc(), Options{DisableDI: true, DisableWatchdog: true, MaxIter: 60})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Converged {
		t.Fatalf("oscillating case converged without the watchdog in %d iterations — raise kappa", bare.Iterations)
	}

	tel := telemetry.NewSession()
	res, err := RunRHF(eng, osc(), Options{DisableDI: true, MaxIter: 200, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("watchdog did not converge the oscillating case in %d iterations", res.Iterations)
	}
	if math.Abs(res.Energy-ref.Energy) > 1e-6 {
		t.Fatalf("degraded run E = %.12f, clean %.12f", res.Energy, ref.Energy)
	}
	var rungs []string
	for _, it := range res.History {
		if it.Degrade != "" {
			rungs = append(rungs, it.Degrade)
		}
	}
	if len(rungs) == 0 {
		t.Fatal("no ladder escalations recorded in History")
	}
	snap := tel.Registry.Snapshot()
	if snap.Counters["integrity.watchdog.escalations"] != int64(len(rungs)) {
		t.Fatalf("escalation counter %d != History records %d",
			snap.Counters["integrity.watchdog.escalations"], len(rungs))
	}
}

// TestWatchdogSilentOnHealthyRun: a well-behaved SCF must never trip the
// ladder — degradation is for sick runs only.
func TestWatchdogSilentOnHealthyRun(t *testing.T) {
	res, _ := serialSCF(t, molecule.Water(), "sto-3g", Options{})
	for i, it := range res.History {
		if it.Degrade != "" || it.Recomputed {
			t.Fatalf("healthy iteration %d degraded: %+v", i+1, it)
		}
	}
}

// TestFockSDCInjectionParallel drives the SiteFock hook through real
// parallel builds: a NaN scheduled into rank 1's second Fock task rides
// the reduction into every rank's Fock matrix, where the per-iteration
// validator must quarantine it, trigger a clean recompute, and converge
// to the reference energy — with sdc.detected == sdc.injected.
func TestFockSDCInjectionParallel(t *testing.T) {
	eng, sch, ref := resilientSetup(t)
	cases := []struct {
		alg   Algorithm
		ranks int
		rank  int // rank the corruption is scheduled on
	}{
		// mpi-only: the SiteFock clock ticks once per scanned pair, the
		// same on every rank, so scheduling on rank 1 of 2 is
		// deterministic — and the poison must cross the gsumf to rank 0.
		{AlgMPIOnly, 2, 1},
		// resilient-fock: the clock ticks per claimed lease, which is racy
		// across ranks; one rank claims every lease deterministically.
		{AlgResilientFock, 1, 0},
	}
	for _, tc := range cases {
		t.Run(string(tc.alg), func(t *testing.T) {
			tel := telemetry.NewSession()
			res, _, err := RunRHFResilient(eng, sch, ResilientOptions{
				Ranks:     tc.ranks,
				Algorithm: tc.alg,
				Deadline:  20 * time.Second,
				Telemetry: tel,
				Fault: &mpi.FaultPlan{
					Corrupts: []mpi.Corrupt{{Rank: tc.rank, Site: mpi.SiteFock, After: 2,
						Kind: mpi.CorruptNaN, Index: 0}},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged || math.Abs(res.Energy-ref.Energy) > 1e-8 {
				t.Fatalf("E = %.12f, want %.12f", res.Energy, ref.Energy)
			}
			recomputed := false
			for _, it := range res.History {
				recomputed = recomputed || it.Recomputed
			}
			if !recomputed {
				t.Fatal("no iteration flagged Recomputed")
			}
			snap := tel.Registry.Snapshot()
			if snap.Counters["sdc.injected"] != 1 || snap.Counters["sdc.detected"] != 1 {
				t.Fatalf("injected=%d detected=%d, want 1/1",
					snap.Counters["sdc.injected"], snap.Counters["sdc.detected"])
			}
			if snap.Counters["sdc.detected.fock"] != 1 ||
				snap.Counters["integrity.fock.recomputed"] != 1 {
				t.Fatalf("fock detection counters wrong: %+v", snap.Counters)
			}
		})
	}
}

// TestCheckpointCorruptionDetectedOnRestart is the end-to-end checkpoint
// SDC path: a bit-flip lands on the serialized bytes of iteration 2's
// checkpoint write, a rank death at the start of iteration 3 forces a
// restart, and the driver must reject the corrupt checkpoint via the
// CRC, fall back to the standard guess, and still converge — with
// sdc.detected == sdc.injected.
func TestCheckpointCorruptionDetectedOnRestart(t *testing.T) {
	eng, sch, ref := resilientSetup(t)
	tel := telemetry.NewSession()
	res, rec, err := RunRHFResilient(eng, sch, ResilientOptions{
		Ranks:     3,
		Algorithm: AlgMPIOnly,
		Deadline:  20 * time.Second,
		Telemetry: tel,
		Fault: &mpi.FaultPlan{
			// DLBReset barriers twice per Fock build: the fifth barrier is
			// the start of iteration 3, so the corrupted iteration-2
			// checkpoint is the latest one when the restart loads it.
			Kills:    []mpi.Kill{{Rank: 1, Site: mpi.SiteBarrier, After: 5}},
			Corrupts: []mpi.Corrupt{{Rank: 0, Site: mpi.SiteCheckpoint, After: 2, Kind: mpi.CorruptBitFlip, Index: 120, Bit: 4}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || math.Abs(res.Energy-ref.Energy) > 1e-8 {
		t.Fatalf("E = %.12f, want %.12f", res.Energy, ref.Energy)
	}
	if rec.CorruptCheckpoints != 1 {
		t.Fatalf("corrupt checkpoint not detected: %+v", rec)
	}
	if rec.GuessRestarts != 1 || rec.CheckpointRestarts != 0 {
		t.Fatalf("restart should have fallen back to the guess: %+v", rec)
	}
	snap := tel.Registry.Snapshot()
	if snap.Counters["sdc.injected"] != 1 || snap.Counters["sdc.detected"] != 1 {
		t.Fatalf("injected=%d detected=%d, want 1/1",
			snap.Counters["sdc.injected"], snap.Counters["sdc.detected"])
	}
	if snap.Counters["sdc.detected.checkpoint"] != 1 {
		t.Fatalf("checkpoint detection not attributed: %+v", snap.Counters)
	}
}
