package scf

import (
	"math"

	"repro/internal/integrals"
	"repro/internal/linalg"
)

// Molecular properties derived from a converged density — the quantities
// a production SCF code reports after the energy.

// MullikenCharges returns the per-atom Mulliken partial charges
// q_A = Z_A - sum_{a in A} (D S)_aa.
func MullikenCharges(eng *integrals.Engine, d *linalg.Matrix) []float64 {
	s := eng.Overlap()
	ds := linalg.Mul(d, s)
	mol := eng.Basis.Mol
	charges := make([]float64, len(mol.Atoms))
	for i, a := range mol.Atoms {
		charges[i] = float64(a.Z)
	}
	for _, sh := range eng.Basis.Shells {
		for f := 0; f < sh.NumFuncs(); f++ {
			bf := sh.BFOffset + f
			charges[sh.Atom] -= ds.At(bf, bf)
		}
	}
	return charges
}

// DipoleMoment returns the molecular dipole moment in atomic units
// (e * bohr; multiply by 2.5417 for debye), evaluated about the origin:
// mu = sum_A Z_A R_A - tr(D M).
func DipoleMoment(eng *integrals.Engine, d *linalg.Matrix) [3]float64 {
	m := eng.Dipole([3]float64{})
	var mu [3]float64
	for _, a := range eng.Basis.Mol.Atoms {
		for ax := 0; ax < 3; ax++ {
			mu[ax] += float64(a.Z) * a.Pos[ax]
		}
	}
	for ax := 0; ax < 3; ax++ {
		mu[ax] -= linalg.Dot(d, m[ax])
	}
	return mu
}

// DipoleDebye converts an atomic-unit dipole vector to its magnitude in
// debye.
func DipoleDebye(mu [3]float64) float64 {
	const auToDebye = 2.541746473
	return auToDebye * vecNorm(mu)
}

func vecNorm(v [3]float64) float64 {
	return math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
}
