package scf

// Convergence watchdog: the numerical-robustness half of the integrity
// layer. A corrupted warm-start, an ill-conditioned basis, or a molecule
// with a small HOMO-LUMO gap can make the plain Roothaan/DIIS iteration
// diverge or oscillate forever; production codes (GAMESS included)
// answer with damping and level shifting. The watchdog observes each
// iteration's (dE, rmsD) and, when it sees divergence or oscillation,
// walks a one-way graceful-degradation ladder:
//
//	level 1  static damping    D <- (1-a) D_new + a D_old
//	level 2  + level shifting  F <- F + gamma (S - S D S / 2)
//	level 3  + DIIS reset      drop the (poisoned) extrapolation history
//	level 4  + DIIS off        bare damped Roothaan steps
//
// Each measure slows convergence but enlarges the basin of attraction;
// the ladder is cumulative and never walked back within a run, trading
// speed for certainty exactly like a human operator would. Every
// escalation is recorded in Result.History (IterInfo.Degrade) and on
// telemetry (integrity.watchdog.escalations, one instant event each).
//
// Detection is deterministic from replicated quantities (dE, rmsD are
// identical on every rank), so in a parallel run all ranks escalate in
// lockstep without communicating.

import "math"

// Watchdog ladder levels.
const (
	wdHealthy = iota
	wdDamping
	wdLevelShift
	wdDIISReset
	wdRoothaan
)

// wdLevelNames names the ladder rungs for History/telemetry records.
var wdLevelNames = [...]string{"", "damping", "level-shift", "diis-reset", "roothaan"}

// Watchdog tuning. The thresholds are loose on purpose: a healthy SCF
// must never trip them (energy rises above microhartree scale and
// non-decaying sign-alternating dE simply do not happen on a converging
// run), while a genuinely sick run trips within a few iterations.
const (
	wdPatience   = 2    // consecutive bad iterations before escalating
	wdRiseTol    = 1e-4 // dE above this counts as divergence (Ha)
	wdOscTol     = 1e-7 // oscillation amplitude below this is ignored
	wdOscWindow  = 4    // iterations of alternating sign to call oscillation
	wdDampFactor = 0.5  // a in D <- (1-a) D_new + a D_old
	wdShiftGamma = 0.5  // virtual-orbital level shift (Ha)
)

type wdPoint struct{ dE, rms float64 }

// watchdogState tracks the ladder for one SCF run.
type watchdogState struct {
	level   int
	strikes int
	hist    []wdPoint
}

// observe ingests one completed iteration and returns the name of the
// rung escalated to, or "" when no escalation happened.
func (wd *watchdogState) observe(dE, rms float64) string {
	wd.hist = append(wd.hist, wdPoint{dE: dE, rms: rms})
	if !wd.iterationBad() {
		wd.strikes = 0
		return ""
	}
	wd.strikes++
	if wd.strikes < wdPatience || wd.level >= wdRoothaan {
		return ""
	}
	wd.strikes = 0
	wd.level++
	return wdLevelNames[wd.level]
}

// escalate forces one rung immediately (used when a validator rejects a
// density — evidence stronger than any trend heuristic).
func (wd *watchdogState) escalate() string {
	if wd.level >= wdRoothaan {
		return ""
	}
	wd.strikes = 0
	wd.level++
	return wdLevelNames[wd.level]
}

// iterationBad classifies the newest iteration: non-finite progress,
// a significant energy rise (the variational energy must go down), or
// sustained sign-alternating dE with non-decaying amplitude.
func (wd *watchdogState) iterationBad() bool {
	n := len(wd.hist)
	p := wd.hist[n-1]
	// The first dE is (E1 - +Inf) by construction: no baseline yet, so
	// nothing can be judged — in particular its -Inf must not count as
	// divergence.
	if n < 2 {
		return false
	}
	if math.IsNaN(p.dE) || math.IsInf(p.dE, 0) || math.IsNaN(p.rms) || math.IsInf(p.rms, 0) {
		return true
	}
	if p.dE > wdRiseTol {
		return true
	}
	if n >= wdOscWindow {
		osc := true
		for i := n - wdOscWindow + 1; i < n; i++ {
			if wd.hist[i].dE*wd.hist[i-1].dE >= 0 {
				osc = false
				break
			}
		}
		if osc && math.Abs(p.dE) > wdOscTol &&
			math.Abs(p.dE) > 0.5*math.Abs(wd.hist[n-wdOscWindow].dE) {
			return true
		}
	}
	return false
}

// damping returns the density mixing factor for the current rung (0 =
// no damping).
func (wd *watchdogState) damping() float64 {
	if wd.level >= wdDamping {
		return wdDampFactor
	}
	return 0
}

// shift returns the level-shift gamma for the current rung (0 = none).
func (wd *watchdogState) shift() float64 {
	if wd.level >= wdLevelShift {
		return wdShiftGamma
	}
	return 0
}

// diisOff reports whether the ladder has turned extrapolation off.
func (wd *watchdogState) diisOff() bool { return wd.level >= wdRoothaan }
