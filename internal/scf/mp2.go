package scf

import (
	"fmt"

	"repro/internal/integrals"
	"repro/internal/linalg"
)

// Second-order Møller-Plesset perturbation theory on a converged RHF
// reference. The paper's introduction motivates the Hartree-Fock work by
// its role as the starting point for post-HF methods (MP2 scales O(N^5),
// CCSD(T) O(N^7)); this closed-shell MP2 demonstrates the pipeline:
// SCF orbitals -> AO-to-MO integral transformation -> correlation energy.

// MP2Result holds the correlation correction.
type MP2Result struct {
	CorrelationEnergy float64 // E(2), always <= 0
	TotalEnergy       float64 // E(RHF) + E(2)
	SameSpin          float64 // triplet-coupled contribution
	OppositeSpin      float64 // singlet-coupled contribution
}

// RunMP2 computes the closed-shell MP2 energy from a converged RHF
// result. It builds the full ERI tensor and performs the four-index
// transformation in four O(N^5) quarter steps — feasible for the small
// systems real execution targets (N up to roughly a hundred).
func RunMP2(eng *integrals.Engine, ref *Result) (*MP2Result, error) {
	if !ref.Converged {
		return nil, fmt.Errorf("scf: MP2 needs a converged RHF reference")
	}
	n := eng.Basis.NumBF
	nocc := eng.Basis.Mol.NumElectrons() / 2
	nvirt := n - nocc
	if nvirt == 0 {
		return nil, fmt.Errorf("scf: no virtual orbitals in this basis (N = %d, occ = %d)", n, nocc)
	}
	c := ref.C
	eps := ref.OrbitalEnergies

	ao := eng.FullERITensor()
	// Quarter transformations (ab|cd) -> (pb|cd) -> (pq|cd) -> (pq|rd)
	// -> (pq|rs), each O(N^5).
	t1 := quarterTransform(ao, c, n, 0)
	t2 := quarterTransform(t1, c, n, 1)
	t3 := quarterTransform(t2, c, n, 2)
	mo := quarterTransform(t3, c, n, 3)

	at := func(p, q, r, s int) float64 { return mo[((p*n+q)*n+r)*n+s] }
	res := &MP2Result{}
	for i := 0; i < nocc; i++ {
		for j := 0; j < nocc; j++ {
			for a := nocc; a < n; a++ {
				for b := nocc; b < n; b++ {
					iajb := at(i, a, j, b)
					ibja := at(i, b, j, a)
					denom := eps[i] + eps[j] - eps[a] - eps[b]
					os := iajb * iajb / denom
					ss := iajb * (iajb - ibja) / denom
					res.OppositeSpin += os
					res.SameSpin += ss
				}
			}
		}
	}
	res.CorrelationEnergy = res.OppositeSpin + res.SameSpin
	res.TotalEnergy = ref.Energy + res.CorrelationEnergy
	return res, nil
}

// quarterTransform contracts MO coefficients into one index of the
// four-index tensor: axis selects which of the four positions is
// transformed (0..3). Layout is row-major over (p, q, r, s).
func quarterTransform(t []float64, c *linalg.Matrix, n, axis int) []float64 {
	out := make([]float64, len(t))
	// Strides of the four indices.
	strides := [4]int{n * n * n, n * n, n, 1}
	st := strides[axis]
	// Iterate over all positions of the other three indices; transform
	// along `axis`: out[..., p, ...] = sum_mu C[mu][p] t[..., mu, ...].
	outer := len(t) / n
	idxBuf := make([]int, 0, outer)
	// Enumerate base offsets where the transformed index is zero.
	for base := 0; base < len(t); base++ {
		if (base/st)%n == 0 {
			idxBuf = append(idxBuf, base)
		}
	}
	for _, base := range idxBuf {
		for p := 0; p < n; p++ {
			sum := 0.0
			for mu := 0; mu < n; mu++ {
				sum += c.At(mu, p) * t[base+mu*st]
			}
			out[base+p*st] = sum
		}
	}
	return out
}
