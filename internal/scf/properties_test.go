package scf

import (
	"math"
	"testing"

	"repro/internal/integrals"
	"repro/internal/molecule"
)

func convergedWater(t *testing.T) (*integrals.Engine, *Result) {
	t.Helper()
	eng := uhfSetup(t, molecule.Water(), "sto-3g")
	sch := integrals.ComputeSchwarz(eng)
	res, err := RunRHF(eng, SerialBuilder(eng, sch, 0), Options{})
	if err != nil || !res.Converged {
		t.Fatalf("water SCF failed: %v", err)
	}
	return eng, res
}

func TestMullikenChargesWater(t *testing.T) {
	eng, res := convergedWater(t)
	q := MullikenCharges(eng, res.D)
	if len(q) != 3 {
		t.Fatalf("%d charges", len(q))
	}
	// Charge conservation: sum = molecular charge = 0.
	sum := q[0] + q[1] + q[2]
	if math.Abs(sum) > 1e-8 {
		t.Fatalf("charges do not sum to zero: %v", sum)
	}
	// Oxygen negative, hydrogens positive and symmetric.
	if q[0] >= 0 {
		t.Fatalf("oxygen charge %v not negative", q[0])
	}
	if q[1] <= 0 || math.Abs(q[1]-q[2]) > 1e-8 {
		t.Fatalf("hydrogen charges %v %v", q[1], q[2])
	}
	// STO-3G Mulliken oxygen charge is about -0.33.
	if q[0] < -0.6 || q[0] > -0.1 {
		t.Fatalf("oxygen charge %v outside window", q[0])
	}
}

func TestDipoleMomentWater(t *testing.T) {
	eng, res := convergedWater(t)
	mu := DipoleMoment(eng, res.D)
	// Symmetry: dipole along the C2 axis (z by our geometry), x=y=0.
	if math.Abs(mu[0]) > 1e-8 || math.Abs(mu[1]) > 1e-8 {
		t.Fatalf("off-axis dipole components: %v", mu)
	}
	d := DipoleDebye(mu)
	// RHF/STO-3G water dipole is about 1.7 debye.
	if d < 1.2 || d > 2.2 {
		t.Fatalf("water dipole = %v debye", d)
	}
}

func TestDipoleOriginIndependenceNeutral(t *testing.T) {
	// For a NEUTRAL molecule the dipole moment must not depend on the
	// expectation origin used for the electronic part, because
	// tr(D S) equals the nuclear charge sum. Shift the whole molecule and
	// verify the dipole is unchanged.
	eng, res := convergedWater(t)
	mu := DipoleMoment(eng, res.D)

	shifted := molecule.Water()
	for i := range shifted.Atoms {
		shifted.Atoms[i].Pos[0] += 5.0
		shifted.Atoms[i].Pos[2] -= 3.0
	}
	eng2 := uhfSetup(t, shifted, "sto-3g")
	sch2 := integrals.ComputeSchwarz(eng2)
	res2, err := RunRHF(eng2, SerialBuilder(eng2, sch2, 0), Options{})
	if err != nil || !res2.Converged {
		t.Fatal("shifted water SCF failed")
	}
	mu2 := DipoleMoment(eng2, res2.D)
	for ax := 0; ax < 3; ax++ {
		if math.Abs(mu[ax]-mu2[ax]) > 1e-6 {
			t.Fatalf("dipole changed under translation: %v vs %v", mu, mu2)
		}
	}
}

func TestMullikenH2Symmetric(t *testing.T) {
	eng := uhfSetup(t, molecule.H2(), "sto-3g")
	sch := integrals.ComputeSchwarz(eng)
	res, err := RunRHF(eng, SerialBuilder(eng, sch, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := MullikenCharges(eng, res.D)
	if math.Abs(q[0]) > 1e-10 || math.Abs(q[1]) > 1e-10 {
		t.Fatalf("homonuclear charges must vanish: %v", q)
	}
	mu := DipoleMoment(eng, res.D)
	if DipoleDebye(mu) > 1e-8 {
		t.Fatalf("H2 dipole must vanish: %v", mu)
	}
}
